// Source locations, spans, and the diagnostics subsystem.
//
// Two layers of reporting live here:
//
//   * The front end (lexer/parser/resolver) reports problems through a
//     DiagnosticEngine rather than throwing on first error, so a caller can
//     surface every syntax error in a program at once.
//
//   * The static checkers (src/check) report *findings*: coded diagnostics
//     (`race`, `div-zero`, ...) carrying full source spans, secondary notes
//     (e.g. a witness interleaving), and related spans (the other half of a
//     racing pair). The engine owns per-code enable/disable switches and
//     `// copar-ignore(<code>)` suppression comments, and renders findings
//     as human text with caret underlines, as JSON, or as SARIF 2.1.0 for
//     code-scanning upload.
//
// Fatal internal errors in the framework itself use copar::Error.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace copar::support {
class JsonWriter;
}

namespace copar {

/// A position in analyzed source text (1-based line/column; 0 means unknown).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const noexcept { return line != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
  friend auto operator<=>(const SourceLoc&, const SourceLoc&) = default;
};

/// A half-open range of source text: [begin, end). `end` names the position
/// one past the last character; an invalid end degrades to a single point.
struct SourceSpan {
  SourceLoc begin;
  SourceLoc end;

  [[nodiscard]] bool valid() const noexcept { return begin.valid(); }
  static SourceSpan at(SourceLoc point) { return SourceSpan{point, point}; }
  friend bool operator==(const SourceSpan&, const SourceSpan&) = default;
  friend auto operator<=>(const SourceSpan&, const SourceSpan&) = default;
};

/// Render "line:col" (or "<unknown>" when invalid).
std::string to_string(SourceLoc loc);
/// Render "line:col-line:col" ("line:col" for point spans).
std::string to_string(SourceSpan span);

enum class Severity { Note, Warning, Error };

std::string_view severity_name(Severity s);

/// A secondary message attached to a diagnostic (a witness step, the other
/// statement of a pair, a suggestion).
struct DiagNote {
  SourceSpan span;  // may be invalid (purely textual note)
  std::string message;
};

/// One reported problem, tied to a source location when available.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;        // primary point (== span.begin when span is set)
  std::string message;
  /// Stable check code ("race", "div-zero", ...; "syntax" for front-end
  /// errors). Drives per-code disabling, suppression comments, and SARIF
  /// ruleIds.
  std::string code;
  SourceSpan span;                        // full primary range
  std::vector<DiagNote> notes;            // ordered secondary messages
  std::vector<SourceSpan> related_spans;  // other program points involved
};

/// Static metadata about a check code, used by the SARIF renderer and the
/// docs/CLI catalog.
struct RuleInfo {
  std::string_view id;
  Severity default_severity = Severity::Warning;
  std::string_view summary;   // one line
  std::string_view help;      // how to read / suppress the finding
};

/// Collects diagnostics during lexing/parsing/resolution and check runs.
class DiagnosticEngine {
 public:
  // --- reporting ----------------------------------------------------------
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) { report(Severity::Error, loc, std::move(message)); }
  void warning(SourceLoc loc, std::string message) { report(Severity::Warning, loc, std::move(message)); }

  /// Full-fat reporting: applies per-code disabling and `copar-ignore`
  /// suppression before storing. Returns true when the diagnostic was kept.
  bool report(Diagnostic d);

  // --- per-code switches and suppression comments -------------------------
  void disable_code(std::string_view code) { disabled_.insert(std::string(code)); }
  void enable_code(std::string_view code) { disabled_.erase(std::string(code)); }
  [[nodiscard]] bool code_enabled(std::string_view code) const {
    return !disabled_.contains(std::string(code));
  }

  /// Scans `source` for `// copar-ignore(<code>[, <code>...])` comments
  /// (also `// copar-ignore` with no list: every code). A trailing comment
  /// suppresses matching findings that start on its own line; a comment
  /// alone on a line suppresses findings starting on the next line.
  void load_suppressions(std::string_view source);

  /// True if a finding of `code` starting at `loc` is suppressed.
  [[nodiscard]] bool suppressed(std::string_view code, SourceLoc loc) const;
  [[nodiscard]] std::size_t suppressed_count() const noexcept { return suppressed_count_; }
  [[nodiscard]] std::size_t disabled_count() const noexcept { return disabled_count_; }

  // --- queries ------------------------------------------------------------
  [[nodiscard]] bool has_errors() const noexcept { return error_count_ != 0; }
  [[nodiscard]] std::size_t error_count() const noexcept { return error_count_; }
  [[nodiscard]] std::size_t count(Severity sev) const;
  [[nodiscard]] const std::vector<Diagnostic>& all() const noexcept { return diags_; }

  /// Stable output order: by primary span, then code, then message.
  void sort_by_location();

  /// All diagnostics formatted one per line, e.g. "3:7: error: unexpected ')'".
  [[nodiscard]] std::string to_string() const;

  // --- renderers ----------------------------------------------------------
  /// Human-readable rendering with caret underlines; `source` is the
  /// analyzed program text (used for the quoted lines) and `file` its name.
  void render_text(std::ostream& os, std::string_view source, std::string_view file) const;

  /// One JSON document: {file, findings: [...], summary: {...}}. `extra`,
  /// when set, is invoked inside the top-level object after `summary` so
  /// callers can append their own sections (e.g. the check tier stats) —
  /// it must emit complete key/value pairs.
  void render_json(std::ostream& os, std::string_view file,
                   const std::function<void(support::JsonWriter&)>& extra = {}) const;

  /// A SARIF 2.1.0 document with one run; `rules` provides the tool-driver
  /// rule metadata (codes absent from it still render with bare ids).
  void render_sarif(std::ostream& os, std::string_view file,
                    std::span<const RuleInfo> rules) const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
  std::size_t suppressed_count_ = 0;
  std::size_t disabled_count_ = 0;
  std::set<std::string> disabled_;
  /// line -> codes suppressed on that line ("*" = all).
  std::map<std::uint32_t, std::set<std::string>> suppressions_;
};

/// Fatal framework error (programming errors, malformed internal state).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws copar::Error with the given message when `cond` is false.
void require(bool cond, std::string_view message);

/// Prints "copar: warning (<code>): <message>" to stderr the first time each
/// `code` is seen in this process; later calls with the same code are
/// dropped (a counter elsewhere should carry the repetition). Returns true
/// when the message was printed. Thread-safe — engine hot loops may call it
/// from workers.
bool warn_once(std::string_view code, const std::string& message);

}  // namespace copar
