// Source locations and diagnostic reporting for the analyzed language.
//
// The front end (lexer/parser/resolver) reports problems through a
// DiagnosticEngine rather than throwing on first error, so a caller can
// surface every syntax error in a program at once. Fatal internal errors in
// the framework itself use copar::Error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace copar {

/// A position in analyzed source text (1-based line/column; 0 means unknown).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const noexcept { return line != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Render "line:col" (or "<unknown>" when invalid).
std::string to_string(SourceLoc loc);

enum class Severity { Note, Warning, Error };

/// One reported problem, tied to a source location when available.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics during lexing/parsing/resolution.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) { report(Severity::Error, loc, std::move(message)); }
  void warning(SourceLoc loc, std::string message) { report(Severity::Warning, loc, std::move(message)); }

  [[nodiscard]] bool has_errors() const noexcept { return error_count_ != 0; }
  [[nodiscard]] std::size_t error_count() const noexcept { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const noexcept { return diags_; }

  /// All diagnostics formatted one per line, e.g. "3:7: error: unexpected ')'".
  [[nodiscard]] std::string to_string() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Fatal framework error (programming errors, malformed internal state).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws copar::Error with the given message when `cond` is false.
void require(bool cond, std::string_view message);

}  // namespace copar
