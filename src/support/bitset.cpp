#include "src/support/bitset.h"

#include <algorithm>
#include <bit>

namespace copar {

void DynamicBitset::ensure(std::size_t bit) {
  const std::size_t need = bit / 64 + 1;
  if (words_.size() < need) words_.resize(need, 0);
}

void DynamicBitset::set(std::size_t bit) {
  ensure(bit);
  words_[bit / 64] |= (1ULL << (bit % 64));
}

void DynamicBitset::reset(std::size_t bit) {
  if (bit / 64 < words_.size()) words_[bit / 64] &= ~(1ULL << (bit % 64));
}

bool DynamicBitset::test(std::size_t bit) const noexcept {
  return bit / 64 < words_.size() && (words_[bit / 64] >> (bit % 64)) & 1;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const noexcept {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

bool DynamicBitset::empty() const noexcept {
  return std::all_of(words_.begin(), words_.end(), [](std::uint64_t w) { return w == 0; });
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  if (words_.size() < other.words_.size()) words_.resize(other.words_.size(), 0);
  for (std::size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) words_[i] &= other.words_[i];
  for (std::size_t i = n; i < words_.size(); ++i) words_[i] = 0;
  return *this;
}

std::vector<std::size_t> DynamicBitset::bits() const {
  std::vector<std::size_t> out;
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

std::uint64_t DynamicBitset::hash() const noexcept {
  // Trailing zero words must not affect the hash (sets over different store
  // sizes compare equal when their set bits coincide).
  std::size_t n = words_.size();
  while (n > 0 && words_[n - 1] == 0) --n;
  std::uint64_t h = 0x6a09e667f3bcc908ULL;
  for (std::size_t i = 0; i < n; ++i) h = hash_combine(h, words_[i]);
  return h;
}

std::string DynamicBitset::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](std::size_t i) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(i);
  });
  out += '}';
  return out;
}

bool operator==(const DynamicBitset& a, const DynamicBitset& b) noexcept {
  const std::size_t n = std::max(a.words_.size(), b.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t wa = i < a.words_.size() ? a.words_[i] : 0;
    const std::uint64_t wb = i < b.words_.size() ? b.words_[i] : 0;
    if (wa != wb) return false;
  }
  return true;
}

}  // namespace copar
