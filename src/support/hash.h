// Hash-combining utilities used throughout the framework.
//
// Configurations, stores, and procedure strings are hashed constantly during
// state-space exploration, so we provide a small, fast, dependency-free
// mixing scheme (64-bit, based on the splitmix64 finalizer).
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <string_view>

namespace copar {

/// One round of the splitmix64 finalizer; a good cheap bit mixer.
constexpr std::uint64_t hash_mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combine a new value into a running hash (order-dependent).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) noexcept {
  return hash_mix(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Hash a range of hashable elements, order-dependent.
template <typename It>
std::uint64_t hash_range(It first, It last, std::uint64_t seed = 0) {
  for (; first != last; ++first) {
    seed = hash_combine(seed, static_cast<std::uint64_t>(std::hash<std::decay_t<decltype(*first)>>{}(*first)));
  }
  return seed;
}

/// FNV-1a over bytes; used for string-ish data.
constexpr std::uint64_t hash_bytes(std::string_view s, std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace copar
