#include "src/support/telemetry.h"

#include <sys/resource.h>
#include <time.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "src/support/json.h"

namespace copar::telemetry {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Parse: return "parse";
    case Phase::Lower: return "lower";
    case Phase::StaticInfo: return "static_info";
    case Phase::Expansion: return "expansion";
    case Phase::Stubborn: return "stubborn";
    case Phase::Canonicalize: return "canonicalize";
    case Phase::Folding: return "folding";
    case Phase::Analysis: return "analysis";
    case Phase::kCount: break;
  }
  return "?";
}

std::uint64_t now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t peak_rss_bytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024ull;
}

Telemetry& Telemetry::global() {
  static Telemetry instance;
  return instance;
}

void Telemetry::enable_trace(std::size_t capacity) {
  trace_on_ = capacity > 0;
  ring_capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity < 4096 ? capacity : 4096);
  ring_head_ = 0;
  total_events_ = 0;
}

void Telemetry::enable_progress(double interval_s) {
  progress_on_ = interval_s > 0;
  progress_interval_ns_ = static_cast<std::uint64_t>(interval_s * 1e9);
  progress_start_ns_ = 0;
}

void Telemetry::reset() {
  stack_.clear();
  for (auto& t : totals_ns_) t = 0;
  for (auto& c : counts_) c = 0;
  ring_.clear();
  ring_head_ = 0;
  total_events_ = 0;
  progress_start_ns_ = 0;
  progress_last_ns_ = 0;
  progress_last_configs_ = 0;
}

void Telemetry::enter(Phase p) {
  const std::uint64_t now = clock_();
  if (!stack_.empty()) {
    // Suspend the enclosing scope: bank its elapsed self-time.
    Open& top = stack_.back();
    totals_ns_[static_cast<std::size_t>(top.phase)] += now - top.resume_ns;
  }
  stack_.push_back(Open{p, now, now});
}

void Telemetry::leave(Phase p) {
  const std::uint64_t now = clock_();
  if (stack_.empty() || stack_.back().phase != p) return;  // mismatched: drop
  const Open top = stack_.back();
  stack_.pop_back();
  totals_ns_[static_cast<std::size_t>(p)] += now - top.resume_ns;
  counts_[static_cast<std::size_t>(p)] += 1;
  if (!stack_.empty()) stack_.back().resume_ns = now;
  if (trace_on_) {
    push_event(TraceEvent{top.start_ns, now - top.start_ns, phase_name(p), 'X', 0});
  }
}

void Telemetry::push_event(const TraceEvent& e) {
  total_events_ += 1;
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(e);
    return;
  }
  if (ring_capacity_ == 0) return;
  ring_[ring_head_] = e;
  ring_head_ = (ring_head_ + 1) % ring_capacity_;
}

void Telemetry::record_complete(const char* name, std::uint64_t start_ns,
                                std::uint64_t dur_ns) {
  if (!trace_on_) return;
  push_event(TraceEvent{start_ns, dur_ns, name, 'X', 0});
}

void Telemetry::record_counter(const char* name, std::uint64_t value) {
  if (!trace_on_) return;
  push_event(TraceEvent{clock_(), 0, name, 'C', value});
}

void Telemetry::record_instant(const char* name) {
  if (!trace_on_) return;
  push_event(TraceEvent{clock_(), 0, name, 'i', 0});
}

std::vector<TraceEvent> Telemetry::trace_events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < ring_capacity_) {
    out = ring_;  // never wrapped: already oldest-first
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
    }
  }
  return out;
}

void Telemetry::write_trace_json(std::ostream& os) const {
  support::JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  // Process metadata so the timeline has a readable track name.
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(std::uint64_t{1});
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value("copar");
  w.end_object();
  w.end_object();
  const std::vector<TraceEvent> events = trace_events();
  // Rebase timestamps to the earliest event so the values stay small
  // enough for full sub-microsecond precision in the JSON text.
  std::uint64_t base_ns = UINT64_MAX;
  for (const TraceEvent& e : events) base_ns = e.ts_ns < base_ns ? e.ts_ns : base_ns;
  if (base_ns == UINT64_MAX) base_ns = 0;
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("cat");
    w.value("copar");
    w.key("ph");
    w.value(std::string_view(&e.ph, 1));
    w.key("ts");
    w.value_fixed(static_cast<double>(e.ts_ns - base_ns) / 1000.0);  // microseconds
    if (e.ph == 'X') {
      w.key("dur");
      w.value_fixed(static_cast<double>(e.dur_ns) / 1000.0);
    }
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(std::uint64_t{1});
    if (e.ph == 'C') {
      w.key("args");
      w.begin_object();
      w.key("value");
      w.value(e.value);
      w.end_object();
    } else if (e.ph == 'i') {
      w.key("s");
      w.value("g");  // global-scope instant
    }
    w.end_object();
  }
  w.end_array();
  if (trace_dropped() > 0) {
    w.key("copar_dropped_events");
    w.value(trace_dropped());
  }
  w.end_object();
  os << '\n';
}

bool Telemetry::write_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_trace_json(out);
  return static_cast<bool>(out);
}

void Telemetry::progress_slow(std::uint64_t configs, std::uint64_t transitions,
                              std::size_t frontier) {
  const std::uint64_t now = clock_();
  if (progress_start_ns_ == 0) {
    progress_start_ns_ = now;
    progress_last_ns_ = now;
    progress_last_configs_ = configs;
    return;
  }
  if (now - progress_last_ns_ < progress_interval_ns_) return;
  const double dt = static_cast<double>(now - progress_last_ns_) / 1e9;
  const double rate = static_cast<double>(configs - progress_last_configs_) / dt;
  const double elapsed = static_cast<double>(now - progress_start_ns_) / 1e9;
  std::fprintf(stderr,
               "[copar] t=%.1fs configs=%" PRIu64 " (%.0f/s) transitions=%" PRIu64
               " frontier=%zu\n",
               elapsed, configs, rate, transitions, frontier);
  progress_last_ns_ = now;
  progress_last_configs_ = configs;
  record_counter("configs", configs);
}

}  // namespace copar::telemetry
