#include "src/support/telemetry.h"

#include <sys/resource.h>
#include <time.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "src/support/json.h"

namespace copar::telemetry {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Parse: return "parse";
    case Phase::Lower: return "lower";
    case Phase::StaticInfo: return "static_info";
    case Phase::Expansion: return "expansion";
    case Phase::Stubborn: return "stubborn";
    case Phase::Canonicalize: return "canonicalize";
    case Phase::Folding: return "folding";
    case Phase::Analysis: return "analysis";
    case Phase::kCount: break;
  }
  return "?";
}

const char* gauge_name(Gauge g) {
  switch (g) {
    case Gauge::Configs: return "configs";
    case Gauge::Transitions: return "transitions";
    case Gauge::Frontier: return "frontier";
    case Gauge::VisitedEntries: return "visited_entries";
    case Gauge::VisitedBytes: return "visited_bytes";
    case Gauge::Steals: return "steals";
    case Gauge::FrontierBytes: return "frontier_bytes";
    case Gauge::kCount: break;
  }
  return "?";
}

std::uint64_t now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t peak_rss_bytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024ull;
}

/// One registered thread's track: phase-timer stack and totals plus the
/// trace ring. Single-writer — only the owning thread touches the mutable
/// parts while live; flush/aggregation calls run after the owner joined
/// (or, for the main track, from the main thread itself). The registry
/// mutex only guards the states_ vector, never the per-track data.
struct Telemetry::ThreadState {
  std::uint32_t tid = 0;
  std::string name;
  bool retired = false;  // owner gone; safe to purge on reset()

  struct Open {
    Phase phase;
    std::uint64_t start_ns;   // scope entry (for the inclusive trace slice)
    std::uint64_t resume_ns;  // last resume (for exclusive accounting)
  };
  std::vector<Open> stack;
  std::array<std::uint64_t, kPhaseCount> totals_ns{};
  std::array<std::uint64_t, kPhaseCount> counts{};

  std::vector<TraceEvent> ring;
  std::size_t ring_head = 0;
  std::uint64_t total_events = 0;
};

thread_local Telemetry::ThreadState* Telemetry::tls_state_ = nullptr;

Telemetry& Telemetry::global() {
  static Telemetry instance;
  return instance;
}

Telemetry::ThreadState* Telemetry::register_state(std::string name) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto s = std::make_unique<ThreadState>();
  s->tid = next_tid_++;
  if (name.empty()) {
    if (std::this_thread::get_id() == main_thread_id_) {
      name = "main";
    } else {
      name = "thread-";
      name += std::to_string(s->tid);
    }
  }
  s->name = std::move(name);
  ThreadState* raw = s.get();
  states_.push_back(std::move(s));
  return raw;
}

void Telemetry::retire_state(ThreadState* s) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  s->retired = true;
}

Telemetry::ThreadState& Telemetry::state() {
  if (tls_state_ == nullptr) tls_state_ = register_state({});
  return *tls_state_;
}

ThreadRegistration::ThreadRegistration(std::string name) {
  Telemetry& t = Telemetry::global();
  previous_ = Telemetry::tls_state_;
  state_ = t.register_state(std::move(name));
  Telemetry::tls_state_ = state_;
  tid_ = state_->tid;
}

ThreadRegistration::~ThreadRegistration() {
  Telemetry::global().retire_state(state_);
  Telemetry::tls_state_ = previous_;
}

void Telemetry::enable_trace(std::size_t capacity) {
  trace_on_.store(capacity > 0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(reg_mu_);
  ring_capacity_ = capacity;
  for (auto& s : states_) {
    s->ring.clear();
    s->ring_head = 0;
    s->total_events = 0;
  }
}

void Telemetry::enable_progress(double interval_s) {
  progress_on_.store(interval_s > 0, std::memory_order_relaxed);
  progress_interval_ns_ = static_cast<std::uint64_t>(interval_s * 1e9);
  progress_start_ns_.store(0, std::memory_order_relaxed);
}

void Telemetry::reset() {
  stop_sampler();
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    // Purge retired tracks (their owners are gone; the tls pointers were
    // nulled by ThreadRegistration). Live tracks — in practice the main
    // thread's — are cleared in place.
    states_.erase(std::remove_if(states_.begin(), states_.end(),
                                 [](const std::unique_ptr<ThreadState>& s) {
                                   return s->retired;
                                 }),
                  states_.end());
    for (auto& s : states_) {
      s->stack.clear();
      s->totals_ns.fill(0);
      s->counts.fill(0);
      s->ring.clear();
      s->ring_head = 0;
      s->total_events = 0;
    }
  }
  for (auto& g : live_) g.store(0, std::memory_order_relaxed);
  progress_start_ns_.store(0, std::memory_order_relaxed);
  progress_last_ns_.store(0, std::memory_order_relaxed);
  progress_last_configs_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(timeline_mu_);
    timeline_.clear();
    sample_seq_ = 0;
    sample_stride_ = 1;
    timeline_compactions_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(published_mu_);
    published_.clear();
  }
}

// --- phase timers ----------------------------------------------------------

void Telemetry::enter(Phase p) {
  const std::uint64_t now = clock();
  ThreadState& s = state();
  if (!s.stack.empty()) {
    // Suspend the enclosing scope: bank its elapsed self-time.
    ThreadState::Open& top = s.stack.back();
    s.totals_ns[static_cast<std::size_t>(top.phase)] += now - top.resume_ns;
  }
  s.stack.push_back(ThreadState::Open{p, now, now});
}

void Telemetry::leave(Phase p) {
  const std::uint64_t now = clock();
  ThreadState& s = state();
  if (s.stack.empty() || s.stack.back().phase != p) return;  // mismatched: drop
  const ThreadState::Open top = s.stack.back();
  s.stack.pop_back();
  s.totals_ns[static_cast<std::size_t>(p)] += now - top.resume_ns;
  s.counts[static_cast<std::size_t>(p)] += 1;
  if (!s.stack.empty()) s.stack.back().resume_ns = now;
  if (trace_enabled()) {
    push_event(s, TraceEvent{top.start_ns, now - top.start_ns, phase_name(p), 'X', 0, 0});
  }
}

std::uint64_t Telemetry::phase_ns(Phase p) const {
  const ThreadState* s = tls_state_;
  return s != nullptr ? s->totals_ns[static_cast<std::size_t>(p)] : 0;
}

std::uint64_t Telemetry::phase_count(Phase p) const {
  const ThreadState* s = tls_state_;
  return s != nullptr ? s->counts[static_cast<std::size_t>(p)] : 0;
}

std::size_t Telemetry::phase_depth() const {
  const ThreadState* s = tls_state_;
  return s != nullptr ? s->stack.size() : 0;
}

std::vector<Telemetry::TrackStats> Telemetry::tracks() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  std::vector<TrackStats> out;
  out.reserve(states_.size());
  for (const auto& s : states_) {
    TrackStats t;
    t.tid = s->tid;
    t.name = s->name;
    t.phase_ns = s->totals_ns;
    t.phase_counts = s->counts;
    out.push_back(std::move(t));
  }
  return out;
}

std::uint64_t Telemetry::track_phase_ns(std::uint32_t tid, Phase p) const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  for (const auto& s : states_) {
    if (s->tid == tid) return s->totals_ns[static_cast<std::size_t>(p)];
  }
  return 0;
}

// --- trace rings -----------------------------------------------------------

void Telemetry::push_event(ThreadState& s, const TraceEvent& e) {
  const std::size_t cap = ring_capacity_;
  if (cap == 0) return;
  s.total_events += 1;
  if (s.ring.size() < cap) {
    if (s.ring.capacity() == 0) s.ring.reserve(cap < 4096 ? cap : 4096);
    s.ring.push_back(e);
    return;
  }
  s.ring[s.ring_head] = e;
  s.ring_head = (s.ring_head + 1) % cap;
}

void Telemetry::record_complete(const char* name, std::uint64_t start_ns,
                                std::uint64_t dur_ns) {
  if (!trace_enabled()) return;
  push_event(state(), TraceEvent{start_ns, dur_ns, name, 'X', 0, 0});
}

void Telemetry::record_counter(const char* name, std::uint64_t value) {
  if (!trace_enabled()) return;
  push_event(state(), TraceEvent{clock(), 0, name, 'C', value, 0});
}

void Telemetry::record_instant(const char* name) {
  if (!trace_enabled()) return;
  push_event(state(), TraceEvent{clock(), 0, name, 'i', 0, 0});
}

std::size_t Telemetry::trace_size() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  std::size_t n = 0;
  for (const auto& s : states_) n += s->ring.size();
  return n;
}

std::uint64_t Telemetry::trace_dropped() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  std::uint64_t n = 0;
  for (const auto& s : states_) n += s->total_events - s->ring.size();
  return n;
}

std::vector<TraceEvent> Telemetry::trace_events() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  std::vector<TraceEvent> out;
  for (const auto& s : states_) {
    const std::size_t n = s->ring.size();
    const bool wrapped = s->total_events > n;
    for (std::size_t i = 0; i < n; ++i) {
      TraceEvent e = wrapped ? s->ring[(s->ring_head + i) % n] : s->ring[i];
      e.tid = s->tid;
      out.push_back(e);
    }
  }
  return out;
}

void Telemetry::write_trace_json(std::ostream& os) const {
  support::JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  // Process metadata so the timeline has a readable track name.
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(std::uint64_t{1});
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value("copar");
  w.end_object();
  w.end_object();
  // One thread_name metadata event per registered track — empty rings
  // included, so an idle worker shows up as an (empty) named row rather
  // than disappearing from the timeline.
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (const auto& s : states_) {
      w.begin_object();
      w.key("name");
      w.value("thread_name");
      w.key("ph");
      w.value("M");
      w.key("pid");
      w.value(std::uint64_t{1});
      w.key("tid");
      w.value(std::uint64_t{s->tid});
      w.key("args");
      w.begin_object();
      w.key("name");
      w.value(s->name);
      w.end_object();
      w.end_object();
    }
  }
  const std::vector<TraceEvent> events = trace_events();
  // Rebase timestamps to the earliest event so the values stay small
  // enough for full sub-microsecond precision in the JSON text.
  std::uint64_t base_ns = UINT64_MAX;
  for (const TraceEvent& e : events) base_ns = e.ts_ns < base_ns ? e.ts_ns : base_ns;
  if (base_ns == UINT64_MAX) base_ns = 0;
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("cat");
    w.value("copar");
    w.key("ph");
    w.value(std::string_view(&e.ph, 1));
    w.key("ts");
    w.value_fixed(static_cast<double>(e.ts_ns - base_ns) / 1000.0);  // microseconds
    if (e.ph == 'X') {
      w.key("dur");
      w.value_fixed(static_cast<double>(e.dur_ns) / 1000.0);
    }
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(std::uint64_t{e.tid});
    if (e.ph == 'C') {
      w.key("args");
      w.begin_object();
      w.key("value");
      w.value(e.value);
      w.end_object();
    } else if (e.ph == 'i') {
      w.key("s");
      w.value("t");  // thread-scope instant (one per track)
    }
    w.end_object();
  }
  w.end_array();
  if (trace_dropped() > 0) {
    w.key("copar_dropped_events");
    w.value(trace_dropped());
  }
  w.end_object();
  os << '\n';
}

bool Telemetry::write_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_trace_json(out);
  return static_cast<bool>(out);
}

// --- progress heartbeat ----------------------------------------------------

void Telemetry::heartbeat() {
  if (!progress_enabled()) return;
  const std::uint64_t now = clock();
  std::uint64_t start = progress_start_ns_.load(std::memory_order_relaxed);
  if (start == 0) {
    if (progress_start_ns_.compare_exchange_strong(start, now,
                                                   std::memory_order_relaxed)) {
      progress_last_ns_.store(now, std::memory_order_relaxed);
      progress_last_configs_.store(live(Gauge::Configs), std::memory_order_relaxed);
    }
    return;
  }
  std::uint64_t last = progress_last_ns_.load(std::memory_order_relaxed);
  if (now - last < progress_interval_ns_) return;
  // One CAS decides which caller prints this interval; losers return.
  if (!progress_last_ns_.compare_exchange_strong(last, now, std::memory_order_relaxed)) {
    return;
  }
  const std::uint64_t configs = live(Gauge::Configs);
  const std::uint64_t prev =
      progress_last_configs_.exchange(configs, std::memory_order_relaxed);
  const double dt = static_cast<double>(now - last) / 1e9;
  const double rate = dt > 0 ? static_cast<double>(configs - prev) / dt : 0.0;
  const double elapsed = static_cast<double>(now - start) / 1e9;
  std::fprintf(stderr,
               "[copar] t=%.1fs configs=%" PRIu64 " (%.0f/s) transitions=%" PRIu64
               " frontier=%" PRIu64 "\n",
               elapsed, configs, rate, live(Gauge::Transitions),
               live(Gauge::Frontier));
  record_counter("configs", configs);
}

// --- sampler ---------------------------------------------------------------

void Telemetry::start_sampler(double interval_ms) {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_thread_.joinable()) return;
  sampler_interval_ns_ = static_cast<std::uint64_t>(interval_ms * 1e6);
  if (sampler_interval_ns_ == 0) sampler_interval_ns_ = 1'000'000;  // 1 ms floor
  {
    std::lock_guard<std::mutex> wait_lock(sampler_wait_mu_);
    sampler_stop_ = false;
  }
  sampler_on_.store(true, std::memory_order_relaxed);
  sampler_thread_ = std::thread([this] { sampler_loop(); });
}

void Telemetry::sampler_loop() {
  ThreadRegistration reg("sampler");
  std::unique_lock<std::mutex> lock(sampler_wait_mu_);
  while (!sampler_stop_) {
    sampler_cv_.wait_for(lock, std::chrono::nanoseconds(sampler_interval_ns_),
                         [this] { return sampler_stop_; });
    if (sampler_stop_) break;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void Telemetry::stop_sampler() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> wait_lock(sampler_wait_mu_);
      sampler_stop_ = true;
    }
    sampler_cv_.notify_all();
    worker = std::move(sampler_thread_);
  }
  worker.join();
  sampler_on_.store(false, std::memory_order_relaxed);
  // Final sample so even sub-interval runs get a non-empty timeline.
  sample_now();
}

bool Telemetry::sampler_running() const {
  return sampler_on_.load(std::memory_order_relaxed);
}

void Telemetry::sample_now() {
  Sample s;
  s.t_ns = clock();
  s.rss_bytes = peak_rss_bytes();
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    s.gauges[i] = live_[i].load(std::memory_order_relaxed);
  }
  if (trace_enabled()) {
    for (std::size_t i = 0; i < kGaugeCount; ++i) {
      record_counter(gauge_name(static_cast<Gauge>(i)), s.gauges[i]);
    }
    record_counter("rss_bytes", s.rss_bytes);
  }
  std::lock_guard<std::mutex> lock(timeline_mu_);
  // Count-based decimation keeps the timeline bounded and deterministic:
  // accept every stride-th tick; when full, drop every other sample and
  // double the stride — full time coverage at halving resolution.
  const bool accept = sample_seq_ % sample_stride_ == 0;
  sample_seq_ += 1;
  if (!accept) return;
  timeline_.push_back(s);
  if (timeline_.size() > timeline_capacity_ && timeline_capacity_ > 0) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < timeline_.size(); i += 2) {
      timeline_[kept++] = timeline_[i];
    }
    timeline_.resize(kept);
    sample_stride_ *= 2;
    timeline_compactions_ += 1;
  }
}

std::vector<Telemetry::Sample> Telemetry::timeline() const {
  std::lock_guard<std::mutex> lock(timeline_mu_);
  return timeline_;
}

void Telemetry::set_timeline_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(timeline_mu_);
  timeline_capacity_ = cap > 0 ? cap : 1;
}

std::uint64_t Telemetry::timeline_compactions() const {
  std::lock_guard<std::mutex> lock(timeline_mu_);
  return timeline_compactions_;
}

void Telemetry::write_timeline_json(support::JsonWriter& w) const {
  std::vector<Sample> samples = timeline();
  std::uint64_t compactions;
  {
    std::lock_guard<std::mutex> lock(timeline_mu_);
    compactions = timeline_compactions_;
  }
  w.begin_object();
  w.key("sample_interval_ms");
  w.value_fixed(sampler_interval_ms());
  w.key("compactions");
  w.value(compactions);
  w.key("samples");
  w.begin_array();
  const std::uint64_t base_ns = samples.empty() ? 0 : samples.front().t_ns;
  for (const Sample& s : samples) {
    w.begin_object();
    w.key("t_ms");
    w.value_fixed(static_cast<double>(s.t_ns - base_ns) / 1e6);
    for (std::size_t i = 0; i < kGaugeCount; ++i) {
      w.key(gauge_name(static_cast<Gauge>(i)));
      w.value(s.gauges[i]);
    }
    w.key("rss_bytes");
    w.value(s.rss_bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// --- published stats -------------------------------------------------------

void Telemetry::publish_stats(const StatRegistry& stats) {
  std::lock_guard<std::mutex> lock(published_mu_);
  published_.overlay(stats);
}

StatRegistry Telemetry::published_stats() const {
  std::lock_guard<std::mutex> lock(published_mu_);
  return published_;
}

}  // namespace copar::telemetry
