// Dense dynamic bitset tuned for location read/write sets.
//
// Stubborn-set computation tests "does the write set of action a intersect
// the read∪write set of action b" once per pair of enabled processes per
// expansion step, so intersection tests must not allocate. DynamicBitset
// grows on demand and treats missing high bits as zero, which lets sets over
// different store sizes interoperate.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "src/support/hash.h"

namespace copar {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t nbits) : words_((nbits + 63) / 64) {}

  void set(std::size_t bit);
  void reset(std::size_t bit);
  [[nodiscard]] bool test(std::size_t bit) const noexcept;

  /// True if any bit is set in both; no allocation.
  [[nodiscard]] bool intersects(const DynamicBitset& other) const noexcept;

  /// True if no bit is set.
  [[nodiscard]] bool empty() const noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);

  void clear() noexcept { words_.clear(); }

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> bits() const;

  /// Calls f(index) for each set bit, ascending.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int b = __builtin_ctzll(word);
        f(w * 64 + static_cast<std::size_t>(b));
        word &= word - 1;
      }
    }
  }

  [[nodiscard]] std::uint64_t hash() const noexcept;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) noexcept;

 private:
  void ensure(std::size_t bit);
  std::vector<std::uint64_t> words_;
};

}  // namespace copar
