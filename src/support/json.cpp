#include "src/support/json.h"

#include <cstdio>

namespace copar::support {

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": <value> — no comma, key() already separated
  }
  if (scopes_.empty()) return;
  if (!scopes_.back().first) os_ << ',';
  scopes_.back().first = false;
}

void JsonWriter::begin_object() {
  separate();
  os_ << '{';
  scopes_.push_back(Scope{false, true});
}

void JsonWriter::end_object() {
  scopes_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  separate();
  os_ << '[';
  scopes_.push_back(Scope{true, true});
}

void JsonWriter::end_array() {
  scopes_.pop_back();
  os_ << ']';
}

void JsonWriter::key(std::string_view name) {
  separate();
  write_escaped(os_, name);
  os_ << ": ";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separate();
  write_escaped(os_, s);
}

void JsonWriter::value(bool b) {
  separate();
  os_ << (b ? "true" : "false");
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
}

void JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
}

void JsonWriter::value(double v) {
  separate();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os_ << buf;
}

void JsonWriter::value_fixed(double v) {
  separate();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  os_ << buf;
}

void JsonWriter::null() {
  separate();
  os_ << "null";
}

void JsonWriter::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xff);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace copar::support
