#include "src/support/interner.h"

#include "src/support/diagnostics.h"

namespace copar {

Interner::Interner() {
  spellings_.emplace_back();  // slot 0: the invalid symbol
}

Symbol Interner::intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) return Symbol(it->second);
  const auto id = static_cast<std::uint32_t>(spellings_.size());
  spellings_.emplace_back(s);
  // Key the map with a view into our stable storage. std::string contents
  // are heap-allocated, so the view survives vector reallocation.
  index_.emplace(std::string_view(spellings_.back()), id);
  return Symbol(id);
}

std::string_view Interner::spelling(Symbol sym) const {
  require(sym.id() < spellings_.size(), "Interner::spelling: foreign symbol");
  return spellings_[sym.id()];
}

}  // namespace copar
