// Minimal streaming JSON writer for machine-readable reports.
//
// No DOM, no allocation beyond the scope stack: callers emit a document in
// order and the writer inserts commas and escapes strings. Used by the
// telemetry layer (`--json` reports, Chrome trace files) so the framework
// needs no external JSON dependency.
//
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("configs"); w.value(std::uint64_t{19});
//   w.key("phases");  w.begin_object(); ... w.end_object();
//   w.end_object();
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace copar::support {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Member name inside an object; must be followed by exactly one value
  /// (or container).
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);
  /// Fixed-point with 3 decimals — for timestamps, where %g's 6 significant
  /// digits would destroy sub-millisecond resolution on large values.
  void value_fixed(double v);
  void null();

  /// Writes a JSON string literal (quoted, escaped).
  static void write_escaped(std::ostream& os, std::string_view s);

 private:
  /// Comma/newline handling before a value or key at the current nesting.
  void separate();

  std::ostream& os_;
  struct Scope {
    bool array = false;
    bool first = true;
  };
  std::vector<Scope> scopes_;
  bool pending_key_ = false;
};

}  // namespace copar::support
