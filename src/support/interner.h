// String interning: maps identifier spellings to small dense Symbol ids.
//
// Interning makes identifier comparison O(1) and lets read/write sets,
// environments, and procedure strings store 32-bit ids instead of strings.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace copar {

/// A lightweight handle to an interned string. Value 0 is reserved as the
/// invalid symbol so a default-constructed Symbol is detectably empty.
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(std::uint32_t id) : id_(id) {}

  [[nodiscard]] constexpr std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0; }

  friend constexpr bool operator==(Symbol, Symbol) = default;
  friend constexpr auto operator<=>(Symbol, Symbol) = default;

 private:
  std::uint32_t id_ = 0;
};

/// Owns the spellings; hands out Symbols. Not thread-safe by design (each
/// analysis pipeline owns one interner).
class Interner {
 public:
  Interner();

  /// Returns the symbol for `s`, interning it on first sight.
  Symbol intern(std::string_view s);

  /// Looks up a spelling; Symbol must have come from this interner.
  [[nodiscard]] std::string_view spelling(Symbol sym) const;

  /// Number of distinct interned strings (excluding the invalid slot).
  [[nodiscard]] std::size_t size() const noexcept { return spellings_.size() - 1; }

 private:
  // Deque: element addresses are stable under growth, so the string_view
  // keys in index_ (which point into the stored strings, including
  // small-string-optimized ones) never dangle.
  std::deque<std::string> spellings_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace copar

template <>
struct std::hash<copar::Symbol> {
  std::size_t operator()(copar::Symbol s) const noexcept { return s.id(); }
};
