// 128-bit configuration fingerprints and the open-addressing table that
// stores them.
//
// The exploration engines deduplicate configurations by canonical
// serialization. Storing one full serialized key per distinct configuration
// (hundreds of bytes each) makes memory — not reduction quality — the
// practical bound on the explorable space. A fingerprint keeps 16 bytes per
// configuration instead: the canonical byte stream is hashed *while it is
// produced* (the same traversal that would build the key string feeds the
// hasher, so key and fingerprint cannot diverge), and membership is tracked
// in an open-addressing table of (fingerprint, id) pairs.
//
// The price is a 2^-128-ish chance of a collision silently merging two
// distinct configurations. Engines expose an opt-out (`--exact-keys`) that
// keeps full key strings and cross-checks them against the fingerprints,
// counting observed collisions (`fingerprint_collisions`) for
// collision-paranoid runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/support/hash.h"

namespace copar::support {

/// A 128-bit fingerprint. Never all-zero and never {0,1} (the hasher remaps
/// those), so the table can use them as empty/tombstone slot markers.
/// Ordered (hi, lo) — the parallel engine sorts node fingerprints to assign
/// scheduling-independent graph ids.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;
};

/// Hash functor for std::unordered_* keyed by Fingerprint. The fingerprint
/// is already uniformly mixed, so folding the lanes is enough.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Streaming 128-bit hasher with the same byte-sink interface as the
/// canonical-key serializer (u8/u32/u64): two independent splitmix-based
/// 64-bit lanes over the little-endian byte stream, finalized with the
/// stream length. Same byte sequence <=> same fingerprint.
class Fp128Hasher {
 public:
  void u8(std::uint8_t v) {
    buf_ |= static_cast<std::uint64_t>(v) << (8 * nbuf_);
    len_ += 1;
    if (++nbuf_ == 8) {
      word(buf_);
      buf_ = 0;
      nbuf_ = 0;
    }
  }
  // u32/u64 pack whole words into the little-endian buffer instead of
  // looping over u8 — the canonical stream is mostly u32s, and this is the
  // hot path of canonical_fingerprint(). Byte-for-byte equivalent to the
  // per-u8 version (same buffer contents, same flush points, same len_),
  // so fingerprints are unchanged.
  void u32(std::uint32_t v) {
    const int n = nbuf_;
    len_ += 4;
    if (n <= 4) {
      buf_ |= static_cast<std::uint64_t>(v) << (8 * n);
      if ((nbuf_ = n + 4) == 8) {
        word(buf_);
        buf_ = 0;
        nbuf_ = 0;
      }
    } else {
      // 8-n low bytes complete the buffer; the remaining n-4 carry over.
      buf_ |= static_cast<std::uint64_t>(v) << (8 * n);
      word(buf_);
      buf_ = static_cast<std::uint64_t>(v) >> (8 * (8 - n));
      nbuf_ = n - 4;
    }
  }
  void u64(std::uint64_t v) {
    const int n = nbuf_;
    len_ += 8;
    if (n == 0) {
      word(v);
      return;
    }
    buf_ |= v << (8 * n);
    word(buf_);
    buf_ = v >> (8 * (8 - n));  // high n bytes start the next buffer
  }

  [[nodiscard]] Fingerprint finalize() const {
    std::uint64_t a = a_;
    std::uint64_t b = b_;
    if (nbuf_ > 0) {
      a = hash_combine(a, buf_);
      b = hash_combine(b, buf_ ^ kLaneTweak);
    }
    a = hash_combine(a, len_);
    b = hash_combine(b, len_ ^ kLaneTweak);
    Fingerprint fp{hash_mix(a), hash_mix(b)};
    // Reserve hi == 0 for the table's empty/tombstone markers.
    if (fp.hi == 0) fp.hi = 1;
    return fp;
  }

 private:
  static constexpr std::uint64_t kLaneTweak = 0x5851f42d4c957f2dULL;

  void word(std::uint64_t w) {
    a_ = hash_combine(a_, w);
    b_ = hash_combine(b_, w ^ kLaneTweak);
  }

  std::uint64_t a_ = 0x243f6a8885a308d3ULL;  // pi fractional digits
  std::uint64_t b_ = 0x13198a2e03707344ULL;
  std::uint64_t buf_ = 0;
  std::uint64_t len_ = 0;
  int nbuf_ = 0;
};

/// Open-addressing (linear probing) hash table mapping fingerprints to
/// dense ids in insertion order. ~20 bytes per slot (16-byte fingerprint +
/// 4-byte id in parallel arrays), grown at 70% load — an order of magnitude
/// below per-configuration key strings. Supports erase via tombstones
/// (hi == 0, lo == 1) for engines that re-queue work items.
class FingerprintTable {
 public:
  struct Insert {
    std::uint32_t id = 0;
    bool inserted = false;
  };

  /// Inserts `fp`, assigning the next dense id; returns the existing id
  /// when already present.
  Insert insert(const Fingerprint& fp);

  [[nodiscard]] bool contains(const Fingerprint& fp) const;

  /// Removes `fp` (tombstone). Returns true if it was present. Erased
  /// entries free their slot for reuse but their id is not recycled.
  bool erase(const Fingerprint& fp);

  /// Live entries (inserts minus erases).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Bytes held by the table's slot arrays (the dedup-structure cost the
  /// `visited_bytes` gauge reports in fingerprint mode).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Fingerprint) + ids_.capacity() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] static bool is_empty(const Fingerprint& fp) noexcept {
    return fp.hi == 0 && fp.lo == 0;
  }
  [[nodiscard]] static bool is_tomb(const Fingerprint& fp) noexcept {
    return fp.hi == 0 && fp.lo == 1;
  }

  void grow();

  std::vector<Fingerprint> slots_;
  std::vector<std::uint32_t> ids_;
  std::size_t size_ = 0;      // live entries
  std::size_t occupied_ = 0;  // live + tombstones (drives the load factor)
  std::uint32_t next_id_ = 0;
};

}  // namespace copar::support
