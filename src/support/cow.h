// A copy-on-write box: a value that is cheap to copy (one shared_ptr) and
// is cloned lazily on the first mutation after a share.
//
// Thread-safety contract (the one the parallel engine relies on): a CowBox
// *value* may be copied and read from many threads concurrently — copying
// only touches the atomic refcount. `mut()` may be called only by a thread
// that exclusively owns the box itself (e.g. the worker that popped the
// owning Configuration from its deque). Under that discipline the
// `use_count() == 1` test is race-free:
//
//   - count == 1: this box holds the only reference, and since no other
//     thread may copy *this box*, no new reference can appear concurrently.
//     Mutating in place is safe.
//   - count > 1: some other box shares the payload (it may even be dropping
//     its reference right now). We never mutate shared payloads; we clone.
//     A stale count can only err toward an unnecessary clone, never toward
//     a shared mutation.
#pragma once

#include <memory>
#include <utility>

namespace copar::support {

template <class T>
class CowBox {
 public:
  CowBox() : p_(std::make_shared<T>()) {}
  explicit CowBox(T v) : p_(std::make_shared<T>(std::move(v))) {}

  /// Read access. The payload behind `->`/`*` is const: all mutation must
  /// go through mut() so the clone-on-share check cannot be bypassed.
  [[nodiscard]] const T& operator*() const noexcept { return *p_; }
  [[nodiscard]] const T* operator->() const noexcept { return p_.get(); }

  // Container conveniences so read-only call sites (range-for, size checks)
  // keep the syntax of a plain member.
  [[nodiscard]] auto begin() const noexcept { return std::as_const(*p_).begin(); }
  [[nodiscard]] auto end() const noexcept { return std::as_const(*p_).end(); }
  [[nodiscard]] auto size() const noexcept { return p_->size(); }
  [[nodiscard]] bool empty() const noexcept { return p_->empty(); }
  template <class K>
  [[nodiscard]] bool contains(const K& k) const {
    return p_->find(k) != p_->end();
  }

  /// Mutable access; clones the payload iff it is shared. See the file
  /// header for why the use_count() test is sound.
  [[nodiscard]] T& mut() {
    if (p_.use_count() != 1) p_ = std::make_shared<T>(*p_);
    return *p_;
  }

 private:
  std::shared_ptr<T> p_;
};

}  // namespace copar::support
