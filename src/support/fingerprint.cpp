#include "src/support/fingerprint.h"

namespace copar::support {

namespace {
constexpr std::size_t kInitialCapacity = 64;  // power of two
}

FingerprintTable::Insert FingerprintTable::insert(const Fingerprint& fp) {
  if (slots_.empty() || occupied_ * 10 >= slots_.size() * 7) grow();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(fp.lo) & mask;
  std::size_t first_tomb = slots_.size();  // sentinel: none seen
  for (;;) {
    const Fingerprint& s = slots_[i];
    if (is_empty(s)) {
      const std::size_t at = first_tomb < slots_.size() ? first_tomb : i;
      slots_[at] = fp;
      ids_[at] = next_id_;
      size_ += 1;
      if (at == i) occupied_ += 1;  // reusing a tombstone keeps occupancy
      return {next_id_++, true};
    }
    if (is_tomb(s)) {
      if (first_tomb == slots_.size()) first_tomb = i;
    } else if (s == fp) {
      return {ids_[i], false};
    }
    i = (i + 1) & mask;
  }
}

bool FingerprintTable::contains(const Fingerprint& fp) const {
  if (slots_.empty()) return false;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(fp.lo) & mask;
  for (;;) {
    const Fingerprint& s = slots_[i];
    if (is_empty(s)) return false;
    if (!is_tomb(s) && s == fp) return true;
    i = (i + 1) & mask;
  }
}

bool FingerprintTable::erase(const Fingerprint& fp) {
  if (slots_.empty()) return false;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(fp.lo) & mask;
  for (;;) {
    Fingerprint& s = slots_[i];
    if (is_empty(s)) return false;
    if (!is_tomb(s) && s == fp) {
      s = Fingerprint{0, 1};
      size_ -= 1;
      return true;
    }
    i = (i + 1) & mask;
  }
}

void FingerprintTable::grow() {
  const std::size_t new_cap = slots_.empty() ? kInitialCapacity : slots_.size() * 2;
  std::vector<Fingerprint> old_slots = std::move(slots_);
  std::vector<std::uint32_t> old_ids = std::move(ids_);
  slots_.assign(new_cap, Fingerprint{});
  ids_.assign(new_cap, 0);
  occupied_ = size_;  // rehash drops tombstones
  const std::size_t mask = new_cap - 1;
  for (std::size_t k = 0; k < old_slots.size(); ++k) {
    const Fingerprint& s = old_slots[k];
    if (is_empty(s) || is_tomb(s)) continue;
    std::size_t i = static_cast<std::size_t>(s.lo) & mask;
    while (!is_empty(slots_[i])) i = (i + 1) & mask;
    slots_[i] = s;
    ids_[i] = old_ids[k];
  }
}

}  // namespace copar::support
