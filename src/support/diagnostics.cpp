#include "src/support/diagnostics.h"

#include <algorithm>
#include <cctype>
#include <iostream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <tuple>

#include "src/support/json.h"

namespace copar {

std::string to_string(SourceLoc loc) {
  if (!loc.valid()) return "<unknown>";
  std::ostringstream os;
  os << loc.line << ':' << loc.column;
  return os.str();
}

std::string to_string(SourceSpan span) {
  if (!span.valid()) return "<unknown>";
  std::ostringstream os;
  os << span.begin.line << ':' << span.begin.column;
  if (span.end.valid() && span.end != span.begin) {
    os << '-' << span.end.line << ':' << span.end.column;
  }
  return os.str();
}

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message) {
  Diagnostic d;
  d.severity = sev;
  d.loc = loc;
  d.message = std::move(message);
  d.code = "syntax";
  d.span = SourceSpan::at(loc);
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(std::move(d));
}

bool DiagnosticEngine::report(Diagnostic d) {
  if (!d.span.valid() && d.loc.valid()) d.span = SourceSpan::at(d.loc);
  if (!d.loc.valid() && d.span.valid()) d.loc = d.span.begin;
  if (!code_enabled(d.code)) {
    ++disabled_count_;
    return false;
  }
  if (suppressed(d.code, d.loc)) {
    ++suppressed_count_;
    return false;
  }
  if (d.severity == Severity::Error) ++error_count_;
  diags_.push_back(std::move(d));
  return true;
}

namespace {

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) s.remove_suffix(1);
  return s;
}

}  // namespace

void DiagnosticEngine::load_suppressions(std::string_view source) {
  constexpr std::string_view kMarker = "copar-ignore";
  std::uint32_t line_no = 1;
  std::size_t pos = 0;
  while (pos < source.size()) {
    const std::size_t eol = source.find('\n', pos);
    const std::string_view line =
        source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);

    const std::size_t comment = line.find("//");
    if (comment != std::string_view::npos) {
      std::string_view rest = trim(line.substr(comment + 2));
      if (rest.starts_with(kMarker)) {
        rest.remove_prefix(kMarker.size());
        rest = trim(rest);
        std::set<std::string> codes;
        if (rest.starts_with('(')) {
          const std::size_t close = rest.find(')');
          std::string_view list = rest.substr(1, close == std::string_view::npos
                                                     ? std::string_view::npos
                                                     : close - 1);
          while (!list.empty()) {
            const std::size_t comma = list.find(',');
            const std::string_view code = trim(list.substr(0, comma));
            if (!code.empty()) codes.insert(std::string(code));
            if (comma == std::string_view::npos) break;
            list.remove_prefix(comma + 1);
          }
        }
        if (codes.empty()) codes.insert("*");
        // A comment alone on its line guards the next line; a trailing
        // comment guards its own line.
        const bool own_line = trim(line.substr(0, comment)).empty();
        const std::uint32_t target = own_line ? line_no + 1 : line_no;
        suppressions_[target].insert(codes.begin(), codes.end());
      }
    }

    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line_no;
  }
}

bool DiagnosticEngine::suppressed(std::string_view code, SourceLoc loc) const {
  if (!loc.valid()) return false;
  const auto it = suppressions_.find(loc.line);
  if (it == suppressions_.end()) return false;
  return it->second.contains("*") || it->second.contains(std::string(code));
}

std::size_t DiagnosticEngine::count(Severity sev) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [sev](const Diagnostic& d) { return d.severity == sev; }));
}

void DiagnosticEngine::sort_by_location() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.span, a.code, a.message) <
                            std::tie(b.span, b.code, b.message);
                   });
}

std::string DiagnosticEngine::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << copar::to_string(d.loc) << ": " << severity_name(d.severity) << ": " << d.message
       << '\n';
  }
  return os.str();
}

namespace {

/// Returns the 1-based `line` of `source` (without the newline), or empty.
std::string_view source_line(std::string_view source, std::uint32_t line) {
  std::uint32_t cur = 1;
  std::size_t pos = 0;
  while (cur < line) {
    pos = source.find('\n', pos);
    if (pos == std::string_view::npos) return {};
    ++pos;
    ++cur;
  }
  const std::size_t eol = source.find('\n', pos);
  std::string_view text =
      source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
  if (text.ends_with('\r')) text.remove_suffix(1);
  return text;
}

void render_caret_line(std::ostream& os, std::string_view source, SourceSpan span) {
  if (!span.valid()) return;
  const std::string_view text = source_line(source, span.begin.line);
  if (text.empty() && span.begin.column > 1) return;
  os << "    | " << text << '\n';
  os << "    | ";
  const std::size_t start = span.begin.column > 0 ? span.begin.column - 1 : 0;
  std::size_t width = 1;
  if (span.end.valid() && span.end.line == span.begin.line && span.end.column > span.begin.column) {
    width = span.end.column - span.begin.column;
  } else if (span.end.valid() && span.end.line > span.begin.line) {
    width = text.size() > start ? text.size() - start : 1;
  }
  for (std::size_t i = 0; i < start; ++i) {
    os << (i < text.size() && text[i] == '\t' ? '\t' : ' ');
  }
  os << '^';
  for (std::size_t i = 1; i < width; ++i) os << '~';
  os << '\n';
}

void json_span(support::JsonWriter& w, SourceSpan span) {
  w.begin_object();
  w.key("line");
  w.value(static_cast<std::uint64_t>(span.begin.line));
  w.key("column");
  w.value(static_cast<std::uint64_t>(span.begin.column));
  w.key("end_line");
  w.value(static_cast<std::uint64_t>(span.end.valid() ? span.end.line : span.begin.line));
  w.key("end_column");
  w.value(static_cast<std::uint64_t>(span.end.valid() ? span.end.column : span.begin.column));
  w.end_object();
}

}  // namespace

void DiagnosticEngine::render_text(std::ostream& os, std::string_view source,
                                   std::string_view file) const {
  for (const Diagnostic& d : diags_) {
    os << file << ':' << copar::to_string(d.loc) << ": " << severity_name(d.severity);
    if (!d.code.empty()) os << " [" << d.code << ']';
    os << ": " << d.message << '\n';
    render_caret_line(os, source, d.span);
    for (const DiagNote& n : d.notes) {
      if (n.span.valid()) {
        os << "  note: " << n.message << " (at " << copar::to_string(n.span.begin) << ")\n";
      } else {
        os << "  note: " << n.message << '\n';
      }
    }
  }
  os << count(Severity::Error) << " error(s), " << count(Severity::Warning) << " warning(s)";
  if (suppressed_count_ != 0) os << ", " << suppressed_count_ << " suppressed";
  os << '\n';
}

void DiagnosticEngine::render_json(std::ostream& os, std::string_view file,
                                   const std::function<void(support::JsonWriter&)>& extra) const {
  support::JsonWriter w(os);
  w.begin_object();
  w.key("file");
  w.value(file);
  w.key("findings");
  w.begin_array();
  for (const Diagnostic& d : diags_) {
    w.begin_object();
    w.key("code");
    w.value(d.code);
    w.key("severity");
    w.value(severity_name(d.severity));
    w.key("message");
    w.value(d.message);
    w.key("span");
    json_span(w, d.span);
    if (!d.notes.empty()) {
      w.key("notes");
      w.begin_array();
      for (const DiagNote& n : d.notes) {
        w.begin_object();
        w.key("message");
        w.value(n.message);
        if (n.span.valid()) {
          w.key("span");
          json_span(w, n.span);
        }
        w.end_object();
      }
      w.end_array();
    }
    if (!d.related_spans.empty()) {
      w.key("related");
      w.begin_array();
      for (const SourceSpan& s : d.related_spans) json_span(w, s);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.key("summary");
  w.begin_object();
  w.key("errors");
  w.value(static_cast<std::uint64_t>(count(Severity::Error)));
  w.key("warnings");
  w.value(static_cast<std::uint64_t>(count(Severity::Warning)));
  w.key("suppressed");
  w.value(static_cast<std::uint64_t>(suppressed_count_));
  w.end_object();
  if (extra) extra(w);
  w.end_object();
  os << '\n';
}

namespace {

std::string_view sarif_level(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

void sarif_region(support::JsonWriter& w, SourceSpan span) {
  w.key("region");
  w.begin_object();
  w.key("startLine");
  w.value(static_cast<std::uint64_t>(span.begin.line));
  w.key("startColumn");
  w.value(static_cast<std::uint64_t>(span.begin.column));
  if (span.end.valid()) {
    w.key("endLine");
    w.value(static_cast<std::uint64_t>(span.end.line));
    w.key("endColumn");
    w.value(static_cast<std::uint64_t>(span.end.column));
  }
  w.end_object();
}

void sarif_location(support::JsonWriter& w, std::string_view file, SourceSpan span) {
  w.begin_object();
  w.key("physicalLocation");
  w.begin_object();
  w.key("artifactLocation");
  w.begin_object();
  w.key("uri");
  w.value(file);
  w.end_object();
  if (span.valid()) sarif_region(w, span);
  w.end_object();
  w.end_object();
}

}  // namespace

void DiagnosticEngine::render_sarif(std::ostream& os, std::string_view file,
                                    std::span<const RuleInfo> rules) const {
  support::JsonWriter w(os);
  w.begin_object();
  w.key("version");
  w.value("2.1.0");
  w.key("$schema");
  w.value(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
      "sarif-schema-2.1.0.json");
  w.key("runs");
  w.begin_array();
  w.begin_object();

  w.key("tool");
  w.begin_object();
  w.key("driver");
  w.begin_object();
  w.key("name");
  w.value("copar-check");
  w.key("informationUri");
  w.value("https://github.com/copar/copar");
  w.key("rules");
  w.begin_array();
  for (const RuleInfo& r : rules) {
    w.begin_object();
    w.key("id");
    w.value(r.id);
    w.key("shortDescription");
    w.begin_object();
    w.key("text");
    w.value(r.summary);
    w.end_object();
    w.key("help");
    w.begin_object();
    w.key("text");
    w.value(r.help);
    w.end_object();
    w.key("defaultConfiguration");
    w.begin_object();
    w.key("level");
    w.value(sarif_level(r.default_severity));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();

  w.key("results");
  w.begin_array();
  for (const Diagnostic& d : diags_) {
    w.begin_object();
    w.key("ruleId");
    w.value(d.code);
    w.key("level");
    w.value(sarif_level(d.severity));
    w.key("message");
    w.begin_object();
    w.key("text");
    w.value(d.message);
    w.end_object();
    w.key("locations");
    w.begin_array();
    sarif_location(w, file, d.span);
    w.end_array();
    if (!d.related_spans.empty()) {
      w.key("relatedLocations");
      w.begin_array();
      for (const SourceSpan& s : d.related_spans) sarif_location(w, file, s);
      w.end_array();
    }
    // Witness interleavings (and other stepwise notes) become a SARIF code
    // flow so viewers can replay the schedule.
    if (!d.notes.empty()) {
      w.key("codeFlows");
      w.begin_array();
      w.begin_object();
      w.key("threadFlows");
      w.begin_array();
      w.begin_object();
      w.key("locations");
      w.begin_array();
      for (const DiagNote& n : d.notes) {
        w.begin_object();
        w.key("location");
        w.begin_object();
        w.key("message");
        w.begin_object();
        w.key("text");
        w.value(n.message);
        w.end_object();
        if (n.span.valid()) {
          w.key("physicalLocation");
          w.begin_object();
          w.key("artifactLocation");
          w.begin_object();
          w.key("uri");
          w.value(file);
          w.end_object();
          sarif_region(w, n.span);
          w.end_object();
        }
        w.end_object();
        w.end_object();
      }
      w.end_array();
      w.end_object();
      w.end_array();
      w.end_object();
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();

  w.end_object();
  w.end_array();
  w.end_object();
  os << '\n';
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
  suppressed_count_ = 0;
  disabled_count_ = 0;
  suppressions_.clear();
}

void require(bool cond, std::string_view message) {
  if (!cond) throw Error(std::string(message));
}

bool warn_once(std::string_view code, const std::string& message) {
  static std::mutex mu;
  static std::set<std::string, std::less<>> seen;
  {
    const std::scoped_lock lock(mu);
    if (!seen.emplace(code).second) return false;
  }
  std::cerr << "copar: warning (" << code << "): " << message << '\n';
  return true;
}

}  // namespace copar
