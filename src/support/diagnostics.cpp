#include "src/support/diagnostics.h"

#include <sstream>

namespace copar {

std::string to_string(SourceLoc loc) {
  if (!loc.valid()) return "<unknown>";
  std::ostringstream os;
  os << loc.line << ':' << loc.column;
  return os.str();
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

std::string DiagnosticEngine::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << copar::to_string(d.loc) << ": ";
    switch (d.severity) {
      case Severity::Note: os << "note: "; break;
      case Severity::Warning: os << "warning: "; break;
      case Severity::Error: os << "error: "; break;
    }
    os << d.message << '\n';
  }
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

void require(bool cond, std::string_view message) {
  if (!cond) throw Error(std::string(message));
}

}  // namespace copar
