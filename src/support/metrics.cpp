#include "src/support/metrics.h"

#include <cctype>
#include <ostream>

#include "src/support/json.h"

namespace copar::telemetry {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes
/// '_' (dots in keys like "worker0.expansion" included).
std::string sanitize_prom(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

void write_map_object(support::JsonWriter& w, const char* name,
                      const std::map<std::string, std::uint64_t>& m) {
  w.key(name);
  w.begin_object();
  for (const auto& [k, v] : m) {
    w.key(k);
    w.value(v);
  }
  w.end_object();
}

void write_ms_object(support::JsonWriter& w, const char* name,
                     const std::map<std::string, std::uint64_t>& ns_map) {
  w.key(name);
  w.begin_object();
  for (const auto& [k, v] : ns_map) {
    w.key(k);
    w.value_fixed(static_cast<double>(v) / 1e6);
  }
  w.end_object();
}

}  // namespace

MetricsSnapshot MetricsSnapshot::capture() {
  return from(Telemetry::global().published_stats());
}

MetricsSnapshot MetricsSnapshot::from(const StatRegistry& stats) {
  Telemetry& tel = Telemetry::global();
  MetricsSnapshot snap;
  snap.counters = stats.all();
  snap.gauges = stats.gauges();
  snap.times_ns = stats.times_ns();
  for (const Telemetry::TrackStats& track : tel.tracks()) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (track.phase_ns[i] == 0 && track.phase_counts[i] == 0) continue;
      const char* name = phase_name(static_cast<Phase>(i));
      snap.phases_ns[name] += track.phase_ns[i];
      snap.phase_counts[name] += track.phase_counts[i];
    }
  }
  snap.peak_rss_bytes = copar::telemetry::peak_rss_bytes();
  snap.timeline = tel.timeline();
  snap.sample_interval_ms = tel.sampler_interval_ms();
  snap.timeline_compactions = tel.timeline_compactions();
  return snap;
}

void MetricsSnapshot::write_text(std::ostream& os) const {
  for (const auto& [k, v] : counters) os << k << '=' << v << '\n';
  for (const auto& [k, v] : gauges) os << "gauge." << k << '=' << v << '\n';
  for (const auto& [k, v] : phases_ns) {
    os << "phase." << k << "_ms=" << static_cast<double>(v) / 1e6 << '\n';
  }
  for (const auto& [k, v] : times_ns) {
    os << "timing." << k << "_ms=" << static_cast<double>(v) / 1e6 << '\n';
  }
  os << "peak_rss_bytes=" << peak_rss_bytes << '\n';
  os << "timeline_samples=" << timeline.size() << '\n';
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  support::JsonWriter w(os);
  w.begin_object();
  w.key("tool");
  w.value("copar-metrics");
  w.key("schema");
  w.value(std::uint64_t{1});
  write_map_object(w, "counters", counters);
  write_map_object(w, "gauges", gauges);
  write_ms_object(w, "timings_ms", times_ns);
  write_ms_object(w, "phases_ms", phases_ns);
  write_map_object(w, "phase_counts", phase_counts);
  w.key("memory");
  w.begin_object();
  w.key("peak_rss_bytes");
  w.value(peak_rss_bytes);
  w.end_object();
  w.key("timeline");
  w.begin_object();
  w.key("sample_interval_ms");
  w.value_fixed(sample_interval_ms);
  w.key("compactions");
  w.value(timeline_compactions);
  w.key("samples");
  w.begin_array();
  const std::uint64_t base_ns = timeline.empty() ? 0 : timeline.front().t_ns;
  for (const Telemetry::Sample& s : timeline) {
    w.begin_object();
    w.key("t_ms");
    w.value_fixed(static_cast<double>(s.t_ns - base_ns) / 1e6);
    for (std::size_t i = 0; i < kGaugeCount; ++i) {
      w.key(gauge_name(static_cast<Gauge>(i)));
      w.value(s.gauges[i]);
    }
    w.key("rss_bytes");
    w.value(s.rss_bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  os << '\n';
}

void MetricsSnapshot::write_prometheus(std::ostream& os) const {
  for (const auto& [k, v] : counters) {
    const std::string name = "copar_" + sanitize_prom(k) + "_total";
    os << "# TYPE " << name << " counter\n" << name << ' ' << v << '\n';
  }
  for (const auto& [k, v] : gauges) {
    const std::string name = "copar_" + sanitize_prom(k);
    os << "# TYPE " << name << " gauge\n" << name << ' ' << v << '\n';
  }
  if (!phases_ns.empty()) {
    os << "# TYPE copar_phase_seconds gauge\n";
    for (const auto& [k, v] : phases_ns) {
      os << "copar_phase_seconds{phase=\"" << k << "\"} "
         << static_cast<double>(v) / 1e9 << '\n';
    }
  }
  if (!times_ns.empty()) {
    os << "# TYPE copar_timing_seconds gauge\n";
    for (const auto& [k, v] : times_ns) {
      os << "copar_timing_seconds{name=\"" << sanitize_prom(k) << "\"} "
         << static_cast<double>(v) / 1e9 << '\n';
    }
  }
  os << "# TYPE copar_peak_rss_bytes gauge\ncopar_peak_rss_bytes " << peak_rss_bytes
     << '\n';
  os << "# TYPE copar_timeline_samples gauge\ncopar_timeline_samples "
     << timeline.size() << '\n';
}

}  // namespace copar::telemetry
