#include "src/support/stats.h"

#include <sstream>

namespace copar {

void StatRegistry::add(const std::string& name, std::uint64_t delta) { counters_[name] += delta; }

void StatRegistry::set(const std::string& name, std::uint64_t value) { counters_[name] = value; }

std::uint64_t StatRegistry::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void StatRegistry::set_gauge(const std::string& name, std::uint64_t value) {
  gauges_[name] = value;
}

std::uint64_t StatRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

void StatRegistry::add_time_ns(const std::string& name, std::uint64_t ns) {
  times_ns_[name] += ns;
}

void StatRegistry::overlay(const StatRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_.insert_or_assign(name, value);
  for (const auto& [name, value] : other.gauges_) gauges_.insert_or_assign(name, value);
  for (const auto& [name, value] : other.times_ns_) times_ns_.insert_or_assign(name, value);
}

std::string StatRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) os << name << '=' << value << '\n';
  return os.str();
}

}  // namespace copar
