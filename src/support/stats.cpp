#include "src/support/stats.h"

#include <sstream>

namespace copar {

void StatRegistry::add(const std::string& name, std::uint64_t delta) { counters_[name] += delta; }

void StatRegistry::set(const std::string& name, std::uint64_t value) { counters_[name] = value; }

std::uint64_t StatRegistry::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string StatRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) os << name << '=' << value << '\n';
  return os.str();
}

}  // namespace copar
