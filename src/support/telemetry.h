// Telemetry: phase timers, trace events, memory gauges, progress heartbeat.
//
// The paper's evaluation is metric-driven (configuration counts, pruned
// interleavings); this layer adds the *where-does-time-go* half so perf
// work on the engines is measurable:
//
//   * PhaseTimers — monotonic-clock accounting per engine phase (parse,
//     lower, static-info, expansion, stubborn-set computation,
//     canonicalization/dedup, folding, ...). Nested scopes are accounted
//     exclusively: a phase's total is its *self* time, so the totals sum
//     to the instrumented wall time.
//   * TraceRing — bounded ring buffer of trace events emitted as Chrome
//     `trace_event` JSON (`copar-cli ... --trace out.json`), viewable in
//     chrome://tracing or Perfetto. When the buffer wraps, the oldest
//     events drop and the count is reported in the file's metadata.
//   * Memory — peak RSS (getrusage) plus engine-reported byte estimates
//     (visited-set keys, abstract stores) published as StatRegistry gauges.
//   * Progress — opt-in stderr heartbeat (`--progress`) with configs/sec
//     and frontier depth for long truncation-bound explorations.
//
// Everything is OFF by default: a disabled ScopedPhase is one branch, so
// the hot loops pay (measurably) nothing unless a CLI flag or benchmark
// turns instrumentation on. Single-threaded, like the engines; the global
// instance is not thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace copar::telemetry {

/// Engine phases with dedicated timers. Order defines report order.
enum class Phase : std::uint8_t {
  Parse,        // lexing + parsing + resolution
  Lower,        // AST -> atomic-action program
  StaticInfo,   // location classes / conflict relation precomputation
  Expansion,    // concrete exploration main loop (self time)
  Stubborn,     // stubborn-set computation (Algorithm 1)
  Canonicalize, // canonical keys + visited-set dedup
  Folding,      // abstract exploration / fixpoint (§6)
  Analysis,     // §5 client analyses + §7 applications
  kCount,
};

/// Stable lowercase name used in reports and trace files.
const char* phase_name(Phase p);

/// Monotonic clock, nanoseconds. Epoch is arbitrary (comparisons only).
std::uint64_t now_ns();

/// Peak resident set size of this process in bytes (getrusage; 0 if
/// unavailable).
std::uint64_t peak_rss_bytes();

/// One recorded trace event (Chrome trace_event model, reduced).
struct TraceEvent {
  std::uint64_t ts_ns = 0;   // start timestamp
  std::uint64_t dur_ns = 0;  // duration ('X' events)
  const char* name = "";     // must point at static storage
  char ph = 'X';             // 'X' complete, 'C' counter, 'i' instant
  std::uint64_t value = 0;   // counter value ('C' events)
};

class Telemetry {
 public:
  /// Process-wide instance. Engines reach telemetry through this; the CLI
  /// and benchmark mains configure it before running an engine.
  static Telemetry& global();

  // --- configuration -----------------------------------------------------

  /// Master switch for phase timers and memory gauges.
  void enable_metrics(bool on = true) { metrics_on_ = on; }
  /// Start recording trace events into a ring of `capacity` events.
  void enable_trace(std::size_t capacity = 1 << 16);
  /// Start the stderr heartbeat, printed at most every `interval_s`.
  void enable_progress(double interval_s = 2.0);

  [[nodiscard]] bool metrics_enabled() const noexcept { return metrics_on_; }
  [[nodiscard]] bool trace_enabled() const noexcept { return trace_on_; }
  /// True if ScopedPhase should do any work at all.
  [[nodiscard]] bool scopes_enabled() const noexcept { return metrics_on_ || trace_on_; }

  /// Injectable clock for deterministic unit tests.
  using ClockFn = std::uint64_t (*)();
  void set_clock_for_test(ClockFn clock) { clock_ = clock ? clock : &now_ns; }

  /// Clears accumulated timers, trace events, and progress state (keeps
  /// the enabled/disabled configuration).
  void reset();

  // --- phase timers (used via ScopedPhase) -------------------------------

  void enter(Phase p);
  void leave(Phase p);

  /// Accumulated *self* nanoseconds of `p`.
  [[nodiscard]] std::uint64_t phase_ns(Phase p) const {
    return totals_ns_[static_cast<std::size_t>(p)];
  }
  /// Number of completed scopes of `p`.
  [[nodiscard]] std::uint64_t phase_count(Phase p) const {
    return counts_[static_cast<std::size_t>(p)];
  }
  /// Current nesting depth (for tests).
  [[nodiscard]] std::size_t phase_depth() const noexcept { return stack_.size(); }

  // --- trace ring --------------------------------------------------------

  void record_complete(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);
  void record_counter(const char* name, std::uint64_t value);
  void record_instant(const char* name);

  [[nodiscard]] std::size_t trace_size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t trace_dropped() const noexcept {
    return total_events_ - ring_.size();
  }
  /// Events in recording order, oldest first.
  [[nodiscard]] std::vector<TraceEvent> trace_events() const;

  /// Writes the Chrome trace_event JSON document ({"traceEvents": [...]}).
  void write_trace_json(std::ostream& os) const;
  /// Convenience: write_trace_json to `path`. Returns false on I/O error.
  bool write_trace_file(const std::string& path) const;

  // --- progress heartbeat ------------------------------------------------

  /// Cheap per-transition hook; prints a heartbeat to stderr when the
  /// configured interval has elapsed. `frontier` is the engine's pending
  /// work (DFS stack / BFS queue / worklist depth).
  void maybe_progress(std::uint64_t configs, std::uint64_t transitions, std::size_t frontier) {
    if (!progress_on_) return;
    progress_slow(configs, transitions, frontier);
  }

 private:
  void push_event(const TraceEvent& e);
  void progress_slow(std::uint64_t configs, std::uint64_t transitions, std::size_t frontier);

  bool metrics_on_ = false;
  bool trace_on_ = false;
  bool progress_on_ = false;
  ClockFn clock_ = &now_ns;

  struct Open {
    Phase phase;
    std::uint64_t start_ns;   // scope entry (inclusive, for trace events)
    std::uint64_t resume_ns;  // last time this scope was on top
  };
  std::vector<Open> stack_;
  std::uint64_t totals_ns_[static_cast<std::size_t>(Phase::kCount)] = {};
  std::uint64_t counts_[static_cast<std::size_t>(Phase::kCount)] = {};

  std::vector<TraceEvent> ring_;
  std::size_t ring_capacity_ = 0;
  std::size_t ring_head_ = 0;  // next slot to overwrite once full
  std::uint64_t total_events_ = 0;

  std::uint64_t progress_interval_ns_ = 0;
  std::uint64_t progress_start_ns_ = 0;
  std::uint64_t progress_last_ns_ = 0;
  std::uint64_t progress_last_configs_ = 0;
};

/// RAII phase scope. One branch when telemetry is off; when on, exclusive
/// time lands in the phase timers and (if tracing) a complete event with
/// the scope's *inclusive* duration lands in the ring.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p) : phase_(p) {
    Telemetry& t = Telemetry::global();
    if (t.scopes_enabled()) {
      active_ = true;
      t.enter(p);
    }
  }
  ~ScopedPhase() {
    if (active_) Telemetry::global().leave(phase_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  bool active_ = false;
};

}  // namespace copar::telemetry
