// Telemetry: per-thread trace tracks, phase timers, live gauges, a
// time-series sampler, progress heartbeat, and the published metrics seam.
//
// The paper's evaluation is metric-driven (configuration counts, pruned
// interleavings); this layer adds the *where-does-time-go* half so perf
// work on the engines is measurable:
//
//   * PhaseTimers — monotonic-clock accounting per engine phase (parse,
//     lower, static-info, expansion, stubborn-set computation,
//     canonicalization/dedup, folding, ...). Nested scopes are accounted
//     exclusively: a phase's total is its *self* time, so the totals sum
//     to the instrumented wall time. Every thread owns its own timer
//     stack — the parallel engine's workers time their own expansion /
//     stubborn / canonicalize phases and the engine aggregates the
//     per-track totals into the `workers.{min,max,sum}` report keys.
//   * TraceRing — bounded per-thread ring buffers of trace events emitted
//     as one Chrome `trace_event` file (`copar-cli ... --trace out.json`),
//     viewable in chrome://tracing or Perfetto. Each registered thread is
//     its own `tid` track, so worker threads, the sampler, and the main
//     thread appear as parallel timelines. When a ring wraps, the oldest
//     events of that track drop and the total is reported in the file.
//   * Live gauges — a fixed set of lock-free atomic slots (configs,
//     transitions, frontier depth, visited entries/bytes, steals) that
//     engines update from any thread. The progress heartbeat and the
//     sampler read *only* these snapshots, never engine internals.
//   * Sampler — an opt-in background thread (`--sample <ms>`) that
//     periodically snapshots the live gauges plus RSS into a bounded
//     timeline (emitted as `"timeline"` in `--json` reports and as 'C'
//     counter events in the trace). "It got slow at the end" becomes a
//     graph.
//   * Progress — opt-in stderr heartbeat (`--progress`) with configs/sec
//     and frontier depth for long truncation-bound explorations.
//
// Thread-safety contract: the instance returned by Telemetry::global() is
// safe to use from any number of threads. Phase timers and trace events
// are routed through thread-local tracks (single-writer, no locks on the
// hot path); live gauges are relaxed atomics; configuration calls
// (enable_*, reset, set_clock_for_test) and the flush/report calls
// (write_trace_json, tracks, timeline) are serialized by the caller in
// practice — configure before the run, flush after the join. Everything
// is OFF by default: a disabled ScopedPhase is one branch, so the hot
// loops pay (measurably) nothing unless a CLI flag or benchmark turns
// instrumentation on.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/support/stats.h"

namespace copar::support {
class JsonWriter;
}

namespace copar::telemetry {

/// Engine phases with dedicated timers. Order defines report order.
enum class Phase : std::uint8_t {
  Parse,        // lexing + parsing + resolution
  Lower,        // AST -> atomic-action program
  StaticInfo,   // location classes / conflict relation precomputation
  Expansion,    // concrete exploration main loop (self time)
  Stubborn,     // stubborn-set computation (Algorithm 1)
  Canonicalize, // canonical keys + visited-set dedup
  Folding,      // abstract exploration / fixpoint (§6)
  Analysis,     // §5 client analyses + §7 applications
  kCount,
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

/// Stable lowercase name used in reports and trace files.
const char* phase_name(Phase p);

/// Live gauge slots engines publish into (relaxed atomics; any thread).
/// The heartbeat and the sampler consume these — never engine internals,
/// which parallel workers mutate without synchronization.
enum class Gauge : std::uint8_t {
  Configs,        // distinct configurations admitted so far
  Transitions,    // transitions fired so far
  Frontier,       // pending work (stack / queue / deque total)
  VisitedEntries, // visited-set entry count
  VisitedBytes,   // visited-set byte estimate (updated coarsely)
  Steals,         // work-stealing frontier: successful steals
  FrontierBytes,  // deep bytes of live shared configuration structure
                  // (frontier-dominated; see src/sem/cowstats.h)
  kCount,
};

inline constexpr std::size_t kGaugeCount = static_cast<std::size_t>(Gauge::kCount);

/// Stable lowercase name used in the timeline and trace counter tracks.
const char* gauge_name(Gauge g);

/// Monotonic clock, nanoseconds. Epoch is arbitrary (comparisons only).
std::uint64_t now_ns();

/// Peak resident set size of this process in bytes (getrusage; 0 if
/// unavailable).
std::uint64_t peak_rss_bytes();

/// One recorded trace event (Chrome trace_event model, reduced).
struct TraceEvent {
  std::uint64_t ts_ns = 0;   // start timestamp
  std::uint64_t dur_ns = 0;  // duration ('X' events)
  const char* name = "";     // must point at static storage
  char ph = 'X';             // 'X' complete, 'C' counter, 'i' instant
  std::uint64_t value = 0;   // counter value ('C' events)
  std::uint32_t tid = 0;     // track id (filled at flush from the ring's owner)
};

class Telemetry {
 public:
  /// Process-wide instance. Engines reach telemetry through this; the CLI
  /// and benchmark mains configure it before running an engine.
  static Telemetry& global();

  // --- configuration -----------------------------------------------------

  /// Master switch for phase timers and memory gauges.
  void enable_metrics(bool on = true) { metrics_on_.store(on, std::memory_order_relaxed); }
  /// Start recording trace events into per-thread rings of `capacity`
  /// events each.
  void enable_trace(std::size_t capacity = 1 << 16);
  /// Start the stderr heartbeat, printed at most every `interval_s`.
  void enable_progress(double interval_s = 2.0);

  [[nodiscard]] bool metrics_enabled() const noexcept {
    return metrics_on_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool trace_enabled() const noexcept {
    return trace_on_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool progress_enabled() const noexcept {
    return progress_on_.load(std::memory_order_relaxed);
  }
  /// True if ScopedPhase should do any work at all.
  [[nodiscard]] bool scopes_enabled() const noexcept { return metrics_enabled() || trace_enabled(); }
  /// True if engines should maintain the live gauges (someone — the
  /// heartbeat or the sampler — is reading them).
  [[nodiscard]] bool live_enabled() const noexcept {
    return progress_enabled() || sampler_on_.load(std::memory_order_relaxed);
  }

  /// Injectable clock for deterministic unit tests.
  using ClockFn = std::uint64_t (*)();
  void set_clock_for_test(ClockFn fn) {
    clock_.store(fn != nullptr ? fn : &now_ns, std::memory_order_relaxed);
  }

  /// Clears accumulated timers, trace events, live gauges, the timeline,
  /// and progress state; purges retired thread tracks (keeps the
  /// enabled/disabled configuration). Stops the sampler if running. Must
  /// not race with recording threads — call between runs.
  void reset();

  // --- phase timers (used via ScopedPhase; per-thread) -------------------

  void enter(Phase p);
  void leave(Phase p);

  /// Accumulated *self* nanoseconds of `p` on the calling thread's track.
  [[nodiscard]] std::uint64_t phase_ns(Phase p) const;
  /// Number of completed scopes of `p` on the calling thread's track.
  [[nodiscard]] std::uint64_t phase_count(Phase p) const;
  /// Current nesting depth of the calling thread (for tests).
  [[nodiscard]] std::size_t phase_depth() const;

  // --- thread tracks -----------------------------------------------------

  /// Snapshot of one registered thread's accumulated phase timers.
  struct TrackStats {
    std::uint32_t tid = 0;
    std::string name;
    std::array<std::uint64_t, kPhaseCount> phase_ns{};
    std::array<std::uint64_t, kPhaseCount> phase_counts{};
  };
  /// All tracks (live and retired since the last reset), tid order.
  [[nodiscard]] std::vector<TrackStats> tracks() const;
  /// Self-nanoseconds of `p` on track `tid` (0 for unknown tids).
  [[nodiscard]] std::uint64_t track_phase_ns(std::uint32_t tid, Phase p) const;

  // --- trace rings -------------------------------------------------------

  void record_complete(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);
  void record_counter(const char* name, std::uint64_t value);
  void record_instant(const char* name);

  /// Total buffered events across all tracks.
  [[nodiscard]] std::size_t trace_size() const;
  /// Total events dropped to ring wrapping across all tracks.
  [[nodiscard]] std::uint64_t trace_dropped() const;
  /// Events oldest-first within each track, tracks in tid order; `tid`
  /// filled in. Call after recording threads have joined.
  [[nodiscard]] std::vector<TraceEvent> trace_events() const;

  /// Writes the Chrome trace_event JSON document ({"traceEvents": [...]})
  /// with one named thread track per registered thread.
  void write_trace_json(std::ostream& os) const;
  /// Convenience: write_trace_json to `path`. Returns false on I/O error.
  bool write_trace_file(const std::string& path) const;

  // --- live gauges -------------------------------------------------------

  void set_live(Gauge g, std::uint64_t v) noexcept {
    live_[static_cast<std::size_t>(g)].store(v, std::memory_order_relaxed);
  }
  void add_live(Gauge g, std::uint64_t delta) noexcept {
    live_[static_cast<std::size_t>(g)].fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t live(Gauge g) const noexcept {
    return live_[static_cast<std::size_t>(g)].load(std::memory_order_relaxed);
  }

  // --- progress heartbeat ------------------------------------------------

  /// Cheap per-transition hook for single-loop engines: publishes the
  /// three classic gauges and runs the heartbeat. `frontier` is the
  /// engine's pending work (DFS stack / BFS queue / worklist depth).
  void maybe_progress(std::uint64_t configs, std::uint64_t transitions, std::size_t frontier) {
    if (!live_enabled()) return;
    set_live(Gauge::Configs, configs);
    set_live(Gauge::Transitions, transitions);
    set_live(Gauge::Frontier, frontier);
    set_live(Gauge::VisitedEntries, configs);
    heartbeat();
  }

  /// Prints a heartbeat to stderr from the live gauges when the configured
  /// interval has elapsed. Thread-safe: concurrent callers race on one CAS
  /// and exactly one prints per interval.
  void heartbeat();

  // --- sampler -----------------------------------------------------------

  /// One timeline sample: a point-in-time copy of every live gauge + RSS.
  struct Sample {
    std::uint64_t t_ns = 0;
    std::uint64_t rss_bytes = 0;
    std::array<std::uint64_t, kGaugeCount> gauges{};
  };

  /// Starts the background sampling thread (idempotent). The thread
  /// registers its own trace track ("sampler") and emits one Sample —
  /// plus 'C' counter events when tracing — every `interval_ms`.
  void start_sampler(double interval_ms);
  /// Stops and joins the sampling thread (no-op when not running).
  void stop_sampler();
  [[nodiscard]] bool sampler_running() const;
  [[nodiscard]] double sampler_interval_ms() const {
    return static_cast<double>(sampler_interval_ns_) / 1e6;
  }

  /// Takes one sample immediately (the sampler thread's tick; also the
  /// deterministic test entry point — drive it with set_clock_for_test).
  void sample_now();
  /// Bounded timeline so far (copy). When the buffer fills, every other
  /// sample is dropped and the minimum spacing doubles — the timeline
  /// keeps full time coverage at halving resolution.
  [[nodiscard]] std::vector<Sample> timeline() const;
  /// Timeline capacity in samples (compaction threshold). Default 4096.
  void set_timeline_capacity(std::size_t cap);
  /// Compactions performed (each halves the resolution).
  [[nodiscard]] std::uint64_t timeline_compactions() const;

  /// Writes {"sample_interval_ms": ..., "compactions": N, "samples":
  /// [{"t_ms": ..., "configs": ..., ...}, ...]} — the `--json` report's
  /// "timeline" member. Timestamps are rebased to the first sample.
  void write_timeline_json(support::JsonWriter& w) const;

  // --- published end-of-run stats (the metrics-export seam) --------------

  /// Engines publish their final StatRegistry here (key-wise overlay, so
  /// multi-engine commands accumulate). MetricsSnapshot::capture() and the
  /// future copar-serve metrics endpoint read it back.
  void publish_stats(const StatRegistry& stats);
  [[nodiscard]] StatRegistry published_stats() const;

 private:
  struct ThreadState;

  /// The calling thread's track, auto-registering ("main" for the first
  /// thread, "thread-<tid>" otherwise).
  ThreadState& state();
  ThreadState* register_state(std::string name);
  void retire_state(ThreadState* s);
  void push_event(ThreadState& s, const TraceEvent& e);
  void sampler_loop();
  [[nodiscard]] std::uint64_t clock() const {
    return clock_.load(std::memory_order_relaxed)();
  }

  friend class ThreadRegistration;

  std::atomic<bool> metrics_on_{false};
  std::atomic<bool> trace_on_{false};
  std::atomic<bool> progress_on_{false};
  std::atomic<bool> sampler_on_{false};
  std::atomic<ClockFn> clock_{&now_ns};

  mutable std::mutex reg_mu_;
  std::vector<std::unique_ptr<ThreadState>> states_;
  std::uint32_t next_tid_ = 1;
  std::size_t ring_capacity_ = 0;
  // The thread that constructed the singleton — its lazily-registered
  // track is named "main" regardless of registration order (the sampler
  // may register first).
  std::thread::id main_thread_id_ = std::this_thread::get_id();
  static thread_local ThreadState* tls_state_;

  std::array<std::atomic<std::uint64_t>, kGaugeCount> live_{};

  std::uint64_t progress_interval_ns_ = 0;
  std::atomic<std::uint64_t> progress_start_ns_{0};
  std::atomic<std::uint64_t> progress_last_ns_{0};
  std::atomic<std::uint64_t> progress_last_configs_{0};

  std::mutex sampler_mu_;       // guards sampler_thread_
  std::mutex sampler_wait_mu_;  // guards sampler_stop_ + cv
  std::condition_variable sampler_cv_;
  std::thread sampler_thread_;
  bool sampler_stop_ = false;
  std::uint64_t sampler_interval_ns_ = 0;

  mutable std::mutex timeline_mu_;
  std::vector<Sample> timeline_;
  std::size_t timeline_capacity_ = 4096;
  std::uint64_t sample_seq_ = 0;     // ticks seen (accepted when seq % stride == 0)
  std::uint64_t sample_stride_ = 1;  // doubles on each compaction
  std::uint64_t timeline_compactions_ = 0;

  mutable std::mutex published_mu_;
  StatRegistry published_;
};

/// RAII phase scope. One branch when telemetry is off; when on, exclusive
/// time lands in the calling thread's phase timers and (if tracing) a
/// complete event with the scope's *inclusive* duration lands in that
/// thread's ring.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p) : phase_(p) {
    Telemetry& t = Telemetry::global();
    if (t.scopes_enabled()) {
      active_ = true;
      t.enter(p);
    }
  }
  ~ScopedPhase() {
    if (active_) Telemetry::global().leave(phase_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  bool active_ = false;
};

/// RAII thread-track registration: names the calling thread's track
/// ("worker3", "sampler", ...) for the trace file and per-track timer
/// queries, and retires the track on destruction so reset() can purge it
/// after the flush. Worker threads construct one at the top of their loop.
class ThreadRegistration {
 public:
  explicit ThreadRegistration(std::string name);
  ~ThreadRegistration();
  ThreadRegistration(const ThreadRegistration&) = delete;
  ThreadRegistration& operator=(const ThreadRegistration&) = delete;

  /// The registered track's id (the `tid` in the trace file).
  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }

 private:
  Telemetry::ThreadState* state_ = nullptr;
  Telemetry::ThreadState* previous_ = nullptr;  // restored on destruction
  std::uint32_t tid_ = 0;
};

}  // namespace copar::telemetry
