// Named counters, gauges, and timings for exploration/analysis statistics.
//
// The paper's evaluation metric is state counts (configurations generated,
// transitions fired, interleavings pruned); StatRegistry gives every engine
// a uniform way to expose them to tests, benchmarks, and the `--json`
// report. Three kinds:
//
//   * counters — monotonically accumulated event counts (`add`/`set`).
//     Hot loops should pre-resolve a Counter handle once per run instead
//     of paying a string map lookup per step.
//   * gauges   — point-in-time measurements (bytes resident, visited-set
//     size estimates). Reported separately; never mixed into to_string()
//     so existing text output stays stable.
//   * timings  — accumulated nanoseconds per named activity (usually
//     copied from the telemetry phase timers at report time).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace copar {

class StatRegistry {
 public:
  /// Pre-resolved handle for a hot-loop counter. The counter is *not*
  /// materialized in the registry until the first add(), so a handle that
  /// never fires leaves to_string() output unchanged (exactly as if
  /// add(name) was never called).
  ///
  /// A handle borrows the registry: it must not outlive it and is
  /// invalidated by clear(). The name must outlive the handle too (engines
  /// pass string literals), so resolving a handle allocates nothing.
  class Counter {
   public:
    Counter() = default;

    void add(std::uint64_t delta = 1) {
      if (slot_ == nullptr) {
        if (reg_ == nullptr) return;  // default-constructed handle: no-op
        slot_ = &reg_->counters_[name_];
      }
      *slot_ += delta;
    }

   private:
    friend class StatRegistry;
    Counter(StatRegistry* reg, const char* name) : reg_(reg), name_(name) {}

    StatRegistry* reg_ = nullptr;
    const char* name_ = "";
    std::uint64_t* slot_ = nullptr;
  };

  /// Interns `name` into a handle (lazy: no counter appears until it fires).
  [[nodiscard]] Counter counter(const char* name) { return Counter(this, name); }

  /// Adds `delta` to counter `name`, creating it at zero on first use.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Sets counter `name` to `value`.
  void set(const std::string& name, std::uint64_t value);

  /// Current value (0 if never touched).
  [[nodiscard]] std::uint64_t get(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const noexcept { return counters_; }

  /// Sets gauge `name` (point-in-time measurement) to `value`.
  void set_gauge(const std::string& name, std::uint64_t value);

  /// Current gauge value (0 if never set).
  [[nodiscard]] std::uint64_t gauge(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& gauges() const noexcept {
    return gauges_;
  }

  /// Accumulates `ns` nanoseconds into timing `name`.
  void add_time_ns(const std::string& name, std::uint64_t ns);

  [[nodiscard]] const std::map<std::string, std::uint64_t>& times_ns() const noexcept {
    return times_ns_;
  }

  /// Key-wise merge of `other` into this registry: every counter, gauge,
  /// and timing in `other` replaces (or creates) the same-named entry
  /// here. Used by the telemetry publish seam so multi-engine commands
  /// accumulate one combined registry.
  void overlay(const StatRegistry& other);

  /// "name=value" lines, sorted by name — counters only (gauges and
  /// timings are report-only kinds, so this output is stable).
  [[nodiscard]] std::string to_string() const;

  void clear() {
    counters_.clear();
    gauges_.clear();
    times_ns_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> gauges_;
  std::map<std::string, std::uint64_t> times_ns_;
};

}  // namespace copar
