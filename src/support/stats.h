// Named counters for exploration/analysis statistics.
//
// The paper's evaluation metric is state counts (configurations generated,
// transitions fired, interleavings pruned); StatRegistry gives every engine
// a uniform way to expose them to tests and benchmarks.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace copar {

class StatRegistry {
 public:
  /// Adds `delta` to counter `name`, creating it at zero on first use.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Sets counter `name` to `value`.
  void set(const std::string& name, std::uint64_t value);

  /// Current value (0 if never touched).
  [[nodiscard]] std::uint64_t get(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const noexcept { return counters_; }

  /// "name=value" lines, sorted by name.
  [[nodiscard]] std::string to_string() const;

  void clear() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace copar
