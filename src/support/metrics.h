// MetricsSnapshot: the metrics export surface.
//
// A point-in-time copy of everything the telemetry layer knows — the
// published StatRegistry (counters / gauges / timings), the phase-timer
// totals across all thread tracks, peak RSS, and the sampler timeline —
// with three renderers: human text, schema-pinned JSON (`"tool":
// "copar-metrics", "schema": 1`), and Prometheus text exposition. The CLI
// exposes it as `copar-cli metrics-dump` and via `--metrics-out <file>`
// on every verb; a future `copar-serve` serves the same snapshot over
// HTTP, so the JSON and Prometheus shapes are contract (pinned by the
// MetricsSchema golden test).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "src/support/stats.h"
#include "src/support/telemetry.h"

namespace copar::telemetry {

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::map<std::string, std::uint64_t> times_ns;
  /// Self-time totals summed across all thread tracks, by phase_name().
  std::map<std::string, std::uint64_t> phases_ns;
  std::map<std::string, std::uint64_t> phase_counts;
  std::uint64_t peak_rss_bytes = 0;
  /// Sampler head (bounded timeline copied at capture time).
  std::vector<Telemetry::Sample> timeline;
  double sample_interval_ms = 0.0;
  std::uint64_t timeline_compactions = 0;

  /// Snapshot the global telemetry instance: published stats + per-track
  /// phase totals + the sampler timeline.
  static MetricsSnapshot capture();

  /// Snapshot from an explicit registry (no global state) — phase totals
  /// and timeline still come from the global telemetry instance.
  static MetricsSnapshot from(const StatRegistry& stats);

  /// `key=value` lines grouped by kind, stable order — for terminals.
  void write_text(std::ostream& os) const;

  /// One JSON object: {"tool": "copar-metrics", "schema": 1, "counters":
  /// {...}, "gauges": {...}, "timings_ms": {...}, "phases_ms": {...},
  /// "phase_counts": {...}, "memory": {"peak_rss_bytes": N},
  /// "timeline": {...}}.
  void write_json(std::ostream& os) const;

  /// Prometheus text exposition format: counters as
  /// `copar_<name>_total`, gauges as `copar_<name>`, phase self-times as
  /// `copar_phase_seconds{phase="..."}`, named timings as
  /// `copar_timing_seconds{name="..."}`, plus `copar_peak_rss_bytes`.
  void write_prometheus(std::ostream& os) const;
};

}  // namespace copar::telemetry
