#include "src/explore/parexplore.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/explore/core.h"
#include "src/explore/frontier.h"
#include "src/sem/cowstats.h"
#include "src/explore/proviso.h"
#include "src/explore/stubborn.h"
#include "src/explore/visited.h"
#include "src/support/telemetry.h"

namespace copar::explore {

using sem::ActionInfo;
using sem::ActionKind;
using sem::Configuration;
using sem::Pid;
using support::Fingerprint;

namespace {

/// Sleep masks are 64-bit pid bitmasks; processes with pid >= 64 simply
/// never sleep (sound — sleep sets only prune).
constexpr Pid kMaxSleepPid = 64;

/// One unit of work: a configuration to expand. `sleep` is its sleep set
/// (pid bitmask) in sleep-sets mode. `redo` != 0 marks a re-exploration
/// item (sleep revisit rule): fire exactly the awakened pids in `redo`
/// instead of a fresh expansion.
struct WorkItem {
  Configuration cfg;
  Fingerprint fp;
  std::uint64_t sleep = 0;
  std::uint64_t redo = 0;
};

/// An edge recorded by fingerprints; translated to dense node ids after the
/// join (node ids are a post-join sort, see merge below).
struct EdgeFp {
  Fingerprint from;
  Fingerprint to;
  std::uint32_t stmt = sem::kNoStmt;
  ActionKind kind = ActionKind::None;
};

/// Worker-local counters, merged (summed / unioned) after the join.
struct WorkerStats {
  std::uint64_t transitions = 0;
  std::uint64_t stubborn_steps = 0;
  std::uint64_t stubborn_singletons = 0;
  std::uint64_t stubborn_reduced_steps = 0;
  std::uint64_t proviso_full_expansions = 0;
  std::uint64_t truncated_transitions = 0;
  std::uint64_t sleep_suppressed_transitions = 0;
  std::uint64_t sleep_reexplorations = 0;
  std::uint64_t sleep_pids_capped = 0;
  std::set<std::uint32_t> violations;
  std::set<std::pair<std::uint32_t, std::uint8_t>> faults;
};

/// Everything one worker accumulates privately. The vectors feed the
/// deterministic post-join merges.
struct WorkerCtx {
  WorkerStats stats;
  StepCounters steps;
  Recorder recorder;
  std::vector<EdgeFp> edges;              // record_graph
  std::vector<Fingerprint> node_fps;      // record_graph: admitted states
  std::vector<Fingerprint> terminal_fps;  // record_graph
  std::vector<Fingerprint> deadlock_fps;  // record_graph
};

}  // namespace

std::optional<Diagnostic> parallel_unsupported(const ExploreOptions& options) {
  if (options.threads > 1 && options.sleep_sets && options.record_graph) {
    Diagnostic d;
    d.severity = Severity::Error;
    d.code = "par-unsupported";
    d.message =
        "--sleep together with --record-graph requires the sequential engine "
        "(--threads 1): the reduced graph recorded under sleep sets depends on "
        "exploration order";
    return d;
  }
  return std::nullopt;
}

ExploreResult parallel_explore(const sem::LoweredProgram& program,
                               const ExploreOptions& options) {
  if (const auto d = parallel_unsupported(options)) {
    throw Error(d->code + ": " + d->message);
  }
  require(options.threads > 1, "parallel_explore: threads must be > 1");

  const StaticInfo static_info(program);
  const bool metrics = telemetry::Telemetry::global().metrics_enabled();
  const sem::cowstats::Snapshot cow0 = sem::cowstats::snapshot();

  ShardedVisitedSet seen(options.exact_keys, options.sleep_sets);
  WorkStealingFrontier<WorkItem> frontier(options.threads);
  std::atomic<std::uint64_t> num_configs{0};
  std::atomic<bool> truncated{false};
  std::atomic<bool> abort{false};

  ExploreResult result;

  // Shared result payloads, guarded by one mutex: touched once per distinct
  // terminal, so contention is negligible.
  std::mutex result_mu;
  std::exception_ptr first_error;

  std::vector<WorkerCtx> ctxs(options.threads);
  for (WorkerCtx& c : ctxs) c.recorder = Recorder(options);

  struct Admit {
    bool fresh = false;
    bool dropped = false;  // over the max_configs cap; transition uncounted
    Fingerprint fp;
  };

  // Admits a newly fired successor: inserts it into the seen set and, when
  // admitted under max_configs, collects its violations/faults and enqueues
  // it. On a revisit in sleep-sets mode, applies the revisit rule: narrow
  // the stored mask and enqueue a redo item for the awakened transitions.
  // A withdrawn over-cap successor reports fresh=false, which can only
  // cause extra full expansions in the proviso.
  auto admit = [&](Configuration&& succ, std::uint64_t succ_sleep, unsigned widx) -> Admit {
    WorkerCtx& ctx = ctxs[widx];
    WorkerStats& ws = ctx.stats;
    Admit a;
    {
      // Per-thread phase timer: the worker's own Canonicalize track (self
      // time; suspends its enclosing Expansion scope).
      telemetry::ScopedPhase phase(telemetry::Phase::Canonicalize);
      a.fp = succ.canonical_fingerprint();
    }
    if (!seen.insert(succ, a.fp, succ_sleep)) {
      if (options.sleep_sets) {
        const auto n = seen.narrow_sleep(a.fp, succ_sleep);
        if (n.wake != 0) {
          ws.sleep_reexplorations += 1;
          frontier.push(widx, WorkItem{std::move(succ), a.fp, n.remaining, n.wake});
        }
      }
      return a;
    }
    const std::uint64_t n = num_configs.fetch_add(1) + 1;
    if (n > options.max_configs) {
      num_configs.fetch_sub(1);
      seen.erase(succ, a.fp);
      truncated.store(true);
      a.dropped = true;
      return a;
    }
    for (std::uint32_t v : succ.violations) ws.violations.insert(v);
    for (const auto& f : succ.faults) ws.faults.insert(f);
    if (options.record_graph) ctx.node_fps.push_back(a.fp);
    frontier.push(widx, WorkItem{std::move(succ), a.fp, succ_sleep, 0});
    a.fresh = true;
    return a;
  };

  auto expand = [&](WorkItem& item, unsigned widx) {
    WorkerCtx& ctx = ctxs[widx];
    WorkerStats& ws = ctx.stats;
    const Configuration& cfg = item.cfg;
    const std::vector<ActionInfo> infos = sem::all_action_infos(cfg);
    std::vector<Pid> enabled;
    for (const ActionInfo& info : infos) {
      if (info.enabled) enabled.push_back(info.pid);
    }

    if (enabled.empty()) {
      // Terminal (completion or deadlock). A redo item of a terminal has
      // nothing to re-fire, and the terminal was recorded on first visit.
      if (item.redo != 0) return;
      const bool deadlock = cfg.num_live() > 0;
      ctx.recorder.terminal_lifetimes(cfg);
      if (options.record_graph) {
        ctx.terminal_fps.push_back(item.fp);
        if (deadlock) ctx.deadlock_fps.push_back(item.fp);
      }
      // Full keys are materialized only here — terminals are few.
      std::string key;
      {
        telemetry::ScopedPhase phase(telemetry::Phase::Canonicalize);
        key = cfg.canonical_key();
      }
      const std::scoped_lock lock(result_mu);
      result.deadlock_found = result.deadlock_found || deadlock;
      result.terminals.emplace(std::move(key), TerminalInfo{cfg, deadlock});
      return;
    }

    std::vector<Pid> expansion;
    bool reduced = false;
    if (item.redo != 0) {
      // Sleep revisit redo: fire exactly the awakened transitions; the
      // first visit already did pair recording and the stubborn choice.
      for (const Pid pid : enabled) {
        if (pid < kMaxSleepPid && ((item.redo >> pid) & 1) != 0) expansion.push_back(pid);
      }
      if (expansion.empty()) return;
    } else {
      ctx.recorder.pairs(infos);
      expansion = enabled;
      if (options.reduction == Reduction::Stubborn && enabled.size() > 1) {
        StubbornChoice choice;
        {
          telemetry::ScopedPhase phase(telemetry::Phase::Stubborn);
          choice = stubborn_set(cfg, infos, static_info);
        }
        ws.stubborn_steps += 1;
        if (choice.expand.size() == 1) ws.stubborn_singletons += 1;
        if (!choice.is_full) ws.stubborn_reduced_steps += 1;
        reduced = !choice.is_full;
        expansion = std::move(choice.expand);
      }
      if (options.sleep_sets) {
        std::erase_if(expansion, [&](Pid p) {
          const bool sleeping = p < kMaxSleepPid && ((item.sleep >> p) & 1) != 0;
          if (sleeping) ws.sleep_suppressed_transitions += 1;
          return sleeping;
        });
        if (expansion.empty()) return;  // fully covered elsewhere
      }
    }

    // Successor sleep set of the `idx`-th fired member of `expansion`:
    // surviving (independent) entries of this item's sleep plus the
    // earlier-fired siblings that are independent of the fired action.
    auto succ_sleep_for = [&](const ActionInfo& fired, std::size_t idx) -> std::uint64_t {
      std::uint64_t out = 0;
      auto keep_if_independent = [&](Pid t) {
        if (t >= kMaxSleepPid) {
          // The pid does not fit the 64-bit sleep mask, so this sibling can
          // never be put to sleep. Sound (sleep sets only prune) but the
          // reduction silently degrades — surface it once, count always.
          ws.sleep_pids_capped += 1;
          warn_once("sleep-pids-capped",
                    "process ids >= " + std::to_string(kMaxSleepPid) +
                        " exceed the sleep-set pid mask; sleep-set reduction is "
                        "disabled for them (exploration stays sound but prunes "
                        "less; see the sleep.pids_capped counter)");
          return;
        }
        const ActionInfo other = sem::action_info(cfg, t);
        if (!other.exists) return;
        if (!actions_conflict(fired, other)) out |= std::uint64_t{1} << t;
      };
      for (Pid t = 0; t < kMaxSleepPid; ++t) {
        if (((item.sleep >> t) & 1) != 0) keep_if_independent(t);
      }
      for (std::size_t i = 0; i < idx; ++i) keep_if_independent(expansion[i]);
      return out;
    };

    // Fires one transition; returns true when its successor was newly
    // inserted (feeds the insertion proviso). Indices past expansion.size()
    // are proviso supplements and fire with an empty sleep set (the
    // sequential engine likewise clears sleep on a full re-expansion).
    std::size_t fire_seq = 0;
    auto fire = [&](Pid pid) -> bool {
      const std::size_t idx = fire_seq++;
      ActionInfo fired;
      const bool have_fired = options.record_graph || options.sleep_sets;
      if (have_fired) fired = sem::action_info(cfg, pid);
      std::uint64_t succ_sleep = 0;
      if (options.sleep_sets && idx < expansion.size()) succ_sleep = succ_sleep_for(fired, idx);
      ws.transitions += 1;
      Configuration succ = core_step(cfg, pid, static_info, options.coarsen, ctx.recorder,
                                     ctx.steps, have_fired ? &fired : nullptr);
      const Admit a = admit(std::move(succ), succ_sleep, widx);
      if (a.dropped) {
        // As in the sequential engine, the transition whose successor is
        // dropped is uncounted (keeps graph.edges.size() == num_transitions
        // through truncation) and accounted separately.
        ws.transitions -= 1;
        ws.truncated_transitions += 1;
        return false;
      }
      if (options.record_graph) {
        ctx.edges.push_back(EdgeFp{item.fp, a.fp, fired.stmt_id, fired.kind});
      }
      return a.fresh;
    };

    if (fire_with_insertion_proviso(enabled, expansion, reduced,
                                    options.cycle_proviso && !truncated.load(), fire)) {
      ws.proviso_full_expansions += 1;
    }
  };

  // Each worker's track tid, for the post-join per-worker attribution.
  std::vector<std::uint32_t> worker_tids(options.threads, 0);
  // Per-worker peak of the live-structure byte gauge, max-merged after the
  // join (each entry is written by exactly one worker).
  std::vector<std::uint64_t> worker_peak_bytes(options.threads, 0);

  // Refreshes the live gauges (heartbeat + sampler inputs) from this
  // worker's view. Cheap when nobody listens; the visited-set aggregate
  // walk (64 shard locks) runs only every 1024 items per worker.
  auto live_tick = [&](std::uint64_t items_seen) {
    auto& tel = telemetry::Telemetry::global();
    if (!tel.live_enabled()) return;
    const std::uint64_t n = num_configs.load(std::memory_order_relaxed);
    tel.set_live(telemetry::Gauge::Configs, n);
    tel.set_live(telemetry::Gauge::VisitedEntries, n);
    tel.set_live(telemetry::Gauge::Frontier, frontier.size());
    tel.set_live(telemetry::Gauge::FrontierBytes, sem::cowstats::live_bytes());
    if (items_seen % 1024 == 0) {
      tel.set_live(telemetry::Gauge::VisitedBytes, seen.memory_bytes());
    }
    tel.heartbeat();
  };

  auto worker = [&](unsigned index) {
    telemetry::ThreadRegistration track("worker" + std::to_string(index));
    worker_tids[index] = track.tid();
    WorkerStats& ws = ctxs[index].stats;
    std::uint64_t items_seen = 0;
    try {
      while (auto item = frontier.pop(index)) {
        if (!abort.load() && !truncated.load()) {
          const std::uint64_t fired_before = ws.transitions;
          {
            telemetry::ScopedPhase phase(telemetry::Phase::Expansion);
            expand(*item, index);
          }
          items_seen += 1;
          const std::uint64_t live_bytes = sem::cowstats::live_bytes();
          if (live_bytes > worker_peak_bytes[index]) worker_peak_bytes[index] = live_bytes;
          auto& tel = telemetry::Telemetry::global();
          if (tel.live_enabled()) {
            if (ws.transitions > fired_before) {
              tel.add_live(telemetry::Gauge::Transitions, ws.transitions - fired_before);
            }
            live_tick(items_seen);
          }
        }
        frontier.done(index);
      }
    } catch (...) {
      {
        const std::scoped_lock lock(result_mu);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true);
      frontier.done(index);
      frontier.abort();
    }
  };

  // Seed the frontier with the initial configuration.
  Fingerprint init_fp;
  {
    Configuration init = Configuration::initial(program);
    init_fp = init.canonical_fingerprint();
    seen.insert(init, init_fp, 0);
    num_configs.store(1);
    WorkerStats& ws = ctxs[0].stats;
    for (std::uint32_t v : init.violations) ws.violations.insert(v);
    for (const auto& f : init.faults) ws.faults.insert(f);
    frontier.push(0, WorkItem{std::move(init), init_fp, 0, 0});
  }

  {
    telemetry::ScopedPhase phase_expansion(telemetry::Phase::Expansion);
    std::vector<std::thread> threads;
    threads.reserve(options.threads);
    for (unsigned i = 0; i < options.threads; ++i) threads.emplace_back(worker, i);
    for (std::thread& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Deterministic merge: counter sums and set unions do not depend on
  // which worker did what.
  result.num_configs = num_configs.load();
  result.truncated = truncated.load();
  WorkerStats total;
  StepCounters steps_total;
  FrontierCounters frontier_total;
  std::uint64_t busy_min_ns = 0;
  std::uint64_t busy_max_ns = 0;
  std::uint64_t busy_sum_ns = 0;
  for (unsigned i = 0; i < options.threads; ++i) {
    const WorkerCtx& ctx = ctxs[i];
    const WorkerStats& ws = ctx.stats;
    result.num_transitions += ws.transitions;
    total.stubborn_steps += ws.stubborn_steps;
    total.stubborn_singletons += ws.stubborn_singletons;
    total.stubborn_reduced_steps += ws.stubborn_reduced_steps;
    total.proviso_full_expansions += ws.proviso_full_expansions;
    total.truncated_transitions += ws.truncated_transitions;
    total.sleep_suppressed_transitions += ws.sleep_suppressed_transitions;
    total.sleep_reexplorations += ws.sleep_reexplorations;
    total.sleep_pids_capped += ws.sleep_pids_capped;
    steps_total.coarsened_micro_actions += ctx.steps.coarsened_micro_actions;
    steps_total.coarsen_guard_hits += ctx.steps.coarsen_guard_hits;
    for (std::uint32_t v : ws.violations) result.violations.insert(v);
    for (const auto& f : ws.faults) result.faults.insert(f);
    const FrontierCounters& fc = frontier.counters(i);
    frontier_total.steals += fc.steals;
    frontier_total.stolen_items += fc.stolen_items;
    frontier_total.steal_misses += fc.steal_misses;
    frontier_total.contention += fc.contention;
    ctx.recorder.merge_into(result);
    if (metrics) {
      // Per-worker attribution from the workers' own telemetry tracks
      // (self times: Stubborn/Canonicalize scopes suspend the enclosing
      // Expansion scope, so the three sum to the worker's busy time).
      auto& tel = telemetry::Telemetry::global();
      const std::uint64_t expansion_ns =
          tel.track_phase_ns(worker_tids[i], telemetry::Phase::Expansion);
      const std::uint64_t stubborn_ns =
          tel.track_phase_ns(worker_tids[i], telemetry::Phase::Stubborn);
      const std::uint64_t canonicalize_ns =
          tel.track_phase_ns(worker_tids[i], telemetry::Phase::Canonicalize);
      const std::string prefix = "worker" + std::to_string(i);
      result.stats.add_time_ns(prefix + ".expansion", expansion_ns);
      result.stats.add_time_ns(prefix + ".stubborn", stubborn_ns);
      result.stats.add_time_ns(prefix + ".canonicalize", canonicalize_ns);
      const std::uint64_t busy_ns = expansion_ns + stubborn_ns + canonicalize_ns;
      busy_min_ns = i == 0 ? busy_ns : std::min(busy_min_ns, busy_ns);
      busy_max_ns = std::max(busy_max_ns, busy_ns);
      busy_sum_ns += busy_ns;
    }
  }
  if (metrics) {
    // Aggregates over the nondeterministic workerN.* keys: min/max expose
    // imbalance, sum is total busy time (compare against wall clock for
    // effective parallelism). Stable key names — golden tests pin them.
    result.stats.add_time_ns("workers.min", busy_min_ns);
    result.stats.add_time_ns("workers.max", busy_max_ns);
    result.stats.add_time_ns("workers.sum", busy_sum_ns);
  }
  // Lazy-counter parity with the sequential engine: a counter that never
  // fired stays absent from to_string().
  auto add_if = [&](const char* name, std::uint64_t v) {
    if (v != 0) result.stats.add(name, v);
  };
  add_if("stubborn_steps", total.stubborn_steps);
  add_if("stubborn_singletons", total.stubborn_singletons);
  add_if("stubborn_reduced_steps", total.stubborn_reduced_steps);
  add_if("proviso_full_expansions", total.proviso_full_expansions);
  add_if("coarsened_micro_actions", steps_total.coarsened_micro_actions);
  add_if("coarsen_guard_hits", steps_total.coarsen_guard_hits);
  add_if("truncated_transitions", total.truncated_transitions);
  add_if("sleep_suppressed_transitions", total.sleep_suppressed_transitions);
  add_if("sleep_reexplorations", total.sleep_reexplorations);
  add_if("sleep.pids_capped", total.sleep_pids_capped);
  // The steal counters are always present under threads > 1 (even at
  // zero): they are the engine's health signals (see docs/PARALLEL.md).
  result.stats.set("steals", frontier_total.steals);
  result.stats.set("stolen_items", frontier_total.stolen_items);
  result.stats.set("steal_misses", frontier_total.steal_misses);
  result.stats.set("frontier_contention", frontier_total.contention);

  if (options.record_graph) {
    // Scheduling-independent node ids: the initial state is node 0, every
    // other admitted state gets its rank in fingerprint order. Edges and
    // terminal lists are translated and sorted, so two runs that admit the
    // same state set produce byte-identical graphs (under Full reduction
    // they always do; a reduced run's edge set can vary with proviso
    // races, its node set cannot).
    std::vector<Fingerprint> node_fps;
    for (const WorkerCtx& ctx : ctxs) {
      node_fps.insert(node_fps.end(), ctx.node_fps.begin(), ctx.node_fps.end());
    }
    std::sort(node_fps.begin(), node_fps.end());
    std::unordered_map<Fingerprint, std::uint32_t, support::FingerprintHash> id_of;
    id_of.reserve(node_fps.size() + 1);
    id_of.emplace(init_fp, 0);
    for (std::size_t i = 0; i < node_fps.size(); ++i) {
      id_of.emplace(node_fps[i], static_cast<std::uint32_t>(i + 1));
    }
    for (const WorkerCtx& ctx : ctxs) {
      for (const EdgeFp& e : ctx.edges) {
        result.graph.edges.push_back(
            StateGraph::Edge{id_of.at(e.from), id_of.at(e.to), e.stmt, e.kind});
      }
      for (const Fingerprint& fp : ctx.terminal_fps) {
        result.graph.terminal_nodes.push_back(id_of.at(fp));
      }
      for (const Fingerprint& fp : ctx.deadlock_fps) {
        result.graph.deadlock_nodes.push_back(id_of.at(fp));
      }
    }
    std::sort(result.graph.edges.begin(), result.graph.edges.end());
    std::sort(result.graph.terminal_nodes.begin(), result.graph.terminal_nodes.end());
    std::sort(result.graph.deadlock_nodes.begin(), result.graph.deadlock_nodes.end());
  }

  result.graph.num_nodes = result.num_configs;
  result.stats.set("configs", result.num_configs);
  result.stats.set("transitions", result.num_transitions);
  result.stats.set("terminals", result.terminals.size());
  result.stats.set("deadlocks", result.deadlock_found ? 1 : 0);
  result.stats.set_gauge("visited_bytes", seen.memory_bytes());
  result.stats.set_gauge("visited_configs", seen.size());
  result.stats.set_gauge("fingerprint_collisions", seen.collisions());
  result.stats.set_gauge("threads", options.threads);
  {
    const sem::cowstats::Snapshot cow1 = sem::cowstats::snapshot();
    result.stats.set_gauge("cow.objects_copied", cow1.objects_copied - cow0.objects_copied);
    result.stats.set_gauge("cow.objects_shared", cow1.objects_shared - cow0.objects_shared);
    result.stats.set_gauge("cow.process_clones", cow1.process_clones - cow0.process_clones);
    result.stats.set_gauge(
        "frontier_peak_bytes",
        *std::max_element(worker_peak_bytes.begin(), worker_peak_bytes.end()));
  }
  if (metrics) {
    result.stats.set_gauge("peak_rss_bytes", telemetry::peak_rss_bytes());
  }
  {
    auto& tel = telemetry::Telemetry::global();
    if (tel.live_enabled()) {
      // Close the live view on the final numbers so the sampler's last
      // sample (taken on stop) reflects the completed run.
      tel.set_live(telemetry::Gauge::Configs, result.num_configs);
      tel.set_live(telemetry::Gauge::Transitions, result.num_transitions);
      tel.set_live(telemetry::Gauge::Frontier, 0);
      tel.set_live(telemetry::Gauge::VisitedEntries, seen.size());
      tel.set_live(telemetry::Gauge::VisitedBytes, seen.memory_bytes());
      tel.set_live(telemetry::Gauge::FrontierBytes, sem::cowstats::live_bytes());
    }
    tel.publish_stats(result.stats);
  }
  return result;
}

}  // namespace copar::explore
