#include "src/explore/parexplore.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_set>

#include "src/explore/stubborn.h"
#include "src/support/telemetry.h"

namespace copar::explore {

using sem::ActionInfo;
using sem::ActionKind;
using sem::Configuration;
using sem::Pid;

namespace {

constexpr std::size_t kNumShards = 64;  // power of two

/// One stripe of the seen set. Shard selection uses the fingerprint's high
/// bits, in-table probing its low bits, so striping does not bias probes.
struct Shard {
  std::mutex mu;
  support::FingerprintTable table;
  std::unordered_set<std::string> keys;  // exact-keys mode only
  std::uint64_t collisions = 0;          // exact-keys mode only
};

class SharedSeen {
 public:
  explicit SharedSeen(bool exact) : exact_(exact) {}

  /// True when `cfg` (with fingerprint `fp`) was not seen before.
  bool insert(const Configuration& cfg, const support::Fingerprint& fp) {
    // In exact mode the key is serialized outside the lock.
    std::string key;
    if (exact_) key = cfg.canonical_key();
    Shard& shard = shards_[shard_of(fp)];
    const std::scoped_lock lock(shard.mu);
    const auto r = shard.table.insert(fp);
    if (!exact_) return r.inserted;
    const bool fresh = shard.keys.insert(std::move(key)).second;
    if (fresh && !r.inserted) shard.collisions += 1;
    return fresh;
  }

  /// Withdraws the entry `insert` just added (max_configs rollback).
  void erase(const Configuration& cfg, const support::Fingerprint& fp) {
    Shard& shard = shards_[shard_of(fp)];
    const std::scoped_lock lock(shard.mu);
    shard.table.erase(fp);
    if (exact_) shard.keys.erase(cfg.canonical_key());
  }

  // The aggregate queries run after the workers have joined (no locking).
  [[nodiscard]] std::uint64_t size() const {
    std::uint64_t n = 0;
    for (const Shard& s : shards_) n += exact_ ? s.keys.size() : s.table.size();
    return n;
  }
  [[nodiscard]] std::uint64_t memory_bytes() const {
    std::uint64_t bytes = 0;
    for (const Shard& s : shards_) {
      bytes += s.table.memory_bytes();
      for (const std::string& key : s.keys) {
        bytes += key.capacity() + sizeof(key) + 2 * sizeof(void*);
      }
    }
    return bytes;
  }
  [[nodiscard]] std::uint64_t collisions() const {
    std::uint64_t n = 0;
    for (const Shard& s : shards_) n += s.collisions;
    return n;
  }

 private:
  static std::size_t shard_of(const support::Fingerprint& fp) noexcept {
    return static_cast<std::size_t>(fp.hi) & (kNumShards - 1);
  }

  bool exact_;
  Shard shards_[kNumShards];
};

/// Global frontier queue with active-count termination: exploration is done
/// when the queue is empty and no worker is mid-expansion (an active worker
/// may still push).
class Frontier {
 public:
  void push(Configuration&& cfg) {
    {
      const std::scoped_lock lock(mu_);
      queue_.push_back(std::move(cfg));
    }
    cv_.notify_one();
  }

  /// Blocks until work is available (marking the caller active) or the
  /// exploration has drained; nullopt means done.
  std::optional<Configuration> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty() || active_ == 0; });
    if (queue_.empty()) return std::nullopt;
    Configuration cfg = std::move(queue_.front());
    queue_.pop_front();
    active_ += 1;
    return cfg;
  }

  /// Marks the caller's expansion finished (pairs with a successful pop).
  void done_one() {
    bool drained = false;
    {
      const std::scoped_lock lock(mu_);
      active_ -= 1;
      drained = active_ == 0 && queue_.empty();
    }
    if (drained) cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Configuration> queue_;
  std::size_t active_ = 0;
};

/// Worker-local accumulators, merged (summed / unioned) after the join.
struct WorkerStats {
  std::uint64_t transitions = 0;
  std::uint64_t stubborn_steps = 0;
  std::uint64_t stubborn_singletons = 0;
  std::uint64_t stubborn_reduced_steps = 0;
  std::uint64_t proviso_full_expansions = 0;
  std::uint64_t coarsened_micro_actions = 0;
  std::uint64_t coarsen_guard_hits = 0;
  std::uint64_t truncated_transitions = 0;
  std::uint64_t expansion_ns = 0;
  std::uint64_t stubborn_ns = 0;
  std::uint64_t canonicalize_ns = 0;
  std::set<std::uint32_t> violations;
  std::set<std::pair<std::uint32_t, std::uint8_t>> faults;
};

/// One (possibly coarsened) step — the recording-free counterpart of
/// Explorer::step (the parallel engine forbids the recording payloads).
Configuration par_step(const Configuration& cfg, Pid pid, const StaticInfo& static_info,
                       bool coarsen, WorkerStats& ws) {
  Configuration succ = sem::apply_action(cfg, pid);
  if (!coarsen) return succ;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_points;
  int guard = 0;
  for (; guard < kCoarsenGuardMax; ++guard) {
    const sem::Process& p = succ.processes[pid];
    if (!p.live() || p.frames.empty()) break;
    ActionInfo next = sem::action_info(succ, pid);
    if (!next.exists || !next.enabled) break;
    if (next.kind == ActionKind::Fork) break;
    if (action_is_critical(succ, next, static_info)) break;
    if (!seen_points.insert({next.proc, next.pc}).second) break;  // local cycle
    succ = sem::apply_action(succ, pid);
    ws.coarsened_micro_actions += 1;
  }
  if (guard == kCoarsenGuardMax) {
    ws.coarsen_guard_hits += 1;
    warn_once("coarsen-guard",
              "virtual coarsening stopped after " + std::to_string(kCoarsenGuardMax) +
                  " micro-actions in one combined step; a non-critical local code "
                  "run is unusually long (see the coarsen_guard_hits counter)");
  }
  return succ;
}

}  // namespace

ExploreResult parallel_explore(const sem::LoweredProgram& program,
                               const ExploreOptions& options) {
  require(options.threads > 1, "parallel_explore: threads must be > 1");
  require(!options.record_graph && !options.record_accesses && !options.record_pairs &&
              !options.record_lifetimes,
          "parallel_explore: recording payloads require the sequential engine (threads=1)");
  require(!options.sleep_sets,
          "parallel_explore: sleep sets require the sequential engine (threads=1)");

  const StaticInfo static_info(program);
  const bool metrics = telemetry::Telemetry::global().metrics_enabled();

  SharedSeen seen(options.exact_keys);
  Frontier frontier;
  std::atomic<std::uint64_t> num_configs{0};
  std::atomic<bool> truncated{false};
  std::atomic<bool> abort{false};

  ExploreResult result;

  // Shared result payloads, guarded by one mutex: touched once per distinct
  // terminal, so contention is negligible.
  std::mutex result_mu;
  std::exception_ptr first_error;

  // Admits a newly fired successor: inserts it into the seen set and, when
  // admitted under max_configs, collects its violations/faults and enqueues
  // it. Returns true when the successor was new (for the insertion
  // proviso; a withdrawn over-cap successor reports new=false, which can
  // only cause extra full expansions).
  auto admit = [&](Configuration&& succ, WorkerStats& ws) -> bool {
    support::Fingerprint fp;
    if (metrics) {
      const std::uint64_t t0 = telemetry::now_ns();
      fp = succ.canonical_fingerprint();
      ws.canonicalize_ns += telemetry::now_ns() - t0;
    } else {
      fp = succ.canonical_fingerprint();
    }
    if (!seen.insert(succ, fp)) return false;
    const std::uint64_t n = num_configs.fetch_add(1) + 1;
    if (n > options.max_configs) {
      num_configs.fetch_sub(1);
      seen.erase(succ, fp);
      truncated.store(true);
      // As in the sequential engine, the transition whose successor is
      // dropped is uncounted.
      ws.transitions -= 1;
      ws.truncated_transitions += 1;
      return false;
    }
    for (std::uint32_t v : succ.violations) ws.violations.insert(v);
    for (const auto& f : succ.faults) ws.faults.insert(f);
    frontier.push(std::move(succ));
    return true;
  };

  auto expand = [&](const Configuration& cfg, WorkerStats& ws) {
    const std::vector<ActionInfo> infos = sem::all_action_infos(cfg);
    std::vector<Pid> enabled;
    for (const ActionInfo& info : infos) {
      if (info.enabled) enabled.push_back(info.pid);
    }

    if (enabled.empty()) {
      // Terminal (completion or deadlock). Full keys are materialized only
      // here — terminals are few.
      const bool deadlock = cfg.num_live() > 0;
      std::string key;
      if (metrics) {
        const std::uint64_t t0 = telemetry::now_ns();
        key = cfg.canonical_key();
        ws.canonicalize_ns += telemetry::now_ns() - t0;
      } else {
        key = cfg.canonical_key();
      }
      const std::scoped_lock lock(result_mu);
      result.deadlock_found = result.deadlock_found || deadlock;
      result.terminals.emplace(std::move(key), TerminalInfo{cfg, deadlock});
      return;
    }

    std::vector<Pid> expansion = enabled;
    bool reduced = false;
    if (options.reduction == Reduction::Stubborn && enabled.size() > 1) {
      StubbornChoice choice;
      if (metrics) {
        const std::uint64_t t0 = telemetry::now_ns();
        choice = stubborn_set(cfg, infos, static_info);
        ws.stubborn_ns += telemetry::now_ns() - t0;
      } else {
        choice = stubborn_set(cfg, infos, static_info);
      }
      ws.stubborn_steps += 1;
      if (choice.expand.size() == 1) ws.stubborn_singletons += 1;
      if (!choice.is_full) ws.stubborn_reduced_steps += 1;
      reduced = !choice.is_full;
      expansion = std::move(choice.expand);
    }

    bool all_new = true;
    for (Pid pid : expansion) {
      ws.transitions += 1;
      if (!admit(par_step(cfg, pid, static_info, options.coarsen, ws), ws)) all_new = false;
    }

    // Insertion proviso (see header): a reduced expansion with an
    // already-seen successor is re-expanded fully.
    if (reduced && !all_new && options.cycle_proviso && !truncated.load()) {
      ws.proviso_full_expansions += 1;
      for (Pid pid : enabled) {
        if (std::find(expansion.begin(), expansion.end(), pid) != expansion.end()) continue;
        ws.transitions += 1;
        admit(par_step(cfg, pid, static_info, options.coarsen, ws), ws);
      }
    }
  };

  std::vector<WorkerStats> worker_stats(options.threads);
  auto worker = [&](unsigned index) {
    WorkerStats& ws = worker_stats[index];
    try {
      while (auto cfg = frontier.pop()) {
        if (!abort.load() && !truncated.load()) {
          if (metrics) {
            const std::uint64_t t0 = telemetry::now_ns();
            expand(*cfg, ws);
            ws.expansion_ns += telemetry::now_ns() - t0;
          } else {
            expand(*cfg, ws);
          }
        }
        frontier.done_one();
      }
    } catch (...) {
      {
        const std::scoped_lock lock(result_mu);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true);
      frontier.done_one();
    }
  };

  // Seed the frontier with the initial configuration.
  {
    Configuration init = Configuration::initial(program);
    const support::Fingerprint fp = init.canonical_fingerprint();
    seen.insert(init, fp);
    num_configs.store(1);
    WorkerStats& ws = worker_stats[0];
    for (std::uint32_t v : init.violations) ws.violations.insert(v);
    for (const auto& f : init.faults) ws.faults.insert(f);
    frontier.push(std::move(init));
  }

  {
    telemetry::ScopedPhase phase_expansion(telemetry::Phase::Expansion);
    std::vector<std::thread> threads;
    threads.reserve(options.threads);
    for (unsigned i = 0; i < options.threads; ++i) threads.emplace_back(worker, i);
    for (std::thread& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Deterministic merge: counter sums and set unions do not depend on
  // which worker did what.
  result.num_configs = num_configs.load();
  result.truncated = truncated.load();
  WorkerStats total;
  for (unsigned i = 0; i < options.threads; ++i) {
    const WorkerStats& ws = worker_stats[i];
    result.num_transitions += ws.transitions;
    total.stubborn_steps += ws.stubborn_steps;
    total.stubborn_singletons += ws.stubborn_singletons;
    total.stubborn_reduced_steps += ws.stubborn_reduced_steps;
    total.proviso_full_expansions += ws.proviso_full_expansions;
    total.coarsened_micro_actions += ws.coarsened_micro_actions;
    total.coarsen_guard_hits += ws.coarsen_guard_hits;
    total.truncated_transitions += ws.truncated_transitions;
    for (std::uint32_t v : ws.violations) result.violations.insert(v);
    for (const auto& f : ws.faults) result.faults.insert(f);
    if (metrics) {
      const std::string prefix = "worker" + std::to_string(i);
      result.stats.add_time_ns(prefix + ".expansion", ws.expansion_ns);
      result.stats.add_time_ns(prefix + ".stubborn", ws.stubborn_ns);
      result.stats.add_time_ns(prefix + ".canonicalize", ws.canonicalize_ns);
    }
  }
  // Lazy-counter parity with the sequential engine: a counter that never
  // fired stays absent from to_string().
  auto add_if = [&](const char* name, std::uint64_t v) {
    if (v != 0) result.stats.add(name, v);
  };
  add_if("stubborn_steps", total.stubborn_steps);
  add_if("stubborn_singletons", total.stubborn_singletons);
  add_if("stubborn_reduced_steps", total.stubborn_reduced_steps);
  add_if("proviso_full_expansions", total.proviso_full_expansions);
  add_if("coarsened_micro_actions", total.coarsened_micro_actions);
  add_if("coarsen_guard_hits", total.coarsen_guard_hits);
  add_if("truncated_transitions", total.truncated_transitions);

  result.graph.num_nodes = result.num_configs;
  result.stats.set("configs", result.num_configs);
  result.stats.set("transitions", result.num_transitions);
  result.stats.set("terminals", result.terminals.size());
  result.stats.set("deadlocks", result.deadlock_found ? 1 : 0);
  result.stats.set_gauge("visited_bytes", seen.memory_bytes());
  result.stats.set_gauge("visited_configs", seen.size());
  result.stats.set_gauge("fingerprint_collisions", seen.collisions());
  result.stats.set_gauge("threads", options.threads);
  if (metrics) {
    result.stats.set_gauge("peak_rss_bytes", telemetry::peak_rss_bytes());
  }
  return result;
}

}  // namespace copar::explore
