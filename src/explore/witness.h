// Witness schedules: a concrete interleaving reaching a chosen terminal
// configuration (deadlock, assertion violation, fault, or any outcome).
//
// The paper positions the framework for both optimization and debugging
// ("detecting access anomalies or assisting debugging"); a reported fact is
// far more useful with the schedule that exhibits it. The witness explorer
// runs a (full or reduced) exploration that remembers one predecessor per
// configuration and replays the action sequence on demand.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/explore/explorer.h"

namespace copar::explore {

struct WitnessStep {
  sem::Pid pid = 0;                      // process that acted
  std::uint32_t stmt = sem::kNoStmt;     // originating statement
  sem::ActionKind kind = sem::ActionKind::None;
  std::string point;                     // human-readable control point
};

struct Witness {
  std::vector<WitnessStep> steps;
  sem::Configuration terminal;

  /// One line per step: "p2: lock (s4: lock(fork1))".
  [[nodiscard]] std::string to_string(const sem::LoweredProgram& prog) const;
};

/// What to search for.
struct WitnessQuery {
  bool want_deadlock = false;
  /// A terminal whose violations contain this statement id (kNoStmt: any).
  std::uint32_t want_violation = sem::kNoStmt;
  /// A terminal whose faults contain this statement id (kNoStmt: any).
  std::uint32_t want_fault = sem::kNoStmt;
  /// Predicate on the terminal configuration (null: none). Applied last.
  std::function<bool(const sem::Configuration&)> predicate;
  /// Predicate checked on *every* visited configuration, terminal or not
  /// (null: none). Used for reachability witnesses, e.g. "a state where
  /// both statements of a racing pair are simultaneously enabled".
  std::function<bool(const sem::Configuration&)> reach_predicate;

  ExploreOptions explore;  // reduction etc.; record flags are ignored
};

/// How a witness search ended: the configurations it expanded and whether it
/// gave up on `max_configs` before covering the space. A nullopt result with
/// `truncated == false` is a *refutation* — the full space holds no match —
/// while `truncated == true` is merely budget exhaustion.
struct WitnessStats {
  std::uint64_t configs = 0;
  bool truncated = false;
};

/// Explores until a terminal matching the query is found; nullopt if the
/// (possibly truncated) exploration finds none. `stats`, when non-null,
/// receives the search effort and the truncation verdict.
std::optional<Witness> find_witness(const sem::LoweredProgram& prog, const WitnessQuery& query,
                                    WitnessStats* stats = nullptr);

/// Convenience: a schedule into any deadlock.
std::optional<Witness> find_deadlock(const sem::LoweredProgram& prog);

}  // namespace copar::explore
