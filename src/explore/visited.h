// The exploration core's dedup backends: fingerprints by default, exact
// keys on request; one sequential set and a mutex-striped wrapper for the
// parallel engine.
//
// In fingerprint mode (the default) a configuration costs ~20 bytes in an
// open-addressing table of 128-bit canonical fingerprints. In exact-keys
// mode (`--exact-keys`) the full canonical key strings are kept as before,
// and the fingerprint table rides along as a cross-check: a configuration
// whose key is new but whose fingerprint is already present is a real
// observed hash collision, counted in `collisions()` (and surfaced as the
// `fingerprint_collisions` gauge). Fingerprint mode cannot detect its own
// collisions — that is exactly the trade — so collision-paranoid runs use
// exact mode to measure whether the workload ever produces one.
//
// ShardedVisitedSet stripes 64 VisitedSets behind per-shard mutexes for the
// work-stealing engine: shard selection uses the fingerprint's high bits,
// in-table probing its low bits, so striping does not bias probes. It also
// carries the engine's stored-sleep masks (sleep-sets mode): the mask is
// stored atomically with the insertion and narrowed atomically on revisit,
// so no worker can observe a state without its sleep entry.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sem/config.h"
#include "src/support/fingerprint.h"

namespace copar::explore {

class VisitedSet {
 public:
  explicit VisitedSet(bool exact_keys) : exact_(exact_keys) {}

  struct Probe {
    support::Fingerprint fp;
    std::uint32_t id = 0;
    bool inserted = false;
  };

  /// Canonicalizes `cfg` and inserts it; ids are dense in insertion order
  /// (0, 1, 2, ...) so callers can index side arrays by them.
  Probe insert(const sem::Configuration& cfg);

  /// Pre-canonicalized variant: `fp` was already computed by the caller;
  /// `exact_key` must be non-null in exact-keys mode (serialized outside
  /// any lock; consumed — moved into the key map when fresh) and is
  /// ignored in fingerprint mode.
  Probe insert_prehashed(const support::Fingerprint& fp, std::string* exact_key);

  [[nodiscard]] bool contains(const sem::Configuration& cfg) const;

  /// Removes `cfg` again — only meaningful for the entry just inserted
  /// (the explorer un-registers the configuration that hit max_configs).
  void erase(const Probe& probe, const sem::Configuration& cfg);
  void erase_prehashed(const support::Fingerprint& fp, const std::string* exact_key);

  [[nodiscard]] std::size_t size() const noexcept {
    return exact_ ? keys_.size() : table_.size();
  }

  /// Observed fingerprint collisions (exact mode only; 0 in fingerprint
  /// mode, which cannot see them).
  [[nodiscard]] std::uint64_t collisions() const noexcept { return collisions_; }

  /// Byte estimate of the dedup structure (drives the `visited_bytes`
  /// gauge): table slots, plus key storage and hash-node overhead in exact
  /// mode.
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  bool exact_;
  support::FingerprintTable table_;
  std::unordered_map<std::string, std::uint32_t> keys_;  // exact mode only
  std::uint32_t next_id_ = 0;                            // exact mode only
  std::uint64_t collisions_ = 0;
};

/// Thread-safe visited set for the parallel engine: 64 mutex-striped
/// VisitedSets (one dedup implementation, locked per stripe), plus the
/// per-state stored-sleep masks when sleep tracking is on.
class ShardedVisitedSet {
 public:
  ShardedVisitedSet(bool exact_keys, bool track_sleep);

  /// True when `cfg` (with fingerprint `fp`) was not seen before. When
  /// fresh and sleep tracking is on, `sleep` is stored under the same
  /// shard lock as the insertion.
  bool insert(const sem::Configuration& cfg, const support::Fingerprint& fp,
              std::uint64_t sleep = 0);

  /// Withdraws the entry `insert` just added (max_configs rollback),
  /// including its sleep mask.
  void erase(const sem::Configuration& cfg, const support::Fingerprint& fp);

  /// Sleep revisit rule (sequential engine's sleep_store narrowing, made
  /// atomic per state): wake = stored & ~arrival are the transitions that
  /// slept on the first visit but are awake now; the stored mask shrinks
  /// to stored & arrival. Masks only ever shrink, so the total re-fired
  /// work is bounded by one bit-clear per state per pid.
  struct SleepNarrow {
    std::uint64_t wake = 0;       // fire these again (empty: nothing to do)
    std::uint64_t remaining = 0;  // the narrowed mask (the redo item's sleep)
  };
  SleepNarrow narrow_sleep(const support::Fingerprint& fp, std::uint64_t arrival);

  // Aggregate queries, shard-locked so the progress/sampler path can read
  // them mid-run (an in-flight run sees a momentary but consistent
  // per-shard view; post-join they are exact).
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] std::uint64_t memory_bytes() const;
  [[nodiscard]] std::uint64_t collisions() const;

 private:
  static constexpr std::size_t kNumShards = 64;  // power of two

  struct Shard {
    explicit Shard(bool exact) : set(exact) {}
    std::mutex mu;
    VisitedSet set;
    std::unordered_map<support::Fingerprint, std::uint64_t, support::FingerprintHash> sleep;
  };

  [[nodiscard]] static std::size_t shard_of(const support::Fingerprint& fp) noexcept {
    return static_cast<std::size_t>(fp.hi) & (kNumShards - 1);
  }

  bool exact_;
  bool track_sleep_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace copar::explore
