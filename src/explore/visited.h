// The explorers' dedup structure: fingerprints by default, exact keys on
// request.
//
// In fingerprint mode (the default) a configuration costs ~20 bytes in an
// open-addressing table of 128-bit canonical fingerprints. In exact-keys
// mode (`--exact-keys`) the full canonical key strings are kept as before,
// and the fingerprint table rides along as a cross-check: a configuration
// whose key is new but whose fingerprint is already present is a real
// observed hash collision, counted in `collisions()` (and surfaced as the
// `fingerprint_collisions` gauge). Fingerprint mode cannot detect its own
// collisions — that is exactly the trade — so collision-paranoid runs use
// exact mode to measure whether the workload ever produces one.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/sem/config.h"
#include "src/support/fingerprint.h"

namespace copar::explore {

class VisitedSet {
 public:
  explicit VisitedSet(bool exact_keys) : exact_(exact_keys) {}

  struct Probe {
    support::Fingerprint fp;
    std::uint32_t id = 0;
    bool inserted = false;
  };

  /// Canonicalizes `cfg` and inserts it; ids are dense in insertion order
  /// (0, 1, 2, ...) so callers can index side arrays by them.
  Probe insert(const sem::Configuration& cfg);

  [[nodiscard]] bool contains(const sem::Configuration& cfg) const;

  /// Removes `cfg` again — only meaningful for the entry just inserted
  /// (the explorer un-registers the configuration that hit max_configs).
  void erase(const Probe& probe, const sem::Configuration& cfg);

  [[nodiscard]] std::size_t size() const noexcept {
    return exact_ ? keys_.size() : table_.size();
  }

  /// Observed fingerprint collisions (exact mode only; 0 in fingerprint
  /// mode, which cannot see them).
  [[nodiscard]] std::uint64_t collisions() const noexcept { return collisions_; }

  /// Byte estimate of the dedup structure (drives the `visited_bytes`
  /// gauge): table slots, plus key storage and hash-node overhead in exact
  /// mode.
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  bool exact_;
  support::FingerprintTable table_;
  std::unordered_map<std::string, std::uint32_t> keys_;  // exact mode only
  std::uint32_t next_id_ = 0;                            // exact mode only
  std::uint64_t collisions_ = 0;
};

}  // namespace copar::explore
