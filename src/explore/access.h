// Configuration-independent location identities and access logging.
//
// Dense store location ids are only meaningful within one configuration, so
// the analyses aggregate accesses under a *location key*: globals by slot,
// frame slots by (function proc, slot) — i.e. all activations of a function
// fold together — and heap cells by (allocation site, offset). This is
// itself an abstraction in the paper's sense (an abstraction of the domain
// of locations), and it is what the side-effect/dependence/lifetime
// analyses of §5 consume.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "src/sem/store.h"

namespace copar::explore {

struct LocKey {
  sem::ObjKind kind = sem::ObjKind::Heap;
  /// Globals: 0. Frame: function proc id. Heap: AllocStmt statement id.
  std::uint32_t site = 0;
  std::uint32_t off = 0;

  friend bool operator==(const LocKey&, const LocKey&) = default;
  friend auto operator<=>(const LocKey&, const LocKey&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// Derives the key of a concrete location.
[[nodiscard]] LocKey loc_key(const sem::Store& store, std::size_t loc);

/// Read/write key sets attributed to a statement or a function.
struct AccessSets {
  std::set<LocKey> reads;
  std::set<LocKey> writes;

  void merge(const AccessSets& other) {
    reads.insert(other.reads.begin(), other.reads.end());
    writes.insert(other.writes.begin(), other.writes.end());
  }

  friend bool operator==(const AccessSets&, const AccessSets&) = default;
};

/// Per-allocation-site lifetime facts gathered during exploration.
struct SiteInfo {
  /// Thread contexts (rendered fork paths, "" = root) that accessed cells
  /// of objects from this site.
  std::set<std::string> accessor_threads;
  /// Thread contexts that allocated objects at this site.
  std::set<std::string> creator_threads;
  /// Some access came from a process other than the creating process.
  bool accessed_by_other_process = false;
  /// An object from this site survived (stayed reachable past) the return
  /// of the function activation that allocated it.
  bool escapes_creating_function = false;
  /// Objects allocated / still reachable at some terminal configuration.
  std::uint64_t allocated = 0;
  std::uint64_t live_at_exit = 0;

  friend bool operator==(const SiteInfo&, const SiteInfo&) = default;
};

/// Everything the exploration records for the client analyses (§5).
struct AccessLog {
  std::map<std::uint32_t, AccessSets> by_stmt;  // statement id -> accesses
  std::map<std::uint32_t, AccessSets> by_proc;  // lowered proc id -> accesses
  std::map<std::uint32_t, SiteInfo> sites;      // alloc site stmt id -> facts

  friend bool operator==(const AccessLog&, const AccessLog&) = default;
};

}  // namespace copar::explore
