#include "src/explore/visited.h"

namespace copar::explore {

VisitedSet::Probe VisitedSet::insert(const sem::Configuration& cfg) {
  const support::Fingerprint fp = cfg.canonical_fingerprint();
  if (!exact_) {
    const auto r = table_.insert(fp);
    return {fp, r.id, r.inserted};
  }
  // Exact mode: the string map is the id authority; the fingerprint table
  // only detects collisions (new key, already-seen fingerprint).
  const auto r = table_.insert(fp);
  auto [it, fresh] = keys_.try_emplace(cfg.canonical_key(), next_id_);
  if (fresh) {
    next_id_ += 1;
    if (!r.inserted) collisions_ += 1;
  }
  return {fp, it->second, fresh};
}

bool VisitedSet::contains(const sem::Configuration& cfg) const {
  if (!exact_) return table_.contains(cfg.canonical_fingerprint());
  return keys_.contains(cfg.canonical_key());
}

void VisitedSet::erase(const Probe& probe, const sem::Configuration& cfg) {
  table_.erase(probe.fp);
  if (exact_) keys_.erase(cfg.canonical_key());
}

std::uint64_t VisitedSet::memory_bytes() const {
  std::uint64_t bytes = table_.memory_bytes();
  for (const auto& [key, id] : keys_) {
    bytes += key.capacity() + sizeof(key) + sizeof(id) + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace copar::explore
