#include "src/explore/visited.h"

#include <utility>

namespace copar::explore {

VisitedSet::Probe VisitedSet::insert(const sem::Configuration& cfg) {
  const support::Fingerprint fp = cfg.canonical_fingerprint();
  if (!exact_) return insert_prehashed(fp, nullptr);
  std::string key = cfg.canonical_key();
  return insert_prehashed(fp, &key);
}

VisitedSet::Probe VisitedSet::insert_prehashed(const support::Fingerprint& fp,
                                               std::string* exact_key) {
  if (!exact_) {
    const auto r = table_.insert(fp);
    return {fp, r.id, r.inserted};
  }
  // Exact mode: the string map is the id authority; the fingerprint table
  // only detects collisions (new key, already-seen fingerprint).
  const auto r = table_.insert(fp);
  auto [it, fresh] = keys_.try_emplace(std::move(*exact_key), next_id_);
  if (fresh) {
    next_id_ += 1;
    if (!r.inserted) collisions_ += 1;
  }
  return {fp, it->second, fresh};
}

bool VisitedSet::contains(const sem::Configuration& cfg) const {
  if (!exact_) return table_.contains(cfg.canonical_fingerprint());
  return keys_.contains(cfg.canonical_key());
}

void VisitedSet::erase(const Probe& probe, const sem::Configuration& cfg) {
  if (!exact_) {
    erase_prehashed(probe.fp, nullptr);
    return;
  }
  const std::string key = cfg.canonical_key();
  erase_prehashed(probe.fp, &key);
}

void VisitedSet::erase_prehashed(const support::Fingerprint& fp, const std::string* exact_key) {
  table_.erase(fp);
  if (exact_) keys_.erase(*exact_key);
}

std::uint64_t VisitedSet::memory_bytes() const {
  std::uint64_t bytes = table_.memory_bytes();
  for (const auto& [key, id] : keys_) {
    bytes += key.capacity() + sizeof(key) + sizeof(id) + 2 * sizeof(void*);
  }
  return bytes;
}

ShardedVisitedSet::ShardedVisitedSet(bool exact_keys, bool track_sleep)
    : exact_(exact_keys), track_sleep_(track_sleep) {
  shards_.reserve(kNumShards);
  for (std::size_t i = 0; i < kNumShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(exact_keys));
  }
}

bool ShardedVisitedSet::insert(const sem::Configuration& cfg, const support::Fingerprint& fp,
                               std::uint64_t sleep) {
  // In exact mode the key is serialized outside the lock.
  std::string key;
  if (exact_) key = cfg.canonical_key();
  Shard& shard = *shards_[shard_of(fp)];
  const std::scoped_lock lock(shard.mu);
  const VisitedSet::Probe probe = shard.set.insert_prehashed(fp, exact_ ? &key : nullptr);
  if (probe.inserted && track_sleep_) shard.sleep[fp] = sleep;
  return probe.inserted;
}

void ShardedVisitedSet::erase(const sem::Configuration& cfg, const support::Fingerprint& fp) {
  std::string key;
  if (exact_) key = cfg.canonical_key();
  Shard& shard = *shards_[shard_of(fp)];
  const std::scoped_lock lock(shard.mu);
  shard.set.erase_prehashed(fp, exact_ ? &key : nullptr);
  if (track_sleep_) shard.sleep.erase(fp);
}

ShardedVisitedSet::SleepNarrow ShardedVisitedSet::narrow_sleep(const support::Fingerprint& fp,
                                                               std::uint64_t arrival) {
  Shard& shard = *shards_[shard_of(fp)];
  const std::scoped_lock lock(shard.mu);
  const auto it = shard.sleep.find(fp);
  if (it == shard.sleep.end()) return {};  // entry withdrawn by a cap rollback
  SleepNarrow out;
  out.wake = it->second & ~arrival;
  out.remaining = it->second & arrival;
  it->second = out.remaining;
  return out;
}

std::uint64_t ShardedVisitedSet::size() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    const std::scoped_lock lock(s->mu);
    n += s->set.size();
  }
  return n;
}

std::uint64_t ShardedVisitedSet::memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& s : shards_) {
    const std::scoped_lock lock(s->mu);
    bytes += s->set.memory_bytes();
    bytes += s->sleep.size() *
             (sizeof(support::Fingerprint) + sizeof(std::uint64_t) + 2 * sizeof(void*));
  }
  return bytes;
}

std::uint64_t ShardedVisitedSet::collisions() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    const std::scoped_lock lock(s->mu);
    n += s->set.collisions();
  }
  return n;
}

}  // namespace copar::explore
