#include "src/explore/stubborn.h"

#include <algorithm>
#include <unordered_map>

#include "src/explore/staticinfo.h"

namespace copar::explore {

using sem::ActionInfo;
using sem::Pid;

bool actions_conflict(const ActionInfo& a, const ActionInfo& b) {
  return a.writes.intersects(b.writes) || a.writes.intersects(b.reads) ||
         a.reads.intersects(b.writes);
}

namespace {

/// Union of the future access classes of every frame of a process (its
/// current code, everything reachable from it, and every continuation in
/// outer frames).
struct ProcessFuture {
  DynamicBitset reads;
  DynamicBitset writes;
};

ProcessFuture process_future(const sem::Configuration& cfg, Pid pid, const StaticInfo& si) {
  // Point-sensitive: each frame contributes only what lies ahead of its pc
  // (outer frames' pcs already point at the continuation after their call).
  ProcessFuture f;
  for (const sem::Frame& frame : cfg.processes[pid].frames) {
    f.reads |= si.future_reads_at(frame.proc, frame.pc);
    f.writes |= si.future_writes_at(frame.proc, frame.pc);
    // A frame's pending return-value write targets a cell captured at call
    // time; it is in no point-future (the caller's pc is already past the
    // call), so add it from the dynamic frame state.
    if (frame.has_ret_dst && cfg.store.in_bounds(frame.ret_obj, frame.ret_off)) {
      f.writes.set(si.class_of(cfg.store, cfg.store.loc_id(frame.ret_obj, frame.ret_off)));
    }
  }
  return f;
}

/// Maps an action's concrete locations to class bitsets.
struct ActionClasses {
  DynamicBitset reads;
  DynamicBitset writes;
};

ActionClasses action_classes(const sem::Configuration& cfg, const ActionInfo& info,
                             const StaticInfo& si) {
  ActionClasses c;
  info.reads.for_each([&](std::size_t loc) { c.reads.set(si.class_of(cfg.store, loc)); });
  info.writes.for_each([&](std::size_t loc) { c.writes.set(si.class_of(cfg.store, loc)); });
  return c;
}

}  // namespace

StubbornChoice stubborn_set(const sem::Configuration& cfg, const std::vector<ActionInfo>& infos,
                            const StaticInfo& si) {
  StubbornChoice choice;

  std::vector<const ActionInfo*> enabled;
  for (const ActionInfo& info : infos) {
    if (info.enabled) enabled.push_back(&info);
  }
  if (enabled.empty()) return choice;

  // Per-process caches, keyed by pid.
  std::unordered_map<Pid, ProcessFuture> futures;
  std::unordered_map<Pid, ActionClasses> classes;
  std::unordered_map<Pid, const ActionInfo*> by_pid;
  for (const ActionInfo& info : infos) by_pid.emplace(info.pid, &info);

  auto future_of = [&](Pid pid) -> const ProcessFuture& {
    auto it = futures.find(pid);
    if (it == futures.end()) it = futures.emplace(pid, process_future(cfg, pid, si)).first;
    return it->second;
  };
  auto classes_of = [&](Pid pid) -> const ActionClasses& {
    auto it = classes.find(pid);
    if (it == classes.end()) {
      it = classes.emplace(pid, action_classes(cfg, *by_pid.at(pid), si)).first;
    }
    return it->second;
  };

  // Closure from one enabled seed.
  auto closure_from = [&](Pid seed) {
    std::vector<Pid> members = {seed};
    std::vector<bool> in_set(cfg.processes.size(), false);
    in_set[seed] = true;
    std::size_t scan = 0;
    auto add = [&](Pid q) {
      if (q < in_set.size() && !in_set[q]) {
        in_set[q] = true;
        members.push_back(q);
      }
    };
    while (scan < members.size()) {
      const Pid p = members[scan++];
      auto it = by_pid.find(p);
      if (it == by_pid.end()) continue;  // no action (shouldn't occur for live)
      const ActionInfo& ap = *it->second;
      if (ap.enabled) {
        // Rule 1: every process that may EVER act dependently with ap.
        const ActionClasses& cp = classes_of(p);
        for (const ActionInfo& aq : infos) {
          if (aq.pid == p || in_set[aq.pid]) continue;
          // A process blocked at a Join that (transitively) waits on p can
          // execute nothing until p terminates, and every action of p —
          // including ap — precedes that; its future cannot be reordered
          // before ap, so it never needs to join the stubborn set for ap.
          if (!aq.enabled && aq.kind == sem::ActionKind::Join) {
            const auto& qpath = cfg.processes[aq.pid].path;
            const auto& ppath = cfg.processes[p].path;
            if (qpath.size() < ppath.size() &&
                std::equal(qpath.begin(), qpath.end(), ppath.begin())) {
              continue;
            }
          }
          const ProcessFuture& fq = future_of(aq.pid);
          if (cp.writes.intersects(fq.reads) || cp.writes.intersects(fq.writes) ||
              cp.reads.intersects(fq.writes)) {
            add(aq.pid);
          }
        }
      } else {
        // Rule 2: include what can enable p.
        if (ap.kind == sem::ActionKind::Join) {
          // Descendants: processes whose path strictly extends p's.
          const auto& ppath = cfg.processes[p].path;
          for (const ActionInfo& aq : infos) {
            const auto& qpath = cfg.processes[aq.pid].path;
            if (qpath.size() > ppath.size() &&
                std::equal(ppath.begin(), ppath.end(), qpath.begin())) {
              add(aq.pid);
            }
          }
        } else if (ap.kind == sem::ActionKind::Lock && ap.has_lock_loc) {
          auto owner = cfg.lock_owners->find({ap.lock_obj, ap.lock_off});
          if (owner != cfg.lock_owners->end()) {
            add(owner->second);
          } else {
            // Held without a tracked owner (user wrote the cell directly):
            // anyone who may write the cell's class could free it.
            const std::uint32_t cls =
                si.class_of(cfg.store, cfg.store.loc_id(ap.lock_obj, ap.lock_off));
            for (const ActionInfo& aq : infos) {
              if (aq.pid == p) continue;
              if (future_of(aq.pid).writes.test(cls)) add(aq.pid);
            }
          }
        } else {
          // Unknown disabled kind: be safe, include everyone.
          for (const ActionInfo& aq : infos) add(aq.pid);
        }
      }
    }
    return members;
  };

  std::vector<Pid> best;
  std::size_t best_enabled = SIZE_MAX;
  for (const ActionInfo* seed : enabled) {
    std::vector<Pid> members = closure_from(seed->pid);
    std::size_t n_enabled = 0;
    for (Pid p : members) {
      auto it = by_pid.find(p);
      if (it != by_pid.end() && it->second->enabled) ++n_enabled;
    }
    if (n_enabled < best_enabled || (n_enabled == best_enabled && members.size() < best.size())) {
      best = std::move(members);
      best_enabled = n_enabled;
      if (best_enabled == 1 && best.size() == 1) break;  // perfectly local action
    }
  }

  choice.closure_size = best.size();
  for (Pid p : best) {
    auto it = by_pid.find(p);
    if (it != by_pid.end() && it->second->enabled) choice.expand.push_back(p);
  }
  std::sort(choice.expand.begin(), choice.expand.end());
  choice.is_full = (choice.expand.size() == enabled.size());
  return choice;
}

}  // namespace copar::explore
