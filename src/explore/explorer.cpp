#include "src/explore/explorer.h"

#include <algorithm>
#include <sstream>

#include "src/explore/core.h"
#include "src/explore/parexplore.h"
#include "src/explore/proviso.h"
#include "src/explore/stubborn.h"
#include "src/explore/visited.h"
#include "src/sem/cowstats.h"
#include "src/support/telemetry.h"

namespace copar::explore {

using sem::ActionInfo;
using sem::ActionKind;
using sem::Configuration;
using sem::Pid;

std::set<std::string> ExploreResult::terminal_keys() const {
  std::set<std::string> keys;
  for (const auto& [key, info] : terminals) keys.insert(key);
  return keys;
}

std::set<std::int64_t> ExploreResult::terminal_int_values(std::string_view name) const {
  std::set<std::int64_t> values;
  for (const auto& [key, info] : terminals) {
    if (auto v = info.config.global_value(name); v.has_value() && v->is_int()) {
      values.insert(v->as_int());
    }
  }
  return values;
}

Explorer::Explorer(const sem::LoweredProgram& program, ExploreOptions options)
    : program_(program), options_(options), static_info_(program) {}

bool action_is_critical(const Configuration& cfg, const ActionInfo& info,
                        const StaticInfo& static_info) {
  bool critical = false;
  info.reads.for_each([&](std::size_t loc) {
    critical = critical || static_info.is_critical(static_info.class_of(cfg.store, loc));
  });
  if (critical) return true;
  info.writes.for_each([&](std::size_t loc) {
    critical = critical || static_info.is_critical(static_info.class_of(cfg.store, loc));
  });
  return critical;
}

std::vector<Pid> Explorer::choose_expansion(const Configuration& cfg,
                                            const std::vector<ActionInfo>& infos,
                                            ExploreResult& result) const {
  std::vector<Pid> enabled;
  for (const ActionInfo& info : infos) {
    if (info.enabled) enabled.push_back(info.pid);
  }
  if (options_.reduction == Reduction::Full || enabled.size() <= 1) return enabled;

  (void)result;  // counters live in hot_, pre-resolved against result.stats
  const StubbornChoice choice = [&] {
    telemetry::ScopedPhase phase(telemetry::Phase::Stubborn);
    return stubborn_set(cfg, infos, static_info_);
  }();
  hot_.stubborn_steps.add();
  if (choice.expand.size() == 1) hot_.stubborn_singletons.add();
  if (!choice.is_full) hot_.stubborn_reduced_steps.add();
  return choice.expand;
}

struct Explorer::StackEntry {
  Configuration cfg;
  std::uint32_t id = 0;
  std::vector<Pid> expand;
  std::size_t next = 0;
  bool expanded_full = false;
  /// Sleep set at this state (sleep_sets mode): pids whose firing here is
  /// covered by an earlier sibling order.
  std::set<Pid> sleep;
};

ExploreResult Explorer::run() {
  ExploreResult result;
  hot_ = HotCounters{
      result.stats.counter("stubborn_steps"),
      result.stats.counter("stubborn_singletons"),
      result.stats.counter("stubborn_reduced_steps"),
      result.stats.counter("sleep_suppressed_transitions"),
      result.stats.counter("proviso_full_expansions"),
      result.stats.counter("sleep_reexplorations"),
      result.stats.counter("truncated_transitions"),
  };
  telemetry::Telemetry& tel = telemetry::Telemetry::global();
  telemetry::ScopedPhase phase_expansion(telemetry::Phase::Expansion);
  const sem::cowstats::Snapshot cow0 = sem::cowstats::snapshot();
  std::uint64_t frontier_peak_bytes = 0;
  VisitedSet visited(options_.exact_keys);
  Recorder recorder(options_);
  StepCounters step_counters;
  DfsStackProviso proviso;
  std::vector<StackEntry> stack;

  // sleep_sets mode: per-id stored sleep (for the revisit rule) and retained
  // configurations (re-exploration needs the state back).
  std::vector<std::set<Pid>> sleep_store;
  std::vector<Configuration> cfg_store;

  // Registers a freshly inserted configuration; returns its id. For new
  // non-terminal configurations, pushes a stack entry. The VisitedSet hands
  // out dense insertion-order ids, so `id` indexes the side arrays.
  auto register_config = [&](Configuration&& cfg, std::uint32_t id,
                             std::set<Pid> sleep) -> std::uint32_t {
    require(id == proviso.num_states(), "visited-set ids must be dense");
    proviso.add_state();
    result.num_configs += 1;

    for (std::uint32_t v : cfg.violations) result.violations.insert(v);
    for (const auto& f : cfg.faults) result.faults.insert(f);

    const std::vector<ActionInfo> infos = sem::all_action_infos(cfg);
    const bool any_enabled =
        std::any_of(infos.begin(), infos.end(), [](const ActionInfo& i) { return i.enabled; });
    if (!any_enabled) {
      const bool deadlock = cfg.num_live() > 0;
      result.deadlock_found = result.deadlock_found || deadlock;
      recorder.terminal_lifetimes(cfg);
      if (options_.record_graph) {
        result.graph.terminal_nodes.push_back(id);
        if (deadlock) result.graph.deadlock_nodes.push_back(id);
      }
      if (options_.sleep_sets) {
        sleep_store.emplace_back();
        cfg_store.push_back(cfg);
      }
      // Terminals are few; materializing their full keys here is the only
      // place fingerprint mode still serializes a canonical key.
      std::string key;
      {
        telemetry::ScopedPhase phase_canon(telemetry::Phase::Canonicalize);
        key = cfg.canonical_key();
      }
      result.terminals.emplace(std::move(key), TerminalInfo{std::move(cfg), deadlock});
      return id;
    }
    recorder.pairs(infos);

    StackEntry entry;
    entry.cfg = std::move(cfg);
    entry.id = id;
    entry.expand = choose_expansion(entry.cfg, infos, result);
    if (options_.sleep_sets) {
      sleep_store.push_back(sleep);
      cfg_store.push_back(entry.cfg);
      std::erase_if(entry.expand, [&](Pid p) {
        const bool sleeping = sleep.contains(p);
        if (sleeping) hot_.sleep_suppressed_transitions.add();
        return sleeping;
      });
      entry.sleep = std::move(sleep);
      if (entry.expand.empty()) return id;  // fully covered elsewhere
    }
    proviso.enter(id);
    stack.push_back(std::move(entry));
    return id;
  };

  Configuration init = Configuration::initial(program_);
  VisitedSet::Probe init_probe;
  {
    telemetry::ScopedPhase phase_canon(telemetry::Phase::Canonicalize);
    init_probe = visited.insert(init);
  }
  register_config(std::move(init), init_probe.id, {});

  while (!stack.empty()) {
    StackEntry& top = stack.back();
    if (top.next >= top.expand.size()) {
      proviso.leave(top.id);
      stack.pop_back();
      continue;
    }
    const std::size_t fire_index = top.next;
    const Pid pid = top.expand[top.next++];
    const std::uint32_t from_id = top.id;

    // Capture edge metadata before stepping; sleep sets also need the fired
    // action for independence filtering.
    sem::ActionKind edge_kind = ActionKind::None;
    std::uint32_t edge_stmt = sem::kNoStmt;
    ActionInfo fired;
    const bool have_fired = options_.record_graph || options_.sleep_sets;
    if (have_fired) {
      fired = sem::action_info(top.cfg, pid);
      edge_kind = fired.kind;
      edge_stmt = fired.stmt_id;
    }

    // Successor sleep set: surviving (independent) entries of this state's
    // sleep plus the earlier-fired siblings that are independent of `pid`.
    std::set<Pid> succ_sleep;
    if (options_.sleep_sets) {
      auto keep_if_independent = [&](Pid t) {
        const ActionInfo other = sem::action_info(top.cfg, t);
        if (!other.exists) return;
        if (!actions_conflict(fired, other)) succ_sleep.insert(t);
      };
      for (Pid t : top.sleep) keep_if_independent(t);
      for (std::size_t i = 0; i < fire_index; ++i) keep_if_independent(top.expand[i]);
    }

    Configuration succ = core_step(top.cfg, pid, static_info_, options_.coarsen, recorder,
                                   step_counters, have_fired ? &fired : nullptr);
    result.num_transitions += 1;
    const std::uint64_t live_bytes = sem::cowstats::live_bytes();
    if (live_bytes > frontier_peak_bytes) frontier_peak_bytes = live_bytes;
    tel.set_live(telemetry::Gauge::FrontierBytes, live_bytes);
    tel.maybe_progress(result.num_configs, result.num_transitions, stack.size());
    VisitedSet::Probe probe;
    {
      telemetry::ScopedPhase phase_canon(telemetry::Phase::Canonicalize);
      probe = visited.insert(succ);
    }

    std::uint32_t to_id;
    if (!probe.inserted) {
      to_id = probe.id;
      // Stack proviso (ignoring problem): a reduced expansion that closes a
      // cycle on the DFS stack re-expands the source state fully.
      if (options_.reduction == Reduction::Stubborn && options_.cycle_proviso &&
          proviso.on_stack(to_id)) {
        StackEntry& cur = stack.back();
        if (!cur.expanded_full) {
          cur.expanded_full = true;
          cur.next = 0;
          cur.expand.clear();
          cur.sleep.clear();
          for (const ActionInfo& info : sem::all_action_infos(cur.cfg)) {
            if (info.enabled) cur.expand.push_back(info.pid);
          }
          hot_.proviso_full_expansions.add();
        }
      }
      // Sleep revisit rule: transitions sleeping on the first visit but
      // awake now must be explored from the stored configuration.
      if (options_.sleep_sets) {
        std::set<Pid> missing;
        for (Pid t : sleep_store[to_id]) {
          if (!succ_sleep.contains(t)) missing.insert(t);
        }
        if (!missing.empty()) {
          std::set<Pid> narrowed;
          for (Pid t : sleep_store[to_id]) {
            if (succ_sleep.contains(t)) narrowed.insert(t);
          }
          sleep_store[to_id] = narrowed;
          StackEntry redo;
          redo.cfg = cfg_store[to_id];
          redo.id = to_id;
          for (Pid t : missing) {
            const ActionInfo info = sem::action_info(redo.cfg, t);
            if (info.exists && info.enabled) redo.expand.push_back(t);
          }
          redo.sleep = std::move(narrowed);
          if (!redo.expand.empty()) {
            proviso.enter(to_id);
            stack.push_back(std::move(redo));
            hot_.sleep_reexplorations.add();
          }
        }
      }
    } else {
      if (result.num_configs >= options_.max_configs) {
        // The transition was fired but its successor is dropped: take it
        // back out of both the visited set and num_transitions so the
        // invariant graph.edges.size() == num_transitions survives
        // truncation, and account for the drop separately.
        visited.erase(probe, succ);
        result.num_transitions -= 1;
        hot_.truncated_transitions.add();
        result.truncated = true;
        break;
      }
      to_id = register_config(std::move(succ), probe.id, std::move(succ_sleep));
    }
    if (options_.record_graph) {
      result.graph.edges.push_back(StateGraph::Edge{from_id, to_id, edge_stmt, edge_kind});
    }
  }

  recorder.merge_into(result);
  result.graph.num_nodes = result.num_configs;
  result.stats.set("configs", result.num_configs);
  result.stats.set("transitions", result.num_transitions);
  result.stats.set("terminals", result.terminals.size());
  result.stats.set("deadlocks", result.deadlock_found ? 1 : 0);
  if (step_counters.coarsened_micro_actions != 0) {
    result.stats.add("coarsened_micro_actions", step_counters.coarsened_micro_actions);
  }
  if (step_counters.coarsen_guard_hits != 0) {
    result.stats.add("coarsen_guard_hits", step_counters.coarsen_guard_hits);
  }

  // Dedup-structure gauges are cheap to read off the VisitedSet, so they
  // are published unconditionally (benchmarks compare them with metrics
  // off); only the getrusage call stays behind the metrics switch.
  result.stats.set_gauge("visited_bytes", visited.memory_bytes());
  result.stats.set_gauge("visited_configs", visited.size());
  result.stats.set_gauge("fingerprint_collisions", visited.collisions());
  {
    const sem::cowstats::Snapshot cow1 = sem::cowstats::snapshot();
    result.stats.set_gauge("cow.objects_copied", cow1.objects_copied - cow0.objects_copied);
    result.stats.set_gauge("cow.objects_shared", cow1.objects_shared - cow0.objects_shared);
    result.stats.set_gauge("cow.process_clones", cow1.process_clones - cow0.process_clones);
    result.stats.set_gauge("frontier_peak_bytes", frontier_peak_bytes);
  }
  if (tel.metrics_enabled()) {
    result.stats.set_gauge("peak_rss_bytes", telemetry::peak_rss_bytes());
  }
  if (tel.live_enabled()) {
    tel.set_live(telemetry::Gauge::Configs, result.num_configs);
    tel.set_live(telemetry::Gauge::Transitions, result.num_transitions);
    tel.set_live(telemetry::Gauge::VisitedEntries, visited.size());
    tel.set_live(telemetry::Gauge::VisitedBytes, visited.memory_bytes());
    tel.set_live(telemetry::Gauge::Frontier, 0);
    tel.set_live(telemetry::Gauge::FrontierBytes, sem::cowstats::live_bytes());
  }
  tel.publish_stats(result.stats);
  return result;
}

ExploreResult explore(const sem::LoweredProgram& program, const ExploreOptions& options) {
  if (options.threads > 1) return parallel_explore(program, options);
  return Explorer(program, options).run();
}

std::string to_dot(const StateGraph& graph, const sem::LoweredProgram& prog) {
  std::ostringstream os;
  os << "digraph configurations {\n";
  os << "  rankdir=TB;\n  node [shape=circle, label=\"\", width=0.25];\n";
  for (std::uint32_t t : graph.terminal_nodes) {
    os << "  n" << t << " [shape=doublecircle];\n";
  }
  for (std::uint32_t d : graph.deadlock_nodes) {
    os << "  n" << d << " [style=filled, fillcolor=\"#cc3333\"];\n";
  }
  os << "  n0 [style=filled, fillcolor=\"#99ccff\"];\n";  // initial
  for (const StateGraph::Edge& e : graph.edges) {
    os << "  n" << e.from << " -> n" << e.to;
    std::string label;
    if (e.stmt != sem::kNoStmt) {
      // Labels only for statements the user named; everything else stays
      // compact.
      for (const auto& [sym, stmt] : prog.module().labels()) {
        if (stmt->id() == e.stmt) label = prog.module().interner().spelling(sym);
      }
    }
    if (label.empty()) label = std::string(sem::action_kind_name(e.kind));
    os << " [label=\"" << label << "\", fontsize=9]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace copar::explore
