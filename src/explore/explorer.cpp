#include "src/explore/explorer.h"

#include <algorithm>
#include <sstream>

#include "src/explore/parexplore.h"
#include "src/explore/stubborn.h"
#include "src/explore/visited.h"
#include "src/support/telemetry.h"

namespace copar::explore {

using sem::ActionInfo;
using sem::ActionKind;
using sem::Configuration;
using sem::Pid;

namespace {

/// Rendered fork path: the thread context of a process ("" = root line).
std::string thread_context(const sem::Process& p) {
  std::string out;
  for (const sem::PathElem& e : p.path) {
    if (!out.empty()) out += '/';
    out += 's' + std::to_string(e.site) + 'b' + std::to_string(e.branch);
  }
  return out;
}

}  // namespace

std::string LocKey::to_string() const {
  switch (kind) {
    case sem::ObjKind::Globals: return "g[" + std::to_string(off) + "]";
    case sem::ObjKind::Frame:
      return "f" + std::to_string(site) + "[" + std::to_string(off) + "]";
    case sem::ObjKind::Heap:
      return "h" + std::to_string(site) + "[" + std::to_string(off) + "]";
  }
  return "?";
}

LocKey loc_key(const sem::Store& store, std::size_t loc) {
  const auto [obj, off] = store.locate(loc);
  const sem::Object& o = store.object(obj);
  LocKey key;
  key.kind = o.obj_kind;
  key.off = off;
  switch (o.obj_kind) {
    case sem::ObjKind::Globals: key.site = 0; break;
    case sem::ObjKind::Frame:
    case sem::ObjKind::Heap: key.site = o.site; break;
  }
  return key;
}

std::set<std::string> ExploreResult::terminal_keys() const {
  std::set<std::string> keys;
  for (const auto& [key, info] : terminals) keys.insert(key);
  return keys;
}

std::set<std::int64_t> ExploreResult::terminal_int_values(std::string_view name) const {
  std::set<std::int64_t> values;
  for (const auto& [key, info] : terminals) {
    if (auto v = info.config.global_value(name); v.has_value() && v->is_int()) {
      values.insert(v->as_int());
    }
  }
  return values;
}

Explorer::Explorer(const sem::LoweredProgram& program, ExploreOptions options)
    : program_(program), options_(options), static_info_(program) {}

bool action_is_critical(const Configuration& cfg, const ActionInfo& info,
                        const StaticInfo& static_info) {
  bool critical = false;
  info.reads.for_each([&](std::size_t loc) {
    critical = critical || static_info.is_critical(static_info.class_of(cfg.store, loc));
  });
  if (critical) return true;
  info.writes.for_each([&](std::size_t loc) {
    critical = critical || static_info.is_critical(static_info.class_of(cfg.store, loc));
  });
  return critical;
}

bool Explorer::action_is_critical(const Configuration& cfg, const ActionInfo& info) const {
  return explore::action_is_critical(cfg, info, static_info_);
}

void Explorer::record_action(const Configuration& cfg, const ActionInfo& info,
                             ExploreResult& result) {
  if (!options_.record_accesses) return;
  const sem::Process& p = cfg.processes[info.pid];

  AccessSets sets;
  info.reads.for_each([&](std::size_t loc) { sets.reads.insert(loc_key(cfg.store, loc)); });
  info.writes.for_each([&](std::size_t loc) { sets.writes.insert(loc_key(cfg.store, loc)); });

  if (info.stmt_id != sem::kNoStmt) result.accesses.by_stmt[info.stmt_id].merge(sets);
  for (std::size_t i = 0; i < p.frames.size(); ++i) {
    AccessSets attributed = sets;
    // A Return's write of the result cell belongs to the call site, not to
    // the returning activation (a function is still "pure" if its value is
    // stored by its caller).
    if (info.kind == ActionKind::Return && i + 1 == p.frames.size()) attributed.writes.clear();
    result.accesses.by_proc[p.frames[i].proc].merge(attributed);
  }

  const std::string ctx = thread_context(p);
  auto touch_site = [&](const LocKey& key, bool /*write*/) {
    if (key.kind != sem::ObjKind::Heap) return;
    SiteInfo& site = result.accesses.sites[key.site];
    site.accessor_threads.insert(ctx);
  };
  for (const LocKey& k : sets.reads) touch_site(k, false);
  for (const LocKey& k : sets.writes) touch_site(k, true);

  // Cross-process access detection needs the concrete objects.
  auto other_process = [&](const DynamicBitset& locs) {
    locs.for_each([&](std::size_t loc) {
      const auto [obj, off] = cfg.store.locate(loc);
      const sem::Object& o = cfg.store.object(obj);
      if (o.obj_kind == sem::ObjKind::Heap && o.creator != info.pid) {
        result.accesses.sites[o.site].accessed_by_other_process = true;
      }
    });
  };
  other_process(info.reads);
  other_process(info.writes);

  if (info.kind == ActionKind::Alloc && info.stmt_id != sem::kNoStmt) {
    SiteInfo& site = result.accesses.sites[info.stmt_id];
    site.creator_threads.insert(ctx);
    site.allocated += 1;
  }
}

void Explorer::record_pairs(const std::vector<ActionInfo>& infos, ExploreResult& result) {
  for (std::size_t i = 0; i < infos.size(); ++i) {
    for (std::size_t j = i + 1; j < infos.size(); ++j) {
      const ActionInfo* a = &infos[i];
      const ActionInfo* b = &infos[j];
      if (!a->enabled || !b->enabled) continue;
      if (a->stmt_id == sem::kNoStmt || b->stmt_id == sem::kNoStmt) continue;
      if (a->stmt_id > b->stmt_id) std::swap(a, b);
      PairFacts& facts = result.pairs[{a->stmt_id, b->stmt_id}];
      facts.co_enabled = true;
      facts.w1_r2 = facts.w1_r2 || a->writes.intersects(b->reads);
      facts.w1_w2 = facts.w1_w2 || a->writes.intersects(b->writes);
      facts.r1_w2 = facts.r1_w2 || a->reads.intersects(b->writes);
    }
  }
}

void Explorer::record_return_lifetime(const Configuration& before, Pid pid,
                                      const Configuration& after, ExploreResult& result) {
  if (!options_.record_lifetimes) return;
  const sem::Process& p = before.processes[pid];
  if (p.frames.empty()) return;
  const sem::ProcString& activation_birth = before.store.object(p.top().frame_obj).birth;

  const std::vector<bool> reachable = sem::reachable_objects(after);
  for (sem::ObjId obj = 0; obj < after.store.num_objects(); ++obj) {
    const sem::Object& o = after.store.object(obj);
    if (o.obj_kind != sem::ObjKind::Heap) continue;
    if (!activation_birth.is_prefix_of(o.birth)) continue;  // not born here
    if (obj < reachable.size() && reachable[obj]) {
      result.accesses.sites[o.site].escapes_creating_function = true;
    }
  }
}

void Explorer::record_terminal_lifetimes(const Configuration& cfg, ExploreResult& result) {
  if (!options_.record_lifetimes) return;
  const std::vector<bool> reachable = sem::reachable_objects(cfg);
  for (sem::ObjId obj = 0; obj < cfg.store.num_objects(); ++obj) {
    const sem::Object& o = cfg.store.object(obj);
    if (o.obj_kind != sem::ObjKind::Heap) continue;
    if (obj < reachable.size() && reachable[obj]) {
      result.accesses.sites[o.site].live_at_exit += 1;
    }
  }
}

Configuration Explorer::step(const Configuration& cfg, Pid pid, ExploreResult& result) {
  ActionInfo info = sem::action_info(cfg, pid);
  require(info.exists && info.enabled, "step: action not fireable");
  record_action(cfg, info, result);

  Configuration succ = sem::apply_action(cfg, pid);
  if (info.kind == ActionKind::Return) record_return_lifetime(cfg, pid, succ, result);

  if (!options_.coarsen) return succ;

  // Virtual coarsening: keep running this process while its following
  // actions are non-critical (Observation 5). A combined action thus holds
  // at most one critical reference — the first.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_points;
  int guard = 0;
  for (; guard < kCoarsenGuardMax; ++guard) {
    const sem::Process& p = succ.processes[pid];
    if (!p.live() || p.frames.empty()) break;
    ActionInfo next = sem::action_info(succ, pid);
    if (!next.exists || !next.enabled) break;
    if (next.kind == ActionKind::Fork) break;
    if (action_is_critical(succ, next)) break;
    if (!seen_points.insert({next.proc, next.pc}).second) break;  // local cycle
    record_action(succ, next, result);
    Configuration succ2 = sem::apply_action(succ, pid);
    if (next.kind == ActionKind::Return) record_return_lifetime(succ, pid, succ2, result);
    succ = std::move(succ2);
    hot_.coarsened_micro_actions.add();
  }
  if (guard == kCoarsenGuardMax) {
    // The cap exists to bound a combined step; reaching it means a
    // "non-critical" straight-line run of unusual length (or a local loop
    // the seen_points cycle check cannot fold). The step stays sound — the
    // remaining actions become ordinary separate steps — but silence here
    // could mask nontermination, so say it once and count every hit.
    hot_.coarsen_guard_hits.add();
    warn_once("coarsen-guard",
              "virtual coarsening stopped after " + std::to_string(kCoarsenGuardMax) +
                  " micro-actions in one combined step; a non-critical local code "
                  "run is unusually long (see the coarsen_guard_hits counter)");
  }
  return succ;
}

std::vector<Pid> Explorer::choose_expansion(const Configuration& cfg,
                                            const std::vector<ActionInfo>& infos,
                                            ExploreResult& result) const {
  std::vector<Pid> enabled;
  for (const ActionInfo& info : infos) {
    if (info.enabled) enabled.push_back(info.pid);
  }
  if (options_.reduction == Reduction::Full || enabled.size() <= 1) return enabled;

  (void)result;  // counters live in hot_, pre-resolved against result.stats
  const StubbornChoice choice = [&] {
    telemetry::ScopedPhase phase(telemetry::Phase::Stubborn);
    return stubborn_set(cfg, infos, static_info_);
  }();
  hot_.stubborn_steps.add();
  if (choice.expand.size() == 1) hot_.stubborn_singletons.add();
  if (!choice.is_full) hot_.stubborn_reduced_steps.add();
  return choice.expand;
}

struct Explorer::StackEntry {
  Configuration cfg;
  std::uint32_t id = 0;
  std::vector<Pid> expand;
  std::size_t next = 0;
  bool expanded_full = false;
  /// Sleep set at this state (sleep_sets mode): pids whose firing here is
  /// covered by an earlier sibling order.
  std::set<Pid> sleep;
};

ExploreResult Explorer::run() {
  ExploreResult result;
  hot_ = HotCounters{
      result.stats.counter("coarsened_micro_actions"),
      result.stats.counter("stubborn_steps"),
      result.stats.counter("stubborn_singletons"),
      result.stats.counter("stubborn_reduced_steps"),
      result.stats.counter("sleep_suppressed_transitions"),
      result.stats.counter("proviso_full_expansions"),
      result.stats.counter("sleep_reexplorations"),
      result.stats.counter("truncated_transitions"),
      result.stats.counter("coarsen_guard_hits"),
  };
  telemetry::Telemetry& tel = telemetry::Telemetry::global();
  telemetry::ScopedPhase phase_expansion(telemetry::Phase::Expansion);
  VisitedSet visited(options_.exact_keys);
  // Count, not flag: sleep re-exploration can stack an id twice — and in
  // principle many times, so 16 bits could wrap and silently turn off the
  // cycle proviso. 32 bits plus an overflow guard at the increments.
  std::vector<std::uint32_t> on_stack;
  std::vector<StackEntry> stack;

  // sleep_sets mode: per-id stored sleep (for the revisit rule) and retained
  // configurations (re-exploration needs the state back).
  std::vector<std::set<Pid>> sleep_store;
  std::vector<Configuration> cfg_store;

  // Registers a freshly inserted configuration; returns its id. For new
  // non-terminal configurations, pushes a stack entry. The VisitedSet hands
  // out dense insertion-order ids, so `id` indexes the side arrays.
  auto register_config = [&](Configuration&& cfg, std::uint32_t id,
                             std::set<Pid> sleep) -> std::uint32_t {
    require(id == on_stack.size(), "visited-set ids must be dense");
    on_stack.push_back(0);
    result.num_configs += 1;

    for (std::uint32_t v : cfg.violations) result.violations.insert(v);
    for (const auto& f : cfg.faults) result.faults.insert(f);

    const std::vector<ActionInfo> infos = sem::all_action_infos(cfg);
    const bool any_enabled =
        std::any_of(infos.begin(), infos.end(), [](const ActionInfo& i) { return i.enabled; });
    if (!any_enabled) {
      const bool deadlock = cfg.num_live() > 0;
      result.deadlock_found = result.deadlock_found || deadlock;
      record_terminal_lifetimes(cfg, result);
      if (options_.record_graph) {
        result.graph.terminal_nodes.push_back(id);
        if (deadlock) result.graph.deadlock_nodes.push_back(id);
      }
      if (options_.sleep_sets) {
        sleep_store.emplace_back();
        cfg_store.push_back(cfg);
      }
      // Terminals are few; materializing their full keys here is the only
      // place fingerprint mode still serializes a canonical key.
      std::string key;
      {
        telemetry::ScopedPhase phase_canon(telemetry::Phase::Canonicalize);
        key = cfg.canonical_key();
      }
      result.terminals.emplace(std::move(key), TerminalInfo{std::move(cfg), deadlock});
      return id;
    }
    if (options_.record_pairs) record_pairs(infos, result);

    StackEntry entry;
    entry.cfg = std::move(cfg);
    entry.id = id;
    entry.expand = choose_expansion(entry.cfg, infos, result);
    if (options_.sleep_sets) {
      sleep_store.push_back(sleep);
      cfg_store.push_back(entry.cfg);
      std::erase_if(entry.expand, [&](Pid p) {
        const bool sleeping = sleep.contains(p);
        if (sleeping) hot_.sleep_suppressed_transitions.add();
        return sleeping;
      });
      entry.sleep = std::move(sleep);
      if (entry.expand.empty()) return id;  // fully covered elsewhere
    }
    on_stack[id] += 1;
    require(on_stack[id] != 0, "on_stack count overflow");
    stack.push_back(std::move(entry));
    return id;
  };

  Configuration init = Configuration::initial(program_);
  VisitedSet::Probe init_probe;
  {
    telemetry::ScopedPhase phase_canon(telemetry::Phase::Canonicalize);
    init_probe = visited.insert(init);
  }
  register_config(std::move(init), init_probe.id, {});

  while (!stack.empty()) {
    StackEntry& top = stack.back();
    if (top.next >= top.expand.size()) {
      on_stack[top.id] -= 1;
      stack.pop_back();
      continue;
    }
    const std::size_t fire_index = top.next;
    const Pid pid = top.expand[top.next++];
    const std::uint32_t from_id = top.id;

    // Capture edge metadata before stepping; sleep sets also need the fired
    // action for independence filtering.
    sem::ActionKind edge_kind = ActionKind::None;
    std::uint32_t edge_stmt = sem::kNoStmt;
    ActionInfo fired;
    if (options_.record_graph || options_.sleep_sets) {
      fired = sem::action_info(top.cfg, pid);
      edge_kind = fired.kind;
      edge_stmt = fired.stmt_id;
    }

    // Successor sleep set: surviving (independent) entries of this state's
    // sleep plus the earlier-fired siblings that are independent of `pid`.
    std::set<Pid> succ_sleep;
    if (options_.sleep_sets) {
      auto keep_if_independent = [&](Pid t) {
        const ActionInfo other = sem::action_info(top.cfg, t);
        if (!other.exists) return;
        if (!actions_conflict(fired, other)) succ_sleep.insert(t);
      };
      for (Pid t : top.sleep) keep_if_independent(t);
      for (std::size_t i = 0; i < fire_index; ++i) keep_if_independent(top.expand[i]);
    }

    Configuration succ = step(top.cfg, pid, result);
    result.num_transitions += 1;
    tel.maybe_progress(result.num_configs, result.num_transitions, stack.size());
    VisitedSet::Probe probe;
    {
      telemetry::ScopedPhase phase_canon(telemetry::Phase::Canonicalize);
      probe = visited.insert(succ);
    }

    std::uint32_t to_id;
    if (!probe.inserted) {
      to_id = probe.id;
      // Stack proviso (ignoring problem): a reduced expansion that closes a
      // cycle on the DFS stack re-expands the source state fully.
      if (options_.reduction == Reduction::Stubborn && options_.cycle_proviso &&
          on_stack[to_id] != 0) {
        StackEntry& cur = stack.back();
        if (!cur.expanded_full) {
          cur.expanded_full = true;
          cur.next = 0;
          cur.expand.clear();
          cur.sleep.clear();
          for (const ActionInfo& info : sem::all_action_infos(cur.cfg)) {
            if (info.enabled) cur.expand.push_back(info.pid);
          }
          hot_.proviso_full_expansions.add();
        }
      }
      // Sleep revisit rule: transitions sleeping on the first visit but
      // awake now must be explored from the stored configuration.
      if (options_.sleep_sets) {
        std::set<Pid> missing;
        for (Pid t : sleep_store[to_id]) {
          if (!succ_sleep.contains(t)) missing.insert(t);
        }
        if (!missing.empty()) {
          std::set<Pid> narrowed;
          for (Pid t : sleep_store[to_id]) {
            if (succ_sleep.contains(t)) narrowed.insert(t);
          }
          sleep_store[to_id] = narrowed;
          StackEntry redo;
          redo.cfg = cfg_store[to_id];
          redo.id = to_id;
          for (Pid t : missing) {
            const ActionInfo info = sem::action_info(redo.cfg, t);
            if (info.exists && info.enabled) redo.expand.push_back(t);
          }
          redo.sleep = std::move(narrowed);
          if (!redo.expand.empty()) {
            on_stack[to_id] += 1;
            require(on_stack[to_id] != 0, "on_stack count overflow");
            stack.push_back(std::move(redo));
            hot_.sleep_reexplorations.add();
          }
        }
      }
    } else {
      if (result.num_configs >= options_.max_configs) {
        // The transition was fired but its successor is dropped: take it
        // back out of both the visited set and num_transitions so the
        // invariant graph.edges.size() == num_transitions survives
        // truncation, and account for the drop separately.
        visited.erase(probe, succ);
        result.num_transitions -= 1;
        hot_.truncated_transitions.add();
        result.truncated = true;
        break;
      }
      to_id = register_config(std::move(succ), probe.id, std::move(succ_sleep));
    }
    if (options_.record_graph) {
      result.graph.edges.push_back(StateGraph::Edge{from_id, to_id, edge_stmt, edge_kind});
    }
  }

  result.graph.num_nodes = result.num_configs;
  result.stats.set("configs", result.num_configs);
  result.stats.set("transitions", result.num_transitions);
  result.stats.set("terminals", result.terminals.size());
  result.stats.set("deadlocks", result.deadlock_found ? 1 : 0);

  // Dedup-structure gauges are cheap to read off the VisitedSet, so they
  // are published unconditionally (benchmarks compare them with metrics
  // off); only the getrusage call stays behind the metrics switch.
  result.stats.set_gauge("visited_bytes", visited.memory_bytes());
  result.stats.set_gauge("visited_configs", visited.size());
  result.stats.set_gauge("fingerprint_collisions", visited.collisions());
  if (tel.metrics_enabled()) {
    result.stats.set_gauge("peak_rss_bytes", telemetry::peak_rss_bytes());
  }
  return result;
}

ExploreResult explore(const sem::LoweredProgram& program, const ExploreOptions& options) {
  if (options.threads > 1) return parallel_explore(program, options);
  return Explorer(program, options).run();
}

std::string to_dot(const StateGraph& graph, const sem::LoweredProgram& prog) {
  std::ostringstream os;
  os << "digraph configurations {\n";
  os << "  rankdir=TB;\n  node [shape=circle, label=\"\", width=0.25];\n";
  for (std::uint32_t t : graph.terminal_nodes) {
    os << "  n" << t << " [shape=doublecircle];\n";
  }
  for (std::uint32_t d : graph.deadlock_nodes) {
    os << "  n" << d << " [style=filled, fillcolor=\"#cc3333\"];\n";
  }
  os << "  n0 [style=filled, fillcolor=\"#99ccff\"];\n";  // initial
  for (const StateGraph::Edge& e : graph.edges) {
    os << "  n" << e.from << " -> n" << e.to;
    std::string label;
    if (e.stmt != sem::kNoStmt) {
      // Labels only for statements the user named; everything else stays
      // compact.
      for (const auto& [sym, stmt] : prog.module().labels()) {
        if (stmt->id() == e.stmt) label = prog.module().interner().spelling(sym);
      }
    }
    if (label.empty()) label = std::string(sem::action_kind_name(e.kind));
    os << " [label=\"" << label << "\", fontsize=9]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace copar::explore
