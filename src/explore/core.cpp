#include "src/explore/core.h"

#include <set>
#include <string>

#include "src/support/diagnostics.h"

namespace copar::explore {

using sem::ActionInfo;
using sem::ActionKind;
using sem::Configuration;
using sem::Pid;

namespace {

/// Rendered fork path: the thread context of a process ("" = root line).
std::string thread_context(const sem::Process& p) {
  std::string out;
  for (const sem::PathElem& e : p.path) {
    if (!out.empty()) out += '/';
    out += 's' + std::to_string(e.site) + 'b' + std::to_string(e.branch);
  }
  return out;
}

}  // namespace

std::string LocKey::to_string() const {
  switch (kind) {
    case sem::ObjKind::Globals: return "g[" + std::to_string(off) + "]";
    case sem::ObjKind::Frame:
      return "f" + std::to_string(site) + "[" + std::to_string(off) + "]";
    case sem::ObjKind::Heap:
      return "h" + std::to_string(site) + "[" + std::to_string(off) + "]";
  }
  return "?";
}

LocKey loc_key(const sem::Store& store, std::size_t loc) {
  const auto [obj, off] = store.locate(loc);
  const sem::Object& o = store.object(obj);
  LocKey key;
  key.kind = o.obj_kind;
  key.off = off;
  switch (o.obj_kind) {
    case sem::ObjKind::Globals: key.site = 0; break;
    case sem::ObjKind::Frame:
    case sem::ObjKind::Heap: key.site = o.site; break;
  }
  return key;
}

void Recorder::action(const Configuration& cfg, const ActionInfo& info) {
  if (!accesses_on_) return;
  const sem::Process& p = cfg.processes[info.pid];

  AccessSets sets;
  info.reads.for_each([&](std::size_t loc) { sets.reads.insert(loc_key(cfg.store, loc)); });
  info.writes.for_each([&](std::size_t loc) { sets.writes.insert(loc_key(cfg.store, loc)); });

  if (info.stmt_id != sem::kNoStmt) accesses_.by_stmt[info.stmt_id].merge(sets);
  for (std::size_t i = 0; i < p.frames.size(); ++i) {
    AccessSets attributed = sets;
    // A Return's write of the result cell belongs to the call site, not to
    // the returning activation (a function is still "pure" if its value is
    // stored by its caller).
    if (info.kind == ActionKind::Return && i + 1 == p.frames.size()) attributed.writes.clear();
    accesses_.by_proc[p.frames[i].proc].merge(attributed);
  }

  const std::string ctx = thread_context(p);
  auto touch_site = [&](const LocKey& key) {
    if (key.kind != sem::ObjKind::Heap) return;
    accesses_.sites[key.site].accessor_threads.insert(ctx);
  };
  for (const LocKey& k : sets.reads) touch_site(k);
  for (const LocKey& k : sets.writes) touch_site(k);

  // Cross-process access detection needs the concrete objects.
  auto other_process = [&](const DynamicBitset& locs) {
    locs.for_each([&](std::size_t loc) {
      const auto [obj, off] = cfg.store.locate(loc);
      const sem::Object& o = cfg.store.object(obj);
      if (o.obj_kind == sem::ObjKind::Heap && o.creator != info.pid) {
        accesses_.sites[o.site].accessed_by_other_process = true;
      }
    });
  };
  other_process(info.reads);
  other_process(info.writes);

  if (info.kind == ActionKind::Alloc && info.stmt_id != sem::kNoStmt) {
    SiteInfo& site = accesses_.sites[info.stmt_id];
    site.creator_threads.insert(ctx);
    site.allocated += 1;
  }
}

void Recorder::pairs(const std::vector<ActionInfo>& infos) {
  if (!pairs_on_) return;
  for (std::size_t i = 0; i < infos.size(); ++i) {
    for (std::size_t j = i + 1; j < infos.size(); ++j) {
      const ActionInfo* a = &infos[i];
      const ActionInfo* b = &infos[j];
      if (!a->enabled || !b->enabled) continue;
      if (a->stmt_id == sem::kNoStmt || b->stmt_id == sem::kNoStmt) continue;
      if (a->stmt_id > b->stmt_id) std::swap(a, b);
      PairFacts& facts = pairs_[{a->stmt_id, b->stmt_id}];
      facts.co_enabled = true;
      facts.w1_r2 = facts.w1_r2 || a->writes.intersects(b->reads);
      facts.w1_w2 = facts.w1_w2 || a->writes.intersects(b->writes);
      facts.r1_w2 = facts.r1_w2 || a->reads.intersects(b->writes);
    }
  }
}

void Recorder::return_lifetime(const Configuration& before, Pid pid, const Configuration& after) {
  if (!lifetimes_on_) return;
  const sem::Process& p = before.processes[pid];
  if (p.frames.empty()) return;
  const sem::ProcString& activation_birth = before.store.object(p.top().frame_obj).birth;

  const std::vector<bool> reachable = sem::reachable_objects(after);
  for (sem::ObjId obj = 0; obj < after.store.num_objects(); ++obj) {
    const sem::Object& o = after.store.object(obj);
    if (o.obj_kind != sem::ObjKind::Heap) continue;
    if (!activation_birth.is_prefix_of(o.birth)) continue;  // not born here
    if (obj < reachable.size() && reachable[obj]) {
      accesses_.sites[o.site].escapes_creating_function = true;
    }
  }
}

void Recorder::terminal_lifetimes(const Configuration& cfg) {
  if (!lifetimes_on_) return;
  const std::vector<bool> reachable = sem::reachable_objects(cfg);
  for (sem::ObjId obj = 0; obj < cfg.store.num_objects(); ++obj) {
    const sem::Object& o = cfg.store.object(obj);
    if (o.obj_kind != sem::ObjKind::Heap) continue;
    if (obj < reachable.size() && reachable[obj]) {
      accesses_.sites[o.site].live_at_exit += 1;
    }
  }
}

void Recorder::merge_into(ExploreResult& result) const {
  for (const auto& [stmt, sets] : accesses_.by_stmt) result.accesses.by_stmt[stmt].merge(sets);
  for (const auto& [proc, sets] : accesses_.by_proc) result.accesses.by_proc[proc].merge(sets);
  for (const auto& [site, info] : accesses_.sites) {
    SiteInfo& out = result.accesses.sites[site];
    out.accessor_threads.insert(info.accessor_threads.begin(), info.accessor_threads.end());
    out.creator_threads.insert(info.creator_threads.begin(), info.creator_threads.end());
    out.accessed_by_other_process = out.accessed_by_other_process || info.accessed_by_other_process;
    out.escapes_creating_function =
        out.escapes_creating_function || info.escapes_creating_function;
    out.allocated += info.allocated;
    out.live_at_exit += info.live_at_exit;
  }
  for (const auto& [key, facts] : pairs_) {
    PairFacts& out = result.pairs[key];
    out.co_enabled = out.co_enabled || facts.co_enabled;
    out.w1_r2 = out.w1_r2 || facts.w1_r2;
    out.w1_w2 = out.w1_w2 || facts.w1_w2;
    out.r1_w2 = out.r1_w2 || facts.r1_w2;
  }
}

Configuration core_step(const Configuration& cfg, Pid pid, const StaticInfo& static_info,
                        bool coarsen, Recorder& rec, StepCounters& counters,
                        const sem::ActionInfo* info_hint) {
  const bool facts = rec.wants_step_facts();
  Configuration succ = [&] {
    if (!facts) {
      // Fast path: one decode per transition — reuse the engine's enablement
      // check when it provides one.
      if (info_hint != nullptr) return sem::apply_action(cfg, *info_hint);
      return sem::apply_action(cfg, pid);
    }
    const ActionInfo local = info_hint == nullptr ? sem::action_info(cfg, pid) : ActionInfo{};
    const ActionInfo& info = info_hint != nullptr ? *info_hint : local;
    require(info.exists && info.enabled, "core_step: action not fireable");
    rec.action(cfg, info);
    Configuration s = sem::apply_action(cfg, info);
    if (info.kind == ActionKind::Return) rec.return_lifetime(cfg, pid, s);
    return s;
  }();
  if (!coarsen) return succ;

  // Virtual coarsening: keep running this process while its following
  // actions are non-critical (Observation 5). A combined action thus holds
  // at most one critical reference — the first.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_points;
  int guard = 0;
  for (; guard < kCoarsenGuardMax; ++guard) {
    const sem::Process& p = succ.processes[pid];
    if (!p.live() || p.frames.empty()) break;
    ActionInfo next = sem::action_info(succ, pid);
    if (!next.exists || !next.enabled) break;
    if (next.kind == ActionKind::Fork) break;
    if (action_is_critical(succ, next, static_info)) break;
    if (!seen_points.insert({next.proc, next.pc}).second) break;  // local cycle
    if (facts) rec.action(succ, next);
    Configuration succ2 = sem::apply_action(succ, next);
    if (facts && next.kind == ActionKind::Return) rec.return_lifetime(succ, pid, succ2);
    succ = std::move(succ2);
    counters.coarsened_micro_actions += 1;
  }
  if (guard == kCoarsenGuardMax) {
    // The cap exists to bound a combined step; reaching it means a
    // "non-critical" straight-line run of unusual length (or a local loop
    // the seen_points cycle check cannot fold). The step stays sound — the
    // remaining actions become ordinary separate steps — but silence here
    // could mask nontermination, so say it once and count every hit.
    counters.coarsen_guard_hits += 1;
    warn_once("coarsen-guard",
              "virtual coarsening stopped after " + std::to_string(kCoarsenGuardMax) +
                  " micro-actions in one combined step; a non-critical local code "
                  "run is unusually long (see the coarsen_guard_hits counter)");
  }
  return succ;
}

}  // namespace copar::explore
