#include "src/explore/staticinfo.h"

#include <set>

#include "src/support/telemetry.h"

namespace copar::explore {

namespace {
using lang::Expr;
using lang::ExprKind;
using sem::Instr;
using sem::Op;
using sem::Proc;
}  // namespace

constexpr std::uint32_t kLinksClass = 0;

StaticInfo::StaticInfo(const sem::LoweredProgram& program) : program_(&program) {
  telemetry::ScopedPhase phase(telemetry::Phase::StaticInfo);
  build_classes();
  collect_address_taken();
  build_direct_sets();
  build_reachability();
  build_point_futures();
  build_criticality();
}

void StaticInfo::build_classes() {
  std::uint32_t next = 1;  // 0 = static-link cells
  global_class_.assign(program_->nglobal_cells(), kLinksClass);
  for (std::uint32_t slot = 1; slot < program_->nglobal_cells(); ++slot) {
    global_class_[slot] = next++;
  }
  for (const Proc& p : program_->procs()) {
    // Functions and doall bodies own frames; cobegin branches (nslots 0)
    // use their owner's.
    if (p.fun == nullptr && p.nslots == 0) continue;
    for (std::uint32_t slot = 1; slot < std::max(p.nslots, 1u); ++slot) {
      frame_class_[{p.id, slot}] = next++;
    }
  }
  for (const Proc& p : program_->procs()) {
    for (const Instr& i : p.code) {
      if (i.op == Op::Alloc && i.stmt != nullptr) {
        if (!heap_class_.contains(i.stmt->id())) heap_class_[i.stmt->id()] = next++;
      }
    }
  }
  num_classes_ = next;
  for (const auto& [site, cls] : heap_class_) pointer_targets_.set(cls);
}

std::uint32_t StaticInfo::class_of(const sem::Store& store, std::size_t loc) const {
  const auto [obj, off] = store.locate(loc);
  const sem::Object& o = store.object(obj);
  switch (o.obj_kind) {
    case sem::ObjKind::Globals:
      return off < global_class_.size() ? global_class_[off] : kLinksClass;
    case sem::ObjKind::Frame: {
      if (off == 0) return kLinksClass;
      auto it = frame_class_.find({o.site, off});
      // Slots beyond the static layout cannot occur; fall back defensively.
      return it == frame_class_.end() ? kLinksClass : it->second;
    }
    case sem::ObjKind::Heap: {
      auto it = heap_class_.find(o.site);
      require(it != heap_class_.end(), "heap object with unknown allocation site");
      return it->second;
    }
  }
  return kLinksClass;
}

namespace {

/// Resolves a VarRef occurring in proc `p` to its class, mirroring the
/// dynamic hop chain statically: hops walk lexical parents of the frame
/// owner.
std::uint32_t varref_class(
    const sem::LoweredProgram& prog,
    const std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>& frame_class,
    const std::vector<std::uint32_t>& global_class, const Proc& p, const Expr& ref) {
  const sem::VarLoc& vl = prog.varloc(ref.id());
  if (vl.is_global) {
    return vl.slot < global_class.size() ? global_class[vl.slot] : kLinksClass;
  }
  std::uint32_t fn = p.owner_fn;
  for (std::uint16_t h = 0; h < vl.hops; ++h) {
    fn = prog.proc(fn).lexical_parent;
    require(fn != sem::kNoProc, "static hop chain fell off the top");
  }
  auto it = frame_class.find({fn, vl.slot});
  require(it != frame_class.end(), "unmapped frame slot");
  return it->second;
}

}  // namespace

void StaticInfo::collect_address_taken() {
  // Any variable whose address is taken can be reached through pointers, so
  // its class joins the pointer-target set (heap classes are already in).
  for (const Proc& p : program_->procs()) {
    for (const Instr& instr : p.code) {
      // Walk every expression hanging off the instruction.
      std::vector<const Expr*> work;
      auto push = [&](const Expr* e) {
        if (e != nullptr) work.push_back(e);
      };
      push(instr.lhs);
      push(instr.rhs);
      if (instr.args != nullptr) {
        for (const auto& a : *instr.args) push(a.get());
      }
      while (!work.empty()) {
        const Expr* e = work.back();
        work.pop_back();
        switch (e->kind()) {
          case ExprKind::AddrOf: {
            const Expr& lv = lang::expr_cast<lang::AddrOf>(*e).lvalue();
            if (lv.kind() == ExprKind::VarRef) {
              pointer_targets_.set(
                  varref_class(*program_, frame_class_, global_class_, p, lv));
            } else {
              push(&lv);  // &p[i], &*q: base already a pointer
            }
            break;
          }
          case ExprKind::Unary:
            push(&lang::expr_cast<lang::Unary>(*e).operand());
            break;
          case ExprKind::Binary:
            push(&lang::expr_cast<lang::Binary>(*e).lhs());
            push(&lang::expr_cast<lang::Binary>(*e).rhs());
            break;
          case ExprKind::Deref:
            push(&lang::expr_cast<lang::Deref>(*e).pointer());
            break;
          case ExprKind::Index:
            push(&lang::expr_cast<lang::Index>(*e).base());
            push(&lang::expr_cast<lang::Index>(*e).index());
            break;
          default:
            break;
        }
      }
    }
  }
}

void StaticInfo::build_direct_sets() {
  const std::size_t n = program_->procs().size();
  direct_reads_.assign(n, DynamicBitset(num_classes_));
  direct_writes_.assign(n, DynamicBitset(num_classes_));
  call_fork_edges_.assign(n, {});

  // Global function slots that are reassigned anywhere force conservative
  // call targets.
  std::set<std::uint32_t> mutable_global_slots;
  auto note_lvalue_global = [&](const Expr* lv) {
    if (lv != nullptr && lv->kind() == ExprKind::VarRef) {
      const sem::VarLoc& vl = program_->varloc(lv->id());
      if (vl.is_global) mutable_global_slots.insert(vl.slot);
    }
  };
  for (const Proc& p : program_->procs()) {
    for (const Instr& instr : p.code) {
      if (instr.op == Op::Assign || instr.op == Op::Alloc || instr.op == Op::Call) {
        note_lvalue_global(instr.lhs);
      }
    }
  }

  instr_reads_.assign(n, {});
  instr_writes_.assign(n, {});
  instr_targets_.assign(n, {});

  for (const Proc& p : program_->procs()) {
    // Per-instruction scratch sets; aggregated into the proc-level sets at
    // the end of each instruction.
    DynamicBitset reads(num_classes_);
    DynamicBitset writes(num_classes_);

    // read-mode / address-mode expression walks
    auto walk_read = [&](const Expr& e, auto&& self) -> void {
      switch (e.kind()) {
        case ExprKind::IntLit:
        case ExprKind::BoolLit:
        case ExprKind::NullLit:
        case ExprKind::FunLit:
          break;
        case ExprKind::VarRef: {
          const sem::VarLoc& vl = program_->varloc(e.id());
          if (!vl.is_global && vl.hops > 0) reads.set(kLinksClass);
          reads.set(varref_class(*program_, frame_class_, global_class_, p, e));
          break;
        }
        case ExprKind::Unary:
          self(lang::expr_cast<lang::Unary>(e).operand(), self);
          break;
        case ExprKind::Binary:
          self(lang::expr_cast<lang::Binary>(e).lhs(), self);
          self(lang::expr_cast<lang::Binary>(e).rhs(), self);
          break;
        case ExprKind::AddrOf: {
          const Expr& lv = lang::expr_cast<lang::AddrOf>(e).lvalue();
          // Address computation reads subexpressions but not the cell.
          if (lv.kind() == ExprKind::Deref) {
            self(lang::expr_cast<lang::Deref>(lv).pointer(), self);
          } else if (lv.kind() == ExprKind::Index) {
            self(lang::expr_cast<lang::Index>(lv).base(), self);
            self(lang::expr_cast<lang::Index>(lv).index(), self);
          }
          break;
        }
        case ExprKind::Deref:
          self(lang::expr_cast<lang::Deref>(e).pointer(), self);
          reads |= pointer_targets_;
          break;
        case ExprKind::Index:
          self(lang::expr_cast<lang::Index>(e).base(), self);
          self(lang::expr_cast<lang::Index>(e).index(), self);
          reads |= pointer_targets_;
          break;
      }
    };
    auto lvalue_write = [&](const Expr& lv) {
      switch (lv.kind()) {
        case ExprKind::VarRef:
          writes.set(varref_class(*program_, frame_class_, global_class_, p, lv));
          break;
        case ExprKind::Deref:
          walk_read(lang::expr_cast<lang::Deref>(lv).pointer(), walk_read);
          writes |= pointer_targets_;
          break;
        case ExprKind::Index:
          walk_read(lang::expr_cast<lang::Index>(lv).base(), walk_read);
          walk_read(lang::expr_cast<lang::Index>(lv).index(), walk_read);
          writes |= pointer_targets_;
          break;
        default:
          throw Error("static walk: bad lvalue");
      }
    };

    for (const Instr& instr : p.code) {
      reads.clear();
      writes.clear();
      std::vector<std::uint32_t> targets;
      switch (instr.op) {
        case Op::Assign:
        case Op::Alloc:
          walk_read(*instr.rhs, walk_read);
          lvalue_write(*instr.lhs);
          break;
        case Op::Call: {
          walk_read(*instr.rhs, walk_read);
          if (instr.args != nullptr) {
            for (const auto& a : *instr.args) walk_read(*a, walk_read);
          }
          if (instr.lhs != nullptr) lvalue_write(*instr.lhs);
          // Call targets.
          bool known = false;
          if (instr.rhs->kind() == ExprKind::FunLit) {
            targets.push_back(lang::expr_cast<lang::FunLit>(*instr.rhs).decl().index());
            known = true;
          } else if (instr.rhs->kind() == ExprKind::VarRef) {
            const sem::VarLoc& vl = program_->varloc(instr.rhs->id());
            if (vl.is_global && !mutable_global_slots.contains(vl.slot)) {
              for (const sem::GlobalSlot& g : program_->globals()) {
                if (g.slot == vl.slot && g.fun != nullptr) {
                  targets.push_back(g.fun->index());
                  known = true;
                }
              }
            }
          }
          if (!known) {
            for (const Proc& q : program_->procs()) {
              if (q.fun != nullptr) targets.push_back(q.id);
            }
          }
          break;
        }
        case Op::Return:
          if (instr.rhs != nullptr) walk_read(*instr.rhs, walk_read);
          break;
        case Op::Branch:
        case Op::Assert:
          if (instr.rhs != nullptr) walk_read(*instr.rhs, walk_read);
          break;
        case Op::Lock:
        case Op::Unlock: {
          const Expr& lv = *instr.lhs;
          if (lv.kind() == ExprKind::VarRef) {
            const std::uint32_t cls =
                varref_class(*program_, frame_class_, global_class_, p, lv);
            reads.set(cls);
            writes.set(cls);
          } else {
            lvalue_write(lv);
            reads |= pointer_targets_;
          }
          break;
        }
        case Op::Fork:
          for (std::uint32_t child : instr.forks) targets.push_back(child);
          break;
        case Op::ForkRange:
          walk_read(*instr.rhs, walk_read);
          walk_read(*instr.rhs2, walk_read);
          for (std::uint32_t child : instr.forks) targets.push_back(child);
          break;
        case Op::Join:
        case Op::Jump:
        case Op::Halt:
          break;
      }
      for (std::uint32_t t : targets) call_fork_edges_[p.id].push_back(t);
      direct_reads_[p.id] |= reads;
      direct_writes_[p.id] |= writes;
      instr_reads_[p.id].push_back(reads);
      instr_writes_[p.id].push_back(writes);
      instr_targets_[p.id].push_back(std::move(targets));
    }
  }
}

void StaticInfo::build_point_futures() {
  const std::size_t n = program_->procs().size();
  point_future_reads_.assign(n, {});
  point_future_writes_.assign(n, {});
  for (const Proc& p : program_->procs()) {
    const std::size_t len = p.code.size();
    auto& fr = point_future_reads_[p.id];
    auto& fw = point_future_writes_[p.id];
    fr.assign(len, DynamicBitset(num_classes_));
    fw.assign(len, DynamicBitset(num_classes_));

    auto succs = [&](std::size_t pc, std::vector<std::size_t>& out) {
      out.clear();
      const Instr& i = p.code[pc];
      switch (i.op) {
        case Op::Branch:
          out.push_back(i.t1);
          out.push_back(i.t2);
          break;
        case Op::Jump:
          out.push_back(i.t1);
          break;
        case Op::Return:
        case Op::Halt:
          break;  // continuation belongs to the caller frame
        default:
          if (pc + 1 < len) out.push_back(pc + 1);
          break;
      }
    };

    // Backward fixpoint: future(pc) = direct(pc) ∪ targets' whole-proc sets
    // ∪ futures of successors. Loops converge because sets only grow.
    bool changed = true;
    std::vector<std::size_t> ss;
    while (changed) {
      changed = false;
      for (std::size_t pc = len; pc-- > 0;) {
        DynamicBitset r = instr_reads_[p.id][pc];
        DynamicBitset w = instr_writes_[p.id][pc];
        for (std::uint32_t t : instr_targets_[p.id][pc]) {
          r |= future_reads_[t];
          w |= future_writes_[t];
        }
        succs(pc, ss);
        for (std::size_t s : ss) {
          r |= fr[s];
          w |= fw[s];
        }
        if (!(r == fr[pc])) {
          fr[pc] = std::move(r);
          changed = true;
        }
        if (!(w == fw[pc])) {
          fw[pc] = std::move(w);
          changed = true;
        }
      }
    }
  }
}

void StaticInfo::build_reachability() {
  const std::size_t n = program_->procs().size();
  reach_.assign(n, {});
  future_reads_.assign(n, DynamicBitset(num_classes_));
  future_writes_.assign(n, DynamicBitset(num_classes_));
  for (std::uint32_t p = 0; p < n; ++p) {
    std::vector<std::uint32_t> stack = {p};
    std::set<std::uint32_t> seen = {p};
    while (!stack.empty()) {
      const std::uint32_t cur = stack.back();
      stack.pop_back();
      reach_[p].push_back(cur);
      future_reads_[p] |= direct_reads_[cur];
      future_writes_[p] |= direct_writes_[cur];
      for (std::uint32_t next : call_fork_edges_[cur]) {
        if (seen.insert(next).second) stack.push_back(next);
      }
    }
  }
}

void StaticInfo::build_criticality() {
  critical_ = DynamicBitset(num_classes_);
  // For every cobegin site, branches are pairwise concurrent; a class is
  // critical when one branch context may write it while a sibling context
  // may access it (Definition 4 lifted to classes).
  for (const Proc& p : program_->procs()) {
    for (const Instr& instr : p.code) {
      if (instr.op == Op::ForkRange) {
        // All doall instances run the same code concurrently: every class
        // the body may write is written-while-accessed by a sibling
        // instance, hence critical (Definition 4 self-conflict).
        critical_ |= future_writes_[instr.forks.at(0)];
        continue;
      }
      if (instr.op != Op::Fork) continue;
      const auto& children = instr.forks;
      for (std::size_t i = 0; i < children.size(); ++i) {
        for (std::size_t j = 0; j < children.size(); ++j) {
          if (i == j) continue;
          const DynamicBitset& wi = future_writes_[children[i]];
          const DynamicBitset& rj = future_reads_[children[j]];
          const DynamicBitset& wj = future_writes_[children[j]];
          DynamicBitset acc = rj;
          acc |= wj;
          acc &= wi;
          critical_ |= acc;
        }
      }
    }
  }
}

std::string StaticInfo::describe_class(std::uint32_t cls) const {
  if (cls == kLinksClass) return "<links>";
  for (std::uint32_t slot = 1; slot < global_class_.size(); ++slot) {
    if (global_class_[slot] == cls) {
      for (const sem::GlobalSlot& g : program_->globals()) {
        if (g.slot == slot) {
          return "global " + std::string(program_->module().interner().spelling(g.name));
        }
      }
    }
  }
  for (const auto& [key, c] : frame_class_) {
    if (c == cls) {
      return "frame " + program_->proc(key.first).name + "[" + std::to_string(key.second) + "]";
    }
  }
  for (const auto& [site, c] : heap_class_) {
    if (c == cls) return "heap@stmt" + std::to_string(site);
  }
  return "class" + std::to_string(cls);
}

}  // namespace copar::explore
