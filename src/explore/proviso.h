// Cycle provisos of the exploration core (the ignoring problem, paper §2.3).
//
// A stubborn-set reduction that always fires a strict subset of the enabled
// processes can postpone some process forever around a cycle of the reduced
// graph ("ignoring"). Every engine solves it with one of the two provisos
// in this header:
//
//   * DfsStackProviso — the sequential DFS rule: when a reduced expansion
//     fires an edge back onto a state still on the search stack, the source
//     of the edge is re-expanded fully. Needs the stack, so it exists only
//     in the depth-first engine.
//
//   * fire_with_insertion_proviso — the stackless rule shared by the
//     parallel engine and the witness search: a *reduced* expansion stands
//     only if every fired successor was newly inserted into the visited
//     set; if any successor was already known, the source is re-expanded
//     fully. Order a cycle's states by expansion start: the last one fires
//     an edge to an already-inserted state, so every cycle of the reduced
//     graph contains a fully expanded state. Concurrent insertions by other
//     workers only add full expansions — conservative, never unsound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sem/step.h"
#include "src/support/diagnostics.h"

namespace copar::explore {

/// DFS-stack membership counts for the sequential cycle proviso. State ids
/// must be dense (the VisitedSet hands them out in insertion order); a
/// count, not a flag, because sleep re-exploration can stack an id twice —
/// and in principle many times, so a narrow counter could wrap and silently
/// turn off the proviso.
class DfsStackProviso {
 public:
  /// Registers the next dense state id (call once per visited insertion).
  void add_state() { counts_.push_back(0); }

  [[nodiscard]] std::size_t num_states() const noexcept { return counts_.size(); }

  /// Marks a stack entry for `id` pushed / popped.
  void enter(std::uint32_t id) {
    counts_[id] += 1;
    require(counts_[id] != 0, "on_stack count overflow");
  }
  void leave(std::uint32_t id) { counts_[id] -= 1; }

  [[nodiscard]] bool on_stack(std::uint32_t id) const { return counts_[id] != 0; }

 private:
  std::vector<std::uint32_t> counts_;
};

/// Fires `expansion` from one state and applies the insertion proviso:
/// when the expansion was `reduced` and some fired successor was not new,
/// the remaining enabled processes are fired as well (full re-expansion).
/// `fire(pid)` performs one transition and returns true when its successor
/// was newly inserted into the visited set. Returns true when the proviso
/// triggered the full re-expansion (callers count it).
template <typename FireFn>
bool fire_with_insertion_proviso(const std::vector<sem::Pid>& enabled,
                                 const std::vector<sem::Pid>& expansion, bool reduced,
                                 bool cycle_proviso, FireFn&& fire) {
  bool all_new = true;
  for (const sem::Pid pid : expansion) {
    if (!fire(pid)) all_new = false;
  }
  if (!reduced || all_new || !cycle_proviso) return false;
  for (const sem::Pid pid : enabled) {
    if (std::find(expansion.begin(), expansion.end(), pid) != expansion.end()) continue;
    fire(pid);
  }
  return true;
}

}  // namespace copar::explore
