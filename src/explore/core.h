// Shared pieces of the exploration core: the (possibly coarsened) step and
// the recording of analysis payloads.
//
// Every engine — sequential DFS, the work-stealing parallel engine, the
// witness search — fires transitions the same way: apply the process's next
// action and, under virtual coarsening (Observation 5), keep running it
// through following non-critical actions. core_step() is that one
// implementation; the engines differ only in frontier policy (frontier.h),
// proviso (proviso.h), and visited backend (visited.h).
//
// A Recorder accumulates the §5 analysis payloads (per-statement/function
// access sets, MHP/conflict pairs, allocation-site lifetime facts) into
// private buffers. The sequential engine owns one; the parallel engine owns
// one per worker and merges them after the join — set unions and sums, so
// the merged log is independent of which worker recorded what.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/explore/explorer.h"

namespace copar::explore {

/// Counters core_step accumulates; engines fold them into their stats at
/// end-of-run (only when nonzero, preserving lazy-counter text output).
struct StepCounters {
  std::uint64_t coarsened_micro_actions = 0;
  std::uint64_t coarsen_guard_hits = 0;
};

/// Accumulates the optional analysis payloads of one exploration (or one
/// worker's share of it). A default-constructed Recorder records nothing
/// and costs one branch per step.
class Recorder {
 public:
  Recorder() = default;
  explicit Recorder(const ExploreOptions& options)
      : accesses_on_(options.record_accesses),
        pairs_on_(options.record_pairs),
        lifetimes_on_(options.record_lifetimes) {}

  /// True when core_step must materialize ActionInfo for recording.
  [[nodiscard]] bool wants_step_facts() const noexcept { return accesses_on_ || lifetimes_on_; }

  void action(const sem::Configuration& cfg, const sem::ActionInfo& info);
  void pairs(const std::vector<sem::ActionInfo>& infos);
  void return_lifetime(const sem::Configuration& before, sem::Pid pid,
                       const sem::Configuration& after);
  void terminal_lifetimes(const sem::Configuration& cfg);

  /// Folds this recorder's buffers into `result` (set unions, ORed flags,
  /// summed counts) — commutative and associative across workers.
  void merge_into(ExploreResult& result) const;

 private:
  bool accesses_on_ = false;
  bool pairs_on_ = false;
  bool lifetimes_on_ = false;
  AccessLog accesses_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, PairFacts> pairs_;
};

/// One (possibly coarsened) step of process `pid` from `cfg` — the single
/// step implementation behind every engine. Records fired actions and
/// return lifetimes through `rec` when it wants them.
///
/// `info_hint`, when non-null, must be the ActionInfo an engine already
/// computed for (cfg, pid) — e.g. for sleep sets or graph recording — and
/// lets the step fire without decoding the instruction a second time.
[[nodiscard]] sem::Configuration core_step(const sem::Configuration& cfg, sem::Pid pid,
                                           const StaticInfo& static_info, bool coarsen,
                                           Recorder& rec, StepCounters& counters,
                                           const sem::ActionInfo* info_hint = nullptr);

}  // namespace copar::explore
