// Stubborn-set computation (the paper's §2.2–2.3, Algorithm 1).
//
// At an expansion step, instead of firing every enabled process, fire only
// the enabled members of a *stubborn set* T of processes, where T is closed
// under the rules:
//
//   (1) if p ∈ T is enabled and q's next action does not commute with p's
//       (w_p ∩ (r_q ∪ w_q) ≠ ∅, or r_p ∩ w_q ≠ ∅, or either may fault on
//       state the other writes), then q ∈ T;
//   (2) if p ∈ T is disabled, the processes that can enable it are in T:
//       for a Join, the pending children (transitively, their descendants);
//       for a Lock, the current owner of the lock.
//
// This is the process-level ("improved Overman") formulation the paper
// gives: conflicts are detected with the read/write sets of each process's
// next action. We try each enabled process as a seed, close under the rules
// above, and keep a closure with the fewest enabled members (preferring
// singletons whose action is purely local — the paper's locality property).
#pragma once

#include <vector>

#include "src/sem/step.h"

namespace copar::explore {

struct StubbornChoice {
  /// Pids whose (enabled) actions to fire at this step.
  std::vector<sem::Pid> expand;
  /// Size of the chosen closure including disabled members (statistics).
  std::size_t closure_size = 0;
  /// True if expand covers every enabled process (no reduction happened).
  bool is_full = false;
};

class StaticInfo;

/// `infos` must contain the ActionInfo of every live process of `cfg`
/// (enabled or not), as produced by sem::all_action_infos. `static_info`
/// supplies the future-access summaries the closure rules consult: a fired
/// action conflicts with process q if it writes a class q may ever access,
/// or reads a class q may ever write.
[[nodiscard]] StubbornChoice stubborn_set(const sem::Configuration& cfg,
                                          const std::vector<sem::ActionInfo>& infos,
                                          const StaticInfo& static_info);

/// The next-action commutation test (w_a∩(r_b∪w_b) / r_a∩w_b on concrete
/// locations). Exposed for the dependence analyses and tests; the stubborn
/// closure itself uses the stronger future-class test.
[[nodiscard]] bool actions_conflict(const sem::ActionInfo& a, const sem::ActionInfo& b);

}  // namespace copar::explore
