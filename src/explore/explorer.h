// State-space exploration of cobegin programs (the paper's framework, §2/§4).
//
// The explorer enumerates reachable configurations of the standard
// (instrumented) semantics, deduplicating by canonical key. Reductions:
//
//   Reduction::Full      — expand every enabled process at every step
//                           (the naive interleaving semantics);
//   Reduction::Stubborn  — expand only a stubborn set (Algorithm 1), with
//                           the stack proviso solving the ignoring problem:
//                           when a reduced expansion closes a cycle on the
//                           DFS stack, the state is re-expanded fully.
//
// Virtual coarsening (Observation 5) can be layered on either: a step runs
// a process through its next action and then through following actions as
// long as they are non-critical, so a combined action contains at most one
// critical reference.
//
// The explorer optionally records the raw material of the §5 analyses:
// per-statement/per-function access sets, may-happen-in-parallel and
// conflicting statement pairs, per-allocation-site lifetime facts, and the
// full state graph.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/explore/access.h"
#include "src/explore/staticinfo.h"
#include "src/sem/config.h"
#include "src/sem/step.h"
#include "src/support/stats.h"

namespace copar::explore {

enum class Reduction : std::uint8_t { Full, Stubborn };

struct ExploreOptions {
  Reduction reduction = Reduction::Full;
  bool coarsen = false;
  /// Sleep sets (Godefroid): prune transitions whose interleavings are
  /// covered by earlier siblings. Orthogonal to the stubborn reduction;
  /// reduces fired transitions (edges), preserving all states reachable
  /// by non-pruned orders — result configurations in particular. Uses the
  /// classic re-exploration rule on revisits, which requires retaining
  /// visited configurations (extra memory). Supported by both engines
  /// (the parallel engine stores sleep masks with the visited set); the
  /// one remaining exclusion is sleep_sets + record_graph + threads > 1
  /// (see parallel_unsupported in parexplore.h).
  bool sleep_sets = false;
  /// Abort (result.truncated = true) after this many distinct configurations.
  std::uint64_t max_configs = 2'000'000;
  bool record_graph = false;
  bool record_accesses = false;
  bool record_pairs = false;      // MHP / conflicting statement pairs
  bool record_lifetimes = false;  // per-site escape facts (implies extra work)
  bool cycle_proviso = true;      // stubborn only
  /// Worker threads. 1 = the sequential DFS engine; >1 selects the
  /// work-stealing engine in parexplore.cpp (see docs/PARALLEL.md). Both
  /// engines support sleep sets and the recording payloads; the parallel
  /// engine merges per-worker buffers deterministically after the join.
  unsigned threads = 1;
  /// Keep full canonical key strings in the visited set (pre-fingerprint
  /// behavior) and count observed fingerprint collisions. Costs an order of
  /// magnitude more dedup memory; see src/explore/visited.h.
  bool exact_keys = false;
};

/// Virtual coarsening stops after this many micro-actions in one combined
/// step; hitting it means a "non-critical" local loop ran away (see the
/// coarsen_guard_hits counter and the one-time `coarsen-guard` warning).
inline constexpr int kCoarsenGuardMax = 4096;

/// True when `info`'s action touches a critical location class. Shared by
/// the sequential and parallel engines' coarsening loops.
[[nodiscard]] bool action_is_critical(const sem::Configuration& cfg, const sem::ActionInfo& info,
                                      const StaticInfo& static_info);

struct TerminalInfo {
  sem::Configuration config;
  bool deadlock = false;
};

/// Co-enabledness/conflict facts about an unordered statement pair
/// (first < second in the map key).
struct PairFacts {
  bool co_enabled = false;
  bool w1_r2 = false;  // first writes a location second reads
  bool w1_w2 = false;
  bool r1_w2 = false;
  friend bool operator==(const PairFacts&, const PairFacts&) = default;
};

struct StateGraph {
  struct Edge {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    std::uint32_t stmt = sem::kNoStmt;
    sem::ActionKind kind = sem::ActionKind::None;
    friend bool operator==(const Edge&, const Edge&) = default;
    friend auto operator<=>(const Edge&, const Edge&) = default;
  };
  std::uint64_t num_nodes = 0;
  std::vector<Edge> edges;
  /// Node ids of terminal configurations (completions and deadlocks).
  std::vector<std::uint32_t> terminal_nodes;
  std::vector<std::uint32_t> deadlock_nodes;
};

/// Graphviz rendering of a recorded state graph (requires record_graph).
/// Terminals are doublecircled, deadlocks filled red; edges carry the
/// acting statement.
std::string to_dot(const StateGraph& graph, const sem::LoweredProgram& prog);

struct ExploreResult {
  std::uint64_t num_configs = 0;      // distinct canonical configurations
  std::uint64_t num_transitions = 0;  // edges fired (post-dedup of sources)
  bool truncated = false;
  /// Terminal configurations (normal completion and deadlocks), deduplicated.
  std::map<std::string, TerminalInfo> terminals;
  bool deadlock_found = false;
  std::set<std::uint32_t> violations;  // failed assert stmt ids anywhere
  std::set<std::pair<std::uint32_t, std::uint8_t>> faults;
  StatRegistry stats;

  // Optional payloads (see ExploreOptions):
  AccessLog accesses;
  std::map<std::pair<std::uint32_t, std::uint32_t>, PairFacts> pairs;
  StateGraph graph;

  /// Canonical keys of the terminal configurations (for set comparisons in
  /// tests: reduction must preserve exactly this set).
  [[nodiscard]] std::set<std::string> terminal_keys() const;

  /// All distinct values global `name` holds across terminal configurations.
  [[nodiscard]] std::set<std::int64_t> terminal_int_values(std::string_view name) const;
};

class Explorer {
 public:
  Explorer(const sem::LoweredProgram& program, ExploreOptions options);

  [[nodiscard]] ExploreResult run();

  [[nodiscard]] const StaticInfo& static_info() const noexcept { return static_info_; }

 private:
  struct StackEntry;

  [[nodiscard]] std::vector<sem::Pid> choose_expansion(const sem::Configuration& cfg,
                                                       const std::vector<sem::ActionInfo>& infos,
                                                       ExploreResult& result) const;

  /// Hot-loop counters, pre-resolved once per run() so the per-step path
  /// pays an increment instead of a string map lookup. Handles are lazy:
  /// a counter that never fires stays absent from the result's stats,
  /// keeping StatRegistry::to_string() output identical to the eager API.
  struct HotCounters {
    StatRegistry::Counter stubborn_steps;
    StatRegistry::Counter stubborn_singletons;
    StatRegistry::Counter stubborn_reduced_steps;
    StatRegistry::Counter sleep_suppressed_transitions;
    StatRegistry::Counter proviso_full_expansions;
    StatRegistry::Counter sleep_reexplorations;
    StatRegistry::Counter truncated_transitions;
  };

  const sem::LoweredProgram& program_;
  ExploreOptions options_;
  StaticInfo static_info_;
  /// Bound to the current run()'s ExploreResult; mutable because
  /// choose_expansion is logically const but counts its decisions.
  mutable HotCounters hot_;
};

/// Convenience one-shot wrapper.
ExploreResult explore(const sem::LoweredProgram& program, const ExploreOptions& options);

}  // namespace copar::explore
