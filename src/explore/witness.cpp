#include "src/explore/witness.h"

#include <sstream>

#include "src/explore/frontier.h"
#include "src/explore/proviso.h"
#include "src/explore/stubborn.h"
#include "src/explore/visited.h"
#include "src/support/telemetry.h"

namespace copar::explore {

using sem::ActionInfo;
using sem::Configuration;
using sem::Pid;

std::string Witness::to_string(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const WitnessStep& s = steps[i];
    os << i + 1 << ". p" << s.pid << ": " << sem::action_kind_name(s.kind);
    if (!s.point.empty()) os << " at " << s.point;
    os << '\n';
  }
  os << "reached:\n" << terminal.to_string();
  (void)prog;
  return os.str();
}

namespace {

bool matches(const WitnessQuery& q, const Configuration& cfg, bool deadlock) {
  if (q.reach_predicate && !q.want_deadlock && q.want_violation == sem::kNoStmt &&
      q.want_fault == sem::kNoStmt && !q.predicate) {
    return false;  // purely a reachability query: only reach_predicate satisfies it
  }
  if (q.want_deadlock && !deadlock) return false;
  if (q.want_violation != sem::kNoStmt || q.want_fault != sem::kNoStmt) {
    bool ok = false;
    if (q.want_violation != sem::kNoStmt) ok = ok || cfg.violations.contains(q.want_violation);
    if (q.want_fault != sem::kNoStmt) {
      for (const auto& [stmt, kind] : cfg.faults) ok = ok || stmt == q.want_fault;
    }
    if (!ok) return false;
  } else if (!q.want_deadlock && !q.predicate) {
    // Nothing requested: any terminal matches.
  }
  if (q.predicate && !q.predicate(cfg)) return false;
  return true;
}

}  // namespace

std::optional<Witness> find_witness(const sem::LoweredProgram& prog,
                                    const WitnessQuery& query, WitnessStats* stats) {
  const StaticInfo static_info(prog);
  WitnessStats local;
  if (stats == nullptr) stats = &local;

  struct Node {
    Configuration cfg;
    std::uint32_t parent = 0xffffffffu;
    WitnessStep via;
  };
  std::vector<Node> nodes;
  VisitedSet visited(query.explore.exact_keys);
  FifoFrontier<std::uint32_t> work;  // BFS: shortest witnesses

  auto push = [&](Configuration cfg, std::uint32_t parent, WitnessStep via)
      -> std::optional<std::uint32_t> {
    telemetry::ScopedPhase phase_canon(telemetry::Phase::Canonicalize);
    const VisitedSet::Probe probe = visited.insert(cfg);
    if (!probe.inserted) return std::nullopt;
    require(probe.id == nodes.size(), "witness: visited-set ids must be dense");
    nodes.push_back(Node{std::move(cfg), parent, std::move(via)});
    work.push(probe.id);
    return probe.id;
  };

  auto build = [&](std::uint32_t id) {
    Witness w;
    w.terminal = nodes[id].cfg;
    std::vector<WitnessStep> rev;
    for (std::uint32_t cur = id; nodes[cur].parent != 0xffffffffu; cur = nodes[cur].parent) {
      rev.push_back(nodes[cur].via);
    }
    w.steps.assign(rev.rbegin(), rev.rend());
    return w;
  };

  telemetry::ScopedPhase phase_expansion(telemetry::Phase::Expansion);
  (void)push(Configuration::initial(prog), 0xffffffffu, WitnessStep{});

  while (const auto popped = work.pop()) {
    const std::uint32_t id = *popped;
    telemetry::Telemetry::global().maybe_progress(nodes.size(), nodes.size() - work.size(),
                                                 work.size());
    stats->configs = nodes.size();
    if (nodes.size() > query.explore.max_configs) {
      stats->truncated = true;
      return std::nullopt;
    }

    // Snapshot — nodes may reallocate during expansion.
    const Configuration cfg = nodes[id].cfg;
    if (query.reach_predicate && query.reach_predicate(cfg)) return build(id);
    const std::vector<ActionInfo> infos = sem::all_action_infos(cfg);
    std::vector<Pid> enabled;
    for (const ActionInfo& info : infos) {
      if (info.enabled) enabled.push_back(info.pid);
    }
    if (enabled.empty()) {
      const bool deadlock = cfg.num_live() > 0;
      if (matches(query, cfg, deadlock)) return build(id);
      continue;
    }
    std::vector<Pid> expansion = enabled;
    bool reduced = false;
    if (query.explore.reduction == Reduction::Stubborn && enabled.size() > 1) {
      const StubbornChoice choice = [&] {
        telemetry::ScopedPhase phase_stub(telemetry::Phase::Stubborn);
        return stubborn_set(cfg, infos, static_info);
      }();
      reduced = !choice.is_full;
      expansion = choice.expand;
    }
    auto fire = [&](Pid pid) -> bool {
      const ActionInfo info = sem::action_info(cfg, pid);
      WitnessStep step;
      step.pid = pid;
      step.stmt = info.stmt_id;
      step.kind = info.kind;
      step.point = prog.describe_point(info.proc, info.pc);
      Configuration succ = sem::apply_action(cfg, info);
      return push(std::move(succ), id, std::move(step)).has_value();
    };
    // BFS has no stack, so the stack proviso cannot apply; the core's
    // insertion proviso (shared with the parallel engine) keeps the
    // reduced search complete on cyclic spaces.
    (void)fire_with_insertion_proviso(enabled, expansion, reduced, /*cycle_proviso=*/true,
                                      fire);
  }
  stats->configs = nodes.size();
  return std::nullopt;
}

std::optional<Witness> find_deadlock(const sem::LoweredProgram& prog) {
  WitnessQuery q;
  q.want_deadlock = true;
  return find_witness(prog, q);
}

}  // namespace copar::explore
