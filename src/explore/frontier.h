// Frontier policies of the exploration core.
//
// Every engine in this repository is a loop over (frontier, visited set,
// proviso): pop a work item, expand it, admit successors. The engines used
// to own four private frontier implementations; this header is the single
// one they all consume now:
//
//   * FifoFrontier<T>       — plain FIFO. Breadth-first orders (witness
//     search wants shortest schedules).
//   * UniqueFifo<T>         — FIFO with fingerprint-keyed membership dedup:
//     a push whose key is already queued is dropped. The absem fixpoint
//     worklist shape (re-enqueue on widening growth without duplicating
//     queued control states).
//   * WorkStealingFrontier<T> — the parallel engine's frontier. Per-worker
//     Chase–Lev-style deques: the owner pushes and pops at the back (LIFO,
//     depth-first-ish locality), thieves take a batch of half the victim's
//     items from the front (the oldest, widest subtrees). Each deque has
//     its own mutex — the owner's fast path contends only with an active
//     thief on the same deque, never with the rest of the pool (the old
//     engine funneled every push and pop through one global mutex).
//
// Work-stealing termination protocol (active count + empty rounds): a
// worker is *active* from the moment it claims an item until done() — an
// active worker may still push, so an empty pool does not mean finished.
// A worker that completes an empty round (local pop failed, every victim
// empty) goes idle on a condition variable; exploration terminates when
// the pool is empty and no worker is active. Pushes wake idle workers only
// when someone is actually idle, so the hot path stays condvar-free.
//
// Counters (per worker, merged by the engine into the StatRegistry):
// steals / stolen_items measure how much the pool rebalanced,
// steal_misses counts empty rounds (workers starving), and contention
// counts mutex acquisitions that had to wait. See docs/PARALLEL.md for how
// to read them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/support/fingerprint.h"
#include "src/support/telemetry.h"

namespace copar::explore {

/// Plain FIFO frontier (breadth-first exploration order).
template <typename T>
class FifoFrontier {
 public:
  void push(T item) { items_.push_back(std::move(item)); }

  std::optional<T> pop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

 private:
  std::deque<T> items_;
};

/// FIFO frontier with fingerprint-keyed queued-membership: pushing an item
/// whose key is already waiting is a no-op. Holds the 16-byte key next to
/// the item instead of a second copy of the item (the reason the absem
/// worklist adopted fingerprints in the first place).
template <typename T>
class UniqueFifo {
 public:
  /// True when the item was enqueued (its key was not already waiting).
  bool push(T item, const support::Fingerprint& fp) {
    if (!queued_.insert(fp).inserted) return false;
    items_.emplace_back(std::move(item), fp);
    return true;
  }

  std::optional<T> pop() {
    if (items_.empty()) return std::nullopt;
    auto [item, fp] = std::move(items_.front());
    items_.pop_front();
    queued_.erase(fp);
    return std::move(item);
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

 private:
  std::deque<std::pair<T, support::Fingerprint>> items_;
  support::FingerprintTable queued_;
};

/// Per-worker frontier statistics (merged into the engine's StatRegistry).
struct FrontierCounters {
  std::uint64_t steals = 0;        // successful steal operations
  std::uint64_t stolen_items = 0;  // items moved by those steals
  std::uint64_t steal_misses = 0;  // empty rounds (local + every victim dry)
  std::uint64_t contention = 0;    // deque mutex acquisitions that blocked
};

template <typename T>
class WorkStealingFrontier {
 public:
  explicit WorkStealingFrontier(unsigned workers)
      : deques_(workers), counters_(workers) {
    for (auto& d : deques_) d = std::make_unique<Deque>();
  }

  /// Enqueues onto `worker`'s own deque (back / LIFO end).
  void push(unsigned worker, T&& item) {
    Deque& d = *deques_[worker];
    {
      std::unique_lock lock(d.mu, std::try_to_lock);
      if (!lock.owns_lock()) {
        counters_[worker].contention += 1;
        lock.lock();
      }
      d.items.push_back(std::move(item));
    }
    size_.fetch_add(1);
    // size_/idle_/active_ stay seq_cst: the pusher's "anyone idle?" check
    // races against an idler's "any work?" predicate (Dekker pattern), and
    // weaker orders could let both read stale zeros — a lost wakeup.
    if (idle_.load() > 0) {
      // Empty critical section: pairs the notify with the waiter's
      // predicate check so a wakeup between check and sleep is not lost.
      { const std::scoped_lock lock(idle_mu_); }
      idle_cv_.notify_one();
    }
  }

  /// Claims an item: local LIFO pop, then a steal round over the victims,
  /// then idle wait. Returns nullopt exactly when the exploration has
  /// terminated (pool empty, no active worker) or abort() was called.
  /// A successful pop marks the caller active; pair it with done().
  std::optional<T> pop(unsigned worker) {
    for (;;) {
      if (aborted_.load()) return std::nullopt;
      // Active before claiming: once this worker might hold the last item,
      // no other worker may observe "empty pool, nobody active".
      active_.fetch_add(1);
      if (auto item = pop_local(worker)) return item;
      if (auto item = steal(worker)) return item;
      active_.fetch_sub(1);
      counters_[worker].steal_misses += 1;

      std::unique_lock lock(idle_mu_);
      idle_.fetch_add(1);
      idle_cv_.wait(lock, [&] {
        return size_.load() > 0 ||
               active_.load() == 0 ||
               aborted_.load();
      });
      idle_.fetch_sub(1);
      if (aborted_.load() ||
          (size_.load() == 0 &&
           active_.load() == 0)) {
        lock.unlock();
        idle_cv_.notify_all();  // cascade termination to the other sleepers
        return std::nullopt;
      }
    }
  }

  /// Marks the expansion of the last popped item finished.
  void done(unsigned /*worker*/) {
    active_.fetch_sub(1);
    if (size_.load() == 0 &&
        active_.load() == 0) {
      { const std::scoped_lock lock(idle_mu_); }
      idle_cv_.notify_all();
    }
  }

  /// Wakes every worker and makes all subsequent pops return nullopt
  /// (error propagation path).
  void abort() {
    aborted_.store(true);
    { const std::scoped_lock lock(idle_mu_); }
    idle_cv_.notify_all();
  }

  [[nodiscard]] const FrontierCounters& counters(unsigned worker) const {
    return counters_[worker];
  }

  /// Queued items across all deques (approximate while workers run; the
  /// progress heartbeat and the sampler read it as the frontier gauge).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(size_.load(std::memory_order_relaxed));
  }

 private:
  struct Deque {
    std::mutex mu;
    std::deque<T> items;
  };

  std::optional<T> pop_local(unsigned worker) {
    Deque& d = *deques_[worker];
    std::unique_lock lock(d.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      counters_[worker].contention += 1;
      lock.lock();
    }
    if (d.items.empty()) return std::nullopt;
    T item = std::move(d.items.back());
    d.items.pop_back();
    size_.fetch_sub(1);
    return item;
  }

  /// One round over the victims (rotating order starting after the thief).
  /// Takes half of the first non-empty victim's items from the front; the
  /// oldest item is returned, the rest land on the thief's own deque. At
  /// most one deque mutex is held at a time (no lock-order cycles between
  /// two workers stealing from each other).
  std::optional<T> steal(unsigned worker) {
    const unsigned n = static_cast<unsigned>(deques_.size());
    for (unsigned k = 1; k < n; ++k) {
      Deque& victim = *deques_[(worker + k) % n];
      std::vector<T> batch;
      {
        std::unique_lock lock(victim.mu, std::try_to_lock);
        if (!lock.owns_lock()) {
          counters_[worker].contention += 1;
          lock.lock();
        }
        if (victim.items.empty()) continue;
        const std::size_t take = (victim.items.size() + 1) / 2;
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(victim.items.front()));
          victim.items.pop_front();
        }
      }
      counters_[worker].steals += 1;
      counters_[worker].stolen_items += batch.size();
      {
        auto& tel = telemetry::Telemetry::global();
        if (tel.live_enabled()) tel.add_live(telemetry::Gauge::Steals, 1);
        if (tel.trace_enabled()) tel.record_instant("steal");
      }
      T item = std::move(batch.front());
      size_.fetch_sub(1);
      if (batch.size() > 1) {
        Deque& own = *deques_[worker];
        const std::scoped_lock lock(own.mu);
        for (std::size_t i = 1; i < batch.size(); ++i) {
          own.items.push_back(std::move(batch[i]));
        }
      }
      return item;
    }
    return std::nullopt;
  }

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<FrontierCounters> counters_;
  std::atomic<std::uint64_t> size_{0};
  std::atomic<std::uint32_t> active_{0};
  std::atomic<std::uint32_t> idle_{0};
  std::atomic<bool> aborted_{false};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
};

}  // namespace copar::explore
