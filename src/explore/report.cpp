#include "src/explore/report.h"

#include "src/sem/config.h"
#include "src/support/telemetry.h"

namespace copar::telemetry {

void write_phases_ms(support::JsonWriter& w) {
  const Telemetry& t = Telemetry::global();
  w.begin_object();
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const Phase p = static_cast<Phase>(i);
    if (t.phase_count(p) == 0 && t.phase_ns(p) == 0) continue;
    w.key(phase_name(p));
    w.value(static_cast<double>(t.phase_ns(p)) / 1e6);
  }
  w.end_object();
}

void write_phase_counts(support::JsonWriter& w) {
  const Telemetry& t = Telemetry::global();
  w.begin_object();
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const Phase p = static_cast<Phase>(i);
    if (t.phase_count(p) == 0) continue;
    w.key(phase_name(p));
    w.value(t.phase_count(p));
  }
  w.end_object();
}

}  // namespace copar::telemetry

namespace copar::explore {

void write_json_report(support::JsonWriter& w, std::string_view command, std::string_view file,
                       const ExploreResult& r, const ExploreOptions& o,
                       const sem::LoweredProgram* prog) {
  w.begin_object();
  w.key("tool");
  w.value("copar");
  w.key("command");
  w.value(command);
  w.key("file");
  w.value(file);

  w.key("options");
  w.begin_object();
  w.key("reduction");
  w.value(o.reduction == Reduction::Stubborn ? "stubborn" : "full");
  w.key("coarsen");
  w.value(o.coarsen);
  w.key("sleep_sets");
  w.value(o.sleep_sets);
  w.key("cycle_proviso");
  w.value(o.cycle_proviso);
  w.key("max_configs");
  w.value(o.max_configs);
  w.key("threads");
  w.value(static_cast<std::uint64_t>(o.threads));
  w.key("exact_keys");
  w.value(o.exact_keys);
  w.end_object();

  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : r.stats.all()) {
    w.key(name);
    w.value(value);
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : r.stats.gauges()) {
    w.key(name);
    w.value(value);
  }
  w.end_object();

  w.key("phases_ms");
  telemetry::write_phases_ms(w);
  w.key("phase_counts");
  telemetry::write_phase_counts(w);

  // Engine-recorded timings (per-worker phase attribution from the
  // parallel engine; the global phase timers above cannot see inside
  // worker threads).
  if (!r.stats.times_ns().empty()) {
    w.key("timings_ms");
    w.begin_object();
    for (const auto& [name, ns] : r.stats.times_ns()) {
      w.key(name);
      w.value(static_cast<double>(ns) / 1e6);
    }
    w.end_object();
  }

  w.key("memory");
  w.begin_object();
  w.key("peak_rss_bytes");
  w.value(telemetry::peak_rss_bytes());
  if (r.stats.gauge("visited_bytes") != 0) {
    w.key("visited_bytes");
    w.value(r.stats.gauge("visited_bytes"));
  }
  w.end_object();

  // Sampler timeline (present only when `--sample` collected anything):
  // the bounded gauge time series, same shape as metrics-dump's
  // "timeline" member.
  if (!telemetry::Telemetry::global().timeline().empty()) {
    w.key("timeline");
    telemetry::Telemetry::global().write_timeline_json(w);
  }

  w.key("result");
  w.begin_object();
  w.key("configs");
  w.value(r.num_configs);
  w.key("transitions");
  w.value(r.num_transitions);
  w.key("terminals");
  w.value(static_cast<std::uint64_t>(r.terminals.size()));
  w.key("deadlock");
  w.value(r.deadlock_found);
  w.key("truncated");
  w.value(r.truncated);
  w.key("violations");
  w.begin_array();
  for (std::uint32_t v : r.violations) w.value(static_cast<std::uint64_t>(v));
  w.end_array();
  w.key("faults");
  w.begin_array();
  for (const auto& [stmt, kind] : r.faults) {
    w.begin_object();
    w.key("stmt");
    w.value(static_cast<std::uint64_t>(stmt));
    w.key("kind");
    w.value(sem::fault_name(static_cast<sem::Fault>(kind)));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  if (prog != nullptr) {
    w.key("outcomes");
    w.begin_array();
    for (const auto& [key, t] : r.terminals) {
      w.begin_object();
      w.key("deadlock");
      w.value(t.deadlock);
      w.key("globals");
      w.begin_object();
      for (const sem::GlobalSlot& g : prog->globals()) {
        if (g.fun != nullptr) continue;
        const auto v = t.config.store.read(0, g.slot);
        w.key(prog->module().interner().spelling(g.name));
        if (v.is_int()) {
          w.value(static_cast<std::int64_t>(v.as_int()));
        } else {
          w.value(v.to_string());
        }
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
  }

  w.end_object();
}

}  // namespace copar::explore
