// Static access summaries backing stubborn sets and virtual coarsening.
//
// Both reductions need may-information about what a process can touch *in
// the future*, not just in its next action:
//
//   - stubborn sets (§2): a process q outside the stubborn set must be
//     incapable of ever performing an action dependent on the one being
//     fired — so the conflict test intersects the fired action's locations
//     with q's statically-reachable future accesses;
//   - virtual coarsening (Definition 4 / Observation 5): a reference is
//     *critical* if the location may be written by another concurrent
//     thread (or read, for a write) — a statically computed property.
//
// Locations are abstracted into *classes*: one per global slot, one per
// (function, frame slot), one per heap allocation site, and a distinguished
// class for static-link cells (written only at frame birth, hence inert).
// A dereference may touch any heap class or any address-taken variable
// class. Call targets are resolved exactly for literal/function-named
// callees whose global binding is never reassigned; otherwise every
// function is assumed callable.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/sem/lower.h"
#include "src/sem/store.h"
#include "src/support/bitset.h"

namespace copar::explore {

class StaticInfo {
 public:
  explicit StaticInfo(const sem::LoweredProgram& program);

  [[nodiscard]] const sem::LoweredProgram& program() const noexcept { return *program_; }
  [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }

  /// Class of a concrete store location in a configuration's store.
  [[nodiscard]] std::uint32_t class_of(const sem::Store& store, std::size_t loc) const;

  /// Classes proc `p`'s code may read/write, including everything reachable
  /// from it through calls and forks.
  [[nodiscard]] const DynamicBitset& future_reads(std::uint32_t proc) const {
    return future_reads_.at(proc);
  }
  [[nodiscard]] const DynamicBitset& future_writes(std::uint32_t proc) const {
    return future_writes_.at(proc);
  }

  /// Program-point-sensitive refinement: classes reachable from (proc, pc)
  /// onward (instructions still ahead of the point, plus everything their
  /// calls and forks reach). A process that already passed its critical
  /// section stops conflicting — this is what makes stubborn sets shrink
  /// lock-stepped workloads like the dining philosophers.
  [[nodiscard]] const DynamicBitset& future_reads_at(std::uint32_t proc, std::uint32_t pc) const {
    return point_future_reads_.at(proc).at(pc);
  }
  [[nodiscard]] const DynamicBitset& future_writes_at(std::uint32_t proc,
                                                      std::uint32_t pc) const {
    return point_future_writes_.at(proc).at(pc);
  }

  /// Critical classes per Definition 4: some thread context writes the
  /// class while a concurrent context accesses it.
  [[nodiscard]] bool is_critical(std::uint32_t cls) const { return critical_.test(cls); }
  [[nodiscard]] const DynamicBitset& critical_classes() const noexcept { return critical_; }

  /// Direct (own-code, non-transitive) access sets of a proc.
  [[nodiscard]] const DynamicBitset& direct_reads(std::uint32_t proc) const {
    return direct_reads_.at(proc);
  }
  [[nodiscard]] const DynamicBitset& direct_writes(std::uint32_t proc) const {
    return direct_writes_.at(proc);
  }

  /// Per-instruction direct class sets (what dataflow clients consume).
  [[nodiscard]] const DynamicBitset& instr_reads(std::uint32_t proc, std::uint32_t pc) const {
    return instr_reads_.at(proc).at(pc);
  }
  [[nodiscard]] const DynamicBitset& instr_writes(std::uint32_t proc, std::uint32_t pc) const {
    return instr_writes_.at(proc).at(pc);
  }
  /// Callee/fork targets of the instruction (call edges + fork children).
  [[nodiscard]] const std::vector<std::uint32_t>& instr_targets(std::uint32_t proc,
                                                                std::uint32_t pc) const {
    return instr_targets_.at(proc).at(pc);
  }
  /// Classes reachable through pointers (heap + address-taken variables).
  [[nodiscard]] const DynamicBitset& pointer_targets() const noexcept {
    return pointer_targets_;
  }

  /// Procs reachable from `p` via calls and forks (including `p`).
  [[nodiscard]] const std::vector<std::uint32_t>& reachable_procs(std::uint32_t proc) const {
    return reach_.at(proc);
  }

  /// Human-readable description of a class (tests/debugging).
  [[nodiscard]] std::string describe_class(std::uint32_t cls) const;

 private:
  void build_classes();
  void collect_address_taken();
  void build_direct_sets();
  void build_reachability();
  void build_point_futures();
  void build_criticality();

  const sem::LoweredProgram* program_;
  std::size_t num_classes_ = 0;

  // class tables
  std::vector<std::uint32_t> global_class_;                     // slot -> class
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> frame_class_;
  std::map<std::uint32_t, std::uint32_t> heap_class_;           // alloc stmt -> class
  DynamicBitset pointer_targets_;  // heap + address-taken classes

  std::vector<DynamicBitset> direct_reads_, direct_writes_;
  std::vector<DynamicBitset> future_reads_, future_writes_;
  /// Per-instruction direct class sets (same walk as direct_*, unaggregated).
  std::vector<std::vector<DynamicBitset>> instr_reads_, instr_writes_;
  /// Callee/fork contributions per instruction (whole-proc transitive sets).
  std::vector<std::vector<std::vector<std::uint32_t>>> instr_targets_;
  std::vector<std::vector<DynamicBitset>> point_future_reads_, point_future_writes_;
  std::vector<std::vector<std::uint32_t>> reach_;
  std::vector<std::vector<std::uint32_t>> call_fork_edges_;
  DynamicBitset critical_;
};

}  // namespace copar::explore
