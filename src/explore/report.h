// Machine-readable exploration report (the `copar-cli --json` document).
//
// One JSON object per invocation: the options that produced the run, every
// StatRegistry counter and gauge, per-phase milliseconds from the global
// telemetry, memory estimates, and the result summary (terminals,
// deadlocks, violations, faults). Benchmarks and scripts parse this
// instead of scraping free-form stdout.
#pragma once

#include <string_view>

#include "src/explore/explorer.h"
#include "src/support/json.h"

namespace copar::explore {

/// Writes the full report object for an exploration. When `prog` is
/// non-null, a per-terminal "outcomes" array with the final global values
/// is included (the `run` command's outcome list, machine-readable).
void write_json_report(support::JsonWriter& w, std::string_view command, std::string_view file,
                       const ExploreResult& r, const ExploreOptions& o,
                       const sem::LoweredProgram* prog = nullptr);

}  // namespace copar::explore

namespace copar::telemetry {

/// Writes `{"parse": 0.12, ...}` — accumulated self-milliseconds of every
/// phase that ran, from the global telemetry instance. Callers emit the
/// surrounding key.
void write_phases_ms(support::JsonWriter& w);

/// Writes `{"<name>": <count>, ...}` — completed scopes per phase that ran.
void write_phase_counts(support::JsonWriter& w);

}  // namespace copar::telemetry
