// Work-stealing parallel exploration (see docs/PARALLEL.md).
//
// The sequential explorer is a DFS whose cycle proviso depends on the
// search stack, which does not parallelize. This engine explores the same
// configuration space with worker threads over the exploration core's
// shared pieces (core.h / frontier.h / proviso.h / visited.h):
//
//   * seen set — ShardedVisitedSet: the canonical fingerprints, mutex-
//     striped across 64 shards, plus the per-state stored-sleep masks in
//     sleep-sets mode;
//   * frontier — WorkStealingFrontier: per-worker deques, local LIFO
//     push/pop, steal-half from a victim when dry, active-count + idle
//     condvar termination;
//   * ignoring problem — the stack proviso is replaced by the insertion
//     proviso (fire_with_insertion_proviso in proviso.h): a *reduced*
//     expansion stands only if every fired successor was newly inserted.
//
// Sleep sets parallelize through the visited set: each state's stored
// sleep mask (a pid bitmask) lives next to its fingerprint, stored with
// the insertion under the same shard lock. A revisit narrows the stored
// mask atomically; transitions that slept on the first visit but are
// awake on arrival are re-fired from a redo work item. Masks only ever
// shrink, so the extra work is bounded by one bit-clear per state per
// process.
//
// Recording payloads (accesses, pairs, lifetimes) accumulate in per-worker
// Recorders and merge after the join — set unions and sums, independent of
// which worker recorded what. A recorded state graph gets its node ids
// post-join by sorting node fingerprints (initial state = 0), so the graph
// is scheduling-independent under Full reduction. The one remaining
// unsupported combination is sleep_sets + record_graph + threads > 1: the
// *reduced* graph recorded under sleep sets depends on exploration order.
//
// Each worker registers its own telemetry track (ThreadRegistration):
// Expansion / Stubborn / Canonicalize scopes land in per-thread phase
// timers and per-thread trace rings, so a `--trace` run shows one
// Perfetto row per worker. After the join the engine copies each track's
// self-times into the result's StatRegistry timings
// (workerN.{expansion,stubborn,canonicalize}) plus the aggregate
// workers.{min,max,sum} keys over per-worker busy time (the sum of the
// three self-times). Workers also feed the lock-free live gauges that the
// `--progress` heartbeat and the `--sample` timeline read — readers never
// touch engine internals. Terminals, violations, faults, and counters
// are merged deterministically (set unions and sums), so the terminal-key
// set — the correctness contract shared with the sequential engine — is
// independent of scheduling. Transition counts can differ run to run (two
// workers may fire into the same configuration before either insertion
// lands), but states and terminals cannot.
//
// Entered through explore() when ExploreOptions::threads > 1.
#pragma once

#include <optional>

#include "src/explore/explorer.h"
#include "src/support/diagnostics.h"

namespace copar::explore {

/// The structured "this option set needs the sequential engine" check.
/// Returns a Diagnostic (code "par-unsupported") when `options` requests
/// threads > 1 together with a feature the parallel engine cannot provide;
/// nullopt when the combination is supported. The CLI renders the
/// diagnostic; parallel_explore throws it as an Error.
[[nodiscard]] std::optional<Diagnostic> parallel_unsupported(const ExploreOptions& options);

/// Requires options.threads > 1 and parallel_unsupported(options) empty.
[[nodiscard]] ExploreResult parallel_explore(const sem::LoweredProgram& program,
                                             const ExploreOptions& options);

}  // namespace copar::explore
