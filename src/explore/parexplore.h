// Parallel frontier exploration (Reduction-compatible BFS).
//
// The sequential explorer is a DFS whose cycle proviso depends on the
// search stack, which does not parallelize. This engine explores the same
// configuration space breadth-first with worker threads:
//
//   * seen set — the canonical fingerprints, mutex-striped across 64
//     shards (shard = high fingerprint bits, in-shard probing by the low
//     bits), so insertions from different workers rarely contend;
//   * frontier — one global queue of configurations with an active-worker
//     count; a worker pops a configuration, expands it locally (stubborn
//     set, virtual coarsening), and pushes newly seen successors;
//   * ignoring problem — the stack proviso is replaced by an insertion
//     proviso: a *reduced* expansion stands only if every fired successor
//     was newly inserted; if any successor was already seen, the source is
//     re-expanded fully. Order the cycle's states by expansion start; the
//     last one fires an edge to an already-inserted state, so every cycle
//     in the reduced graph contains a fully expanded state. Concurrent
//     insertions by other workers only add full expansions — conservative,
//     never unsound.
//
// Workers never touch the global telemetry instance (it is single-threaded
// by contract); per-worker time is measured with local now_ns() deltas and
// merged into the result's StatRegistry timings. Terminals, violations,
// faults, and counters are merged deterministically (set unions and sums),
// so the terminal-key set — the correctness contract shared with the
// sequential engine — is independent of scheduling. Transition counts can
// differ run to run (two workers may fire into the same configuration
// before either insertion lands), but states and terminals cannot.
//
// Entered through explore() when ExploreOptions::threads > 1. The recording
// payloads (graph, accesses, pairs, lifetimes) and sleep sets are
// DFS-order-dependent and remain sequential-only.
#pragma once

#include "src/explore/explorer.h"

namespace copar::explore {

/// Requires options.threads > 1 and every record_* / sleep_sets option off.
[[nodiscard]] ExploreResult parallel_explore(const sem::LoweredProgram& program,
                                             const ExploreOptions& options);

}  // namespace copar::explore
