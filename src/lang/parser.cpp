#include "src/lang/parser.h"

#include <sstream>

#include "src/lang/lexer.h"
#include "src/lang/resolver.h"

namespace copar::lang {

Parser::Parser(std::vector<Token> tokens, Module& module, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), module_(module), diags_(diags) {
  require(!tokens_.empty() && tokens_.back().is(Tok::Eof), "token stream must end with Eof");
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  prev_end_ = t.end;
  return t;
}

bool Parser::match(Tok t) {
  if (peek().is(t)) {
    advance();
    return true;
  }
  return false;
}

const Token& Parser::expect(Tok t, std::string_view context) {
  if (peek().is(t)) return advance();
  std::ostringstream os;
  os << "expected " << tok_name(t) << " " << context << ", found " << tok_name(peek().kind);
  diags_.error(peek().loc, os.str());
  return peek();  // do not consume; caller recovers
}

void Parser::sync_to_semi() {
  while (!peek().is(Tok::Eof) && !peek().is(Tok::Semi) && !peek().is(Tok::RBrace)) advance();
  match(Tok::Semi);
}

void Parser::parse_module() {
  while (!peek().is(Tok::Eof)) {
    if (peek().is(Tok::KwVar)) {
      parse_global();
    } else if (peek().is(Tok::KwFun)) {
      parse_fundecl();
    } else {
      diags_.error(peek().loc, "expected 'var' or 'fun' at top level");
      sync_to_semi();
    }
  }
}

void Parser::parse_global() {
  const SourceLoc loc = peek().loc;
  expect(Tok::KwVar, "in global declaration");
  const Token& name = expect(Tok::Ident, "after 'var'");
  ExprPtr init;
  if (match(Tok::Assign)) init = parse_expr();
  expect(Tok::Semi, "after global declaration");
  module_.add_global(GlobalDecl{name.ident, std::move(init), loc});
}

void Parser::parse_fundecl() {
  const SourceLoc loc = peek().loc;
  expect(Tok::KwFun, "in function declaration");
  const Token& name = expect(Tok::Ident, "after 'fun'");
  expect(Tok::LParen, "after function name");
  std::vector<Symbol> params;
  if (!peek().is(Tok::RParen)) {
    do {
      params.push_back(expect(Tok::Ident, "in parameter list").ident);
    } while (match(Tok::Comma));
  }
  expect(Tok::RParen, "after parameters");
  ++fun_depth_;
  auto body = parse_block();
  --fun_depth_;
  module_.add_function(std::make_unique<FunDecl>(
      name.ident, std::move(params), std::move(body), loc,
      static_cast<std::uint32_t>(module_.functions().size())));
}

std::unique_ptr<Block> Parser::parse_block() {
  const SourceLoc loc = peek().loc;
  const std::uint32_t id = module_.next_id();
  expect(Tok::LBrace, "to open block");
  std::vector<StmtPtr> stmts;
  while (!peek().is(Tok::RBrace) && !peek().is(Tok::Eof)) parse_stmt(stmts);
  expect(Tok::RBrace, "to close block");
  return finish(std::make_unique<Block>(std::move(stmts), loc, id));
}

void Parser::parse_stmt(std::vector<StmtPtr>& out) {
  Symbol label;
  if (peek().is(Tok::Ident) && peek(1).is(Tok::Colon)) {
    label = advance().ident;
    advance();  // ':'
  }
  parse_unlabeled(out, label);
}

void Parser::parse_unlabeled(std::vector<StmtPtr>& out, Symbol label) {
  const SourceLoc loc = peek().loc;
  const std::size_t before = out.size();
  switch (peek().kind) {
    case Tok::LBrace:
      out.push_back(parse_block());
      break;
    case Tok::KwVar: {
      advance();
      const Token& name = expect(Tok::Ident, "after 'var'");
      const std::uint32_t id = module_.next_id();
      if (match(Tok::Assign)) {
        // `var x = rhs;` desugars to `var x; x = rhs;` so that alloc/call
        // initializers reuse the statement-level forms.
        auto decl = std::make_unique<VarDeclStmt>(name.ident, nullptr, loc, id);
        decl->set_end(name.end);
        out.push_back(std::move(decl));
        auto ref = std::make_unique<VarRef>(name.ident, loc, module_.next_id());
        ref->set_end(name.end);
        parse_rhs_into(std::move(ref), loc, Symbol(), out);
      } else {
        expect(Tok::Semi, "after variable declaration");
        out.push_back(finish(std::make_unique<VarDeclStmt>(name.ident, nullptr, loc, id)));
      }
      break;
    }
    case Tok::KwIf: {
      advance();
      expect(Tok::LParen, "after 'if'");
      auto cond = parse_expr();
      expect(Tok::RParen, "after condition");
      StmtPtr then_stmt = parse_stmt_single();
      StmtPtr else_stmt;
      if (match(Tok::KwElse)) else_stmt = parse_stmt_single();
      out.push_back(finish(std::make_unique<IfStmt>(std::move(cond), std::move(then_stmt),
                                                    std::move(else_stmt), loc,
                                                    module_.next_id())));
      break;
    }
    case Tok::KwWhile: {
      advance();
      expect(Tok::LParen, "after 'while'");
      auto cond = parse_expr();
      expect(Tok::RParen, "after condition");
      StmtPtr body = parse_stmt_single();
      out.push_back(finish(std::make_unique<WhileStmt>(std::move(cond), std::move(body), loc,
                                                       module_.next_id())));
      break;
    }
    case Tok::KwCobegin: {
      advance();
      std::vector<StmtPtr> branches;
      branches.push_back(parse_branch());
      while (match(Tok::BarBar)) branches.push_back(parse_branch());
      expect(Tok::KwCoend, "to close cobegin");
      match(Tok::Semi);  // optional, paper figures omit it
      out.push_back(finish(std::make_unique<CobeginStmt>(std::move(branches), loc,
                                                         module_.next_id())));
      break;
    }
    case Tok::KwDoall: {
      // doall (i = lo .. hi) body
      advance();
      expect(Tok::LParen, "after 'doall'");
      const Token& var = expect(Tok::Ident, "as doall index");
      expect(Tok::Assign, "after doall index");
      auto lo = parse_expr();
      expect(Tok::DotDot, "in doall range");
      auto hi = parse_expr();
      expect(Tok::RParen, "after doall range");
      StmtPtr body = parse_stmt_single();
      out.push_back(finish(std::make_unique<DoAllStmt>(var.ident, std::move(lo), std::move(hi),
                                                       std::move(body), loc, module_.next_id())));
      break;
    }
    case Tok::KwReturn: {
      advance();
      ExprPtr value;
      if (!peek().is(Tok::Semi)) value = parse_expr();
      expect(Tok::Semi, "after return");
      out.push_back(finish(std::make_unique<ReturnStmt>(std::move(value), loc, module_.next_id())));
      break;
    }
    case Tok::KwSkip: {
      advance();
      expect(Tok::Semi, "after 'skip'");
      out.push_back(finish(std::make_unique<SkipStmt>(loc, module_.next_id())));
      break;
    }
    case Tok::KwLock: {
      advance();
      expect(Tok::LParen, "after 'lock'");
      auto lv = parse_expr();
      expect(Tok::RParen, "after lock target");
      expect(Tok::Semi, "after 'lock(...)'");
      if (!is_lvalue(*lv)) diags_.error(loc, "lock target must be an lvalue");
      out.push_back(finish(std::make_unique<LockStmt>(std::move(lv), loc, module_.next_id())));
      break;
    }
    case Tok::KwUnlock: {
      advance();
      expect(Tok::LParen, "after 'unlock'");
      auto lv = parse_expr();
      expect(Tok::RParen, "after unlock target");
      expect(Tok::Semi, "after 'unlock(...)'");
      if (!is_lvalue(*lv)) diags_.error(loc, "unlock target must be an lvalue");
      out.push_back(finish(std::make_unique<UnlockStmt>(std::move(lv), loc, module_.next_id())));
      break;
    }
    case Tok::KwAssert: {
      advance();
      expect(Tok::LParen, "after 'assert'");
      auto cond = parse_expr();
      expect(Tok::RParen, "after assertion");
      expect(Tok::Semi, "after 'assert(...)'");
      out.push_back(finish(std::make_unique<AssertStmt>(std::move(cond), loc, module_.next_id())));
      break;
    }
    default:
      parse_assign_or_call(out, label);
      if (out.size() > before && label.valid()) out[before]->set_label(label);
      return;
  }
  if (out.size() > before && label.valid()) out[before]->set_label(label);
}

StmtPtr Parser::parse_branch() {
  if (peek().is(Tok::LBrace)) return parse_block();
  return parse_stmt_single();
}

StmtPtr Parser::parse_stmt_single() {
  // parse_stmt may emit 0 (error recovery), 1, or 2 statements (desugared
  // `var x = rhs;`); normalize to exactly one, wrapping in a block if needed.
  const SourceLoc loc = peek().loc;
  std::vector<StmtPtr> stmts;
  parse_stmt(stmts);
  if (stmts.size() == 1) return std::move(stmts.front());
  if (stmts.empty()) return finish(std::make_unique<SkipStmt>(loc, module_.next_id()));
  return finish(std::make_unique<Block>(std::move(stmts), loc, module_.next_id()));
}

void Parser::parse_assign_or_call(std::vector<StmtPtr>& out, Symbol label) {
  const SourceLoc loc = peek().loc;
  auto lhs = parse_expr();
  if (peek().is(Tok::Assign)) {
    advance();
    if (!is_lvalue(*lhs)) diags_.error(loc, "assignment target must be an lvalue");
    parse_rhs_into(std::move(lhs), loc, label, out);
    return;
  }
  if (peek().is(Tok::LParen)) {
    if (!is_callable(*lhs)) {
      diags_.error(loc, "call target must be a simple expression (wrap it in parentheses)");
    }
    advance();
    auto args = parse_args();
    expect(Tok::RParen, "after call arguments");
    expect(Tok::Semi, "after call statement");
    auto stmt = finish(std::make_unique<CallStmt>(nullptr, std::move(lhs), std::move(args), loc,
                                                  module_.next_id()));
    if (label.valid()) stmt->set_label(label);
    out.push_back(std::move(stmt));
    return;
  }
  diags_.error(peek().loc, "expected '=' or '(' after expression statement");
  sync_to_semi();
}

void Parser::parse_rhs_into(ExprPtr lhs, SourceLoc loc, Symbol label, std::vector<StmtPtr>& out) {
  StmtPtr stmt;
  if (peek().is(Tok::KwAlloc)) {
    advance();
    expect(Tok::LParen, "after 'alloc'");
    auto size = parse_expr();
    expect(Tok::RParen, "after alloc size");
    expect(Tok::Semi, "after allocation");
    stmt = finish(std::make_unique<AllocStmt>(std::move(lhs), std::move(size), loc,
                                              module_.next_id()));
  } else {
    auto rhs = parse_expr();
    if (peek().is(Tok::LParen)) {
      if (!is_callable(*rhs)) {
        diags_.error(loc, "call target must be a simple expression (calls cannot be nested in "
                          "expressions)");
      }
      advance();
      auto args = parse_args();
      expect(Tok::RParen, "after call arguments");
      expect(Tok::Semi, "after call statement");
      stmt = finish(std::make_unique<CallStmt>(std::move(lhs), std::move(rhs), std::move(args),
                                               loc, module_.next_id()));
    } else {
      expect(Tok::Semi, "after assignment");
      stmt = finish(std::make_unique<AssignStmt>(std::move(lhs), std::move(rhs), loc,
                                                 module_.next_id()));
    }
  }
  if (label.valid()) stmt->set_label(label);
  out.push_back(std::move(stmt));
}

std::vector<ExprPtr> Parser::parse_args() {
  std::vector<ExprPtr> args;
  if (peek().is(Tok::RParen)) return args;
  do {
    args.push_back(parse_expr());
  } while (match(Tok::Comma));
  return args;
}

ExprPtr Parser::parse_expr() { return parse_or(); }

ExprPtr Parser::parse_or() {
  auto lhs = parse_and();
  while (peek().is(Tok::KwOr)) {
    const SourceLoc loc = advance().loc;
    auto rhs = parse_and();
    lhs = finish(std::make_unique<Binary>(BinOp::Or, std::move(lhs), std::move(rhs), loc,
                                          module_.next_id()));
  }
  return lhs;
}

ExprPtr Parser::parse_and() {
  auto lhs = parse_cmp();
  while (peek().is(Tok::KwAnd)) {
    const SourceLoc loc = advance().loc;
    auto rhs = parse_cmp();
    lhs = finish(std::make_unique<Binary>(BinOp::And, std::move(lhs), std::move(rhs), loc,
                                          module_.next_id()));
  }
  return lhs;
}

ExprPtr Parser::parse_cmp() {
  auto lhs = parse_add();
  for (;;) {
    BinOp op;
    switch (peek().kind) {
      case Tok::EqEq: op = BinOp::Eq; break;
      case Tok::NotEq: op = BinOp::Ne; break;
      case Tok::Lt: op = BinOp::Lt; break;
      case Tok::Le: op = BinOp::Le; break;
      case Tok::Gt: op = BinOp::Gt; break;
      case Tok::Ge: op = BinOp::Ge; break;
      default: return lhs;
    }
    const SourceLoc loc = advance().loc;
    auto rhs = parse_add();
    lhs = finish(std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc,
                                          module_.next_id()));
  }
}

ExprPtr Parser::parse_add() {
  auto lhs = parse_mul();
  for (;;) {
    BinOp op;
    if (peek().is(Tok::Plus)) {
      op = BinOp::Add;
    } else if (peek().is(Tok::Minus)) {
      op = BinOp::Sub;
    } else {
      return lhs;
    }
    const SourceLoc loc = advance().loc;
    auto rhs = parse_mul();
    lhs = finish(std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc,
                                          module_.next_id()));
  }
}

ExprPtr Parser::parse_mul() {
  auto lhs = parse_unary();
  for (;;) {
    BinOp op;
    if (peek().is(Tok::Star)) {
      op = BinOp::Mul;
    } else if (peek().is(Tok::Slash)) {
      op = BinOp::Div;
    } else if (peek().is(Tok::Percent)) {
      op = BinOp::Mod;
    } else {
      return lhs;
    }
    const SourceLoc loc = advance().loc;
    auto rhs = parse_unary();
    lhs = finish(std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc,
                                          module_.next_id()));
  }
}

ExprPtr Parser::parse_unary() {
  const SourceLoc loc = peek().loc;
  if (match(Tok::Minus)) {
    return finish(std::make_unique<Unary>(UnOp::Neg, parse_unary(), loc, module_.next_id()));
  }
  if (match(Tok::KwNot)) {
    return finish(std::make_unique<Unary>(UnOp::Not, parse_unary(), loc, module_.next_id()));
  }
  if (match(Tok::Star)) {
    return finish(std::make_unique<Deref>(parse_unary(), loc, module_.next_id()));
  }
  if (match(Tok::Amp)) {
    auto lv = parse_unary();
    if (!is_lvalue(*lv)) diags_.error(loc, "'&' requires an lvalue operand");
    return finish(std::make_unique<AddrOf>(std::move(lv), loc, module_.next_id()));
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  auto e = parse_primary();
  while (peek().is(Tok::LBracket)) {
    const SourceLoc loc = advance().loc;
    auto idx = parse_expr();
    expect(Tok::RBracket, "after index");
    e = finish(std::make_unique<Index>(std::move(e), std::move(idx), loc, module_.next_id()));
  }
  return e;
}

ExprPtr Parser::parse_primary() {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::Int:
      advance();
      return finish(std::make_unique<IntLit>(t.int_value, t.loc, module_.next_id()));
    case Tok::KwTrue:
      advance();
      return finish(std::make_unique<BoolLit>(true, t.loc, module_.next_id()));
    case Tok::KwFalse:
      advance();
      return finish(std::make_unique<BoolLit>(false, t.loc, module_.next_id()));
    case Tok::KwNull:
      advance();
      return finish(std::make_unique<NullLit>(t.loc, module_.next_id()));
    case Tok::Ident:
      advance();
      return finish(std::make_unique<VarRef>(t.ident, t.loc, module_.next_id()));
    case Tok::LParen: {
      advance();
      auto e = parse_expr();
      expect(Tok::RParen, "to close parenthesized expression");
      return e;
    }
    case Tok::KwFun: {
      // Anonymous function literal: fun (params) { ... }
      advance();
      expect(Tok::LParen, "after 'fun' in function literal");
      std::vector<Symbol> params;
      if (!peek().is(Tok::RParen)) {
        do {
          params.push_back(expect(Tok::Ident, "in parameter list").ident);
        } while (match(Tok::Comma));
      }
      expect(Tok::RParen, "after parameters");
      ++fun_depth_;
      auto body = parse_block();
      --fun_depth_;
      FunDecl* decl = module_.add_function(std::make_unique<FunDecl>(
          Symbol(), std::move(params), std::move(body), t.loc,
          static_cast<std::uint32_t>(module_.functions().size())));
      return finish(std::make_unique<FunLit>(decl, t.loc, module_.next_id()));
    }
    case Tok::KwAlloc:
      diags_.error(t.loc, "'alloc' may only appear as the whole right-hand side of an assignment");
      advance();
      return finish(std::make_unique<IntLit>(0, t.loc, module_.next_id()));
    default:
      diags_.error(t.loc, std::string("expected expression, found ") + std::string(tok_name(t.kind)));
      advance();
      return finish(std::make_unique<IntLit>(0, t.loc, module_.next_id()));
  }
}

bool Parser::is_lvalue(const Expr& e) {
  return e.kind() == ExprKind::VarRef || e.kind() == ExprKind::Deref ||
         e.kind() == ExprKind::Index;
}

bool Parser::is_callable(const Expr& e) {
  // Primary-shaped targets only; the paper's examples call named functions
  // or function-valued variables.
  return e.kind() == ExprKind::VarRef || e.kind() == ExprKind::Deref ||
         e.kind() == ExprKind::Index || e.kind() == ExprKind::FunLit;
}

std::unique_ptr<Module> parse_program(std::string_view source, DiagnosticEngine& diags) {
  auto module = std::make_unique<Module>();
  Lexer lexer(source, module->interner(), diags);
  Parser parser(lexer.lex_all(), *module, diags);
  parser.parse_module();
  if (!diags.has_errors()) resolve(*module, diags);
  return module;
}

std::unique_ptr<Module> parse_program(std::string_view source) {
  DiagnosticEngine diags;
  auto module = parse_program(source, diags);
  if (diags.has_errors()) throw Error("parse failed:\n" + diags.to_string());
  return module;
}

}  // namespace copar::lang
