#include "src/lang/resolver.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace copar::lang {

namespace {

class Resolver {
 public:
  Resolver(Module& module, DiagnosticEngine& diags) : module_(module), diags_(diags) {}

  void run() {
    // Globals and named functions form the outermost scope; a function may
    // be referenced before its textual declaration (mutual recursion).
    push_scope();
    for (const GlobalDecl& g : module_.globals()) declare(g.name, g.loc);
    for (const auto& f : module_.functions()) {
      if (f->name().valid()) declare(f->name(), f->loc());
    }
    for (const GlobalDecl& g : module_.globals()) {
      if (g.init) check_expr(*g.init);
    }
    // Named functions are resolved here; anonymous literals are resolved
    // where they occur (their bodies see the enclosing lexical scope).
    for (const auto& f : module_.functions()) {
      if (f->name().valid()) check_function(*f);
    }
    pop_scope();
  }

 private:
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare(Symbol name, SourceLoc loc) {
    auto& scope = scopes_.back();
    if (!scope.insert(name).second) {
      diags_.error(loc, "duplicate declaration of '" +
                            std::string(module_.interner().spelling(name)) + "'");
    }
  }

  [[nodiscard]] bool is_visible(Symbol name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->contains(name)) return true;
    }
    return false;
  }

  void check_function(const FunDecl& f) {
    push_scope();
    for (Symbol p : f.params()) declare(p, f.loc());
    const int saved_cobegin = cobegin_depth_;
    cobegin_depth_ = 0;
    check_block(f.body());
    cobegin_depth_ = saved_cobegin;
    pop_scope();
  }

  void check_block(const Block& b) {
    push_scope();
    for (const StmtPtr& s : b.stmts()) check_stmt(*s);
    pop_scope();
  }

  void check_stmt(const Stmt& s) {
    module_.register_stmt(&s);
    if (s.label().valid()) {
      if (module_.labels().contains(s.label())) {
        diags_.error(s.loc(), "duplicate statement label '" +
                                  std::string(module_.interner().spelling(s.label())) + "'");
      } else {
        module_.register_label(s.label(), &s);
      }
    }
    switch (s.kind()) {
      case StmtKind::Block:
        check_block(stmt_cast<Block>(s));
        break;
      case StmtKind::VarDecl: {
        const auto& d = stmt_cast<VarDeclStmt>(s);
        if (d.init()) check_expr(*d.init());
        declare(d.name(), s.loc());
        break;
      }
      case StmtKind::Assign: {
        const auto& a = stmt_cast<AssignStmt>(s);
        check_expr(a.lhs());
        check_expr(a.rhs());
        break;
      }
      case StmtKind::Alloc: {
        const auto& a = stmt_cast<AllocStmt>(s);
        check_expr(a.lhs());
        check_expr(a.size());
        break;
      }
      case StmtKind::Call: {
        const auto& c = stmt_cast<CallStmt>(s);
        if (c.dst()) check_expr(*c.dst());
        check_expr(c.callee());
        for (const ExprPtr& a : c.args()) check_expr(*a);
        break;
      }
      case StmtKind::If: {
        const auto& i = stmt_cast<IfStmt>(s);
        check_expr(i.cond());
        check_stmt_scoped(i.then_branch());
        if (i.else_branch()) check_stmt_scoped(*i.else_branch());
        break;
      }
      case StmtKind::While: {
        const auto& w = stmt_cast<WhileStmt>(s);
        check_expr(w.cond());
        check_stmt_scoped(w.body());
        break;
      }
      case StmtKind::Cobegin: {
        const auto& c = stmt_cast<CobeginStmt>(s);
        ++cobegin_depth_;
        for (const StmtPtr& b : c.branches()) check_stmt_scoped(*b);
        --cobegin_depth_;
        break;
      }
      case StmtKind::DoAll: {
        const auto& d = stmt_cast<DoAllStmt>(s);
        check_expr(d.lo());
        check_expr(d.hi());
        ++cobegin_depth_;  // the body runs in forked threads: no `return`
        push_scope();
        declare(d.var(), s.loc());
        check_stmt(d.body());
        pop_scope();
        --cobegin_depth_;
        break;
      }
      case StmtKind::Return: {
        const auto& r = stmt_cast<ReturnStmt>(s);
        if (cobegin_depth_ > 0) {
          diags_.error(s.loc(), "'return' may not appear inside a cobegin branch");
        }
        if (r.value()) check_expr(*r.value());
        break;
      }
      case StmtKind::Lock:
        check_expr(stmt_cast<LockStmt>(s).lvalue());
        break;
      case StmtKind::Unlock:
        check_expr(stmt_cast<UnlockStmt>(s).lvalue());
        break;
      case StmtKind::Skip:
        break;
      case StmtKind::Assert:
        check_expr(stmt_cast<AssertStmt>(s).cond());
        break;
    }
  }

  /// A non-block statement used as a branch body still opens a scope so a
  /// bare `var` declaration in it does not leak.
  void check_stmt_scoped(const Stmt& s) {
    if (s.kind() == StmtKind::Block) {
      check_block(stmt_cast<Block>(s));
    } else {
      push_scope();
      check_stmt(s);
      pop_scope();
    }
  }

  void check_expr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
      case ExprKind::NullLit:
        break;
      case ExprKind::VarRef: {
        const auto& v = expr_cast<VarRef>(e);
        if (!is_visible(v.name())) {
          diags_.error(e.loc(), "use of undeclared identifier '" +
                                    std::string(module_.interner().spelling(v.name())) + "'");
        }
        break;
      }
      case ExprKind::Unary:
        check_expr(expr_cast<Unary>(e).operand());
        break;
      case ExprKind::Binary: {
        const auto& b = expr_cast<Binary>(e);
        check_expr(b.lhs());
        check_expr(b.rhs());
        break;
      }
      case ExprKind::AddrOf:
        check_expr(expr_cast<AddrOf>(e).lvalue());
        break;
      case ExprKind::Deref:
        check_expr(expr_cast<Deref>(e).pointer());
        break;
      case ExprKind::Index: {
        const auto& i = expr_cast<Index>(e);
        check_expr(i.base());
        check_expr(i.index());
        break;
      }
      case ExprKind::FunLit: {
        // Lambda body sees the current lexical scope (closure capture).
        const auto& f = expr_cast<FunLit>(e).decl();
        push_scope();
        for (Symbol p : f.params()) declare(p, f.loc());
        const int saved = cobegin_depth_;
        cobegin_depth_ = 0;
        check_block(f.body());
        cobegin_depth_ = saved;
        pop_scope();
        break;
      }
    }
  }

  Module& module_;
  DiagnosticEngine& diags_;
  std::vector<std::unordered_set<Symbol>> scopes_;
  int cobegin_depth_ = 0;
};

}  // namespace

void resolve(Module& module, DiagnosticEngine& diags) {
  Resolver(module, diags).run();
}

}  // namespace copar::lang
