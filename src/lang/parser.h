// Recursive-descent parser for the copar language.
//
// Grammar (informal):
//
//   module   := (global | fundecl)*
//   global   := 'var' ID ('=' expr)? ';'
//   fundecl  := 'fun' ID '(' params? ')' block
//   block    := '{' stmt* '}'
//   stmt     := (ID ':')? unlabeled
//   unlabeled:= block
//             | 'var' ID ('=' rhs)? ';'
//             | 'if' '(' expr ')' stmt ('else' stmt)?
//             | 'while' '(' expr ')' stmt
//             | 'cobegin' branch ('||' branch)* 'coend' ';'?
//             | 'return' expr? ';'
//             | 'skip' ';' | 'lock' '(' expr ')' ';' | 'unlock' '(' expr ')' ';'
//             | 'assert' '(' expr ')' ';'
//             | expr '=' rhs ';'           (assignment / alloc / call)
//             | expr '(' args? ')' ';'     (bare call)
//   branch   := block | unlabeled
//   rhs      := 'alloc' '(' expr ')' | expr ('(' args? ')')?
//   expr     := or-expr  (with 'and'/'or', comparisons, +,-,*,/,%, unary
//               '-','not','*','&', indexing e[i], 'fun' literals)
//
// Restrictions enforced here (see ast.h): `alloc` only as a whole RHS, calls
// only at statement level with a syntactically primary callee.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/token.h"
#include "src/support/diagnostics.h"

namespace copar::lang {

class Parser {
 public:
  Parser(std::vector<Token> tokens, Module& module, DiagnosticEngine& diags);

  /// Parses a whole module; on syntax errors, reports and recovers at ';'.
  void parse_module();

 private:
  const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  bool match(Tok t);
  const Token& expect(Tok t, std::string_view context);
  void sync_to_semi();

  void parse_global();
  void parse_fundecl();
  std::unique_ptr<Block> parse_block();
  void parse_stmt(std::vector<StmtPtr>& out);
  void parse_unlabeled(std::vector<StmtPtr>& out, Symbol label);
  StmtPtr parse_branch();
  StmtPtr parse_stmt_single();
  void parse_assign_or_call(std::vector<StmtPtr>& out, Symbol label);
  void parse_rhs_into(ExprPtr lhs, SourceLoc loc, Symbol label, std::vector<StmtPtr>& out);

  ExprPtr parse_expr();
  ExprPtr parse_or();
  ExprPtr parse_and();
  ExprPtr parse_cmp();
  ExprPtr parse_add();
  ExprPtr parse_mul();
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
  std::vector<ExprPtr> parse_args();

  /// True if `e` is a valid assignment target (VarRef/Deref/Index).
  static bool is_lvalue(const Expr& e);
  /// True if `e` may syntactically be a call target.
  static bool is_callable(const Expr& e);

  /// Stamps `node`'s extent as ending at the last consumed token. Called
  /// once a production has consumed everything belonging to the node.
  template <typename T>
  std::unique_ptr<T> finish(std::unique_ptr<T> node) {
    node->set_end(prev_end_);
    return node;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Module& module_;
  DiagnosticEngine& diags_;
  int fun_depth_ = 0;
  /// End position of the most recently consumed token.
  SourceLoc prev_end_;
};

/// Convenience: lex + parse + resolve `source` into a fresh Module.
/// Throws copar::Error with all diagnostics if anything fails.
std::unique_ptr<Module> parse_program(std::string_view source);

/// Non-throwing variant; diagnostics go to `diags`, returns the module
/// (possibly partial) regardless.
std::unique_ptr<Module> parse_program(std::string_view source, DiagnosticEngine& diags);

}  // namespace copar::lang
