#include "src/lang/printer.h"

#include <sstream>

namespace copar::lang {

namespace {

class PrinterImpl {
 public:
  explicit PrinterImpl(const Module& m) : module_(m) {}

  std::string module_text() {
    for (const GlobalDecl& g : module_.globals()) {
      os_ << "var " << name(g.name);
      if (g.init) {
        os_ << " = ";
        expr(*g.init);
      }
      os_ << ";\n";
    }
    for (const auto& f : module_.functions()) {
      if (!f->name().valid()) continue;  // lambdas print at their use site
      os_ << "fun " << name(f->name()) << "(";
      params(*f);
      os_ << ") ";
      block(f->body(), 0);
      os_ << "\n";
    }
    return os_.str();
  }

  std::string stmt_text(const Stmt& s, int indent) {
    stmt(s, indent);
    return os_.str();
  }

  std::string expr_text(const Expr& e) {
    expr(e);
    return os_.str();
  }

 private:
  [[nodiscard]] std::string_view name(Symbol s) const { return module_.interner().spelling(s); }

  void params(const FunDecl& f) {
    for (std::size_t i = 0; i < f.params().size(); ++i) {
      if (i > 0) os_ << ", ";
      os_ << name(f.params()[i]);
    }
  }

  void pad(int indent) {
    for (int i = 0; i < indent; ++i) os_ << "  ";
  }

  void block(const Block& b, int indent) {
    os_ << "{\n";
    for (const StmtPtr& s : b.stmts()) stmt(*s, indent + 1);
    pad(indent);
    os_ << "}";
  }

  void stmt(const Stmt& s, int indent) {
    pad(indent);
    if (s.label().valid()) os_ << name(s.label()) << ": ";
    switch (s.kind()) {
      case StmtKind::Block:
        block(stmt_cast<Block>(s), indent);
        os_ << "\n";
        break;
      case StmtKind::VarDecl: {
        const auto& d = stmt_cast<VarDeclStmt>(s);
        os_ << "var " << name(d.name());
        if (d.init()) {
          os_ << " = ";
          expr(*d.init());
        }
        os_ << ";\n";
        break;
      }
      case StmtKind::Assign: {
        const auto& a = stmt_cast<AssignStmt>(s);
        expr(a.lhs());
        os_ << " = ";
        expr(a.rhs());
        os_ << ";\n";
        break;
      }
      case StmtKind::Alloc: {
        const auto& a = stmt_cast<AllocStmt>(s);
        expr(a.lhs());
        os_ << " = alloc(";
        expr(a.size());
        os_ << ");\n";
        break;
      }
      case StmtKind::Call: {
        const auto& c = stmt_cast<CallStmt>(s);
        if (c.dst()) {
          expr(*c.dst());
          os_ << " = ";
        }
        expr(c.callee());
        os_ << "(";
        for (std::size_t i = 0; i < c.args().size(); ++i) {
          if (i > 0) os_ << ", ";
          expr(*c.args()[i]);
        }
        os_ << ");\n";
        break;
      }
      case StmtKind::If: {
        const auto& i = stmt_cast<IfStmt>(s);
        os_ << "if (";
        expr(i.cond());
        os_ << ") ";
        stmt_inline(i.then_branch(), indent);
        if (i.else_branch()) {
          pad(indent);
          os_ << "else ";
          stmt_inline(*i.else_branch(), indent);
        }
        break;
      }
      case StmtKind::While: {
        const auto& w = stmt_cast<WhileStmt>(s);
        os_ << "while (";
        expr(w.cond());
        os_ << ") ";
        stmt_inline(w.body(), indent);
        break;
      }
      case StmtKind::Cobegin: {
        const auto& c = stmt_cast<CobeginStmt>(s);
        os_ << "cobegin\n";
        for (std::size_t i = 0; i < c.branches().size(); ++i) {
          if (i > 0) {
            pad(indent);
            os_ << "||\n";
          }
          stmt(*c.branches()[i], indent + 1);
        }
        pad(indent);
        os_ << "coend;\n";
        break;
      }
      case StmtKind::DoAll: {
        const auto& d = stmt_cast<DoAllStmt>(s);
        os_ << "doall (" << name(d.var()) << " = ";
        expr(d.lo());
        os_ << " .. ";
        expr(d.hi());
        os_ << ") ";
        stmt_inline(d.body(), indent);
        break;
      }
      case StmtKind::Return: {
        const auto& r = stmt_cast<ReturnStmt>(s);
        os_ << "return";
        if (r.value()) {
          os_ << " ";
          expr(*r.value());
        }
        os_ << ";\n";
        break;
      }
      case StmtKind::Lock:
        os_ << "lock(";
        expr(stmt_cast<LockStmt>(s).lvalue());
        os_ << ");\n";
        break;
      case StmtKind::Unlock:
        os_ << "unlock(";
        expr(stmt_cast<UnlockStmt>(s).lvalue());
        os_ << ");\n";
        break;
      case StmtKind::Skip:
        os_ << "skip;\n";
        break;
      case StmtKind::Assert:
        os_ << "assert(";
        expr(stmt_cast<AssertStmt>(s).cond());
        os_ << ");\n";
        break;
    }
  }

  /// Prints a statement that follows `if (...)` / `while (...)` on the same
  /// line when it is a block.
  void stmt_inline(const Stmt& s, int indent) {
    if (s.kind() == StmtKind::Block) {
      block(stmt_cast<Block>(s), indent);
      os_ << "\n";
    } else {
      os_ << "\n";
      stmt(s, indent + 1);
    }
  }

  /// Fully parenthesized expression printing: correct by construction, and
  /// re-parsing yields the identical tree shape.
  void expr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLit:
        os_ << expr_cast<IntLit>(e).value();
        break;
      case ExprKind::BoolLit:
        os_ << (expr_cast<BoolLit>(e).value() ? "true" : "false");
        break;
      case ExprKind::NullLit:
        os_ << "null";
        break;
      case ExprKind::VarRef:
        os_ << name(expr_cast<VarRef>(e).name());
        break;
      case ExprKind::Unary: {
        const auto& u = expr_cast<Unary>(e);
        os_ << (u.op() == UnOp::Neg ? "(-" : "(not ");
        expr(u.operand());
        os_ << ")";
        break;
      }
      case ExprKind::Binary: {
        const auto& b = expr_cast<Binary>(e);
        os_ << "(";
        expr(b.lhs());
        os_ << " " << binop_name(b.op()) << " ";
        expr(b.rhs());
        os_ << ")";
        break;
      }
      case ExprKind::AddrOf:
        os_ << "(&";
        expr(expr_cast<AddrOf>(e).lvalue());
        os_ << ")";
        break;
      case ExprKind::Deref:
        os_ << "(*";
        expr(expr_cast<Deref>(e).pointer());
        os_ << ")";
        break;
      case ExprKind::Index: {
        const auto& i = expr_cast<Index>(e);
        expr(i.base());
        os_ << "[";
        expr(i.index());
        os_ << "]";
        break;
      }
      case ExprKind::FunLit: {
        const auto& f = expr_cast<FunLit>(e).decl();
        os_ << "fun (";
        params(f);
        os_ << ") ";
        // Lambdas print inline; indentation restarts at 0 inside.
        block(f.body(), 0);
        break;
      }
    }
  }

  const Module& module_;
  std::ostringstream os_;
};

}  // namespace

std::string print(const Module& module) { return PrinterImpl(module).module_text(); }

std::string print_stmt(const Module& module, const Stmt& stmt, int indent) {
  return PrinterImpl(module).stmt_text(stmt, indent);
}

std::string print_expr(const Module& module, const Expr& expr) {
  return PrinterImpl(module).expr_text(expr);
}

}  // namespace copar::lang
