#include "src/lang/ast.h"

namespace copar::lang {

std::string_view binop_name(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "and";
    case BinOp::Or: return "or";
  }
  return "<?>";
}

const Stmt* Module::find_labeled(std::string_view label) const {
  for (const auto& [sym, stmt] : labels_) {
    if (interner_->spelling(sym) == label) return stmt;
  }
  return nullptr;
}

const FunDecl* Module::find_function(std::string_view name) const {
  for (const auto& f : functions_) {
    if (f->name().valid() && interner_->spelling(f->name()) == name) return f.get();
  }
  return nullptr;
}

}  // namespace copar::lang
