// Static name resolution and well-formedness checks.
//
// Checks performed:
//   - every VarRef names a visible local, parameter, global, or function;
//   - no duplicate declaration in the same scope;
//   - `return` does not appear (directly) inside a cobegin branch — a thread
//     exits by running off the end of its branch, never by returning from
//     the enclosing function;
//   - statement labels are unique module-wide (registered in the Module).
//
// Name resolution in the semantics itself is dynamic (Scheme-style
// environment chains), so the resolver records no per-reference data; it
// only rejects programs the interpreter could not execute.
#pragma once

#include "src/lang/ast.h"
#include "src/support/diagnostics.h"

namespace copar::lang {

/// Resolves `module` in place; problems are reported to `diags`.
void resolve(Module& module, DiagnosticEngine& diags);

}  // namespace copar::lang
