// Pretty-printer: renders a Module (or single statements/expressions) back
// to parseable source text. print(parse(print(m))) == print(m) is a tested
// invariant (note: `var x = e;` prints in its desugared two-statement form).
#pragma once

#include <string>

#include "src/lang/ast.h"

namespace copar::lang {

std::string print(const Module& module);
std::string print_stmt(const Module& module, const Stmt& stmt, int indent = 0);
std::string print_expr(const Module& module, const Expr& expr);

}  // namespace copar::lang
