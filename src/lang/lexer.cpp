#include "src/lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace copar::lang {

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kw = {
      {"var", Tok::KwVar},       {"fun", Tok::KwFun},       {"if", Tok::KwIf},
      {"else", Tok::KwElse},     {"while", Tok::KwWhile},   {"cobegin", Tok::KwCobegin},
      {"coend", Tok::KwCoend},   {"doall", Tok::KwDoall},   {"return", Tok::KwReturn}, {"skip", Tok::KwSkip},
      {"lock", Tok::KwLock},     {"unlock", Tok::KwUnlock}, {"assert", Tok::KwAssert},
      {"alloc", Tok::KwAlloc},   {"null", Tok::KwNull},     {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},   {"and", Tok::KwAnd},       {"or", Tok::KwOr},
      {"not", Tok::KwNot},
  };
  return kw;
}

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_cont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

Lexer::Lexer(std::string_view source, Interner& interner, DiagnosticEngine& diags)
    : source_(source), interner_(interner), diags_(diags) {}

char Lexer::peek(std::size_t ahead) const noexcept {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() noexcept {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::skip_trivia() {
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      const SourceLoc start = here();
      advance();
      advance();
      bool closed = false;
      while (!at_end()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) diags_.error(start, "unterminated block comment");
    } else {
      break;
    }
  }
}

Token Lexer::next() {
  Token t = scan();
  // scan() consumes nothing after producing its token (error paths recurse
  // before returning), so the current position is one past the token's last
  // character.
  t.end = here();
  if (!t.end.valid() || t.end < t.loc) t.end = t.loc;
  return t;
}

Token Lexer::scan() {
  skip_trivia();
  Token t;
  t.loc = here();
  if (at_end()) {
    t.kind = Tok::Eof;
    return t;
  }
  const char c = advance();
  switch (c) {
    case '(': t.kind = Tok::LParen; return t;
    case ')': t.kind = Tok::RParen; return t;
    case '{': t.kind = Tok::LBrace; return t;
    case '}': t.kind = Tok::RBrace; return t;
    case '[': t.kind = Tok::LBracket; return t;
    case ']': t.kind = Tok::RBracket; return t;
    case ';': t.kind = Tok::Semi; return t;
    case ',': t.kind = Tok::Comma; return t;
    case ':': t.kind = Tok::Colon; return t;
    case '.':
      if (peek() == '.') { advance(); t.kind = Tok::DotDot; return t; }
      diags_.error(t.loc, "unexpected '.' (ranges are written 'lo .. hi')");
      return next();
    case '+': t.kind = Tok::Plus; return t;
    case '-': t.kind = Tok::Minus; return t;
    case '*': t.kind = Tok::Star; return t;
    case '/': t.kind = Tok::Slash; return t;
    case '%': t.kind = Tok::Percent; return t;
    case '=':
      if (peek() == '=') { advance(); t.kind = Tok::EqEq; } else { t.kind = Tok::Assign; }
      return t;
    case '!':
      if (peek() == '=') { advance(); t.kind = Tok::NotEq; return t; }
      diags_.error(t.loc, "unexpected '!' (use 'not' / '!=')");
      return next();
    case '<':
      if (peek() == '=') { advance(); t.kind = Tok::Le; } else { t.kind = Tok::Lt; }
      return t;
    case '>':
      if (peek() == '=') { advance(); t.kind = Tok::Ge; } else { t.kind = Tok::Gt; }
      return t;
    case '&':
      if (peek() == '&') {
        advance();
        diags_.error(t.loc, "unexpected '&&' (use 'and')");
        return next();
      }
      t.kind = Tok::Amp;
      return t;
    case '|':
      if (peek() == '|') { advance(); t.kind = Tok::BarBar; return t; }
      diags_.error(t.loc, "unexpected '|' (use 'or', or '||' to separate cobegin branches)");
      return next();
    default:
      break;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::int64_t value = c - '0';
    bool overflow = false;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      const int digit = advance() - '0';
      if (value > (INT64_MAX - digit) / 10) overflow = true;
      if (!overflow) value = value * 10 + digit;
    }
    if (overflow) diags_.error(t.loc, "integer literal overflows 64 bits");
    t.kind = Tok::Int;
    t.int_value = value;
    return t;
  }
  if (is_ident_start(c)) {
    const std::size_t start = pos_ - 1;
    while (!at_end() && is_ident_cont(peek())) advance();
    const std::string_view text = source_.substr(start, pos_ - start);
    if (auto it = keywords().find(text); it != keywords().end()) {
      t.kind = it->second;
    } else {
      t.kind = Tok::Ident;
      t.ident = interner_.intern(text);
    }
    return t;
  }
  diags_.error(t.loc, std::string("unexpected character '") + c + "'");
  return next();
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  for (;;) {
    out.push_back(next());
    if (out.back().is(Tok::Eof)) break;
  }
  return out;
}

}  // namespace copar::lang
