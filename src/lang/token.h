// Token definitions for the copar language.
//
// The analyzed language is the paper's: C/Scheme-style with first-class
// functions, dynamic allocation, pointers, and (nested) cobegin parallelism.
// Logical operators are spelled `and`/`or`/`not` so that `||` is free to act
// as the cobegin branch separator, matching the paper's figures.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/support/diagnostics.h"
#include "src/support/interner.h"

namespace copar::lang {

enum class Tok : std::uint8_t {
  // literals / identifiers
  Ident,
  Int,
  // keywords
  KwVar,
  KwFun,
  KwIf,
  KwElse,
  KwWhile,
  KwCobegin,
  KwCoend,
  KwDoall,
  KwReturn,
  KwSkip,
  KwLock,
  KwUnlock,
  KwAssert,
  KwAlloc,
  KwNull,
  KwTrue,
  KwFalse,
  KwAnd,
  KwOr,
  KwNot,
  // punctuation
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  DotDot,
  Assign,    // =
  EqEq,      // ==
  NotEq,     // !=
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,      // multiplication and dereference
  Slash,
  Percent,
  Amp,       // address-of
  BarBar,    // cobegin branch separator
  Eof,
};

/// Spelling of a token kind for diagnostics ("'while'", "';'", ...).
std::string_view tok_name(Tok t);

struct Token {
  Tok kind = Tok::Eof;
  SourceLoc loc;
  SourceLoc end;         // one past the last character of the token
  Symbol ident;          // for Tok::Ident
  std::int64_t int_value = 0;  // for Tok::Int

  [[nodiscard]] bool is(Tok t) const noexcept { return kind == t; }
  [[nodiscard]] SourceSpan span() const noexcept { return SourceSpan{loc, end}; }
};

}  // namespace copar::lang
