#include "src/lang/token.h"

namespace copar::lang {

std::string_view tok_name(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::Int: return "integer literal";
    case Tok::KwVar: return "'var'";
    case Tok::KwFun: return "'fun'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwCobegin: return "'cobegin'";
    case Tok::KwCoend: return "'coend'";
    case Tok::KwDoall: return "'doall'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwSkip: return "'skip'";
    case Tok::KwLock: return "'lock'";
    case Tok::KwUnlock: return "'unlock'";
    case Tok::KwAssert: return "'assert'";
    case Tok::KwAlloc: return "'alloc'";
    case Tok::KwNull: return "'null'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::KwAnd: return "'and'";
    case Tok::KwOr: return "'or'";
    case Tok::KwNot: return "'not'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::Colon: return "':'";
    case Tok::DotDot: return "'..'";
    case Tok::Assign: return "'='";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::BarBar: return "'||'";
    case Tok::Eof: return "end of input";
  }
  return "<?>";
}

}  // namespace copar::lang
