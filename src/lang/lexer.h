// Hand-written lexer for the copar language.
#pragma once

#include <string_view>
#include <vector>

#include "src/lang/token.h"
#include "src/support/diagnostics.h"
#include "src/support/interner.h"

namespace copar::lang {

/// Tokenizes a whole source buffer. Unknown characters produce diagnostics
/// and are skipped, so parsing can continue to surface later errors.
class Lexer {
 public:
  Lexer(std::string_view source, Interner& interner, DiagnosticEngine& diags);

  /// Lexes the entire input, ending with a Tok::Eof token.
  std::vector<Token> lex_all();

 private:
  /// Scans one token and stamps its end position.
  Token next();
  /// Scans one token (end position filled in by next()).
  Token scan();
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept;
  char advance() noexcept;
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= source_.size(); }
  [[nodiscard]] SourceLoc here() const noexcept { return SourceLoc{line_, column_}; }
  void skip_trivia();

  std::string_view source_;
  Interner& interner_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace copar::lang
