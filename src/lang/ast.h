// Abstract syntax for the copar language.
//
// The language mirrors the one in the paper (and its companion [CH92]):
// first-class functions (named and anonymous, with lexical capture), dynamic
// allocation (`alloc`), pointers (`&x`, `*p`, `p[i]`), and nested
// `cobegin ... || ... coend` parallelism. Two deliberate restrictions keep
// every statement a single atomic action with a computable read/write set,
// matching the paper's model of "statements with read and write sets":
//
//   1. `alloc(e)` may appear only as the entire right-hand side of an
//      assignment (`x = alloc(n);`).
//   2. calls may appear only as statements (`f(a);` or `x = f(a);`), never
//      nested inside expressions.
//
// Statements may carry labels (`s1: x = 1;`); the paper's figures reference
// statements by such labels and our tests/benches do the same.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/support/diagnostics.h"
#include "src/support/interner.h"

namespace copar::lang {

class FunDecl;

// ---------------------------------------------------------------------------
// Expressions (pure: no calls, no allocation)
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLit,
  BoolLit,
  NullLit,
  VarRef,
  Unary,
  Binary,
  AddrOf,
  Deref,
  Index,
  FunLit,
};

enum class UnOp : std::uint8_t { Neg, Not };

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
};

/// Spelling of a binary operator ("+", "==", "and", ...).
std::string_view binop_name(BinOp op);

class Expr {
 public:
  Expr(ExprKind kind, SourceLoc loc, std::uint32_t id) : kind_(kind), loc_(loc), id_(id) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  [[nodiscard]] ExprKind kind() const noexcept { return kind_; }
  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }
  /// Full source range; end is set by the parser once the node is complete.
  [[nodiscard]] SourceSpan span() const noexcept {
    return SourceSpan{loc_, end_.valid() ? end_ : loc_};
  }
  void set_end(SourceLoc end) noexcept { end_ = end; }
  /// Module-unique id; analyses key results off expression/statement ids.
  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

 private:
  ExprKind kind_;
  SourceLoc loc_;
  SourceLoc end_;
  std::uint32_t id_;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLit final : public Expr {
 public:
  IntLit(std::int64_t value, SourceLoc loc, std::uint32_t id)
      : Expr(ExprKind::IntLit, loc, id), value_(value) {}
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_;
};

class BoolLit final : public Expr {
 public:
  BoolLit(bool value, SourceLoc loc, std::uint32_t id)
      : Expr(ExprKind::BoolLit, loc, id), value_(value) {}
  [[nodiscard]] bool value() const noexcept { return value_; }

 private:
  bool value_;
};

class NullLit final : public Expr {
 public:
  NullLit(SourceLoc loc, std::uint32_t id) : Expr(ExprKind::NullLit, loc, id) {}
};

class VarRef final : public Expr {
 public:
  VarRef(Symbol name, SourceLoc loc, std::uint32_t id)
      : Expr(ExprKind::VarRef, loc, id), name_(name) {}
  [[nodiscard]] Symbol name() const noexcept { return name_; }

 private:
  Symbol name_;
};

class Unary final : public Expr {
 public:
  Unary(UnOp op, ExprPtr operand, SourceLoc loc, std::uint32_t id)
      : Expr(ExprKind::Unary, loc, id), op_(op), operand_(std::move(operand)) {}
  [[nodiscard]] UnOp op() const noexcept { return op_; }
  [[nodiscard]] const Expr& operand() const noexcept { return *operand_; }

 private:
  UnOp op_;
  ExprPtr operand_;
};

class Binary final : public Expr {
 public:
  Binary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc, std::uint32_t id)
      : Expr(ExprKind::Binary, loc, id), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] BinOp op() const noexcept { return op_; }
  [[nodiscard]] const Expr& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const noexcept { return *rhs_; }

 private:
  BinOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// `&x` or `&p[i]` — the address of an lvalue.
class AddrOf final : public Expr {
 public:
  AddrOf(ExprPtr lvalue, SourceLoc loc, std::uint32_t id)
      : Expr(ExprKind::AddrOf, loc, id), lvalue_(std::move(lvalue)) {}
  [[nodiscard]] const Expr& lvalue() const noexcept { return *lvalue_; }

 private:
  ExprPtr lvalue_;
};

/// `*p`.
class Deref final : public Expr {
 public:
  Deref(ExprPtr pointer, SourceLoc loc, std::uint32_t id)
      : Expr(ExprKind::Deref, loc, id), pointer_(std::move(pointer)) {}
  [[nodiscard]] const Expr& pointer() const noexcept { return *pointer_; }

 private:
  ExprPtr pointer_;
};

/// `p[i]` — equivalent to `*(p + i)` over an allocated object's cells.
class Index final : public Expr {
 public:
  Index(ExprPtr base, ExprPtr index, SourceLoc loc, std::uint32_t id)
      : Expr(ExprKind::Index, loc, id), base_(std::move(base)), index_(std::move(index)) {}
  [[nodiscard]] const Expr& base() const noexcept { return *base_; }
  [[nodiscard]] const Expr& index() const noexcept { return *index_; }

 private:
  ExprPtr base_;
  ExprPtr index_;
};

/// An anonymous `fun (params) { ... }` literal; evaluates to a closure over
/// the current environment. `decl()` points into Module::functions().
class FunLit final : public Expr {
 public:
  FunLit(const FunDecl* decl, SourceLoc loc, std::uint32_t id)
      : Expr(ExprKind::FunLit, loc, id), decl_(decl) {}
  [[nodiscard]] const FunDecl& decl() const noexcept { return *decl_; }

 private:
  const FunDecl* decl_;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Block,
  VarDecl,
  Assign,
  Alloc,
  Call,
  If,
  While,
  Cobegin,
  DoAll,
  Return,
  Lock,
  Unlock,
  Skip,
  Assert,
};

class Stmt {
 public:
  Stmt(StmtKind kind, SourceLoc loc, std::uint32_t id) : kind_(kind), loc_(loc), id_(id) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] StmtKind kind() const noexcept { return kind_; }
  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }
  /// Full source range; end is set by the parser once the node is complete.
  [[nodiscard]] SourceSpan span() const noexcept {
    return SourceSpan{loc_, end_.valid() ? end_ : loc_};
  }
  void set_end(SourceLoc end) noexcept { end_ = end; }
  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  /// Optional `name:` label; invalid Symbol when absent.
  [[nodiscard]] Symbol label() const noexcept { return label_; }
  void set_label(Symbol label) noexcept { label_ = label; }

 private:
  StmtKind kind_;
  SourceLoc loc_;
  SourceLoc end_;
  std::uint32_t id_;
  Symbol label_;
};

using StmtPtr = std::unique_ptr<Stmt>;

class Block final : public Stmt {
 public:
  Block(std::vector<StmtPtr> stmts, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::Block, loc, id), stmts_(std::move(stmts)) {}
  [[nodiscard]] const std::vector<StmtPtr>& stmts() const noexcept { return stmts_; }

 private:
  std::vector<StmtPtr> stmts_;
};

class VarDeclStmt final : public Stmt {
 public:
  VarDeclStmt(Symbol name, ExprPtr init, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::VarDecl, loc, id), name_(name), init_(std::move(init)) {}
  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] const Expr* init() const noexcept { return init_.get(); }

 private:
  Symbol name_;
  ExprPtr init_;  // may be null (defaults to 0)
};

class AssignStmt final : public Stmt {
 public:
  AssignStmt(ExprPtr lhs, ExprPtr rhs, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::Assign, loc, id), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] const Expr& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const noexcept { return *rhs_; }

 private:
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// `lhs = alloc(size);` — allocate `size` cells, bind pointer to lhs.
class AllocStmt final : public Stmt {
 public:
  AllocStmt(ExprPtr lhs, ExprPtr size, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::Alloc, loc, id), lhs_(std::move(lhs)), size_(std::move(size)) {}
  [[nodiscard]] const Expr& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] const Expr& size() const noexcept { return *size_; }

 private:
  ExprPtr lhs_;
  ExprPtr size_;
};

/// `dst = callee(args);` or `callee(args);` (dst null).
class CallStmt final : public Stmt {
 public:
  CallStmt(ExprPtr dst, ExprPtr callee, std::vector<ExprPtr> args, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::Call, loc, id),
        dst_(std::move(dst)),
        callee_(std::move(callee)),
        args_(std::move(args)) {}
  [[nodiscard]] const Expr* dst() const noexcept { return dst_.get(); }
  [[nodiscard]] const Expr& callee() const noexcept { return *callee_; }
  [[nodiscard]] const std::vector<ExprPtr>& args() const noexcept { return args_; }

 private:
  ExprPtr dst_;  // may be null
  ExprPtr callee_;
  std::vector<ExprPtr> args_;
};

class IfStmt final : public Stmt {
 public:
  IfStmt(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::If, loc, id),
        cond_(std::move(cond)),
        then_(std::move(then_branch)),
        else_(std::move(else_branch)) {}
  [[nodiscard]] const Expr& cond() const noexcept { return *cond_; }
  [[nodiscard]] const Stmt& then_branch() const noexcept { return *then_; }
  [[nodiscard]] const Stmt* else_branch() const noexcept { return else_.get(); }

 private:
  ExprPtr cond_;
  StmtPtr then_;
  StmtPtr else_;  // may be null
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt(ExprPtr cond, StmtPtr body, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::While, loc, id), cond_(std::move(cond)), body_(std::move(body)) {}
  [[nodiscard]] const Expr& cond() const noexcept { return *cond_; }
  [[nodiscard]] const Stmt& body() const noexcept { return *body_; }

 private:
  ExprPtr cond_;
  StmtPtr body_;
};

/// `cobegin B1 || B2 || ... coend` — fork one process per branch, then wait
/// for all of them (the paper's cobegin; nesting is allowed).
class CobeginStmt final : public Stmt {
 public:
  CobeginStmt(std::vector<StmtPtr> branches, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::Cobegin, loc, id), branches_(std::move(branches)) {}
  [[nodiscard]] const std::vector<StmtPtr>& branches() const noexcept { return branches_; }

 private:
  std::vector<StmtPtr> branches_;
};

/// `doall (i = lo .. hi) body` — fork one process per index in the
/// inclusive range [lo, hi] (evaluated at fork time; an empty range forks
/// nothing), each with its own binding of `i`, then wait for all of them.
/// The data-parallel sibling of cobegin mentioned in the paper's
/// introduction; the number of processes is a run-time value, which is what
/// makes McDowell's clan folding (§6.2) earn its keep.
class DoAllStmt final : public Stmt {
 public:
  DoAllStmt(Symbol var, ExprPtr lo, ExprPtr hi, StmtPtr body, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::DoAll, loc, id),
        var_(var),
        lo_(std::move(lo)),
        hi_(std::move(hi)),
        body_(std::move(body)) {}
  [[nodiscard]] Symbol var() const noexcept { return var_; }
  [[nodiscard]] const Expr& lo() const noexcept { return *lo_; }
  [[nodiscard]] const Expr& hi() const noexcept { return *hi_; }
  [[nodiscard]] const Stmt& body() const noexcept { return *body_; }

 private:
  Symbol var_;
  ExprPtr lo_;
  ExprPtr hi_;
  StmtPtr body_;
};

class ReturnStmt final : public Stmt {
 public:
  ReturnStmt(ExprPtr value, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::Return, loc, id), value_(std::move(value)) {}
  [[nodiscard]] const Expr* value() const noexcept { return value_.get(); }

 private:
  ExprPtr value_;  // may be null
};

/// `lock(lv);` — blocking acquire of the cell named by lvalue `lv`
/// (0 = free; held cells record the owner). Models shared-variable
/// synchronization; the location participates in read/write sets so
/// stubborn-set conflicts see it.
class LockStmt final : public Stmt {
 public:
  LockStmt(ExprPtr lvalue, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::Lock, loc, id), lvalue_(std::move(lvalue)) {}
  [[nodiscard]] const Expr& lvalue() const noexcept { return *lvalue_; }

 private:
  ExprPtr lvalue_;
};

class UnlockStmt final : public Stmt {
 public:
  UnlockStmt(ExprPtr lvalue, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::Unlock, loc, id), lvalue_(std::move(lvalue)) {}
  [[nodiscard]] const Expr& lvalue() const noexcept { return *lvalue_; }

 private:
  ExprPtr lvalue_;
};

class SkipStmt final : public Stmt {
 public:
  SkipStmt(SourceLoc loc, std::uint32_t id) : Stmt(StmtKind::Skip, loc, id) {}
};

class AssertStmt final : public Stmt {
 public:
  AssertStmt(ExprPtr cond, SourceLoc loc, std::uint32_t id)
      : Stmt(StmtKind::Assert, loc, id), cond_(std::move(cond)) {}
  [[nodiscard]] const Expr& cond() const noexcept { return *cond_; }

 private:
  ExprPtr cond_;
};

// ---------------------------------------------------------------------------
// Declarations and modules
// ---------------------------------------------------------------------------

/// A function: named top-level `fun f(a,b) {...}` or an anonymous literal.
/// All functions (including lambdas) are collected in Module::functions().
class FunDecl {
 public:
  FunDecl(Symbol name, std::vector<Symbol> params, std::unique_ptr<Block> body, SourceLoc loc,
          std::uint32_t index)
      : name_(name), params_(std::move(params)), body_(std::move(body)), loc_(loc), index_(index) {}

  /// Invalid Symbol for anonymous functions.
  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Symbol>& params() const noexcept { return params_; }
  [[nodiscard]] const Block& body() const noexcept { return *body_; }
  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }
  /// Index into Module::functions().
  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }

 private:
  Symbol name_;
  std::vector<Symbol> params_;
  std::unique_ptr<Block> body_;
  SourceLoc loc_;
  std::uint32_t index_;
};

struct GlobalDecl {
  Symbol name;
  ExprPtr init;  // may be null (defaults to 0)
  SourceLoc loc;
};

/// A parsed + resolved compilation unit. Owns all AST nodes and the
/// interner used for its identifiers.
class Module {
 public:
  Module() : interner_(std::make_unique<Interner>()) {}

  [[nodiscard]] Interner& interner() noexcept { return *interner_; }
  [[nodiscard]] const Interner& interner() const noexcept { return *interner_; }

  [[nodiscard]] const std::vector<GlobalDecl>& globals() const noexcept { return globals_; }
  [[nodiscard]] const std::vector<std::unique_ptr<FunDecl>>& functions() const noexcept {
    return functions_;
  }

  /// The named function to start interpretation from (usually "main");
  /// nullptr if absent.
  [[nodiscard]] const FunDecl* find_function(std::string_view name) const;

  /// Next fresh node id (used by the parser).
  std::uint32_t next_id() noexcept { return next_id_++; }
  /// One past the largest node id handed out; ids are dense in [0, count).
  [[nodiscard]] std::uint32_t node_count() const noexcept { return next_id_; }

  void add_global(GlobalDecl g) { globals_.push_back(std::move(g)); }
  FunDecl* add_function(std::unique_ptr<FunDecl> f) {
    functions_.push_back(std::move(f));
    return functions_.back().get();
  }

  /// Label table, populated by the resolver. The paper's figures refer to
  /// statements as `s1:`, `s2:`, ...; tests and benches look them up here.
  [[nodiscard]] const Stmt* find_labeled(std::string_view label) const;
  void register_label(Symbol label, const Stmt* stmt) { labels_.emplace(label, stmt); }
  [[nodiscard]] const std::unordered_map<Symbol, const Stmt*>& labels() const noexcept {
    return labels_;
  }

  /// id -> statement index, populated by the resolver. Analyses report
  /// results keyed by statement id; the checkers map those back to source
  /// spans through here.
  void register_stmt(const Stmt* stmt) {
    if (stmt->id() >= stmt_by_id_.size()) stmt_by_id_.resize(stmt->id() + 1, nullptr);
    stmt_by_id_[stmt->id()] = stmt;
  }
  [[nodiscard]] const Stmt* stmt_by_id(std::uint32_t id) const noexcept {
    return id < stmt_by_id_.size() ? stmt_by_id_[id] : nullptr;
  }

 private:
  std::unique_ptr<Interner> interner_;
  std::vector<GlobalDecl> globals_;
  std::vector<std::unique_ptr<FunDecl>> functions_;
  std::unordered_map<Symbol, const Stmt*> labels_;
  std::vector<const Stmt*> stmt_by_id_;
  std::uint32_t next_id_ = 0;
};

/// Checked downcast helpers.
template <typename T>
const T& expr_cast(const Expr& e) {
  return static_cast<const T&>(e);
}
template <typename T>
const T& stmt_cast(const Stmt& s) {
  return static_cast<const T&>(s);
}

}  // namespace copar::lang
