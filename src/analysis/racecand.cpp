#include "src/analysis/racecand.h"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>
#include <tuple>

#include "src/analysis/common.h"
#include "src/lang/ast.h"

namespace copar::analysis {

namespace {

/// Contention on a lock cell between two lock/unlock actions is
/// synchronization, not a data race (same rule as the check battery).
bool is_sync_stmt(const sem::LoweredProgram& prog, std::uint32_t stmt_id) {
  const lang::Stmt* s = prog.stmt(stmt_id);
  return s != nullptr &&
         (s->kind() == lang::StmtKind::Lock || s->kind() == lang::StmtKind::Unlock);
}

struct Agg {
  bool parallel = false;    // some live occurrence pair may run concurrently
  bool unprotected = false; // ... with disjoint must-locksets
  bool ww = false, wr = false;  // kinds over parallel unprotected occurrences
  unsigned lock_bit = 0;    // a protecting lock of the first protected occurrence
  bool have_lock = false;
};

}  // namespace

CandidateReport race_candidates(const sem::LoweredProgram& prog,
                                const explore::StaticInfo& info,
                                const StaticParallelism& par, const LockSets& locks) {
  // Access-bearing instruction occurrences, skipping points the lockset
  // analysis proves unreachable (they cannot execute, hence cannot race).
  struct Occ {
    std::uint32_t proc = 0, pc = 0, stmt = 0;
  };
  std::vector<Occ> occs;
  for (const sem::Proc& p : prog.procs()) {
    for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
      if (p.code[pc].stmt == nullptr) continue;
      if (!locks.live(p.id, pc)) continue;
      if (info.instr_reads(p.id, pc).empty() && info.instr_writes(p.id, pc).empty()) {
        continue;
      }
      occs.push_back(Occ{p.id, pc, p.code[pc].stmt->id()});
    }
  }

  std::map<std::pair<std::uint32_t, std::uint32_t>, Agg> pairs;
  for (std::size_t a = 0; a < occs.size(); ++a) {
    const DynamicBitset& ra = info.instr_reads(occs[a].proc, occs[a].pc);
    const DynamicBitset& wa = info.instr_writes(occs[a].proc, occs[a].pc);
    for (std::size_t b = a; b < occs.size(); ++b) {
      const DynamicBitset& rb = info.instr_reads(occs[b].proc, occs[b].pc);
      const DynamicBitset& wb = info.instr_writes(occs[b].proc, occs[b].pc);
      const bool ww = wa.intersects(wb);
      const bool wr = wa.intersects(rb) || ra.intersects(wb);
      if (!ww && !wr) continue;
      if (is_sync_stmt(prog, occs[a].stmt) && is_sync_stmt(prog, occs[b].stmt)) continue;
      Agg& agg = pairs[{std::min(occs[a].stmt, occs[b].stmt),
                        std::max(occs[a].stmt, occs[b].stmt)}];
      if (!par.parallel_procs(occs[a].proc, occs[b].proc)) continue;
      agg.parallel = true;
      const LockSets::Mask common =
          locks.held(occs[a].proc, occs[a].pc) & locks.held(occs[b].proc, occs[b].pc);
      if (common != 0) {
        if (!agg.have_lock) {
          agg.lock_bit = static_cast<unsigned>(std::countr_zero(common));
          agg.have_lock = true;
        }
      } else {
        agg.unprotected = true;
        agg.ww = agg.ww || ww;
        agg.wr = agg.wr || wr;
      }
    }
  }

  CandidateReport out;
  out.pairs_total = pairs.size();
  for (const auto& [key, agg] : pairs) {
    if (!agg.parallel) {
      ++out.pruned_mhp;
    } else if (!agg.unprotected) {
      ++out.pruned_lockset;
      out.suppressed.push_back(SuppressedPair{key.first, key.second,
                                              locks.lock_name(agg.lock_bit)});
    } else {
      RaceCandidate c;
      c.stmt1 = key.first;
      c.stmt2 = key.second;
      c.write_write = agg.ww;
      c.write_read = agg.wr;
      c.score = (agg.ww ? 2 : 0) + (agg.wr ? 1 : 0);
      out.candidates.push_back(c);
    }
  }
  auto source_key = [&](std::uint32_t s, std::uint32_t t) {
    return std::make_tuple(prog.stmt_span(s), prog.stmt_span(t), s, t);
  };
  std::sort(out.candidates.begin(), out.candidates.end(),
            [&](const RaceCandidate& a, const RaceCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return source_key(a.stmt1, a.stmt2) < source_key(b.stmt1, b.stmt2);
            });
  std::sort(out.suppressed.begin(), out.suppressed.end(),
            [&](const SuppressedPair& a, const SuppressedPair& b) {
              return source_key(a.stmt1, a.stmt2) < source_key(b.stmt1, b.stmt2);
            });
  return out;
}

std::string CandidateReport::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  os << "pairs " << pairs_total << " mhp-pruned " << pruned_mhp << " lockset-pruned "
     << pruned_lockset << " candidates " << candidates.size() << '\n';
  for (const RaceCandidate& c : candidates) {
    os << "candidate: " << describe_stmt(prog, c.stmt1) << " || "
       << describe_stmt(prog, c.stmt2) << " (";
    if (c.write_write) os << "write/write";
    if (c.write_write && c.write_read) os << ", ";
    if (c.write_read) os << "write/read";
    os << ")\n";
  }
  for (const SuppressedPair& s : suppressed) {
    os << "suppressed: " << describe_stmt(prog, s.stmt1) << " || "
       << describe_stmt(prog, s.stmt2) << " (lock " << s.lock << ")\n";
  }
  return os.str();
}

}  // namespace copar::analysis
