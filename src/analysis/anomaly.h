// Access-anomaly (data race) detection: conflicting accesses by concurrent
// threads with no synchronization ordering them.
//
// The paper distinguishes debugging-oriented analyses (anomalies are bugs,
// [MH89]) from optimization-oriented ones (anomalies are behaviors the
// compiler must preserve); this module serves both: it reports every
// conflicting co-enabled pair.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/sem/lower.h"

namespace copar::analysis {

struct Anomaly {
  std::uint32_t stmt1 = 0;
  std::uint32_t stmt2 = 0;
  bool write_write = false;  // else write/read
  friend auto operator<=>(const Anomaly&, const Anomaly&) = default;
};

class Anomalies {
 public:
  std::set<Anomaly> all;

  [[nodiscard]] bool any() const { return !all.empty(); }
  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

/// Exact anomalies of the explored space (requires record_pairs).
Anomalies anomalies_from(const explore::ExploreResult& result);

/// Sound abstract anomaly candidates.
Anomalies anomalies_from(const absem::AbsResult<absdom::FlatInt>& result);

}  // namespace copar::analysis
