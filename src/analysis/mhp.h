// May-happen-in-parallel queries by statement label, over either the
// concrete exploration or the abstract one.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"

namespace copar::analysis {

/// Answer of a by-label MHP query. A typo'd label is reported distinctly
/// instead of masquerading as "not parallel".
enum class MhpAnswer : std::uint8_t { No, Yes, UnknownLabel };

class Mhp {
 public:
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;  // lo <= hi

  [[nodiscard]] bool parallel(std::uint32_t s, std::uint32_t t) const {
    return pairs.contains({std::min(s, t), std::max(s, t)});
  }

  /// By label; UnknownLabel if either label does not name a statement.
  [[nodiscard]] MhpAnswer parallel(const sem::LoweredProgram& prog, std::string_view l1,
                                   std::string_view l2) const;

  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

/// Exact-for-the-explored-space MHP (requires record_pairs).
Mhp mhp_from(const explore::ExploreResult& result);

/// Sound abstract MHP.
Mhp mhp_from(const absem::AbsResult<absdom::FlatInt>& result);

}  // namespace copar::analysis
