#include "src/analysis/mhp.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <vector>

#include "src/analysis/common.h"

namespace copar::analysis {

MhpAnswer Mhp::parallel(const sem::LoweredProgram& prog, std::string_view l1,
                        std::string_view l2) const {
  const auto s = labeled_stmt(prog, l1);
  const auto t = labeled_stmt(prog, l2);
  if (!s.has_value() || !t.has_value()) return MhpAnswer::UnknownLabel;
  return parallel(*s, *t) ? MhpAnswer::Yes : MhpAnswer::No;
}

std::string Mhp::report(const sem::LoweredProgram& prog) const {
  // Stable output order: by source span, then statement ids (see
  // Anomalies::report).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order(pairs.begin(), pairs.end());
  std::sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
    return std::make_tuple(prog.stmt_span(a.first), prog.stmt_span(a.second), a.first,
                           a.second) < std::make_tuple(prog.stmt_span(b.first),
                                                       prog.stmt_span(b.second), b.first,
                                                       b.second);
  });
  std::ostringstream os;
  for (const auto& [s, t] : order) {
    os << describe_stmt(prog, s) << " || " << describe_stmt(prog, t) << '\n';
  }
  return os.str();
}

Mhp mhp_from(const explore::ExploreResult& result) {
  Mhp out;
  for (const auto& [pair, facts] : result.pairs) {
    if (facts.co_enabled) out.pairs.insert(pair);
  }
  return out;
}

Mhp mhp_from(const absem::AbsResult<absdom::FlatInt>& result) {
  Mhp out;
  out.pairs = result.mhp;
  return out;
}

}  // namespace copar::analysis
