// Parallel-safe dead-store elimination candidates.
//
// The paper's opening example is a compiler killing a "dead" store that a
// sibling thread was busy-waiting on. This analysis is the safe version:
// classic backward liveness over each proc's lowered code, with the
// concurrency escape hatches that make it sound for cobegin programs —
//
//   * a store to a class another proc may access is never dead (this is
//     what saves the busy-wait flag: the setter thread never reads `s`,
//     but the spinning sibling does);
//   * classes reachable through pointers (heap, address-taken variables)
//     are never dead (may-alias);
//   * globals are live at every proc exit (observable at termination).
//
// Kills are applied only for exact single-class assignments (must-kill);
// everything else only generates liveness.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "src/explore/staticinfo.h"
#include "src/sem/lower.h"

namespace copar::analysis {

struct DeadStores {
  /// Statement ids of assignments whose stored value can never be observed.
  std::set<std::uint32_t> stores;

  [[nodiscard]] bool is_dead(std::uint32_t stmt_id) const { return stores.contains(stmt_id); }
  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

DeadStores find_dead_stores(const sem::LoweredProgram& prog,
                            const explore::StaticInfo& static_info);

/// Convenience: builds the static summaries internally.
DeadStores find_dead_stores(const sem::LoweredProgram& prog);

}  // namespace copar::analysis
