#include "src/analysis/common.h"

#include "src/lang/ast.h"

namespace copar::analysis {

std::optional<std::uint32_t> global_slot(const sem::LoweredProgram& prog,
                                         std::string_view name) {
  for (const sem::GlobalSlot& g : prog.globals()) {
    if (prog.module().interner().spelling(g.name) == name) return g.slot;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> labeled_stmt(const sem::LoweredProgram& prog,
                                          std::string_view label) {
  const lang::Stmt* s = prog.module().find_labeled(label);
  if (s == nullptr) return std::nullopt;
  return s->id();
}

std::string describe_loc(const sem::LoweredProgram& prog, const absem::AbsLoc& loc) {
  switch (loc.kind) {
    case absem::AbsLoc::Kind::Global:
      for (const sem::GlobalSlot& g : prog.globals()) {
        if (g.slot == loc.a) {
          return "global " + std::string(prog.module().interner().spelling(g.name));
        }
      }
      return "global#" + std::to_string(loc.a);
    case absem::AbsLoc::Kind::Frame:
      return "local " + prog.proc(loc.a).name + "[" + std::to_string(loc.b) + "]";
    case absem::AbsLoc::Kind::Heap:
      return "heap@" + describe_stmt(prog, loc.a);
  }
  return "?";
}

std::string describe_stmt(const sem::LoweredProgram& prog, std::uint32_t stmt_id) {
  // Search the label table first.
  for (const auto& [sym, stmt] : prog.module().labels()) {
    if (stmt->id() == stmt_id) return std::string(prog.module().interner().spelling(sym));
  }
  return "stmt#" + std::to_string(stmt_id);
}

}  // namespace copar::analysis
