#include "src/analysis/sideeffect.h"

#include <sstream>

#include "src/absdom/flat.h"
#include "src/analysis/common.h"

namespace copar::analysis {

const FunctionEffects& SideEffects::of(std::uint32_t proc) const {
  static const FunctionEffects kEmpty;
  auto it = per_proc.find(proc);
  return it == per_proc.end() ? kEmpty : it->second;
}

const FunctionEffects& SideEffects::of(const sem::LoweredProgram& prog,
                                       std::string_view name) const {
  const lang::FunDecl* f = prog.module().find_function(name);
  require(f != nullptr, "side effects: unknown function");
  return of(f->index());
}

bool SideEffects::is_pure(std::uint32_t proc) const {
  const FunctionEffects& fx = of(proc);
  for (const absem::AbsLoc& loc : fx.writes) {
    if (loc.kind != absem::AbsLoc::Kind::Frame || loc.a != proc) return false;
  }
  return true;
}

bool SideEffects::independent(std::uint32_t f, std::uint32_t g) const {
  const FunctionEffects& a = of(f);
  const FunctionEffects& b = of(g);
  for (const absem::AbsLoc& w : a.writes) {
    if (b.touches(w)) return false;
  }
  for (const absem::AbsLoc& w : b.writes) {
    if (a.touches(w)) return false;
  }
  return true;
}

std::string SideEffects::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  for (const auto& [proc, fx] : per_proc) {
    os << prog.proc(proc).name << ":\n";
    os << "  reads:";
    for (const auto& loc : fx.reads) os << ' ' << describe_loc(prog, loc);
    os << "\n  writes:";
    for (const auto& loc : fx.writes) os << ' ' << describe_loc(prog, loc);
    os << '\n';
  }
  return os.str();
}

SideEffects side_effects_from(const sem::LoweredProgram& prog,
                              const absem::AbsResult<absdom::FlatInt>& result) {
  SideEffects out;
  for (std::uint32_t proc = 0; proc < prog.procs().size(); ++proc) {
    auto [reads, writes] = result.effects_of(proc);
    if (reads.empty() && writes.empty()) continue;
    out.per_proc[proc] = FunctionEffects{std::move(reads), std::move(writes)};
  }
  return out;
}

SideEffects analyze_side_effects(const sem::LoweredProgram& prog) {
  absem::AbsExplorer<absdom::FlatInt> engine(prog, absem::AbsOptions{});
  const auto result = engine.run();
  return side_effects_from(prog, result);
}

}  // namespace copar::analysis
