// Data-dependence analysis (§5.2): conflicting accesses between statements
// that may execute concurrently (across cobegin branches) or between
// statements ordered within one thread.
//
// Two sources of facts, both exposed:
//   - Concrete: the full exploration's co-enabled pair facts (exact for the
//     explored program).
//   - Abstract: abstract MHP × per-statement abstract access sets (sound
//     over-approximation; terminates on every program).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"

namespace copar::analysis {

enum class DepKind : std::uint8_t { Flow, Anti, Output };

std::string_view dep_kind_name(DepKind k);

struct Dependence {
  std::uint32_t src = 0;  // statement id
  std::uint32_t dst = 0;
  DepKind kind = DepKind::Flow;
  friend auto operator<=>(const Dependence&, const Dependence&) = default;
};

class Dependences {
 public:
  std::set<Dependence> deps;

  /// Any dependence (either direction, any kind) between the two statements.
  [[nodiscard]] bool conflicting(std::uint32_t s, std::uint32_t t) const;
  [[nodiscard]] bool has(std::uint32_t src, std::uint32_t dst, DepKind kind) const {
    return deps.contains(Dependence{src, dst, kind});
  }

  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

/// Concrete dependences between concurrent statements, from recorded pair
/// facts (requires ExploreOptions::record_pairs).
Dependences dependences_from(const explore::ExploreResult& result);

/// Abstract dependences between concurrent statements: for every abstract
/// MHP pair, conflicts of the statements' abstract access sets.
Dependences dependences_from(const absem::AbsResult<absdom::FlatInt>& result);

/// Dependences among a *sequence* of statements of one thread (used by the
/// further-parallelization application, Example 15): src precedes dst in
/// `ordered`, and their abstract access sets conflict.
Dependences sequential_dependences(const std::vector<std::uint32_t>& ordered,
                                   const absem::AbsResult<absdom::FlatInt>& result);

/// Access sets of a statement *as a unit*: its own accesses plus, for call
/// statements, the transitive effects of every discovered callee. This is
/// the §5.1-derived summary that lets applications treat `call f();` like
/// the block of accesses f performs (Example 15 / Figure 8).
struct UnitAccesses {
  std::set<absem::AbsLoc> reads;
  std::set<absem::AbsLoc> writes;

  [[nodiscard]] bool conflicts(const UnitAccesses& other) const;
};

UnitAccesses unit_accesses(const absem::AbsResult<absdom::FlatInt>& result, std::uint32_t stmt);

}  // namespace copar::analysis
