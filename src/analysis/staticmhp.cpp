#include "src/analysis/staticmhp.h"

#include <set>

namespace copar::analysis {

StaticParallelism::StaticParallelism(const sem::LoweredProgram& prog,
                                     const explore::StaticInfo& info)
    : prog_(&prog), n_(prog.procs().size()) {
  par_.assign(n_ * n_, 0);
  auto mark = [&](std::uint32_t a, std::uint32_t b) {
    par_[a * n_ + b] = 1;
    par_[b * n_ + a] = 1;
  };
  // Only fork sites in procs reachable from the entry create concurrency;
  // fork structure in dead code is ignored (the `unreachable` check flags
  // the code itself).
  for (const std::uint32_t p : info.reachable_procs(prog.entry_proc())) {
    for (const sem::Instr& i : prog.procs()[p].code) {
      if (i.op == sem::Op::Fork) {
        for (std::size_t a = 0; a < i.forks.size(); ++a) {
          for (std::size_t b = a + 1; b < i.forks.size(); ++b) {
            for (const std::uint32_t x : info.reachable_procs(i.forks[a])) {
              for (const std::uint32_t y : info.reachable_procs(i.forks[b])) {
                mark(x, y);
              }
            }
          }
        }
      } else if (i.op == sem::Op::ForkRange) {
        // Every instance of the doall body runs concurrently with every
        // other instance (and everything either reaches).
        const std::vector<std::uint32_t>& reach = info.reachable_procs(i.forks.at(0));
        for (const std::uint32_t x : reach) {
          for (const std::uint32_t y : reach) mark(x, y);
        }
      }
    }
  }
}

Mhp StaticParallelism::stmt_mhp() const {
  // Statement ids per proc (dedup; synthesized instructions have no stmt).
  std::vector<std::set<std::uint32_t>> stmts(n_);
  for (const sem::Proc& p : prog_->procs()) {
    for (const sem::Instr& i : p.code) {
      if (i.stmt != nullptr) stmts[p.id].insert(i.stmt->id());
    }
  }
  Mhp out;
  for (std::uint32_t p = 0; p < n_; ++p) {
    for (std::uint32_t q = p; q < n_; ++q) {
      if (!parallel_procs(p, q)) continue;
      for (const std::uint32_t s : stmts[p]) {
        for (const std::uint32_t t : stmts[q]) {
          out.pairs.insert({std::min(s, t), std::max(s, t)});
        }
      }
    }
  }
  return out;
}

Mhp mhp_from(const sem::LoweredProgram& prog, const explore::StaticInfo& info) {
  return StaticParallelism(prog, info).stmt_mhp();
}

}  // namespace copar::analysis
