#include "src/analysis/lockset.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/lang/ast.h"
#include "src/sem/lockid.h"
#include "src/support/bitset.h"

namespace copar::analysis {

namespace {

using sem::Instr;
using sem::Op;
using sem::Proc;

/// Dataflow state on entry to an instruction.
struct State {
  LockSets::Mask must = 0;
  LockSets::Mask may = 0;
  bool unk = false;   // an anonymous lock may be held
  bool live = false;  // the point is reachable

  bool operator==(const State&) const = default;
};

/// Must-join: intersection over live predecessors; may-join: union.
void join_into(State& into, const State& from) {
  if (!from.live) return;
  if (!into.live) {
    into = from;
    return;
  }
  into.must &= from.must;
  into.may |= from.may;
  into.unk = into.unk || from.unk;
}

/// What a proc's own code (non-transitively) may do to locks.
struct ProcLockOps {
  LockSets::Mask may_lock = 0;
  LockSets::Mask may_unlock = 0;
  bool unk_lock = false;
  bool unk_unlock = false;
};

}  // namespace

LockSets::LockSets(const sem::LoweredProgram& prog, const explore::StaticInfo& info)
    : prog_(&prog) {
  const std::vector<Proc>& procs = prog.procs();
  const std::size_t nprocs = procs.size();

  // --- lock table: every global slot a Lock/Unlock statically names -------
  std::set<std::uint32_t> slots;
  for (const Proc& p : procs) {
    for (const Instr& i : p.code) {
      if (i.op != Op::Lock && i.op != Op::Unlock) continue;
      if (const auto slot = sem::lock_global_slot(prog, *i.lhs)) slots.insert(*slot);
    }
  }
  for (const std::uint32_t slot : slots) {
    if (lock_slots_.size() == 64) {
      overflowed_ = true;
      break;
    }
    lock_slots_.push_back(slot);
  }
  auto bit_of = [&](const lang::Expr& lv) -> std::optional<unsigned> {
    const auto slot = sem::lock_global_slot(prog, lv);
    return slot ? bit_of_slot(*slot) : std::nullopt;
  };

  // --- per-proc transitive lock-op summaries (for Call transfer) ----------
  std::vector<ProcLockOps> own(nprocs);
  for (const Proc& p : procs) {
    for (const Instr& i : p.code) {
      if (i.op != Op::Lock && i.op != Op::Unlock) continue;
      const auto bit = bit_of(*i.lhs);
      const Mask mask = bit ? (Mask{1} << *bit) : 0;
      if (i.op == Op::Lock) {
        own[p.id].may_lock |= mask;
        own[p.id].unk_lock = own[p.id].unk_lock || !bit;
      } else {
        own[p.id].may_unlock |= mask;
        own[p.id].unk_unlock = own[p.id].unk_unlock || !bit;
      }
    }
  }
  // reachable_procs includes fork children; for the caller's lockset that is
  // an over-approximation (children act on their own pids), sound in both
  // directions: extra may-unlocks only shrink must-sets, extra may-locks
  // only grow may-sets.
  std::vector<ProcLockOps> summary(nprocs);
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    for (const std::uint32_t q : info.reachable_procs(p)) {
      summary[p].may_lock |= own[q].may_lock;
      summary[p].may_unlock |= own[q].may_unlock;
      summary[p].unk_lock = summary[p].unk_lock || own[q].unk_lock;
      summary[p].unk_unlock = summary[p].unk_unlock || own[q].unk_unlock;
    }
  }

  // --- interprocedural fixpoint -------------------------------------------
  std::vector<State> entry(nprocs);
  entry[prog.entry_proc()].live = true;

  std::vector<std::vector<State>> in(nprocs);
  for (std::uint32_t p = 0; p < nprocs; ++p) in[p].resize(procs[p].code.size());

  auto transfer = [&](std::uint32_t proc, std::uint32_t pc, State st) -> State {
    const Instr& i = procs[proc].code[pc];
    switch (i.op) {
      case Op::Lock:
        if (const auto bit = bit_of(*i.lhs)) {
          st.must |= Mask{1} << *bit;
          st.may |= Mask{1} << *bit;
        } else {
          st.unk = true;
        }
        break;
      case Op::Unlock:
        if (const auto bit = bit_of(*i.lhs)) {
          st.must &= ~(Mask{1} << *bit);
          st.may &= ~(Mask{1} << *bit);
        } else {
          // Releases *some* cell — possibly any tracked lock.
          st.must = 0;
        }
        break;
      case Op::Call: {
        ProcLockOps callee;
        for (const std::uint32_t t : info.instr_targets(proc, pc)) {
          callee.may_lock |= summary[t].may_lock;
          callee.may_unlock |= summary[t].may_unlock;
          callee.unk_lock = callee.unk_lock || summary[t].unk_lock;
          callee.unk_unlock = callee.unk_unlock || summary[t].unk_unlock;
        }
        st.must &= ~callee.may_unlock;
        if (callee.unk_unlock) st.must = 0;
        st.may |= callee.may_lock;
        st.unk = st.unk || callee.unk_lock;
        break;
      }
      default:
        // Fork/Join included: lock ownership is per-process, so spawning or
        // joining children never changes the forker's own lockset.
        break;
    }
    return st;
  };

  // Intra pass over one proc; returns true when any in-state changed.
  // Re-run to a global fixpoint as entry states refine (monotone: must
  // shrinks, may/unk/live grow).
  auto run_intra = [&](std::uint32_t p) -> bool {
    const std::vector<Instr>& code = procs[p].code;
    const std::size_t n = code.size();
    if (n == 0) return false;
    std::vector<std::vector<std::uint32_t>> preds(n);
    for (std::uint32_t pc = 0; pc < n; ++pc) {
      switch (code[pc].op) {
        case Op::Branch:
          preds[code[pc].t1].push_back(pc);
          preds[code[pc].t2].push_back(pc);
          break;
        case Op::Jump:
          preds[code[pc].t1].push_back(pc);
          break;
        case Op::Return:
        case Op::Halt:
          break;
        default:
          if (pc + 1 < n) preds[pc + 1].push_back(pc);
          break;
      }
    }
    bool any_change = false;
    bool pass_change = true;
    while (pass_change) {
      pass_change = false;
      for (std::uint32_t pc = 0; pc < n; ++pc) {
        State next;
        if (pc == 0) join_into(next, entry[p]);
        for (const std::uint32_t q : preds[pc]) {
          if (in[p][q].live) join_into(next, transfer(p, q, in[p][q]));
        }
        if (!(next == in[p][pc])) {
          in[p][pc] = next;
          pass_change = true;
          any_change = true;
        }
      }
    }
    return any_change;
  };

  // Propagate entry states across call and fork edges; returns change.
  auto propagate = [&](std::uint32_t p) -> bool {
    bool changed = false;
    const std::vector<Instr>& code = procs[p].code;
    for (std::uint32_t pc = 0; pc < code.size(); ++pc) {
      if (!in[p][pc].live) continue;
      auto join_entry = [&](std::uint32_t t, const State& st) {
        State next = entry[t];
        join_into(next, st);
        if (!(next == entry[t])) {
          entry[t] = next;
          changed = true;
        }
      };
      if (code[pc].op == Op::Call) {
        for (const std::uint32_t t : info.instr_targets(p, pc)) join_entry(t, in[p][pc]);
      } else if (code[pc].op == Op::Fork || code[pc].op == Op::ForkRange) {
        // A forked child owns no locks at birth, whatever the forker holds.
        State born;
        born.live = true;
        for (const std::uint32_t c : code[pc].forks) join_entry(c, born);
      }
    }
    return changed;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t p = 0; p < nprocs; ++p) {
      if (!entry[p].live) continue;
      if (run_intra(p)) changed = true;
      if (propagate(p)) changed = true;
    }
  }

  // --- pristine lock cells --------------------------------------------------
  // A lock cell obeys the ownership protocol only if lock/unlock are its
  // sole writers and it starts zero. The identified Lock/Unlock instruction's
  // own class set is exactly the cell's class, which gives us the class ids
  // without re-deriving the slot→class map.
  DynamicBitset lock_classes;
  for (const Proc& p : procs) {
    for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
      const Instr& i = p.code[pc];
      if ((i.op == Op::Lock || i.op == Op::Unlock) && bit_of(*i.lhs)) {
        lock_classes |= info.instr_writes(p.id, pc);
      }
    }
  }
  for (const std::uint32_t slot : lock_slots_) {
    const lang::Expr* init = nullptr;
    for (const sem::GlobalSlot& g : prog.globals()) {
      if (g.slot == slot) init = g.init;
    }
    if (init != nullptr &&
        !(init->kind() == lang::ExprKind::IntLit &&
          lang::expr_cast<lang::IntLit>(*init).value() == 0) &&
        !(init->kind() == lang::ExprKind::BoolLit &&
          !lang::expr_cast<lang::BoolLit>(*init).value())) {
      pristine_ = false;  // non-zero initializer: cell starts "held by nobody"
    }
  }
  if (overflowed_) pristine_ = false;
  for (const Proc& p : procs) {
    for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
      if (!in[p.id][pc].live) continue;
      const Instr& i = p.code[pc];
      if (i.op == Op::Lock || i.op == Op::Unlock) {
        if (!bit_of(*i.lhs)) pristine_ = false;  // anonymous lock traffic
      } else if (info.instr_writes(p.id, pc).intersects(lock_classes)) {
        pristine_ = false;  // a data write can poison or free the cell
      }
    }
  }

  // --- store rows + discipline predicates -----------------------------------
  must_in_.resize(nprocs);
  may_in_.resize(nprocs);
  unk_in_.resize(nprocs);
  live_.resize(nprocs);
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    const std::size_t n = procs[p].code.size();
    must_in_[p].resize(n);
    may_in_[p].resize(n);
    unk_in_[p].assign(n, 0);
    live_[p].assign(n, 0);
    for (std::uint32_t pc = 0; pc < n; ++pc) {
      const State& st = in[p][pc];
      must_in_[p][pc] = st.must;
      may_in_[p][pc] = st.may;
      unk_in_[p][pc] = st.unk ? 1 : 0;
      live_[p][pc] = st.live ? 1 : 0;
      if (!st.live) continue;
      const Instr& instr = procs[p].code[pc];
      const bool process_end =
          instr.op == Op::Halt && (procs[p].is_thread || p == prog.entry_proc());
      if ((instr.op == Op::Lock || instr.op == Op::Join || process_end) &&
          (st.may != 0 || st.unk)) {
        blocking_while_locked_ = true;
      }
      if (instr.op == Op::Unlock) {
        const auto bit = bit_of(*instr.lhs);
        if (!bit || (st.must >> *bit & 1) == 0) unlocks_owned_ = false;
      }
    }
  }
}

std::string LockSets::lock_name(unsigned bit) const {
  return sem::lock_cell_name(*prog_, lock_slots_.at(bit));
}

std::optional<unsigned> LockSets::bit_of_slot(std::uint32_t slot) const {
  const auto it = std::lower_bound(lock_slots_.begin(), lock_slots_.end(), slot);
  if (it == lock_slots_.end() || *it != slot) return std::nullopt;
  return static_cast<unsigned>(it - lock_slots_.begin());
}

std::string LockSets::report() const {
  std::ostringstream os;
  for (const sem::Proc& p : prog_->procs()) {
    for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
      if (!live(p.id, pc)) continue;
      const Mask m = held(p.id, pc);
      if (m == 0) continue;
      os << p.name << '@' << pc << ": {";
      bool first = true;
      for (unsigned b = 0; b < num_locks(); ++b) {
        if ((m >> b & 1) == 0) continue;
        if (!first) os << ',';
        os << lock_name(b);
        first = false;
      }
      os << "}\n";
    }
  }
  return os.str();
}

}  // namespace copar::analysis
