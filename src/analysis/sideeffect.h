// Side-effect analysis (§5.1): for every function, the set of abstract
// locations its evaluation may read or write, including everything its
// callees and spawned threads do.
//
// "We say function f makes a reference to an object if the evaluation of f
// reads or writes the object."
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/sem/lower.h"

namespace copar::analysis {

struct FunctionEffects {
  std::set<absem::AbsLoc> reads;
  std::set<absem::AbsLoc> writes;

  [[nodiscard]] bool touches(const absem::AbsLoc& loc) const {
    return reads.contains(loc) || writes.contains(loc);
  }
};

class SideEffects {
 public:
  /// Effects of a lowered proc (function or cobegin branch); empty if never
  /// reached by the abstract exploration.
  [[nodiscard]] const FunctionEffects& of(std::uint32_t proc) const;

  /// Effects of the named function; throws copar::Error if unknown.
  [[nodiscard]] const FunctionEffects& of(const sem::LoweredProgram& prog,
                                          std::string_view name) const;

  /// A function is observably pure if it writes nothing but its own frame.
  [[nodiscard]] bool is_pure(std::uint32_t proc) const;

  /// Two functions are independent if neither writes what the other touches
  /// — the §7 condition for running calls in parallel.
  [[nodiscard]] bool independent(std::uint32_t f, std::uint32_t g) const;

  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;

  std::map<std::uint32_t, FunctionEffects> per_proc;
};

/// Runs the abstract exploration (Tree folding, flat constants) and
/// assembles transitive per-function effects.
SideEffects analyze_side_effects(const sem::LoweredProgram& prog);

/// Reuse an existing abstract result.
SideEffects side_effects_from(const sem::LoweredProgram& prog,
                              const absem::AbsResult<absdom::FlatInt>& result);

}  // namespace copar::analysis
