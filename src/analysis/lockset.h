// Flow-sensitive, interprocedural lockset analysis over the lowered program.
//
// For every reachable program point (proc, pc) this computes:
//
//   * the MUST-held lockset on entry — locks the executing process is
//     guaranteed to own whenever control reaches the point. The join is
//     intersection, so a lock counts only if *every* path holds it; two
//     accesses whose must-sets share a lock are mutually exclusive, which is
//     the suppression test of the static race tier (see racecand.h).
//   * a MAY-held lockset (union join) used for the blocking-discipline
//     query: when no reachable process ever blocks — at a Lock or a Join —
//     while possibly holding a lock, lock-cycle deadlocks are impossible.
//
// Lock identity is static (sem/lockid.h): only lock cells named by a plain
// global variable reference are tracked, up to 64 of them (a bitmask, the
// same cap as the sleep-set pid masks). Anonymous lock operations are
// handled conservatively: an anonymous acquire protects nothing (must-set
// unchanged) but may hold "something" (the unknown flag); an anonymous
// release could release any tracked lock, so it clears the must-set.
//
// Interprocedural rules:
//   * the entry proc starts with the empty lockset;
//   * a function's entry set is the intersection of the locksets at its
//     (reachable) call sites — its body is protected only by locks every
//     caller holds; after the call the caller keeps a lock only if no
//     transitive callee may release it;
//   * thread procs start empty: lock ownership is per-process, so a forked
//     child inherits nothing, and fork/join leave the forker's own lockset
//     untouched (a child can never successfully release its parent's lock).
//
// Points the analysis never reaches (dead code, procs never called) report
// the *full* mask: vacuously, every lock is held at a point that cannot
// execute. Consumers that care can ask `live()`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/explore/staticinfo.h"
#include "src/sem/lower.h"

namespace copar::analysis {

class LockSets {
 public:
  using Mask = std::uint64_t;

  LockSets(const sem::LoweredProgram& prog, const explore::StaticInfo& info);

  /// Number of tracked lock cells (distinct global slots ever locked).
  [[nodiscard]] unsigned num_locks() const noexcept {
    return static_cast<unsigned>(lock_slots_.size());
  }
  /// True when more than 64 distinct lock cells exist; the excess cells are
  /// untracked (treated as anonymous), which only loses suppressions.
  [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }

  /// Source name of tracked lock `bit` ("m").
  [[nodiscard]] std::string lock_name(unsigned bit) const;
  /// Bit of a global slot, if it is a tracked lock cell.
  [[nodiscard]] std::optional<unsigned> bit_of_slot(std::uint32_t slot) const;

  /// The analysis reaches (proc, pc) from the program entry.
  [[nodiscard]] bool live(std::uint32_t proc, std::uint32_t pc) const {
    return live_[proc][pc] != 0;
  }
  /// MUST-held mask on entry to (proc, pc); full mask when not live.
  [[nodiscard]] Mask held(std::uint32_t proc, std::uint32_t pc) const {
    return live(proc, pc) ? must_in_[proc][pc] : ~Mask{0};
  }
  /// MAY-held mask on entry to (proc, pc); empty when not live.
  [[nodiscard]] Mask may_held(std::uint32_t proc, std::uint32_t pc) const {
    return live(proc, pc) ? may_in_[proc][pc] : Mask{0};
  }
  /// An anonymous (untracked) lock may be held on entry to (proc, pc).
  [[nodiscard]] bool may_hold_unknown(std::uint32_t proc, std::uint32_t pc) const {
    return live(proc, pc) && unk_in_[proc][pc] != 0;
  }

  /// Some reachable process may block (at a Lock or a Join) or terminate
  /// (thread/entry Halt) while possibly holding a lock.
  [[nodiscard]] bool blocking_while_locked() const noexcept { return blocking_while_locked_; }

  /// Every lock cell is *pristine*: zero-initialized, named statically by
  /// every lock/unlock that touches it, and never written by a non-lock
  /// instruction. Pristine cells obey the ownership protocol exactly —
  /// truthy iff some live process holds them.
  [[nodiscard]] bool pristine() const noexcept { return pristine_; }

  /// Deadlock is statically impossible: lock cells are pristine and no
  /// reachable process ever blocks or terminates while holding one. (A
  /// blocked process waits on a cell some live process holds; that holder
  /// would itself have to be blocked or dead while holding — excluded.)
  [[nodiscard]] bool deadlock_free() const noexcept {
    return pristine_ && !blocking_while_locked_;
  }

  /// Unlock-not-held faults are statically impossible: cells are pristine
  /// and every reachable Unlock releases a lock in its must-held set.
  [[nodiscard]] bool unlocks_safe() const noexcept { return pristine_ && unlocks_owned_; }

  /// Stable per-point dump ("main@3: {m}") for tests and debugging.
  [[nodiscard]] std::string report() const;

 private:
  const sem::LoweredProgram* prog_;
  std::vector<std::uint32_t> lock_slots_;  // bit -> global slot, ascending
  bool overflowed_ = false;
  bool blocking_while_locked_ = false;
  bool pristine_ = true;
  bool unlocks_owned_ = true;
  // Entry-of-instruction states, indexed [proc][pc].
  std::vector<std::vector<Mask>> must_in_, may_in_;
  std::vector<std::vector<char>> unk_in_, live_;
};

}  // namespace copar::analysis
