// The static race tier: MHP ∩ conflicting-access ∩ disjoint-locksets.
//
// Enumerates every pair of statements whose lowered instructions conflict
// (one writes a location class the other touches — the same class sets the
// stubborn-set machinery uses), then prunes:
//
//   1. pairs no syntactic interleaving can co-schedule (StaticParallelism),
//   2. pairs protected by a common lock — some lock is in the must-held
//      lockset of *every* parallel occurrence of both sides, so the
//      accesses are mutually exclusive. These are proven race-free and
//      reported as suppressed, with the protecting lock named.
//
// What survives is the ranked candidate list the directed explorer
// confirms or refutes (check --tier=auto), or that --tier=static reports
// as-is. Soundness: location classes over-approximate concrete overlap,
// StaticParallelism over-approximates co-enabledness, and must-locksets
// under-approximate held locks — so candidates ⊇ the explorer's races.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/lockset.h"
#include "src/analysis/staticmhp.h"
#include "src/explore/staticinfo.h"
#include "src/sem/lower.h"

namespace copar::analysis {

struct RaceCandidate {
  std::uint32_t stmt1 = 0, stmt2 = 0;  // stmt1 <= stmt2
  bool write_write = false;            // some occurrence conflicts write/write
  bool write_read = false;             // some occurrence conflicts write/read
  int score = 0;                       // rank: 2*ww + wr
};

/// A conflicting parallel pair proven race-free by a common lock.
struct SuppressedPair {
  std::uint32_t stmt1 = 0, stmt2 = 0;  // stmt1 <= stmt2
  std::string lock;                    // the protecting lock cell
};

struct CandidateReport {
  /// Ranked: score descending, then source order.
  std::vector<RaceCandidate> candidates;
  /// Source order.
  std::vector<SuppressedPair> suppressed;
  /// Universe: conflicting statement pairs (sync/sync contention excluded).
  /// pairs_total == pruned_mhp + pruned_lockset + candidates.size().
  std::uint64_t pairs_total = 0;
  std::uint64_t pruned_mhp = 0;
  std::uint64_t pruned_lockset = 0;

  /// Stable text dump for golden tests.
  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

CandidateReport race_candidates(const sem::LoweredProgram& prog,
                                const explore::StaticInfo& info,
                                const StaticParallelism& par, const LockSets& locks);

}  // namespace copar::analysis
