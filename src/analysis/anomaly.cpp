#include "src/analysis/anomaly.h"

#include <sstream>

#include "src/analysis/common.h"
#include "src/analysis/depend.h"

namespace copar::analysis {

std::string Anomalies::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  for (const Anomaly& a : all) {
    os << (a.write_write ? "write/write race: " : "write/read race: ")
       << describe_stmt(prog, a.stmt1) << " vs " << describe_stmt(prog, a.stmt2) << '\n';
  }
  return os.str();
}

Anomalies anomalies_from(const explore::ExploreResult& result) {
  Anomalies out;
  for (const auto& [pair, facts] : result.pairs) {
    if (!facts.co_enabled) continue;
    if (facts.w1_w2) out.all.insert(Anomaly{pair.first, pair.second, true});
    if (facts.w1_r2 || facts.r1_w2) out.all.insert(Anomaly{pair.first, pair.second, false});
  }
  return out;
}

Anomalies anomalies_from(const absem::AbsResult<absdom::FlatInt>& result) {
  Anomalies out;
  const Dependences deps = dependences_from(result);
  for (const Dependence& d : deps.deps) {
    if (d.src > d.dst) continue;  // one report per unordered pair
    if (d.kind == DepKind::Output) {
      out.all.insert(Anomaly{d.src, d.dst, true});
    } else {
      out.all.insert(Anomaly{d.src, d.dst, false});
    }
  }
  return out;
}

}  // namespace copar::analysis
