#include "src/analysis/anomaly.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <vector>

#include "src/analysis/common.h"
#include "src/analysis/depend.h"

namespace copar::analysis {

std::string Anomalies::report(const sem::LoweredProgram& prog) const {
  // Stable output order: by source span, then kind, then statement ids —
  // independent of internal set ordering, suitable for golden tests.
  std::vector<const Anomaly*> order;
  order.reserve(all.size());
  for (const Anomaly& a : all) order.push_back(&a);
  std::sort(order.begin(), order.end(), [&](const Anomaly* a, const Anomaly* b) {
    return std::make_tuple(prog.stmt_span(a->stmt1), prog.stmt_span(a->stmt2), a->write_write,
                           a->stmt1, a->stmt2) <
           std::make_tuple(prog.stmt_span(b->stmt1), prog.stmt_span(b->stmt2), b->write_write,
                           b->stmt1, b->stmt2);
  });
  std::ostringstream os;
  for (const Anomaly* a : order) {
    os << (a->write_write ? "write/write race: " : "write/read race: ")
       << describe_stmt(prog, a->stmt1);
    if (const SourceSpan sp = prog.stmt_span(a->stmt1); sp.valid()) {
      os << " (" << to_string(sp.begin) << ')';
    }
    os << " vs " << describe_stmt(prog, a->stmt2);
    if (const SourceSpan sp = prog.stmt_span(a->stmt2); sp.valid()) {
      os << " (" << to_string(sp.begin) << ')';
    }
    os << '\n';
  }
  return os.str();
}

Anomalies anomalies_from(const explore::ExploreResult& result) {
  Anomalies out;
  for (const auto& [pair, facts] : result.pairs) {
    if (!facts.co_enabled) continue;
    if (facts.w1_w2) out.all.insert(Anomaly{pair.first, pair.second, true});
    if (facts.w1_r2 || facts.r1_w2) out.all.insert(Anomaly{pair.first, pair.second, false});
  }
  return out;
}

Anomalies anomalies_from(const absem::AbsResult<absdom::FlatInt>& result) {
  Anomalies out;
  const Dependences deps = dependences_from(result);
  for (const Dependence& d : deps.deps) {
    if (d.src > d.dst) continue;  // one report per unordered pair
    if (d.kind == DepKind::Output) {
      out.all.insert(Anomaly{d.src, d.dst, true});
    } else {
      out.all.insert(Anomaly{d.src, d.dst, false});
    }
  }
  return out;
}

}  // namespace copar::analysis
