// Syntactic may-happen-in-parallel over the cobegin/doall structure.
//
// Exploration-derived MHP (mhp_from(ExploreResult)) is exact for the
// explored space but costs the whole space. This pass reads only the
// lowered fork structure: at every reachable Fork, any proc reachable
// (via calls and forks) from one child may run in parallel with any proc
// reachable from a *different* child; a ForkRange (doall) child may run in
// parallel with itself (multiple instances). Statement pairs lift from proc
// pairs. The result over-approximates every co-enabled pair the explorer
// can observe — cobegin children never outlive their Join, so fork-site
// products are the only source of concurrency.
#pragma once

#include <cstdint>
#include <vector>

#include "src/analysis/mhp.h"
#include "src/explore/staticinfo.h"
#include "src/sem/lower.h"

namespace copar::analysis {

class StaticParallelism {
 public:
  StaticParallelism(const sem::LoweredProgram& prog, const explore::StaticInfo& info);

  /// May instances of procs `p` and `q` run concurrently? `p == q` asks
  /// whether two instances of the same proc can coexist (doall bodies, or a
  /// proc reachable from two sibling cobegin branches).
  [[nodiscard]] bool parallel_procs(std::uint32_t p, std::uint32_t q) const {
    return par_[p * n_ + q] != 0;
  }

  /// Lift to statement pairs: the same `Mhp` interface the exploration- and
  /// abstraction-derived variants return.
  [[nodiscard]] Mhp stmt_mhp() const;

 private:
  const sem::LoweredProgram* prog_;
  std::size_t n_ = 0;
  std::vector<char> par_;  // n*n symmetric matrix
};

/// Syntactic MHP with the same pair-set interface as the exploration- and
/// abstraction-derived overloads; sound (superset of co-enabled pairs).
Mhp mhp_from(const sem::LoweredProgram& prog, const explore::StaticInfo& info);

}  // namespace copar::analysis
