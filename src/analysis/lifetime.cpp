#include "src/analysis/lifetime.h"

#include <sstream>

#include "src/analysis/common.h"

namespace copar::analysis {

const SiteLifetime* Lifetimes::site(std::uint32_t stmt_id) const {
  auto it = sites.find(stmt_id);
  return it == sites.end() ? nullptr : &it->second;
}

const SiteLifetime* Lifetimes::site(const sem::LoweredProgram& prog,
                                    std::string_view label) const {
  const auto id = labeled_stmt(prog, label);
  return id.has_value() ? site(*id) : nullptr;
}

std::string Lifetimes::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  for (const auto& [id, s] : sites) {
    os << describe_stmt(prog, id) << ": "
       << (s.shared_across_threads ? "shared" : "thread-local") << ", "
       << (s.escapes_creating_function ? "escapes function" : "function-local") << ", "
       << (s.live_at_program_exit ? "live at exit" : "collectible") << '\n';
  }
  return os.str();
}

Lifetimes lifetimes_from(const explore::ExploreResult& result) {
  Lifetimes out;
  for (const auto& [site_id, info] : result.accesses.sites) {
    SiteLifetime s;
    s.site = site_id;
    s.shared_across_threads = info.accessor_threads.size() > 1 || info.accessed_by_other_process;
    s.escapes_creating_function = info.escapes_creating_function;
    s.live_at_program_exit = info.live_at_exit > 0;
    out.sites.emplace(site_id, s);
  }
  return out;
}

Lifetimes analyze_lifetimes(const sem::LoweredProgram& prog) {
  explore::ExploreOptions opts;
  opts.record_accesses = true;
  opts.record_lifetimes = true;
  return lifetimes_from(explore::explore(prog, opts));
}

}  // namespace copar::analysis
