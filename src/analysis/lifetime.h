// Object lifetime analysis (§5.3), built on birthdates and access logs.
//
// For every allocation site the analysis answers:
//   - is the object shared between concurrent threads? (drives the §7
//     memory-placement application: the paper's b1/b2 example)
//   - does it escape its creating function activation? (drives compile-time
//     deallocation lists at function exits, as proposed in [Har89])
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/explore/explorer.h"
#include "src/sem/lower.h"

namespace copar::analysis {

struct SiteLifetime {
  std::uint32_t site = 0;  // AllocStmt statement id
  /// Accessed by more than one thread context, or by a process other than
  /// its creator: must live in memory visible to all of them.
  bool shared_across_threads = false;
  /// Stayed reachable past the return of the allocating activation.
  bool escapes_creating_function = false;
  /// Still reachable at some terminal configuration.
  bool live_at_program_exit = false;
};

class Lifetimes {
 public:
  std::map<std::uint32_t, SiteLifetime> sites;

  [[nodiscard]] const SiteLifetime* site(std::uint32_t stmt_id) const;
  [[nodiscard]] const SiteLifetime* site(const sem::LoweredProgram& prog,
                                         std::string_view label) const;

  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

/// From a concrete exploration run with record_accesses + record_lifetimes.
Lifetimes lifetimes_from(const explore::ExploreResult& result);

/// Convenience: full exploration with the right recording options.
Lifetimes analyze_lifetimes(const sem::LoweredProgram& prog);

}  // namespace copar::analysis
