#include "src/analysis/deadstore.h"

#include <sstream>

#include "src/analysis/common.h"
#include "src/lang/ast.h"
#include "src/support/bitset.h"

namespace copar::analysis {

namespace {

/// The exact class written by an Assign whose target is a plain VarRef;
/// SIZE_MAX when the write is not must-kill material.
std::size_t exact_written_class(const sem::LoweredProgram& prog,
                                const explore::StaticInfo& si, const sem::Proc& p,
                                const sem::Instr& instr) {
  if (instr.op != sem::Op::Assign) return SIZE_MAX;
  if (instr.lhs == nullptr || instr.lhs->kind() != lang::ExprKind::VarRef) return SIZE_MAX;
  // The write set of a VarRef assignment is that single class.
  const DynamicBitset& w = si.instr_writes(p.id, static_cast<std::uint32_t>(
                                                     &instr - p.code.data()));
  if (w.count() != 1) return SIZE_MAX;
  std::size_t cls = SIZE_MAX;
  w.for_each([&](std::size_t c) { cls = c; });
  (void)prog;
  return cls;
}

}  // namespace

std::string DeadStores::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  for (std::uint32_t s : stores) {
    os << "dead store: " << describe_stmt(prog, s) << '\n';
  }
  return os.str();
}

DeadStores find_dead_stores(const sem::LoweredProgram& prog,
                            const explore::StaticInfo& static_info) {
  DeadStores out;
  const std::size_t nclasses = static_info.num_classes();

  // Classes another proc may touch: stores to them are observable
  // elsewhere. Computed per proc as the union of every other proc's direct
  // accesses (call/fork closures are already reflected in per-proc direct
  // sets of the procs themselves).
  std::vector<DynamicBitset> others(prog.procs().size(), DynamicBitset(nclasses));
  for (const sem::Proc& p : prog.procs()) {
    for (const sem::Proc& q : prog.procs()) {
      if (q.id == p.id) continue;
      others[p.id] |= static_info.direct_reads(q.id);
      others[p.id] |= static_info.direct_writes(q.id);
    }
  }

  // Global classes are observable at termination: they seed exit liveness.
  // (StaticInfo assigns class ids 1..nglobals-1 to the global slots first.)
  DynamicBitset global_classes(nclasses);
  for (std::uint32_t cls = 1; cls < prog.nglobal_cells(); ++cls) global_classes.set(cls);

  for (const sem::Proc& p : prog.procs()) {
    const std::size_t len = p.code.size();
    if (len == 0) continue;

    // Backward liveness to fixpoint.
    std::vector<DynamicBitset> live_out(len, DynamicBitset(nclasses));
    DynamicBitset exit_live = global_classes;
    exit_live |= others[p.id];
    exit_live |= static_info.pointer_targets();

    auto succs = [&](std::size_t pc, std::vector<std::size_t>& ss) {
      ss.clear();
      const sem::Instr& i = p.code[pc];
      switch (i.op) {
        case sem::Op::Branch:
          ss.push_back(i.t1);
          ss.push_back(i.t2);
          break;
        case sem::Op::Jump:
          ss.push_back(i.t1);
          break;
        case sem::Op::Return:
        case sem::Op::Halt:
          break;
        default:
          if (pc + 1 < len) ss.push_back(pc + 1);
          break;
      }
    };

    auto live_in_of = [&](std::size_t pc) {
      const sem::Instr& i = p.code[pc];
      DynamicBitset in = live_out[pc];
      const std::size_t kill =
          exact_written_class(prog, static_info, p, i);
      if (kill != SIZE_MAX) in.reset(kill);
      in |= static_info.instr_reads(p.id, static_cast<std::uint32_t>(pc));
      // Calls/forks make their targets' accesses live here.
      for (std::uint32_t t : static_info.instr_targets(p.id, static_cast<std::uint32_t>(pc))) {
        in |= static_info.future_reads(t);
      }
      return in;
    };

    bool changed = true;
    std::vector<std::size_t> ss;
    while (changed) {
      changed = false;
      for (std::size_t pc = len; pc-- > 0;) {
        DynamicBitset next_out(nclasses);
        const sem::Instr& i = p.code[pc];
        if (i.op == sem::Op::Return || i.op == sem::Op::Halt) {
          next_out = exit_live;
        } else {
          succs(pc, ss);
          for (std::size_t s : ss) next_out |= live_in_of(s);
          if (ss.empty()) next_out = exit_live;
        }
        if (!(next_out == live_out[pc])) {
          live_out[pc] = std::move(next_out);
          changed = true;
        }
      }
    }

    // A store is dead when its exactly-written class is not live out, is
    // not visible to any other proc, and cannot be reached via pointers.
    for (std::size_t pc = 0; pc < len; ++pc) {
      const sem::Instr& i = p.code[pc];
      if (i.stmt == nullptr) continue;
      const std::size_t cls = exact_written_class(prog, static_info, p, i);
      if (cls == SIZE_MAX) continue;
      if (live_out[pc].test(cls)) continue;  // exit liveness covers globals
      if (others[p.id].test(cls)) continue;
      if (static_info.pointer_targets().test(cls)) continue;
      out.stores.insert(i.stmt->id());
    }
  }
  return out;
}

DeadStores find_dead_stores(const sem::LoweredProgram& prog) {
  const explore::StaticInfo si(prog);
  return find_dead_stores(prog, si);
}

}  // namespace copar::analysis
