#include "src/analysis/depend.h"

#include <sstream>

#include "src/analysis/common.h"

namespace copar::analysis {

std::string_view dep_kind_name(DepKind k) {
  switch (k) {
    case DepKind::Flow: return "flow";
    case DepKind::Anti: return "anti";
    case DepKind::Output: return "output";
  }
  return "?";
}

bool Dependences::conflicting(std::uint32_t s, std::uint32_t t) const {
  for (const Dependence& d : deps) {
    if ((d.src == s && d.dst == t) || (d.src == t && d.dst == s)) return true;
  }
  return false;
}

std::string Dependences::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  for (const Dependence& d : deps) {
    os << dep_kind_name(d.kind) << ": " << describe_stmt(prog, d.src) << " -> "
       << describe_stmt(prog, d.dst) << '\n';
  }
  return os.str();
}

Dependences dependences_from(const explore::ExploreResult& result) {
  Dependences out;
  for (const auto& [pair, facts] : result.pairs) {
    if (!facts.co_enabled) continue;
    const auto [s1, s2] = pair;
    if (facts.w1_r2) {
      out.deps.insert(Dependence{s1, s2, DepKind::Flow});
      out.deps.insert(Dependence{s2, s1, DepKind::Anti});
    }
    if (facts.r1_w2) {
      out.deps.insert(Dependence{s2, s1, DepKind::Flow});
      out.deps.insert(Dependence{s1, s2, DepKind::Anti});
    }
    if (facts.w1_w2) {
      out.deps.insert(Dependence{s1, s2, DepKind::Output});
      if (s1 != s2) out.deps.insert(Dependence{s2, s1, DepKind::Output});
    }
  }
  return out;
}

namespace {

bool intersects(const std::set<absem::AbsLoc>& a, const std::set<absem::AbsLoc>& b) {
  for (const absem::AbsLoc& x : a) {
    if (b.contains(x)) return true;
  }
  return false;
}

const std::set<absem::AbsLoc>& lookup(
    const std::map<std::uint32_t, std::set<absem::AbsLoc>>& m, std::uint32_t k) {
  static const std::set<absem::AbsLoc> kEmpty;
  auto it = m.find(k);
  return it == m.end() ? kEmpty : it->second;
}

void classify(Dependences& out, std::uint32_t s1, std::uint32_t s2,
              const std::set<absem::AbsLoc>& r1, const std::set<absem::AbsLoc>& w1,
              const std::set<absem::AbsLoc>& r2, const std::set<absem::AbsLoc>& w2) {
  if (intersects(w1, r2)) {
    out.deps.insert(Dependence{s1, s2, DepKind::Flow});
    out.deps.insert(Dependence{s2, s1, DepKind::Anti});
  }
  if (intersects(r1, w2)) {
    out.deps.insert(Dependence{s2, s1, DepKind::Flow});
    out.deps.insert(Dependence{s1, s2, DepKind::Anti});
  }
  if (intersects(w1, w2)) {
    out.deps.insert(Dependence{s1, s2, DepKind::Output});
    if (s1 != s2) out.deps.insert(Dependence{s2, s1, DepKind::Output});
  }
}

}  // namespace

Dependences dependences_from(const absem::AbsResult<absdom::FlatInt>& result) {
  Dependences out;
  for (const auto& [s1, s2] : result.mhp) {
    classify(out, s1, s2, lookup(result.stmt_reads, s1), lookup(result.stmt_writes, s1),
             lookup(result.stmt_reads, s2), lookup(result.stmt_writes, s2));
  }
  return out;
}

bool UnitAccesses::conflicts(const UnitAccesses& other) const {
  return intersects(writes, other.reads) || intersects(writes, other.writes) ||
         intersects(reads, other.writes);
}

UnitAccesses unit_accesses(const absem::AbsResult<absdom::FlatInt>& result,
                           std::uint32_t stmt) {
  UnitAccesses out;
  const auto& r = lookup(result.stmt_reads, stmt);
  const auto& w = lookup(result.stmt_writes, stmt);
  out.reads.insert(r.begin(), r.end());
  out.writes.insert(w.begin(), w.end());
  if (auto it = result.stmt_callees.find(stmt); it != result.stmt_callees.end()) {
    for (std::uint32_t callee : it->second) {
      auto [cr, cw] = result.effects_of(callee);
      out.reads.insert(cr.begin(), cr.end());
      out.writes.insert(cw.begin(), cw.end());
    }
  }
  return out;
}

Dependences sequential_dependences(const std::vector<std::uint32_t>& ordered,
                                   const absem::AbsResult<absdom::FlatInt>& result) {
  Dependences out;
  std::vector<UnitAccesses> units;
  units.reserve(ordered.size());
  for (std::uint32_t s : ordered) units.push_back(unit_accesses(result, s));
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    for (std::size_t j = i + 1; j < ordered.size(); ++j) {
      const std::uint32_t s = ordered[i];
      const std::uint32_t t = ordered[j];
      // Directional: s executes before t in program order.
      if (intersects(units[i].writes, units[j].reads)) {
        out.deps.insert(Dependence{s, t, DepKind::Flow});
      }
      if (intersects(units[i].reads, units[j].writes)) {
        out.deps.insert(Dependence{s, t, DepKind::Anti});
      }
      if (intersects(units[i].writes, units[j].writes)) {
        out.deps.insert(Dependence{s, t, DepKind::Output});
      }
    }
  }
  return out;
}

}  // namespace copar::analysis
