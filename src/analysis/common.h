// Shared helpers for the client analyses: name lookups and pretty-printing
// of abstract locations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/absem/absloc.h"
#include "src/sem/lower.h"

namespace copar::analysis {

/// Global slot of `name` (declared global or named function); nullopt if
/// absent.
std::optional<std::uint32_t> global_slot(const sem::LoweredProgram& prog, std::string_view name);

/// Statement id of the statement labeled `label`; nullopt if absent.
std::optional<std::uint32_t> labeled_stmt(const sem::LoweredProgram& prog,
                                          std::string_view label);

/// Human-readable rendering of an abstract location ("global x",
/// "local f.t", "heap@s1").
std::string describe_loc(const sem::LoweredProgram& prog, const absem::AbsLoc& loc);

/// Human-readable name of a statement: its label if any, else "stmt#<id>"
/// with the source line.
std::string describe_stmt(const sem::LoweredProgram& prog, std::uint32_t stmt_id);

}  // namespace copar::analysis
