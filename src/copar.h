// Umbrella header: the whole framework through one include.
//
//   #include "src/copar.h"
//   auto program = copar::compile(source);
//   auto result  = copar::explore::explore(*program->lowered, {});
//
// Individual headers remain the canonical documentation for each module;
// include them directly for faster builds.
#pragma once

// Front end
#include "src/lang/ast.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

// Standard (instrumented) semantics
#include "src/sem/config.h"
#include "src/sem/eval.h"
#include "src/sem/lower.h"
#include "src/sem/procstring.h"
#include "src/sem/program.h"
#include "src/sem/step.h"

// Concrete exploration + reductions
#include "src/explore/explorer.h"
#include "src/explore/staticinfo.h"
#include "src/explore/stubborn.h"
#include "src/explore/witness.h"

// Abstract domains + abstract semantics
#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absdom/sign.h"
#include "src/absem/absexplore.h"

// Client analyses (§5)
#include "src/analysis/anomaly.h"
#include "src/analysis/deadstore.h"
#include "src/analysis/depend.h"
#include "src/analysis/lifetime.h"
#include "src/analysis/mhp.h"
#include "src/analysis/sideeffect.h"

// Applications (§7)
#include "src/apps/constprop.h"
#include "src/apps/dealloc.h"
#include "src/apps/parallelize.h"
#include "src/apps/placement.h"
#include "src/apps/shasha_snir.h"
#include "src/apps/transform.h"

// Petri-net substrate (native stubborn-set setting)
#include "src/petri/models.h"
#include "src/petri/net.h"
#include "src/petri/reach.h"

// Workloads
#include "src/workload/paper_examples.h"
#include "src/workload/philosophers.h"
#include "src/workload/random_programs.h"
