// Dining philosophers generator — the paper's §2.2 scaling claim (after
// [Val88]): full interleaving exploration grows exponentially in n, the
// stubborn-set exploration polynomially.
//
// Each fork is its own global lock variable (so the static conflict classes
// expose the neighbor-only locality); each philosopher is one cobegin
// branch picking up fork i then fork (i+1) mod n. With `left_handed`,
// philosopher n-1 picks its forks in the opposite order, which removes the
// circular-wait deadlock.
#pragma once

#include <cstddef>
#include <string>

namespace copar::workload {

std::string dining_philosophers(std::size_t n, bool left_handed = false);

}  // namespace copar::workload
