#include "src/workload/random_programs.h"

#include <random>
#include <sstream>
#include <vector>

namespace copar::workload {

namespace {

class Gen {
 public:
  Gen(std::uint64_t seed, const RandomOptions& opts) : rng_(seed), opts_(opts) {}

  std::string run() {
    for (std::size_t i = 0; i < opts_.num_globals; ++i) {
      os_ << "var g" << i << ";\n";
    }
    if (opts_.use_locks) os_ << "var lk0;\nvar lk1;\n";
    if (opts_.use_pointers) os_ << "var arr;\n";
    if (opts_.use_calls) {
      // A couple of helper functions with modest side effects.
      os_ << "fun h0(a) { g0 = g0 + a; return g0; }\n";
      os_ << "fun h1(a) { if (a > 0) { g1 = a; } return a + 1; }\n";
    }
    os_ << "fun main() {\n";
    if (opts_.use_pointers) os_ << "  arr = alloc(3);\n";
    stmt_seq(1, pick(1, 2), /*in_branch=*/false);
    if (opts_.use_doall && chance(60)) {
      const int lo = pick(0, 1);
      const int hi = lo + pick(0, 2);
      os_ << "  doall (dx = " << lo << " .. " << hi << ") {\n";
      if (opts_.use_pointers && chance(50)) {
        os_ << "    arr[dx % 3] = dx + " << pick(0, 4) << ";\n";
      }
      os_ << "    " << global() << " = " << global() << " + dx;\n";
      os_ << "  }\n";
    }
    os_ << "  cobegin\n";
    for (std::size_t b = 0; b < opts_.num_branches; ++b) {
      if (b > 0) os_ << "  ||\n";
      os_ << "  {\n";
      if (opts_.use_locks && chance(40)) {
        const int lk = pick(0, 1);
        os_ << "    lock(lk" << lk << ");\n";
        stmt_seq(2, pick(1, static_cast<int>(opts_.max_branch_stmts)), true);
        os_ << "    unlock(lk" << lk << ");\n";
      } else {
        stmt_seq(2, pick(1, static_cast<int>(opts_.max_branch_stmts)), true);
      }
      os_ << "  }\n";
    }
    os_ << "  coend;\n";
    stmt_seq(1, pick(0, 2), false);
    os_ << "}\n";
    return os_.str();
  }

 private:
  int pick(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng_); }
  bool chance(int percent) { return pick(1, 100) <= percent; }

  std::string global() { return "g" + std::to_string(pick(0, static_cast<int>(opts_.num_globals) - 1)); }

  std::string expr(int depth) {
    if (depth <= 0 || chance(40)) {
      if (chance(50)) return std::to_string(pick(-3, 9));
      if (opts_.use_pointers && chance(20)) return "arr[" + std::to_string(pick(0, 2)) + "]";
      return global();
    }
    static const char* ops[] = {" + ", " - ", " * ", " < ", " == "};
    return "(" + expr(depth - 1) + ops[pick(0, 4)] + expr(depth - 1) + ")";
  }

  void stmt(int indent, bool in_branch) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const int kind = pick(0, 9);
    if (kind <= 4) {
      os_ << pad << global() << " = " << expr(2) << ";\n";
    } else if (kind <= 6 && opts_.use_pointers) {
      os_ << pad << "arr[" << pick(0, 2) << "] = " << expr(1) << ";\n";
    } else if (kind == 7) {
      os_ << pad << "if (" << expr(1) << ") { " << global() << " = " << expr(1) << "; }\n";
    } else if (kind == 8 && opts_.use_calls) {
      os_ << pad << global() << " = h" << pick(0, 1) << "(" << expr(1) << ");\n";
    } else {
      os_ << pad << "skip;\n";
    }
    (void)in_branch;
  }

  void stmt_seq(int indent, int count, bool in_branch) {
    for (int i = 0; i < count; ++i) stmt(indent, in_branch);
  }

  std::mt19937_64 rng_;
  RandomOptions opts_;
  std::ostringstream os_;
};

}  // namespace

std::string random_program(std::uint64_t seed, const RandomOptions& options) {
  return Gen(seed, options).run();
}

}  // namespace copar::workload
