// Seeded random-program generator for property-based testing.
//
// Generated programs always terminate (no loops; locks acquired and
// released within one branch, though cross-branch lock-order deadlocks may
// occur and are a desired behavior to preserve), so the full exploration is
// a usable oracle: the property tests check that stubborn sets, virtual
// coarsening, and their combination reproduce exactly the full
// exploration's result configurations, and that the abstract analyses
// over-approximate the concrete facts.
#pragma once

#include <cstdint>
#include <string>

namespace copar::workload {

struct RandomOptions {
  std::size_t num_globals = 4;
  std::size_t num_branches = 2;     // cobegin width
  std::size_t max_branch_stmts = 4;
  bool use_locks = true;
  bool use_pointers = true;
  bool use_calls = true;
  /// Occasionally wrap part of main in a small doall (index range <= 3).
  bool use_doall = false;
};

/// Deterministic in `seed`.
std::string random_program(std::uint64_t seed, const RandomOptions& options = {});

}  // namespace copar::workload
