// The paper's worked examples as ready-to-compile sources. Each constant is
// referenced by the test suite, the examples, and the benchmark that
// regenerates the corresponding figure (see DESIGN.md's experiment index).
#pragma once

#include <string>

namespace copar::workload {

/// Figure 2(a) / Example 1: the Shasha–Snir program. Under sequential
/// consistency (a,b) ∈ {(0,1),(1,0),(1,1)}; (0,0) is impossible.
std::string fig2_shasha_snir();

/// Figure 3-style program: two threads, each with a couple of statements,
/// where folding merges the "dangling link" configurations.
std::string fig3_two_threads();

/// Figure 5: two threads with mostly-local statements and a single shared
/// variable; stubborn sets shrink the configuration space to 13
/// configurations while preserving the result configurations.
std::string fig5_locality();

/// Example 8: the pointer program s1..s4 (y = malloc; *y = 10; x = malloc;
/// *x = *y) written in copar syntax, with the statements labeled.
std::string example8_pointers();

/// Example 15 / Figure 8: four function calls in sequence, where analysis
/// finds dependences exactly on (s1,s4) and (s2,s3).
std::string example15_calls();

/// §7 closing example: b1 is accessed by both threads (shared level), b2 by
/// one (local).
std::string placement_b1_b2();

/// §1 motivating example: busy-waiting on a flag set by a sibling thread —
/// the program a naive sequential constant propagator miscompiles.
std::string busy_wait_flag();

/// Producer/consumer over a one-slot buffer with lock-based handshaking.
std::string producer_consumer();

/// Peterson's mutual-exclusion algorithm — the class of programs the
/// paper's introduction says restricted sharing models cannot express
/// ("some important classes of algorithms can not be programmed, such as
/// mutual exclusion or shared variable synchronization"). The critical
/// sections assert exclusion; exploration proves no violation is reachable.
std::string peterson_mutex();

/// Peterson without the turn variable (flags only): exclusion is broken
/// and exploration finds the violation.
std::string peterson_broken();

}  // namespace copar::workload
