#include "src/workload/philosophers.h"

#include <sstream>

namespace copar::workload {

std::string dining_philosophers(std::size_t n, bool left_handed) {
  std::ostringstream os;
  for (std::size_t i = 0; i < n; ++i) os << "var fork" << i << ";\n";
  for (std::size_t i = 0; i < n; ++i) os << "var meals" << i << ";\n";
  os << "fun main() {\n  cobegin\n";
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t first = i;
    std::size_t second = (i + 1) % n;
    if (left_handed && i == n - 1) std::swap(first, second);
    if (i > 0) os << "  ||\n";
    os << "    {\n";
    os << "      lock(fork" << first << ");\n";
    os << "      lock(fork" << second << ");\n";
    os << "      meals" << i << " = meals" << i << " + 1;\n";
    os << "      unlock(fork" << second << ");\n";
    os << "      unlock(fork" << first << ");\n";
    os << "    }\n";
  }
  os << "  coend;\n}\n";
  return os.str();
}

}  // namespace copar::workload
