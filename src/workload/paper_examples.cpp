#include "src/workload/paper_examples.h"

namespace copar::workload {

std::string fig2_shasha_snir() {
  return R"(
    var x; var y; var a; var b;
    fun main() {
      cobegin
        { s1: x = 1; s2: a = y; }
      ||
        { s3: y = 1; s4: b = x; }
      coend;
    }
  )";
}

std::string fig3_two_threads() {
  return R"(
    var x; var y;
    fun main() {
      cobegin
        { s1: x = 1; s2: x = 2; }
      ||
        { s3: y = 1; s4: y = 2; }
      coend;
    }
  )";
}

std::string fig5_locality() {
  // Reconstruction: the report's Figure 5 is not reproduced in the text we
  // work from, only its claim — "the configuration space can be greatly
  // reduced ... which contains only 13 configurations, while producing
  // exactly the same set of result-configurations". This two-thread program
  // with one shared conflict (a2 writes x, b2 reads it) and otherwise local
  // statements has exactly 13 configurations under stubborn-set exploration
  // versus 16 under full interleaving, with identical result sets.
  return R"(
    var x; var y;
    fun main() {
      var l1; var m1;
      s0: x = 0;
      cobegin
        { a1: l1 = 1; a2: x = 1; }
      ||
        { b1: m1 = 1; b2: y = x; }
      coend;
    }
  )";
}

std::string example8_pointers() {
  return R"(
    var x; var y;
    fun main() {
      s1: y = alloc(1);
      s2: *y = 10;
      s3: x = alloc(1);
      s4: *x = *y;
    }
  )";
}

std::string example15_calls() {
  return R"(
    var A; var B; var u; var v;
    fun f1() { A = 1; }
    fun f2() { u = B; }
    fun f3() { B = 2; }
    fun f4() { v = A; }
    fun main() {
      s1: f1();
      s2: f2();
      s3: f3();
      s4: f4();
    }
  )";
}

std::string placement_b1_b2() {
  return R"(
    var b1; var xr;
    fun main() {
      sB1: b1 = alloc(1);
      cobegin
        {
          var b2;
          sB2: b2 = alloc(1);
          *b2 = 2;
          *b1 = *b2 + 1;
        }
      ||
        {
          xr = *b1;
        }
      coend;
    }
  )";
}

std::string busy_wait_flag() {
  return R"(
    var s; var r;
    fun main() {
      cobegin
        {
          while (s == 0) { skip; }
          sAfter: r = 1;
        }
      ||
        {
          sSet: s = 1;
        }
      coend;
    }
  )";
}

std::string producer_consumer() {
  return R"(
    var m; var buf; var full; var got;
    fun main() {
      cobegin
        {
          lock(m);
          buf = 42;
          full = 1;
          unlock(m);
        }
      ||
        {
          var done;
          while (done == 0) {
            lock(m);
            if (full == 1) { got = buf; done = 1; }
            unlock(m);
          }
        }
      coend;
    }
  )";
}

std::string peterson_mutex() {
  return R"(
    var flag0; var flag1; var turn; var in_cs; var done0; var done1;
    fun main() {
      cobegin
        {
          flag0 = 1;
          turn = 1;
          while (flag1 == 1 and turn == 1) { skip; }
          in_cs = in_cs + 1;
          sCS0: assert(in_cs == 1);
          in_cs = in_cs - 1;
          flag0 = 0;
          done0 = 1;
        }
      ||
        {
          flag1 = 1;
          turn = 0;
          while (flag0 == 1 and turn == 0) { skip; }
          in_cs = in_cs + 1;
          sCS1: assert(in_cs == 1);
          in_cs = in_cs - 1;
          flag1 = 0;
          done1 = 1;
        }
      coend;
    }
  )";
}

std::string peterson_broken() {
  // The naive test-then-set protocol: both threads can pass the wait before
  // either raises its flag, meeting in the critical section.
  return R"(
    var flag0; var flag1; var in_cs; var done0; var done1;
    fun main() {
      cobegin
        {
          while (flag1 == 1) { skip; }
          flag0 = 1;
          in_cs = in_cs + 1;
          sCS0: assert(in_cs == 1);
          in_cs = in_cs - 1;
          flag0 = 0;
          done0 = 1;
        }
      ||
        {
          while (flag0 == 1) { skip; }
          flag1 = 1;
          in_cs = in_cs + 1;
          sCS1: assert(in_cs == 1);
          in_cs = in_cs - 1;
          flag1 = 0;
          done1 = 1;
        }
      coend;
    }
  )";
}

}  // namespace copar::workload
