#include "src/apps/placement.h"

#include <sstream>

#include "src/analysis/common.h"

namespace copar::apps {

std::string_view memory_level_name(MemoryLevel level) {
  return level == MemoryLevel::Shared ? "shared" : "thread-local";
}

MemoryLevel Placement::level_of(std::uint32_t site) const {
  auto it = per_site.find(site);
  // Unknown sites are conservatively shared.
  return it == per_site.end() ? MemoryLevel::Shared : it->second;
}

MemoryLevel Placement::level_of(const sem::LoweredProgram& prog,
                                std::string_view label) const {
  const auto id = analysis::labeled_stmt(prog, label);
  require(id.has_value(), "placement: unknown label");
  return level_of(*id);
}

std::string Placement::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  for (const auto& [site, level] : per_site) {
    os << analysis::describe_stmt(prog, site) << ": " << memory_level_name(level) << '\n';
  }
  return os.str();
}

Placement place_objects(const analysis::Lifetimes& lifetimes) {
  Placement out;
  for (const auto& [site, info] : lifetimes.sites) {
    out.per_site[site] =
        info.shared_across_threads ? MemoryLevel::Shared : MemoryLevel::ThreadLocal;
  }
  return out;
}

Placement place_objects(const sem::LoweredProgram& prog) {
  return place_objects(analysis::analyze_lifetimes(prog));
}

}  // namespace copar::apps
