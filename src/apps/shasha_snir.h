// Shasha–Snir delay insertion [SS88], extended to procedure calls
// (the paper's Example 15 / Figure 8).
//
// Given a cobegin whose branches ("segments") run concurrently, sequential
// consistency is preserved by hardware/compiler reorderings as long as the
// union of enforced program arcs P and conflict arcs C is acyclic. The
// analysis finds the program-order pairs that participate in critical
// cycles: those pairs must be protected by delays (fences); every other
// same-segment pair may be freely reordered or parallelized.
//
// Conflicts are computed from abstract unit access sets, so a statement may
// be a call — its callee's transitive side effects count (this is exactly
// how the paper extends [SS88] "to procedure calls").
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/sem/lower.h"

namespace copar::apps {

struct DelayPair {
  std::uint32_t before = 0;  // statement id, earlier in program order
  std::uint32_t after = 0;
  friend auto operator<=>(const DelayPair&, const DelayPair&) = default;
};

struct SegmentConflict {
  std::uint32_t stmt1 = 0;  // in one segment
  std::uint32_t stmt2 = 0;  // in another
  friend auto operator<=>(const SegmentConflict&, const SegmentConflict&) = default;
};

class DelayAnalysis {
 public:
  /// Segments: the statement ids of each branch, in program order.
  std::vector<std::vector<std::uint32_t>> segments;
  /// Cross-segment conflict arcs (C).
  std::set<SegmentConflict> conflicts;
  /// Program-order pairs that must be enforced with delays: (u,v) such that
  /// v can reach u again through conflicts and other segments' program
  /// order — i.e. (u,v) lies on a critical cycle.
  std::set<DelayPair> delays;
  /// `delays` with pairs implied by transitivity of others removed.
  std::set<DelayPair> minimal_delays;

  /// A same-segment pair not in `delays` may be reordered/parallelized.
  [[nodiscard]] bool may_reorder(std::uint32_t u, std::uint32_t v) const {
    return !delays.contains(DelayPair{u, v}) && !delays.contains(DelayPair{v, u});
  }

  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

/// Analyzes the first cobegin found in `main` (or the cobegin labeled
/// `cobegin_label` if non-empty). Elementary statements of each branch form
/// the segments; calls are treated as units via their side effects.
DelayAnalysis analyze_delays(const sem::LoweredProgram& prog,
                             const absem::AbsResult<absdom::FlatInt>& abs,
                             std::string_view cobegin_label = "");

}  // namespace copar::apps
