// Compile-time deallocation lists ([Har89] via §5.3): for each function, the
// allocation sites whose objects never survive the function's activation —
// the compiler can free them at every exit of the function, removing
// garbage-collection pressure.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "src/analysis/lifetime.h"
#include "src/sem/lower.h"

namespace copar::apps {

class DeallocLists {
 public:
  /// function proc id -> alloc sites freeable at its exits.
  std::map<std::uint32_t, std::set<std::uint32_t>> per_function;

  [[nodiscard]] bool freeable_at(std::uint32_t fn, std::uint32_t site) const;
  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

/// Sites allocated lexically within each function (a cobegin branch's
/// allocations belong to the enclosing function) that do not escape their
/// creating activation.
DeallocLists dealloc_lists(const sem::LoweredProgram& prog,
                           const analysis::Lifetimes& lifetimes);

}  // namespace copar::apps
