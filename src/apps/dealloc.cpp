#include "src/apps/dealloc.h"

#include <sstream>

#include "src/analysis/common.h"

namespace copar::apps {

bool DeallocLists::freeable_at(std::uint32_t fn, std::uint32_t site) const {
  auto it = per_function.find(fn);
  return it != per_function.end() && it->second.contains(site);
}

std::string DeallocLists::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  for (const auto& [fn, sites] : per_function) {
    os << prog.proc(fn).name << " exit frees:";
    for (std::uint32_t s : sites) os << ' ' << analysis::describe_stmt(prog, s);
    os << '\n';
  }
  return os.str();
}

DeallocLists dealloc_lists(const sem::LoweredProgram& prog,
                           const analysis::Lifetimes& lifetimes) {
  DeallocLists out;
  for (const sem::Proc& p : prog.procs()) {
    for (const sem::Instr& instr : p.code) {
      if (instr.op != sem::Op::Alloc || instr.stmt == nullptr) continue;
      const std::uint32_t site = instr.stmt->id();
      const analysis::SiteLifetime* info = lifetimes.site(site);
      if (info == nullptr) continue;  // never executed
      if (info->escapes_creating_function) continue;
      out.per_function[p.owner_fn].insert(site);
    }
  }
  return out;
}

}  // namespace copar::apps
