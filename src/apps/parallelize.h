// Further parallelization of sequential statements (Example 15 / Figure 8):
// given a sequence of statements (typically calls), compute a dependence-
// preserving parallel schedule.
//
// Two shapes are produced:
//   - stages():   topological levels — statements within a level can run in
//                 a cobegin; levels run in sequence;
//   - chains():   a partition into sequential chains that can run as
//                 parallel threads (the paper's Figure 8 answer: with deps
//                 (s1,s4) and (s2,s3), {s1;s4} || {s2;s3} is legal).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/analysis/depend.h"
#include "src/sem/lower.h"

namespace copar::apps {

class ParallelSchedule {
 public:
  std::vector<std::uint32_t> ordered;        // input statements, program order
  analysis::Dependences deps;                // directional (program order)
  std::vector<std::vector<std::uint32_t>> stages;
  std::vector<std::vector<std::uint32_t>> chains;

  /// True if u and v have no dependence path between them — they may run in
  /// parallel.
  [[nodiscard]] bool independent(std::uint32_t u, std::uint32_t v) const;

  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

/// Schedules the given statements (ids, in program order).
ParallelSchedule parallelize(const std::vector<std::uint32_t>& ordered,
                             const absem::AbsResult<absdom::FlatInt>& abs);

/// Convenience: schedules the statements labeled `labels` (in that order).
ParallelSchedule parallelize_labeled(const sem::LoweredProgram& prog,
                                     const absem::AbsResult<absdom::FlatInt>& abs,
                                     const std::vector<std::string>& labels);

}  // namespace copar::apps
