// Source-to-source transformation: applying the §7 optimizations.
//
// The analyses license restructurings; this module performs them as text
// rewrites of the (pretty-printed) program and — crucially — the test suite
// machine-checks *semantic equivalence* by comparing the observable
// terminal outcomes of the original and transformed programs under full
// exploration. That closing of the loop (analyze → transform → re-verify)
// is what "the information obtained facilitates program optimization"
// amounts to in practice.
#pragma once

#include <string>

#include "src/apps/parallelize.h"
#include "src/sem/lower.h"

namespace copar::apps {

/// Rewrites `main` so that the scheduled statements run as parallel chains:
/// the contiguous run of statements covered by `schedule.ordered` is
/// replaced with `cobegin { chain1 } || { chain2 } ... coend`. Statements
/// must be top-level statements of main, in program order. Returns the new
/// program source.
std::string rewrite_as_parallel_chains(const sem::LoweredProgram& prog,
                                       const ParallelSchedule& schedule);

/// Observable-equivalence check: both sources are compiled and fully
/// explored; returns true if the multisets of terminal global-variable
/// valuations coincide (and neither deadlocks/faults unless the other
/// does). Used by tests and by callers that want a verified transform.
bool observably_equivalent(std::string_view source_a, std::string_view source_b);

}  // namespace copar::apps
