#include "src/apps/constprop.h"

#include "src/analysis/common.h"

namespace copar::apps {

namespace {

/// Joins the stores of every abstract point whose instruction belongs to
/// the statement; nullopt if the statement was never reached.
std::optional<absem::AbsStore<absdom::FlatInt>> store_at_stmt(
    const sem::LoweredProgram& prog, const absem::AbsResult<absdom::FlatInt>& result,
    std::uint32_t stmt_id) {
  std::optional<absem::AbsStore<absdom::FlatInt>> acc;
  for (const auto& [point, store] : result.point_stores) {
    const auto& code = prog.proc(point.first).code;
    if (point.second >= code.size()) continue;
    const sem::Instr& instr = code[point.second];
    if (instr.stmt == nullptr || instr.stmt->id() != stmt_id) continue;
    if (!acc.has_value()) {
      acc = store;
    } else {
      acc = acc->join(store);
    }
  }
  return acc;
}

}  // namespace

std::optional<std::int64_t> Constants::global_at(std::string_view label,
                                                 std::string_view name) const {
  const auto stmt = analysis::labeled_stmt(*prog_, label);
  const auto slot = analysis::global_slot(*prog_, name);
  if (!stmt.has_value() || !slot.has_value()) return std::nullopt;
  const auto store = store_at_stmt(*prog_, result_, *stmt);
  if (!store.has_value()) return std::nullopt;
  auto v = store->get(absem::AbsLoc::global(*slot));
  if (v.is_bottom()) return 0;  // never written: still the initial 0
  if (v.may_null || !v.ptrs.is_bottom() || !v.fns.is_bottom()) return std::nullopt;
  return v.num.as_constant();
}

bool Constants::reachable(std::string_view label) const {
  const auto stmt = analysis::labeled_stmt(*prog_, label);
  if (!stmt.has_value()) return false;
  return store_at_stmt(*prog_, result_, *stmt).has_value();
}

Constants analyze_constants(const sem::LoweredProgram& prog) {
  absem::AbsExplorer<absdom::FlatInt> engine(prog, absem::AbsOptions{});
  return Constants(prog, engine.run());
}

}  // namespace copar::apps
