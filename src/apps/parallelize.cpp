#include "src/apps/parallelize.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/analysis/common.h"

namespace copar::apps {

bool ParallelSchedule::independent(std::uint32_t u, std::uint32_t v) const {
  // Dependence reachability over the (acyclic, program-ordered) edges.
  auto reaches = [&](std::uint32_t from, std::uint32_t to) {
    std::set<std::uint32_t> seen = {from};
    std::vector<std::uint32_t> work = {from};
    while (!work.empty()) {
      const std::uint32_t cur = work.back();
      work.pop_back();
      if (cur == to) return true;
      for (const analysis::Dependence& d : deps.deps) {
        if (d.src == cur && seen.insert(d.dst).second) work.push_back(d.dst);
      }
    }
    return false;
  };
  return !reaches(u, v) && !reaches(v, u);
}

ParallelSchedule parallelize(const std::vector<std::uint32_t>& ordered,
                             const absem::AbsResult<absdom::FlatInt>& abs) {
  ParallelSchedule out;
  out.ordered = ordered;
  out.deps = analysis::sequential_dependences(ordered, abs);

  // Topological levels (stage = all statements whose predecessors are done).
  std::map<std::uint32_t, std::size_t> level;
  for (std::uint32_t s : ordered) {
    std::size_t lv = 0;
    for (const analysis::Dependence& d : out.deps.deps) {
      if (d.dst == s) {
        auto it = level.find(d.src);
        if (it != level.end()) lv = std::max(lv, it->second + 1);
      }
    }
    level[s] = lv;
    if (out.stages.size() <= lv) out.stages.resize(lv + 1);
    out.stages[lv].push_back(s);
  }

  // Greedy chain decomposition: repeatedly extend a chain with the first
  // unassigned statement depending (directly) on the chain's tail, keeping
  // every dependence inside some chain where possible.
  std::set<std::uint32_t> assigned;
  for (std::uint32_t s : ordered) {
    if (assigned.contains(s)) continue;
    std::vector<std::uint32_t> chain = {s};
    assigned.insert(s);
    bool extended = true;
    while (extended) {
      extended = false;
      for (std::uint32_t t : ordered) {
        if (assigned.contains(t)) continue;
        const bool direct_dep =
            out.deps.deps.contains(analysis::Dependence{chain.back(), t,
                                                        analysis::DepKind::Flow}) ||
            out.deps.deps.contains(analysis::Dependence{chain.back(), t,
                                                        analysis::DepKind::Anti}) ||
            out.deps.deps.contains(analysis::Dependence{chain.back(), t,
                                                        analysis::DepKind::Output});
        if (direct_dep) {
          chain.push_back(t);
          assigned.insert(t);
          extended = true;
          break;
        }
      }
    }
    out.chains.push_back(std::move(chain));
  }
  return out;
}

ParallelSchedule parallelize_labeled(const sem::LoweredProgram& prog,
                                     const absem::AbsResult<absdom::FlatInt>& abs,
                                     const std::vector<std::string>& labels) {
  std::vector<std::uint32_t> ordered;
  for (const std::string& label : labels) {
    const auto id = analysis::labeled_stmt(prog, label);
    require(id.has_value(), "parallelize: unknown label " + label);
    ordered.push_back(*id);
  }
  return parallelize(ordered, abs);
}

std::string ParallelSchedule::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  os << "dependences:\n" << deps.report(prog);
  os << "stages:\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    os << "  stage " << i << ":";
    for (std::uint32_t s : stages[i]) os << ' ' << analysis::describe_stmt(prog, s);
    os << '\n';
  }
  os << "parallel chains: cobegin\n";
  for (std::size_t i = 0; i < chains.size(); ++i) {
    if (i > 0) os << "  ||\n";
    os << "  {";
    for (std::uint32_t s : chains[i]) os << ' ' << analysis::describe_stmt(prog, s) << ';';
    os << " }\n";
  }
  os << "coend\n";
  return os.str();
}

}  // namespace copar::apps
