// Memory-hierarchy placement (§7): "suppose each cobegin thread is executed
// in a processor. If we know an object will be referenced by another
// concurrent thread, then it should be allocated in the memory accessible
// to both threads" — otherwise it can live in processor-local memory.
//
// This reproduces the paper's closing example: b1 (touched by both threads)
// goes to the shared level, b2 stays local.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/analysis/lifetime.h"
#include "src/sem/lower.h"

namespace copar::apps {

enum class MemoryLevel : std::uint8_t { ThreadLocal, Shared };

std::string_view memory_level_name(MemoryLevel level);

class Placement {
 public:
  std::map<std::uint32_t, MemoryLevel> per_site;  // alloc stmt id -> level

  [[nodiscard]] MemoryLevel level_of(std::uint32_t site) const;
  [[nodiscard]] MemoryLevel level_of(const sem::LoweredProgram& prog,
                                     std::string_view label) const;

  [[nodiscard]] std::string report(const sem::LoweredProgram& prog) const;
};

/// Derives placement from the lifetime analysis.
Placement place_objects(const analysis::Lifetimes& lifetimes);

/// Convenience: run the lifetime analysis and place.
Placement place_objects(const sem::LoweredProgram& prog);

}  // namespace copar::apps
