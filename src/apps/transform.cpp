#include "src/apps/transform.h"

#include <map>
#include <sstream>

#include "src/explore/explorer.h"
#include "src/lang/printer.h"
#include "src/sem/program.h"

namespace copar::apps {

namespace {

/// Renders a terminal configuration's observable valuation: every declared
/// (non-function) global, by name. Pointer identities are not comparable
/// across programs, so pointers render coarsely.
std::string valuation(const sem::LoweredProgram& prog, const sem::Configuration& cfg) {
  std::ostringstream os;
  for (const sem::GlobalSlot& g : prog.globals()) {
    if (g.fun != nullptr) continue;
    const sem::Value v = cfg.store.read(0, g.slot);
    os << prog.module().interner().spelling(g.name) << '=';
    if (v.is_ptr()) {
      os << "<ptr>";
    } else {
      os << v.to_string();
    }
    os << ';';
  }
  return os.str();
}

}  // namespace

std::string rewrite_as_parallel_chains(const sem::LoweredProgram& prog,
                                       const ParallelSchedule& schedule) {
  const lang::Module& module = prog.module();
  const lang::FunDecl* main_fn = module.find_function("main");
  require(main_fn != nullptr, "rewrite: no main");

  // The scheduled statements must be top-level statements of main.
  std::map<std::uint32_t, const lang::Stmt*> by_id;
  for (const auto& s : main_fn->body().stmts()) by_id[s->id()] = s.get();
  for (std::uint32_t id : schedule.ordered) {
    require(by_id.contains(id), "rewrite: scheduled statement is not top-level in main");
  }
  const std::set<std::uint32_t> covered(schedule.ordered.begin(), schedule.ordered.end());

  std::ostringstream os;
  for (const lang::GlobalDecl& g : module.globals()) {
    os << "var " << module.interner().spelling(g.name);
    if (g.init != nullptr) os << " = " << lang::print_expr(module, *g.init);
    os << ";\n";
  }
  for (const auto& f : module.functions()) {
    if (!f->name().valid()) continue;  // lambdas print at use sites
    if (module.interner().spelling(f->name()) == "main") continue;
    os << "fun " << module.interner().spelling(f->name()) << "(";
    for (std::size_t i = 0; i < f->params().size(); ++i) {
      if (i > 0) os << ", ";
      os << module.interner().spelling(f->params()[i]);
    }
    os << ") " << lang::print_stmt(module, f->body());
  }

  os << "fun main() {\n";
  bool emitted_cobegin = false;
  for (const auto& s : main_fn->body().stmts()) {
    if (covered.contains(s->id())) {
      if (!emitted_cobegin) {
        emitted_cobegin = true;
        os << "  cobegin\n";
        for (std::size_t c = 0; c < schedule.chains.size(); ++c) {
          if (c > 0) os << "  ||\n";
          os << "  {\n";
          for (std::uint32_t id : schedule.chains[c]) {
            os << lang::print_stmt(module, *by_id.at(id), 2);
          }
          os << "  }\n";
        }
        os << "  coend;\n";
      }
      continue;  // consumed by the cobegin
    }
    os << lang::print_stmt(module, *s, 1);
  }
  os << "}\n";
  return os.str();
}

bool observably_equivalent(std::string_view source_a, std::string_view source_b) {
  auto pa = compile(source_a);
  auto pb = compile(source_b);
  explore::ExploreOptions opts;
  const auto ra = explore::explore(*pa->lowered, opts);
  const auto rb = explore::explore(*pb->lowered, opts);
  if (ra.truncated || rb.truncated) return false;
  if (ra.deadlock_found != rb.deadlock_found) return false;
  if (ra.faults.empty() != rb.faults.empty()) return false;
  if (ra.violations.empty() != rb.violations.empty()) return false;

  std::set<std::string> va;
  for (const auto& [key, t] : ra.terminals) va.insert(valuation(*pa->lowered, t.config));
  std::set<std::string> vb;
  for (const auto& [key, t] : rb.terminals) vb.insert(valuation(*pb->lowered, t.config));
  return va == vb;
}

}  // namespace copar::apps
