#include "src/apps/shasha_snir.h"

#include <map>
#include <sstream>

#include "src/analysis/common.h"
#include "src/analysis/depend.h"
#include "src/lang/ast.h"

namespace copar::apps {

namespace {

using lang::Stmt;
using lang::StmtKind;

/// Preorder collection of elementary statement ids in a branch. The
/// [SS88] model is straight-line code; control structure is flattened into
/// syntactic order, which over-approximates the execution orders.
void collect_stmts(const Stmt& s, std::vector<std::uint32_t>& out) {
  switch (s.kind()) {
    case StmtKind::Block:
      for (const auto& inner : lang::stmt_cast<lang::Block>(s).stmts()) {
        collect_stmts(*inner, out);
      }
      break;
    case StmtKind::VarDecl:
      break;  // lowers to nothing
    case StmtKind::If: {
      const auto& i = lang::stmt_cast<lang::IfStmt>(s);
      out.push_back(s.id());
      collect_stmts(i.then_branch(), out);
      if (i.else_branch() != nullptr) collect_stmts(*i.else_branch(), out);
      break;
    }
    case StmtKind::While: {
      out.push_back(s.id());
      collect_stmts(lang::stmt_cast<lang::WhileStmt>(s).body(), out);
      break;
    }
    case StmtKind::Cobegin: {
      out.push_back(s.id());
      for (const auto& b : lang::stmt_cast<lang::CobeginStmt>(s).branches()) {
        collect_stmts(*b, out);
      }
      break;
    }
    default:
      out.push_back(s.id());
      break;
  }
}

const lang::CobeginStmt* find_cobegin(const Stmt& s, std::string_view label,
                                      const lang::Module& module) {
  if (s.kind() == StmtKind::Cobegin) {
    if (label.empty() ||
        (s.label().valid() && module.interner().spelling(s.label()) == label)) {
      return &lang::stmt_cast<lang::CobeginStmt>(s);
    }
  }
  switch (s.kind()) {
    case StmtKind::Block:
      for (const auto& inner : lang::stmt_cast<lang::Block>(s).stmts()) {
        if (const auto* found = find_cobegin(*inner, label, module)) return found;
      }
      break;
    case StmtKind::If: {
      const auto& i = lang::stmt_cast<lang::IfStmt>(s);
      if (const auto* found = find_cobegin(i.then_branch(), label, module)) return found;
      if (i.else_branch() != nullptr) {
        if (const auto* found = find_cobegin(*i.else_branch(), label, module)) return found;
      }
      break;
    }
    case StmtKind::While:
      return find_cobegin(lang::stmt_cast<lang::WhileStmt>(s).body(), label, module);
    case StmtKind::Cobegin:
      for (const auto& b : lang::stmt_cast<lang::CobeginStmt>(s).branches()) {
        if (const auto* found = find_cobegin(*b, label, module)) return found;
      }
      break;
    default:
      break;
  }
  return nullptr;
}

}  // namespace

DelayAnalysis analyze_delays(const sem::LoweredProgram& prog,
                             const absem::AbsResult<absdom::FlatInt>& abs,
                             std::string_view cobegin_label) {
  DelayAnalysis out;
  const lang::FunDecl* main_fn = prog.module().find_function("main");
  require(main_fn != nullptr, "analyze_delays: no main");
  const lang::CobeginStmt* cb = find_cobegin(main_fn->body(), cobegin_label, prog.module());
  require(cb != nullptr, "analyze_delays: no cobegin found");

  for (const auto& branch : cb->branches()) {
    std::vector<std::uint32_t> stmts;
    collect_stmts(*branch, stmts);
    out.segments.push_back(std::move(stmts));
  }

  // Unit access sets (calls expanded to their side effects).
  std::map<std::uint32_t, analysis::UnitAccesses> units;
  std::map<std::uint32_t, std::size_t> segment_of;
  for (std::size_t seg = 0; seg < out.segments.size(); ++seg) {
    for (std::uint32_t s : out.segments[seg]) {
      units.emplace(s, analysis::unit_accesses(abs, s));
      segment_of[s] = seg;
    }
  }

  // Conflict arcs C between different segments.
  for (std::size_t i = 0; i < out.segments.size(); ++i) {
    for (std::size_t j = i + 1; j < out.segments.size(); ++j) {
      for (std::uint32_t u : out.segments[i]) {
        for (std::uint32_t v : out.segments[j]) {
          if (units.at(u).conflicts(units.at(v))) {
            out.conflicts.insert(SegmentConflict{u, v});
          }
        }
      }
    }
  }

  // Adjacency: C edges (both ways) plus program arcs of segments other than
  // a designated one. For each segment S and each ordered pair (u, v) in S,
  // (u,v) needs a delay iff v reaches u without using S's program arcs —
  // then u ->P v closes a cycle in P ∪ C (a critical cycle, conservatively).
  std::map<std::uint32_t, std::vector<std::uint32_t>> conflict_adj;
  for (const SegmentConflict& c : out.conflicts) {
    conflict_adj[c.stmt1].push_back(c.stmt2);
    conflict_adj[c.stmt2].push_back(c.stmt1);
  }

  for (std::size_t seg = 0; seg < out.segments.size(); ++seg) {
    const auto& stmts = out.segments[seg];
    // BFS in C ∪ P(other segments) from each v.
    auto reaches = [&](std::uint32_t from, std::uint32_t target) {
      std::set<std::uint32_t> seen = {from};
      std::vector<std::uint32_t> work = {from};
      while (!work.empty()) {
        const std::uint32_t cur = work.back();
        work.pop_back();
        if (cur == target) return true;
        if (auto it = conflict_adj.find(cur); it != conflict_adj.end()) {
          for (std::uint32_t next : it->second) {
            if (seen.insert(next).second) work.push_back(next);
          }
        }
        // Program arc within a segment other than `seg`.
        const auto sit = segment_of.find(cur);
        if (sit != segment_of.end() && sit->second != seg) {
          const auto& other = out.segments[sit->second];
          for (std::size_t k = 0; k + 1 < other.size(); ++k) {
            if (other[k] == cur && seen.insert(other[k + 1]).second) {
              work.push_back(other[k + 1]);
            }
          }
        }
      }
      return false;
    };
    for (std::size_t a = 0; a < stmts.size(); ++a) {
      for (std::size_t b = a + 1; b < stmts.size(); ++b) {
        if (reaches(stmts[b], stmts[a])) {
          out.delays.insert(DelayPair{stmts[a], stmts[b]});
        }
      }
    }
  }

  // Minimality: drop pairs implied by chaining two retained pairs.
  out.minimal_delays = out.delays;
  for (const DelayPair& p : out.delays) {
    for (const DelayPair& q : out.delays) {
      if (p.after == q.before && p.before != q.after) {
        out.minimal_delays.erase(DelayPair{p.before, q.after});
      }
    }
  }
  return out;
}

std::string DelayAnalysis::report(const sem::LoweredProgram& prog) const {
  std::ostringstream os;
  os << segments.size() << " segments\n";
  os << "conflicts:\n";
  for (const SegmentConflict& c : conflicts) {
    os << "  " << analysis::describe_stmt(prog, c.stmt1) << " -- "
       << analysis::describe_stmt(prog, c.stmt2) << '\n';
  }
  os << "delays required:\n";
  for (const DelayPair& d : minimal_delays) {
    os << "  " << analysis::describe_stmt(prog, d.before) << " < "
       << analysis::describe_stmt(prog, d.after) << '\n';
  }
  return os.str();
}

}  // namespace copar::apps
