// Parallel-safe constant propagation (§1/§7).
//
// The paper's opening example: a naive sequential constant propagator folds
// `while (s == 0)` into an infinite loop because it cannot see the
// concurrent thread that sets s. This module answers constantness queries
// from the abstract exploration, which accounts for every interleaving, so
// a "constant" answer is safe to fold even in parallel code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/sem/lower.h"

namespace copar::apps {

class Constants {
 public:
  Constants(const sem::LoweredProgram& prog, absem::AbsResult<absdom::FlatInt> result)
      : prog_(&prog), result_(std::move(result)) {}

  /// The value of global `name` observable at the statement labeled
  /// `label`, if it is the same constant on every interleaving.
  [[nodiscard]] std::optional<std::int64_t> global_at(std::string_view label,
                                                      std::string_view name) const;

  /// True if the labeled statement is reachable at all (dead parallel code
  /// elimination).
  [[nodiscard]] bool reachable(std::string_view label) const;

  [[nodiscard]] const absem::AbsResult<absdom::FlatInt>& result() const { return result_; }

 private:
  const sem::LoweredProgram* prog_;
  absem::AbsResult<absdom::FlatInt> result_;
};

/// Runs the abstract exploration (Tree folding) and wraps it for queries.
Constants analyze_constants(const sem::LoweredProgram& prog);

}  // namespace copar::apps
