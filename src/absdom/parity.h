// The parity lattice: the powerset of {even, odd} ordered by inclusion.
//
//        {even,odd} = ⊤
//        {even}  {odd}
//            {} = ⊥
//
// A fourth plug-in numeric domain demonstrating the framework's domain
// axis; it satisfies the same NumDomain concept as flat/interval/sign.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/absdom/cmpop.h"

namespace copar::absdom {

class Parity {
 public:
  static constexpr std::uint8_t kEven = 1;
  static constexpr std::uint8_t kOdd = 2;

  static Parity bottom() { return Parity(0); }
  static Parity top() { return Parity(kEven | kOdd); }
  static Parity constant(std::int64_t v) { return Parity((v % 2) == 0 ? kEven : kOdd); }
  static Parity from_bits(std::uint8_t bits) { return Parity(bits & 3); }

  [[nodiscard]] bool is_bottom() const { return bits_ == 0; }
  [[nodiscard]] bool is_top() const { return bits_ == 3; }
  [[nodiscard]] std::uint8_t bits() const { return bits_; }
  /// Parity never pins a single value.
  [[nodiscard]] std::optional<std::int64_t> as_constant() const { return std::nullopt; }

  [[nodiscard]] Parity join(const Parity& o) const { return Parity(bits_ | o.bits_); }
  [[nodiscard]] Parity widen(const Parity& o) const { return join(o); }
  [[nodiscard]] bool leq(const Parity& o) const { return (bits_ & ~o.bits_) == 0; }
  friend bool operator==(const Parity&, const Parity&) = default;

  static Parity add(const Parity& a, const Parity& b) {
    return combine(a, b, [](int pa, int pb) { return (pa + pb) % 2; });
  }
  static Parity sub(const Parity& a, const Parity& b) { return add(a, b); }
  static Parity mul(const Parity& a, const Parity& b) {
    return combine(a, b, [](int pa, int pb) { return (pa * pb) % 2; });
  }
  /// Truncating division does not respect parity.
  static Parity div(const Parity& a, const Parity& b) {
    if (a.is_bottom() || b.is_bottom()) return bottom();
    return top();
  }
  /// x % y preserves nothing useful in general (sign interplay): top.
  static Parity mod(const Parity& a, const Parity& b) {
    if (a.is_bottom() || b.is_bottom()) return bottom();
    return top();
  }
  static Parity cmp(const Parity& a, const Parity& b,
                    bool (*pred)(std::int64_t, std::int64_t)) {
    if (a.is_bottom() || b.is_bottom()) return bottom();
    // Orderings are undecidable from parity alone except equality between
    // disjoint parities.
    bool can_true = false;
    bool can_false = false;
    a.for_each([&](int pa) {
      b.for_each([&](int pb) {
        // Representatives: pa/pb plus shifted representatives to cover
        // ordering outcomes.
        for (std::int64_t x : {std::int64_t{pa}, std::int64_t{pa + 2}, std::int64_t{pa - 2}}) {
          for (std::int64_t y :
               {std::int64_t{pb}, std::int64_t{pb + 2}, std::int64_t{pb - 2}}) {
            (pred(x, y) ? can_true : can_false) = true;
          }
        }
      });
    });
    std::uint8_t bits = 0;
    if (can_true) bits |= kOdd;   // 1 is odd
    if (can_false) bits |= kEven;  // 0 is even
    return Parity(bits);
  }
  static Parity refine_cmp(const Parity& v, CmpOp op, const Parity& rhs, bool want_true) {
    if (v.is_bottom() || rhs.is_bottom()) return bottom();
    if (!want_true) op = absdom::negate(op);
    // Equality against a single-parity value keeps only that parity.
    if (op == CmpOp::Eq && !rhs.is_top()) return Parity(v.bits_ & rhs.bits_);
    return v;
  }

  [[nodiscard]] bool may_be_truthy() const { return bits_ != 0; }  // any nonzero even/odd
  [[nodiscard]] bool may_be_falsy() const { return (bits_ & kEven) != 0; }  // 0 is even

  [[nodiscard]] std::string to_string() const {
    if (is_bottom()) return "⊥";
    if (is_top()) return "⊤";
    return (bits_ & kEven) != 0 ? "even" : "odd";
  }

 private:
  explicit Parity(std::uint8_t bits) : bits_(bits) {}

  template <typename F>
  static Parity combine(const Parity& a, const Parity& b, F&& f) {
    Parity out = bottom();
    a.for_each([&](int pa) {
      b.for_each([&](int pb) { out.bits_ |= (f(pa, pb) == 0 ? kEven : kOdd); });
    });
    return out;
  }

  template <typename F>
  void for_each(F&& f) const {
    if (bits_ & kEven) f(0);
    if (bits_ & kOdd) f(1);
  }

  std::uint8_t bits_;
};

}  // namespace copar::absdom
