// Galois-connection and lattice-law checkers.
//
// Abstract interpretation's correctness argument rests on (α, γ) pairs and
// on the domains actually being lattices. These helpers let the test suite
// verify the laws on concrete samples — the practical counterpart of the
// paper's "the correctness of analysis can be proved formally and easily if
// we follow some existing framework".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/absdom/lattice.h"

namespace copar::absdom {

/// Result of a law check: empty `violation` means the law held on the
/// sample.
struct LawCheck {
  bool ok = true;
  std::string violation;
};

/// Checks semilattice laws (commutativity, associativity, idempotence,
/// join-consistency with leq, bottom neutrality) on a sample of elements.
template <JoinSemiLattice D>
LawCheck check_lattice_laws(const std::vector<D>& sample) {
  auto fail = [](std::string msg) { return LawCheck{false, std::move(msg)}; };
  const D bot = D::bottom();
  for (const D& a : sample) {
    if (!(a.join(a) == a)) return fail("join not idempotent");
    if (!(a.join(bot) == a)) return fail("bottom not neutral");
    if (!bot.leq(a)) return fail("bottom not least");
    if (!a.leq(a)) return fail("leq not reflexive");
    for (const D& b : sample) {
      if (!(a.join(b) == b.join(a))) return fail("join not commutative");
      if (!a.leq(a.join(b))) return fail("join not an upper bound");
      if (a.leq(b) && !(a.join(b) == b)) return fail("leq inconsistent with join");
      for (const D& c : sample) {
        if (!(a.join(b).join(c) == a.join(b.join(c)))) return fail("join not associative");
        if (a.leq(b) && b.leq(c) && !a.leq(c)) return fail("leq not transitive");
      }
    }
  }
  return LawCheck{};
}

/// Checks the soundness half of a Galois connection on samples: for every
/// concrete c, c must be described by γ(α(c)); expressed via a user-supplied
/// `models(c, abstract)` relation and abstraction function `alpha`.
template <typename C, JoinSemiLattice D>
LawCheck check_abstraction_sound(const std::vector<C>& concretes,
                                 const std::function<D(const C&)>& alpha,
                                 const std::function<bool(const C&, const D&)>& models) {
  for (const C& c : concretes) {
    const D a = alpha(c);
    if (!models(c, a)) return LawCheck{false, "alpha(c) does not describe c"};
    // Monotone safety: anything above alpha(c) must still describe c.
    for (const C& other : concretes) {
      const D bigger = a.join(alpha(other));
      if (!models(c, bigger)) {
        return LawCheck{false, "join with another abstraction lost c"};
      }
    }
  }
  return LawCheck{};
}

/// Checks that a binary abstract operator soundly over-approximates a
/// concrete operator on sampled pairs.
template <JoinSemiLattice D>
LawCheck check_binop_sound(
    const std::vector<std::int64_t>& ints, const std::function<D(std::int64_t)>& alpha,
    const std::function<bool(std::int64_t, const D&)>& models,
    const std::function<D(const D&, const D&)>& abs_op,
    const std::function<std::optional<std::int64_t>(std::int64_t, std::int64_t)>& conc_op) {
  for (std::int64_t x : ints) {
    for (std::int64_t y : ints) {
      const auto r = conc_op(x, y);
      if (!r.has_value()) continue;  // undefined concretely (e.g. div by 0)
      const D abs = abs_op(alpha(x), alpha(y));
      if (!models(*r, abs)) {
        return LawCheck{false, "abstract op lost " + std::to_string(x) + " op " +
                                   std::to_string(y) + " = " + std::to_string(*r)};
      }
    }
  }
  return LawCheck{};
}

}  // namespace copar::absdom
