// Generic worklist fixpoint solver.
//
// Solves X[n] ⊒ F(n, X) for a finite set of nodes with monotone transfer
// functions, in the standard chaotic-iteration style. The abstract
// exploration of src/absem is one instance; dataflow-style analyses are
// another.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/absdom/lattice.h"

namespace copar::absdom {

/// Statistics from one solver run.
struct FixpointStats {
  std::uint64_t iterations = 0;  // node evaluations
  std::uint64_t changes = 0;     // evaluations whose value grew
};

/// Solver over node ids [0, n). `transfer(node, read)` computes the new
/// value of `node` given read access to the current assignment; `deps(node)`
/// lists the nodes whose value `node`'s transfer reads (its predecessors),
/// so successors are re-queued on change.
template <JoinSemiLattice V>
class FixpointSolver {
 public:
  using ReadFn = std::function<const V&(std::size_t)>;
  using TransferFn = std::function<V(std::size_t, const ReadFn&)>;

  explicit FixpointSolver(std::size_t num_nodes)
      : values_(num_nodes, V::bottom()), succs_(num_nodes) {}

  /// Declares that a change of `from` must re-evaluate `to`.
  void add_edge(std::size_t from, std::size_t to) { succs_[from].push_back(to); }

  void seed(std::size_t node, V v) { values_[node] = values_[node].join(v); }

  FixpointStats solve(const TransferFn& transfer, bool use_widening = false) {
    FixpointStats stats;
    // Canonicalize successor lists so the requeue order depends only on the
    // node ids, not on the order (or multiplicity) of add_edge calls —
    // solver results and iteration trajectories are reproducible.
    for (auto& succs : succs_) {
      std::sort(succs.begin(), succs.end());
      succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    }
    std::deque<std::size_t> work;
    std::vector<char> queued(values_.size(), 1);
    for (std::size_t n = 0; n < values_.size(); ++n) work.push_back(n);

    const ReadFn read = [this](std::size_t n) -> const V& { return values_[n]; };

    while (!work.empty()) {
      const std::size_t n = work.front();
      work.pop_front();
      queued[n] = 0;
      ++stats.iterations;
      V next = transfer(n, read);
      bool grew = false;
      if constexpr (WidenableLattice<V>) {
        grew = use_widening ? widen_into(values_[n], next) : join_into(values_[n], next);
      } else {
        grew = join_into(values_[n], next);
      }
      if (grew) {
        ++stats.changes;
        for (std::size_t s : succs_[n]) {
          if (queued[s] == 0) {
            queued[s] = 1;
            work.push_back(s);
          }
        }
      }
    }
    return stats;
  }

  [[nodiscard]] const V& value(std::size_t node) const { return values_[node]; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::vector<V> values_;
  std::vector<std::vector<std::size_t>> succs_;
};

}  // namespace copar::absdom
