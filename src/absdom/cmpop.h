// Comparison operators as data (for branch-condition refinement).
//
// The abstract semantics refines stores along branch outcomes: taking the
// true edge of `if (x < e)` lets the numeric domain shrink x's value. Each
// domain implements `refine_cmp(v, op, rhs, want_true)` — the best value
// below v consistent with `v op rhs` having the requested outcome; sound
// default is returning v unchanged.
#pragma once

#include <cstdint>

namespace copar::absdom {

enum class CmpOp : std::uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

/// The mirrored operator: (x op y) == (y mirror(op) x).
constexpr CmpOp mirror(CmpOp op) {
  switch (op) {
    case CmpOp::Lt: return CmpOp::Gt;
    case CmpOp::Le: return CmpOp::Ge;
    case CmpOp::Gt: return CmpOp::Lt;
    case CmpOp::Ge: return CmpOp::Le;
    case CmpOp::Eq: return CmpOp::Eq;
    case CmpOp::Ne: return CmpOp::Ne;
  }
  return op;
}

/// The operator whose truth is the negation: !(x op y) == (x negate(op) y).
constexpr CmpOp negate(CmpOp op) {
  switch (op) {
    case CmpOp::Lt: return CmpOp::Ge;
    case CmpOp::Le: return CmpOp::Gt;
    case CmpOp::Gt: return CmpOp::Le;
    case CmpOp::Ge: return CmpOp::Lt;
    case CmpOp::Eq: return CmpOp::Ne;
    case CmpOp::Ne: return CmpOp::Eq;
  }
  return op;
}

constexpr bool eval_cmp(CmpOp op, std::int64_t x, std::int64_t y) {
  switch (op) {
    case CmpOp::Lt: return x < y;
    case CmpOp::Le: return x <= y;
    case CmpOp::Gt: return x > y;
    case CmpOp::Ge: return x >= y;
    case CmpOp::Eq: return x == y;
    case CmpOp::Ne: return x != y;
  }
  return false;
}

}  // namespace copar::absdom
