// The flat ("constant propagation") lattice over 64-bit integers:
//
//        ⊤
//   ... -1 0 1 2 ...
//        ⊥
//
// The default numeric domain of the abstract semantics; it is what makes
// parallel-safe constant propagation (§7) expressible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/absdom/cmpop.h"

namespace copar::absdom {

class FlatInt {
 public:
  static FlatInt bottom() { return FlatInt(State::Bottom, 0); }
  static FlatInt top() { return FlatInt(State::Top, 0); }
  static FlatInt constant(std::int64_t v) { return FlatInt(State::Const, v); }

  [[nodiscard]] bool is_bottom() const { return state_ == State::Bottom; }
  [[nodiscard]] bool is_top() const { return state_ == State::Top; }
  [[nodiscard]] std::optional<std::int64_t> as_constant() const {
    if (state_ == State::Const) return value_;
    return std::nullopt;
  }

  [[nodiscard]] FlatInt join(const FlatInt& o) const {
    if (is_bottom()) return o;
    if (o.is_bottom()) return *this;
    if (*this == o) return *this;
    return top();
  }

  /// Finite height: widening is join.
  [[nodiscard]] FlatInt widen(const FlatInt& o) const { return join(o); }

  /// Narrowing companion (widened.narrow(next) with next ⊑ widened): only
  /// a ⊤ produced by widening can be refined.
  [[nodiscard]] FlatInt narrow(const FlatInt& o) const {
    if (is_top()) return o;
    return *this;
  }

  [[nodiscard]] bool leq(const FlatInt& o) const {
    if (is_bottom()) return true;
    if (o.is_top()) return true;
    return *this == o;
  }

  friend bool operator==(const FlatInt&, const FlatInt&) = default;

  // --- abstract arithmetic (strict in bottom, otherwise best transformer) --
  template <typename F>
  static FlatInt lift(const FlatInt& a, const FlatInt& b, F&& f) {
    if (a.is_bottom() || b.is_bottom()) return bottom();
    if (auto x = a.as_constant()) {
      if (auto y = b.as_constant()) {
        if (auto r = f(*x, *y)) return constant(*r);
      }
    }
    return top();
  }

  static FlatInt add(const FlatInt& a, const FlatInt& b) {
    return lift(a, b, [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> {
      return x + y;
    });
  }
  static FlatInt sub(const FlatInt& a, const FlatInt& b) {
    return lift(a, b, [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> {
      return x - y;
    });
  }
  static FlatInt mul(const FlatInt& a, const FlatInt& b) {
    return lift(a, b, [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> {
      return x * y;
    });
  }
  static FlatInt div(const FlatInt& a, const FlatInt& b) {
    return lift(a, b, [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> {
      if (y == 0) return std::nullopt;
      return x / y;
    });
  }
  static FlatInt mod(const FlatInt& a, const FlatInt& b) {
    return lift(a, b, [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> {
      if (y == 0) return std::nullopt;
      return x % y;
    });
  }
  static FlatInt cmp(const FlatInt& a, const FlatInt& b, bool (*pred)(std::int64_t, std::int64_t)) {
    if (a.is_bottom() || b.is_bottom()) return bottom();
    if (auto x = a.as_constant()) {
      if (auto y = b.as_constant()) return constant(pred(*x, *y) ? 1 : 0);
    }
    return top();
  }

  /// Branch refinement: only equality against a known constant pins a flat
  /// value; a failed disequality does the same.
  static FlatInt refine_cmp(const FlatInt& v, CmpOp op, const FlatInt& rhs, bool want_true) {
    if (v.is_bottom() || rhs.is_bottom()) return bottom();
    if (!want_true) op = negate(op);
    if (auto c = rhs.as_constant()) {
      if (op == CmpOp::Eq) return v.leq(constant(*c)) || v.is_top() ? constant(*c) : bottom();
      if (auto x = v.as_constant()) {
        // Constant vs constant: keep v only if the comparison can hold.
        return eval_cmp(op, *x, *c) ? v : bottom();
      }
    }
    return v;
  }

  /// May this abstract value be truthy (nonzero)? / falsy (zero)?
  [[nodiscard]] bool may_be_truthy() const {
    if (is_bottom()) return false;
    if (auto c = as_constant()) return *c != 0;
    return true;
  }
  [[nodiscard]] bool may_be_falsy() const {
    if (is_bottom()) return false;
    if (auto c = as_constant()) return *c == 0;
    return true;
  }

  [[nodiscard]] std::string to_string() const {
    if (is_bottom()) return "⊥";
    if (is_top()) return "⊤";
    return std::to_string(value_);
  }

 private:
  enum class State : std::uint8_t { Bottom, Const, Top };
  FlatInt(State s, std::int64_t v) : state_(s), value_(v) {}
  State state_;
  std::int64_t value_;
};

}  // namespace copar::absdom
