// Finite powerset lattice: sets of T ordered by inclusion. Used for
// points-to sets (abstract locations), callee sets (abstract closures), and
// generally wherever the abstract semantics collects "may" facts.
#pragma once

#include <algorithm>
#include <iterator>
#include <set>
#include <sstream>
#include <string>

namespace copar::absdom {

template <typename T>
class PowerSet {
 public:
  PowerSet() = default;
  explicit PowerSet(std::set<T> elems) : elems_(std::move(elems)) {}

  static PowerSet bottom() { return PowerSet(); }
  static PowerSet singleton(T v) {
    PowerSet p;
    p.elems_.insert(std::move(v));
    return p;
  }

  [[nodiscard]] bool is_bottom() const { return elems_.empty(); }
  [[nodiscard]] const std::set<T>& elems() const { return elems_; }
  [[nodiscard]] std::size_t size() const { return elems_.size(); }
  [[nodiscard]] bool contains(const T& v) const { return elems_.contains(v); }

  [[nodiscard]] PowerSet join(const PowerSet& o) const {
    PowerSet out = *this;
    out.elems_.insert(o.elems_.begin(), o.elems_.end());
    return out;
  }
  [[nodiscard]] PowerSet widen(const PowerSet& o) const { return join(o); }
  [[nodiscard]] bool leq(const PowerSet& o) const {
    return std::includes(o.elems_.begin(), o.elems_.end(), elems_.begin(), elems_.end());
  }
  [[nodiscard]] PowerSet meet(const PowerSet& o) const {
    PowerSet out;
    std::set_intersection(elems_.begin(), elems_.end(), o.elems_.begin(), o.elems_.end(),
                          std::inserter(out.elems_, out.elems_.begin()));
    return out;
  }

  void insert(T v) { elems_.insert(std::move(v)); }

  friend bool operator==(const PowerSet&, const PowerSet&) = default;

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const T& e : elems_) {
      if (!first) os << ',';
      first = false;
      if constexpr (requires { e.to_string(); }) {
        os << e.to_string();
      } else {
        os << e;
      }
    }
    os << '}';
    return os.str();
  }

 private:
  std::set<T> elems_;
};

}  // namespace copar::absdom
