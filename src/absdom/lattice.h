// Lattice concepts for the abstract-interpretation framework (§3/§4).
//
// Every abstract domain used by the abstract semantics models a join
// semilattice with bottom: `bottom()` is the least element, `join` the least
// upper bound, `leq` the partial order. Domains with infinite ascending
// chains (intervals) additionally provide `widen`.
//
// The paper's framework treats the choice of abstract domain as the design
// axis: "any abstraction of the semantic domains automatically suggests a
// different folding mechanism". The domains in this directory are the value
// lattices; the folding mechanisms (Taylor, McDowell) live in src/absem.
#pragma once

#include <concepts>

namespace copar::absdom {

template <typename D>
concept JoinSemiLattice = requires(const D a, const D b) {
  { D::bottom() } -> std::same_as<D>;
  { a.join(b) } -> std::same_as<D>;
  { a.leq(b) } -> std::same_as<bool>;
  { a == b } -> std::convertible_to<bool>;
};

template <typename D>
concept WidenableLattice = JoinSemiLattice<D> && requires(const D a, const D b) {
  { a.widen(b) } -> std::same_as<D>;
};

/// Joins `delta` into `acc`; returns true if `acc` grew. The idiom of every
/// fixpoint loop in the framework.
template <JoinSemiLattice D>
bool join_into(D& acc, const D& delta) {
  if (delta.leq(acc)) return false;
  acc = acc.join(delta);
  return true;
}

/// Widening-accelerated variant for domains with infinite chains.
template <WidenableLattice D>
bool widen_into(D& acc, const D& delta) {
  if (delta.leq(acc)) return false;
  acc = acc.widen(acc.join(delta));
  return true;
}

}  // namespace copar::absdom
