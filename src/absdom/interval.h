// The interval lattice over 64-bit integers with ±∞ bounds and the classic
// threshold-free widening (unstable bounds jump to infinity).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "src/absdom/cmpop.h"
#include <limits>
#include <optional>
#include <string>

namespace copar::absdom {

class Interval {
 public:
  static constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min();
  static constexpr std::int64_t kPosInf = std::numeric_limits<std::int64_t>::max();

  static Interval bottom() { return Interval(true, 0, 0); }
  static Interval top() { return Interval(false, kNegInf, kPosInf); }
  static Interval constant(std::int64_t v) { return Interval(false, v, v); }
  static Interval range(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) return bottom();
    return Interval(false, lo, hi);
  }

  [[nodiscard]] bool is_bottom() const { return bottom_; }
  [[nodiscard]] bool is_top() const { return !bottom_ && lo_ == kNegInf && hi_ == kPosInf; }
  [[nodiscard]] std::int64_t lo() const { return lo_; }
  [[nodiscard]] std::int64_t hi() const { return hi_; }
  [[nodiscard]] std::optional<std::int64_t> as_constant() const {
    if (!bottom_ && lo_ == hi_) return lo_;
    return std::nullopt;
  }

  [[nodiscard]] Interval join(const Interval& o) const {
    if (bottom_) return o;
    if (o.bottom_) return *this;
    return Interval(false, std::min(lo_, o.lo_), std::max(hi_, o.hi_));
  }

  [[nodiscard]] bool leq(const Interval& o) const {
    if (bottom_) return true;
    if (o.bottom_) return false;
    return o.lo_ <= lo_ && hi_ <= o.hi_;
  }

  /// Standard widening: a bound that moved since `*this` jumps to infinity.
  /// Use as prev.widen(next) with prev ⊑ next.
  [[nodiscard]] Interval widen(const Interval& next) const {
    if (bottom_) return next;
    if (next.bottom_) return *this;
    const std::int64_t lo = next.lo_ < lo_ ? kNegInf : lo_;
    const std::int64_t hi = next.hi_ > hi_ ? kPosInf : hi_;
    return Interval(false, lo, hi);
  }

  /// Standard narrowing: an infinite bound of `*this` is refined from
  /// `next`, finite bounds stay. Use as widened.narrow(next) with
  /// next ⊑ widened (one descending pass after a widened fixpoint).
  [[nodiscard]] Interval narrow(const Interval& next) const {
    if (bottom_ || next.bottom_) return next;
    const std::int64_t lo = lo_ == kNegInf ? next.lo_ : lo_;
    const std::int64_t hi = hi_ == kPosInf ? next.hi_ : hi_;
    return Interval(false, lo, hi);
  }

  friend bool operator==(const Interval&, const Interval&) = default;

  // --- abstract arithmetic (saturating; sound but not always optimal) ------
  static Interval add(const Interval& a, const Interval& b) {
    if (a.bottom_ || b.bottom_) return bottom();
    return Interval(false, sat_add(a.lo_, b.lo_), sat_add(a.hi_, b.hi_));
  }
  static Interval sub(const Interval& a, const Interval& b) {
    if (a.bottom_ || b.bottom_) return bottom();
    return Interval(false, sat_sub(a.lo_, b.hi_), sat_sub(a.hi_, b.lo_));
  }
  static Interval mul(const Interval& a, const Interval& b) {
    if (a.bottom_ || b.bottom_) return bottom();
    if (auto x = a.as_constant(); x && *x == 0) return constant(0);
    if (auto y = b.as_constant(); y && *y == 0) return constant(0);
    if (a.is_top() || b.is_top()) return top();
    const std::int64_t c[4] = {sat_mul(a.lo_, b.lo_), sat_mul(a.lo_, b.hi_),
                               sat_mul(a.hi_, b.lo_), sat_mul(a.hi_, b.hi_)};
    return Interval(false, *std::min_element(c, c + 4), *std::max_element(c, c + 4));
  }
  static Interval div(const Interval& a, const Interval& b) {
    if (a.bottom_ || b.bottom_) return bottom();
    if (auto y = b.as_constant(); y && *y != 0) {
      const std::int64_t p = sat_div(a.lo_, *y);
      const std::int64_t q = sat_div(a.hi_, *y);
      return Interval(false, std::min(p, q), std::max(p, q));
    }
    return top();
  }
  static Interval mod(const Interval& a, const Interval& b) {
    if (a.bottom_ || b.bottom_) return bottom();
    if (auto x = a.as_constant()) {
      if (auto y = b.as_constant(); y && *y != 0) {
        // x % -1 == 0 for every x; handling it first also sidesteps the
        // INT64_MIN % -1 hardware trap.
        if (*y == -1) return constant(0);
        // ±∞ sentinels are not real constants — don't fold them.
        if (*x == kNegInf || *x == kPosInf) return top();
        return constant(*x % *y);
      }
    }
    return top();
  }
  static Interval cmp(const Interval& a, const Interval& b,
                      bool (*pred)(std::int64_t, std::int64_t)) {
    if (a.bottom_ || b.bottom_) return bottom();
    // The predicates used by the abstract semantics are the six orderings
    // (<, <=, >, >=, ==, !=). For those, evaluating on the interval
    // endpoints plus the points where the intervals meet (and their ±1
    // neighbors, for strict/non-strict distinctions) decides exactly which
    // truth values are possible.
    bool can_true = false;
    bool can_false = false;
    const auto reps = [](const Interval& v, const Interval& other) {
      std::array<std::int64_t, 8> out{};
      std::size_t n = 0;
      auto add = [&](std::int64_t candidate) {
        const std::int64_t clamped = std::clamp(candidate, v.lo_, v.hi_);
        for (std::size_t i = 0; i < n; ++i) {
          if (out[i] == clamped) return;
        }
        out[n++] = clamped;
      };
      add(v.lo_);
      add(v.hi_);
      for (std::int64_t p : {other.lo_, other.hi_}) {
        add(p);
        if (p > kNegInf) add(p - 1);
        if (p < kPosInf) add(p + 1);
      }
      return std::pair{out, n};
    };
    const auto [xs, nx] = reps(a, b);
    const auto [ys, ny] = reps(b, a);
    for (std::size_t i = 0; i < nx; ++i) {
      for (std::size_t j = 0; j < ny; ++j) {
        (pred(xs[i], ys[j]) ? can_true : can_false) = true;
      }
    }
    if (can_true && can_false) return range(0, 1);
    return constant(can_true ? 1 : 0);
  }

  /// Branch refinement: the largest subinterval of `v` consistent with
  /// `v op rhs` evaluating to `want_true`.
  static Interval refine_cmp(const Interval& v, CmpOp op, const Interval& rhs, bool want_true) {
    if (v.bottom_ || rhs.bottom_) return bottom();
    if (!want_true) op = negate(op);
    switch (op) {
      case CmpOp::Lt:
        if (rhs.hi_ == kNegInf) return bottom();
        return v.meet(range(kNegInf, rhs.hi_ == kPosInf ? kPosInf : rhs.hi_ - 1));
      case CmpOp::Le:
        return v.meet(range(kNegInf, rhs.hi_));
      case CmpOp::Gt:
        if (rhs.lo_ == kPosInf) return bottom();
        return v.meet(range(rhs.lo_ == kNegInf ? kNegInf : rhs.lo_ + 1, kPosInf));
      case CmpOp::Ge:
        return v.meet(range(rhs.lo_, kPosInf));
      case CmpOp::Eq:
        return v.meet(rhs);
      case CmpOp::Ne:
        // Only refine when rhs is a constant at an endpoint of v.
        if (auto c = rhs.as_constant()) {
          if (!v.bottom_ && v.lo_ == *c && v.hi_ == *c) return bottom();
          if (!v.bottom_ && v.lo_ == *c) return range(*c + 1, v.hi_);
          if (!v.bottom_ && v.hi_ == *c) return range(v.lo_, *c - 1);
        }
        return v;
    }
    return v;
  }

  [[nodiscard]] Interval meet(const Interval& o) const {
    if (bottom_ || o.bottom_) return bottom();
    return range(std::max(lo_, o.lo_), std::min(hi_, o.hi_));
  }

  [[nodiscard]] bool may_be_truthy() const {
    if (bottom_) return false;
    return !(lo_ == 0 && hi_ == 0);
  }
  [[nodiscard]] bool may_be_falsy() const {
    if (bottom_) return false;
    return lo_ <= 0 && 0 <= hi_;
  }

  [[nodiscard]] std::string to_string() const {
    if (bottom_) return "⊥";
    std::string lo = lo_ == kNegInf ? "-inf" : std::to_string(lo_);
    std::string hi = hi_ == kPosInf ? "+inf" : std::to_string(hi_);
    return "[" + lo + "," + hi + "]";
  }

 private:
  Interval(bool bottom, std::int64_t lo, std::int64_t hi) : bottom_(bottom), lo_(lo), hi_(hi) {}

  static std::int64_t sat_add(std::int64_t a, std::int64_t b) {
    if (a == kNegInf || b == kNegInf) return kNegInf;
    if (a == kPosInf || b == kPosInf) return kPosInf;
    std::int64_t r = 0;
    if (__builtin_add_overflow(a, b, &r)) return a > 0 ? kPosInf : kNegInf;
    return r;
  }
  static std::int64_t sat_sub(std::int64_t a, std::int64_t b) {
    if (a == kNegInf || b == kPosInf) return kNegInf;
    if (a == kPosInf || b == kNegInf) return kPosInf;
    std::int64_t r = 0;
    if (__builtin_sub_overflow(a, b, &r)) return a > b ? kPosInf : kNegInf;
    return r;
  }
  static std::int64_t sat_div(std::int64_t a, std::int64_t b) {
    // b != 0. kNegInf doubles as the finite INT64_MIN, so routing it here
    // also avoids the INT64_MIN / -1 hardware trap (the one overflowing
    // case of signed division); -∞ / -1 correctly saturates to +∞.
    if (a == kNegInf) return b > 0 ? kNegInf : kPosInf;
    if (a == kPosInf) return b > 0 ? kPosInf : kNegInf;
    return a / b;
  }
  static std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
    std::int64_t r = 0;
    if (__builtin_mul_overflow(a, b, &r)) return (a > 0) == (b > 0) ? kPosInf : kNegInf;
    return r;
  }

  bool bottom_;
  std::int64_t lo_;
  std::int64_t hi_;
};

}  // namespace copar::absdom
