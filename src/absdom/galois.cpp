// Compile-checks the header-only lattice library and anchors the static
// library. Also instantiates the concepts against every shipped domain so a
// regression breaks the build here rather than in a downstream target.
#include "src/absdom/galois.h"

#include "src/absdom/fixpoint.h"
#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absdom/map.h"
#include "src/absdom/parity.h"
#include "src/absdom/powerset.h"
#include "src/absdom/sign.h"

namespace copar::absdom {

static_assert(JoinSemiLattice<FlatInt>);
static_assert(WidenableLattice<FlatInt>);
static_assert(JoinSemiLattice<Interval>);
static_assert(WidenableLattice<Interval>);
static_assert(JoinSemiLattice<Sign>);
static_assert(JoinSemiLattice<Parity>);
static_assert(WidenableLattice<Parity>);
static_assert(WidenableLattice<Sign>);
static_assert(JoinSemiLattice<PowerSet<int>>);
static_assert(JoinSemiLattice<MapLattice<int, FlatInt>>);
static_assert(WidenableLattice<MapLattice<int, Interval>>);

}  // namespace copar::absdom
