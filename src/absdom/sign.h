// The sign lattice: the powerset of {-, 0, +} ordered by inclusion.
//
//                 {-,0,+} = ⊤
//           {-,0}  {-,+}  {0,+}
//            {-}    {0}    {+}
//                  {} = ⊥
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/absdom/cmpop.h"

namespace copar::absdom {

class Sign {
 public:
  static constexpr std::uint8_t kNeg = 1;
  static constexpr std::uint8_t kZero = 2;
  static constexpr std::uint8_t kPos = 4;

  static Sign bottom() { return Sign(0); }
  static Sign top() { return Sign(kNeg | kZero | kPos); }
  static Sign constant(std::int64_t v) {
    if (v < 0) return Sign(kNeg);
    if (v == 0) return Sign(kZero);
    return Sign(kPos);
  }
  static Sign from_bits(std::uint8_t bits) { return Sign(bits & 7); }

  [[nodiscard]] bool is_bottom() const { return bits_ == 0; }
  [[nodiscard]] bool is_top() const { return bits_ == 7; }
  [[nodiscard]] std::uint8_t bits() const { return bits_; }
  [[nodiscard]] std::optional<std::int64_t> as_constant() const {
    if (bits_ == kZero) return 0;  // the only sign that pins a value
    return std::nullopt;
  }

  [[nodiscard]] Sign join(const Sign& o) const { return Sign(bits_ | o.bits_); }
  [[nodiscard]] Sign widen(const Sign& o) const { return join(o); }
  [[nodiscard]] bool leq(const Sign& o) const { return (bits_ & ~o.bits_) == 0; }
  friend bool operator==(const Sign&, const Sign&) = default;

  static Sign add(const Sign& a, const Sign& b) {
    Sign out = bottom();
    a.for_each([&](int sa) {
      b.for_each([&](int sb) {
        if (sa == 0) {
          out = out.join(Sign(sign_bit(sb)));
        } else if (sb == 0) {
          out = out.join(Sign(sign_bit(sa)));
        } else if (sa == sb) {
          out = out.join(Sign(sign_bit(sa)));
        } else {
          out = out.join(top());
        }
      });
    });
    return out;
  }
  static Sign sub(const Sign& a, const Sign& b) { return add(a, negate(b)); }
  static Sign negate(const Sign& a) {
    std::uint8_t bits = a.bits_ & kZero;
    if (a.bits_ & kNeg) bits |= kPos;
    if (a.bits_ & kPos) bits |= kNeg;
    return Sign(bits);
  }
  static Sign mul(const Sign& a, const Sign& b) {
    Sign out = bottom();
    a.for_each([&](int sa) {
      b.for_each([&](int sb) { out = out.join(Sign(sign_bit(sa * sb))); });
    });
    return out;
  }
  static Sign div(const Sign& a, const Sign& b) {
    if (a.is_bottom() || b.is_bottom()) return bottom();
    // Truncating division can hit zero; keep it coarse but sound.
    Sign out = Sign(kZero);
    a.for_each([&](int sa) {
      b.for_each([&](int sb) {
        if (sb != 0) out = out.join(Sign(sign_bit(sa * sb)));
      });
    });
    return out;
  }
  static Sign mod(const Sign& a, const Sign& b) {
    if (a.is_bottom() || b.is_bottom()) return bottom();
    return top();
  }
  static Sign cmp(const Sign& a, const Sign& b, bool (*pred)(std::int64_t, std::int64_t)) {
    if (a.is_bottom() || b.is_bottom()) return bottom();
    // Representatives decide what outcomes are possible.
    bool can_true = false;
    bool can_false = false;
    a.for_each([&](int sa) {
      b.for_each([&](int sb) {
        // Use representative magnitudes 1; distinct-sign comparisons are
        // decided, same-sign nonzero comparisons may go either way.
        if (sa != 0 && sa == sb) {
          can_true = true;
          can_false = true;
        } else {
          (pred(sa, sb) ? can_true : can_false) = true;
          if (sa != 0 || sb != 0) {
            // magnitudes beyond 1 can flip <=-style predicates
            (pred(2 * sa, 2 * sb) ? can_true : can_false) = true;
          }
        }
      });
    });
    std::uint8_t bits = 0;
    if (can_true) bits |= kPos;
    if (can_false) bits |= kZero;
    return Sign(bits);
  }

  /// Branch refinement against zero (the sign domain's only lever): e.g.
  /// taking `x < 0` keeps only {-}; `x >= 0` keeps {0,+}.
  static Sign refine_cmp(const Sign& v, CmpOp op, const Sign& rhs, bool want_true) {
    if (v.is_bottom() || rhs.is_bottom()) return bottom();
    if (!want_true) op = absdom::negate(op);  // Sign::negate shadows the CmpOp helper
    if (rhs == Sign(kZero)) {
      switch (op) {
        case CmpOp::Lt: return Sign(static_cast<std::uint8_t>(v.bits_ & kNeg));
        case CmpOp::Le: return Sign(static_cast<std::uint8_t>(v.bits_ & (kNeg | kZero)));
        case CmpOp::Gt: return Sign(static_cast<std::uint8_t>(v.bits_ & kPos));
        case CmpOp::Ge: return Sign(static_cast<std::uint8_t>(v.bits_ & (kZero | kPos)));
        case CmpOp::Eq: return Sign(static_cast<std::uint8_t>(v.bits_ & kZero));
        case CmpOp::Ne: return Sign(static_cast<std::uint8_t>(v.bits_ & (kNeg | kPos)));
      }
    }
    return v;
  }

  [[nodiscard]] bool may_be_truthy() const { return (bits_ & (kNeg | kPos)) != 0; }
  [[nodiscard]] bool may_be_falsy() const { return (bits_ & kZero) != 0; }

  [[nodiscard]] std::string to_string() const {
    if (is_bottom()) return "⊥";
    std::string out = "{";
    if (bits_ & kNeg) out += "-";
    if (bits_ & kZero) out += "0";
    if (bits_ & kPos) out += "+";
    return out + "}";
  }

 private:
  explicit Sign(std::uint8_t bits) : bits_(bits) {}

  static std::uint8_t sign_bit(std::int64_t v) {
    if (v < 0) return kNeg;
    if (v == 0) return kZero;
    return kPos;
  }

  template <typename F>
  void for_each(F&& f) const {
    if (bits_ & kNeg) f(-1);
    if (bits_ & kZero) f(0);
    if (bits_ & kPos) f(1);
  }

  std::uint8_t bits_;
};

}  // namespace copar::absdom
