// Pointwise map lattice: K -> V with absent keys meaning V::bottom().
// The abstract store is a MapLattice<AbsLoc, AbsValue>.
#pragma once

#include <map>
#include <sstream>
#include <string>

#include "src/absdom/lattice.h"

namespace copar::absdom {

template <typename K, JoinSemiLattice V>
class MapLattice {
 public:
  static MapLattice bottom() { return MapLattice(); }

  [[nodiscard]] bool is_bottom() const { return map_.empty(); }
  [[nodiscard]] const std::map<K, V>& entries() const { return map_; }

  /// Value at `k` (bottom if absent).
  [[nodiscard]] V get(const K& k) const {
    auto it = map_.find(k);
    return it == map_.end() ? V::bottom() : it->second;
  }

  /// Weak update: join `v` into the binding of `k`. Returns true if grew.
  bool join_at(const K& k, const V& v) {
    if (v == V::bottom()) return false;
    auto [it, inserted] = map_.emplace(k, v);
    if (inserted) return true;
    return join_into(it->second, v);
  }

  /// Strong update: replace the binding of `k`.
  void set(const K& k, V v) {
    if (v == V::bottom()) {
      map_.erase(k);
    } else {
      map_.insert_or_assign(k, std::move(v));
    }
  }

  [[nodiscard]] MapLattice join(const MapLattice& o) const {
    MapLattice out = *this;
    for (const auto& [k, v] : o.map_) out.join_at(k, v);
    return out;
  }

  /// Pointwise widening (requires V widenable).
  [[nodiscard]] MapLattice widen(const MapLattice& next) const
    requires WidenableLattice<V>
  {
    MapLattice out = next;
    for (auto& [k, v] : out.map_) {
      auto it = map_.find(k);
      if (it != map_.end()) v = it->second.widen(v);
    }
    return out;
  }

  [[nodiscard]] bool leq(const MapLattice& o) const {
    for (const auto& [k, v] : map_) {
      if (!v.leq(o.get(k))) return false;
    }
    return true;
  }

  friend bool operator==(const MapLattice&, const MapLattice&) = default;

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    for (const auto& [k, v] : map_) {
      if constexpr (requires { k.to_string(); }) {
        os << k.to_string();
      } else {
        os << k;
      }
      os << " -> " << v.to_string() << '\n';
    }
    return os.str();
  }

 private:
  std::map<K, V> map_;
};

}  // namespace copar::absdom
