// Lowering: AST -> per-procedure lists of atomic actions.
//
// The paper's model treats a parallel program as processes executing atomic
// actions, each with a read set and a write set. Lowering produces exactly
// that: every elementary statement becomes one instruction (one transition
// of the standard semantics); pure control plumbing (Jump) is executed
// transparently by the stepper and never counts as a transition.
//
// Variables are resolved statically to frame slots:
//   - globals (and named functions, which are just function-valued globals)
//     live in the distinguished globals frame;
//   - each function activation gets a frame object: cell 0 is the static
//     link (for closures), cells 1.. are parameters and locals. Locals
//     declared anywhere in the function body — including inside cobegin
//     branches — get distinct slots in the function's frame, zero-
//     initialized at activation (declarations themselves lower to nothing);
//   - a cobegin branch lowers to a *thread proc* that executes in the
//     forker's frame, so branches read and write the enclosing function's
//     locals directly, as in the paper's examples;
//   - anonymous function literals lower to procs whose frames chain to the
//     defining activation via the static link (lexical capture).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/support/diagnostics.h"

namespace copar::sem {

enum class Op : std::uint8_t {
  Assign,   // lhs = rhs
  Alloc,    // lhs = alloc(rhs)
  Call,     // lhs? = rhs(args...)
  Return,   // return rhs?
  Branch,   // if (rhs) goto t1 else goto t2
  Jump,     // goto t1 (micro-op: folded into the preceding action)
  Fork,     // spawn forks[], then fall through to the Join at pc+1
  ForkRange,  // doall: spawn (rhs2 - rhs + 1) instances of forks[0], each
              // with its own frame holding the index; then the Join at pc+1
  Join,     // wait for all children of the current cobegin/doall
  Lock,     // acquire cell named by lhs
  Unlock,   // release cell named by lhs
  Assert,   // check rhs
  Halt,     // end of proc: implicit `return null` (functions) / thread exit
};

std::string_view op_name(Op op);

struct Instr {
  Op op = Op::Halt;
  /// Originating statement; null for synthesized instructions (e.g. Halt).
  const lang::Stmt* stmt = nullptr;
  const lang::Expr* lhs = nullptr;  // assign/alloc/call dst; lock/unlock lvalue
  const lang::Expr* rhs = nullptr;  // assign rhs / alloc size / cond / callee / return value
                                    // / doall range lo
  const lang::Expr* rhs2 = nullptr;  // doall range hi (inclusive)
  const std::vector<lang::ExprPtr>* args = nullptr;  // call arguments
  std::uint32_t t1 = 0;  // branch/jump target
  std::uint32_t t2 = 0;  // branch false-target
  std::vector<std::uint32_t> forks;  // child proc ids
};

/// A lowered code unit: a function body or a cobegin branch ("thread proc").
struct Proc {
  std::uint32_t id = 0;
  std::string name;
  const lang::FunDecl* fun = nullptr;  // null for thread procs
  bool is_thread = false;
  /// Frame size in cells including the static-link cell 0. Cobegin-branch
  /// thread procs have nslots 0: they run in the forker's frame. Doall-body
  /// thread procs own a frame (slot 1 = the index variable) whose static
  /// link points at the forker's frame.
  std::uint32_t nslots = 0;
  /// Lexical function-nesting depth (globals = 0, top-level functions = 1,
  /// a lambda inside one = 2, ...). Thread procs inherit their function's.
  std::uint32_t nesting = 0;
  /// The function proc whose frame this proc's code runs in: itself for
  /// functions, the enclosing function for thread procs.
  std::uint32_t owner_fn = 0;
  /// The lexically enclosing function proc (for resolving hops statically);
  /// kNoProc for top-level functions.
  std::uint32_t lexical_parent = 0xffffffffu;
  std::vector<Instr> code;
};

constexpr std::uint32_t kNoProc = 0xffffffffu;

/// Where a VarRef (or decl target) lives.
struct VarLoc {
  bool is_global = false;
  std::uint16_t hops = 0;  // static-link hops from the current frame
  std::uint32_t slot = 0;  // cell index within the target frame
};

struct GlobalSlot {
  Symbol name;
  std::uint32_t slot = 0;
  const lang::Expr* init = nullptr;     // null: zero or function closure
  const lang::FunDecl* fun = nullptr;   // non-null for named functions
};

/// A fully lowered module, ready for the stepper. Owns nothing from the
/// Module; the Module must outlive it.
class LoweredProgram {
 public:
  [[nodiscard]] const lang::Module& module() const noexcept { return *module_; }
  [[nodiscard]] const std::vector<Proc>& procs() const noexcept { return procs_; }
  [[nodiscard]] const Proc& proc(std::uint32_t id) const { return procs_.at(id); }
  [[nodiscard]] const std::vector<GlobalSlot>& globals() const noexcept { return globals_; }
  [[nodiscard]] std::uint32_t nglobal_cells() const noexcept { return nglobal_cells_; }
  [[nodiscard]] std::uint32_t entry_proc() const noexcept { return entry_proc_; }

  /// Resolution of the VarRef (by expression id).
  [[nodiscard]] const VarLoc& varloc(std::uint32_t expr_id) const { return varlocs_.at(expr_id); }

  /// The AST statement with the given module-unique id; null when the id is
  /// out of range or names an expression. Checkers use this to map analysis
  /// results (keyed by statement id) back to source spans.
  [[nodiscard]] const lang::Stmt* stmt(std::uint32_t stmt_id) const {
    return module_->stmt_by_id(stmt_id);
  }
  /// Source span of the statement with the given id (invalid when unknown).
  [[nodiscard]] SourceSpan stmt_span(std::uint32_t stmt_id) const {
    const lang::Stmt* s = stmt(stmt_id);
    return s != nullptr ? s->span() : SourceSpan{};
  }

  /// Human-readable control point, e.g. "main+3(s2)".
  [[nodiscard]] std::string describe_point(std::uint32_t proc, std::uint32_t pc) const;

  /// Disassembly of every proc (debugging / golden tests).
  [[nodiscard]] std::string disassemble() const;

 private:
  friend class Lowerer;
  const lang::Module* module_ = nullptr;
  std::vector<Proc> procs_;
  std::vector<VarLoc> varlocs_;
  std::vector<GlobalSlot> globals_;
  std::uint32_t nglobal_cells_ = 1;  // cell 0 reserved (uniform frame layout)
  std::uint32_t entry_proc_ = 0;
};

/// Lowers a resolved module. Reports problems (e.g. missing `main`) to
/// `diags`; the result is unusable if diags has errors.
std::unique_ptr<LoweredProgram> lower(const lang::Module& module, DiagnosticEngine& diags);

/// Throwing convenience wrapper.
std::unique_ptr<LoweredProgram> lower(const lang::Module& module);

}  // namespace copar::sem
