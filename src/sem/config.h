// Configurations: the states of the standard (instrumented) semantics.
//
// A configuration is a shared store plus a set of processes, each a stack of
// frames (control point + frame object) carrying its procedure string. The
// exploration engine deduplicates configurations by a *canonical key*:
//
//   - live processes are ordered by their fork path — the sequence of
//     (cobegin site, branch index) pairs from the root — which is
//     independent of interleaving, unlike raw pids;
//   - store objects are renumbered by a deterministic reachability traversal
//     from the globals frame and the live processes (this doubles as a
//     garbage collection: unreachable objects do not affect the key);
//   - terminated processes, transient pids, and fork sequence counters are
//     excluded from the key.
//
// Birthdates and procedure strings are *included* in the key: this is the
// paper's instrumented semantics, whose states carry that history.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/sem/lower.h"
#include "src/sem/procstring.h"
#include "src/sem/store.h"
#include "src/sem/value.h"
#include "src/support/cow.h"
#include "src/support/fingerprint.h"

namespace copar::sem {

using Pid = std::uint32_t;
constexpr Pid kNoPid = 0xffffffffu;

struct Frame {
  std::uint32_t proc = 0;  // lowered proc id
  std::uint32_t pc = 0;
  ObjId frame_obj = kNoObj;
  /// Where this activation's Return writes its value in the caller
  /// (captured at call time).
  bool has_ret_dst = false;
  ObjId ret_obj = kNoObj;
  std::uint32_t ret_off = 0;
};

/// Interleaving-independent identity of a forked process: one element per
/// ancestor cobegin, (site statement id, branch index). Among live
/// processes, paths are unique — a parent has at most one outstanding fork
/// per cobegin site.
struct PathElem {
  std::uint32_t site = 0;
  std::uint32_t branch = 0;
  friend bool operator==(const PathElem&, const PathElem&) = default;
  friend auto operator<=>(const PathElem&, const PathElem&) = default;
};

enum class ProcStatus : std::uint8_t { Running, Terminated, Faulted };

struct Process {
  ProcStatus status = ProcStatus::Running;
  std::vector<Frame> frames;  // back() = innermost
  ProcString pstr;
  Pid parent = kNoPid;
  std::uint32_t pending_children = 0;
  std::vector<PathElem> path;

  [[nodiscard]] bool live() const noexcept { return status == ProcStatus::Running; }
  [[nodiscard]] const Frame& top() const { return frames.back(); }
  [[nodiscard]] Frame& top() { return frames.back(); }
};

/// Kinds of runtime faults a process can incur; part of configuration
/// identity (stmt id, fault kind).
enum class Fault : std::uint8_t {
  DerefNull,
  DerefNonPointer,
  OutOfBounds,
  TypeError,
  DivByZero,
  NotAFunction,
  ArityMismatch,
  UnlockNotHeld,
  NegativeAlloc,
};

std::string_view fault_name(Fault f);

/// Deep size of a process (frame stack + procedure string + fork path), the
/// handle accounting unit for the frontier-bytes gauge.
[[nodiscard]] std::size_t process_bytes(const Process& p) noexcept;

/// The process vector of a configuration, with structural sharing: copying
/// a ProcessTable copies one refcounted handle per process. Reads go
/// through const access; the stepper clones exactly the processes it
/// touches via mutate() (normally just the stepped pid). Handles are
/// stable: references returned by mutate() survive push_back, unlike the
/// plain-vector representation this replaces.
class ProcessTable {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return procs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return procs_.empty(); }
  [[nodiscard]] const Process& operator[](Pid pid) const { return *procs_[pid]; }

  /// The COW seam: mutable access to one process, cloning it first iff its
  /// handle is shared with another table. Same ownership contract as
  /// Store::mutate.
  [[nodiscard]] Process& mutate(Pid pid);

  void push_back(Process&& p);

  /// Const forward iterator dereferencing through the handles, so existing
  /// `for (const Process& p : cfg.processes)` loops keep working.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Process;
    using difference_type = std::ptrdiff_t;
    using pointer = const Process*;
    using reference = const Process&;

    const_iterator() = default;
    [[nodiscard]] reference operator*() const { return **it_; }
    [[nodiscard]] pointer operator->() const { return it_->get(); }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++it_;
      return tmp;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) = default;

   private:
    friend class ProcessTable;
    using Inner = std::vector<std::shared_ptr<Process>>::const_iterator;
    explicit const_iterator(Inner it) : it_(it) {}
    Inner it_;
  };
  [[nodiscard]] const_iterator begin() const noexcept { return const_iterator(procs_.begin()); }
  [[nodiscard]] const_iterator end() const noexcept { return const_iterator(procs_.end()); }

 private:
  using Handle = std::shared_ptr<Process>;
  static Handle track(Process&& p);
  std::vector<Handle> procs_;
};

class Configuration {
 public:
  Store store;
  ProcessTable processes;  // index = pid; entries are never erased
  /// Held locks: location (obj, off) -> owner pid. Shared until written.
  support::CowBox<std::map<std::pair<ObjId, std::uint32_t>, Pid>> lock_owners;
  /// Failed assertions (statement ids) observed on this path.
  support::CowBox<std::set<std::uint32_t>> violations;
  /// Runtime faults (statement id, kind) observed on this path.
  support::CowBox<std::set<std::pair<std::uint32_t, std::uint8_t>>> faults;

  /// Builds the initial configuration: globals frame (function cells bound
  /// to closures, initializers evaluated left to right) and a root process
  /// entering `main`.
  static Configuration initial(const LoweredProgram& program);

  [[nodiscard]] const LoweredProgram& program() const noexcept { return *program_; }

  [[nodiscard]] std::size_t num_live() const;
  /// True when no process is live (normal termination or all faulted).
  [[nodiscard]] bool all_done() const { return num_live() == 0; }

  /// Deterministic serialization of the canonical form; equal strings <=>
  /// equivalent configurations. See file header for what it includes.
  [[nodiscard]] std::string canonical_key() const;

  /// 128-bit hash of exactly the byte stream canonical_key() would produce
  /// (the serialization traversal is shared, so the two cannot diverge),
  /// without materializing it. Equal keys => equal fingerprints; the
  /// converse fails only on a 2^-128-ish hash collision.
  [[nodiscard]] support::Fingerprint canonical_fingerprint() const;

  /// Convenience for tests/benches: current value of global `name`.
  [[nodiscard]] std::optional<Value> global_value(std::string_view name) const;

  [[nodiscard]] std::string to_string() const;

 private:
  friend Configuration make_initial(const LoweredProgram&);
  const LoweredProgram* program_ = nullptr;
};

/// Which store objects are reachable from the globals frame and the live
/// processes (same traversal canonical_key uses; exposed for the lifetime
/// analyses). Indexed by ObjId.
[[nodiscard]] std::vector<bool> reachable_objects(const Configuration& cfg);

}  // namespace copar::sem
