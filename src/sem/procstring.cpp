#include "src/sem/procstring.h"

#include <algorithm>

namespace copar::sem {

ProcString ProcString::append(PSym s) const {
  ProcString out = *this;
  if (!out.syms_.empty() && out.syms_.back().cancels(s)) {
    out.syms_.pop_back();
  } else {
    out.syms_.push_back(s);
  }
  return out;
}

ProcString ProcString::net_between(const ProcString& from, const ProcString& to) {
  std::size_t common = 0;
  const std::size_t n = std::min(from.size(), to.size());
  while (common < n && from.syms_[common] == to.syms_[common]) ++common;
  ProcString out;
  // Invert the tail of `from` (exits undoing its entries), innermost first.
  for (std::size_t i = from.size(); i-- > common;) {
    const PSym& s = from.syms_[i];
    switch (s.kind) {
      case PSymKind::Call: out.syms_.push_back(PSym{PSymKind::Ret, s.id, s.branch}); break;
      case PSymKind::Ret: out.syms_.push_back(PSym{PSymKind::Call, s.id, s.branch}); break;
      case PSymKind::Fork: out.syms_.push_back(PSym{PSymKind::Join, s.id, s.branch}); break;
      case PSymKind::Join: out.syms_.push_back(PSym{PSymKind::Fork, s.id, s.branch}); break;
    }
  }
  // Then the tail of `to`.
  for (std::size_t i = common; i < to.size(); ++i) out.syms_.push_back(to.syms_[i]);
  return out;
}

bool ProcString::descends_only() const noexcept {
  return std::all_of(syms_.begin(), syms_.end(), [](const PSym& s) {
    return s.kind == PSymKind::Call || s.kind == PSymKind::Fork;
  });
}

bool ProcString::crosses_thread() const noexcept {
  return std::any_of(syms_.begin(), syms_.end(), [](const PSym& s) {
    return s.kind == PSymKind::Fork || s.kind == PSymKind::Join;
  });
}

bool ProcString::is_prefix_of(const ProcString& other) const noexcept {
  if (syms_.size() > other.syms_.size()) return false;
  return std::equal(syms_.begin(), syms_.end(), other.syms_.begin());
}

ProcString ProcString::k_limited(std::size_t k) const {
  if (syms_.size() <= k) return *this;
  ProcString out;
  out.syms_.assign(syms_.end() - static_cast<std::ptrdiff_t>(k), syms_.end());
  return out;
}

std::uint64_t ProcString::hash() const noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (const PSym& s : syms_) {
    h = hash_combine(h, static_cast<std::uint64_t>(s.kind));
    h = hash_combine(h, s.id);
    h = hash_combine(h, s.branch);
  }
  return h;
}

std::string ProcString::to_string() const {
  std::string out;
  for (const PSym& s : syms_) {
    if (!out.empty()) out += '.';
    switch (s.kind) {
      case PSymKind::Call: out += "c" + std::to_string(s.id); break;
      case PSymKind::Ret: out += "r" + std::to_string(s.id); break;
      case PSymKind::Fork:
        out += "f" + std::to_string(s.id) + "_" + std::to_string(s.branch);
        break;
      case PSymKind::Join:
        out += "j" + std::to_string(s.id) + "_" + std::to_string(s.branch);
        break;
    }
  }
  return out.empty() ? "ε" : out;
}

}  // namespace copar::sem
