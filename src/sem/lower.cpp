#include "src/sem/lower.h"

#include <sstream>
#include <unordered_map>

#include "src/lang/printer.h"

namespace copar::sem {

std::string_view op_name(Op op) {
  switch (op) {
    case Op::Assign: return "assign";
    case Op::Alloc: return "alloc";
    case Op::Call: return "call";
    case Op::Return: return "return";
    case Op::Branch: return "branch";
    case Op::Jump: return "jump";
    case Op::Fork: return "fork";
    case Op::ForkRange: return "forkrange";
    case Op::Join: return "join";
    case Op::Lock: return "lock";
    case Op::Unlock: return "unlock";
    case Op::Assert: return "assert";
    case Op::Halt: return "halt";
  }
  return "<?>";
}

namespace {
using namespace copar::lang;
}  // namespace

class Lowerer {
 public:
  Lowerer(const Module& module, DiagnosticEngine& diags)
      : module_(module), diags_(diags), out_(std::make_unique<LoweredProgram>()) {
    out_->module_ = &module;
    out_->varlocs_.resize(module.node_count());
  }

  std::unique_ptr<LoweredProgram> run() {
    // Pre-assign proc ids: proc i = module.functions()[i] (lambdas included),
    // so closures can reference procs before their bodies are lowered.
    for (const auto& f : module_.functions()) {
      Proc p;
      p.id = f->index();
      p.fun = f.get();
      p.name = f->name().valid() ? std::string(module_.interner().spelling(f->name()))
                                 : ("<lambda@" + copar::to_string(f->loc()) + ">");
      out_->procs_.push_back(std::move(p));
    }

    // Global slot layout: cell 0 reserved, then declared globals, then named
    // functions (function-valued globals).
    for (const GlobalDecl& g : module_.globals()) {
      declare_global(g.name, g.loc, g.init.get(), nullptr);
    }
    for (const auto& f : module_.functions()) {
      if (f->name().valid()) declare_global(f->name(), f->loc(), nullptr, f.get());
    }
    out_->nglobal_cells_ = next_global_slot_;

    // Resolve global initializer expressions in the global scope.
    for (const GlobalSlot& g : out_->globals_) {
      if (g.init != nullptr) resolve_expr(*g.init);
    }

    // Lower named functions. Lambdas are lowered inline where they occur.
    for (const auto& f : module_.functions()) {
      if (f->name().valid()) lower_function(*f);
    }

    const FunDecl* main_fn = module_.find_function("main");
    if (main_fn == nullptr) {
      diags_.error(SourceLoc{}, "program has no 'main' function");
    } else {
      if (!main_fn->params().empty()) {
        diags_.error(main_fn->loc(), "'main' must take no parameters");
      }
      out_->entry_proc_ = main_fn->index();
    }
    return std::move(out_);
  }

 private:
  // --- scope management -----------------------------------------------
  struct Binding {
    std::uint32_t func_level;  // which lexical function frame owns the slot
    std::uint32_t slot;
  };
  struct Scope {
    std::unordered_map<Symbol, Binding> names;
  };

  void declare_global(Symbol name, SourceLoc, const Expr* init, const FunDecl* fun) {
    GlobalSlot g;
    g.name = name;
    g.slot = next_global_slot_++;
    g.init = init;
    g.fun = fun;
    global_slots_.emplace(name, g.slot);
    out_->globals_.push_back(g);
  }

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare_local(Symbol name) {
    // Slot in the current function's frame. Distinct declarations (even in
    // disjoint blocks or parallel branches) get distinct slots.
    const Binding b{cur_func_level_, next_slot_in_frame_()++};
    scopes_.back().names[name] = b;
  }

  std::uint32_t& next_slot_in_frame_() { return frame_slot_counters_.back(); }

  [[nodiscard]] VarLoc resolve_name(Symbol name, SourceLoc loc) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (auto f = it->names.find(name); f != it->names.end()) {
        VarLoc v;
        v.is_global = false;
        require(cur_func_level_ >= f->second.func_level, "scope nesting corrupt");
        v.hops = static_cast<std::uint16_t>(cur_func_level_ - f->second.func_level);
        v.slot = f->second.slot;
        return v;
      }
    }
    if (auto g = global_slots_.find(name); g != global_slots_.end()) {
      VarLoc v;
      v.is_global = true;
      v.slot = g->second;
      return v;
    }
    // The resolver already rejected unknown names; reaching here means the
    // resolver and lowerer disagree.
    diags_.error(loc, "lowering: unresolved name '" +
                          std::string(module_.interner().spelling(name)) + "'");
    return VarLoc{};
  }

  // --- functions --------------------------------------------------------
  void lower_function(const FunDecl& f) {
    // NOTE: do not hold a Proc& across lower_stmt — lowering cobegins
    // appends thread procs and may reallocate the procs vector.
    out_->procs_[f.index()].nesting = cur_func_level_ + 1;
    out_->procs_[f.index()].owner_fn = f.index();
    out_->procs_[f.index()].lexical_parent =
        cur_func_level_ == 0 ? kNoProc : cur_proc_owner_fn_();

    const std::uint32_t saved_level = cur_func_level_;
    const std::uint32_t saved_proc = cur_proc_;
    ++cur_func_level_;
    cur_proc_ = f.index();
    frame_slot_counters_.push_back(1);  // cell 0 = static link

    push_scope();
    for (Symbol param : f.params()) declare_local(param);
    lower_stmt(f.body(), f.index());
    pop_scope();

    emit(f.index(), Instr{.op = Op::Halt});
    out_->procs_[f.index()].nslots = frame_slot_counters_.back();
    frame_slot_counters_.pop_back();
    cur_func_level_ = saved_level;
    cur_proc_ = saved_proc;
  }

  // --- statements -------------------------------------------------------
  std::uint32_t emit(std::uint32_t proc, Instr instr) {
    out_->procs_[proc].code.push_back(std::move(instr));
    return static_cast<std::uint32_t>(out_->procs_[proc].code.size() - 1);
  }

  [[nodiscard]] std::uint32_t next_pc(std::uint32_t proc) const {
    return static_cast<std::uint32_t>(out_->procs_[proc].code.size());
  }

  void lower_stmt(const Stmt& s, std::uint32_t proc) {
    switch (s.kind()) {
      case StmtKind::Block: {
        const auto& b = stmt_cast<lang::Block>(s);
        push_scope();
        for (const StmtPtr& inner : b.stmts()) lower_stmt(*inner, proc);
        pop_scope();
        break;
      }
      case StmtKind::VarDecl: {
        const auto& d = stmt_cast<VarDeclStmt>(s);
        // Declarations lower to nothing: slots are zero-initialized at frame
        // creation. (The parser desugars initializers to a separate Assign.)
        require(d.init() == nullptr, "lowering: VarDecl initializer should have been desugared");
        declare_local(d.name());
        break;
      }
      case StmtKind::Assign: {
        const auto& a = stmt_cast<AssignStmt>(s);
        resolve_expr(a.lhs());
        resolve_expr(a.rhs());
        emit(proc, Instr{.op = Op::Assign, .stmt = &s, .lhs = &a.lhs(), .rhs = &a.rhs()});
        break;
      }
      case StmtKind::Alloc: {
        const auto& a = stmt_cast<AllocStmt>(s);
        resolve_expr(a.lhs());
        resolve_expr(a.size());
        emit(proc, Instr{.op = Op::Alloc, .stmt = &s, .lhs = &a.lhs(), .rhs = &a.size()});
        break;
      }
      case StmtKind::Call: {
        const auto& c = stmt_cast<CallStmt>(s);
        if (c.dst() != nullptr) resolve_expr(*c.dst());
        resolve_expr(c.callee());
        for (const ExprPtr& arg : c.args()) resolve_expr(*arg);
        emit(proc, Instr{.op = Op::Call,
                         .stmt = &s,
                         .lhs = c.dst(),
                         .rhs = &c.callee(),
                         .args = &c.args()});
        break;
      }
      case StmtKind::If: {
        const auto& i = stmt_cast<IfStmt>(s);
        resolve_expr(i.cond());
        const std::uint32_t branch_pc =
            emit(proc, Instr{.op = Op::Branch, .stmt = &s, .rhs = &i.cond()});
        out_->procs_[proc].code[branch_pc].t1 = next_pc(proc);
        push_scope();
        lower_stmt(i.then_branch(), proc);
        pop_scope();
        if (i.else_branch() != nullptr) {
          const std::uint32_t jump_pc = emit(proc, Instr{.op = Op::Jump, .stmt = &s});
          out_->procs_[proc].code[branch_pc].t2 = next_pc(proc);
          push_scope();
          lower_stmt(*i.else_branch(), proc);
          pop_scope();
          out_->procs_[proc].code[jump_pc].t1 = next_pc(proc);
        } else {
          out_->procs_[proc].code[branch_pc].t2 = next_pc(proc);
        }
        break;
      }
      case StmtKind::While: {
        const auto& w = stmt_cast<WhileStmt>(s);
        const std::uint32_t head = next_pc(proc);
        resolve_expr(w.cond());
        const std::uint32_t branch_pc =
            emit(proc, Instr{.op = Op::Branch, .stmt = &s, .rhs = &w.cond()});
        out_->procs_[proc].code[branch_pc].t1 = next_pc(proc);
        push_scope();
        lower_stmt(w.body(), proc);
        pop_scope();
        Instr back;
        back.op = Op::Jump;
        back.stmt = &s;
        back.t1 = head;
        emit(proc, std::move(back));
        out_->procs_[proc].code[branch_pc].t2 = next_pc(proc);
        break;
      }
      case StmtKind::Cobegin: {
        const auto& c = stmt_cast<CobeginStmt>(s);
        Instr fork;
        fork.op = Op::Fork;
        fork.stmt = &s;
        for (const StmtPtr& branch : c.branches()) {
          // Thread proc: runs in the forker's frame; shares the slot counter
          // of the current function so branch-local declarations get slots
          // in the enclosing frame.
          Proc tp;
          tp.id = static_cast<std::uint32_t>(out_->procs_.size());
          tp.is_thread = true;
          tp.nesting = cur_func_level_;
          tp.owner_fn = cur_proc_owner_fn_();
          tp.lexical_parent = out_->procs_[cur_proc_].lexical_parent;
          tp.name = out_->procs_[cur_proc_].name + "$b" + std::to_string(fork.forks.size());
          out_->procs_.push_back(std::move(tp));
          const std::uint32_t child_id = static_cast<std::uint32_t>(out_->procs_.size() - 1);
          fork.forks.push_back(child_id);

          const std::uint32_t saved_proc = cur_proc_;
          cur_proc_ = child_id;
          push_scope();
          lower_stmt(*branch, child_id);
          pop_scope();
          emit(child_id, Instr{.op = Op::Halt, .stmt = &s});
          cur_proc_ = saved_proc;
        }
        emit(proc, std::move(fork));
        emit(proc, Instr{.op = Op::Join, .stmt = &s});
        break;
      }
      case StmtKind::DoAll: {
        const auto& d = stmt_cast<DoAllStmt>(s);
        resolve_expr(d.lo());
        resolve_expr(d.hi());
        // The body is a thread proc with its own frame: slot 1 holds the
        // per-instance index, the static link chains to the forker's frame
        // (so body references to enclosing locals resolve with hops >= 1).
        Proc tp;
        tp.id = static_cast<std::uint32_t>(out_->procs_.size());
        tp.is_thread = true;
        tp.nesting = cur_func_level_ + 1;
        tp.lexical_parent = cur_proc_owner_fn_();
        tp.name = out_->procs_[cur_proc_].name + "$doall";
        out_->procs_.push_back(std::move(tp));
        const std::uint32_t child_id = static_cast<std::uint32_t>(out_->procs_.size() - 1);
        out_->procs_[child_id].owner_fn = child_id;  // owns its frame

        const std::uint32_t saved_level = cur_func_level_;
        const std::uint32_t saved_proc = cur_proc_;
        ++cur_func_level_;
        cur_proc_ = child_id;
        frame_slot_counters_.push_back(1);
        push_scope();
        declare_local(d.var());  // slot 1: the index
        lower_stmt(d.body(), child_id);
        pop_scope();
        emit(child_id, Instr{.op = Op::Halt, .stmt = &s});
        out_->procs_[child_id].nslots = frame_slot_counters_.back();
        frame_slot_counters_.pop_back();
        cur_func_level_ = saved_level;
        cur_proc_ = saved_proc;

        Instr fork;
        fork.op = Op::ForkRange;
        fork.stmt = &s;
        fork.rhs = &d.lo();
        fork.rhs2 = &d.hi();
        fork.forks.push_back(child_id);
        emit(proc, std::move(fork));
        emit(proc, Instr{.op = Op::Join, .stmt = &s});
        break;
      }
      case StmtKind::Return: {
        const auto& r = stmt_cast<ReturnStmt>(s);
        if (r.value() != nullptr) resolve_expr(*r.value());
        emit(proc, Instr{.op = Op::Return, .stmt = &s, .rhs = r.value()});
        break;
      }
      case StmtKind::Lock: {
        const auto& l = stmt_cast<LockStmt>(s);
        resolve_expr(l.lvalue());
        emit(proc, Instr{.op = Op::Lock, .stmt = &s, .lhs = &l.lvalue()});
        break;
      }
      case StmtKind::Unlock: {
        const auto& u = stmt_cast<UnlockStmt>(s);
        resolve_expr(u.lvalue());
        emit(proc, Instr{.op = Op::Unlock, .stmt = &s, .lhs = &u.lvalue()});
        break;
      }
      case StmtKind::Skip:
        // `skip;` is an observable no-op action in the paper's examples
        // (a transition that reads and writes nothing).
        emit(proc, Instr{.op = Op::Assert, .stmt = &s, .rhs = nullptr});
        break;
      case StmtKind::Assert: {
        const auto& a = stmt_cast<AssertStmt>(s);
        resolve_expr(a.cond());
        emit(proc, Instr{.op = Op::Assert, .stmt = &s, .rhs = &a.cond()});
        break;
      }
    }
  }

  // --- expressions --------------------------------------------------------
  void resolve_expr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
      case ExprKind::NullLit:
        break;
      case ExprKind::VarRef: {
        const auto& v = expr_cast<VarRef>(e);
        out_->varlocs_[e.id()] = resolve_name(v.name(), e.loc());
        break;
      }
      case ExprKind::Unary:
        resolve_expr(expr_cast<Unary>(e).operand());
        break;
      case ExprKind::Binary: {
        const auto& b = expr_cast<Binary>(e);
        resolve_expr(b.lhs());
        resolve_expr(b.rhs());
        break;
      }
      case ExprKind::AddrOf:
        resolve_expr(expr_cast<AddrOf>(e).lvalue());
        break;
      case ExprKind::Deref:
        resolve_expr(expr_cast<Deref>(e).pointer());
        break;
      case ExprKind::Index: {
        const auto& i = expr_cast<Index>(e);
        resolve_expr(i.base());
        resolve_expr(i.index());
        break;
      }
      case ExprKind::FunLit: {
        // Lower the lambda body now, in the current lexical scope.
        lower_function(expr_cast<FunLit>(e).decl());
        break;
      }
    }
  }

  /// The function proc owning the frame that code currently being lowered
  /// runs in (thread procs share their enclosing function's frame).
  [[nodiscard]] std::uint32_t cur_proc_owner_fn_() const {
    return out_->procs_[cur_proc_].is_thread ? out_->procs_[cur_proc_].owner_fn : cur_proc_;
  }

  const Module& module_;
  DiagnosticEngine& diags_;
  std::unique_ptr<LoweredProgram> out_;

  std::vector<Scope> scopes_;
  std::vector<std::uint32_t> frame_slot_counters_;
  std::unordered_map<Symbol, std::uint32_t> global_slots_;
  std::uint32_t next_global_slot_ = 1;  // cell 0 reserved
  std::uint32_t cur_func_level_ = 0;
  std::uint32_t cur_proc_ = 0;
};

std::string LoweredProgram::describe_point(std::uint32_t proc, std::uint32_t pc) const {
  std::ostringstream os;
  os << procs_.at(proc).name << '+' << pc;
  if (pc < procs_[proc].code.size()) {
    const Instr& i = procs_[proc].code[pc];
    if (i.stmt != nullptr && i.stmt->label().valid()) {
      os << '(' << module_->interner().spelling(i.stmt->label()) << ')';
    }
  }
  return os.str();
}

std::string LoweredProgram::disassemble() const {
  std::ostringstream os;
  for (const Proc& p : procs_) {
    os << "proc " << p.id << " '" << p.name << "'"
       << (p.is_thread ? " [thread]" : "") << " nslots=" << p.nslots << ":\n";
    for (std::size_t pc = 0; pc < p.code.size(); ++pc) {
      const Instr& i = p.code[pc];
      os << "  " << pc << ": " << op_name(i.op);
      if (i.lhs != nullptr) os << " lhs=" << lang::print_expr(*module_, *i.lhs);
      if (i.rhs != nullptr) os << " rhs=" << lang::print_expr(*module_, *i.rhs);
      if (i.op == Op::Branch) os << " then=" << i.t1 << " else=" << i.t2;
      if (i.op == Op::Jump) os << " to=" << i.t1;
      if (i.op == Op::Fork || i.op == Op::ForkRange) {
        os << " children=[";
        for (std::size_t k = 0; k < i.forks.size(); ++k) {
          if (k > 0) os << ',';
          os << i.forks[k];
        }
        os << ']';
      }
      os << '\n';
    }
  }
  return os.str();
}

std::unique_ptr<LoweredProgram> lower(const lang::Module& module, DiagnosticEngine& diags) {
  return Lowerer(module, diags).run();
}

std::unique_ptr<LoweredProgram> lower(const lang::Module& module) {
  DiagnosticEngine diags;
  auto out = lower(module, diags);
  if (diags.has_errors()) throw Error("lowering failed:\n" + diags.to_string());
  return out;
}

}  // namespace copar::sem
