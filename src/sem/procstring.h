// Procedure strings (Harrison 1989), the device of the paper's instrumented
// semantics.
//
// A procedure string records the procedural and concurrency movements of a
// process: entering/exiting a procedure, and entering/exiting a cobegin
// thread. When an object is created, the creating process's current string
// is recorded as the object's *birthdate*; comparing birthdates against
// later strings (via the `net` normal form) yields lifetime and extent
// information (§5.3 of the paper).
//
// Symbols:
//   call(p)        — entered procedure p
//   ret(p)         — exited procedure p
//   fork(s, b)     — entered branch b of the cobegin at statement s
//   join(s, b)     — exited that branch
//
// net() cancels adjacent matching call/ret (and fork/join) pairs, leaving
// the process's net movement — e.g. the net of `call f, call g, ret g`
// is `call f`, meaning "currently one activation of f below where we
// started".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/hash.h"

namespace copar::sem {

enum class PSymKind : std::uint8_t { Call, Ret, Fork, Join };

struct PSym {
  PSymKind kind;
  std::uint32_t id;      // proc id for Call/Ret; cobegin stmt id for Fork/Join
  std::uint32_t branch;  // branch index for Fork/Join; 0 otherwise

  friend bool operator==(const PSym&, const PSym&) = default;

  /// True if `other` undoes this symbol (call/ret of same proc, fork/join of
  /// same site+branch).
  [[nodiscard]] bool cancels(const PSym& other) const noexcept {
    if (kind == PSymKind::Call && other.kind == PSymKind::Ret) return id == other.id;
    if (kind == PSymKind::Fork && other.kind == PSymKind::Join) {
      return id == other.id && branch == other.branch;
    }
    return false;
  }
};

/// An immutable-by-convention sequence of movement symbols.
class ProcString {
 public:
  ProcString() = default;

  [[nodiscard]] const std::vector<PSym>& syms() const noexcept { return syms_; }
  [[nodiscard]] bool empty() const noexcept { return syms_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return syms_.size(); }

  /// Returns this string extended with one symbol, cancelling on the fly so
  /// strings stay in net normal form (the instrumented semantics only ever
  /// needs net strings; keeping them normalized bounds their size by the
  /// current call/fork depth).
  [[nodiscard]] ProcString append(PSym s) const;

  static PSym call_sym(std::uint32_t proc) { return PSym{PSymKind::Call, proc, 0}; }
  static PSym ret_sym(std::uint32_t proc) { return PSym{PSymKind::Ret, proc, 0}; }
  static PSym fork_sym(std::uint32_t site, std::uint32_t branch) {
    return PSym{PSymKind::Fork, site, branch};
  }
  static PSym join_sym(std::uint32_t site, std::uint32_t branch) {
    return PSym{PSymKind::Join, site, branch};
  }

  /// The net movement from `from` to `to`: cancel the common prefix, then
  /// invert the remainder of `from` and concatenate the remainder of `to`.
  /// Used to relate an object's birthdate to a later control point.
  static ProcString net_between(const ProcString& from, const ProcString& to);

  /// True if every symbol is a Call/Fork (i.e. `to` is strictly *inside*
  /// activations entered since `from`). An object whose birthdate-to-exit
  /// net contains no Ret/Join symbols was born in the current activation.
  [[nodiscard]] bool descends_only() const noexcept;

  /// True if this (net-normal) string contains a Fork symbol — the movement
  /// crossed into a cobegin thread.
  [[nodiscard]] bool crosses_thread() const noexcept;

  /// True if this string is a (possibly equal) prefix of `other`: `other`'s
  /// position is within the dynamic extent of this one.
  [[nodiscard]] bool is_prefix_of(const ProcString& other) const noexcept;

  /// Keep only the last `k` symbols (the usual k-limiting abstraction for
  /// the abstract semantics).
  [[nodiscard]] ProcString k_limited(std::size_t k) const;

  [[nodiscard]] std::uint64_t hash() const noexcept;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ProcString&, const ProcString&) = default;

 private:
  std::vector<PSym> syms_;
};

}  // namespace copar::sem

template <>
struct std::hash<copar::sem::ProcString> {
  std::size_t operator()(const copar::sem::ProcString& s) const noexcept { return s.hash(); }
};
