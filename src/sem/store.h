// The shared store of the standard semantics.
//
// Every variable and heap cell lives in the store: the globals live in a
// distinguished frame object, each function activation allocates a frame
// object (cell 0 = static link for closures, cells 1.. = parameter/local
// slots), and `alloc(n)` creates an n-cell heap object. A *location* is an
// (object, cell) pair; locations have dense ids (object base + offset) so
// read/write sets are bitsets.
//
// Per the instrumented semantics (§5), every object records its allocation
// site, creating process, and *birthdate* procedure string.
//
// Representation: objects are held by refcounted handles, so copying a
// Store copies one handle per object, not the cells. All mutation goes
// through the COW seam `mutate(id)`, which clones an object only on the
// first write after a share (see docs/STATE_REPRESENTATION.md for the
// ownership discipline that makes the refcount test sound in the parallel
// engine).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sem/procstring.h"
#include "src/sem/value.h"
#include "src/support/diagnostics.h"

namespace copar::sem {

/// What kind of storage an object provides; affects sharedness/criticality
/// classification and the analyses.
enum class ObjKind : std::uint8_t { Globals, Frame, Heap };

struct Object {
  ObjKind obj_kind = ObjKind::Heap;
  /// AllocStmt id for heap objects; lowered proc id for frames; 0 for globals.
  std::uint32_t site = 0;
  /// Creating process id (transient; canonicalization ignores it) — used by
  /// the access-log analyses.
  std::uint32_t creator = 0;
  /// Birthdate: the creator's procedure string at allocation time.
  ProcString birth;
  /// First dense location id of cell 0 within the owning Store.
  std::uint32_t base = 0;
  std::vector<Value> cells;
};

/// Deep size of an object (the handle accounting unit for the
/// frontier-bytes gauge). Cells never grow after allocation, so this is
/// stable over the object's lifetime.
[[nodiscard]] std::size_t object_bytes(const Object& o) noexcept;

class Store {
 public:
  /// Creates `ncells` zero-initialized cells; returns the new object's id.
  ObjId allocate(ObjKind kind, std::uint32_t site, std::uint32_t creator, ProcString birth,
                 std::uint32_t ncells);

  [[nodiscard]] const Object& object(ObjId id) const;
  /// The COW seam: mutable access to an object, cloning it first iff its
  /// handle is shared with another Store. Callers must hold exclusive
  /// ownership of this *Store* (one worker, one configuration).
  [[nodiscard]] Object& mutate(ObjId id);
  [[nodiscard]] std::size_t num_objects() const noexcept { return objects_.size(); }
  /// One past the largest dense location id.
  [[nodiscard]] std::size_t num_locations() const noexcept { return next_base_; }

  /// Reads/writes with bounds checking; offset past the object's cells is a
  /// runtime error reported via copar::Error (the stepper catches it).
  [[nodiscard]] Value read(ObjId obj, std::uint32_t off) const;
  void write(ObjId obj, std::uint32_t off, Value v);
  [[nodiscard]] bool in_bounds(ObjId obj, std::uint32_t off) const noexcept;

  /// Dense location id of (obj, off) for read/write bitsets.
  [[nodiscard]] std::size_t loc_id(ObjId obj, std::uint32_t off) const;

  /// Inverse of loc_id: which (object, offset) a dense location id names.
  [[nodiscard]] std::pair<ObjId, std::uint32_t> locate(std::size_t loc) const;

  [[nodiscard]] std::string to_string() const;

 private:
  /// Shared immutable handle. The pointee is only written through mutate()
  /// while its refcount is exactly 1, so sharing handles across
  /// configurations (and worker threads) is safe.
  using Handle = std::shared_ptr<Object>;
  static Handle track(Object&& o);

  std::vector<Handle> objects_;
  std::uint32_t next_base_ = 0;
};

}  // namespace copar::sem
