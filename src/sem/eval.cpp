#include "src/sem/eval.h"

namespace copar::sem {

using lang::Expr;
using lang::ExprKind;

Value Evaluator::read_cell(ObjId obj, std::uint32_t off, std::uint32_t expr_id) {
  if (!cfg_.store.in_bounds(obj, off)) throw EvalFault{Fault::OutOfBounds, expr_id};
  if (reads_ != nullptr) reads_->set(cfg_.store.loc_id(obj, off));
  return cfg_.store.read(obj, off);
}

ObjId Evaluator::hop_frames(std::uint16_t hops, std::uint32_t expr_id) {
  ObjId obj = frame_;
  for (std::uint16_t h = 0; h < hops; ++h) {
    const Value link = read_cell(obj, 0, expr_id);
    require(link.is_ptr(), "static link chain corrupt");
    obj = link.ptr_obj();
  }
  return obj;
}

Address Evaluator::var_address(const Expr& ref) {
  const VarLoc& loc = cfg_.program().varloc(ref.id());
  if (loc.is_global) return Address{0, loc.slot};  // globals frame is object 0
  require(frame_ != kNoObj, "local variable referenced outside any frame");
  return Address{hop_frames(loc.hops, ref.id()), loc.slot};
}

std::int64_t Evaluator::want_int(const Value& v, std::uint32_t expr_id) {
  if (!v.is_int()) throw EvalFault{Fault::TypeError, expr_id};
  return v.as_int();
}

Address Evaluator::addr(const Expr& lvalue) {
  switch (lvalue.kind()) {
    case ExprKind::VarRef:
      return var_address(lvalue);
    case ExprKind::Deref: {
      const auto& d = lang::expr_cast<lang::Deref>(lvalue);
      const Value p = eval(d.pointer());
      if (p.is_null()) throw EvalFault{Fault::DerefNull, lvalue.id()};
      if (!p.is_ptr()) throw EvalFault{Fault::DerefNonPointer, lvalue.id()};
      return Address{p.ptr_obj(), p.ptr_off()};
    }
    case ExprKind::Index: {
      const auto& ix = lang::expr_cast<lang::Index>(lvalue);
      const Value base = eval(ix.base());
      if (base.is_null()) throw EvalFault{Fault::DerefNull, lvalue.id()};
      if (!base.is_ptr()) throw EvalFault{Fault::DerefNonPointer, lvalue.id()};
      const std::int64_t i = want_int(eval(ix.index()), ix.index().id());
      const std::int64_t off = static_cast<std::int64_t>(base.ptr_off()) + i;
      if (off < 0) throw EvalFault{Fault::OutOfBounds, lvalue.id()};
      return Address{base.ptr_obj(), static_cast<std::uint32_t>(off)};
    }
    default:
      throw Error("addr: expression is not an lvalue");
  }
}

Value Evaluator::eval(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::IntLit:
      return Value::integer(lang::expr_cast<lang::IntLit>(e).value());
    case ExprKind::BoolLit:
      return Value::integer(lang::expr_cast<lang::BoolLit>(e).value() ? 1 : 0);
    case ExprKind::NullLit:
      return Value::null();
    case ExprKind::VarRef: {
      const Address a = var_address(e);
      return read_cell(a.obj, a.off, e.id());
    }
    case ExprKind::Deref:
    case ExprKind::Index: {
      const Address a = addr(e);
      return read_cell(a.obj, a.off, e.id());
    }
    case ExprKind::AddrOf: {
      const Address a = addr(lang::expr_cast<lang::AddrOf>(e).lvalue());
      return Value::pointer(a.obj, a.off);
    }
    case ExprKind::Unary: {
      const auto& u = lang::expr_cast<lang::Unary>(e);
      const Value v = eval(u.operand());
      if (u.op() == lang::UnOp::Neg) return Value::integer(-want_int(v, e.id()));
      return Value::integer(v.truthy() ? 0 : 1);  // not
    }
    case ExprKind::Binary: {
      const auto& b = lang::expr_cast<lang::Binary>(e);
      const Value l = eval(b.lhs());
      const Value r = eval(b.rhs());
      using lang::BinOp;
      switch (b.op()) {
        case BinOp::Add:
          // Pointer arithmetic: p + i moves within the pointed-to object.
          if (l.is_ptr() && r.is_int()) {
            const std::int64_t off = static_cast<std::int64_t>(l.ptr_off()) + r.as_int();
            if (off < 0) throw EvalFault{Fault::OutOfBounds, e.id()};
            return Value::pointer(l.ptr_obj(), static_cast<std::uint32_t>(off));
          }
          return Value::integer(want_int(l, e.id()) + want_int(r, e.id()));
        case BinOp::Sub:
          if (l.is_ptr() && r.is_int()) {
            const std::int64_t off = static_cast<std::int64_t>(l.ptr_off()) - r.as_int();
            if (off < 0) throw EvalFault{Fault::OutOfBounds, e.id()};
            return Value::pointer(l.ptr_obj(), static_cast<std::uint32_t>(off));
          }
          return Value::integer(want_int(l, e.id()) - want_int(r, e.id()));
        case BinOp::Mul:
          return Value::integer(want_int(l, e.id()) * want_int(r, e.id()));
        case BinOp::Div: {
          const std::int64_t d = want_int(r, e.id());
          if (d == 0) throw EvalFault{Fault::DivByZero, e.id()};
          return Value::integer(want_int(l, e.id()) / d);
        }
        case BinOp::Mod: {
          const std::int64_t d = want_int(r, e.id());
          if (d == 0) throw EvalFault{Fault::DivByZero, e.id()};
          return Value::integer(want_int(l, e.id()) % d);
        }
        case BinOp::Eq:
          return Value::integer(l == r ? 1 : 0);
        case BinOp::Ne:
          return Value::integer(l == r ? 0 : 1);
        case BinOp::Lt:
          return Value::integer(want_int(l, e.id()) < want_int(r, e.id()) ? 1 : 0);
        case BinOp::Le:
          return Value::integer(want_int(l, e.id()) <= want_int(r, e.id()) ? 1 : 0);
        case BinOp::Gt:
          return Value::integer(want_int(l, e.id()) > want_int(r, e.id()) ? 1 : 0);
        case BinOp::Ge:
          return Value::integer(want_int(l, e.id()) >= want_int(r, e.id()) ? 1 : 0);
        case BinOp::And:
          return Value::integer(l.truthy() && r.truthy() ? 1 : 0);
        case BinOp::Or:
          return Value::integer(l.truthy() || r.truthy() ? 1 : 0);
      }
      throw Error("eval: bad binary op");
    }
    case ExprKind::FunLit: {
      const auto& f = lang::expr_cast<lang::FunLit>(e);
      return Value::closure(f.decl().index(), frame_);
    }
  }
  throw Error("eval: bad expression kind");
}

}  // namespace copar::sem
