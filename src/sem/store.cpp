#include "src/sem/store.h"

#include <sstream>

#include "src/sem/cowstats.h"

namespace copar::sem {

std::size_t object_bytes(const Object& o) noexcept {
  return sizeof(Object) + o.cells.capacity() * sizeof(Value) +
         o.birth.syms().capacity() * sizeof(PSym);
}

Store::Handle Store::track(Object&& o) {
  const std::size_t n = object_bytes(o);
  cowstats::add_live_bytes(n);
  return Handle(new Object(std::move(o)),
                [n](Object* p) noexcept {
                  cowstats::sub_live_bytes(n);
                  delete p;
                });
}

ObjId Store::allocate(ObjKind kind, std::uint32_t site, std::uint32_t creator, ProcString birth,
                      std::uint32_t ncells) {
  Object obj;
  obj.obj_kind = kind;
  obj.site = site;
  obj.creator = creator;
  obj.birth = std::move(birth);
  obj.base = next_base_;
  obj.cells.assign(ncells, Value::integer(0));
  next_base_ += ncells;
  objects_.push_back(track(std::move(obj)));
  return static_cast<ObjId>(objects_.size() - 1);
}

const Object& Store::object(ObjId id) const {
  require(id < objects_.size(), "Store::object: bad object id");
  return *objects_[id];
}

Object& Store::mutate(ObjId id) {
  require(id < objects_.size(), "Store::mutate: bad object id");
  Handle& h = objects_[id];
  if (h.use_count() != 1) {
    // Shared with another configuration: clone before writing. A count that
    // is stale (another owner dropping concurrently) only causes a spare
    // clone, never a write to shared structure.
    h = track(Object(*h));
    cowstats::note_object_copied();
  } else {
    cowstats::note_object_shared();
  }
  return *h;
}

bool Store::in_bounds(ObjId obj, std::uint32_t off) const noexcept {
  return obj < objects_.size() && off < objects_[obj]->cells.size();
}

Value Store::read(ObjId obj, std::uint32_t off) const {
  require(in_bounds(obj, off), "store read out of bounds");
  return objects_[obj]->cells[off];
}

void Store::write(ObjId obj, std::uint32_t off, Value v) {
  require(in_bounds(obj, off), "store write out of bounds");
  mutate(obj).cells[off] = v;
}

std::size_t Store::loc_id(ObjId obj, std::uint32_t off) const {
  require(in_bounds(obj, off), "loc_id out of bounds");
  return objects_[obj]->base + off;
}

std::pair<ObjId, std::uint32_t> Store::locate(std::size_t loc) const {
  // Bases are strictly increasing; binary-search the owning object.
  require(loc < next_base_, "locate: bad location id");
  std::size_t lo = 0;
  std::size_t hi = objects_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (objects_[mid]->base <= loc) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Zero-cell objects share their base with the next object; skip backwards
  // never needed because such objects own no locations.
  const std::uint32_t off = static_cast<std::uint32_t>(loc - objects_[lo]->base);
  require(off < objects_[lo]->cells.size(), "locate: location in zero-cell gap");
  return {static_cast<ObjId>(lo), off};
}

std::string Store::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    const Object& o = *objects_[i];
    os << "obj" << i << "(";
    switch (o.obj_kind) {
      case ObjKind::Globals: os << "globals"; break;
      case ObjKind::Frame: os << "frame p" << o.site; break;
      case ObjKind::Heap: os << "heap s" << o.site; break;
    }
    os << ") = [";
    for (std::size_t c = 0; c < o.cells.size(); ++c) {
      if (c > 0) os << ", ";
      os << o.cells[c].to_string();
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace copar::sem
