// Pure expression evaluation over a configuration.
//
// Expressions in the language are side-effect free (alloc and calls are
// statement-level), so one evaluator serves both real execution and the
// "dry runs" that compute an action's read set for stubborn-set conflict
// detection: every store cell read during evaluation (including static-link
// hops and pointer loads) is recorded into the optional read bitset.
//
// Runtime faults (null deref, division by zero, ...) are reported by
// throwing EvalFault; the stepper converts them into fault states.
#pragma once

#include "src/lang/ast.h"
#include "src/sem/config.h"
#include "src/support/bitset.h"

namespace copar::sem {

struct EvalFault {
  Fault kind;
  std::uint32_t expr_id;
};

struct Address {
  ObjId obj = kNoObj;
  std::uint32_t off = 0;
};

class Evaluator {
 public:
  /// `frame` is the current frame object (kNoObj only while evaluating
  /// global initializers, where locals cannot occur).
  Evaluator(const Configuration& cfg, ObjId frame, DynamicBitset* reads = nullptr)
      : cfg_(cfg), frame_(frame), reads_(reads) {}

  [[nodiscard]] Value eval(const lang::Expr& e);

  /// Address of an lvalue (VarRef / Deref / Index). Evaluating the address
  /// reads whatever the address computation reads, but not the cell itself.
  [[nodiscard]] Address addr(const lang::Expr& lvalue);

 private:
  [[nodiscard]] Value read_cell(ObjId obj, std::uint32_t off, std::uint32_t expr_id);
  [[nodiscard]] ObjId hop_frames(std::uint16_t hops, std::uint32_t expr_id);
  [[nodiscard]] Address var_address(const lang::Expr& ref);
  [[nodiscard]] std::int64_t want_int(const Value& v, std::uint32_t expr_id);

  const Configuration& cfg_;
  ObjId frame_;
  DynamicBitset* reads_;
};

}  // namespace copar::sem
