#include "src/sem/lockid.h"

#include "src/lang/ast.h"

namespace copar::sem {

std::optional<std::uint32_t> lock_global_slot(const LoweredProgram& prog,
                                              const lang::Expr& lvalue) {
  if (lvalue.kind() != lang::ExprKind::VarRef) return std::nullopt;
  const VarLoc& vl = prog.varloc(lvalue.id());
  if (!vl.is_global) return std::nullopt;
  return vl.slot;
}

std::string lock_cell_name(const LoweredProgram& prog, std::uint32_t slot) {
  for (const GlobalSlot& g : prog.globals()) {
    if (g.slot == slot) return std::string(prog.module().interner().spelling(g.name));
  }
  return "global#" + std::to_string(slot);
}

}  // namespace copar::sem
