#include "src/sem/program.h"

#include "src/lang/parser.h"
#include "src/support/telemetry.h"

namespace copar {

std::unique_ptr<CompiledProgram> compile(std::string_view source) {
  auto out = std::make_unique<CompiledProgram>();
  {
    telemetry::ScopedPhase phase(telemetry::Phase::Parse);
    out->module = lang::parse_program(source);
  }
  {
    telemetry::ScopedPhase phase(telemetry::Phase::Lower);
    out->lowered = sem::lower(*out->module);
  }
  return out;
}

}  // namespace copar
