#include "src/sem/program.h"

#include "src/lang/parser.h"

namespace copar {

std::unique_ptr<CompiledProgram> compile(std::string_view source) {
  auto out = std::make_unique<CompiledProgram>();
  out->module = lang::parse_program(source);
  out->lowered = sem::lower(*out->module);
  return out;
}

}  // namespace copar
