#include "src/sem/config.h"

#include <algorithm>
#include <sstream>

#include "src/sem/cowstats.h"
#include "src/sem/eval.h"

namespace copar::sem {

std::size_t process_bytes(const Process& p) noexcept {
  return sizeof(Process) + p.frames.capacity() * sizeof(Frame) +
         p.pstr.syms().capacity() * sizeof(PSym) + p.path.capacity() * sizeof(PathElem);
}

ProcessTable::Handle ProcessTable::track(Process&& p) {
  const std::size_t n = process_bytes(p);
  cowstats::add_live_bytes(n);
  return Handle(new Process(std::move(p)),
                [n](Process* ptr) noexcept {
                  cowstats::sub_live_bytes(n);
                  delete ptr;
                });
}

Process& ProcessTable::mutate(Pid pid) {
  require(pid < procs_.size(), "ProcessTable::mutate: bad pid");
  Handle& h = procs_[pid];
  if (h.use_count() != 1) {
    h = track(Process(*h));
    cowstats::note_process_clone();
  }
  return *h;
}

void ProcessTable::push_back(Process&& p) { procs_.push_back(track(std::move(p))); }

std::string_view fault_name(Fault f) {
  switch (f) {
    case Fault::DerefNull: return "null dereference";
    case Fault::DerefNonPointer: return "dereference of non-pointer";
    case Fault::OutOfBounds: return "out-of-bounds access";
    case Fault::TypeError: return "type error";
    case Fault::DivByZero: return "division by zero";
    case Fault::NotAFunction: return "call of non-function";
    case Fault::ArityMismatch: return "wrong number of arguments";
    case Fault::UnlockNotHeld: return "unlock of lock not held";
    case Fault::NegativeAlloc: return "negative allocation size";
  }
  return "<?>";
}

Configuration Configuration::initial(const LoweredProgram& program) {
  Configuration cfg;
  cfg.program_ = &program;

  // Globals frame (always object 0). Cell 0 is unused (uniform layout).
  const ObjId g = cfg.store.allocate(ObjKind::Globals, 0, 0, ProcString(), program.nglobal_cells());
  require(g == 0, "globals frame must be object 0");
  cfg.store.write(0, 0, Value::null());

  // Named functions first (so initializers may reference any function),
  // then initializer expressions, left to right.
  for (const GlobalSlot& slot : program.globals()) {
    if (slot.fun != nullptr) {
      cfg.store.write(0, slot.slot, Value::closure(slot.fun->index(), kNoObj));
    }
  }
  for (const GlobalSlot& slot : program.globals()) {
    if (slot.init != nullptr) {
      Evaluator ev(cfg, kNoObj);
      try {
        cfg.store.write(0, slot.slot, ev.eval(*slot.init));
      } catch (const EvalFault& f) {
        throw Error("global initializer for '" +
                    std::string(program.module().interner().spelling(slot.name)) +
                    "' faulted: " + std::string(fault_name(f.kind)));
      }
    }
  }

  // Root process entering main.
  const Proc& entry = program.proc(program.entry_proc());
  const ObjId frame =
      cfg.store.allocate(ObjKind::Frame, entry.id, 0, ProcString(), std::max(entry.nslots, 1u));
  cfg.store.write(frame, 0, Value::null());
  Process root;
  root.status = ProcStatus::Running;
  root.frames.push_back(Frame{entry.id, 0, frame, false, kNoObj, 0});
  root.pstr = ProcString().append(ProcString::call_sym(entry.id));
  cfg.processes.push_back(std::move(root));
  return cfg;
}

std::size_t Configuration::num_live() const {
  return static_cast<std::size_t>(
      std::count_if(processes.begin(), processes.end(),
                    [](const Process& p) { return p.live(); }));
}

std::optional<Value> Configuration::global_value(std::string_view name) const {
  for (const GlobalSlot& slot : program_->globals()) {
    if (program_->module().interner().spelling(slot.name) == name) {
      return store.read(0, slot.slot);
    }
  }
  return std::nullopt;
}

namespace {

/// Little-endian byte serializer for canonical keys.
class ByteSink {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

template <class Sink>
void emit_pstring(Sink& sink, const ProcString& s) {
  sink.u32(static_cast<std::uint32_t>(s.size()));
  for (const PSym& sym : s.syms()) {
    sink.u8(static_cast<std::uint8_t>(sym.kind));
    sink.u32(sym.id);
    sink.u32(sym.branch);
  }
}

/// The one canonicalization traversal. Both canonical_key() (ByteSink) and
/// canonical_fingerprint() (Fp128Hasher) feed their sink from this function,
/// so the key bytes and the hashed bytes are the same stream by
/// construction.
template <class Sink>
void serialize_canonical(const Configuration& cfg, Sink& sink) {
  // 1. Canonical order of live processes: lexicographic by fork path.
  // Pids and ObjIds are dense indices, so the renumbering maps here and
  // below are flat vectors (no per-call hashing) — this traversal runs once
  // per discovered configuration and dominates the canonicalize phase.
  std::vector<Pid> live;
  live.reserve(cfg.processes.size());
  for (Pid pid = 0; pid < cfg.processes.size(); ++pid) {
    if (cfg.processes[pid].live()) live.push_back(pid);
  }
  std::sort(live.begin(), live.end(),
            [&](Pid a, Pid b) { return cfg.processes[a].path < cfg.processes[b].path; });
  std::vector<std::uint32_t> canon_pid(cfg.processes.size(), 0xffffffffu);
  for (std::uint32_t i = 0; i < live.size(); ++i) canon_pid[live[i]] = i;

  // 2. Object renumbering by deterministic reachability (also GC).
  std::vector<std::uint32_t> remap(cfg.store.num_objects(), 0xffffffffu);
  std::vector<ObjId> order;
  order.reserve(cfg.store.num_objects());
  auto visit = [&](ObjId obj) {
    if (obj == kNoObj) return;
    std::uint32_t& slot = remap[obj];
    if (slot == 0xffffffffu) {
      slot = static_cast<std::uint32_t>(order.size());
      order.push_back(obj);
    }
  };
  visit(0);  // globals frame
  for (Pid pid : live) {
    for (const Frame& f : cfg.processes[pid].frames) {
      visit(f.frame_obj);
      if (f.has_ret_dst) visit(f.ret_obj);
    }
  }
  for (std::size_t i = 0; i < order.size(); ++i) {  // order grows during scan
    const Object& o = cfg.store.object(order[i]);
    for (const Value& v : o.cells) {
      if (v.is_ptr()) visit(v.ptr_obj());
      if (v.is_closure()) visit(v.closure_env());
    }
  }

  auto canon_obj = [&](ObjId obj) -> std::uint32_t {
    return obj < remap.size() ? remap[obj] : 0xffffffffu;  // kNoObj maps out
  };
  auto emit_value = [&](const Value& v) {
    sink.u8(static_cast<std::uint8_t>(v.kind()));
    switch (v.kind()) {
      case VKind::Int:
        sink.u64(static_cast<std::uint64_t>(v.as_int()));
        break;
      case VKind::Null:
        break;
      case VKind::Ptr:
        sink.u32(canon_obj(v.ptr_obj()));
        sink.u32(v.ptr_off());
        break;
      case VKind::Closure:
        sink.u32(v.closure_proc());
        sink.u32(v.closure_env() == kNoObj ? 0xffffffffu : canon_obj(v.closure_env()));
        break;
    }
  };

  // 3. Serialize.
  sink.u32(static_cast<std::uint32_t>(order.size()));
  for (ObjId obj : order) {
    const Object& o = cfg.store.object(obj);
    sink.u8(static_cast<std::uint8_t>(o.obj_kind));
    sink.u32(o.site);
    emit_pstring(sink, o.birth);
    sink.u32(static_cast<std::uint32_t>(o.cells.size()));
    for (const Value& v : o.cells) emit_value(v);
  }

  sink.u32(static_cast<std::uint32_t>(live.size()));
  for (Pid pid : live) {
    const Process& p = cfg.processes[pid];
    sink.u32(static_cast<std::uint32_t>(p.path.size()));
    for (const PathElem& e : p.path) {
      sink.u32(e.site);
      sink.u32(e.branch);
    }
    emit_pstring(sink, p.pstr);
    sink.u32(p.pending_children);
    sink.u32(static_cast<std::uint32_t>(p.frames.size()));
    for (const Frame& f : p.frames) {
      sink.u32(f.proc);
      sink.u32(f.pc);
      sink.u32(canon_obj(f.frame_obj));
      sink.u8(f.has_ret_dst ? 1 : 0);
      if (f.has_ret_dst) {
        sink.u32(canon_obj(f.ret_obj));
        sink.u32(f.ret_off);
      }
    }
  }

  // Lock table, sorted by canonical location.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> locks;
  locks.reserve(cfg.lock_owners.size());
  for (const auto& [loc, owner] : cfg.lock_owners) {
    const std::uint32_t co = canon_obj(loc.first);
    if (co == 0xffffffffu) continue;  // unreachable cell: lock is inert
    locks.emplace_back(co, loc.second,
                       owner < canon_pid.size() ? canon_pid[owner] : 0xffffffffu);
  }
  std::sort(locks.begin(), locks.end());
  sink.u32(static_cast<std::uint32_t>(locks.size()));
  for (const auto& [obj, off, owner] : locks) {
    sink.u32(obj);
    sink.u32(off);
    sink.u32(owner);
  }

  sink.u32(static_cast<std::uint32_t>(cfg.violations.size()));
  for (std::uint32_t v : cfg.violations) sink.u32(v);
  sink.u32(static_cast<std::uint32_t>(cfg.faults.size()));
  for (const auto& [stmt, kind] : cfg.faults) {
    sink.u32(stmt);
    sink.u8(kind);
  }
}

}  // namespace

std::string Configuration::canonical_key() const {
  ByteSink sink;
  serialize_canonical(*this, sink);
  return sink.take();
}

support::Fingerprint Configuration::canonical_fingerprint() const {
  support::Fp128Hasher sink;
  serialize_canonical(*this, sink);
  return sink.finalize();
}

std::vector<bool> reachable_objects(const Configuration& cfg) {
  std::vector<bool> seen(cfg.store.num_objects(), false);
  std::vector<ObjId> work;
  auto visit = [&](ObjId obj) {
    if (obj == kNoObj || obj >= seen.size() || seen[obj]) return;
    seen[obj] = true;
    work.push_back(obj);
  };
  visit(0);
  for (const Process& p : cfg.processes) {
    if (!p.live()) continue;
    for (const Frame& f : p.frames) {
      visit(f.frame_obj);
      if (f.has_ret_dst) visit(f.ret_obj);
    }
  }
  while (!work.empty()) {
    const ObjId obj = work.back();
    work.pop_back();
    for (const Value& v : cfg.store.object(obj).cells) {
      if (v.is_ptr()) visit(v.ptr_obj());
      if (v.is_closure()) visit(v.closure_env());
    }
  }
  return seen;
}

std::string Configuration::to_string() const {
  std::ostringstream os;
  for (Pid pid = 0; pid < processes.size(); ++pid) {
    const Process& p = processes[pid];
    os << "p" << pid;
    switch (p.status) {
      case ProcStatus::Running: os << " [run]"; break;
      case ProcStatus::Terminated: os << " [done]"; break;
      case ProcStatus::Faulted: os << " [fault]"; break;
    }
    if (p.live()) {
      os << " at ";
      for (std::size_t i = 0; i < p.frames.size(); ++i) {
        if (i > 0) os << " > ";
        os << program_->describe_point(p.frames[i].proc, p.frames[i].pc);
      }
      if (p.pending_children > 0) os << " (waiting on " << p.pending_children << ")";
    }
    os << " pstr=" << p.pstr.to_string() << '\n';
  }
  os << store.to_string();
  if (!violations.empty()) {
    os << "violations:";
    for (std::uint32_t v : violations) os << ' ' << v;
    os << '\n';
  }
  if (!faults.empty()) {
    os << "faults:";
    for (const auto& [stmt, kind] : faults) {
      os << " (stmt " << stmt << ": " << fault_name(static_cast<Fault>(kind)) << ')';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace copar::sem
