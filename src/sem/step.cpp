#include "src/sem/step.h"

#include "src/sem/eval.h"

namespace copar::sem {

std::string_view action_kind_name(ActionKind k) {
  switch (k) {
    case ActionKind::None: return "none";
    case ActionKind::Assign: return "assign";
    case ActionKind::Alloc: return "alloc";
    case ActionKind::Call: return "call";
    case ActionKind::Return: return "return";
    case ActionKind::Branch: return "branch";
    case ActionKind::Fork: return "fork";
    case ActionKind::Join: return "join";
    case ActionKind::Lock: return "lock";
    case ActionKind::Unlock: return "unlock";
    case ActionKind::Assert: return "assert";
  }
  return "<?>";
}

namespace {

/// Folds micro-ops after a pc change: unconditional jumps, and the exit
/// bookkeeping of a cobegin branch that ran off its end.
/// Precondition: the caller already owns `pid`'s process exclusively (it
/// was just mutated or freshly pushed), so the mutate() here never clones.
void settle(Configuration& cfg, Pid pid) {
  Process& p = cfg.processes.mutate(pid);
  for (;;) {
    if (!p.live() || p.frames.empty()) return;
    Frame& f = p.top();
    const Proc& proc = cfg.program().proc(f.proc);
    require(f.pc < proc.code.size(), "pc out of range");
    const Instr& instr = proc.code[f.pc];
    if (instr.op == Op::Jump) {
      f.pc = instr.t1;
      continue;
    }
    if (instr.op == Op::Halt && proc.is_thread && p.frames.size() == 1) {
      // Thread exit: purely local bookkeeping, folded into the preceding
      // action (the paper's coend consumes no transition of its own).
      p.status = ProcStatus::Terminated;
      require(!p.path.empty(), "thread process without fork path");
      p.pstr = p.pstr.append(ProcString::join_sym(p.path.back().site, p.path.back().branch));
      p.frames.clear();
      require(p.parent != kNoPid && cfg.processes[p.parent].pending_children > 0,
              "thread exit without pending parent");
      cfg.processes.mutate(p.parent).pending_children -= 1;
      return;
    }
    return;
  }
}

struct Decoded {
  ActionKind kind = ActionKind::None;
  const Instr* instr = nullptr;
  std::uint32_t proc = 0;
  std::uint32_t pc = 0;
};

/// The current instruction of a live process, with Halt-of-function decoded
/// as an implicit Return.
Decoded decode(const Configuration& cfg, Pid pid) {
  Decoded d;
  const Process& p = cfg.processes[pid];
  if (!p.live() || p.frames.empty()) return d;
  const Frame& f = p.frames.back();
  const Proc& proc = cfg.program().proc(f.proc);
  const Instr& instr = proc.code[f.pc];
  d.instr = &instr;
  d.proc = f.proc;
  d.pc = f.pc;
  switch (instr.op) {
    case Op::Assign: d.kind = ActionKind::Assign; break;
    case Op::Alloc: d.kind = ActionKind::Alloc; break;
    case Op::Call: d.kind = ActionKind::Call; break;
    case Op::Return: d.kind = ActionKind::Return; break;
    case Op::Branch: d.kind = ActionKind::Branch; break;
    case Op::Fork:
    case Op::ForkRange:
      d.kind = ActionKind::Fork;
      break;
    case Op::Join: d.kind = ActionKind::Join; break;
    case Op::Lock: d.kind = ActionKind::Lock; break;
    case Op::Unlock: d.kind = ActionKind::Unlock; break;
    case Op::Assert: d.kind = ActionKind::Assert; break;
    case Op::Halt:
      // settle() consumed thread halts; a Halt seen here is a function
      // (or main) body end: an implicit `return null`.
      d.kind = ActionKind::Return;
      break;
    case Op::Jump:
      throw Error("decode: unsettled jump");
  }
  return d;
}

}  // namespace

ActionInfo action_info(const Configuration& cfg, Pid pid) {
  ActionInfo info;
  const Decoded d = decode(cfg, pid);
  if (d.kind == ActionKind::None) return info;
  const Process& p = cfg.processes[pid];
  info.exists = true;
  info.enabled = true;
  info.kind = d.kind;
  info.pid = pid;
  info.proc = d.proc;
  info.pc = d.pc;
  info.instr = d.instr;
  info.stmt_id = (d.instr->stmt != nullptr) ? d.instr->stmt->id() : kNoStmt;

  const ObjId frame = p.frames.back().frame_obj;
  Evaluator ev(cfg, frame, &info.reads);
  try {
    switch (d.kind) {
      case ActionKind::Assign: {
        (void)ev.eval(*d.instr->rhs);
        const Address a = ev.addr(*d.instr->lhs);
        if (!cfg.store.in_bounds(a.obj, a.off)) throw EvalFault{Fault::OutOfBounds, 0};
        info.writes.set(cfg.store.loc_id(a.obj, a.off));
        break;
      }
      case ActionKind::Alloc: {
        (void)ev.eval(*d.instr->rhs);
        const Address a = ev.addr(*d.instr->lhs);
        if (!cfg.store.in_bounds(a.obj, a.off)) throw EvalFault{Fault::OutOfBounds, 0};
        info.writes.set(cfg.store.loc_id(a.obj, a.off));
        break;
      }
      case ActionKind::Call: {
        (void)ev.eval(*d.instr->rhs);  // callee
        if (d.instr->args != nullptr) {
          for (const auto& arg : *d.instr->args) (void)ev.eval(*arg);
        }
        if (d.instr->lhs != nullptr) (void)ev.addr(*d.instr->lhs);
        // Writes only fresh frame cells — no shared-store writes here; the
        // destination is written by the matching Return.
        break;
      }
      case ActionKind::Return: {
        if (d.instr->op == Op::Return && d.instr->rhs != nullptr) (void)ev.eval(*d.instr->rhs);
        const Frame& f = p.frames.back();
        if (f.has_ret_dst) {
          if (!cfg.store.in_bounds(f.ret_obj, f.ret_off)) throw EvalFault{Fault::OutOfBounds, 0};
          info.writes.set(cfg.store.loc_id(f.ret_obj, f.ret_off));
        }
        break;
      }
      case ActionKind::Branch:
      case ActionKind::Assert: {
        if (d.instr->rhs != nullptr) (void)ev.eval(*d.instr->rhs);
        break;
      }
      case ActionKind::Fork:
        if (d.instr->op == Op::ForkRange) {
          (void)ev.eval(*d.instr->rhs);   // lo
          (void)ev.eval(*d.instr->rhs2);  // hi
        }
        break;
      case ActionKind::Join:
        info.enabled = (p.pending_children == 0);
        break;
      case ActionKind::Lock: {
        const Address a = ev.addr(*d.instr->lhs);
        if (!cfg.store.in_bounds(a.obj, a.off)) throw EvalFault{Fault::OutOfBounds, 0};
        const std::size_t loc = cfg.store.loc_id(a.obj, a.off);
        info.reads.set(loc);
        info.writes.set(loc);
        info.has_lock_loc = true;
        info.lock_obj = a.obj;
        info.lock_off = a.off;
        const Value v = cfg.store.read(a.obj, a.off);
        info.enabled = (v == Value::integer(0));
        break;
      }
      case ActionKind::Unlock: {
        const Address a = ev.addr(*d.instr->lhs);
        if (!cfg.store.in_bounds(a.obj, a.off)) throw EvalFault{Fault::OutOfBounds, 0};
        const std::size_t loc = cfg.store.loc_id(a.obj, a.off);
        info.reads.set(loc);
        info.writes.set(loc);
        info.has_lock_loc = true;
        info.lock_obj = a.obj;
        info.lock_off = a.off;
        break;
      }
      case ActionKind::None:
        break;
    }
  } catch (const EvalFault&) {
    // Firing the action will produce a fault state; it is enabled and
    // writes nothing.
    info.may_fault = true;
    info.enabled = true;
    info.writes.clear();
    info.has_lock_loc = false;
  }
  return info;
}

std::vector<ActionInfo> all_action_infos(const Configuration& cfg) {
  std::vector<ActionInfo> out;
  for (Pid pid = 0; pid < cfg.processes.size(); ++pid) {
    if (!cfg.processes[pid].live()) continue;
    ActionInfo info = action_info(cfg, pid);
    if (info.exists) out.push_back(std::move(info));
  }
  return out;
}

bool is_deadlock(const Configuration& cfg) {
  bool any_live = false;
  for (Pid pid = 0; pid < cfg.processes.size(); ++pid) {
    if (!cfg.processes[pid].live()) continue;
    any_live = true;
    if (action_info(cfg, pid).enabled) return false;
  }
  return any_live;
}

namespace {

/// Fires an already-decoded action. `d` must have been decoded from `cfg`
/// at `pid`'s current control point (either just now, or by the
/// action_info() that established enablement — the configuration must not
/// have changed in between).
Configuration apply_decoded(const Configuration& cfg, Pid pid, const Decoded& d) {
  Configuration next = cfg;  // shallow: shares every object and process
  Process& p = next.processes.mutate(pid);
  require(p.live() && !p.frames.empty(), "apply_action: process not runnable");
  require(d.kind != ActionKind::None, "apply_action: no action");
  const std::uint32_t stmt_id = (d.instr->stmt != nullptr) ? d.instr->stmt->id() : kNoStmt;

  try {
    Frame& f = p.top();
    const ObjId frame = f.frame_obj;
    Evaluator ev(next, frame);
    switch (d.kind) {
      case ActionKind::Assign: {
        const Value v = ev.eval(*d.instr->rhs);
        const Address a = ev.addr(*d.instr->lhs);
        if (!next.store.in_bounds(a.obj, a.off)) throw EvalFault{Fault::OutOfBounds, 0};
        next.store.write(a.obj, a.off, v);
        f.pc += 1;
        break;
      }
      case ActionKind::Alloc: {
        const Value nv = ev.eval(*d.instr->rhs);
        if (!nv.is_int()) throw EvalFault{Fault::TypeError, d.instr->rhs->id()};
        if (nv.as_int() < 0) throw EvalFault{Fault::NegativeAlloc, d.instr->rhs->id()};
        const Address a = ev.addr(*d.instr->lhs);
        if (!next.store.in_bounds(a.obj, a.off)) throw EvalFault{Fault::OutOfBounds, 0};
        const ObjId obj = next.store.allocate(ObjKind::Heap, stmt_id, pid, p.pstr,
                                              static_cast<std::uint32_t>(nv.as_int()));
        next.store.write(a.obj, a.off, Value::pointer(obj, 0));
        p.top().pc += 1;  // p is handle-stable across store.allocate
        break;
      }
      case ActionKind::Call: {
        const Value callee = ev.eval(*d.instr->rhs);
        if (!callee.is_closure()) throw EvalFault{Fault::NotAFunction, d.instr->rhs->id()};
        const Proc& target = next.program().proc(callee.closure_proc());
        require(!target.is_thread, "call of thread proc");
        std::vector<Value> args;
        if (d.instr->args != nullptr) {
          args.reserve(d.instr->args->size());
          for (const auto& arg : *d.instr->args) args.push_back(ev.eval(*arg));
        }
        require(target.fun != nullptr, "function proc without declaration");
        if (args.size() != target.fun->params().size()) {
          throw EvalFault{Fault::ArityMismatch, d.instr->rhs->id()};
        }
        Frame callee_frame;
        callee_frame.proc = target.id;
        callee_frame.pc = 0;
        if (d.instr->lhs != nullptr) {
          const Address a = ev.addr(*d.instr->lhs);
          if (!next.store.in_bounds(a.obj, a.off)) throw EvalFault{Fault::OutOfBounds, 0};
          callee_frame.has_ret_dst = true;
          callee_frame.ret_obj = a.obj;
          callee_frame.ret_off = a.off;
        }
        p.pstr = p.pstr.append(ProcString::call_sym(target.id));
        const ObjId fobj = next.store.allocate(ObjKind::Frame, target.id, pid, p.pstr,
                                               std::max(target.nslots, 1u));
        next.store.write(fobj, 0,
                         callee.closure_env() == kNoObj
                             ? Value::null()
                             : Value::pointer(callee.closure_env(), 0));
        for (std::size_t i = 0; i < args.size(); ++i) {
          next.store.write(fobj, static_cast<std::uint32_t>(1 + i), args[i]);
        }
        callee_frame.frame_obj = fobj;
        p.top().pc += 1;  // caller resumes after the call
        p.frames.push_back(callee_frame);
        break;
      }
      case ActionKind::Return: {
        Value v = Value::null();
        if (d.instr->op == Op::Return && d.instr->rhs != nullptr) v = ev.eval(*d.instr->rhs);
        const Frame done = p.frames.back();
        if (done.has_ret_dst) {
          if (!next.store.in_bounds(done.ret_obj, done.ret_off)) {
            throw EvalFault{Fault::OutOfBounds, 0};
          }
          next.store.write(done.ret_obj, done.ret_off, v);
        }
        p.pstr = p.pstr.append(ProcString::ret_sym(done.proc));
        p.frames.pop_back();
        if (p.frames.empty()) {
          p.status = ProcStatus::Terminated;
          return next;
        }
        break;
      }
      case ActionKind::Branch: {
        const Value c = ev.eval(*d.instr->rhs);
        f.pc = c.truthy() ? d.instr->t1 : d.instr->t2;
        break;
      }
      case ActionKind::Fork: {
        const std::uint32_t site = stmt_id;
        const ObjId forker_frame = f.frame_obj;
        if (d.instr->op == Op::ForkRange) {
          // doall: evaluate the inclusive range, then one instance per
          // index, each with its own frame (slot 1 = index, static link =
          // forker's frame).
          const Value lo = ev.eval(*d.instr->rhs);
          const Value hi = ev.eval(*d.instr->rhs2);
          if (!lo.is_int() || !hi.is_int()) {
            throw EvalFault{Fault::TypeError, d.instr->rhs->id()};
          }
          const std::int64_t count =
              hi.as_int() >= lo.as_int() ? hi.as_int() - lo.as_int() + 1 : 0;
          const std::uint32_t child_proc = d.instr->forks.at(0);
          const Proc& target = next.program().proc(child_proc);
          p.pending_children = static_cast<std::uint32_t>(count);
          f.pc += 1;
          for (std::int64_t k = 0; k < count; ++k) {
            Process child;
            child.status = ProcStatus::Running;
            child.parent = pid;
            child.path = p.path;
            child.path.push_back(PathElem{site, static_cast<std::uint32_t>(k)});
            child.pstr =
                p.pstr.append(ProcString::fork_sym(site, static_cast<std::uint32_t>(k)));
            const ObjId fobj = next.store.allocate(ObjKind::Frame, child_proc, pid,
                                                   child.pstr, std::max(target.nslots, 2u));
            next.store.write(fobj, 0, Value::pointer(forker_frame, 0));
            next.store.write(fobj, 1, Value::integer(lo.as_int() + k));
            child.frames.push_back(Frame{child_proc, 0, fobj, false, kNoObj, 0});
            next.processes.push_back(std::move(child));
            settle(next, static_cast<Pid>(next.processes.size() - 1));
          }
          break;
        }
        p.pending_children = static_cast<std::uint32_t>(d.instr->forks.size());
        f.pc += 1;  // parent proceeds to the Join
        std::vector<std::uint32_t> children = d.instr->forks;
        for (std::uint32_t b = 0; b < children.size(); ++b) {
          Process child;
          child.status = ProcStatus::Running;
          child.parent = pid;
          child.path = p.path;
          child.path.push_back(PathElem{site, b});
          child.pstr = p.pstr.append(ProcString::fork_sym(site, b));
          child.frames.push_back(Frame{children[b], 0, forker_frame, false, kNoObj, 0});
          next.processes.push_back(std::move(child));
          // An empty branch exits immediately (settle folds its Halt).
          settle(next, static_cast<Pid>(next.processes.size() - 1));
        }
        break;
      }
      case ActionKind::Join: {
        require(p.pending_children == 0, "join fired while children pending");
        f.pc += 1;
        break;
      }
      case ActionKind::Lock: {
        const Address a = ev.addr(*d.instr->lhs);
        if (!next.store.in_bounds(a.obj, a.off)) throw EvalFault{Fault::OutOfBounds, 0};
        require(next.store.read(a.obj, a.off) == Value::integer(0),
                "lock fired while held");
        next.store.write(a.obj, a.off, Value::integer(1));
        next.lock_owners.mut()[{a.obj, a.off}] = pid;
        f.pc += 1;
        break;
      }
      case ActionKind::Unlock: {
        const Address a = ev.addr(*d.instr->lhs);
        if (!next.store.in_bounds(a.obj, a.off)) throw EvalFault{Fault::OutOfBounds, 0};
        const auto it = next.lock_owners->find({a.obj, a.off});
        if (it == next.lock_owners->end() || it->second != pid) {
          throw EvalFault{Fault::UnlockNotHeld, d.instr->lhs->id()};
        }
        next.store.write(a.obj, a.off, Value::integer(0));
        // Erase by key: mut() may clone, which would invalidate `it`.
        next.lock_owners.mut().erase({a.obj, a.off});
        f.pc += 1;
        break;
      }
      case ActionKind::Assert: {
        if (d.instr->rhs != nullptr) {
          const Value c = ev.eval(*d.instr->rhs);
          if (!c.truthy()) next.violations.mut().insert(stmt_id);
        }
        f.pc += 1;
        break;
      }
      case ActionKind::None:
        throw Error("apply_action: none");
    }
  } catch (const EvalFault& fault) {
    p.status = ProcStatus::Faulted;
    p.frames.clear();
    next.faults.mut().insert({stmt_id, static_cast<std::uint8_t>(fault.kind)});
    return next;
  }
  settle(next, pid);
  return next;
}

}  // namespace

Configuration apply_action(const Configuration& cfg, Pid pid) {
  return apply_decoded(cfg, pid, decode(cfg, pid));
}

Configuration apply_action(const Configuration& cfg, const ActionInfo& info) {
  require(info.exists, "apply_action: no action");
  Decoded d;
  d.kind = info.kind;
  d.instr = info.instr;
  d.proc = info.proc;
  d.pc = info.pc;
  return apply_decoded(cfg, info.pid, d);
}

}  // namespace copar::sem
