#include "src/sem/value.h"

namespace copar::sem {

std::string Value::to_string() const {
  switch (kind_) {
    case VKind::Int: return std::to_string(as_int());
    case VKind::Null: return "null";
    case VKind::Ptr:
      return "&obj" + std::to_string(ptr_obj()) + "[" + std::to_string(ptr_off()) + "]";
    case VKind::Closure:
      return "<fn" + std::to_string(closure_proc()) +
             (closure_env() == kNoObj ? std::string() : ("@obj" + std::to_string(closure_env()))) +
             ">";
  }
  return "<?>";
}

}  // namespace copar::sem
