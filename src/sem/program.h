// One-call front door: source text -> resolved module + lowered program.
//
//   auto prog = copar::compile(R"(
//     var x = 0; var y = 0;
//     fun main() { cobegin { x = 1; } || { y = x; } coend; }
//   )");
//   auto result = explore::explore(*prog->lowered, {});
//
// CompiledProgram owns the AST and the lowered form; keep it alive as long
// as any Configuration or analysis result derived from it.
#pragma once

#include <memory>
#include <string_view>

#include "src/lang/ast.h"
#include "src/sem/lower.h"

namespace copar {

struct CompiledProgram {
  std::unique_ptr<lang::Module> module;
  std::unique_ptr<sem::LoweredProgram> lowered;
};

/// Parses, resolves, and lowers `source`. Throws copar::Error carrying all
/// diagnostics on failure.
std::unique_ptr<CompiledProgram> compile(std::string_view source);

}  // namespace copar
