// The small-step transition relation of the standard semantics.
//
// Each live process has at most one *next action* (the paper's model:
// deterministic processes, nondeterminism only from interleaving).
// `action_info` dry-runs the action to report enabledness and its read and
// write sets — the inputs to stubborn-set conflict detection (§2) and to
// the dependence analyses (§5.2). `apply_action` produces the successor
// configuration.
//
// Micro-step folding: unconditional jumps and the bookkeeping exit of a
// finished cobegin branch are folded into the preceding action, so that one
// transition corresponds to one elementary statement, matching how the
// paper counts configurations (e.g. the 13-configuration Figure 5).
// A function's implicit return at the end of its body *is* an action
// (procedure exit is a recorded movement of the instrumented semantics).
#pragma once

#include <vector>

#include "src/sem/config.h"
#include "src/support/bitset.h"

namespace copar::sem {

enum class ActionKind : std::uint8_t {
  None,
  Assign,
  Alloc,
  Call,
  Return,
  Branch,
  Fork,
  Join,
  Lock,
  Unlock,
  Assert,
};

std::string_view action_kind_name(ActionKind k);

constexpr std::uint32_t kNoStmt = 0xffffffffu;

struct ActionInfo {
  bool exists = false;   // live process positioned at an instruction
  bool enabled = false;  // may fire now (locks/joins can be disabled)
  ActionKind kind = ActionKind::None;
  Pid pid = kNoPid;
  std::uint32_t proc = 0;
  std::uint32_t pc = 0;
  const Instr* instr = nullptr;
  /// Originating statement id (kNoStmt for the synthesized implicit return).
  std::uint32_t stmt_id = kNoStmt;
  /// Store locations the action reads/writes (dense ids; see Store::loc_id).
  DynamicBitset reads;
  DynamicBitset writes;
  /// Dry run faulted: firing the action yields a fault state. The partial
  /// read set up to the fault is retained; the action writes nothing.
  bool may_fault = false;
  /// For Lock/Unlock: the lock cell, valid when !may_fault.
  bool has_lock_loc = false;
  ObjId lock_obj = kNoObj;
  std::uint32_t lock_off = 0;
};

/// Dry-runs process `pid`'s next action in `cfg`.
[[nodiscard]] ActionInfo action_info(const Configuration& cfg, Pid pid);

/// ActionInfo for every live process (enabled or not), in pid order.
[[nodiscard]] std::vector<ActionInfo> all_action_infos(const Configuration& cfg);

/// Fires `pid`'s next action. Precondition: action exists and is enabled.
/// Returns the successor configuration (cfg is not modified).
[[nodiscard]] Configuration apply_action(const Configuration& cfg, Pid pid);

/// Fires the action `info` describes without re-decoding the instruction —
/// the fast path when action_info() already established enablement.
/// Precondition: `info` was computed from this `cfg` (same control point);
/// info.exists && info.enabled.
[[nodiscard]] Configuration apply_action(const Configuration& cfg, const ActionInfo& info);

/// True when some process is live but none has an enabled action (e.g.
/// everyone blocked on locks/joins) — the "infinite wait" of Taylor's
/// analysis.
[[nodiscard]] bool is_deadlock(const Configuration& cfg);

}  // namespace copar::sem
