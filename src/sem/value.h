// Runtime values of the standard semantics.
//
// The language is dynamically typed (Scheme-flavored, like the paper's
// MIPRAC lineage): a cell holds an integer, a null, a pointer to an object
// cell, or a closure. Booleans are represented as integers 0/1.
#pragma once

#include <cstdint>
#include <string>

#include "src/support/hash.h"

namespace copar::sem {

/// Index of an object in a Store.
using ObjId = std::uint32_t;
constexpr ObjId kNoObj = 0xffffffffu;

enum class VKind : std::uint8_t { Int, Null, Ptr, Closure };

/// A first-class runtime value. Ptr carries (object, cell offset); Closure
/// carries (lowered proc id, defining frame object — kNoObj for top-level
/// functions, which close over nothing but the globals).
class Value {
 public:
  constexpr Value() : kind_(VKind::Int), a_(0), b_(0) {}

  static constexpr Value integer(std::int64_t v) {
    Value x;
    x.kind_ = VKind::Int;
    x.a_ = static_cast<std::uint64_t>(v);
    return x;
  }
  static constexpr Value null() {
    Value x;
    x.kind_ = VKind::Null;
    return x;
  }
  static constexpr Value pointer(ObjId obj, std::uint32_t off) {
    Value x;
    x.kind_ = VKind::Ptr;
    x.a_ = obj;
    x.b_ = off;
    return x;
  }
  static constexpr Value closure(std::uint32_t proc, ObjId env) {
    Value x;
    x.kind_ = VKind::Closure;
    x.a_ = proc;
    x.b_ = env;
    return x;
  }

  [[nodiscard]] constexpr VKind kind() const noexcept { return kind_; }
  [[nodiscard]] constexpr bool is_int() const noexcept { return kind_ == VKind::Int; }
  [[nodiscard]] constexpr bool is_null() const noexcept { return kind_ == VKind::Null; }
  [[nodiscard]] constexpr bool is_ptr() const noexcept { return kind_ == VKind::Ptr; }
  [[nodiscard]] constexpr bool is_closure() const noexcept { return kind_ == VKind::Closure; }

  [[nodiscard]] constexpr std::int64_t as_int() const noexcept {
    return static_cast<std::int64_t>(a_);
  }
  [[nodiscard]] constexpr ObjId ptr_obj() const noexcept { return static_cast<ObjId>(a_); }
  [[nodiscard]] constexpr std::uint32_t ptr_off() const noexcept { return b_; }
  [[nodiscard]] constexpr std::uint32_t closure_proc() const noexcept {
    return static_cast<std::uint32_t>(a_);
  }
  [[nodiscard]] constexpr ObjId closure_env() const noexcept { return b_; }

  /// Truthiness for conditions: nonzero int; non-null pointer/closure.
  [[nodiscard]] constexpr bool truthy() const noexcept {
    return kind_ == VKind::Int ? a_ != 0 : kind_ != VKind::Null;
  }

  friend constexpr bool operator==(const Value& x, const Value& y) noexcept {
    return x.kind_ == y.kind_ && x.a_ == y.a_ && x.b_ == y.b_;
  }

  [[nodiscard]] std::uint64_t hash() const noexcept {
    return hash_combine(hash_combine(static_cast<std::uint64_t>(kind_), a_), b_);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  VKind kind_;
  std::uint64_t a_;
  std::uint32_t b_ = 0;
};

}  // namespace copar::sem
