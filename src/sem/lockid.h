// Static identity of lock cells in the lowered form.
//
// The concrete semantics locks whatever store cell the lvalue evaluates to
// (step.cpp keys `lock_owners` by (object, offset)). The static tier needs a
// name for that cell before any execution exists. A lock operand that is a
// plain global variable reference always denotes the same store cell — the
// globals object at a fixed slot — so it gets a stable identity; anything
// else (locals, derefs, indexed cells) may denote different cells on
// different paths and stays anonymous, which the lockset analysis treats
// conservatively (an anonymous acquire protects nothing, an anonymous
// release may release anything).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/sem/lower.h"

namespace copar::sem {

/// The global slot a lock/unlock operand statically resolves to, or nullopt
/// when the operand is not a plain global variable reference.
std::optional<std::uint32_t> lock_global_slot(const LoweredProgram& prog,
                                              const lang::Expr& lvalue);

/// Source name of a global lock cell ("m"), or "global#<slot>" if unnamed.
std::string lock_cell_name(const LoweredProgram& prog, std::uint32_t slot);

}  // namespace copar::sem
