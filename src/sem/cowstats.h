// Process-wide counters for the copy-on-write configuration representation.
//
// All counters are relaxed atomics: they are monotone telemetry, never
// synchronization. Engines report per-run numbers by snapshotting before
// and after and publishing the delta (the counters are process-global, so
// absolute values accumulate across runs in one process).
//
//   objects_copied    clones forced by a write to a shared Object/Process
//   objects_shared    writes served in place because the target was
//                     exclusively owned (each one is a deep copy the old
//                     representation would have paid at config-copy time)
//   process_clones    Process clones (the stepped pid per transition, plus
//                     the parent on thread exit)
//   live_bytes        deep bytes of all live shared Objects and Processes —
//                     the structural memory of every Configuration alive,
//                     counted once per shared node regardless of how many
//                     configurations reference it. With exploration
//                     frontiers holding most live configurations, this is
//                     the "frontier bytes" gauge. Byte sizes are measured
//                     at handle creation (Objects never grow afterwards;
//                     Processes may grow their frame stack in place, which
//                     this gauge deliberately ignores to keep add/subtract
//                     exactly balanced).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace copar::sem::cowstats {

struct Counters {
  std::atomic<std::uint64_t> objects_copied{0};
  std::atomic<std::uint64_t> objects_shared{0};
  std::atomic<std::uint64_t> process_clones{0};
  std::atomic<std::uint64_t> live_bytes{0};
};

inline Counters& counters() noexcept {
  static Counters c;
  return c;
}

inline void note_object_copied() noexcept {
  counters().objects_copied.fetch_add(1, std::memory_order_relaxed);
}
inline void note_object_shared() noexcept {
  counters().objects_shared.fetch_add(1, std::memory_order_relaxed);
}
inline void note_process_clone() noexcept {
  counters().process_clones.fetch_add(1, std::memory_order_relaxed);
}
inline void add_live_bytes(std::size_t n) noexcept {
  counters().live_bytes.fetch_add(n, std::memory_order_relaxed);
}
inline void sub_live_bytes(std::size_t n) noexcept {
  counters().live_bytes.fetch_sub(n, std::memory_order_relaxed);
}
[[nodiscard]] inline std::uint64_t live_bytes() noexcept {
  return counters().live_bytes.load(std::memory_order_relaxed);
}

/// Plain-integer copy of the counters, for delta reporting.
struct Snapshot {
  std::uint64_t objects_copied = 0;
  std::uint64_t objects_shared = 0;
  std::uint64_t process_clones = 0;
};

[[nodiscard]] inline Snapshot snapshot() noexcept {
  const Counters& c = counters();
  Snapshot s;
  s.objects_copied = c.objects_copied.load(std::memory_order_relaxed);
  s.objects_shared = c.objects_shared.load(std::memory_order_relaxed);
  s.process_clones = c.process_clones.load(std::memory_order_relaxed);
  return s;
}

}  // namespace copar::sem::cowstats
