// Reachability exploration of Petri nets: full vs. stubborn sets.
//
// The stubborn-set computation is the classic place/transition closure
// ([Val88]-style, as the paper's §2.2 summarizes):
//
//   - for an ENABLED transition t in the set, every transition that shares
//     an input place with t joins (they can disable each other);
//   - for a DISABLED transition t in the set, pick one insufficiently
//     marked input place p and add the producers of p (only they can help
//     enable t).
//
// At each expansion step every enabled transition is tried as a seed, the
// closures are compared, and the one with the fewest enabled members wins.
// The DFS stack proviso handles the ignoring problem on cyclic nets.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/petri/net.h"
#include "src/support/stats.h"

namespace copar::petri {

struct ReachOptions {
  bool stubborn = false;
  bool cycle_proviso = true;
  std::uint64_t max_markings = 10'000'000;
};

struct ReachResult {
  std::uint64_t num_markings = 0;
  std::uint64_t num_edges = 0;
  bool truncated = false;
  /// Dead markings (no transition enabled), deduplicated.
  std::set<Marking> deadlocks;
  StatRegistry stats;
};

ReachResult explore(const PetriNet& net, const ReachOptions& options);

/// The stubborn set at `m`: transition ids whose enabled members are to be
/// fired. Exposed for tests.
std::vector<TransId> stubborn_set(const PetriNet& net, const Marking& m);

}  // namespace copar::petri
