// Place/transition Petri nets — the native setting of stubborn-set theory.
//
// The paper takes stubborn sets from Valmari's Petri-net reachability work
// ([Val88, Val89, Val90]) and transplants them to program configurations.
// This module provides the original substrate: nets, markings, firing, and
// reachability exploration with the same full-vs-stubborn comparison — so
// the [Val88] dining-philosophers claim the paper cites can be reproduced
// in its own terms (see src/petri/reach.h and bench_petri).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/diagnostics.h"

namespace copar::petri {

using PlaceId = std::uint32_t;
using TransId = std::uint32_t;

struct Transition {
  std::string name;
  /// Input places: one token consumed from each (multiplicities expressed
  /// by repetition).
  std::vector<PlaceId> pre;
  /// Output places: one token produced into each.
  std::vector<PlaceId> post;
};

/// Token counts per place.
using Marking = std::vector<std::uint32_t>;

class PetriNet {
 public:
  PlaceId add_place(std::string name, std::uint32_t initial_tokens = 0);
  TransId add_transition(std::string name, std::vector<PlaceId> pre, std::vector<PlaceId> post);

  [[nodiscard]] std::size_t num_places() const noexcept { return place_names_.size(); }
  [[nodiscard]] std::size_t num_transitions() const noexcept { return transitions_.size(); }
  [[nodiscard]] const Transition& transition(TransId t) const { return transitions_.at(t); }
  [[nodiscard]] const std::string& place_name(PlaceId p) const { return place_names_.at(p); }
  [[nodiscard]] const Marking& initial_marking() const noexcept { return initial_; }

  [[nodiscard]] bool enabled(TransId t, const Marking& m) const;
  /// Fires `t` (precondition: enabled); returns the successor marking.
  [[nodiscard]] Marking fire(TransId t, const Marking& m) const;

  /// Transitions consuming from place p (consumers_) / producing into p.
  [[nodiscard]] const std::vector<TransId>& consumers(PlaceId p) const {
    return consumers_.at(p);
  }
  [[nodiscard]] const std::vector<TransId>& producers(PlaceId p) const {
    return producers_.at(p);
  }

  [[nodiscard]] std::string describe(const Marking& m) const;

 private:
  std::vector<std::string> place_names_;
  Marking initial_;
  std::vector<Transition> transitions_;
  std::vector<std::vector<TransId>> consumers_;
  std::vector<std::vector<TransId>> producers_;
};

}  // namespace copar::petri
