#include "src/petri/net.h"

#include <sstream>

namespace copar::petri {

PlaceId PetriNet::add_place(std::string name, std::uint32_t initial_tokens) {
  const auto id = static_cast<PlaceId>(place_names_.size());
  place_names_.push_back(std::move(name));
  initial_.push_back(initial_tokens);
  consumers_.emplace_back();
  producers_.emplace_back();
  return id;
}

TransId PetriNet::add_transition(std::string name, std::vector<PlaceId> pre,
                                 std::vector<PlaceId> post) {
  const auto id = static_cast<TransId>(transitions_.size());
  for (PlaceId p : pre) {
    require(p < place_names_.size(), "petri: bad pre place");
    consumers_[p].push_back(id);
  }
  for (PlaceId p : post) {
    require(p < place_names_.size(), "petri: bad post place");
    producers_[p].push_back(id);
  }
  transitions_.push_back(Transition{std::move(name), std::move(pre), std::move(post)});
  return id;
}

bool PetriNet::enabled(TransId t, const Marking& m) const {
  // Multiplicities: count required tokens per place.
  const Transition& tr = transitions_.at(t);
  for (std::size_t i = 0; i < tr.pre.size(); ++i) {
    std::uint32_t need = 0;
    for (std::size_t j = 0; j <= i; ++j) {
      if (tr.pre[j] == tr.pre[i]) ++need;
    }
    if (m[tr.pre[i]] < need) return false;
  }
  return true;
}

Marking PetriNet::fire(TransId t, const Marking& m) const {
  require(enabled(t, m), "petri: firing a disabled transition");
  Marking out = m;
  const Transition& tr = transitions_.at(t);
  for (PlaceId p : tr.pre) out[p] -= 1;
  for (PlaceId p : tr.post) out[p] += 1;
  return out;
}

std::string PetriNet::describe(const Marking& m) const {
  std::ostringstream os;
  bool first = true;
  for (PlaceId p = 0; p < m.size(); ++p) {
    if (m[p] == 0) continue;
    if (!first) os << ' ';
    first = false;
    os << place_names_[p];
    if (m[p] > 1) os << 'x' << m[p];
  }
  return os.str();
}

}  // namespace copar::petri
