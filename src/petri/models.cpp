#include "src/petri/models.h"

#include <string>

namespace copar::petri {

PetriNet dining_philosophers_net(std::size_t n, bool cyclic) {
  PetriNet net;
  std::vector<PlaceId> thinking(n);
  std::vector<PlaceId> hasl(n);
  std::vector<PlaceId> eating(n);
  std::vector<PlaceId> fork(n);
  std::vector<PlaceId> done(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    thinking[i] = net.add_place("think" + s, 1);
    hasl[i] = net.add_place("hasL" + s, 0);
    eating[i] = net.add_place("eat" + s, 0);
    fork[i] = net.add_place("fork" + s, 1);
    if (!cyclic) done[i] = net.add_place("done" + s, 0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    const PlaceId left = fork[i];
    const PlaceId right = fork[(i + 1) % n];
    net.add_transition("takeL" + s, {thinking[i], left}, {hasl[i]});
    net.add_transition("takeR" + s, {hasl[i], right}, {eating[i]});
    if (cyclic) {
      net.add_transition("release" + s, {eating[i]}, {thinking[i], left, right});
    } else {
      net.add_transition("release" + s, {eating[i]}, {done[i], left, right});
    }
  }
  return net;
}

PetriNet independent_producers_net(std::size_t n, std::size_t items) {
  PetriNet net;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    const PlaceId todo = net.add_place("todo" + s, static_cast<std::uint32_t>(items));
    const PlaceId empty = net.add_place("empty" + s, 1);
    const PlaceId full = net.add_place("full" + s, 0);
    const PlaceId got = net.add_place("got" + s, 0);
    net.add_transition("produce" + s, {todo, empty}, {full});
    net.add_transition("consume" + s, {full}, {empty, got});
  }
  return net;
}

PetriNet fork_join_net(std::size_t n) {
  PetriNet net;
  const PlaceId start = net.add_place("start", 1);
  const PlaceId end = net.add_place("end", 0);
  std::vector<PlaceId> ready(n);
  std::vector<PlaceId> finished(n);
  std::vector<PlaceId> fan_out;
  std::vector<PlaceId> fan_in;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    ready[i] = net.add_place("ready" + s, 0);
    finished[i] = net.add_place("fin" + s, 0);
    fan_out.push_back(ready[i]);
    fan_in.push_back(finished[i]);
    net.add_transition("task" + s, {ready[i]}, {finished[i]});
  }
  net.add_transition("fork", {start}, fan_out);
  net.add_transition("join", fan_in, {end});
  return net;
}

}  // namespace copar::petri
