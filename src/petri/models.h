// Standard Petri-net models for tests and benchmarks.
#pragma once

#include <cstddef>

#include "src/petri/net.h"

namespace copar::petri {

/// The n dining philosophers as a net — the [Val88] demonstration the paper
/// cites ("the state space for n dining philosophers is reduced from
/// exponential to quadratic in n").
///
/// Per philosopher i: places thinking_i, hasL_i, eating_i, and fork_i
/// (shared with neighbor i-1). Transitions: takeL_i (thinking+forkL ->
/// hasL), takeR_i (hasL+forkR -> eating), release_i (eating -> thinking +
/// both forks). The right-handed protocol deadlocks (all hold their left
/// fork); `cyclic` keeps them eating forever (release returns to thinking),
/// which exercises the cycle proviso.
PetriNet dining_philosophers_net(std::size_t n, bool cyclic = true);

/// n independent producer/consumer pairs over 1-bounded buffers: fully
/// decomposable, the stubborn-set best case (linear vs exponential).
PetriNet independent_producers_net(std::size_t n, std::size_t items = 2);

/// A simple fork/join workflow net: one start transition fans out to n
/// parallel tasks that synchronize on a final join transition.
PetriNet fork_join_net(std::size_t n);

}  // namespace copar::petri
