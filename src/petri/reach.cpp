#include "src/petri/reach.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/support/hash.h"
#include "src/support/telemetry.h"

namespace copar::petri {

namespace {

struct MarkingHash {
  std::size_t operator()(const Marking& m) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint32_t v : m) h = hash_combine(h, v);
    return static_cast<std::size_t>(h);
  }
};

/// Closure from one enabled seed; returns transition ids in the set.
std::vector<TransId> closure_from(const PetriNet& net, const Marking& m, TransId seed) {
  std::vector<TransId> members = {seed};
  std::vector<bool> in_set(net.num_transitions(), false);
  in_set[seed] = true;
  std::size_t scan = 0;
  auto add = [&](TransId t) {
    if (!in_set[t]) {
      in_set[t] = true;
      members.push_back(t);
    }
  };
  while (scan < members.size()) {
    const TransId t = members[scan++];
    if (net.enabled(t, m)) {
      // Conflict rule: everything sharing an input place.
      for (PlaceId p : net.transition(t).pre) {
        for (TransId other : net.consumers(p)) add(other);
      }
    } else {
      // Enabling rule: one scarce input place's producers suffice. Choose
      // the place with the fewest producers (smaller closures).
      PlaceId best = 0;
      bool found = false;
      std::map<std::uint32_t, std::uint32_t> needed;
      for (PlaceId p : net.transition(t).pre) needed[p] += 1;
      for (const auto& [p, need] : needed) {
        if (m[p] >= need) continue;
        if (!found || net.producers(p).size() < net.producers(best).size()) {
          best = p;
          found = true;
        }
      }
      require(found, "petri closure: disabled transition with satisfied inputs");
      for (TransId producer : net.producers(best)) add(producer);
    }
  }
  return members;
}

}  // namespace

std::vector<TransId> stubborn_set(const PetriNet& net, const Marking& m) {
  std::vector<TransId> enabled;
  for (TransId t = 0; t < net.num_transitions(); ++t) {
    if (net.enabled(t, m)) enabled.push_back(t);
  }
  if (enabled.size() <= 1) return enabled;

  std::vector<TransId> best;
  std::size_t best_enabled = SIZE_MAX;
  for (TransId seed : enabled) {
    const std::vector<TransId> members = closure_from(net, m, seed);
    std::size_t n_enabled = 0;
    for (TransId t : members) {
      if (net.enabled(t, m)) ++n_enabled;
    }
    if (n_enabled < best_enabled) {
      best_enabled = n_enabled;
      best.clear();
      for (TransId t : members) {
        if (net.enabled(t, m)) best.push_back(t);
      }
      if (best_enabled == 1) break;
    }
  }
  std::sort(best.begin(), best.end());
  return best;
}

ReachResult explore(const PetriNet& net, const ReachOptions& options) {
  ReachResult result;
  StatRegistry::Counter proviso_full = result.stats.counter("proviso_full_expansions");
  telemetry::Telemetry& tel = telemetry::Telemetry::global();
  telemetry::ScopedPhase phase_expansion(telemetry::Phase::Expansion);
  std::unordered_map<Marking, std::uint32_t, MarkingHash> visited;
  std::vector<char> on_stack;

  struct Entry {
    Marking m;
    std::uint32_t id;
    std::vector<TransId> expand;
    std::size_t next = 0;
    bool expanded_full = false;
  };
  std::vector<Entry> stack;

  auto all_enabled = [&](const Marking& m) {
    std::vector<TransId> out;
    for (TransId t = 0; t < net.num_transitions(); ++t) {
      if (net.enabled(t, m)) out.push_back(t);
    }
    return out;
  };

  auto register_marking = [&](Marking m) -> std::uint32_t {
    const auto id = static_cast<std::uint32_t>(visited.size());
    on_stack.push_back(0);
    result.num_markings += 1;
    std::vector<TransId> expand;
    if (options.stubborn) {
      telemetry::ScopedPhase phase_stub(telemetry::Phase::Stubborn);
      expand = stubborn_set(net, m);
    } else {
      expand = all_enabled(m);
    }
    visited.emplace(m, id);
    if (expand.empty()) {
      result.deadlocks.insert(std::move(m));
      return id;
    }
    Entry e;
    e.m = std::move(m);
    e.id = id;
    e.expand = std::move(expand);
    on_stack[id] = 1;
    stack.push_back(std::move(e));
    return id;
  };

  (void)register_marking(net.initial_marking());

  while (!stack.empty()) {
    Entry& top = stack.back();
    if (top.next >= top.expand.size()) {
      on_stack[top.id] = 0;
      stack.pop_back();
      continue;
    }
    const TransId t = top.expand[top.next++];
    Marking succ = net.fire(t, top.m);
    result.num_edges += 1;
    tel.maybe_progress(result.num_markings, result.num_edges, stack.size());
    if (auto it = visited.find(succ); it != visited.end()) {
      // Stack proviso: a reduced expansion closing a cycle re-expands fully.
      if (options.stubborn && options.cycle_proviso && on_stack[it->second] != 0) {
        Entry& cur = stack.back();
        if (!cur.expanded_full) {
          cur.expanded_full = true;
          cur.expand = all_enabled(cur.m);
          cur.next = 0;
          proviso_full.add();
        }
      }
      continue;
    }
    if (result.num_markings >= options.max_markings) {
      result.truncated = true;
      break;
    }
    (void)register_marking(std::move(succ));
  }

  result.stats.set("markings", result.num_markings);
  result.stats.set("edges", result.num_edges);
  result.stats.set("deadlocks", result.deadlocks.size());
  telemetry::Telemetry::global().publish_stats(result.stats);
  return result;
}

}  // namespace copar::petri
