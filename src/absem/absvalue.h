// Abstract values: the product of a numeric lattice (pluggable: flat
// constants, intervals, signs), a may-be-null flag, a points-to set, and a
// closure set. The non-standard semantics of §4 computes with these.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

#include "src/absdom/cmpop.h"
#include "src/absdom/lattice.h"
#include "src/absdom/powerset.h"
#include "src/absem/absloc.h"

namespace copar::absem {

/// What the abstract semantics requires of its numeric component.
template <typename N>
concept NumDomain = absdom::WidenableLattice<N> &&
    requires(const N a, const N b, bool (*pred)(std::int64_t, std::int64_t)) {
      { N::constant(std::int64_t{0}) } -> std::same_as<N>;
      { N::top() } -> std::same_as<N>;
      { N::add(a, b) } -> std::same_as<N>;
      { N::sub(a, b) } -> std::same_as<N>;
      { N::mul(a, b) } -> std::same_as<N>;
      { N::div(a, b) } -> std::same_as<N>;
      { N::mod(a, b) } -> std::same_as<N>;
      { N::cmp(a, b, pred) } -> std::same_as<N>;
      { N::refine_cmp(a, absdom::CmpOp::Lt, b, true) } -> std::same_as<N>;
      { a.may_be_truthy() } -> std::same_as<bool>;
      { a.may_be_falsy() } -> std::same_as<bool>;
    };

template <NumDomain N>
struct AbsValue {
  N num = N::bottom();
  bool may_null = false;
  absdom::PowerSet<AbsLoc> ptrs;
  absdom::PowerSet<std::uint32_t> fns;  // lowered proc ids

  static AbsValue bottom() { return AbsValue{}; }
  static AbsValue of_int(std::int64_t v) {
    AbsValue out;
    out.num = N::constant(v);
    return out;
  }
  static AbsValue of_null() {
    AbsValue out;
    out.may_null = true;
    return out;
  }
  static AbsValue of_ptr(AbsLoc loc) {
    AbsValue out;
    out.ptrs.insert(loc);
    return out;
  }
  static AbsValue of_fn(std::uint32_t proc) {
    AbsValue out;
    out.fns.insert(proc);
    return out;
  }
  static AbsValue of_num(N n) {
    AbsValue out;
    out.num = std::move(n);
    return out;
  }

  [[nodiscard]] bool is_bottom() const {
    return num.is_bottom() && !may_null && ptrs.is_bottom() && fns.is_bottom();
  }

  [[nodiscard]] AbsValue join(const AbsValue& o) const {
    AbsValue out;
    out.num = num.join(o.num);
    out.may_null = may_null || o.may_null;
    out.ptrs = ptrs.join(o.ptrs);
    out.fns = fns.join(o.fns);
    return out;
  }
  [[nodiscard]] AbsValue widen(const AbsValue& o) const {
    AbsValue out;
    out.num = num.widen(o.num);
    out.may_null = may_null || o.may_null;
    out.ptrs = ptrs.join(o.ptrs);
    out.fns = fns.join(o.fns);
    return out;
  }
  /// Narrowing (widened.narrow(next) with next ⊑ widened): refine the
  /// numeric component when the domain supports it; the finite-height
  /// components keep the widened (= joined) value.
  [[nodiscard]] AbsValue narrow(const AbsValue& o) const {
    AbsValue out = *this;
    if constexpr (requires(const N a, const N b) {
                    { a.narrow(b) } -> std::same_as<N>;
                  }) {
      out.num = num.narrow(o.num);
    }
    return out;
  }
  [[nodiscard]] bool leq(const AbsValue& o) const {
    return num.leq(o.num) && (!may_null || o.may_null) && ptrs.leq(o.ptrs) && fns.leq(o.fns);
  }
  friend bool operator==(const AbsValue&, const AbsValue&) = default;

  [[nodiscard]] bool may_be_truthy() const {
    return num.may_be_truthy() || !ptrs.is_bottom() || !fns.is_bottom();
  }
  [[nodiscard]] bool may_be_falsy() const { return num.may_be_falsy() || may_null; }

  [[nodiscard]] std::string to_string() const {
    std::string out = num.to_string();
    if (may_null) out += "|null";
    if (!ptrs.is_bottom()) out += "|" + ptrs.to_string();
    if (!fns.is_bottom()) out += "|fns" + fns.to_string();
    return out;
  }
};

}  // namespace copar::absem
