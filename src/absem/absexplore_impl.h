// Implementation of AbsExplorer (template bodies). Included at the end of
// absexplore.h; do not include directly.
#pragma once

#include <algorithm>

#include "src/lang/ast.h"
#include "src/sem/step.h"
#include "src/support/diagnostics.h"
#include "src/support/hash.h"
#include "src/support/telemetry.h"

namespace copar::absem {

// --------------------------------------------------------------------------
// evaluation
// --------------------------------------------------------------------------

template <NumDomain N>
AbsExplorer<N>::AbsExplorer(const sem::LoweredProgram& program, AbsOptions options)
    : prog_(program), opts_(options) {
  // Slots reachable through static-link hops must keep one merged abstract
  // cell: a hop access cannot know its target activation's call string.
  std::vector<const lang::Expr*> work;
  auto push = [&](const lang::Expr* e) {
    if (e != nullptr) work.push_back(e);
  };
  for (const sem::Proc& p : prog_.procs()) {
    for (const sem::Instr& instr : p.code) {
      push(instr.lhs);
      push(instr.rhs);
      push(instr.rhs2);
      if (instr.args != nullptr) {
        for (const auto& a : *instr.args) push(a.get());
      }
      while (!work.empty()) {
        const lang::Expr* e = work.back();
        work.pop_back();
        switch (e->kind()) {
          case lang::ExprKind::VarRef: {
            const sem::VarLoc& vl = prog_.varloc(e->id());
            if (!vl.is_global && vl.hops > 0) {
              std::uint32_t fn = p.owner_fn;
              for (std::uint16_t h = 0; h < vl.hops; ++h) {
                fn = prog_.proc(fn).lexical_parent;
                require(fn != sem::kNoProc, "hop chain fell off the top");
              }
              merged_slots_.insert({fn, vl.slot});
            }
            break;
          }
          case lang::ExprKind::Unary:
            push(&lang::expr_cast<lang::Unary>(*e).operand());
            break;
          case lang::ExprKind::Binary:
            push(&lang::expr_cast<lang::Binary>(*e).lhs());
            push(&lang::expr_cast<lang::Binary>(*e).rhs());
            break;
          case lang::ExprKind::AddrOf: {
            // Taking a local's address exposes the frame to pointer access
            // (including arithmetic): merge the whole frame's contexts.
            const lang::Expr& lv = lang::expr_cast<lang::AddrOf>(*e).lvalue();
            if (lv.kind() == lang::ExprKind::VarRef) {
              const sem::VarLoc& vl = prog_.varloc(lv.id());
              if (!vl.is_global) {
                std::uint32_t fn = p.owner_fn;
                for (std::uint16_t h = 0; h < vl.hops; ++h) {
                  fn = prog_.proc(fn).lexical_parent;
                }
                merged_fns_.insert(fn);
              }
            } else {
              push(&lv);
            }
            break;
          }
          case lang::ExprKind::Deref:
            push(&lang::expr_cast<lang::Deref>(*e).pointer());
            break;
          case lang::ExprKind::Index:
            push(&lang::expr_cast<lang::Index>(*e).base());
            push(&lang::expr_cast<lang::Index>(*e).index());
            break;
          default:
            break;
        }
      }
    }
  }
}

template <NumDomain N>
std::uint32_t AbsExplorer<N>::cstring_ctx(const std::vector<std::uint32_t>& cs) const {
  if (opts_.call_string_k == 0 || cs.empty()) return 0;
  const std::uint64_t h = hash_range(cs.begin(), cs.end(), 0x1234567);
  return static_cast<std::uint32_t>(h) | 1u;  // never 0
}

template <NumDomain N>
AbsLoc AbsExplorer<N>::var_absloc(std::uint32_t proc, const lang::Expr& ref) const {
  const sem::VarLoc& vl = prog_.varloc(ref.id());
  if (vl.is_global) return AbsLoc::global(vl.slot);
  std::uint32_t fn = prog_.proc(proc).owner_fn;
  for (std::uint16_t h = 0; h < vl.hops; ++h) {
    fn = prog_.proc(fn).lexical_parent;
    require(fn != sem::kNoProc, "abstract hop chain fell off the top");
  }
  std::uint32_t ctx = 0;
  if (vl.hops == 0 && !slot_merged(fn, vl.slot) && cur_cstring_ != nullptr) {
    ctx = cstring_ctx(*cur_cstring_);
  }
  return AbsLoc::frame(fn, vl.slot, ctx);
}

template <NumDomain N>
AbsValue<N> AbsExplorer<N>::read_loc(const Store& store, const AbsLoc& loc) {
  cur_reads_.insert(loc);
  Value v = store.get(loc);
  if (v.is_bottom()) return Value::of_int(0);  // zero-initialized cell
  return v;
}

template <NumDomain N>
absdom::PowerSet<AbsLoc> AbsExplorer<N>::spread_frames(
    const absdom::PowerSet<AbsLoc>& locs) const {
  absdom::PowerSet<AbsLoc> out;
  for (const AbsLoc& loc : locs.elems()) {
    if (loc.kind == AbsLoc::Kind::Frame) {
      // Frame pointers only arise from address-taken locals, whose frames
      // are context-merged (see the constructor), so ctx 0 is the cell.
      const sem::Proc& fn = prog_.proc(loc.a);
      for (std::uint32_t slot = 1; slot < std::max(fn.nslots, 1u); ++slot) {
        out.insert(AbsLoc::frame(loc.a, slot, 0));
      }
    } else {
      out.insert(loc);
    }
  }
  return out;
}

template <NumDomain N>
AbsValue<N> AbsExplorer<N>::eval(const Store& store, std::uint32_t proc, const lang::Expr& e) {
  using lang::ExprKind;
  switch (e.kind()) {
    case ExprKind::IntLit:
      return Value::of_int(lang::expr_cast<lang::IntLit>(e).value());
    case ExprKind::BoolLit:
      return Value::of_int(lang::expr_cast<lang::BoolLit>(e).value() ? 1 : 0);
    case ExprKind::NullLit:
      return Value::of_null();
    case ExprKind::VarRef: {
      const AbsLoc loc = var_absloc(proc, e);
      if (track_faults_ && cur_stmt_ != kNoCtx && store.get(loc).is_bottom()) {
        // Bottom = never written on any path to here: the read observes the
        // implicit zero-initialization.
        result_.uninit_reads.insert({cur_stmt_, e.id(), loc});
      }
      return read_loc(store, loc);
    }
    case ExprKind::Unary: {
      const auto& u = lang::expr_cast<lang::Unary>(e);
      const Value v = eval(store, proc, u.operand());
      Value out;
      if (u.op() == lang::UnOp::Neg) {
        out.num = N::sub(N::constant(0), v.num);
      } else {  // not
        if (v.may_be_truthy()) out.num = out.num.join(N::constant(0));
        if (v.may_be_falsy()) out.num = out.num.join(N::constant(1));
      }
      return out;
    }
    case ExprKind::Binary: {
      const auto& b = lang::expr_cast<lang::Binary>(e);
      const Value l = eval(store, proc, b.lhs());
      const Value r = eval(store, proc, b.rhs());
      Value out;
      using lang::BinOp;
      auto bool_out = [&](bool can_true, bool can_false) {
        if (can_true) out.num = out.num.join(N::constant(1));
        if (can_false) out.num = out.num.join(N::constant(0));
      };
      switch (b.op()) {
        case BinOp::Add:
        case BinOp::Sub: {
          out.num = b.op() == BinOp::Add ? N::add(l.num, r.num) : N::sub(l.num, r.num);
          // Pointer arithmetic moves within the pointed-to object; folded
          // heap cells are unaffected, frame pointers may reach any slot.
          if (!l.ptrs.is_bottom()) out.ptrs = out.ptrs.join(spread_frames(l.ptrs));
          return out;
        }
        case BinOp::Mul:
          out.num = N::mul(l.num, r.num);
          return out;
        case BinOp::Div:
          if (r.may_be_falsy()) note_fault(sem::Fault::DivByZero, b.rhs().id());
          out.num = N::div(l.num, r.num);
          return out;
        case BinOp::Mod:
          if (r.may_be_falsy()) note_fault(sem::Fault::DivByZero, b.rhs().id());
          out.num = N::mod(l.num, r.num);
          return out;
        case BinOp::Eq:
        case BinOp::Ne: {
          const bool ptrish =
              !l.ptrs.is_bottom() || !r.ptrs.is_bottom() || l.may_null || r.may_null ||
              !l.fns.is_bottom() || !r.fns.is_bottom();
          if (ptrish) {
            bool_out(true, true);  // aliasing undecided at this precision
            return out;
          }
          const N c = N::cmp(l.num, r.num,
                             b.op() == BinOp::Eq
                                 ? +[](std::int64_t x, std::int64_t y) { return x == y; }
                                 : +[](std::int64_t x, std::int64_t y) { return x != y; });
          out.num = c;
          return out;
        }
        case BinOp::Lt:
          out.num = N::cmp(l.num, r.num, +[](std::int64_t x, std::int64_t y) { return x < y; });
          return out;
        case BinOp::Le:
          out.num = N::cmp(l.num, r.num, +[](std::int64_t x, std::int64_t y) { return x <= y; });
          return out;
        case BinOp::Gt:
          out.num = N::cmp(l.num, r.num, +[](std::int64_t x, std::int64_t y) { return x > y; });
          return out;
        case BinOp::Ge:
          out.num = N::cmp(l.num, r.num, +[](std::int64_t x, std::int64_t y) { return x >= y; });
          return out;
        case BinOp::And:
          bool_out(l.may_be_truthy() && r.may_be_truthy(),
                   l.may_be_falsy() || r.may_be_falsy());
          return out;
        case BinOp::Or:
          bool_out(l.may_be_truthy() || r.may_be_truthy(),
                   l.may_be_falsy() && r.may_be_falsy());
          return out;
      }
      throw Error("abstract eval: bad binop");
    }
    case ExprKind::AddrOf: {
      const auto& a = lang::expr_cast<lang::AddrOf>(e);
      Value out;
      for (const AbsLoc& loc : lvalue_locs(store, proc, a.lvalue())) out.ptrs.insert(loc);
      return out;
    }
    case ExprKind::Deref:
    case ExprKind::Index: {
      Value out;
      for (const AbsLoc& loc : lvalue_locs(store, proc, e)) {
        out = out.join(read_loc(store, loc));
      }
      return out;
    }
    case ExprKind::FunLit:
      return Value::of_fn(lang::expr_cast<lang::FunLit>(e).decl().index());
  }
  throw Error("abstract eval: bad expr kind");
}

template <NumDomain N>
std::set<AbsLoc> AbsExplorer<N>::lvalue_locs(const Store& store, std::uint32_t proc,
                                             const lang::Expr& lv) {
  using lang::ExprKind;
  switch (lv.kind()) {
    case ExprKind::VarRef:
      return {var_absloc(proc, lv)};
    case ExprKind::Deref: {
      const auto& d = lang::expr_cast<lang::Deref>(lv);
      const Value p = eval(store, proc, d.pointer());
      if (p.may_null) note_fault(sem::Fault::DerefNull, d.pointer().id());
      return {p.ptrs.elems().begin(), p.ptrs.elems().end()};
    }
    case ExprKind::Index: {
      const auto& ix = lang::expr_cast<lang::Index>(lv);
      const Value base = eval(store, proc, ix.base());
      const Value index = eval(store, proc, ix.index());
      if (base.may_null) note_fault(sem::Fault::DerefNull, ix.base().id());
      check_bounds(base, index, ix);
      const auto spread = spread_frames(base.ptrs);
      return {spread.elems().begin(), spread.elems().end()};
    }
    default:
      throw Error("abstract lvalue_locs: not an lvalue");
  }
}

template <NumDomain N>
void AbsExplorer<N>::check_bounds(const Value& base, const Value& index,
                                  const lang::Index& ix) {
  if (!track_faults_ || cur_stmt_ == kNoCtx) return;
  for (const AbsLoc& loc : base.ptrs.elems()) {
    if (loc.kind != AbsLoc::Kind::Heap) continue;
    const auto it = result_.site_sizes.find(loc.a);
    if (it == result_.site_sizes.end()) continue;
    const bool below =
        N::cmp(index.num, N::constant(0),
               +[](std::int64_t x, std::int64_t y) { return x < y; })
            .may_be_truthy();
    const bool above =
        N::cmp(index.num, it->second,
               +[](std::int64_t x, std::int64_t y) { return x >= y; })
            .may_be_truthy();
    if (below || above) {
      note_fault(sem::Fault::OutOfBounds, ix.index().id());
      return;
    }
  }
}

template <NumDomain N>
void AbsExplorer<N>::update(Store& store, const std::set<AbsLoc>& locs, const Value& v,
                            bool attribute) {
  if (attribute) {
    for (const AbsLoc& loc : locs) cur_writes_.insert(loc);
  }
  if (locs.size() == 1 && !locs.begin()->is_summary()) {
    store.set(*locs.begin(), v);  // strong update: unique concrete cell
    return;
  }
  for (const AbsLoc& loc : locs) store.join_at(loc, v);
}

template <NumDomain N>
bool AbsExplorer<N>::refine_branch(Store& store, std::uint32_t proc, const lang::Expr& cond,
                                   bool want_true) {
  using lang::BinOp;
  using lang::ExprKind;
  if (cond.kind() != ExprKind::Binary) return true;
  const auto& b = lang::expr_cast<lang::Binary>(cond);
  absdom::CmpOp op;
  switch (b.op()) {
    case BinOp::Lt: op = absdom::CmpOp::Lt; break;
    case BinOp::Le: op = absdom::CmpOp::Le; break;
    case BinOp::Gt: op = absdom::CmpOp::Gt; break;
    case BinOp::Ge: op = absdom::CmpOp::Ge; break;
    case BinOp::Eq: op = absdom::CmpOp::Eq; break;
    case BinOp::Ne: op = absdom::CmpOp::Ne; break;
    default: return true;
  }

  // A refinable location is a unique concrete cell: a global, or a frame
  // slot of the entry proc while nothing ever calls it (re-entrance would
  // make it a summary — checked dynamically; discovery of a call to main
  // triggers the global requeue, after which refinement stops applying).
  auto refinable = [&](const AbsLoc& loc) {
    if (loc.kind == AbsLoc::Kind::Global) return true;
    return loc.kind == AbsLoc::Kind::Frame && loc.a == prog_.entry_proc() &&
           !conts_.contains(prog_.entry_proc());
  };

  auto try_side = [&](const lang::Expr& var_side, const lang::Expr& other_side,
                      absdom::CmpOp side_op) {
    if (var_side.kind() != ExprKind::VarRef) return true;
    const AbsLoc loc = var_absloc(proc, var_side);
    if (!refinable(loc)) return true;
    const Value v = read_loc(store, loc);
    // Numeric-only values refine; pointers/closures do not compare this way.
    if (v.may_null || !v.ptrs.is_bottom() || !v.fns.is_bottom()) return true;
    const Value rhs = eval(store, proc, other_side);
    const N refined = N::refine_cmp(v.num, side_op, rhs.num, want_true);
    if (refined == v.num) return true;
    if (refined.is_bottom()) return false;  // edge infeasible for this state
    Value nv = v;
    nv.num = refined;
    store.set(loc, nv);  // strong: unique cell
    return true;
  };

  if (!try_side(b.lhs(), b.rhs(), op)) return false;
  return try_side(b.rhs(), b.lhs(), absdom::mirror(op));
}

// --------------------------------------------------------------------------
// control-state plumbing
// --------------------------------------------------------------------------

template <NumDomain N>
std::uint32_t AbsExplorer<N>::settle_pc(std::uint32_t proc, std::uint32_t pc) const {
  const auto& code = prog_.proc(proc).code;
  while (pc < code.size() && code[pc].op == sem::Op::Jump) pc = code[pc].t1;
  return pc;
}

template <NumDomain N>
void AbsExplorer<N>::insert_point(AbsControl& ctrl, AbsPoint p) {
  for (AbsPoint& q : ctrl) {
    if (q.ident() == p.ident()) {
      q.omega = true;  // two abstract instances fold into ω
      return;
    }
  }
  ctrl.push_back(std::move(p));
  std::sort(ctrl.begin(), ctrl.end());
}

template <NumDomain N>
AbsControl AbsExplorer<N>::with_point_removed(const AbsControl& ctrl, std::size_t idx) const {
  AbsControl out = ctrl;
  out.erase(out.begin() + static_cast<std::ptrdiff_t>(idx));
  return out;
}

template <NumDomain N>
AbsControl AbsExplorer<N>::with_point_replaced(const AbsControl& ctrl, std::size_t idx,
                                               AbsPoint replacement) const {
  AbsControl out = with_point_removed(ctrl, idx);
  insert_point(out, std::move(replacement));
  return out;
}

// --------------------------------------------------------------------------
// engine
// --------------------------------------------------------------------------

template <NumDomain N>
void AbsExplorer<N>::enqueue(AbsControl ctrl, Store store) {
  auto it = states_.find(ctrl);
  if (it == states_.end()) {
    if (states_.size() >= opts_.max_states) {
      result_.truncated = true;
      return;
    }
    states_.emplace(ctrl, std::move(store));
  } else {
    if (!absdom::widen_into(it->second, store)) return;  // no growth
  }
  const support::Fingerprint fp = control_fingerprint(ctrl);
  (void)work_.push(std::move(ctrl), fp);
}

template <NumDomain N>
AbsResult<N> AbsExplorer<N>::run() {
  StatRegistry::Counter evaluations = result_.stats.counter("abs_state_evaluations");
  StatRegistry::Counter requeues = result_.stats.counter("abs_global_requeues");
  telemetry::Telemetry& tel = telemetry::Telemetry::global();
  telemetry::ScopedPhase phase_folding(telemetry::Phase::Folding);
  // Initial store: globals (function slots + initializers, left to right).
  Store store;
  for (const sem::GlobalSlot& g : prog_.globals()) {
    if (g.fun != nullptr) {
      store.set(AbsLoc::global(g.slot), Value::of_fn(g.fun->index()));
    }
  }
  for (const sem::GlobalSlot& g : prog_.globals()) {
    if (g.init != nullptr) {
      cur_reads_.clear();
      store.set(AbsLoc::global(g.slot), eval(store, prog_.entry_proc(), *g.init));
    }
  }
  AbsControl init;
  insert_point(init,
               AbsPoint{prog_.entry_proc(), settle_pc(prog_.entry_proc(), 0), {}, {}, false});
  enqueue(std::move(init), std::move(store));

  while (const auto popped = work_.pop()) {
    const AbsControl& ctrl = *popped;
    const Store snapshot = states_.at(ctrl);  // copy: transfer only reads it
    transfer(ctrl, snapshot);
    evaluations.add();
    tel.maybe_progress(states_.size(), 0, work_.size());
    if (conts_grew_) {
      // A new call edge can retroactively give earlier Returns successors:
      // re-evaluate everything (monotone, hence terminating).
      conts_grew_ = false;
      for (const auto& [c, s] : states_) {
        (void)work_.push(c, control_fingerprint(c));
      }
      requeues.add();
    }
  }

  result_.num_states = states_.size();
  result_.stats.set("abs_states", states_.size());
  result_.stats.set("abs_mhp_pairs", result_.mhp.size());
  if (tel.metrics_enabled()) {
    // Byte estimate of the folded state table: per-state control points
    // plus abstract store bindings.
    std::uint64_t store_entries = 0;
    std::uint64_t control_points = 0;
    for (const auto& [ctrl, st] : states_) {
      control_points += ctrl.size();
      store_entries += st.entries().size();
    }
    result_.stats.set_gauge("abs_control_points", control_points);
    result_.stats.set_gauge(
        "abs_store_bytes",
        store_entries * (sizeof(AbsLoc) + sizeof(Value) + 2 * sizeof(void*)));
    result_.stats.set_gauge("peak_rss_bytes", telemetry::peak_rss_bytes());
  }
  tel.publish_stats(result_.stats);
  return std::move(result_);
}

template <NumDomain N>
void AbsExplorer<N>::transfer(const AbsControl& ctrl, const Store& store) {
  // Record folding-level facts of this abstract configuration.
  for (std::size_t i = 0; i < ctrl.size(); ++i) {
    const AbsPoint& p = ctrl[i];
    auto [it, fresh] =
        result_.point_stores.emplace(std::make_pair(p.proc, p.pc), Store::bottom());
    (void)absdom::join_into(it->second, store);

    const sem::Instr& instr = prog_.proc(p.proc).code[p.pc];
    const std::uint32_t stmt = instr.stmt != nullptr ? instr.stmt->id() : sem::kNoStmt;
    if (stmt != sem::kNoStmt) {
      result_.reached_stmts.insert(stmt);
      if (p.omega) result_.mhp.insert({stmt, stmt});
      for (std::size_t j = i + 1; j < ctrl.size(); ++j) {
        const sem::Instr& other = prog_.proc(ctrl[j].proc).code[ctrl[j].pc];
        const std::uint32_t so = other.stmt != nullptr ? other.stmt->id() : sem::kNoStmt;
        if (so == sem::kNoStmt) continue;
        result_.mhp.insert({std::min(stmt, so), std::max(stmt, so)});
      }
    }
  }
  for (std::size_t i = 0; i < ctrl.size(); ++i) transfer_point(ctrl, store, i);
}

template <NumDomain N>
void AbsExplorer<N>::transfer_point(const AbsControl& ctrl, const Store& store,
                                    std::size_t idx) {
  const AbsPoint point = ctrl[idx];
  const sem::Proc& proc = prog_.proc(point.proc);
  const sem::Instr& instr = proc.code[point.pc];

  cur_cstring_ = &point.cstring;
  cur_reads_.clear();
  cur_writes_.clear();
  cur_stmt_ = instr.stmt != nullptr ? instr.stmt->id() : kNoCtx;
  // Lock/unlock cell traffic is synchronization, not data flow: reading a
  // free (zero) lock cell is not an uninitialized read.
  track_faults_ = instr.op != sem::Op::Lock && instr.op != sem::Op::Unlock;

  // Builds the successor control states for this point making a move; an ω
  // point leaves a residual instance behind (count ≥ 2 means "one moves,
  // at least one stays").
  auto move_to = [&](const std::vector<AbsPoint>& new_points) {
    std::vector<AbsControl> out;
    if (!point.omega) {
      AbsControl base = with_point_removed(ctrl, idx);
      for (AbsPoint np : new_points) insert_point(base, std::move(np));
      out.push_back(std::move(base));
    } else {
      for (bool residual_omega : {false, true}) {
        AbsControl base = ctrl;
        base[idx].omega = residual_omega;
        std::sort(base.begin(), base.end());
        for (AbsPoint np : new_points) insert_point(base, np);
        out.push_back(std::move(base));
      }
    }
    return out;
  };
  auto advance = [&](std::uint32_t new_pc) {
    AbsPoint np = point;
    np.omega = false;
    np.pc = settle_pc(point.proc, new_pc);
    return np;
  };
  auto emit = [&](const std::vector<AbsPoint>& new_points, Store new_store) {
    for (AbsControl succ : move_to(new_points)) enqueue(std::move(succ), new_store);
  };

  switch (instr.op) {
    case sem::Op::Assign: {
      Store s = store;
      const Value v = eval(s, point.proc, *instr.rhs);
      update(s, lvalue_locs(s, point.proc, *instr.lhs), v);
      emit({advance(point.pc + 1)}, std::move(s));
      break;
    }
    case sem::Op::Alloc: {
      Store s = store;
      const Value size = eval(s, point.proc, *instr.rhs);
      require(instr.stmt != nullptr, "alloc without statement");
      if (N::cmp(size.num, N::constant(0),
                 +[](std::int64_t x, std::int64_t y) { return x < y; })
              .may_be_truthy()) {
        note_fault(sem::Fault::NegativeAlloc, instr.rhs->id());
      }
      auto [sit, fresh] = result_.site_sizes.emplace(instr.stmt->id(), size.num);
      if (!fresh) sit->second = sit->second.join(size.num);
      const AbsLoc site = AbsLoc::heap(instr.stmt->id());
      s.join_at(site, Value::of_int(0));  // fresh cells are zero
      update(s, lvalue_locs(s, point.proc, *instr.lhs), Value::of_ptr(site));
      emit({advance(point.pc + 1)}, std::move(s));
      break;
    }
    case sem::Op::Call: {
      Store s = store;
      const Value callee = eval(s, point.proc, *instr.rhs);
      std::vector<Value> args;
      if (instr.args != nullptr) {
        for (const auto& a : *instr.args) args.push_back(eval(s, point.proc, *a));
      }
      std::set<AbsLoc> dst;
      if (instr.lhs != nullptr) {
        dst = lvalue_locs(s, point.proc, *instr.lhs);
        // The eventual return-value write belongs to this call site.
        for (const AbsLoc& loc : dst) cur_writes_.insert(loc);
      }
      // The callee's k-limited call string: caller's, extended by this site.
      std::vector<std::uint32_t> callee_cs = point.cstring;
      if (opts_.call_string_k > 0 && instr.stmt != nullptr) {
        callee_cs.push_back(instr.stmt->id());
        if (callee_cs.size() > opts_.call_string_k) {
          callee_cs.erase(callee_cs.begin(),
                          callee_cs.end() - static_cast<std::ptrdiff_t>(opts_.call_string_k));
        }
      }
      for (std::uint32_t f : callee.fns.elems()) {
        const sem::Proc& target = prog_.proc(f);
        if (target.fun == nullptr) continue;  // thread procs are not callable
        if (target.fun->params().size() != args.size()) continue;  // faults concretely
        result_.call_edges[point.proc].insert(f);
        if (instr.stmt != nullptr) result_.stmt_callees[instr.stmt->id()].insert(f);
        if (conts_[f]
                .insert(Continuation{point.proc, settle_pc(point.proc, point.pc + 1),
                                     point.path, point.cstring, callee_cs, dst})
                .second) {
          conts_grew_ = true;
        }
        Store s2 = s;
        for (std::size_t i = 0; i < args.size(); ++i) {
          const auto slot = static_cast<std::uint32_t>(1 + i);
          const std::uint32_t pctx = slot_merged(f, slot) ? 0 : cstring_ctx(callee_cs);
          s2.join_at(AbsLoc::frame(f, slot, pctx), args[i]);
          cur_writes_.insert(AbsLoc::frame(f, slot, pctx));
        }
        AbsPoint np = point;
        np.omega = false;
        np.proc = f;
        np.pc = settle_pc(f, 0);
        np.cstring = callee_cs;
        emit({np}, std::move(s2));
      }
      break;
    }
    case sem::Op::Return:
    case sem::Op::Halt: {
      if (proc.is_thread) {
        // Thread exit: the point disappears.
        emit({}, store);
        break;
      }
      Store s = store;
      Value v = Value::of_null();
      if (instr.op == sem::Op::Return && instr.rhs != nullptr) {
        v = eval(s, point.proc, *instr.rhs);
      }
      if (point.proc == prog_.entry_proc()) {
        emit({}, std::move(s));  // main finished
        break;
      }
      auto it = conts_.find(point.proc);
      if (it == conts_.end()) break;  // callers not discovered yet
      for (const Continuation& cont : it->second) {
        if (cont.path != point.path) continue;           // different thread context
        if (cont.callee_cstring != point.cstring) continue;  // different call context
        Store s2 = s;
        // The write was attributed at the call site; see update().
        if (!cont.dst.empty()) update(s2, cont.dst, v, /*attribute=*/false);
        AbsPoint np = point;
        np.omega = false;
        np.proc = cont.proc;
        np.pc = cont.pc;
        np.path = cont.path;
        np.cstring = cont.caller_cstring;
        emit({np}, std::move(s2));
      }
      break;
    }
    case sem::Op::Branch: {
      Store s = store;
      const Value c = eval(s, point.proc, *instr.rhs);
      if (c.may_be_truthy()) {
        Store st = s;
        if (refine_branch(st, point.proc, *instr.rhs, true)) {
          emit({advance(instr.t1)}, std::move(st));
        }
      }
      if (c.may_be_falsy()) {
        Store sf = s;
        if (refine_branch(sf, point.proc, *instr.rhs, false)) {
          emit({advance(instr.t2)}, std::move(sf));
        }
      }
      break;
    }
    case sem::Op::Fork: {
      require(instr.stmt != nullptr, "fork without statement");
      const std::uint32_t site = instr.stmt->id();
      std::vector<AbsPoint> news;
      news.push_back(advance(point.pc + 1));  // parent proceeds to the Join
      for (std::uint32_t b = 0; b < instr.forks.size(); ++b) {
        AbsPoint child;
        child.proc = instr.forks[b];
        child.pc = settle_pc(child.proc, 0);
        child.cstring = point.cstring;  // procedure string continues into threads
        if (opts_.folding == Folding::Tree) {
          child.path = point.path;
          if (child.path.size() < opts_.path_limit) {
            child.path.push_back(AbsPathElem{site, b});
          }
          // else: truncated — the child keeps the parent's path; joins at
          // this depth become over-approximate (see Join below).
        }
        news.push_back(std::move(child));
        result_.fork_edges[point.proc].insert(instr.forks[b]);
      }
      emit(news, store);
      break;
    }
    case sem::Op::ForkRange: {
      // doall: the instance count is a run-time value; abstractly the range
      // may be empty (parent sails through the Join) or hold one-or-more
      // instances (one ω point — exactly the clan picture of §6.2).
      require(instr.stmt != nullptr, "doall without statement");
      Store s = store;
      const Value lo = eval(s, point.proc, *instr.rhs);
      const Value hi = eval(s, point.proc, *instr.rhs2);
      const std::uint32_t child_proc = instr.forks.at(0);
      result_.fork_edges[point.proc].insert(child_proc);

      const N nonempty = N::cmp(hi.num, lo.num,
                                +[](std::int64_t x, std::int64_t y) { return x >= y; });
      if (nonempty.may_be_falsy()) {
        emit({advance(point.pc + 1)}, s);  // empty range: nothing forked
      }
      if (nonempty.may_be_truthy() || lo.num.is_bottom() || hi.num.is_bottom()) {
        Store s2 = s;
        // The index of every instance lies in [lo, hi]: join of the bounds.
        const std::uint32_t ictx = slot_merged(child_proc, 1) ? 0 : cstring_ctx(point.cstring);
        s2.join_at(AbsLoc::frame(child_proc, 1, ictx), Value::of_num(lo.num.join(hi.num)));
        cur_writes_.insert(AbsLoc::frame(child_proc, 1, ictx));
        AbsPoint child;
        child.proc = child_proc;
        child.pc = settle_pc(child_proc, 0);
        child.cstring = point.cstring;
        child.omega = true;  // one or more instances
        if (opts_.folding == Folding::Tree) {
          child.path = point.path;
          if (child.path.size() < opts_.path_limit) {
            child.path.push_back(AbsPathElem{instr.stmt->id(), 0});
          }
        }
        emit({advance(point.pc + 1), child}, std::move(s2));
      }
      break;
    }
    case sem::Op::Join: {
      bool enabled = true;
      if (point.pc > 0 && (proc.code[point.pc - 1].op == sem::Op::Fork ||
                           proc.code[point.pc - 1].op == sem::Op::ForkRange)) {
        const sem::Instr& fork = proc.code[point.pc - 1];
        require(fork.stmt != nullptr, "fork without statement");
        if (opts_.folding == Folding::Tree && point.path.size() < opts_.path_limit) {
          // Precise: look for this instance's children by exact path.
          for (std::uint32_t b = 0; b < fork.forks.size() && enabled; ++b) {
            std::vector<AbsPathElem> child_path = point.path;
            child_path.push_back(AbsPathElem{fork.stmt->id(), b});
            for (const AbsPoint& q : ctrl) {
              if (q.proc == fork.forks[b] && q.path == child_path) {
                enabled = false;  // that child is definitely still live
                break;
              }
            }
          }
        } else if (opts_.folding == Folding::Clan) {
          // McDowell's rule: the join waits while any clan member of a
          // branch is live. Exact when a cobegin site has at most one
          // simultaneously-active instance (McDowell's model); with
          // multiple concurrent instances this may delay a join past the
          // point where *this* instance's children finished.
          for (const AbsPoint& q : ctrl) {
            for (std::uint32_t child : fork.forks) {
              if (q.proc == child) enabled = false;
            }
          }
        }
        // Truncated Tree paths: fire optimistically — only adds behaviors.
      }
      if (enabled) emit({advance(point.pc + 1)}, store);
      break;
    }
    case sem::Op::Lock: {
      Store s = store;
      const std::set<AbsLoc> locs = lvalue_locs(s, point.proc, *instr.lhs);
      bool may_acquire = false;
      for (const AbsLoc& loc : locs) {
        if (read_loc(s, loc).may_be_falsy()) may_acquire = true;
      }
      if (may_acquire) {
        update(s, locs, Value::of_int(1));
        emit({advance(point.pc + 1)}, std::move(s));
      }
      break;
    }
    case sem::Op::Unlock: {
      Store s = store;
      const std::set<AbsLoc> locs = lvalue_locs(s, point.proc, *instr.lhs);
      update(s, locs, Value::of_int(0));
      emit({advance(point.pc + 1)}, std::move(s));
      break;
    }
    case sem::Op::Assert: {
      Store s = store;
      if (instr.rhs != nullptr) {
        const Value c = eval(s, point.proc, *instr.rhs);
        if (c.may_be_falsy() && instr.stmt != nullptr) {
          result_.may_fail_asserts.insert(instr.stmt->id());
        }
      }
      emit({advance(point.pc + 1)}, std::move(s));
      break;
    }
    case sem::Op::Jump:
      throw Error("abstract transfer: unsettled jump");
  }

  // Attribute this action's accesses to the executing proc and statement.
  auto& reads = result_.reads_direct[point.proc];
  reads.insert(cur_reads_.begin(), cur_reads_.end());
  auto& writes = result_.writes_direct[point.proc];
  writes.insert(cur_writes_.begin(), cur_writes_.end());
  if (instr.stmt != nullptr) {
    auto& sr = result_.stmt_reads[instr.stmt->id()];
    sr.insert(cur_reads_.begin(), cur_reads_.end());
    auto& sw = result_.stmt_writes[instr.stmt->id()];
    sw.insert(cur_writes_.begin(), cur_writes_.end());
  }
}

}  // namespace copar::absem
