// Abstract locations: the abstraction of the store's location domain.
//
// All activations of a function fold into one abstract frame, all objects
// allocated at a site fold into one summary object (offsets included), and
// globals map one-to-one. This is the location abstraction the paper's §6
// builds on; everything the abstract semantics reads or writes is an AbsLoc.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace copar::absem {

struct AbsLoc {
  enum class Kind : std::uint8_t { Global, Frame, Heap };

  Kind kind = Kind::Global;
  std::uint32_t a = 0;  // Global: slot. Frame: function proc id. Heap: alloc stmt id.
  std::uint32_t b = 0;  // Frame: slot. Others: 0.
  /// Frame context qualifier under k-limited call strings (0 = merged /
  /// context-insensitive; nonzero = hash of the activation's call string).
  /// Slots reachable through static-link hops stay merged so hop accesses
  /// and direct accesses agree on one abstract cell.
  std::uint32_t c = 0;

  static AbsLoc global(std::uint32_t slot) { return AbsLoc{Kind::Global, slot, 0, 0}; }
  static AbsLoc frame(std::uint32_t fn, std::uint32_t slot, std::uint32_t ctx = 0) {
    return AbsLoc{Kind::Frame, fn, slot, ctx};
  }
  static AbsLoc heap(std::uint32_t site) { return AbsLoc{Kind::Heap, site, 0, 0}; }

  friend bool operator==(const AbsLoc&, const AbsLoc&) = default;
  friend auto operator<=>(const AbsLoc&, const AbsLoc&) = default;

  [[nodiscard]] bool is_summary() const { return kind != Kind::Global; }

  [[nodiscard]] std::string to_string() const {
    switch (kind) {
      case Kind::Global: return "G" + std::to_string(a);
      case Kind::Frame:
        return "F" + std::to_string(a) + "." + std::to_string(b) +
               (c != 0 ? ("#" + std::to_string(c % 997)) : "");
      case Kind::Heap: return "H" + std::to_string(a);
    }
    return "?";
  }
};

}  // namespace copar::absem
