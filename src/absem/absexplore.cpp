// Explicit instantiations of the abstract explorer for the shipped numeric
// domains, so downstream targets link against compiled bodies.
#include "src/absem/absexplore.h"

#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absdom/parity.h"
#include "src/absdom/sign.h"

namespace copar::absem {

static_assert(NumDomain<absdom::FlatInt>);
static_assert(NumDomain<absdom::Interval>);
static_assert(NumDomain<absdom::Parity>);
static_assert(NumDomain<absdom::Sign>);

template class AbsExplorer<absdom::FlatInt>;
template class AbsExplorer<absdom::Interval>;
template class AbsExplorer<absdom::Parity>;
template class AbsExplorer<absdom::Sign>;

}  // namespace copar::absem
