// Interference facts for the rely/guarantee thread-modular engine (tmod).
//
// A thread's *guarantee* is the abstract map of writes it may perform on
// shared locations; a thread's *rely* is the join of the other threads'
// guarantees (plus its own when several instances of it may run at once).
// Analyzing every thread sequentially against a rely that over-approximates
// the joined guarantees yields a sound over-approximation of all
// interleavings (Miné's thread-modular recipe over the Chow–Harrison model).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "src/absdom/map.h"
#include "src/absem/absloc.h"
#include "src/absem/absvalue.h"

namespace copar::absem {

/// The interference lattice: abstract written values per location. Both
/// guarantees and relies live here; absent keys mean "never written".
template <NumDomain N>
using Interference = absdom::MapLattice<AbsLoc, AbsValue<N>>;

/// One abstract access recorded during a thread's sequential analysis,
/// keyed by originating statement. These feed race-pair generation.
struct AccessRecord {
  std::uint32_t thread = 0;  // thread-root proc id of the accessor
  std::uint32_t stmt = 0;    // originating statement id
  AbsLoc loc;
  bool is_write = false;
  /// Lock/Unlock cell traffic — synchronization, not data flow. Two sync
  /// accesses never form a race (that contention is the lock's job).
  bool sync = false;
  /// Must-held lockset, intersected over every occurrence of this
  /// (stmt, loc, kind) access (bitmask per analysis::LockSets; 0 = no lock
  /// provably held, so the access never prunes on mutual exclusion).
  std::uint64_t locks = 0;

  friend auto operator<=>(const AccessRecord&, const AccessRecord&) = default;
};

/// Hooks and knobs for tmod_analyze. The hooks exist because src/analysis
/// depends on src/absem (not the other way around): callers that have
/// lockset / static-MHP results inject them here; every null hook defaults
/// to the sound "don't know" answer.
struct TmodOptions {
  /// Cap on widened interference rounds before giving up (truncated=true).
  std::uint32_t max_rounds = 32;
  /// Must-held lockset bitmask at (proc, pc); null = no lock information
  /// (mask 0 everywhere — no interference or race pruning).
  std::function<std::uint64_t(std::uint32_t, std::uint32_t)> must_locks;
  /// May two instances of thread-root `proc` run concurrently with each
  /// other? Null = assume yes (sound).
  std::function<bool(std::uint32_t)> self_parallel;
  /// May statements s1 and s2 run in parallel? Null = assume yes (sound).
  std::function<bool(std::uint32_t, std::uint32_t)> parallel;
};

}  // namespace copar::absem
