// Abstract exploration: the non-standard semantics of §4 executed over
// abstract configurations, with pluggable folding (§6).
//
// An abstract configuration is a *control state* — a canonical set of
// abstract process points — plus an abstract store (AbsLoc -> AbsValue)
// associated with it. Folding modes:
//
//   Folding::Tree — points carry their fork path: the abstract
//     configuration is the tree of live control points. This is Taylor's
//     "concurrency state" (§6.1): configurations that differ only in
//     data or in process identities fold together.
//
//   Folding::Clan — points drop the fork path and carry a 1/ω multiplicity
//     instead: processes executing the same code from the same cobegin
//     branch fold into one abstract process. This is McDowell's clan /
//     virtual concurrency state (§6.2): "if several tasks are executing
//     the same sequence of statements, it is often not necessary to know
//     exactly how many of those tasks are at a certain point".
//
// Call stacks are abstracted 0-CFA style: a point is (proc, pc) and returns
// flow to every discovered call site of the proc. Stores use weak updates
// on summary locations (frames, heap) and strong updates on the unique
// globals frame. The engine iterates to a fixpoint with widening, so it
// terminates on every program, including ones the concrete explorer cannot
// exhaust — that is the point of §6.
//
// Soundness note (documented deviation): Clan mode implements McDowell's
// join rule — a coend waits while any clan member of one of its branches is
// live. This is exact under McDowell's model (at most one simultaneously
// active instance of each cobegin site); if a site can be active twice
// concurrently, a join may be delayed relative to the concrete semantics.
// Tree mode has no such caveat and is the default.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/absdom/map.h"
#include "src/absem/absvalue.h"
#include "src/explore/frontier.h"
#include "src/sem/config.h"
#include "src/sem/lower.h"
#include "src/support/fingerprint.h"
#include "src/support/stats.h"

namespace copar::absem {

enum class Folding : std::uint8_t { Tree, Clan };

struct AbsPathElem {
  std::uint32_t site = 0;
  std::uint32_t branch = 0;
  friend bool operator==(const AbsPathElem&, const AbsPathElem&) = default;
  friend auto operator<=>(const AbsPathElem&, const AbsPathElem&) = default;
};

/// One abstract process: control point + (Tree) fork path or (Clan) ω flag,
/// plus a k-limited abstract procedure string (the call-site suffix): the
/// paper's procedure strings, folded to their last k call symbols. k = 0
/// gives 0-CFA (all call sites merge); larger k separates return flows.
struct AbsPoint {
  std::uint32_t proc = 0;
  std::uint32_t pc = 0;
  std::vector<AbsPathElem> path;
  std::vector<std::uint32_t> cstring;  // call-site stmt ids, most recent last
  bool omega = false;

  /// Identity ignores omega (duplicates merge into one ω point).
  [[nodiscard]] auto ident() const { return std::tie(proc, pc, path, cstring); }
  friend bool operator==(const AbsPoint& a, const AbsPoint& b) {
    return a.ident() == b.ident() && a.omega == b.omega;
  }
  friend bool operator<(const AbsPoint& a, const AbsPoint& b) {
    return std::tie(a.proc, a.pc, a.path, a.cstring, a.omega) <
           std::tie(b.proc, b.pc, b.path, b.cstring, b.omega);
  }
};

using AbsControl = std::vector<AbsPoint>;  // sorted, duplicates merged via ω

/// 128-bit fingerprint of a (canonically sorted) control state, covering
/// every identity field of every point. The worklist's queued-membership
/// check keys on this instead of holding full AbsControl copies.
inline support::Fingerprint control_fingerprint(const AbsControl& ctrl) {
  support::Fp128Hasher h;
  h.u32(static_cast<std::uint32_t>(ctrl.size()));
  for (const AbsPoint& p : ctrl) {
    h.u32(p.proc);
    h.u32(p.pc);
    h.u32(static_cast<std::uint32_t>(p.path.size()));
    for (const AbsPathElem& e : p.path) {
      h.u32(e.site);
      h.u32(e.branch);
    }
    h.u32(static_cast<std::uint32_t>(p.cstring.size()));
    for (std::uint32_t c : p.cstring) h.u32(c);
    h.u8(p.omega ? 1 : 0);
  }
  return h.finalize();
}

template <NumDomain N>
using AbsStore = absdom::MapLattice<AbsLoc, AbsValue<N>>;

struct AbsOptions {
  Folding folding = Folding::Tree;
  /// Fork paths longer than this are truncated (deep fork recursion);
  /// truncation only merges more states.
  std::size_t path_limit = 8;
  /// k-limit of the abstract procedure (call) strings carried by points:
  /// 0 = 0-CFA (all call sites of a function merge; cheapest), k > 0 keeps
  /// the last k call sites apart (more states, more precise returns).
  std::size_t call_string_k = 0;
  std::uint64_t max_states = 200000;
};

template <NumDomain N>
struct AbsResult {
  std::uint64_t num_states = 0;
  bool truncated = false;
  /// May-happen-in-parallel statement pairs (lo <= hi; (s,s) = self-parallel).
  std::set<std::pair<std::uint32_t, std::uint32_t>> mhp;
  /// Assertions that may fail on some abstract path.
  std::set<std::uint32_t> may_fail_asserts;
  /// Run-time errors possible on some abstract path: (stmt id, expr id,
  /// sem::Fault as uint8). Sound over-approximation — a listed fault *may*
  /// occur; absence means the abstract semantics proves it cannot.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>> may_faults;
  /// Join of the abstract allocation size per alloc statement id.
  std::map<std::uint32_t, N> site_sizes;
  /// Statement ids whose action was ever enabled in a reached abstract
  /// state. Statements lowered to instructions but absent here are
  /// unreachable under the abstract semantics.
  std::set<std::uint32_t> reached_stmts;
  /// Reads of never-written cells: (stmt id, expr id, location). Implicit
  /// zero-initialization means these are "reads of the default 0", which
  /// the uninitialized-read check reports for named variables.
  std::set<std::tuple<std::uint32_t, std::uint32_t, AbsLoc>> uninit_reads;
  /// Direct abstract read/write sets per proc.
  std::map<std::uint32_t, std::set<AbsLoc>> reads_direct;
  std::map<std::uint32_t, std::set<AbsLoc>> writes_direct;
  /// Abstract read/write sets per statement id.
  std::map<std::uint32_t, std::set<AbsLoc>> stmt_reads;
  std::map<std::uint32_t, std::set<AbsLoc>> stmt_writes;
  /// Discovered call edges (caller proc -> callee proc) and fork edges.
  std::map<std::uint32_t, std::set<std::uint32_t>> call_edges;
  std::map<std::uint32_t, std::set<std::uint32_t>> fork_edges;
  /// Callee procs discovered per call statement (for treating a call
  /// statement as a unit with its callee's transitive effects).
  std::map<std::uint32_t, std::set<std::uint32_t>> stmt_callees;
  /// Join of the stores of every state containing (proc, pc).
  std::map<std::pair<std::uint32_t, std::uint32_t>, AbsStore<N>> point_stores;
  StatRegistry stats;

  /// Transitive side effects of `proc`: its own accesses plus those of
  /// everything reachable through calls and forks.
  [[nodiscard]] std::pair<std::set<AbsLoc>, std::set<AbsLoc>> effects_of(
      std::uint32_t proc) const {
    std::set<AbsLoc> reads;
    std::set<AbsLoc> writes;
    std::set<std::uint32_t> seen;
    std::vector<std::uint32_t> work = {proc};
    while (!work.empty()) {
      const std::uint32_t p = work.back();
      work.pop_back();
      if (!seen.insert(p).second) continue;
      if (auto it = reads_direct.find(p); it != reads_direct.end()) {
        reads.insert(it->second.begin(), it->second.end());
      }
      if (auto it = writes_direct.find(p); it != writes_direct.end()) {
        writes.insert(it->second.begin(), it->second.end());
      }
      for (const auto* edges : {&call_edges, &fork_edges}) {
        if (auto it = edges->find(p); it != edges->end()) {
          for (std::uint32_t q : it->second) work.push_back(q);
        }
      }
    }
    return {std::move(reads), std::move(writes)};
  }

  /// Abstract value of `loc` observable at control point (proc, pc);
  /// bottom if the point was never reached.
  [[nodiscard]] AbsValue<N> value_at(std::uint32_t proc, std::uint32_t pc,
                                     const AbsLoc& loc) const {
    auto it = point_stores.find({proc, pc});
    if (it == point_stores.end()) return AbsValue<N>::bottom();
    AbsValue<N> v = it->second.get(loc);
    if (v.is_bottom()) return AbsValue<N>::of_int(0);  // never-written cell
    return v;
  }
};

template <NumDomain N>
class AbsExplorer {
 public:
  AbsExplorer(const sem::LoweredProgram& program, AbsOptions options);

  AbsResult<N> run();

 private:
  using Value = AbsValue<N>;
  using Store = AbsStore<N>;

  struct Continuation {
    std::uint32_t proc;
    std::uint32_t pc;
    /// Fork path of the calling point: a return resumes only continuations
    /// of the same thread context (otherwise returns would teleport control
    /// across threads and blow up the control-state space).
    std::vector<AbsPathElem> path;
    /// Caller's call string (restored on return) and the callee context it
    /// created (matched against the returning point under k > 0).
    std::vector<std::uint32_t> caller_cstring;
    std::vector<std::uint32_t> callee_cstring;
    std::set<AbsLoc> dst;  // where the return value lands (empty: dropped)
    friend auto operator<=>(const Continuation&, const Continuation&) = default;
  };

  // --- evaluation --------------------------------------------------------
  [[nodiscard]] AbsLoc var_absloc(std::uint32_t proc, const lang::Expr& ref) const;
  [[nodiscard]] Value read_loc(const Store& store, const AbsLoc& loc);
  [[nodiscard]] Value eval(const Store& store, std::uint32_t proc, const lang::Expr& e);
  [[nodiscard]] std::set<AbsLoc> lvalue_locs(const Store& store, std::uint32_t proc,
                                             const lang::Expr& lv);
  /// Pointer arithmetic on frame pointers may reach any slot of the frame.
  [[nodiscard]] absdom::PowerSet<AbsLoc> spread_frames(const absdom::PowerSet<AbsLoc>& locs) const;

  /// `attribute` controls whether the write lands in the current action's
  /// access sets (return-value writes belong to the call site, not the
  /// returning function).
  void update(Store& store, const std::set<AbsLoc>& locs, const Value& v,
              bool attribute = true);

  /// Branch-condition refinement: narrows `store` along the `want_true`
  /// edge of `cond` when the condition compares a refinable variable (a
  /// global, or a local of the never-called entry proc — unique concrete
  /// cells) against a numeric expression. Returns false if the edge is
  /// infeasible (the refined value is bottom).
  [[nodiscard]] bool refine_branch(Store& store, std::uint32_t proc, const lang::Expr& cond,
                                   bool want_true);

  // --- control-state plumbing ---------------------------------------------
  [[nodiscard]] std::uint32_t settle_pc(std::uint32_t proc, std::uint32_t pc) const;
  static void insert_point(AbsControl& ctrl, AbsPoint p);
  [[nodiscard]] AbsControl with_point_replaced(const AbsControl& ctrl, std::size_t idx,
                                               AbsPoint replacement) const;
  [[nodiscard]] AbsControl with_point_removed(const AbsControl& ctrl, std::size_t idx) const;

  void enqueue(AbsControl ctrl, Store store);
  void transfer(const AbsControl& ctrl, const Store& store);
  void transfer_point(const AbsControl& ctrl, const Store& store, std::size_t idx);

  /// Context hash of a call string (0 for empty / context-insensitive).
  [[nodiscard]] std::uint32_t cstring_ctx(const std::vector<std::uint32_t>& cs) const;
  /// True if (fn, slot) must stay context-merged (accessed via hops).
  [[nodiscard]] bool slot_merged(std::uint32_t fn, std::uint32_t slot) const {
    return merged_fns_.contains(fn) || merged_slots_.contains({fn, slot});
  }

  const sem::LoweredProgram& prog_;
  AbsOptions opts_;
  AbsResult<N> result_;

  /// Frame slots accessed with hops > 0 anywhere (lambda captures, doall
  /// bodies reading enclosing locals): these keep context 0.
  std::set<std::pair<std::uint32_t, std::uint32_t>> merged_slots_;
  /// Functions with address-taken locals: their whole frame stays merged
  /// (pointers cannot know activation contexts).
  std::set<std::uint32_t> merged_fns_;
  /// Call string of the point currently being transferred (null = empty).
  const std::vector<std::uint32_t>* cur_cstring_ = nullptr;
  /// Statement and expression context of the action currently being
  /// transferred, for fault attribution (kNoCtx = outside any action, e.g.
  /// global initializers — faults there are not recorded).
  static constexpr std::uint32_t kNoCtx = 0xffffffffu;
  std::uint32_t cur_stmt_ = kNoCtx;
  /// Fault/uninit recording gate: off for Lock/Unlock actions (their cell
  /// traffic is synchronization, not data flow) and outside actions.
  bool track_faults_ = false;

  /// Records a may-fault at `expr` of the current action, if tracking.
  void note_fault(sem::Fault f, std::uint32_t expr_id) {
    if (track_faults_ && cur_stmt_ != kNoCtx) {
      result_.may_faults.insert({cur_stmt_, expr_id, static_cast<std::uint8_t>(f)});
    }
  }

  /// Records an OutOfBounds may-fault when `index` may fall outside an
  /// indexed heap object's allocated size (joined per alloc site).
  void check_bounds(const Value& base, const Value& index, const lang::Index& ix);

  std::map<AbsControl, Store> states_;
  /// Fixpoint worklist: FIFO with fingerprint-keyed queued-membership (a
  /// control already waiting is not enqueued twice), shared with the
  /// exploration engines (src/explore/frontier.h).
  explore::UniqueFifo<AbsControl> work_;
  std::map<std::uint32_t, std::set<Continuation>> conts_;  // proc -> call sites
  bool conts_grew_ = false;

  // scratch: accesses of the action currently being transferred
  std::set<AbsLoc> cur_reads_;
  std::set<AbsLoc> cur_writes_;
};

// Convenience aliases for the shipped numeric domains.
// (Explicitly instantiated in absexplore.cpp.)

}  // namespace copar::absem

#include "src/absem/absexplore_impl.h"
