// The rely/guarantee thread-modular engine (see tmod.h).
//
// Structure: a per-thread sequential abstract interpreter (a worklist over
// (proc, pc) points, mirroring AbsExplorer's transfer functions but with no
// interleaved control state) is run for every thread root against a rely
// map; writes feed the thread's guarantee; guarantees are joined into the
// relies with widening until nothing grows; one narrowing pass with the
// exact guarantee join then produces the reported facts. Reads always
// evaluate own-store ⊔ rely, so a strong own-store update never hides
// another thread's interference.
//
// Determinism: thread roots, worklists, and every recorded container are
// std::map/std::set ordered by (proc, pc, stmt, loc) keys — reports are
// byte-reproducible across runs and platforms.
#include "src/absem/tmod.h"

#include <algorithm>
#include <utility>

#include "src/lang/ast.h"
#include "src/sem/config.h"
#include "src/sem/step.h"
#include "src/support/diagnostics.h"
#include "src/support/telemetry.h"

namespace copar::absem {
namespace {

template <NumDomain N>
class ThreadModular {
 public:
  using Value = AbsValue<N>;
  using Store = absdom::MapLattice<AbsLoc, Value>;
  using Point = std::pair<std::uint32_t, std::uint32_t>;  // (proc, pc)

  ThreadModular(const sem::LoweredProgram& prog, const TmodOptions& opts)
      : prog_(prog), opts_(opts) {}

  TmodResult<N> run();

 private:
  /// A discovered call site: where a callee's return flows back to.
  struct Cont {
    std::uint32_t proc = 0;
    std::uint32_t pc = 0;
    std::set<AbsLoc> dst;  // return-value destination (empty: discarded)
    friend auto operator<=>(const Cont&, const Cont&) = default;
  };

  /// Per-thread analysis state, accumulated monotonically across rounds.
  struct ThreadState {
    std::map<Point, Store> states;  // abstract store on entry to each point
    std::map<std::uint32_t, std::set<Cont>> conts;  // callee -> return sites
    Interference<N> guarantee;      // this thread's abstract writes
  };

  static constexpr std::uint32_t kNoCtx = 0xffffffffu;

  [[nodiscard]] bool self_par(std::uint32_t root) const {
    return opts_.self_parallel ? opts_.self_parallel(root) : true;
  }

  [[nodiscard]] std::uint32_t settle_pc(std::uint32_t proc, std::uint32_t pc) const {
    const auto& code = prog_.proc(proc).code;
    while (pc < code.size() && code[pc].op == sem::Op::Jump) pc = code[pc].t1;
    return pc;
  }

  AbsLoc var_absloc(std::uint32_t proc, const lang::Expr& ref) const {
    const sem::VarLoc& vl = prog_.varloc(ref.id());
    if (vl.is_global) return AbsLoc::global(vl.slot);
    std::uint32_t fn = prog_.proc(proc).owner_fn;
    for (std::uint16_t h = 0; h < vl.hops; ++h) {
      fn = prog_.proc(fn).lexical_parent;
      require(fn != sem::kNoProc, "tmod hop chain fell off the top");
    }
    // Context-insensitive: all activations of a function share one frame.
    return AbsLoc::frame(fn, vl.slot, 0);
  }

  /// Every read sees own-store ⊔ rely: interference is never hidden by a
  /// strong own-store update. A bottom own cell reads as the implicit zero.
  Value read_loc(const Store& store, const AbsLoc& loc) {
    cur_reads_.insert(loc);
    Value own = store.get(loc);
    if (own.is_bottom()) own = Value::of_int(0);
    return own.join(cur_rely_->get(loc));
  }

  void note_fault(sem::Fault f, std::uint32_t expr_id) {
    if (recording_ && track_faults_ && cur_stmt_ != kNoCtx) {
      result_.may_faults.insert({cur_stmt_, expr_id, static_cast<std::uint8_t>(f)});
    }
  }

  absdom::PowerSet<AbsLoc> spread_frames(const absdom::PowerSet<AbsLoc>& locs) const {
    absdom::PowerSet<AbsLoc> out;
    for (const AbsLoc& loc : locs.elems()) {
      if (loc.kind == AbsLoc::Kind::Frame) {
        const sem::Proc& fn = prog_.proc(loc.a);
        for (std::uint32_t slot = 1; slot < std::max(fn.nslots, 1u); ++slot) {
          out.insert(AbsLoc::frame(loc.a, slot, 0));
        }
      } else {
        out.insert(loc);
      }
    }
    return out;
  }

  Value eval(const Store& store, std::uint32_t proc, const lang::Expr& e);
  std::set<AbsLoc> lvalue_locs(const Store& store, std::uint32_t proc, const lang::Expr& lv);
  void check_bounds(const Value& base, const Value& index, const lang::Index& ix);
  bool refine_branch(Store& store, std::uint32_t proc, const lang::Expr& cond, bool want_true);

  /// Writes `v` to `locs`: strong in the own store when the target is one
  /// non-summary cell, weak otherwise; always joined into the guarantee.
  /// `attribute` controls access attribution to the current statement
  /// (false for return-value writes, attributed at the call site).
  void update(Store& store, const std::set<AbsLoc>& locs, const Value& v,
              bool attribute = true) {
    for (const AbsLoc& loc : locs) {
      if (attribute) cur_writes_.insert(loc);
      if (cur_ts_->guarantee.join_at(loc, v)) grew_ = true;
    }
    if (locs.size() == 1 && !locs.begin()->is_summary()) {
      store.set(*locs.begin(), v);  // strong update: unique concrete cell
      return;
    }
    for (const AbsLoc& loc : locs) store.join_at(loc, v);
  }

  void propagate(Point pt, const Store& store) {
    auto [it, fresh] = cur_ts_->states.emplace(pt, store);
    if (!fresh && !absdom::widen_into(it->second, store)) return;
    grew_ = true;
    worklist_.insert(pt);
  }

  /// Joins `store` into a forked proc's seed (widened across rounds); the
  /// report pass runs on the converged seeds and never grows them.
  void seed_child(std::uint32_t child, const Store& store) {
    if (recording_) return;
    auto [it, fresh] = seeds_.emplace(child, store);
    if (fresh || absdom::widen_into(it->second, store)) grew_ = true;
  }

  void note_access(const AbsLoc& loc, bool is_write) {
    const auto key = std::make_tuple(cur_thread_, cur_stmt_, loc, is_write, cur_sync_);
    auto [it, fresh] = access_masks_.emplace(key, cur_mask_);
    if (!fresh) it->second &= cur_mask_;
  }

  void analyze(std::uint32_t root, ThreadState& ts, const Interference<N>& rely,
               const Store& seed);
  void transfer(Point pt, const Store& store);
  [[nodiscard]] TmodRaceReport make_races() const;

  const sem::LoweredProgram& prog_;
  TmodOptions opts_;
  TmodResult<N> result_;

  /// Thread roots and their (widened) entry stores.
  std::map<std::uint32_t, Store> seeds_;
  /// (thread, stmt, loc, is_write, sync) -> must-lock mask (intersected).
  std::map<std::tuple<std::uint32_t, std::uint32_t, AbsLoc, bool, bool>, std::uint64_t>
      access_masks_;

  // --- state of the analysis currently in flight ---------------------------
  ThreadState* cur_ts_ = nullptr;
  const Interference<N>* cur_rely_ = nullptr;
  std::uint32_t cur_thread_ = 0;
  std::set<Point> worklist_;
  std::set<AbsLoc> cur_reads_;
  std::set<AbsLoc> cur_writes_;
  std::uint32_t cur_stmt_ = kNoCtx;
  std::uint64_t cur_mask_ = 0;
  bool cur_sync_ = false;
  bool track_faults_ = false;
  /// False during the widened rounds (only guarantees/seeds matter), true
  /// during the final narrowed pass that produces the reported facts.
  bool recording_ = false;
  /// Anything grew (states, guarantees, seeds, relies) — convergence flag.
  bool grew_ = false;
  std::uint64_t evals_ = 0;
};

template <NumDomain N>
AbsValue<N> ThreadModular<N>::eval(const Store& store, std::uint32_t proc,
                                   const lang::Expr& e) {
  using lang::ExprKind;
  switch (e.kind()) {
    case ExprKind::IntLit:
      return Value::of_int(lang::expr_cast<lang::IntLit>(e).value());
    case ExprKind::BoolLit:
      return Value::of_int(lang::expr_cast<lang::BoolLit>(e).value() ? 1 : 0);
    case ExprKind::NullLit:
      return Value::of_null();
    case ExprKind::VarRef: {
      const AbsLoc loc = var_absloc(proc, e);
      if (recording_ && track_faults_ && cur_stmt_ != kNoCtx && store.get(loc).is_bottom()) {
        result_.uninit_reads.insert({cur_stmt_, e.id(), loc});
      }
      return read_loc(store, loc);
    }
    case ExprKind::Unary: {
      const auto& u = lang::expr_cast<lang::Unary>(e);
      const Value v = eval(store, proc, u.operand());
      Value out;
      if (u.op() == lang::UnOp::Neg) {
        out.num = N::sub(N::constant(0), v.num);
      } else {  // not
        if (v.may_be_truthy()) out.num = out.num.join(N::constant(0));
        if (v.may_be_falsy()) out.num = out.num.join(N::constant(1));
      }
      return out;
    }
    case ExprKind::Binary: {
      const auto& b = lang::expr_cast<lang::Binary>(e);
      const Value l = eval(store, proc, b.lhs());
      const Value r = eval(store, proc, b.rhs());
      Value out;
      using lang::BinOp;
      auto bool_out = [&](bool can_true, bool can_false) {
        if (can_true) out.num = out.num.join(N::constant(1));
        if (can_false) out.num = out.num.join(N::constant(0));
      };
      switch (b.op()) {
        case BinOp::Add:
        case BinOp::Sub: {
          out.num = b.op() == BinOp::Add ? N::add(l.num, r.num) : N::sub(l.num, r.num);
          if (!l.ptrs.is_bottom()) out.ptrs = out.ptrs.join(spread_frames(l.ptrs));
          return out;
        }
        case BinOp::Mul:
          out.num = N::mul(l.num, r.num);
          return out;
        case BinOp::Div:
          if (r.may_be_falsy()) note_fault(sem::Fault::DivByZero, b.rhs().id());
          out.num = N::div(l.num, r.num);
          return out;
        case BinOp::Mod:
          if (r.may_be_falsy()) note_fault(sem::Fault::DivByZero, b.rhs().id());
          out.num = N::mod(l.num, r.num);
          return out;
        case BinOp::Eq:
        case BinOp::Ne: {
          const bool ptrish =
              !l.ptrs.is_bottom() || !r.ptrs.is_bottom() || l.may_null || r.may_null ||
              !l.fns.is_bottom() || !r.fns.is_bottom();
          if (ptrish) {
            bool_out(true, true);  // aliasing undecided at this precision
            return out;
          }
          out.num = N::cmp(l.num, r.num,
                           b.op() == BinOp::Eq
                               ? +[](std::int64_t x, std::int64_t y) { return x == y; }
                               : +[](std::int64_t x, std::int64_t y) { return x != y; });
          return out;
        }
        case BinOp::Lt:
          out.num = N::cmp(l.num, r.num, +[](std::int64_t x, std::int64_t y) { return x < y; });
          return out;
        case BinOp::Le:
          out.num = N::cmp(l.num, r.num, +[](std::int64_t x, std::int64_t y) { return x <= y; });
          return out;
        case BinOp::Gt:
          out.num = N::cmp(l.num, r.num, +[](std::int64_t x, std::int64_t y) { return x > y; });
          return out;
        case BinOp::Ge:
          out.num = N::cmp(l.num, r.num, +[](std::int64_t x, std::int64_t y) { return x >= y; });
          return out;
        case BinOp::And:
          bool_out(l.may_be_truthy() && r.may_be_truthy(),
                   l.may_be_falsy() || r.may_be_falsy());
          return out;
        case BinOp::Or:
          bool_out(l.may_be_truthy() || r.may_be_truthy(),
                   l.may_be_falsy() && r.may_be_falsy());
          return out;
      }
      throw Error("tmod eval: bad binop");
    }
    case ExprKind::AddrOf: {
      const auto& a = lang::expr_cast<lang::AddrOf>(e);
      Value out;
      for (const AbsLoc& loc : lvalue_locs(store, proc, a.lvalue())) out.ptrs.insert(loc);
      return out;
    }
    case ExprKind::Deref:
    case ExprKind::Index: {
      Value out;
      for (const AbsLoc& loc : lvalue_locs(store, proc, e)) {
        out = out.join(read_loc(store, loc));
      }
      return out;
    }
    case ExprKind::FunLit:
      return Value::of_fn(lang::expr_cast<lang::FunLit>(e).decl().index());
  }
  throw Error("tmod eval: bad expr kind");
}

template <NumDomain N>
std::set<AbsLoc> ThreadModular<N>::lvalue_locs(const Store& store, std::uint32_t proc,
                                               const lang::Expr& lv) {
  using lang::ExprKind;
  switch (lv.kind()) {
    case ExprKind::VarRef:
      return {var_absloc(proc, lv)};
    case ExprKind::Deref: {
      const auto& d = lang::expr_cast<lang::Deref>(lv);
      const Value p = eval(store, proc, d.pointer());
      if (p.may_null) note_fault(sem::Fault::DerefNull, d.pointer().id());
      return {p.ptrs.elems().begin(), p.ptrs.elems().end()};
    }
    case ExprKind::Index: {
      const auto& ix = lang::expr_cast<lang::Index>(lv);
      const Value base = eval(store, proc, ix.base());
      const Value index = eval(store, proc, ix.index());
      if (base.may_null) note_fault(sem::Fault::DerefNull, ix.base().id());
      check_bounds(base, index, ix);
      const auto spread = spread_frames(base.ptrs);
      return {spread.elems().begin(), spread.elems().end()};
    }
    default:
      throw Error("tmod lvalue_locs: not an lvalue");
  }
}

template <NumDomain N>
void ThreadModular<N>::check_bounds(const Value& base, const Value& index,
                                    const lang::Index& ix) {
  if (!recording_ || !track_faults_ || cur_stmt_ == kNoCtx) return;
  for (const AbsLoc& loc : base.ptrs.elems()) {
    if (loc.kind != AbsLoc::Kind::Heap) continue;
    const auto it = result_.site_sizes.find(loc.a);
    if (it == result_.site_sizes.end()) continue;
    const bool below = N::cmp(index.num, N::constant(0),
                              +[](std::int64_t x, std::int64_t y) { return x < y; })
                           .may_be_truthy();
    const bool above = N::cmp(index.num, it->second,
                              +[](std::int64_t x, std::int64_t y) { return x >= y; })
                          .may_be_truthy();
    if (below || above) {
      note_fault(sem::Fault::OutOfBounds, ix.index().id());
      return;
    }
  }
}

template <NumDomain N>
bool ThreadModular<N>::refine_branch(Store& store, std::uint32_t proc,
                                     const lang::Expr& cond, bool want_true) {
  using lang::BinOp;
  using lang::ExprKind;
  if (cond.kind() != ExprKind::Binary) return true;
  const auto& b = lang::expr_cast<lang::Binary>(cond);
  absdom::CmpOp op;
  switch (b.op()) {
    case BinOp::Lt: op = absdom::CmpOp::Lt; break;
    case BinOp::Le: op = absdom::CmpOp::Le; break;
    case BinOp::Gt: op = absdom::CmpOp::Gt; break;
    case BinOp::Ge: op = absdom::CmpOp::Ge; break;
    case BinOp::Eq: op = absdom::CmpOp::Eq; break;
    case BinOp::Ne: op = absdom::CmpOp::Ne; break;
    default: return true;
  }

  // A refinable location is a unique concrete cell: a global, or a frame
  // slot of the entry proc while nothing calls it. Refining a cell other
  // threads may write stays sound: the refined value lands in the *own*
  // store only, and every later read re-joins the rely.
  auto refinable = [&](const AbsLoc& loc) {
    if (loc.kind == AbsLoc::Kind::Global) return true;
    return loc.kind == AbsLoc::Kind::Frame && loc.a == prog_.entry_proc() &&
           !cur_ts_->conts.contains(prog_.entry_proc());
  };

  auto try_side = [&](const lang::Expr& var_side, const lang::Expr& other_side,
                      absdom::CmpOp side_op) {
    if (var_side.kind() != ExprKind::VarRef) return true;
    const AbsLoc loc = var_absloc(proc, var_side);
    if (!refinable(loc)) return true;
    const Value v = read_loc(store, loc);
    if (v.may_null || !v.ptrs.is_bottom() || !v.fns.is_bottom()) return true;
    const Value rhs = eval(store, proc, other_side);
    const N refined = N::refine_cmp(v.num, side_op, rhs.num, want_true);
    if (refined == v.num) return true;
    if (refined.is_bottom()) return false;  // edge infeasible for this state
    Value nv = v;
    nv.num = refined;
    store.set(loc, nv);  // strong: own-store only; reads re-join the rely
    return true;
  };

  if (!try_side(b.lhs(), b.rhs(), op)) return false;
  return try_side(b.rhs(), b.lhs(), absdom::mirror(op));
}

template <NumDomain N>
void ThreadModular<N>::analyze(std::uint32_t root, ThreadState& ts,
                               const Interference<N>& rely, const Store& seed) {
  cur_ts_ = &ts;
  cur_rely_ = &rely;
  cur_thread_ = root;
  worklist_.clear();
  // Re-evaluate every known point: a grown rely can change any transfer
  // that reads shared state. Monotone, so this terminates.
  for (const auto& [pt, st] : ts.states) worklist_.insert(pt);
  propagate({root, settle_pc(root, 0)}, seed);
  while (!worklist_.empty()) {
    const Point pt = *worklist_.begin();
    worklist_.erase(worklist_.begin());
    const auto it = ts.states.find(pt);
    if (it == ts.states.end()) continue;
    const Store snapshot = it->second;  // copy: transfer only reads it
    transfer(pt, snapshot);
    ++evals_;
  }
}

template <NumDomain N>
void ThreadModular<N>::transfer(Point pt, const Store& store) {
  const auto [proc_id, pc] = pt;
  const sem::Proc& proc = prog_.proc(proc_id);
  const sem::Instr& instr = proc.code.at(pc);

  cur_reads_.clear();
  cur_writes_.clear();
  cur_stmt_ = instr.stmt != nullptr ? instr.stmt->id() : kNoCtx;
  // Lock/unlock cell traffic is synchronization, not data flow.
  cur_sync_ = instr.op == sem::Op::Lock || instr.op == sem::Op::Unlock;
  track_faults_ = !cur_sync_;
  cur_mask_ = opts_.must_locks ? opts_.must_locks(proc_id, pc) : 0;
  if (recording_ && cur_stmt_ != kNoCtx) result_.reached_stmts.insert(cur_stmt_);

  auto advance = [&](std::uint32_t new_pc, Store s) {
    propagate({proc_id, settle_pc(proc_id, new_pc)}, s);
  };

  switch (instr.op) {
    case sem::Op::Assign: {
      Store s = store;
      const Value v = eval(s, proc_id, *instr.rhs);
      update(s, lvalue_locs(s, proc_id, *instr.lhs), v);
      advance(pc + 1, std::move(s));
      break;
    }
    case sem::Op::Alloc: {
      Store s = store;
      const Value size = eval(s, proc_id, *instr.rhs);
      require(instr.stmt != nullptr, "alloc without statement");
      if (N::cmp(size.num, N::constant(0),
                 +[](std::int64_t x, std::int64_t y) { return x < y; })
              .may_be_truthy()) {
        note_fault(sem::Fault::NegativeAlloc, instr.rhs->id());
      }
      auto [sit, fresh] = result_.site_sizes.emplace(instr.stmt->id(), size.num);
      if (!fresh) sit->second = sit->second.join(size.num);
      const AbsLoc site = AbsLoc::heap(instr.stmt->id());
      s.join_at(site, Value::of_int(0));  // fresh cells are zero
      update(s, lvalue_locs(s, proc_id, *instr.lhs), Value::of_ptr(site));
      advance(pc + 1, std::move(s));
      break;
    }
    case sem::Op::Call: {
      Store s = store;
      const Value callee = eval(s, proc_id, *instr.rhs);
      std::vector<Value> args;
      if (instr.args != nullptr) {
        for (const auto& a : *instr.args) args.push_back(eval(s, proc_id, *a));
      }
      std::set<AbsLoc> dst;
      if (instr.lhs != nullptr) {
        dst = lvalue_locs(s, proc_id, *instr.lhs);
        // The eventual return-value write belongs to this call site.
        for (const AbsLoc& loc : dst) cur_writes_.insert(loc);
      }
      for (std::uint32_t f : callee.fns.elems()) {
        const sem::Proc& target = prog_.proc(f);
        if (target.fun == nullptr) continue;  // thread procs are not callable
        if (target.fun->params().size() != args.size()) continue;  // faults concretely
        const Cont cont{proc_id, settle_pc(proc_id, pc + 1), dst};
        if (cur_ts_->conts[f].insert(cont).second) {
          grew_ = true;
          // A new call edge gives the callee's returns a new successor:
          // requeue them (transfer skips points with no state yet).
          for (std::uint32_t p2 = 0; p2 < target.code.size(); ++p2) {
            const sem::Op op2 = target.code[p2].op;
            if (op2 == sem::Op::Return || op2 == sem::Op::Halt) worklist_.insert({f, p2});
          }
        }
        Store s2 = s;
        for (std::size_t i = 0; i < args.size(); ++i) {
          const AbsLoc ploc = AbsLoc::frame(f, static_cast<std::uint32_t>(1 + i), 0);
          if (cur_ts_->guarantee.join_at(ploc, args[i])) grew_ = true;
          s2.join_at(ploc, args[i]);
          cur_writes_.insert(ploc);
        }
        propagate({f, settle_pc(f, 0)}, std::move(s2));
      }
      break;
    }
    case sem::Op::Return:
    case sem::Op::Halt: {
      if (proc.is_thread) break;  // thread exit: the point disappears
      Store s = store;
      Value v = Value::of_null();
      if (instr.op == sem::Op::Return && instr.rhs != nullptr) {
        v = eval(s, proc_id, *instr.rhs);
      }
      if (proc_id == prog_.entry_proc()) break;  // main finished
      const auto it = cur_ts_->conts.find(proc_id);
      if (it == cur_ts_->conts.end()) break;  // callers not discovered yet
      for (const Cont& cont : it->second) {
        Store s2 = s;
        // The write was attributed at the call site; see Op::Call.
        if (!cont.dst.empty()) update(s2, cont.dst, v, /*attribute=*/false);
        propagate({cont.proc, cont.pc}, std::move(s2));
      }
      break;
    }
    case sem::Op::Branch: {
      Store s = store;
      const Value c = eval(s, proc_id, *instr.rhs);
      if (c.may_be_truthy()) {
        Store st = s;
        if (refine_branch(st, proc_id, *instr.rhs, true)) {
          advance(instr.t1, std::move(st));
        }
      }
      if (c.may_be_falsy()) {
        Store sf = s;
        if (refine_branch(sf, proc_id, *instr.rhs, false)) {
          advance(instr.t2, std::move(sf));
        }
      }
      break;
    }
    case sem::Op::Fork: {
      require(instr.stmt != nullptr, "fork without statement");
      for (std::uint32_t child : instr.forks) seed_child(child, store);
      advance(pc + 1, store);  // parent proceeds to the Join
      break;
    }
    case sem::Op::ForkRange: {
      require(instr.stmt != nullptr, "doall without statement");
      Store s = store;
      const Value lo = eval(s, proc_id, *instr.rhs);
      const Value hi = eval(s, proc_id, *instr.rhs2);
      const std::uint32_t child = instr.forks.at(0);
      const N nonempty = N::cmp(hi.num, lo.num,
                                +[](std::int64_t x, std::int64_t y) { return x >= y; });
      if (nonempty.may_be_truthy() || lo.num.is_bottom() || hi.num.is_bottom()) {
        // The index of every instance lies in [lo, hi]: join of the bounds.
        const AbsLoc iloc = AbsLoc::frame(child, 1, 0);
        const Value iv = Value::of_num(lo.num.join(hi.num));
        if (cur_ts_->guarantee.join_at(iloc, iv)) grew_ = true;
        cur_writes_.insert(iloc);
        Store seed = s;
        seed.join_at(iloc, iv);
        seed_child(child, seed);
      }
      advance(pc + 1, std::move(s));  // parent proceeds (range may be empty)
      break;
    }
    case sem::Op::Join:
      // Always enabled: thread-modular analysis has no child liveness to
      // consult. Over-approximates reachability, which is the sound side.
      advance(pc + 1, store);
      break;
    case sem::Op::Lock: {
      Store s = store;
      const std::set<AbsLoc> locs = lvalue_locs(s, proc_id, *instr.lhs);
      bool may_acquire = false;
      for (const AbsLoc& loc : locs) {
        // read_loc joins the rely, so another thread's unlock (guarantee
        // value 0) keeps this acquirable even when the own store says held.
        if (read_loc(s, loc).may_be_falsy()) may_acquire = true;
      }
      if (may_acquire) {
        update(s, locs, Value::of_int(1));
        advance(pc + 1, std::move(s));
      }
      break;
    }
    case sem::Op::Unlock: {
      Store s = store;
      const std::set<AbsLoc> locs = lvalue_locs(s, proc_id, *instr.lhs);
      update(s, locs, Value::of_int(0));
      advance(pc + 1, std::move(s));
      break;
    }
    case sem::Op::Assert: {
      Store s = store;
      if (instr.rhs != nullptr) {
        const Value c = eval(s, proc_id, *instr.rhs);
        if (recording_ && c.may_be_falsy() && instr.stmt != nullptr) {
          result_.may_fail_asserts.insert(instr.stmt->id());
        }
      }
      advance(pc + 1, std::move(s));
      break;
    }
    case sem::Op::Jump:
      throw Error("tmod transfer: unsettled jump");
  }

  if (recording_ && cur_stmt_ != kNoCtx) {
    for (const AbsLoc& loc : cur_reads_) note_access(loc, /*is_write=*/false);
    for (const AbsLoc& loc : cur_writes_) note_access(loc, /*is_write=*/true);
  }
}

template <NumDomain N>
TmodRaceReport ThreadModular<N>::make_races() const {
  struct PairAgg {
    bool ww = false;
    bool wr = false;
    bool all_protected = true;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, PairAgg> agg;
  std::map<AbsLoc, std::vector<const AccessRecord*>> by_loc;
  for (const AccessRecord& a : result_.accesses) by_loc[a.loc].push_back(&a);
  for (const auto& [loc, recs] : by_loc) {
    for (std::size_t i = 0; i < recs.size(); ++i) {
      // j == i pairs a statement with a second instance of itself; the MHP
      // hook decides whether two instances can actually coexist.
      for (std::size_t j = i; j < recs.size(); ++j) {
        const AccessRecord& a = *recs[i];
        const AccessRecord& b = *recs[j];
        if (!a.is_write && !b.is_write) continue;
        if (a.sync && b.sync) continue;  // lock-cell contention is not a race
        PairAgg& p = agg[{std::min(a.stmt, b.stmt), std::max(a.stmt, b.stmt)}];
        if (a.is_write && b.is_write) {
          p.ww = true;
        } else {
          p.wr = true;
        }
        // Mutually excluded only when some lock is must-held on both sides;
        // one unprotected occurrence makes the whole pair unprotected.
        p.all_protected = p.all_protected && ((a.locks & b.locks) != 0);
      }
    }
  }
  TmodRaceReport out;
  for (const auto& [key, p] : agg) {
    ++out.pairs_total;
    if (opts_.parallel && !opts_.parallel(key.first, key.second)) {
      ++out.pruned_mhp;
      continue;
    }
    if (p.all_protected) {
      ++out.pruned_lockset;
      continue;
    }
    out.races.push_back(TmodRace{key.first, key.second, p.ww, p.wr});
  }
  return out;
}

template <NumDomain N>
TmodResult<N> ThreadModular<N>::run() {
  telemetry::Telemetry& tel = telemetry::Telemetry::global();
  telemetry::ScopedPhase phase_folding(telemetry::Phase::Folding);

  // Initial store: globals (function slots + initializers, left to right).
  // Initializers run before any fork: empty rely, nothing recorded.
  Store init;
  for (const sem::GlobalSlot& g : prog_.globals()) {
    if (g.fun != nullptr) {
      init.set(AbsLoc::global(g.slot), Value::of_fn(g.fun->index()));
    }
  }
  const Interference<N> no_rely;
  ThreadState scratch;
  cur_ts_ = &scratch;
  cur_rely_ = &no_rely;
  cur_thread_ = prog_.entry_proc();
  cur_stmt_ = kNoCtx;
  track_faults_ = false;
  for (const sem::GlobalSlot& g : prog_.globals()) {
    if (g.init != nullptr) {
      cur_reads_.clear();
      init.set(AbsLoc::global(g.slot), eval(init, prog_.entry_proc(), *g.init));
    }
  }
  cur_reads_.clear();
  seeds_.emplace(prog_.entry_proc(), std::move(init));

  // --- widened interference rounds ----------------------------------------
  std::map<std::uint32_t, ThreadState> threads;
  std::map<std::uint32_t, Interference<N>> rely_w;
  bool converged = false;
  std::uint32_t round = 0;
  while (round < opts_.max_rounds) {
    ++round;
    grew_ = false;
    std::vector<std::uint32_t> roots;
    roots.reserve(seeds_.size());
    for (const auto& [r, s] : seeds_) roots.push_back(r);
    for (std::uint32_t r : roots) {
      analyze(r, threads[r], rely_w[r], seeds_.at(r));
    }
    for (const std::uint32_t r : roots) {
      Interference<N> raw;
      for (const auto& [s, ts2] : threads) {
        if (s != r || self_par(r)) raw = raw.join(ts2.guarantee);
      }
      if (absdom::widen_into(rely_w[r], raw)) grew_ = true;
    }
    if (!grew_) {
      converged = true;
      break;
    }
  }
  result_.rounds = round;
  result_.truncated = !converged;

  // --- narrowing: exact relies (plain join of the final guarantees) -------
  std::map<std::uint32_t, Interference<N>> rely_final;
  for (const auto& [r, seed] : seeds_) {
    Interference<N> raw;
    for (const auto& [s, ts2] : threads) {
      if (s != r || self_par(r)) raw = raw.join(ts2.guarantee);
    }
    // Sound: the final guarantees are a rely/guarantee post-fixpoint, and
    // re-analysis under any rely ⊒ their join can only shrink guarantees.
    // Without convergence the widened relies stay as-is (no narrowing).
    Interference<N> base = rely_w[r].join(raw);
    if (converged) {
      Interference<N> narrowed;
      for (const auto& [loc, v] : base.entries()) narrowed.set(loc, v.narrow(raw.get(loc)));
      base = std::move(narrowed);
    }
    rely_final.emplace(r, std::move(base));
  }

  // --- report pass: fresh analysis under the narrowed relies --------------
  recording_ = true;
  std::map<std::uint32_t, ThreadState> report;
  for (const auto& [r, seed] : seeds_) {
    analyze(r, report[r], rely_final.at(r), seed);
  }
  result_.threads = static_cast<std::uint32_t>(report.size());
  for (const auto& [r, rel] : rely_final) {
    result_.interference_facts += rel.entries().size();
  }
  result_.relies = std::move(rely_final);
  for (auto& [r, ts] : report) result_.guarantees.emplace(r, std::move(ts.guarantee));
  for (const auto& [key, mask] : access_masks_) {
    const auto& [thread, stmt, loc, is_write, sync] = key;
    result_.accesses.push_back(AccessRecord{thread, stmt, loc, is_write, sync, mask});
  }
  result_.races = make_races();

  const std::uint64_t alarms = result_.races.races.size() + result_.may_fail_asserts.size() +
                               result_.may_faults.size() + result_.uninit_reads.size();
  result_.stats.set("tmod.threads", result_.threads);
  result_.stats.set("tmod.rounds", result_.rounds);
  result_.stats.set("tmod.interference_facts", result_.interference_facts);
  result_.stats.set("tmod.alarms", alarms);
  result_.stats.set("tmod.point_evaluations", evals_);
  tel.publish_stats(result_.stats);
  return std::move(result_);
}

}  // namespace

template <NumDomain N>
TmodResult<N> tmod_analyze(const sem::LoweredProgram& prog, const TmodOptions& opts) {
  ThreadModular<N> engine(prog, opts);
  return engine.run();
}

template TmodResult<absdom::Interval> tmod_analyze<absdom::Interval>(
    const sem::LoweredProgram&, const TmodOptions&);
template TmodResult<absdom::FlatInt> tmod_analyze<absdom::FlatInt>(
    const sem::LoweredProgram&, const TmodOptions&);

}  // namespace copar::absem
