// Thread-modular abstract analysis: rely/guarantee interference fixpoint.
//
// Unlike the explorers (concrete DFS, parallel BFS, abstract folding), this
// engine never enumerates interleavings. Each thread body is analyzed
// sequentially against a *rely* — an abstract summary of the writes the
// other threads may perform — and the per-thread *guarantees* (abstract
// writes to shared locations) are joined back into the relies until a
// global fixpoint, widening on the interference lattice. One narrowing
// pass with the exact (non-widened) guarantee join then recovers precision
// lost to widening. Cost is polynomial in program size and independent of
// the interleaving count, so `check` can answer on programs whose
// configuration space can never be enumerated.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absem/interference.h"
#include "src/sem/lower.h"
#include "src/support/stats.h"

namespace copar::absem {

/// One candidate race: two statements (normalized stmt1 <= stmt2) that may
/// run in parallel and access a common abstract location, at least one
/// writing, not both synchronization, with no common must-held lock.
struct TmodRace {
  std::uint32_t stmt1 = 0;
  std::uint32_t stmt2 = 0;
  bool write_write = false;
  bool write_read = false;

  friend auto operator<=>(const TmodRace&, const TmodRace&) = default;
};

/// Race-pair accounting. Invariant:
///   pairs_total == pruned_mhp + pruned_lockset + races.size().
struct TmodRaceReport {
  std::vector<TmodRace> races;  // sorted by (stmt1, stmt2)
  std::uint64_t pairs_total = 0;
  std::uint64_t pruned_mhp = 0;
  std::uint64_t pruned_lockset = 0;
};

template <NumDomain N>
struct TmodResult {
  /// Thread roots analyzed (entry proc + every forked proc discovered).
  std::uint32_t threads = 0;
  /// Widened interference rounds until the global fixpoint (or the cap).
  std::uint32_t rounds = 0;
  /// True when max_rounds was hit before convergence; alarms are then
  /// incomplete (never the case for terminating widenings in practice).
  bool truncated = false;

  // --- alarms (same shapes as AbsResult, so `check` reuses its plumbing) --
  std::set<std::uint32_t> may_fail_asserts;
  /// (stmt id, expr id, sem::Fault) may-fault triples.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>> may_faults;
  /// (stmt id, expr id, loc) reads that may observe the implicit zero.
  std::set<std::tuple<std::uint32_t, std::uint32_t, AbsLoc>> uninit_reads;
  TmodRaceReport races;

  // --- facts ---------------------------------------------------------------
  std::set<std::uint32_t> reached_stmts;
  /// Alloc-site sizes (joined), for bounds reporting parity.
  std::map<std::uint32_t, N> site_sizes;
  /// Every recorded access, sorted (deterministic).
  std::vector<AccessRecord> accesses;
  /// Final per-thread guarantees and the relies they were analyzed under.
  std::map<std::uint32_t, Interference<N>> guarantees;
  std::map<std::uint32_t, Interference<N>> relies;
  /// Total rely bindings across threads (the "interference facts" metric).
  std::uint64_t interference_facts = 0;

  StatRegistry stats;
};

/// Runs the thread-modular engine over a lowered program. Deterministic:
/// thread roots, worklists, and all result containers are ordered.
template <NumDomain N>
TmodResult<N> tmod_analyze(const sem::LoweredProgram& prog,
                           const TmodOptions& opts = {});

extern template TmodResult<absdom::Interval> tmod_analyze<absdom::Interval>(
    const sem::LoweredProgram&, const TmodOptions&);
extern template TmodResult<absdom::FlatInt> tmod_analyze<absdom::FlatInt>(
    const sem::LoweredProgram&, const TmodOptions&);

}  // namespace copar::absem
