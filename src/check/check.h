// The static checker battery behind `copar-cli check`.
//
// Runs the framework's engines over a compiled program and turns their raw
// facts into coded, source-located diagnostics:
//
//   * a concrete exploration (record_pairs) supplies ground truth when it
//     completes: run-time faults, failing assertions, deadlocks, and the
//     exact co-enabled conflicting pairs (data races);
//   * an interval abstract interpretation supplies sound may-information:
//     may-faults (division by zero, null dereference, out-of-bounds index,
//     negative allocation), uninitialized reads, and statement
//     reachability — used directly for the warnings-only checks and as the
//     fallback when the concrete space is truncated;
//   * the dead-store pass and (for races on truncated spaces) the flat
//     abstract anomaly analysis are wrapped as-is.
//
// Findings that a completed concrete exploration refutes (an abstract
// may-fault that never concretely fires) are dropped: the concrete space of
// a closed program is exhaustive, so the abstract alarm is a false alarm.
// Error-severity findings come with witness interleavings (explore/witness)
// when the search budget allows.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "src/sem/config.h"
#include "src/sem/program.h"
#include "src/support/diagnostics.h"

namespace copar::check {

/// Which race pipeline runs (docs/TIERED_CHECKING.md).
///
///   * Explore — the legacy pipeline: one full concrete exploration with
///     pair recording is the race oracle.
///   * Static  — the static tier alone, zero exploration: lockset + MHP
///     candidates are reported as possible races, lock-suppressed pairs as
///     `race-guarded` notes.
///   * Auto (default) — the static tier prunes, then a *directed* witness
///     search confirms or refutes each surviving candidate under a per-pair
///     budget; the full exploration runs only for what the static tier
///     cannot discharge (abstract may-faults, may-fail assertions, possible
///     deadlock or unlock-not-held).
///   * Tmod    — the thread-modular rely/guarantee engine (docs/
///     THREAD_MODULAR.md) is the sole analysis: no interleaving enumeration
///     at all, so it answers on programs whose configuration space can
///     never be explored. Its alarms carry a thread-modular provenance
///     note; directed witness searches confirm or refute its race
///     candidates unless --no-witness asks for the pure zero-exploration
///     path.
enum class Tier : std::uint8_t { Auto, Static, Explore, Tmod };

std::string_view tier_name(Tier t);

struct CheckOptions {
  /// Race pipeline (see Tier).
  Tier tier = Tier::Auto;
  /// Search for witness interleavings for error findings (bounded BFS).
  bool witnesses = true;
  /// At most this many witness searches per run (they re-explore).
  std::size_t max_witnesses = 4;
  /// Budgets for the concrete exploration and the abstract fixpoint.
  std::uint64_t max_configs = 200000;
  std::uint64_t abs_max_states = 200000;
  /// Directed-search budget per candidate pair (auto tier).
  std::uint64_t pair_budget = 50000;
};

/// Static-tier effectiveness counters (also exported as `check.*` metrics
/// and in the `--json` report).
struct TierStats {
  /// Conflicting statement pairs considered (the candidate universe).
  std::uint64_t pairs_total = 0;
  /// ... of which no syntactic interleaving can co-schedule.
  std::uint64_t pruned_mhp = 0;
  /// ... of which a common must-held lock proves race-free.
  std::uint64_t pruned_lockset = 0;
  /// Candidates that survived both prunes.
  std::uint64_t candidates = 0;
  /// Auto tier: candidates confirmed by a directed witness, refuted by an
  /// exhausted search, or undecided when the pair budget ran out.
  std::uint64_t confirmed = 0;
  std::uint64_t refuted = 0;
  std::uint64_t budget_exhausted = 0;
  /// Explorer configurations expanded on behalf of the race pipeline
  /// (full exploration + directed searches); 0 in the static tier.
  std::uint64_t configs_explored = 0;
};

/// Thread-modular engine facts (--tier=tmod only); the `"tmod"` section of
/// the --json report. Zero-valued with ran=false for the other tiers.
struct TmodStats {
  bool ran = false;
  /// Thread roots analyzed by the rely/guarantee engine.
  std::uint32_t threads = 0;
  /// Widened interference rounds until the global fixpoint.
  std::uint32_t rounds = 0;
  /// The round cap was hit before convergence (alarms then incomplete).
  bool truncated = false;
  /// Rely bindings across threads (size of the interference environment).
  std::uint64_t interference_facts = 0;
  /// Alarms the engine raised (races + may-faults + may-fail assertions +
  /// uninitialized reads), before witness refutation.
  std::uint64_t alarms = 0;
};

struct CheckSummary {
  /// The findings are definite: either a full concrete exploration covered
  /// the state space, or the static tier discharged everything it skipped
  /// (and no directed search ran out of budget).
  bool concrete_exhaustive = false;
  /// A full concrete exploration ran (false when the tiers skipped it).
  bool explored = false;
  Tier tier = Tier::Auto;
  std::uint64_t concrete_configs = 0;
  std::uint64_t abstract_states = 0;
  TierStats stats;
  TmodStats tmod;
};

/// Stable check-code metadata (sorted by id), the single source of truth
/// for docs, SARIF rule tables, and `--list-checks`.
std::span<const RuleInfo> catalog();

/// The catalog entry for `code`; null if unknown.
const RuleInfo* find_rule(std::string_view code);

/// Diagnostic code for a concrete fault kind ("div-zero", "bounds", ...).
std::string_view fault_code(sem::Fault f);

/// Runs every check over `prog`, reporting findings into `engine` (which
/// already carries per-code disables and suppression comments). Findings
/// are sorted by location before returning.
CheckSummary run_checks(const CompiledProgram& prog, DiagnosticEngine& engine,
                        const CheckOptions& opts = {});

}  // namespace copar::check
