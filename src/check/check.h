// The static checker battery behind `copar-cli check`.
//
// Runs the framework's engines over a compiled program and turns their raw
// facts into coded, source-located diagnostics:
//
//   * a concrete exploration (record_pairs) supplies ground truth when it
//     completes: run-time faults, failing assertions, deadlocks, and the
//     exact co-enabled conflicting pairs (data races);
//   * an interval abstract interpretation supplies sound may-information:
//     may-faults (division by zero, null dereference, out-of-bounds index,
//     negative allocation), uninitialized reads, and statement
//     reachability — used directly for the warnings-only checks and as the
//     fallback when the concrete space is truncated;
//   * the dead-store pass and (for races on truncated spaces) the flat
//     abstract anomaly analysis are wrapped as-is.
//
// Findings that a completed concrete exploration refutes (an abstract
// may-fault that never concretely fires) are dropped: the concrete space of
// a closed program is exhaustive, so the abstract alarm is a false alarm.
// Error-severity findings come with witness interleavings (explore/witness)
// when the search budget allows.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "src/sem/config.h"
#include "src/sem/program.h"
#include "src/support/diagnostics.h"

namespace copar::check {

struct CheckOptions {
  /// Search for witness interleavings for error findings (bounded BFS).
  bool witnesses = true;
  /// At most this many witness searches per run (they re-explore).
  std::size_t max_witnesses = 4;
  /// Budgets for the concrete exploration and the abstract fixpoint.
  std::uint64_t max_configs = 200000;
  std::uint64_t abs_max_states = 200000;
};

struct CheckSummary {
  /// The concrete exploration covered the full state space (no truncation):
  /// error findings are definite, refuted abstract alarms were dropped.
  bool concrete_exhaustive = false;
  std::uint64_t concrete_configs = 0;
  std::uint64_t abstract_states = 0;
};

/// Stable check-code metadata (sorted by id), the single source of truth
/// for docs, SARIF rule tables, and `--list-checks`.
std::span<const RuleInfo> catalog();

/// The catalog entry for `code`; null if unknown.
const RuleInfo* find_rule(std::string_view code);

/// Diagnostic code for a concrete fault kind ("div-zero", "bounds", ...).
std::string_view fault_code(sem::Fault f);

/// Runs every check over `prog`, reporting findings into `engine` (which
/// already carries per-code disables and suppression comments). Findings
/// are sorted by location before returning.
CheckSummary run_checks(const CompiledProgram& prog, DiagnosticEngine& engine,
                        const CheckOptions& opts = {});

}  // namespace copar::check
