#include "src/check/check.h"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absem/absexplore.h"
#include "src/absem/tmod.h"
#include "src/analysis/anomaly.h"
#include "src/analysis/common.h"
#include "src/analysis/deadstore.h"
#include "src/analysis/lockset.h"
#include "src/analysis/mhp.h"
#include "src/analysis/racecand.h"
#include "src/analysis/staticmhp.h"
#include "src/explore/explorer.h"
#include "src/explore/witness.h"
#include "src/sem/lockid.h"
#include "src/sem/step.h"
#include "src/support/stats.h"
#include "src/support/telemetry.h"

namespace copar::check {

namespace {

constexpr std::string_view kSuppressHint =
    "suppress with `// copar-ignore(<code>)` on or above the line";

constexpr std::array<RuleInfo, 18> kCatalog = {{
    {"arity-mismatch", Severity::Error, "call with the wrong number of arguments",
     "The callee's parameter list does not match the argument count on some path."},
    {"assert-fail", Severity::Error, "assertion fails on some interleaving",
     "The concrete exploration found a schedule under which the asserted condition is false."},
    {"assert-may-fail", Severity::Warning, "assertion may fail (abstract)",
     "The abstract semantics cannot prove the assertion; the concrete exploration was "
     "truncated before confirming or refuting it."},
    {"bad-deref", Severity::Error, "dereference of a non-pointer value",
     "A `*p` or `p[i]` access where `p` holds an integer, boolean, or function."},
    {"bounds", Severity::Error, "indexed access outside the allocated object",
     "The index is negative or not below the allocation size on some path."},
    {"dead-store", Severity::Warning, "stored value is never observed",
     "No later read — in this thread or any concurrent one — can see the assigned value. "
     "Sound for cobegin programs: stores other threads may observe are kept."},
    {"deadlock", Severity::Error, "the program can deadlock",
     "Some interleaving leaves live processes with no enabled action (e.g. a lock cycle)."},
    {"div-zero", Severity::Error, "division by zero",
     "The right operand of `/` or `%` can be zero on some path."},
    {"negative-alloc", Severity::Error, "allocation with a negative size",
     "The size expression of `alloc` can be negative on some path."},
    {"not-a-function", Severity::Error, "call of a non-function value",
     "The callee expression does not evaluate to a function on some path."},
    {"null-deref", Severity::Error, "null pointer dereference",
     "A `*p` or `p[i]` access where `p` can be null on some path."},
    {"race", Severity::Error, "data race between concurrent statements",
     "Two statements that may run in parallel access the same location, at least one "
     "writing, with no synchronization ordering them."},
    {"race-guarded", Severity::Note, "conflicting accesses protected by a common lock",
     "The static tier proved the pair race-free: every path to both accesses holds the "
     "named lock, so they are mutually exclusive. Reported by --tier=static only."},
    {"syntax", Severity::Error, "lexical, syntactic, or resolution error",
     "The program does not parse or resolve; remaining checks did not run."},
    {"type-error", Severity::Error, "operands have incompatible runtime types",
     "An arithmetic or comparison operator meets a pointer/function operand it cannot "
     "combine."},
    {"uninit-read", Severity::Warning, "read of a variable before any write",
     "The read observes the implicit zero initialization on some path. Initialize the "
     "variable explicitly if the zero is intended."},
    {"unlock-not-held", Severity::Error, "unlock of a lock that is not held",
     "The unlocking process does not own the lock cell on some path."},
    {"unreachable", Severity::Warning, "statement is unreachable",
     "No abstract execution reaches this statement; it is dead code (or only reachable "
     "from dead code)."},
}};

std::string_view fault_phrase(sem::Fault f) {
  switch (f) {
    case sem::Fault::DerefNull: return "null pointer dereference";
    case sem::Fault::DerefNonPointer: return "dereference of a non-pointer value";
    case sem::Fault::OutOfBounds: return "indexed access outside the allocated object";
    case sem::Fault::TypeError: return "operands have incompatible runtime types";
    case sem::Fault::DivByZero: return "division by zero";
    case sem::Fault::NotAFunction: return "call of a non-function value";
    case sem::Fault::ArityMismatch: return "call with the wrong number of arguments";
    case sem::Fault::UnlockNotHeld: return "unlock of a lock that is not held";
    case sem::Fault::NegativeAlloc: return "allocation with a negative size";
  }
  return "runtime fault";
}

/// True when the statement is pure synchronization: a race between two
/// lock/unlock actions is contention on the lock cell, not a data race.
bool is_sync_stmt(const sem::LoweredProgram& prog, std::uint32_t stmt_id) {
  const lang::Stmt* s = prog.stmt(stmt_id);
  return s != nullptr &&
         (s->kind() == lang::StmtKind::Lock || s->kind() == lang::StmtKind::Unlock);
}

std::vector<DiagNote> witness_notes(const sem::LoweredProgram& prog,
                                    const explore::Witness& w) {
  std::vector<DiagNote> notes;
  notes.push_back(DiagNote{{}, "witness interleaving (" + std::to_string(w.steps.size()) +
                                   (w.steps.size() == 1 ? " step):" : " steps):")});
  for (std::size_t i = 0; i < w.steps.size(); ++i) {
    const explore::WitnessStep& s = w.steps[i];
    std::ostringstream os;
    os << "step " << i + 1 << ": p" << s.pid << ' ' << sem::action_kind_name(s.kind);
    if (!s.point.empty()) os << " at " << s.point;
    SourceSpan span;
    if (s.stmt != sem::kNoStmt) span = prog.stmt_span(s.stmt);
    notes.push_back(DiagNote{span, os.str()});
  }
  return notes;
}

Diagnostic make_finding(std::string_view code, Severity sev, SourceSpan span,
                        std::string message) {
  Diagnostic d;
  d.code = std::string(code);
  d.severity = sev;
  d.span = span;
  d.loc = span.begin;
  d.message = std::move(message);
  return d;
}

}  // namespace

std::span<const RuleInfo> catalog() { return kCatalog; }

const RuleInfo* find_rule(std::string_view code) {
  const auto it = std::lower_bound(kCatalog.begin(), kCatalog.end(), code,
                                   [](const RuleInfo& r, std::string_view c) { return r.id < c; });
  return it != kCatalog.end() && it->id == code ? &*it : nullptr;
}

std::string_view fault_code(sem::Fault f) {
  switch (f) {
    case sem::Fault::DerefNull: return "null-deref";
    case sem::Fault::DerefNonPointer: return "bad-deref";
    case sem::Fault::OutOfBounds: return "bounds";
    case sem::Fault::TypeError: return "type-error";
    case sem::Fault::DivByZero: return "div-zero";
    case sem::Fault::NotAFunction: return "not-a-function";
    case sem::Fault::ArityMismatch: return "arity-mismatch";
    case sem::Fault::UnlockNotHeld: return "unlock-not-held";
    case sem::Fault::NegativeAlloc: return "negative-alloc";
  }
  return "fault";
}

std::string_view tier_name(Tier t) {
  switch (t) {
    case Tier::Auto: return "auto";
    case Tier::Static: return "static";
    case Tier::Explore: return "explore";
    case Tier::Tmod: return "tmod";
  }
  return "?";
}

namespace {

/// The co-enabledness predicate behind race witnesses: a reachable state
/// where both statements are simultaneously enabled (for a self-race, two
/// enabled instances of the statement).
std::function<bool(const sem::Configuration&)> race_reach_predicate(std::uint32_t s1,
                                                                    std::uint32_t s2) {
  return [s1, s2](const sem::Configuration& cfg) {
    int n1 = 0;
    int n2 = 0;
    for (const sem::ActionInfo& info : sem::all_action_infos(cfg)) {
      if (!info.enabled || info.stmt_id == sem::kNoStmt) continue;
      if (info.stmt_id == s1) ++n1;
      if (info.stmt_id == s2) ++n2;
    }
    return s1 == s2 ? n1 >= 2 : (n1 >= 1 && n2 >= 1);
  };
}

/// The static race tier: location classes, syntactic parallelism, locksets,
/// and the pruned candidate list (docs/TIERED_CHECKING.md).
struct StaticTier {
  explore::StaticInfo info;
  analysis::StaticParallelism par;
  analysis::LockSets locks;
  analysis::CandidateReport cands;

  explicit StaticTier(const sem::LoweredProgram& prog)
      : info(prog),
        par(prog, info),
        locks(prog, info),
        cands(analysis::race_candidates(prog, info, par, locks)) {}
};

/// The thread-modular tier: the rely/guarantee interference engine
/// (src/absem/tmod) is the sole analysis — no interleaving enumeration at
/// all, so this path answers on programs whose configuration space can
/// never be explored. Its sound may-alarms come with a thread-modular
/// provenance note; unless --no-witness was given, a directed witness
/// search confirms or refutes each race candidate exactly like the auto
/// tier (those searches are the only exploration this tier ever does).
CheckSummary run_tmod_checks(const CompiledProgram& cp, DiagnosticEngine& engine,
                             const CheckOptions& opts) {
  const sem::LoweredProgram& prog = *cp.lowered;
  CheckSummary sum;
  sum.tier = Tier::Tmod;

  // Static facts feed the engine: must-locksets prune interference and race
  // pairs on mutual exclusion, static MHP prunes pairs no syntactic
  // interleaving can co-schedule.
  const StaticTier st(prog);
  const analysis::Mhp mhp = st.par.stmt_mhp();

  absem::TmodOptions topts;
  if (st.locks.pristine()) {
    // Tainted lock cells cannot prove mutual exclusion; leaving the hook
    // null (mask 0 everywhere) keeps the pruning sound.
    topts.must_locks = [&st](std::uint32_t p, std::uint32_t pc) -> std::uint64_t {
      return st.locks.live(p, pc) ? st.locks.held(p, pc) : 0;
    };
  }
  topts.self_parallel = [&st](std::uint32_t p) { return st.par.parallel_procs(p, p); };
  topts.parallel = [&mhp](std::uint32_t s, std::uint32_t t) { return mhp.parallel(s, t); };

  const absem::TmodResult<absdom::Interval> tm =
      absem::tmod_analyze<absdom::Interval>(prog, topts);

  sum.tmod.ran = true;
  sum.tmod.threads = tm.threads;
  sum.tmod.rounds = tm.rounds;
  sum.tmod.truncated = tm.truncated;
  sum.tmod.interference_facts = tm.interference_facts;
  sum.stats.pairs_total = tm.races.pairs_total;
  sum.stats.pruned_mhp = tm.races.pruned_mhp;
  sum.stats.pruned_lockset = tm.races.pruned_lockset;
  sum.stats.candidates = tm.races.races.size();

  const DiagNote provenance{
      {}, "established by the thread-modular interference analysis "
          "(rely/guarantee, no interleaving enumeration); run --tier=auto to "
          "confirm or refute concretely"};

  // --- may-faults ---------------------------------------------------------
  {
    std::set<std::pair<std::uint32_t, std::uint8_t>> seen;
    for (const auto& [stmt, expr, fault_raw] : tm.may_faults) {
      if (!seen.insert({stmt, fault_raw}).second) continue;
      ++sum.tmod.alarms;
      const auto fault = static_cast<sem::Fault>(fault_raw);
      Diagnostic d =
          make_finding(fault_code(fault), Severity::Warning, prog.stmt_span(stmt),
                       "possible " + std::string(fault_phrase(fault)) + " in " +
                           analysis::describe_stmt(prog, stmt));
      d.notes.push_back(provenance);
      engine.report(std::move(d));
    }
  }
  if (st.locks.pristine() && !st.locks.unlocks_safe()) {
    // The engine does not model lock ownership; the lockset analysis flags
    // releases that may not own the lock (same scan as the static tier).
    for (const sem::Proc& p : prog.procs()) {
      for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
        const sem::Instr& i = p.code[pc];
        if (i.op != sem::Op::Unlock || !st.locks.live(p.id, pc)) continue;
        const auto slot = sem::lock_global_slot(prog, *i.lhs);
        const auto bit = slot ? st.locks.bit_of_slot(*slot) : std::nullopt;
        if (bit && (st.locks.held(p.id, pc) >> *bit & 1) != 0) continue;
        const SourceSpan span = i.stmt != nullptr ? prog.stmt_span(i.stmt->id()) : SourceSpan{};
        engine.report(make_finding("unlock-not-held", Severity::Warning, span,
                                   "possible unlock of a lock that is not held (not in the "
                                   "must-held lockset)"));
      }
    }
  }

  // --- data races ---------------------------------------------------------
  for (const absem::TmodRace& c : tm.races.races) {
    ++sum.tmod.alarms;
    std::optional<explore::Witness> w;
    if (opts.witnesses) {
      // Directed per-candidate search, budgeted per pair (auto-tier rules):
      // a co-enabled state confirms, an exhausted search refutes, a
      // truncated one downgrades to "possible".
      explore::WitnessQuery q;
      q.reach_predicate = race_reach_predicate(c.stmt1, c.stmt2);
      q.explore.max_configs = opts.pair_budget;
      explore::WitnessStats ws;
      w = explore::find_witness(prog, q, &ws);
      sum.stats.configs_explored += ws.configs;
      if (!w.has_value() && !ws.truncated) {
        ++sum.stats.refuted;
        continue;
      }
      if (w.has_value()) {
        ++sum.stats.confirmed;
      } else {
        ++sum.stats.budget_exhausted;
      }
    }
    for (const bool ww : {true, false}) {
      if (ww ? !c.write_write : !c.write_read) continue;
      std::ostringstream msg;
      if (!w.has_value()) msg << "possible ";
      msg << (ww ? "write/write" : "write/read") << " data race between "
          << analysis::describe_stmt(prog, c.stmt1) << " and "
          << analysis::describe_stmt(prog, c.stmt2);
      Diagnostic d =
          make_finding("race", Severity::Error, prog.stmt_span(c.stmt1), msg.str());
      d.related_spans.push_back(prog.stmt_span(c.stmt2));
      if (w.has_value()) {
        d.notes = witness_notes(prog, *w);
        d.notes.push_back(DiagNote{
            prog.stmt_span(c.stmt2), "here " + analysis::describe_stmt(prog, c.stmt1) +
                                         " and " + analysis::describe_stmt(prog, c.stmt2) +
                                         " are both enabled; either may fire first"});
      } else if (opts.witnesses) {
        d.notes.push_back(DiagNote{
            {}, "directed search exhausted its --pair-budget of " +
                    std::to_string(opts.pair_budget) +
                    " configurations without confirming or refuting; raise it to decide"});
      } else {
        d.notes.push_back(DiagNote{{}, "thread-modular candidate: re-run without "
                                       "--no-witness (or with --tier=auto) to confirm or "
                                       "refute with a directed search"});
      }
      engine.report(std::move(d));
    }
  }

  // --- deadlock -----------------------------------------------------------
  if (!st.locks.deadlock_free()) {
    // Same static scan as --tier=static: anchor at the first blocking point
    // that may hold a lock (or the first lock statement when cells are
    // tainted).
    SourceSpan span;
    for (const sem::Proc& p : prog.procs()) {
      for (std::uint32_t pc = 0; pc < p.code.size() && !span.valid(); ++pc) {
        const sem::Instr& i = p.code[pc];
        if (i.stmt == nullptr || !st.locks.live(p.id, pc)) continue;
        const bool blocks = i.op == sem::Op::Lock || i.op == sem::Op::Join;
        if (!blocks) continue;
        if (!st.locks.pristine() || st.locks.may_held(p.id, pc) != 0 ||
            st.locks.may_hold_unknown(p.id, pc)) {
          span = prog.stmt_span(i.stmt->id());
        }
      }
    }
    engine.report(make_finding("deadlock", Severity::Warning, span,
                               "possible deadlock: a process may block while holding a "
                               "lock (thread-modular tier; run --tier=auto to confirm)"));
  }

  // --- assertions ---------------------------------------------------------
  for (const std::uint32_t stmt : tm.may_fail_asserts) {
    ++sum.tmod.alarms;
    Diagnostic d = make_finding("assert-may-fail", Severity::Warning, prog.stmt_span(stmt),
                                "assertion may fail: " +
                                    analysis::describe_stmt(prog, stmt));
    d.notes.push_back(provenance);
    engine.report(std::move(d));
  }

  // --- uninitialized reads ------------------------------------------------
  {
    std::set<std::pair<std::uint32_t, std::string>> seen;
    for (const auto& [stmt, expr, loc] : tm.uninit_reads) {
      std::string what = analysis::describe_loc(prog, loc);
      if (!seen.insert({stmt, what}).second) continue;
      ++sum.tmod.alarms;
      engine.report(make_finding("uninit-read", Severity::Warning, prog.stmt_span(stmt),
                                 "read of " + what + " before any write (observes the "
                                 "implicit 0) in " + analysis::describe_stmt(prog, stmt)));
    }
  }

  // --- unreachable statements ---------------------------------------------
  if (!tm.truncated) {
    std::set<std::uint32_t> lowered_stmts;
    for (const sem::Proc& p : prog.procs()) {
      for (const sem::Instr& instr : p.code) {
        if (instr.stmt != nullptr) lowered_stmts.insert(instr.stmt->id());
      }
    }
    for (const std::uint32_t stmt : lowered_stmts) {
      if (tm.reached_stmts.contains(stmt)) continue;
      engine.report(make_finding("unreachable", Severity::Warning, prog.stmt_span(stmt),
                                 "statement is unreachable: " +
                                     analysis::describe_stmt(prog, stmt)));
    }
  }

  // --- dead stores ----------------------------------------------------------
  for (const std::uint32_t stmt : analysis::find_dead_stores(prog).stores) {
    engine.report(make_finding("dead-store", Severity::Warning, prog.stmt_span(stmt),
                               "stored value is never observed: " +
                                   analysis::describe_stmt(prog, stmt)));
  }

  // Definite iff the engine converged with nothing undecided left: no
  // may-alarms beyond races, the lock discipline discharged statically, and
  // every race candidate confirmed or refuted by its directed search.
  sum.concrete_exhaustive =
      !tm.truncated && tm.may_faults.empty() && tm.may_fail_asserts.empty() &&
      st.locks.deadlock_free() && st.locks.unlocks_safe() &&
      sum.stats.budget_exhausted == 0 && (opts.witnesses || tm.races.races.empty());

  {
    StatRegistry reg;
    reg.set("check.pairs_total", sum.stats.pairs_total);
    reg.set("check.pruned_mhp", sum.stats.pruned_mhp);
    reg.set("check.pruned_lockset", sum.stats.pruned_lockset);
    reg.set("check.candidates", sum.stats.candidates);
    reg.set("check.confirmed", sum.stats.confirmed);
    reg.set("check.refuted", sum.stats.refuted);
    reg.set("check.budget_exhausted", sum.stats.budget_exhausted);
    reg.set("check.configs_explored", sum.stats.configs_explored);
    telemetry::Telemetry::global().publish_stats(reg);
  }

  engine.sort_by_location();
  return sum;
}

}  // namespace

CheckSummary run_checks(const CompiledProgram& cp, DiagnosticEngine& engine,
                        const CheckOptions& opts) {
  if (opts.tier == Tier::Tmod) return run_tmod_checks(cp, engine, opts);

  const sem::LoweredProgram& prog = *cp.lowered;
  CheckSummary sum;
  sum.tier = opts.tier;

  // Abstract pass (intervals): may-faults, uninitialized reads, assertion
  // and reachability facts. Terminates on every program (widening).
  absem::AbsOptions aopts;
  aopts.max_states = opts.abs_max_states;
  absem::AbsResult<absdom::Interval> abs =
      absem::AbsExplorer<absdom::Interval>(prog, aopts).run();
  sum.abstract_states = abs.num_states;

  // Static tier (auto/static): lockset + MHP candidate generation, zero
  // exploration.
  std::optional<StaticTier> st;
  if (opts.tier != Tier::Explore) {
    st.emplace(prog);
    sum.stats.pairs_total = st->cands.pairs_total;
    sum.stats.pruned_mhp = st->cands.pruned_mhp;
    sum.stats.pruned_lockset = st->cands.pruned_lockset;
    sum.stats.candidates = st->cands.candidates.size();
  }

  // Does the full concrete exploration run? The auto tier skips it when the
  // static facts discharge everything it would establish: races go through
  // directed per-candidate searches instead, and faults / assertions /
  // deadlock are covered by the (sound) abstract may-sets plus the lock
  // discipline predicates — the abstract pass does not model
  // unlock-not-held or deadlock, so those two need the lockset proofs.
  bool explore_now = true;
  if (opts.tier == Tier::Static) {
    explore_now = false;
  } else if (opts.tier == Tier::Auto) {
    explore_now = abs.truncated || !abs.may_faults.empty() ||
                  !abs.may_fail_asserts.empty() || !st->locks.deadlock_free() ||
                  !st->locks.unlocks_safe();
  }

  // Concrete pass: ground truth when it completes — copar programs are
  // closed (no inputs), so an untruncated exploration covers every behavior.
  explore::ExploreResult conc;
  if (explore_now) {
    explore::ExploreOptions eopts;
    // The auto tier resolves races via directed searches; skip the
    // O(enabled²)-per-state pair recording it would never read.
    eopts.record_pairs = opts.tier == Tier::Explore;
    eopts.max_configs = opts.max_configs;
    conc = explore::explore(prog, eopts);
    sum.explored = true;
    sum.concrete_configs = conc.num_configs;
    sum.stats.configs_explored += conc.num_configs;
    sum.concrete_exhaustive = !conc.truncated;
  } else {
    // Auto: nothing left for exploration to decide — definite by static
    // proof (directed searches may still flip this on budget exhaustion).
    // Static: definite only when the static facts discharge everything.
    sum.concrete_exhaustive =
        opts.tier == Tier::Auto ||
        (!abs.truncated && abs.may_faults.empty() && abs.may_fail_asserts.empty() &&
         st->cands.candidates.empty() && st->locks.deadlock_free() &&
         st->locks.unlocks_safe());
  }

  std::size_t witness_budget = opts.witnesses ? opts.max_witnesses : 0;
  auto try_witness = [&](explore::WitnessQuery q) -> std::optional<explore::Witness> {
    if (witness_budget == 0) return std::nullopt;
    --witness_budget;
    q.explore.max_configs = opts.max_configs;
    explore::WitnessStats ws;
    auto w = explore::find_witness(prog, q, &ws);
    sum.stats.configs_explored += ws.configs;
    return w;
  };

  // --- run-time faults ----------------------------------------------------
  if (sum.explored) {
    for (const auto& [stmt, fault_raw] : conc.faults) {
      const auto fault = static_cast<sem::Fault>(fault_raw);
      Diagnostic d = make_finding(fault_code(fault), Severity::Error, prog.stmt_span(stmt),
                                  std::string(fault_phrase(fault)) + " in " +
                                      analysis::describe_stmt(prog, stmt));
      explore::WitnessQuery q;
      q.want_fault = stmt;
      if (auto w = try_witness(std::move(q))) d.notes = witness_notes(prog, *w);
      engine.report(std::move(d));
    }
  }
  if ((sum.explored && conc.truncated) || opts.tier == Tier::Static) {
    // No (complete) concrete confirmation pass: surface the abstract
    // may-faults as warnings. (When exhaustive, unconfirmed abstract
    // alarms are refuted and dropped.)
    std::set<std::pair<std::uint32_t, std::uint8_t>> seen;
    for (const auto& [stmt, expr, fault_raw] : abs.may_faults) {
      if (sum.explored && conc.faults.contains({stmt, fault_raw})) continue;
      if (!seen.insert({stmt, fault_raw}).second) continue;
      const auto fault = static_cast<sem::Fault>(fault_raw);
      engine.report(make_finding(fault_code(fault), Severity::Warning, prog.stmt_span(stmt),
                                 "possible " + std::string(fault_phrase(fault)) + " in " +
                                     analysis::describe_stmt(prog, stmt)));
    }
  }
  if (opts.tier == Tier::Static && st->locks.pristine() && !st->locks.unlocks_safe()) {
    // The abstract pass does not model lock ownership; the lockset analysis
    // flags releases that may not own the lock.
    for (const sem::Proc& p : prog.procs()) {
      for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
        const sem::Instr& i = p.code[pc];
        if (i.op != sem::Op::Unlock || !st->locks.live(p.id, pc)) continue;
        const auto slot = sem::lock_global_slot(prog, *i.lhs);
        const auto bit = slot ? st->locks.bit_of_slot(*slot) : std::nullopt;
        if (bit && (st->locks.held(p.id, pc) >> *bit & 1) != 0) continue;
        const SourceSpan span = i.stmt != nullptr ? prog.stmt_span(i.stmt->id()) : SourceSpan{};
        engine.report(make_finding("unlock-not-held", Severity::Warning, span,
                                   "possible unlock of a lock that is not held (not in the "
                                   "must-held lockset)"));
      }
    }
  }

  // --- data races ---------------------------------------------------------
  if (opts.tier == Tier::Explore) {
    analysis::Anomalies anomalies;
    if (sum.concrete_exhaustive) {
      anomalies = analysis::anomalies_from(conc);
    } else {
      // Fall back to the sound abstract anomaly candidates.
      absem::AbsOptions fopts;
      fopts.max_states = opts.abs_max_states;
      const absem::AbsResult<absdom::FlatInt> flat =
          absem::AbsExplorer<absdom::FlatInt>(prog, fopts).run();
      anomalies = analysis::anomalies_from(flat);
    }
    for (const analysis::Anomaly& a : anomalies.all) {
      if (is_sync_stmt(prog, a.stmt1) && is_sync_stmt(prog, a.stmt2)) continue;
      std::ostringstream msg;
      if (!sum.concrete_exhaustive) msg << "possible ";
      msg << (a.write_write ? "write/write" : "write/read") << " data race between "
          << analysis::describe_stmt(prog, a.stmt1) << " and "
          << analysis::describe_stmt(prog, a.stmt2);
      Diagnostic d =
          make_finding("race", Severity::Error, prog.stmt_span(a.stmt1), msg.str());
      d.related_spans.push_back(prog.stmt_span(a.stmt2));
      explore::WitnessQuery q;
      q.reach_predicate = race_reach_predicate(a.stmt1, a.stmt2);
      if (auto w = try_witness(std::move(q))) {
        d.notes = witness_notes(prog, *w);
        d.notes.push_back(DiagNote{
            prog.stmt_span(a.stmt2), "here " + analysis::describe_stmt(prog, a.stmt1) +
                                         " and " + analysis::describe_stmt(prog, a.stmt2) +
                                         " are both enabled; either may fire first"});
      }
      engine.report(std::move(d));
    }
  } else if (opts.tier == Tier::Static) {
    // Static tier: candidates are reported as-is (possible races), pairs
    // proven race-free by a common lock as race-guarded notes.
    for (const analysis::RaceCandidate& c : st->cands.candidates) {
      for (const bool ww : {true, false}) {
        if (ww ? !c.write_write : !c.write_read) continue;
        std::ostringstream msg;
        msg << "possible " << (ww ? "write/write" : "write/read")
            << " data race between " << analysis::describe_stmt(prog, c.stmt1) << " and "
            << analysis::describe_stmt(prog, c.stmt2);
        Diagnostic d =
            make_finding("race", Severity::Error, prog.stmt_span(c.stmt1), msg.str());
        d.related_spans.push_back(prog.stmt_span(c.stmt2));
        d.notes.push_back(DiagNote{{}, "static-tier candidate: run --tier=auto to confirm "
                                       "or refute with a directed search"});
        engine.report(std::move(d));
      }
    }
    for (const analysis::SuppressedPair& s : st->cands.suppressed) {
      Diagnostic d = make_finding(
          "race-guarded", Severity::Note, prog.stmt_span(s.stmt1),
          "conflicting accesses " + analysis::describe_stmt(prog, s.stmt1) + " and " +
              analysis::describe_stmt(prog, s.stmt2) + " are race-free: both hold lock '" +
              s.lock + "'");
      d.related_spans.push_back(prog.stmt_span(s.stmt2));
      engine.report(std::move(d));
    }
  } else {
    // Auto tier: a directed witness search per candidate, budgeted per pair.
    // A found co-enabled state confirms the race; an exhausted search
    // refutes it; a truncated search downgrades to "possible".
    for (const analysis::RaceCandidate& c : st->cands.candidates) {
      explore::WitnessQuery q;
      q.reach_predicate = race_reach_predicate(c.stmt1, c.stmt2);
      q.explore.max_configs = opts.pair_budget;
      explore::WitnessStats ws;
      const std::optional<explore::Witness> w = explore::find_witness(prog, q, &ws);
      sum.stats.configs_explored += ws.configs;
      if (!w.has_value() && !ws.truncated) {
        ++sum.stats.refuted;
        continue;
      }
      if (w.has_value()) {
        ++sum.stats.confirmed;
      } else {
        ++sum.stats.budget_exhausted;
        sum.concrete_exhaustive = false;
      }
      for (const bool ww : {true, false}) {
        if (ww ? !c.write_write : !c.write_read) continue;
        std::ostringstream msg;
        if (!w.has_value()) msg << "possible ";
        msg << (ww ? "write/write" : "write/read") << " data race between "
            << analysis::describe_stmt(prog, c.stmt1) << " and "
            << analysis::describe_stmt(prog, c.stmt2);
        Diagnostic d =
            make_finding("race", Severity::Error, prog.stmt_span(c.stmt1), msg.str());
        d.related_spans.push_back(prog.stmt_span(c.stmt2));
        if (w.has_value() && opts.witnesses) {
          d.notes = witness_notes(prog, *w);
          d.notes.push_back(DiagNote{
              prog.stmt_span(c.stmt2), "here " + analysis::describe_stmt(prog, c.stmt1) +
                                           " and " + analysis::describe_stmt(prog, c.stmt2) +
                                           " are both enabled; either may fire first"});
        } else if (!w.has_value()) {
          d.notes.push_back(DiagNote{
              {}, "directed search exhausted its --pair-budget of " +
                      std::to_string(opts.pair_budget) +
                      " configurations without confirming or refuting; raise it to decide"});
        }
        engine.report(std::move(d));
      }
    }
  }

  // --- deadlock -----------------------------------------------------------
  if (opts.tier == Tier::Static && !st->locks.deadlock_free()) {
    // No exploration to confirm it; anchor at the first blocking point that
    // may hold a lock (or the first lock statement when cells are tainted).
    SourceSpan span;
    for (const sem::Proc& p : prog.procs()) {
      for (std::uint32_t pc = 0; pc < p.code.size() && !span.valid(); ++pc) {
        const sem::Instr& i = p.code[pc];
        if (i.stmt == nullptr || !st->locks.live(p.id, pc)) continue;
        const bool blocks = i.op == sem::Op::Lock || i.op == sem::Op::Join;
        if (!blocks) continue;
        if (!st->locks.pristine() || st->locks.may_held(p.id, pc) != 0 ||
            st->locks.may_hold_unknown(p.id, pc)) {
          span = prog.stmt_span(i.stmt->id());
        }
      }
    }
    engine.report(make_finding("deadlock", Severity::Warning, span,
                               "possible deadlock: a process may block while holding a "
                               "lock (static tier; run --tier=auto to confirm)"));
  }
  if (sum.explored && conc.deadlock_found) {
    // Anchor the finding at the statements the blocked processes sit on.
    SourceSpan span;
    std::vector<SourceSpan> related;
    for (const auto& [key, term] : conc.terminals) {
      if (!term.deadlock) continue;
      for (const sem::ActionInfo& info : sem::all_action_infos(term.config)) {
        if (info.stmt_id == sem::kNoStmt) continue;
        const SourceSpan s = prog.stmt_span(info.stmt_id);
        if (!span.valid()) {
          span = s;
        } else if (s.valid()) {
          related.push_back(s);
        }
      }
      break;
    }
    Diagnostic d = make_finding("deadlock", Severity::Error, span,
                                "the program can deadlock: some interleaving blocks every "
                                "live process");
    d.related_spans = std::move(related);
    explore::WitnessQuery q;
    q.want_deadlock = true;
    if (auto w = try_witness(std::move(q))) d.notes = witness_notes(prog, *w);
    engine.report(std::move(d));
  }

  // --- assertions ---------------------------------------------------------
  if (sum.explored) {
    for (const std::uint32_t stmt : conc.violations) {
      Diagnostic d = make_finding("assert-fail", Severity::Error, prog.stmt_span(stmt),
                                  "assertion fails on some interleaving: " +
                                      analysis::describe_stmt(prog, stmt));
      explore::WitnessQuery q;
      q.want_violation = stmt;
      if (auto w = try_witness(std::move(q))) d.notes = witness_notes(prog, *w);
      engine.report(std::move(d));
    }
  }
  if ((sum.explored && conc.truncated) || opts.tier == Tier::Static) {
    for (const std::uint32_t stmt : abs.may_fail_asserts) {
      if (sum.explored && conc.violations.contains(stmt)) continue;
      engine.report(make_finding("assert-may-fail", Severity::Warning, prog.stmt_span(stmt),
                                 "assertion may fail: " +
                                     analysis::describe_stmt(prog, stmt)));
    }
  }

  // --- uninitialized reads ------------------------------------------------
  {
    std::set<std::pair<std::uint32_t, std::string>> seen;
    for (const auto& [stmt, expr, loc] : abs.uninit_reads) {
      std::string what = analysis::describe_loc(prog, loc);
      if (!seen.insert({stmt, what}).second) continue;
      engine.report(make_finding("uninit-read", Severity::Warning, prog.stmt_span(stmt),
                                 "read of " + what + " before any write (observes the "
                                 "implicit 0) in " + analysis::describe_stmt(prog, stmt)));
    }
  }

  // --- unreachable statements ---------------------------------------------
  if (!abs.truncated) {
    std::set<std::uint32_t> lowered_stmts;
    for (const sem::Proc& p : prog.procs()) {
      for (const sem::Instr& instr : p.code) {
        if (instr.stmt != nullptr) lowered_stmts.insert(instr.stmt->id());
      }
    }
    for (const std::uint32_t stmt : lowered_stmts) {
      if (abs.reached_stmts.contains(stmt)) continue;
      engine.report(make_finding("unreachable", Severity::Warning, prog.stmt_span(stmt),
                                 "statement is unreachable: " +
                                     analysis::describe_stmt(prog, stmt)));
    }
  }

  // --- dead stores ----------------------------------------------------------
  for (const std::uint32_t stmt : analysis::find_dead_stores(prog).stores) {
    engine.report(make_finding("dead-store", Severity::Warning, prog.stmt_span(stmt),
                               "stored value is never observed: " +
                                   analysis::describe_stmt(prog, stmt)));
  }

  // Tier statistics ride the shared metrics surface (`copar-cli
  // --metrics-out`, `metrics-dump`): publish as `check.*` counters.
  {
    StatRegistry reg;
    reg.set("check.pairs_total", sum.stats.pairs_total);
    reg.set("check.pruned_mhp", sum.stats.pruned_mhp);
    reg.set("check.pruned_lockset", sum.stats.pruned_lockset);
    reg.set("check.candidates", sum.stats.candidates);
    reg.set("check.confirmed", sum.stats.confirmed);
    reg.set("check.refuted", sum.stats.refuted);
    reg.set("check.budget_exhausted", sum.stats.budget_exhausted);
    reg.set("check.configs_explored", sum.stats.configs_explored);
    telemetry::Telemetry::global().publish_stats(reg);
  }

  engine.sort_by_location();
  return sum;
}

}  // namespace copar::check
