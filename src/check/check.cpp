#include "src/check/check.h"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absem/absexplore.h"
#include "src/analysis/anomaly.h"
#include "src/analysis/common.h"
#include "src/analysis/deadstore.h"
#include "src/explore/explorer.h"
#include "src/explore/witness.h"
#include "src/sem/step.h"

namespace copar::check {

namespace {

constexpr std::string_view kSuppressHint =
    "suppress with `// copar-ignore(<code>)` on or above the line";

constexpr std::array<RuleInfo, 17> kCatalog = {{
    {"arity-mismatch", Severity::Error, "call with the wrong number of arguments",
     "The callee's parameter list does not match the argument count on some path."},
    {"assert-fail", Severity::Error, "assertion fails on some interleaving",
     "The concrete exploration found a schedule under which the asserted condition is false."},
    {"assert-may-fail", Severity::Warning, "assertion may fail (abstract)",
     "The abstract semantics cannot prove the assertion; the concrete exploration was "
     "truncated before confirming or refuting it."},
    {"bad-deref", Severity::Error, "dereference of a non-pointer value",
     "A `*p` or `p[i]` access where `p` holds an integer, boolean, or function."},
    {"bounds", Severity::Error, "indexed access outside the allocated object",
     "The index is negative or not below the allocation size on some path."},
    {"dead-store", Severity::Warning, "stored value is never observed",
     "No later read — in this thread or any concurrent one — can see the assigned value. "
     "Sound for cobegin programs: stores other threads may observe are kept."},
    {"deadlock", Severity::Error, "the program can deadlock",
     "Some interleaving leaves live processes with no enabled action (e.g. a lock cycle)."},
    {"div-zero", Severity::Error, "division by zero",
     "The right operand of `/` or `%` can be zero on some path."},
    {"negative-alloc", Severity::Error, "allocation with a negative size",
     "The size expression of `alloc` can be negative on some path."},
    {"not-a-function", Severity::Error, "call of a non-function value",
     "The callee expression does not evaluate to a function on some path."},
    {"null-deref", Severity::Error, "null pointer dereference",
     "A `*p` or `p[i]` access where `p` can be null on some path."},
    {"race", Severity::Error, "data race between concurrent statements",
     "Two statements that may run in parallel access the same location, at least one "
     "writing, with no synchronization ordering them."},
    {"syntax", Severity::Error, "lexical, syntactic, or resolution error",
     "The program does not parse or resolve; remaining checks did not run."},
    {"type-error", Severity::Error, "operands have incompatible runtime types",
     "An arithmetic or comparison operator meets a pointer/function operand it cannot "
     "combine."},
    {"uninit-read", Severity::Warning, "read of a variable before any write",
     "The read observes the implicit zero initialization on some path. Initialize the "
     "variable explicitly if the zero is intended."},
    {"unlock-not-held", Severity::Error, "unlock of a lock that is not held",
     "The unlocking process does not own the lock cell on some path."},
    {"unreachable", Severity::Warning, "statement is unreachable",
     "No abstract execution reaches this statement; it is dead code (or only reachable "
     "from dead code)."},
}};

std::string_view fault_phrase(sem::Fault f) {
  switch (f) {
    case sem::Fault::DerefNull: return "null pointer dereference";
    case sem::Fault::DerefNonPointer: return "dereference of a non-pointer value";
    case sem::Fault::OutOfBounds: return "indexed access outside the allocated object";
    case sem::Fault::TypeError: return "operands have incompatible runtime types";
    case sem::Fault::DivByZero: return "division by zero";
    case sem::Fault::NotAFunction: return "call of a non-function value";
    case sem::Fault::ArityMismatch: return "call with the wrong number of arguments";
    case sem::Fault::UnlockNotHeld: return "unlock of a lock that is not held";
    case sem::Fault::NegativeAlloc: return "allocation with a negative size";
  }
  return "runtime fault";
}

/// True when the statement is pure synchronization: a race between two
/// lock/unlock actions is contention on the lock cell, not a data race.
bool is_sync_stmt(const sem::LoweredProgram& prog, std::uint32_t stmt_id) {
  const lang::Stmt* s = prog.stmt(stmt_id);
  return s != nullptr &&
         (s->kind() == lang::StmtKind::Lock || s->kind() == lang::StmtKind::Unlock);
}

std::vector<DiagNote> witness_notes(const sem::LoweredProgram& prog,
                                    const explore::Witness& w) {
  std::vector<DiagNote> notes;
  notes.push_back(DiagNote{{}, "witness interleaving (" + std::to_string(w.steps.size()) +
                                   (w.steps.size() == 1 ? " step):" : " steps):")});
  for (std::size_t i = 0; i < w.steps.size(); ++i) {
    const explore::WitnessStep& s = w.steps[i];
    std::ostringstream os;
    os << "step " << i + 1 << ": p" << s.pid << ' ' << sem::action_kind_name(s.kind);
    if (!s.point.empty()) os << " at " << s.point;
    SourceSpan span;
    if (s.stmt != sem::kNoStmt) span = prog.stmt_span(s.stmt);
    notes.push_back(DiagNote{span, os.str()});
  }
  return notes;
}

Diagnostic make_finding(std::string_view code, Severity sev, SourceSpan span,
                        std::string message) {
  Diagnostic d;
  d.code = std::string(code);
  d.severity = sev;
  d.span = span;
  d.loc = span.begin;
  d.message = std::move(message);
  return d;
}

}  // namespace

std::span<const RuleInfo> catalog() { return kCatalog; }

const RuleInfo* find_rule(std::string_view code) {
  const auto it = std::lower_bound(kCatalog.begin(), kCatalog.end(), code,
                                   [](const RuleInfo& r, std::string_view c) { return r.id < c; });
  return it != kCatalog.end() && it->id == code ? &*it : nullptr;
}

std::string_view fault_code(sem::Fault f) {
  switch (f) {
    case sem::Fault::DerefNull: return "null-deref";
    case sem::Fault::DerefNonPointer: return "bad-deref";
    case sem::Fault::OutOfBounds: return "bounds";
    case sem::Fault::TypeError: return "type-error";
    case sem::Fault::DivByZero: return "div-zero";
    case sem::Fault::NotAFunction: return "not-a-function";
    case sem::Fault::ArityMismatch: return "arity-mismatch";
    case sem::Fault::UnlockNotHeld: return "unlock-not-held";
    case sem::Fault::NegativeAlloc: return "negative-alloc";
  }
  return "fault";
}

CheckSummary run_checks(const CompiledProgram& cp, DiagnosticEngine& engine,
                        const CheckOptions& opts) {
  const sem::LoweredProgram& prog = *cp.lowered;
  CheckSummary sum;

  // Abstract pass (intervals): may-faults, uninitialized reads, assertion
  // and reachability facts. Terminates on every program (widening).
  absem::AbsOptions aopts;
  aopts.max_states = opts.abs_max_states;
  absem::AbsResult<absdom::Interval> abs =
      absem::AbsExplorer<absdom::Interval>(prog, aopts).run();
  sum.abstract_states = abs.num_states;

  // Concrete pass: ground truth when it completes — copar programs are
  // closed (no inputs), so an untruncated exploration covers every behavior.
  explore::ExploreOptions eopts;
  eopts.record_pairs = true;
  eopts.max_configs = opts.max_configs;
  const explore::ExploreResult conc = explore::explore(prog, eopts);
  sum.concrete_configs = conc.num_configs;
  sum.concrete_exhaustive = !conc.truncated;

  std::size_t witness_budget = opts.witnesses ? opts.max_witnesses : 0;
  auto try_witness = [&](explore::WitnessQuery q) -> std::optional<explore::Witness> {
    if (witness_budget == 0) return std::nullopt;
    --witness_budget;
    q.explore.max_configs = opts.max_configs;
    return explore::find_witness(prog, q);
  };

  // --- run-time faults ----------------------------------------------------
  for (const auto& [stmt, fault_raw] : conc.faults) {
    const auto fault = static_cast<sem::Fault>(fault_raw);
    Diagnostic d = make_finding(fault_code(fault), Severity::Error, prog.stmt_span(stmt),
                                std::string(fault_phrase(fault)) + " in " +
                                    analysis::describe_stmt(prog, stmt));
    explore::WitnessQuery q;
    q.want_fault = stmt;
    if (auto w = try_witness(std::move(q))) d.notes = witness_notes(prog, *w);
    engine.report(std::move(d));
  }
  if (!sum.concrete_exhaustive) {
    // The concrete space was truncated: surface the abstract may-faults it
    // did not get to confirm. (When exhaustive, unconfirmed abstract
    // alarms are refuted and dropped.)
    std::set<std::pair<std::uint32_t, std::uint8_t>> seen;
    for (const auto& [stmt, expr, fault_raw] : abs.may_faults) {
      if (conc.faults.contains({stmt, fault_raw})) continue;
      if (!seen.insert({stmt, fault_raw}).second) continue;
      const auto fault = static_cast<sem::Fault>(fault_raw);
      engine.report(make_finding(fault_code(fault), Severity::Warning, prog.stmt_span(stmt),
                                 "possible " + std::string(fault_phrase(fault)) + " in " +
                                     analysis::describe_stmt(prog, stmt)));
    }
  }

  // --- data races ---------------------------------------------------------
  analysis::Anomalies anomalies;
  if (sum.concrete_exhaustive) {
    anomalies = analysis::anomalies_from(conc);
  } else {
    // Fall back to the sound abstract anomaly candidates.
    absem::AbsOptions fopts;
    fopts.max_states = opts.abs_max_states;
    const absem::AbsResult<absdom::FlatInt> flat =
        absem::AbsExplorer<absdom::FlatInt>(prog, fopts).run();
    anomalies = analysis::anomalies_from(flat);
  }
  for (const analysis::Anomaly& a : anomalies.all) {
    if (is_sync_stmt(prog, a.stmt1) && is_sync_stmt(prog, a.stmt2)) continue;
    std::ostringstream msg;
    if (!sum.concrete_exhaustive) msg << "possible ";
    msg << (a.write_write ? "write/write" : "write/read") << " data race between "
        << analysis::describe_stmt(prog, a.stmt1) << " and "
        << analysis::describe_stmt(prog, a.stmt2);
    Diagnostic d = make_finding("race", Severity::Error, prog.stmt_span(a.stmt1), msg.str());
    d.related_spans.push_back(prog.stmt_span(a.stmt2));
    // Witness: a reachable state where both statements are simultaneously
    // enabled (for a self-race, two enabled instances of the statement).
    explore::WitnessQuery q;
    const std::uint32_t s1 = a.stmt1;
    const std::uint32_t s2 = a.stmt2;
    q.reach_predicate = [s1, s2](const sem::Configuration& cfg) {
      int n1 = 0;
      int n2 = 0;
      for (const sem::ActionInfo& info : sem::all_action_infos(cfg)) {
        if (!info.enabled || info.stmt_id == sem::kNoStmt) continue;
        if (info.stmt_id == s1) ++n1;
        if (info.stmt_id == s2) ++n2;
      }
      return s1 == s2 ? n1 >= 2 : (n1 >= 1 && n2 >= 1);
    };
    if (auto w = try_witness(std::move(q))) {
      d.notes = witness_notes(prog, *w);
      d.notes.push_back(DiagNote{
          prog.stmt_span(s2), "here " + analysis::describe_stmt(prog, s1) + " and " +
                                  analysis::describe_stmt(prog, s2) +
                                  " are both enabled; either may fire first"});
    }
    engine.report(std::move(d));
  }

  // --- deadlock -----------------------------------------------------------
  if (conc.deadlock_found) {
    // Anchor the finding at the statements the blocked processes sit on.
    SourceSpan span;
    std::vector<SourceSpan> related;
    for (const auto& [key, term] : conc.terminals) {
      if (!term.deadlock) continue;
      for (const sem::ActionInfo& info : sem::all_action_infos(term.config)) {
        if (info.stmt_id == sem::kNoStmt) continue;
        const SourceSpan s = prog.stmt_span(info.stmt_id);
        if (!span.valid()) {
          span = s;
        } else if (s.valid()) {
          related.push_back(s);
        }
      }
      break;
    }
    Diagnostic d = make_finding("deadlock", Severity::Error, span,
                                "the program can deadlock: some interleaving blocks every "
                                "live process");
    d.related_spans = std::move(related);
    explore::WitnessQuery q;
    q.want_deadlock = true;
    if (auto w = try_witness(std::move(q))) d.notes = witness_notes(prog, *w);
    engine.report(std::move(d));
  }

  // --- assertions ---------------------------------------------------------
  for (const std::uint32_t stmt : conc.violations) {
    Diagnostic d = make_finding("assert-fail", Severity::Error, prog.stmt_span(stmt),
                                "assertion fails on some interleaving: " +
                                    analysis::describe_stmt(prog, stmt));
    explore::WitnessQuery q;
    q.want_violation = stmt;
    if (auto w = try_witness(std::move(q))) d.notes = witness_notes(prog, *w);
    engine.report(std::move(d));
  }
  if (!sum.concrete_exhaustive) {
    for (const std::uint32_t stmt : abs.may_fail_asserts) {
      if (conc.violations.contains(stmt)) continue;
      engine.report(make_finding("assert-may-fail", Severity::Warning, prog.stmt_span(stmt),
                                 "assertion may fail: " +
                                     analysis::describe_stmt(prog, stmt)));
    }
  }

  // --- uninitialized reads ------------------------------------------------
  {
    std::set<std::pair<std::uint32_t, std::string>> seen;
    for (const auto& [stmt, expr, loc] : abs.uninit_reads) {
      std::string what = analysis::describe_loc(prog, loc);
      if (!seen.insert({stmt, what}).second) continue;
      engine.report(make_finding("uninit-read", Severity::Warning, prog.stmt_span(stmt),
                                 "read of " + what + " before any write (observes the "
                                 "implicit 0) in " + analysis::describe_stmt(prog, stmt)));
    }
  }

  // --- unreachable statements ---------------------------------------------
  if (!abs.truncated) {
    std::set<std::uint32_t> lowered_stmts;
    for (const sem::Proc& p : prog.procs()) {
      for (const sem::Instr& instr : p.code) {
        if (instr.stmt != nullptr) lowered_stmts.insert(instr.stmt->id());
      }
    }
    for (const std::uint32_t stmt : lowered_stmts) {
      if (abs.reached_stmts.contains(stmt)) continue;
      engine.report(make_finding("unreachable", Severity::Warning, prog.stmt_span(stmt),
                                 "statement is unreachable: " +
                                     analysis::describe_stmt(prog, stmt)));
    }
  }

  // --- dead stores ----------------------------------------------------------
  for (const std::uint32_t stmt : analysis::find_dead_stores(prog).stores) {
    engine.report(make_finding("dead-store", Severity::Warning, prog.stmt_span(stmt),
                               "stored value is never observed: " +
                                   analysis::describe_stmt(prog, stmt)));
  }

  engine.sort_by_location();
  return sum;
}

}  // namespace copar::check
