# Empty dependencies file for bench_philosophers.
# This may be replaced when dependencies are built.
