file(REMOVE_RECURSE
  "CMakeFiles/bench_philosophers.dir/bench_philosophers.cpp.o"
  "CMakeFiles/bench_philosophers.dir/bench_philosophers.cpp.o.d"
  "bench_philosophers"
  "bench_philosophers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_philosophers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
