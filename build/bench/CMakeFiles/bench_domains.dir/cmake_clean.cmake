file(REMOVE_RECURSE
  "CMakeFiles/bench_domains.dir/bench_domains.cpp.o"
  "CMakeFiles/bench_domains.dir/bench_domains.cpp.o.d"
  "bench_domains"
  "bench_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
