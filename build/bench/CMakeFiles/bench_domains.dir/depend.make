# Empty dependencies file for bench_domains.
# This may be replaced when dependencies are built.
