file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_folding.dir/bench_fig3_folding.cpp.o"
  "CMakeFiles/bench_fig3_folding.dir/bench_fig3_folding.cpp.o.d"
  "bench_fig3_folding"
  "bench_fig3_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
