file(REMOVE_RECURSE
  "CMakeFiles/bench_coarsening.dir/bench_coarsening.cpp.o"
  "CMakeFiles/bench_coarsening.dir/bench_coarsening.cpp.o.d"
  "bench_coarsening"
  "bench_coarsening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coarsening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
