# Empty dependencies file for bench_coarsening.
# This may be replaced when dependencies are built.
