file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_interleavings.dir/bench_fig2_interleavings.cpp.o"
  "CMakeFiles/bench_fig2_interleavings.dir/bench_fig2_interleavings.cpp.o.d"
  "bench_fig2_interleavings"
  "bench_fig2_interleavings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_interleavings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
