# Empty compiler generated dependencies file for bench_petri.
# This may be replaced when dependencies are built.
