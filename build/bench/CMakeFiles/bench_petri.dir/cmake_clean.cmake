file(REMOVE_RECURSE
  "CMakeFiles/bench_petri.dir/bench_petri.cpp.o"
  "CMakeFiles/bench_petri.dir/bench_petri.cpp.o.d"
  "bench_petri"
  "bench_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
