file(REMOVE_RECURSE
  "CMakeFiles/bench_example8.dir/bench_example8.cpp.o"
  "CMakeFiles/bench_example8.dir/bench_example8.cpp.o.d"
  "bench_example8"
  "bench_example8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
