# Empty compiler generated dependencies file for bench_example8.
# This may be replaced when dependencies are built.
