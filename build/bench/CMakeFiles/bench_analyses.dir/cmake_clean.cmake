file(REMOVE_RECURSE
  "CMakeFiles/bench_analyses.dir/bench_analyses.cpp.o"
  "CMakeFiles/bench_analyses.dir/bench_analyses.cpp.o.d"
  "bench_analyses"
  "bench_analyses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
