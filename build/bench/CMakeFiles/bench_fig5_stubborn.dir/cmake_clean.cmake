file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_stubborn.dir/bench_fig5_stubborn.cpp.o"
  "CMakeFiles/bench_fig5_stubborn.dir/bench_fig5_stubborn.cpp.o.d"
  "bench_fig5_stubborn"
  "bench_fig5_stubborn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_stubborn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
