# Empty dependencies file for bench_fig5_stubborn.
# This may be replaced when dependencies are built.
