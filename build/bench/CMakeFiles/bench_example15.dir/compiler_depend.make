# Empty compiler generated dependencies file for bench_example15.
# This may be replaced when dependencies are built.
