file(REMOVE_RECURSE
  "CMakeFiles/bench_example15.dir/bench_example15.cpp.o"
  "CMakeFiles/bench_example15.dir/bench_example15.cpp.o.d"
  "bench_example15"
  "bench_example15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
