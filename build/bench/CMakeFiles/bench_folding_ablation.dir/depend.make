# Empty dependencies file for bench_folding_ablation.
# This may be replaced when dependencies are built.
