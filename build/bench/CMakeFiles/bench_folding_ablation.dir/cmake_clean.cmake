file(REMOVE_RECURSE
  "CMakeFiles/bench_folding_ablation.dir/bench_folding_ablation.cpp.o"
  "CMakeFiles/bench_folding_ablation.dir/bench_folding_ablation.cpp.o.d"
  "bench_folding_ablation"
  "bench_folding_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_folding_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
