# Empty compiler generated dependencies file for test_absdom.
# This may be replaced when dependencies are built.
