file(REMOVE_RECURSE
  "CMakeFiles/test_absdom.dir/test_absdom.cpp.o"
  "CMakeFiles/test_absdom.dir/test_absdom.cpp.o.d"
  "test_absdom"
  "test_absdom.pdb"
  "test_absdom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_absdom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
