file(REMOVE_RECURSE
  "CMakeFiles/test_sem.dir/test_doall.cpp.o"
  "CMakeFiles/test_sem.dir/test_doall.cpp.o.d"
  "CMakeFiles/test_sem.dir/test_eval.cpp.o"
  "CMakeFiles/test_sem.dir/test_eval.cpp.o.d"
  "CMakeFiles/test_sem.dir/test_lower.cpp.o"
  "CMakeFiles/test_sem.dir/test_lower.cpp.o.d"
  "CMakeFiles/test_sem.dir/test_procstring.cpp.o"
  "CMakeFiles/test_sem.dir/test_procstring.cpp.o.d"
  "CMakeFiles/test_sem.dir/test_step.cpp.o"
  "CMakeFiles/test_sem.dir/test_step.cpp.o.d"
  "CMakeFiles/test_sem.dir/test_store_value.cpp.o"
  "CMakeFiles/test_sem.dir/test_store_value.cpp.o.d"
  "test_sem"
  "test_sem.pdb"
  "test_sem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
