
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/test_property.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/test_property.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/copar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/copar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/copar_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/absem/CMakeFiles/copar_absem.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/copar_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/copar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/absdom/CMakeFiles/copar_absdom.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/copar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/copar_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/copar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
