file(REMOVE_RECURSE
  "CMakeFiles/test_lang.dir/test_lexer.cpp.o"
  "CMakeFiles/test_lang.dir/test_lexer.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_parser.cpp.o"
  "CMakeFiles/test_lang.dir/test_parser.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_printer.cpp.o"
  "CMakeFiles/test_lang.dir/test_printer.cpp.o.d"
  "CMakeFiles/test_lang.dir/test_resolver.cpp.o"
  "CMakeFiles/test_lang.dir/test_resolver.cpp.o.d"
  "test_lang"
  "test_lang.pdb"
  "test_lang[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
