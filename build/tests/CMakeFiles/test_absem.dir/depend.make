# Empty dependencies file for test_absem.
# This may be replaced when dependencies are built.
