file(REMOVE_RECURSE
  "CMakeFiles/test_absem.dir/test_absem.cpp.o"
  "CMakeFiles/test_absem.dir/test_absem.cpp.o.d"
  "CMakeFiles/test_absem.dir/test_callstrings.cpp.o"
  "CMakeFiles/test_absem.dir/test_callstrings.cpp.o.d"
  "CMakeFiles/test_absem.dir/test_refine.cpp.o"
  "CMakeFiles/test_absem.dir/test_refine.cpp.o.d"
  "test_absem"
  "test_absem.pdb"
  "test_absem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_absem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
