# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_sem[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_absdom[1]_include.cmake")
include("/root/repo/build/tests/test_absem[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_petri[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
