# Empty dependencies file for parallelize_calls.
# This may be replaced when dependencies are built.
