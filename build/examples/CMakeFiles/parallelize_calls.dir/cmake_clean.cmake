file(REMOVE_RECURSE
  "CMakeFiles/parallelize_calls.dir/parallelize_calls.cpp.o"
  "CMakeFiles/parallelize_calls.dir/parallelize_calls.cpp.o.d"
  "parallelize_calls"
  "parallelize_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelize_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
