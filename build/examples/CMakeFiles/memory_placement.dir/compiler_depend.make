# Empty compiler generated dependencies file for memory_placement.
# This may be replaced when dependencies are built.
