file(REMOVE_RECURSE
  "CMakeFiles/memory_placement.dir/memory_placement.cpp.o"
  "CMakeFiles/memory_placement.dir/memory_placement.cpp.o.d"
  "memory_placement"
  "memory_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
