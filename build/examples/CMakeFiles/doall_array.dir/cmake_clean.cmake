file(REMOVE_RECURSE
  "CMakeFiles/doall_array.dir/doall_array.cpp.o"
  "CMakeFiles/doall_array.dir/doall_array.cpp.o.d"
  "doall_array"
  "doall_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doall_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
