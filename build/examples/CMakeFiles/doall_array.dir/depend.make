# Empty dependencies file for doall_array.
# This may be replaced when dependencies are built.
