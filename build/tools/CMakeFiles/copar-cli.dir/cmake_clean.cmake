file(REMOVE_RECURSE
  "CMakeFiles/copar-cli.dir/copar_cli.cpp.o"
  "CMakeFiles/copar-cli.dir/copar_cli.cpp.o.d"
  "copar-cli"
  "copar-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
