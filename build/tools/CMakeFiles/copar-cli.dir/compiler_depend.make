# Empty compiler generated dependencies file for copar-cli.
# This may be replaced when dependencies are built.
