
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/paper_examples.cpp" "src/workload/CMakeFiles/copar_workload.dir/paper_examples.cpp.o" "gcc" "src/workload/CMakeFiles/copar_workload.dir/paper_examples.cpp.o.d"
  "/root/repo/src/workload/philosophers.cpp" "src/workload/CMakeFiles/copar_workload.dir/philosophers.cpp.o" "gcc" "src/workload/CMakeFiles/copar_workload.dir/philosophers.cpp.o.d"
  "/root/repo/src/workload/random_programs.cpp" "src/workload/CMakeFiles/copar_workload.dir/random_programs.cpp.o" "gcc" "src/workload/CMakeFiles/copar_workload.dir/random_programs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/copar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
