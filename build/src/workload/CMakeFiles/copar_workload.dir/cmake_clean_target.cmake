file(REMOVE_RECURSE
  "libcopar_workload.a"
)
