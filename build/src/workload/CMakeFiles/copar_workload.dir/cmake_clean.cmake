file(REMOVE_RECURSE
  "CMakeFiles/copar_workload.dir/paper_examples.cpp.o"
  "CMakeFiles/copar_workload.dir/paper_examples.cpp.o.d"
  "CMakeFiles/copar_workload.dir/philosophers.cpp.o"
  "CMakeFiles/copar_workload.dir/philosophers.cpp.o.d"
  "CMakeFiles/copar_workload.dir/random_programs.cpp.o"
  "CMakeFiles/copar_workload.dir/random_programs.cpp.o.d"
  "libcopar_workload.a"
  "libcopar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
