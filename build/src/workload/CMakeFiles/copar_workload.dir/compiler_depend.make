# Empty compiler generated dependencies file for copar_workload.
# This may be replaced when dependencies are built.
