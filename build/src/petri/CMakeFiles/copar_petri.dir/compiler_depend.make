# Empty compiler generated dependencies file for copar_petri.
# This may be replaced when dependencies are built.
