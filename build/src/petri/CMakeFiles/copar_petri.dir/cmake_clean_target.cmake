file(REMOVE_RECURSE
  "libcopar_petri.a"
)
