
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/petri/models.cpp" "src/petri/CMakeFiles/copar_petri.dir/models.cpp.o" "gcc" "src/petri/CMakeFiles/copar_petri.dir/models.cpp.o.d"
  "/root/repo/src/petri/net.cpp" "src/petri/CMakeFiles/copar_petri.dir/net.cpp.o" "gcc" "src/petri/CMakeFiles/copar_petri.dir/net.cpp.o.d"
  "/root/repo/src/petri/reach.cpp" "src/petri/CMakeFiles/copar_petri.dir/reach.cpp.o" "gcc" "src/petri/CMakeFiles/copar_petri.dir/reach.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/copar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
