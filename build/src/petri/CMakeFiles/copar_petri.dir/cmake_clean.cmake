file(REMOVE_RECURSE
  "CMakeFiles/copar_petri.dir/models.cpp.o"
  "CMakeFiles/copar_petri.dir/models.cpp.o.d"
  "CMakeFiles/copar_petri.dir/net.cpp.o"
  "CMakeFiles/copar_petri.dir/net.cpp.o.d"
  "CMakeFiles/copar_petri.dir/reach.cpp.o"
  "CMakeFiles/copar_petri.dir/reach.cpp.o.d"
  "libcopar_petri.a"
  "libcopar_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
