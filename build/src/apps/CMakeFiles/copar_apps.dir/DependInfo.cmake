
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/constprop.cpp" "src/apps/CMakeFiles/copar_apps.dir/constprop.cpp.o" "gcc" "src/apps/CMakeFiles/copar_apps.dir/constprop.cpp.o.d"
  "/root/repo/src/apps/dealloc.cpp" "src/apps/CMakeFiles/copar_apps.dir/dealloc.cpp.o" "gcc" "src/apps/CMakeFiles/copar_apps.dir/dealloc.cpp.o.d"
  "/root/repo/src/apps/parallelize.cpp" "src/apps/CMakeFiles/copar_apps.dir/parallelize.cpp.o" "gcc" "src/apps/CMakeFiles/copar_apps.dir/parallelize.cpp.o.d"
  "/root/repo/src/apps/placement.cpp" "src/apps/CMakeFiles/copar_apps.dir/placement.cpp.o" "gcc" "src/apps/CMakeFiles/copar_apps.dir/placement.cpp.o.d"
  "/root/repo/src/apps/shasha_snir.cpp" "src/apps/CMakeFiles/copar_apps.dir/shasha_snir.cpp.o" "gcc" "src/apps/CMakeFiles/copar_apps.dir/shasha_snir.cpp.o.d"
  "/root/repo/src/apps/transform.cpp" "src/apps/CMakeFiles/copar_apps.dir/transform.cpp.o" "gcc" "src/apps/CMakeFiles/copar_apps.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/copar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/absem/CMakeFiles/copar_absem.dir/DependInfo.cmake"
  "/root/repo/build/src/absdom/CMakeFiles/copar_absdom.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/copar_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/copar_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/copar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/copar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
