file(REMOVE_RECURSE
  "CMakeFiles/copar_apps.dir/constprop.cpp.o"
  "CMakeFiles/copar_apps.dir/constprop.cpp.o.d"
  "CMakeFiles/copar_apps.dir/dealloc.cpp.o"
  "CMakeFiles/copar_apps.dir/dealloc.cpp.o.d"
  "CMakeFiles/copar_apps.dir/parallelize.cpp.o"
  "CMakeFiles/copar_apps.dir/parallelize.cpp.o.d"
  "CMakeFiles/copar_apps.dir/placement.cpp.o"
  "CMakeFiles/copar_apps.dir/placement.cpp.o.d"
  "CMakeFiles/copar_apps.dir/shasha_snir.cpp.o"
  "CMakeFiles/copar_apps.dir/shasha_snir.cpp.o.d"
  "CMakeFiles/copar_apps.dir/transform.cpp.o"
  "CMakeFiles/copar_apps.dir/transform.cpp.o.d"
  "libcopar_apps.a"
  "libcopar_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
