file(REMOVE_RECURSE
  "libcopar_apps.a"
)
