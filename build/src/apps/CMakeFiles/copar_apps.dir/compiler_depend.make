# Empty compiler generated dependencies file for copar_apps.
# This may be replaced when dependencies are built.
