# Empty dependencies file for copar_support.
# This may be replaced when dependencies are built.
