file(REMOVE_RECURSE
  "CMakeFiles/copar_support.dir/bitset.cpp.o"
  "CMakeFiles/copar_support.dir/bitset.cpp.o.d"
  "CMakeFiles/copar_support.dir/diagnostics.cpp.o"
  "CMakeFiles/copar_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/copar_support.dir/interner.cpp.o"
  "CMakeFiles/copar_support.dir/interner.cpp.o.d"
  "CMakeFiles/copar_support.dir/stats.cpp.o"
  "CMakeFiles/copar_support.dir/stats.cpp.o.d"
  "libcopar_support.a"
  "libcopar_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
