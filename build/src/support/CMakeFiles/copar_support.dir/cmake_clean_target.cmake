file(REMOVE_RECURSE
  "libcopar_support.a"
)
