file(REMOVE_RECURSE
  "libcopar_absem.a"
)
