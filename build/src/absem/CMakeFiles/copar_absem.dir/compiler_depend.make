# Empty compiler generated dependencies file for copar_absem.
# This may be replaced when dependencies are built.
