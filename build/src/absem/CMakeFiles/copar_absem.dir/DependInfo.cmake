
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/absem/absexplore.cpp" "src/absem/CMakeFiles/copar_absem.dir/absexplore.cpp.o" "gcc" "src/absem/CMakeFiles/copar_absem.dir/absexplore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/absdom/CMakeFiles/copar_absdom.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/copar_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/copar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/copar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
