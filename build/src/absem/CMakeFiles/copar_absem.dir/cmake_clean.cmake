file(REMOVE_RECURSE
  "CMakeFiles/copar_absem.dir/absexplore.cpp.o"
  "CMakeFiles/copar_absem.dir/absexplore.cpp.o.d"
  "libcopar_absem.a"
  "libcopar_absem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_absem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
