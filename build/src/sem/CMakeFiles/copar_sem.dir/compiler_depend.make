# Empty compiler generated dependencies file for copar_sem.
# This may be replaced when dependencies are built.
