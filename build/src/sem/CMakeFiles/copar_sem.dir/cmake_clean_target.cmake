file(REMOVE_RECURSE
  "libcopar_sem.a"
)
