
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sem/config.cpp" "src/sem/CMakeFiles/copar_sem.dir/config.cpp.o" "gcc" "src/sem/CMakeFiles/copar_sem.dir/config.cpp.o.d"
  "/root/repo/src/sem/eval.cpp" "src/sem/CMakeFiles/copar_sem.dir/eval.cpp.o" "gcc" "src/sem/CMakeFiles/copar_sem.dir/eval.cpp.o.d"
  "/root/repo/src/sem/lower.cpp" "src/sem/CMakeFiles/copar_sem.dir/lower.cpp.o" "gcc" "src/sem/CMakeFiles/copar_sem.dir/lower.cpp.o.d"
  "/root/repo/src/sem/procstring.cpp" "src/sem/CMakeFiles/copar_sem.dir/procstring.cpp.o" "gcc" "src/sem/CMakeFiles/copar_sem.dir/procstring.cpp.o.d"
  "/root/repo/src/sem/program.cpp" "src/sem/CMakeFiles/copar_sem.dir/program.cpp.o" "gcc" "src/sem/CMakeFiles/copar_sem.dir/program.cpp.o.d"
  "/root/repo/src/sem/step.cpp" "src/sem/CMakeFiles/copar_sem.dir/step.cpp.o" "gcc" "src/sem/CMakeFiles/copar_sem.dir/step.cpp.o.d"
  "/root/repo/src/sem/store.cpp" "src/sem/CMakeFiles/copar_sem.dir/store.cpp.o" "gcc" "src/sem/CMakeFiles/copar_sem.dir/store.cpp.o.d"
  "/root/repo/src/sem/value.cpp" "src/sem/CMakeFiles/copar_sem.dir/value.cpp.o" "gcc" "src/sem/CMakeFiles/copar_sem.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/copar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/copar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
