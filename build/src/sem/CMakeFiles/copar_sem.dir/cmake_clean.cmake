file(REMOVE_RECURSE
  "CMakeFiles/copar_sem.dir/config.cpp.o"
  "CMakeFiles/copar_sem.dir/config.cpp.o.d"
  "CMakeFiles/copar_sem.dir/eval.cpp.o"
  "CMakeFiles/copar_sem.dir/eval.cpp.o.d"
  "CMakeFiles/copar_sem.dir/lower.cpp.o"
  "CMakeFiles/copar_sem.dir/lower.cpp.o.d"
  "CMakeFiles/copar_sem.dir/procstring.cpp.o"
  "CMakeFiles/copar_sem.dir/procstring.cpp.o.d"
  "CMakeFiles/copar_sem.dir/program.cpp.o"
  "CMakeFiles/copar_sem.dir/program.cpp.o.d"
  "CMakeFiles/copar_sem.dir/step.cpp.o"
  "CMakeFiles/copar_sem.dir/step.cpp.o.d"
  "CMakeFiles/copar_sem.dir/store.cpp.o"
  "CMakeFiles/copar_sem.dir/store.cpp.o.d"
  "CMakeFiles/copar_sem.dir/value.cpp.o"
  "CMakeFiles/copar_sem.dir/value.cpp.o.d"
  "libcopar_sem.a"
  "libcopar_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
