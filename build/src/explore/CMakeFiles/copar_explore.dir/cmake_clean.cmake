file(REMOVE_RECURSE
  "CMakeFiles/copar_explore.dir/explorer.cpp.o"
  "CMakeFiles/copar_explore.dir/explorer.cpp.o.d"
  "CMakeFiles/copar_explore.dir/staticinfo.cpp.o"
  "CMakeFiles/copar_explore.dir/staticinfo.cpp.o.d"
  "CMakeFiles/copar_explore.dir/stubborn.cpp.o"
  "CMakeFiles/copar_explore.dir/stubborn.cpp.o.d"
  "CMakeFiles/copar_explore.dir/witness.cpp.o"
  "CMakeFiles/copar_explore.dir/witness.cpp.o.d"
  "libcopar_explore.a"
  "libcopar_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
