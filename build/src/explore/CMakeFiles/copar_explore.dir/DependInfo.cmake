
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explore/explorer.cpp" "src/explore/CMakeFiles/copar_explore.dir/explorer.cpp.o" "gcc" "src/explore/CMakeFiles/copar_explore.dir/explorer.cpp.o.d"
  "/root/repo/src/explore/staticinfo.cpp" "src/explore/CMakeFiles/copar_explore.dir/staticinfo.cpp.o" "gcc" "src/explore/CMakeFiles/copar_explore.dir/staticinfo.cpp.o.d"
  "/root/repo/src/explore/stubborn.cpp" "src/explore/CMakeFiles/copar_explore.dir/stubborn.cpp.o" "gcc" "src/explore/CMakeFiles/copar_explore.dir/stubborn.cpp.o.d"
  "/root/repo/src/explore/witness.cpp" "src/explore/CMakeFiles/copar_explore.dir/witness.cpp.o" "gcc" "src/explore/CMakeFiles/copar_explore.dir/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sem/CMakeFiles/copar_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/copar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/copar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
