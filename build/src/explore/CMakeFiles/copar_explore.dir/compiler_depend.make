# Empty compiler generated dependencies file for copar_explore.
# This may be replaced when dependencies are built.
