file(REMOVE_RECURSE
  "libcopar_explore.a"
)
