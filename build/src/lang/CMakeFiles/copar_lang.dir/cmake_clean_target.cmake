file(REMOVE_RECURSE
  "libcopar_lang.a"
)
