file(REMOVE_RECURSE
  "CMakeFiles/copar_lang.dir/ast.cpp.o"
  "CMakeFiles/copar_lang.dir/ast.cpp.o.d"
  "CMakeFiles/copar_lang.dir/lexer.cpp.o"
  "CMakeFiles/copar_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/copar_lang.dir/parser.cpp.o"
  "CMakeFiles/copar_lang.dir/parser.cpp.o.d"
  "CMakeFiles/copar_lang.dir/printer.cpp.o"
  "CMakeFiles/copar_lang.dir/printer.cpp.o.d"
  "CMakeFiles/copar_lang.dir/resolver.cpp.o"
  "CMakeFiles/copar_lang.dir/resolver.cpp.o.d"
  "CMakeFiles/copar_lang.dir/token.cpp.o"
  "CMakeFiles/copar_lang.dir/token.cpp.o.d"
  "libcopar_lang.a"
  "libcopar_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
