# Empty compiler generated dependencies file for copar_lang.
# This may be replaced when dependencies are built.
