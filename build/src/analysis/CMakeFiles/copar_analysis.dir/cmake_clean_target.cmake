file(REMOVE_RECURSE
  "libcopar_analysis.a"
)
