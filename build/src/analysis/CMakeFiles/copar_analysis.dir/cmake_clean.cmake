file(REMOVE_RECURSE
  "CMakeFiles/copar_analysis.dir/anomaly.cpp.o"
  "CMakeFiles/copar_analysis.dir/anomaly.cpp.o.d"
  "CMakeFiles/copar_analysis.dir/common.cpp.o"
  "CMakeFiles/copar_analysis.dir/common.cpp.o.d"
  "CMakeFiles/copar_analysis.dir/deadstore.cpp.o"
  "CMakeFiles/copar_analysis.dir/deadstore.cpp.o.d"
  "CMakeFiles/copar_analysis.dir/depend.cpp.o"
  "CMakeFiles/copar_analysis.dir/depend.cpp.o.d"
  "CMakeFiles/copar_analysis.dir/lifetime.cpp.o"
  "CMakeFiles/copar_analysis.dir/lifetime.cpp.o.d"
  "CMakeFiles/copar_analysis.dir/mhp.cpp.o"
  "CMakeFiles/copar_analysis.dir/mhp.cpp.o.d"
  "CMakeFiles/copar_analysis.dir/sideeffect.cpp.o"
  "CMakeFiles/copar_analysis.dir/sideeffect.cpp.o.d"
  "libcopar_analysis.a"
  "libcopar_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
