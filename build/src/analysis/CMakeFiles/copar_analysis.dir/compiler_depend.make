# Empty compiler generated dependencies file for copar_analysis.
# This may be replaced when dependencies are built.
