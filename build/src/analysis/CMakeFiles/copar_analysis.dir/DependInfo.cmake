
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/anomaly.cpp" "src/analysis/CMakeFiles/copar_analysis.dir/anomaly.cpp.o" "gcc" "src/analysis/CMakeFiles/copar_analysis.dir/anomaly.cpp.o.d"
  "/root/repo/src/analysis/common.cpp" "src/analysis/CMakeFiles/copar_analysis.dir/common.cpp.o" "gcc" "src/analysis/CMakeFiles/copar_analysis.dir/common.cpp.o.d"
  "/root/repo/src/analysis/deadstore.cpp" "src/analysis/CMakeFiles/copar_analysis.dir/deadstore.cpp.o" "gcc" "src/analysis/CMakeFiles/copar_analysis.dir/deadstore.cpp.o.d"
  "/root/repo/src/analysis/depend.cpp" "src/analysis/CMakeFiles/copar_analysis.dir/depend.cpp.o" "gcc" "src/analysis/CMakeFiles/copar_analysis.dir/depend.cpp.o.d"
  "/root/repo/src/analysis/lifetime.cpp" "src/analysis/CMakeFiles/copar_analysis.dir/lifetime.cpp.o" "gcc" "src/analysis/CMakeFiles/copar_analysis.dir/lifetime.cpp.o.d"
  "/root/repo/src/analysis/mhp.cpp" "src/analysis/CMakeFiles/copar_analysis.dir/mhp.cpp.o" "gcc" "src/analysis/CMakeFiles/copar_analysis.dir/mhp.cpp.o.d"
  "/root/repo/src/analysis/sideeffect.cpp" "src/analysis/CMakeFiles/copar_analysis.dir/sideeffect.cpp.o" "gcc" "src/analysis/CMakeFiles/copar_analysis.dir/sideeffect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/absem/CMakeFiles/copar_absem.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/copar_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/absdom/CMakeFiles/copar_absdom.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/copar_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/copar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/copar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
