file(REMOVE_RECURSE
  "CMakeFiles/copar_absdom.dir/galois.cpp.o"
  "CMakeFiles/copar_absdom.dir/galois.cpp.o.d"
  "libcopar_absdom.a"
  "libcopar_absdom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copar_absdom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
