file(REMOVE_RECURSE
  "libcopar_absdom.a"
)
