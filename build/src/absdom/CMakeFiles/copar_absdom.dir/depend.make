# Empty dependencies file for copar_absdom.
# This may be replaced when dependencies are built.
