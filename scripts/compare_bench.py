#!/usr/bin/env python3
"""Diff a freshly recorded BENCH_*.json against the committed record.

    scripts/compare_bench.py FRESH COMMITTED [--threshold 0.15]

Matches benchmark rows by name and compares the throughput metrics
(configs_per_sec, items_per_second, steps_per_sec). Exits 1 if any row's
throughput dropped by more than the threshold (default 15%) — CI runs
this in bench-smoke after the speedup-floor assertion, so a perf
regression fails the build with a per-row report instead of silently
re-recording worse numbers. Improvements beyond the same threshold are
tagged IMPROVED and summarized (still exit 0), so bench-smoke artifacts
show perf wins as loudly as losses.

Honesty guard: when the two records carry different num_cpus the
comparison is skipped (exit 0) with a loud notice — throughput deltas
across different hosts measure the hardware, not the code. Rows present
on only one side are reported but never fail the run (benchmarks come
and go across PRs).
"""

import argparse
import json
import sys

METRICS = ("configs_per_sec", "items_per_second", "steps_per_sec")


def rows_by_name(doc):
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("fresh", help="freshly recorded BENCH_*.json")
    ap.add_argument("committed", help="committed record to compare against")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional throughput drop (default 0.15)")
    args = ap.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.committed) as f:
        committed = json.load(f)

    fresh_cpus = fresh.get("num_cpus")
    committed_cpus = committed.get("num_cpus")
    if fresh_cpus != committed_cpus:
        print(f"skip: num_cpus differ (fresh={fresh_cpus}, committed={committed_cpus}) "
              "-- cross-hardware throughput deltas are not comparable")
        return 0

    fresh_rows = rows_by_name(fresh)
    committed_rows = rows_by_name(committed)

    regressions = []
    improvements = []
    compared = 0
    for name, old in sorted(committed_rows.items()):
        new = fresh_rows.get(name)
        if new is None:
            print(f"note: '{name}' only in committed record")
            continue
        for metric in METRICS:
            if metric not in old or metric not in new or old[metric] <= 0:
                continue
            compared += 1
            delta = (new[metric] - old[metric]) / old[metric]
            bad = delta < -args.threshold
            improved = delta > args.threshold
            tag = "REGRESSION" if bad else ("IMPROVED" if improved else "ok")
            print(f"{tag}: {name} {metric} {old[metric]:,.0f} -> {new[metric]:,.0f} "
                  f"({delta:+.1%})")
            if bad:
                regressions.append((name, metric, delta))
            elif improved:
                improvements.append((name, metric, delta))
    for name in sorted(set(fresh_rows) - set(committed_rows)):
        print(f"note: '{name}' only in fresh record")

    if compared == 0:
        print("error: no comparable throughput metrics found", file=sys.stderr)
        return 2
    if improvements:
        print(f"\n{len(improvements)} throughput improvement(s) beyond "
              f"{args.threshold:.0%}:")
        for name, metric, delta in improvements:
            print(f"  {name} {metric} {delta:+.1%}")
    if regressions:
        print(f"\n{len(regressions)} throughput regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, metric, delta in regressions:
            print(f"  {name} {metric} {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nall {compared} throughput comparisons at or above "
          f"-{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
