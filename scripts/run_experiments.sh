#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md: runs the full test suite,
# each benchmark binary, and a copar-cli smoke pass over the samples,
# collecting human-readable output AND machine-readable JSON under results/.
#
#   scripts/run_experiments.sh [build-dir] [out-dir]
#
# Per benchmark binary bench_X:
#   results/bench_X.txt             console output (google-benchmark table)
#   results/bench_X.json            copar telemetry report (runs, counters,
#                                   per-phase ms, memory)
#   results/bench_X.gbench.json     google-benchmark's own JSON
# Per CLI sample S:
#   results/cli_explore_S.json      `copar-cli explore --json` document
#
# A crashing benchmark or CLI invocation aborts the script with a non-zero
# exit; nothing is swallowed.
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee "$OUT/ctest.txt" | tail -3

echo "== benchmarks =="
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "-- $name"
  if ! "$b" --benchmark_min_time=0.05 --benchmark_color=false \
      --benchmark_out="$OUT/$name.gbench.json" --benchmark_out_format=json \
      --copar_json="$OUT/$name.json" > "$OUT/$name.txt"; then
    echo "!! $name failed (exit $?) — see $OUT/$name.txt" >&2
    exit 1
  fi
  grep -E '^BM_' "$OUT/$name.txt" || echo "   (no BM_ lines in $OUT/$name.txt)"
done

CLI="$BUILD/tools/copar-cli"
if [ -x "$CLI" ]; then
  echo "== cli json reports =="
  for sample in samples/*.cop; do
    name=$(basename "$sample" .cop)
    echo "-- explore $name"
    # Exit 3 means truncated — still a valid report, keep it but warn.
    rc=0
    "$CLI" explore "$sample" --stubborn --json > "$OUT/cli_explore_$name.json" || rc=$?
    if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
      echo "!! copar-cli explore $sample failed (exit $rc)" >&2
      exit 1
    fi
    [ "$rc" -eq 3 ] && echo "   (truncated)"
  done
fi

echo "outputs in $OUT/"
