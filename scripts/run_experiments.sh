#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md: runs the full test suite
# and each benchmark binary, collecting outputs under results/.
set -u
BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee "$OUT/ctest.txt" | tail -3

echo "== benchmarks =="
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "-- $name"
  "$b" --benchmark_min_time=0.05 2>/dev/null | tee "$OUT/$name.txt" | grep -E '^BM_' || true
done

echo "outputs in $OUT/"
