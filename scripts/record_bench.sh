#!/usr/bin/env bash
# Records the perf trajectory: runs bench_parallel, bench_throughput and
# bench_step, then distills their google-benchmark JSON into the committed
# records at the repo root:
#
#   BENCH_parallel.json     per-{workload,threads} rows (configs/sec, steal
#                           and contention counters, visited_bytes) plus a
#                           speedup table normalized to the threads=1 row
#   BENCH_throughput.json   whole-pipeline corpus throughput (items/sec,
#                           configs/sec)
#   BENCH_step.json         successor-generation cost vs store width
#                           (steps/sec per width — the copy-on-write
#                           flatness record)
#
#   scripts/record_bench.sh [build-dir] [min-time] [sample-ms]
#
# The records carry the host's CPU count so single-core runs are honest:
# speedup on 1 CPU measures engine overhead, not scaling. CI re-runs this
# on a multicore runner and asserts the speedup floor (see bench-smoke in
# .github/workflows/ci.yml; scripts/compare_bench.py diffs a fresh record
# against the committed one).
#
# sample-ms (default 50) runs the background gauge sampler during the
# recorded runs, so the committed numbers include the sampler's (tiny)
# overhead — the configuration users actually run with --sample. Pass 0
# to record with the sampler off. Phase timers stay off either way.
set -euo pipefail

BUILD="${1:-build}"
MIN_TIME="${2:-0.2}"
SAMPLE_MS="${3:-50}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for b in bench_parallel bench_throughput bench_step; do
  echo "-- $b"
  SAMPLE_ARGS=()
  if [ "$SAMPLE_MS" != "0" ]; then SAMPLE_ARGS=("--copar_sample=$SAMPLE_MS"); fi
  "$BUILD/bench/$b" --benchmark_min_time="$MIN_TIME" --benchmark_color=false \
    "${SAMPLE_ARGS[@]}" \
    --benchmark_out="$TMP/$b.json" --benchmark_out_format=json >"$TMP/$b.txt"
  grep -E '^BM_' "$TMP/$b.txt" || true
done

python3 - "$TMP" <<'EOF'
import json, os, sys

tmp = sys.argv[1]

def load(name):
    with open(os.path.join(tmp, name)) as f:
        return json.load(f)

def counters(row, keys):
    return {k: row[k] for k in keys if k in row}

# --- BENCH_parallel.json -------------------------------------------------
doc = load("bench_parallel.json")
ctx = doc["context"]
rows = []
for b in doc["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    row = {"name": b["name"], "real_time_ms": round(b["real_time"], 3)}
    row.update(counters(b, [
        "threads", "configs", "terminals", "configs_per_sec",
        "steals", "steal_misses", "frontier_contention",
        "visited_bytes", "visited_configs",
    ]))
    rows.append(row)

# Speedup vs the threads=1 row of the same workload: the name is
# BM_.../<n>/<threads>[/real_time]; strip the suffixes to group.
def workload_of(name):
    if name.endswith("/real_time"):
        name = name[: -len("/real_time")]
    return name.rsplit("/", 1)[0]

base = {}
for r in rows:
    if r.get("threads") == 1 and "configs_per_sec" in r:
        base[workload_of(r["name"])] = r["configs_per_sec"]
speedup = {}
for r in rows:
    prefix = workload_of(r["name"])
    if prefix in base and "configs_per_sec" in r and base[prefix] > 0:
        r["speedup_vs_1thread"] = round(r["configs_per_sec"] / base[prefix], 3)
        speedup.setdefault(prefix, {})[int(r["threads"])] = r["speedup_vs_1thread"]

out = {
    "date": ctx["date"],
    "num_cpus": ctx["num_cpus"],
    "mhz_per_cpu": ctx.get("mhz_per_cpu"),
    "note": ("speedup_vs_1thread is meaningful only when num_cpus >= threads; "
             "on fewer CPUs it measures the parallel engine's overhead."),
    "benchmarks": rows,
    "speedup_vs_1thread": speedup,
}
with open("BENCH_parallel.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("wrote BENCH_parallel.json (%d rows, %d cpus)" % (len(rows), ctx["num_cpus"]))

# --- BENCH_throughput.json -----------------------------------------------
doc = load("bench_throughput.json")
ctx = doc["context"]
rows = []
for b in doc["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    row = {"name": b["name"], "real_time_ms": round(b["real_time"], 3)}
    row.update(counters(b, [
        "items_per_second", "configs_per_sec", "total_configs", "total_abs_states",
    ]))
    rows.append(row)
out = {"date": ctx["date"], "num_cpus": ctx["num_cpus"], "benchmarks": rows}
with open("BENCH_throughput.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("wrote BENCH_throughput.json (%d rows)" % len(rows))

# --- BENCH_step.json -----------------------------------------------------
doc = load("bench_step.json")
ctx = doc["context"]
rows = []
for b in doc["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    row = {"name": b["name"], "real_time_ns": round(b["real_time"], 1)}
    row.update(counters(b, ["steps_per_sec", "store_cells", "store_objects"]))
    rows.append(row)
out = {
    "date": ctx["date"],
    "num_cpus": ctx["num_cpus"],
    "note": ("apply_action cost vs store width; structural sharing means "
             "real_time_ns must stay ~flat as store_cells grows (WideObject) "
             "and grow only by ~1ns/handle in store_objects (ManyObjects)."),
    "benchmarks": rows,
}
with open("BENCH_step.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print("wrote BENCH_step.json (%d rows)" % len(rows))
EOF
