// Access-anomaly detection and parallel-safe constant propagation — the
// §1 motivating examples.
//
//   $ ./examples/race_detective
//
// Part 1: a racy counter and its lock-protected version — the detector
// reports the race in the first and nothing (beyond the benign lock cell
// contention) in the second.
//
// Part 2: the busy-wait flag program a naive sequential constant propagator
// miscompiles; the parallel-aware analysis proves the loop exit reachable
// and the flag constant afterwards.
#include <iostream>

#include "src/analysis/anomaly.h"
#include "src/apps/constprop.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

int main() {
  using namespace copar;

  const std::string racy = R"(
    var x;
    fun main() {
      var t1; var t2;
      cobegin
        { s1: t1 = x; s2: x = t1 + 1; }
      ||
        { s3: t2 = x; s4: x = t2 + 1; }
      coend;
    }
  )";
  const std::string locked = R"(
    var m; var x;
    fun main() {
      var t1; var t2;
      cobegin
        { lock(m); s1: t1 = x; s2: x = t1 + 1; unlock(m); }
      ||
        { lock(m); s3: t2 = x; s4: x = t2 + 1; unlock(m); }
      coend;
    }
  )";

  for (const auto& [name, source] : {std::pair{"racy counter", racy},
                                     std::pair{"locked counter", locked}}) {
    auto program = compile(source);
    explore::ExploreOptions opts;
    opts.record_pairs = true;
    const auto result = explore::explore(*program->lowered, opts);
    const analysis::Anomalies races = analysis::anomalies_from(result);
    std::cout << "=== " << name << " ===\n";
    std::cout << "final x values:";
    for (auto v : result.terminal_int_values("x")) std::cout << ' ' << v;
    std::cout << '\n' << races.report(*program->lowered) << '\n';
  }

  std::cout << "=== busy-wait flag (§1) ===\n" << workload::busy_wait_flag();
  auto program = compile(workload::busy_wait_flag());
  const apps::Constants consts = apps::analyze_constants(*program->lowered);
  std::cout << "loop exit (sAfter) reachable: " << (consts.reachable("sAfter") ? "yes" : "no")
            << '\n';
  if (auto v = consts.global_at("sAfter", "s")) {
    std::cout << "value of s after the wait: " << *v
              << "  (a sequential analysis would call the exit dead code)\n";
  }
  return 0;
}
