// Access-anomaly detection and parallel-safe constant propagation — the
// §1 motivating examples.
//
//   $ ./examples/race_detective
//
// Part 1: a racy counter and its lock-protected version — the detector
// reports the race in the first and nothing (beyond the benign lock cell
// contention) in the second.
//
// Part 2: the busy-wait flag program a naive sequential constant propagator
// miscompiles; the parallel-aware analysis proves the loop exit reachable
// and the flag constant afterwards.
//
// Part 3: the same racy counter through the unified check API (src/check) —
// coded findings with source spans and a witness schedule, rendered as
// human text and as a SARIF 2.1.0 snippet ready for code-scanning upload.
#include <iostream>
#include <sstream>

#include "src/analysis/anomaly.h"
#include "src/apps/constprop.h"
#include "src/check/check.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/support/diagnostics.h"
#include "src/workload/paper_examples.h"

int main() {
  using namespace copar;

  const std::string racy = R"(
    var x;
    fun main() {
      var t1; var t2;
      cobegin
        { s1: t1 = x; s2: x = t1 + 1; }
      ||
        { s3: t2 = x; s4: x = t2 + 1; }
      coend;
    }
  )";
  const std::string locked = R"(
    var m; var x;
    fun main() {
      var t1; var t2;
      cobegin
        { lock(m); s1: t1 = x; s2: x = t1 + 1; unlock(m); }
      ||
        { lock(m); s3: t2 = x; s4: x = t2 + 1; unlock(m); }
      coend;
    }
  )";

  for (const auto& [name, source] : {std::pair{"racy counter", racy},
                                     std::pair{"locked counter", locked}}) {
    auto program = compile(source);
    explore::ExploreOptions opts;
    opts.record_pairs = true;
    const auto result = explore::explore(*program->lowered, opts);
    const analysis::Anomalies races = analysis::anomalies_from(result);
    std::cout << "=== " << name << " ===\n";
    std::cout << "final x values:";
    for (auto v : result.terminal_int_values("x")) std::cout << ' ' << v;
    std::cout << '\n' << races.report(*program->lowered) << '\n';
  }

  std::cout << "=== busy-wait flag (§1) ===\n" << workload::busy_wait_flag();
  auto program = compile(workload::busy_wait_flag());
  const apps::Constants consts = apps::analyze_constants(*program->lowered);
  std::cout << "loop exit (sAfter) reachable: " << (consts.reachable("sAfter") ? "yes" : "no")
            << '\n';
  if (auto v = consts.global_at("sAfter", "s")) {
    std::cout << "value of s after the wait: " << *v
              << "  (a sequential analysis would call the exit dead code)\n";
  }

  // Part 3: the unified check API. One call runs the whole battery — the
  // race resurfaces as a coded finding with spans and a witness schedule.
  std::cout << "\n=== copar check API ===\n";
  DiagnosticEngine engine;
  engine.load_suppressions(racy);
  auto racy_prog = compile(racy);
  const check::CheckSummary summary = check::run_checks(*racy_prog, engine);
  std::cout << "explored " << summary.concrete_configs << " configurations ("
            << (summary.concrete_exhaustive ? "exhaustive" : "truncated") << "), "
            << engine.count(Severity::Error) << " error(s), "
            << engine.count(Severity::Warning) << " warning(s)\n\n";
  engine.render_text(std::cout, racy, "racy_counter.cop");

  std::cout << "\n--- the race finding as SARIF (truncated to the results) ---\n";
  std::ostringstream sarif;
  engine.render_sarif(sarif, "racy_counter.cop", check::catalog());
  // Print from the results array on: the rule table above it is docs/CHECKS.md
  // territory and would drown the snippet.
  const std::string doc = sarif.str();
  const std::size_t results = doc.find("\"results\"");
  std::cout << (results == std::string::npos ? doc : doc.substr(results)) << '\n';
  return 0;
}
