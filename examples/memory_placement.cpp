// Memory placement and deallocation lists — §5.3 + §7's closing example.
//
//   $ ./examples/memory_placement
//
// b1 is touched by both cobegin threads, so it must be allocated at a
// memory level visible to both processors; b2 is private to one thread and
// can be allocated locally. A second program shows compile-time
// deallocation lists: a function-local allocation is freed at the
// function's exit.
#include <iostream>

#include "src/analysis/lifetime.h"
#include "src/apps/dealloc.h"
#include "src/apps/placement.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

int main() {
  using namespace copar;

  {
    const std::string source = workload::placement_b1_b2();
    std::cout << "=== program (§7 placement example) ===\n" << source << '\n';
    auto program = compile(source);
    const analysis::Lifetimes lt = analysis::analyze_lifetimes(*program->lowered);
    std::cout << "=== lifetimes (§5.3) ===\n" << lt.report(*program->lowered) << '\n';
    const apps::Placement placement = apps::place_objects(lt);
    std::cout << "=== placement (§7) ===\n" << placement.report(*program->lowered) << '\n';
  }

  {
    const std::string source = R"(
      var keep;
      fun maker() {
        var tmp;
        sLocal: tmp = alloc(4);
        *tmp = 1;
        sKept: keep = alloc(1);
        *keep = *tmp;
      }
      fun main() { maker(); maker(); }
    )";
    std::cout << "=== program (deallocation lists) ===\n" << source << '\n';
    auto program = compile(source);
    const analysis::Lifetimes lt = analysis::analyze_lifetimes(*program->lowered);
    const apps::DeallocLists dl = apps::dealloc_lists(*program->lowered, lt);
    std::cout << "=== deallocation lists ([Har89] via §5.3) ===\n"
              << dl.report(*program->lowered);
  }
  return 0;
}
