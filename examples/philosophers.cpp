// Dining philosophers: the state-space-reduction demonstration of §2.2.
//
//   $ ./examples/philosophers [n]        (default n = 4)
//
// Explores the n-philosopher program under full interleaving and under
// stubborn sets, prints the configuration counts (the paper's metric, after
// [Val88]: exponential vs. polynomial), and reports the deadlock the
// right-handed protocol contains.
#include <cstdlib>
#include <iostream>

#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/philosophers.h"

int main(int argc, char** argv) {
  using namespace copar;
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;

  for (const bool left_handed : {false, true}) {
    const std::string source = workload::dining_philosophers(n, left_handed);
    auto program = compile(source);

    explore::ExploreOptions full;
    full.max_configs = 5'000'000;
    const auto rf = explore::explore(*program->lowered, full);

    explore::ExploreOptions stub = full;
    stub.reduction = explore::Reduction::Stubborn;
    const auto rs = explore::explore(*program->lowered, stub);

    std::cout << "philosophers n=" << n << (left_handed ? " (one left-handed)" : "") << '\n';
    std::cout << "  full:     " << rf.num_configs << " configurations, "
              << rf.num_transitions << " transitions\n";
    std::cout << "  stubborn: " << rs.num_configs << " configurations, "
              << rs.num_transitions << " transitions\n";
    std::cout << "  reduction: " << (rf.num_configs / std::max<std::uint64_t>(rs.num_configs, 1))
              << "x\n";
    std::cout << "  deadlock: " << (rf.deadlock_found ? "YES (circular wait)" : "no") << '\n';
    std::cout << "  result-configurations preserved: "
              << (rf.terminal_keys() == rs.terminal_keys() ? "yes" : "NO!") << "\n\n";
  }
  return 0;
}
