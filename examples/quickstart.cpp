// Quickstart: compile a cobegin program, explore its state space, and run
// the §5 analyses.
//
//   $ ./examples/quickstart
//
// The program is the paper's Figure 2 (Shasha–Snir): two threads racing on
// x and y. The exploration enumerates every sequentially-consistent
// interleaving; the analyses summarize what a compiler may rely on.
#include <iostream>

#include "src/analysis/anomaly.h"
#include "src/analysis/depend.h"
#include "src/analysis/mhp.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

int main() {
  using namespace copar;

  const std::string source = workload::fig2_shasha_snir();
  std::cout << "=== program ===\n" << source << '\n';

  auto program = compile(source);

  // 1. Concrete exploration, full interleaving, with fact recording.
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  opts.record_accesses = true;
  const explore::ExploreResult result = explore::explore(*program->lowered, opts);

  std::cout << "=== exploration ===\n";
  std::cout << "configurations: " << result.num_configs << '\n';
  std::cout << "transitions:    " << result.num_transitions << '\n';
  std::cout << "terminal configurations: " << result.terminals.size() << '\n';

  std::cout << "final (a,b) outcomes:";
  for (const auto& [key, t] : result.terminals) {
    std::cout << " (" << t.config.global_value("a")->as_int() << ','
              << t.config.global_value("b")->as_int() << ')';
  }
  std::cout << "   [note: (0,0) is absent — sequential consistency]\n\n";

  // 2. Stubborn-set reduction: same results, fewer configurations.
  explore::ExploreOptions stub = opts;
  stub.reduction = explore::Reduction::Stubborn;
  const auto reduced = explore::explore(*program->lowered, stub);
  std::cout << "=== stubborn-set reduction ===\n";
  std::cout << "configurations: " << reduced.num_configs << " (was " << result.num_configs
            << "), identical result-configurations: "
            << (reduced.terminal_keys() == result.terminal_keys() ? "yes" : "NO!") << "\n\n";

  // 3. Analyses.
  const analysis::Mhp mhp = analysis::mhp_from(result);
  std::cout << "=== may-happen-in-parallel ===\n" << mhp.report(*program->lowered) << '\n';

  const analysis::Dependences deps = analysis::dependences_from(result);
  std::cout << "=== data dependences across threads ===\n"
            << deps.report(*program->lowered) << '\n';

  const analysis::Anomalies races = analysis::anomalies_from(result);
  std::cout << "=== access anomalies (races) ===\n" << races.report(*program->lowered);
  return 0;
}
