// Further parallelization of function calls — the paper's Example 15 /
// Figure 8.
//
//   $ ./examples/parallelize_calls
//
// Four sequential calls are analyzed through their side effects; the
// analysis finds dependences exactly on (s1,s4) and (s2,s3), so the
// sequence can be reorganized into two parallel chains.
#include <iostream>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/analysis/sideeffect.h"
#include "src/apps/parallelize.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

int main() {
  using namespace copar;

  const std::string source = workload::example15_calls();
  std::cout << "=== program (Example 15 / Figure 8) ===\n" << source << '\n';

  auto program = compile(source);

  absem::AbsExplorer<absdom::FlatInt> engine(*program->lowered, absem::AbsOptions{});
  const auto abs = engine.run();

  const analysis::SideEffects fx = analysis::side_effects_from(*program->lowered, abs);
  std::cout << "=== side effects (§5.1) ===\n" << fx.report(*program->lowered) << '\n';

  const apps::ParallelSchedule sched =
      apps::parallelize_labeled(*program->lowered, abs, {"s1", "s2", "s3", "s4"});
  std::cout << "=== parallelization (§7, Example 15) ===\n"
            << sched.report(*program->lowered);
  return 0;
}
