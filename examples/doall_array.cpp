// doall: data-parallel loops and clan folding.
//
//   $ ./examples/doall_array
//
// A doall initializes an array (instances independent: one terminal) and a
// doall races on a scalar (lost updates: several terminals). The abstract
// exploration folds any number of instances into one ω clan point —
// McDowell's §6.2 observation — so it terminates even when the bound is a
// run-time value.
#include <iostream>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"

int main() {
  using namespace copar;

  const std::string independent = R"(
    var a; var sum;
    fun main() {
      a = alloc(4);
      doall (i = 0 .. 3) { a[i] = i * i; }
      sum = a[0] + a[1] + a[2] + a[3];
    }
  )";
  const std::string racing = R"(
    var x; var n = 3;
    fun main() {
      doall (i = 1 .. n) { var t = x; x = t + i; }
    }
  )";

  {
    std::cout << "=== independent doall (array init) ===\n" << independent;
    auto program = compile(independent);
    const auto r = explore::explore(*program->lowered, {});
    std::cout << "configurations: " << r.num_configs
              << ", terminal configurations: " << r.terminals.size() << '\n';
    std::cout << "sum = ";
    for (auto v : r.terminal_int_values("sum")) std::cout << v << ' ';
    std::cout << "(deterministic)\n\n";
  }
  {
    std::cout << "=== racing doall (lost updates) ===\n" << racing;
    auto program = compile(racing);
    const auto r = explore::explore(*program->lowered, {});
    std::cout << "terminal x values:";
    for (auto v : r.terminal_int_values("x")) std::cout << ' ' << v;
    std::cout << "  (6 = all updates applied; smaller = lost updates)\n";

    absem::AbsOptions opts;
    opts.folding = absem::Folding::Clan;
    absem::AbsExplorer<absdom::FlatInt> engine(*program->lowered, opts);
    const auto abs = engine.run();
    std::cout << "abstract (clan-folded) states: " << abs.num_states
              << "  — independent of the instance count n\n";
  }
  return 0;
}
