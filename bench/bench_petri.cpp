// Experiment E4' — the [Val88] claim in its native setting: Petri-net
// reachability for n dining philosophers.
//
// Regenerates: "the state space for n dining philosophers is reduced from
// exponential to quadratic in n" — the `markings` counter is exactly
// 2n²−2n+2 for the stubborn runs (deadlock-preserving mode) and grows
// ~×2.4 per philosopher for the full runs. The single circular-wait
// deadlock is found by both.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/petri/models.h"
#include "src/petri/reach.h"

namespace {

void run_net(benchmark::State& state, bool stubborn) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const copar::petri::PetriNet net = copar::petri::dining_philosophers_net(n);
  std::uint64_t markings = 0;
  std::size_t deadlocks = 0;
  for (auto _ : state) {
    copar::petri::ReachOptions opts;
    opts.stubborn = stubborn;
    opts.cycle_proviso = false;  // deadlock detection needs no proviso
    const auto r = copar::petri::explore(net, opts);
    markings = r.num_markings;
    deadlocks = r.deadlocks.size();
    benchmark::DoNotOptimize(r.num_markings);
  }
  state.counters["markings"] = static_cast<double>(markings);
  state.counters["deadlocks"] = static_cast<double>(deadlocks);
}

void BM_PetriPhilosophers_Full(benchmark::State& state) { run_net(state, false); }
void BM_PetriPhilosophers_Stubborn(benchmark::State& state) { run_net(state, true); }

BENCHMARK(BM_PetriPhilosophers_Full)->DenseRange(2, 9)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PetriPhilosophers_Stubborn)->DenseRange(2, 16)->Unit(benchmark::kMillisecond);

void BM_PetriProducers(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const copar::petri::PetriNet net = copar::petri::independent_producers_net(n);
  std::uint64_t full = 0;
  std::uint64_t stub = 0;
  for (auto _ : state) {
    copar::petri::ReachOptions fo;
    full = copar::petri::explore(net, fo).num_markings;
    copar::petri::ReachOptions so;
    so.stubborn = true;
    stub = copar::petri::explore(net, so).num_markings;
    benchmark::DoNotOptimize(full + stub);
  }
  state.counters["markings_full"] = static_cast<double>(full);      // 5^n
  state.counters["markings_stubborn"] = static_cast<double>(stub);  // 4n+1
}
BENCHMARK(BM_PetriProducers)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

}  // namespace

COPAR_BENCH_MAIN()
