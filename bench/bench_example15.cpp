// Experiment E8 (Example 15 / Figure 8): further parallelization of calls.
//
// Regenerates: dependences exactly on (s1,s4) and (s2,s3) through the
// callees' side effects, and the two-chain parallel schedule
// cobegin {s1;s4} || {s2;s3} coend. Counters assert the dependence
// structure; timing covers the abstract exploration + scheduling pipeline.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/analysis/common.h"
#include "src/apps/parallelize.h"
#include "src/apps/shasha_snir.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace {

void BM_Example15_Parallelize(benchmark::State& state) {
  auto program = copar::compile(copar::workload::example15_calls());
  std::size_t chains = 0;
  std::size_t stages = 0;
  std::size_t deps = 0;
  for (auto _ : state) {
    copar::absem::AbsExplorer<copar::absdom::FlatInt> engine(*program->lowered, {});
    const auto abs = engine.run();
    const auto sched =
        copar::apps::parallelize_labeled(*program->lowered, abs, {"s1", "s2", "s3", "s4"});
    chains = sched.chains.size();
    stages = sched.stages.size();
    deps = sched.deps.deps.size();
    benchmark::DoNotOptimize(sched.chains.size());
  }
  state.counters["parallel_chains"] = static_cast<double>(chains);  // paper: 2
  state.counters["stages"] = static_cast<double>(stages);           // 2
  state.counters["dependences"] = static_cast<double>(deps);        // (s1,s4) + (s2,s3)
}
BENCHMARK(BM_Example15_Parallelize);

void BM_Example15_DelaysWhenConcurrent(benchmark::State& state) {
  // The same four calls placed into two concurrent segments: the
  // Shasha–Snir extension finds the delays (see bench_fig2 for the original
  // assignment-level version).
  auto program = copar::compile(R"(
    var A; var B; var u; var v;
    fun f1() { A = 1; }
    fun f2() { u = B; }
    fun f3() { B = 2; }
    fun f4() { v = A; }
    fun main() {
      cobegin
        { s1: f1(); s2: f2(); }
      ||
        { s3: f3(); s4: f4(); }
      coend;
    }
  )");
  std::size_t delays = 0;
  std::size_t conflicts = 0;
  for (auto _ : state) {
    copar::absem::AbsExplorer<copar::absdom::FlatInt> engine(*program->lowered, {});
    const auto abs = engine.run();
    const auto d = copar::apps::analyze_delays(*program->lowered, abs);
    delays = d.minimal_delays.size();
    conflicts = d.conflicts.size();
    benchmark::DoNotOptimize(d.delays.size());
  }
  state.counters["delays_required"] = static_cast<double>(delays);  // both segments: 2
  state.counters["conflict_arcs"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_Example15_DelaysWhenConcurrent);

}  // namespace

COPAR_BENCH_MAIN()
