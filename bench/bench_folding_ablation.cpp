// Experiment E10 ablation (§6.1/§6.2): how the folding mechanisms scale
// compared to concrete exploration as the program's concurrency grows.
//
// Parametric workload: k threads of 2 statements each over one shared
// variable. Concrete states grow with the interleavings; Taylor folding
// (control points + store join) grows much slower; Clan folding is the
// coarsest. Soundness (abstract MHP ⊇ concrete MHP) is asserted by the
// test suite; here we measure the cost side of the trade.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include <sstream>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"

namespace {

std::string k_threads(std::size_t k) {
  std::ostringstream os;
  os << "var x;\n";
  for (std::size_t t = 0; t < k; ++t) os << "var y" << t << ";\n";
  os << "fun main() {\n  cobegin\n";
  for (std::size_t t = 0; t < k; ++t) {
    if (t > 0) os << "  ||\n";
    os << "  { y" << t << " = x; x = x + 1; }\n";
  }
  os << "  coend;\n}\n";
  return os.str();
}

void BM_Ablation_Concrete(benchmark::State& state) {
  auto program = copar::compile(k_threads(static_cast<std::size_t>(state.range(0))));
  std::uint64_t configs = 0;
  for (auto _ : state) {
    copar::explore::ExploreOptions opts;
    opts.max_configs = 10'000'000;
    const auto r = copar::explore::explore(*program->lowered, opts);
    configs = r.num_configs;
    benchmark::DoNotOptimize(r.num_configs);
  }
  state.counters["states"] = static_cast<double>(configs);
}

void abstract_mode(benchmark::State& state, copar::absem::Folding folding) {
  auto program = copar::compile(k_threads(static_cast<std::size_t>(state.range(0))));
  std::uint64_t states = 0;
  for (auto _ : state) {
    copar::absem::AbsOptions opts;
    opts.folding = folding;
    copar::absem::AbsExplorer<copar::absdom::FlatInt> engine(*program->lowered, opts);
    const auto r = engine.run();
    states = r.num_states;
    benchmark::DoNotOptimize(r.num_states);
  }
  state.counters["states"] = static_cast<double>(states);
}

void BM_Ablation_Taylor(benchmark::State& state) {
  abstract_mode(state, copar::absem::Folding::Tree);
}
void BM_Ablation_McDowell(benchmark::State& state) {
  abstract_mode(state, copar::absem::Folding::Clan);
}

BENCHMARK(BM_Ablation_Concrete)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_Taylor)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_McDowell)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace

COPAR_BENCH_MAIN()
