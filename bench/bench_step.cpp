// Successor-generation microbenchmark: apply_action in isolation,
// parameterized by store width.
//
// Pre-COW, every transition deep-copied the whole store, so the cost of a
// one-cell assign grew linearly with the bytes held — the two families here
// pin that this no longer happens:
//
//   BM_Step_WideObject/W    store holds one W-cell heap object; the
//                           measured assign touches one global cell, so its
//                           cost must be flat in W (the untouched object is
//                           shared, never copied).
//   BM_Step_ManyObjects/N   store holds N four-cell heap objects; the
//                           residual per-object cost is one refcounted
//                           handle copy (~ns), visible here as a shallow
//                           slope instead of the old deep-copy cliff.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include <string>

#include "src/sem/program.h"
#include "src/sem/step.h"

namespace {

using copar::sem::ActionInfo;
using copar::sem::Configuration;

/// Advances the single-process program deterministically until the store
/// holds `objects` objects (i.e. setup allocation is done); the next action
/// is then a one-cell scalar assign — the measured transition.
Configuration advance_until_objects(const copar::sem::LoweredProgram& program,
                                    std::size_t objects) {
  Configuration cfg = Configuration::initial(program);
  for (int guard = 0; guard < 2000000; ++guard) {
    if (cfg.store.num_objects() == objects) return cfg;
    const ActionInfo info = copar::sem::action_info(cfg, 0);
    copar::require(info.exists && info.enabled, "bench_step: setup stalled");
    cfg = copar::sem::apply_action(cfg, info);
  }
  throw copar::Error("bench_step: setup did not reach the expected store width");
}

/// Fires the same (already enabled) assign over and over, discarding the
/// successor: pure successor-generation cost at a fixed store width.
void measure_assign(benchmark::State& state, const Configuration& cfg) {
  const ActionInfo info = copar::sem::action_info(cfg, 0);
  copar::require(info.exists && info.enabled &&
                     info.kind == copar::sem::ActionKind::Assign,
                 "bench_step: measured action must be an enabled assign");
  for (auto _ : state) {
    Configuration succ = copar::sem::apply_action(cfg, info);
    benchmark::DoNotOptimize(succ);
  }
  state.counters["store_cells"] = static_cast<double>(cfg.store.num_locations());
  state.counters["store_objects"] = static_cast<double>(cfg.store.num_objects());
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_Step_WideObject(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  const std::string src = "var a; var i = 0;\nfun main() {\n  a = alloc(" +
                          std::to_string(cells) + ");\n  i = 1;\n  i = 2;\n}\n";
  auto program = copar::compile(src);
  // globals + main frame + the wide heap object
  const Configuration cfg = advance_until_objects(*program->lowered, 3);
  measure_assign(state, cfg);
}
BENCHMARK(BM_Step_WideObject)->Arg(4)->Arg(64)->Arg(512)->Arg(4096);

void BM_Step_ManyObjects(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string src = "var a; var i = 0; var n = " + std::to_string(n) +
                          ";\nfun main() {\n  while (i < n) { a = alloc(4); i = i + 1; }\n"
                          "  i = 1;\n  i = 2;\n}\n";
  auto program = copar::compile(src);
  const Configuration cfg = advance_until_objects(*program->lowered, 2 + static_cast<std::size_t>(n));
  measure_assign(state, cfg);
}
BENCHMARK(BM_Step_ManyObjects)->Arg(4)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

COPAR_BENCH_MAIN()
