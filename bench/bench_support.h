// Shared main() for the benchmark binaries: google-benchmark's console
// output plus the copar telemetry JSON report next to it.
//
// Every bench_*.cpp ends with COPAR_BENCH_MAIN() instead of
// BENCHMARK_MAIN(). Behavior:
//
//   * default              — run benchmarks, print the usual console table,
//     then print one JSON document (captured per-benchmark counters and
//     times, memory) to stdout. Phase timers stay OFF so the timed loops
//     are not perturbed.
//   * --copar_json=PATH    — additionally enable the phase timers and
//     write the JSON document to PATH instead of stdout
//     (scripts/run_experiments.sh uses this to collect results/*.json).
//   * --copar_sample=MS    — run the background gauge sampler every MS
//     milliseconds for the whole benchmark run and include the bounded
//     "timeline" in the JSON document. Exercises the sampler against the
//     benchmark workloads; the live-gauge writes are the only overhead
//     the timed loops see.
#pragma once

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/explore/report.h"
#include "src/support/json.h"
#include "src/support/telemetry.h"

namespace copar::benchsupport {

struct CapturedRun {
  std::string name;
  double real_time_ns = 0;
  std::uint64_t iterations = 0;
  std::map<std::string, double> counters;
};

/// Console output as usual, but every run is also captured for the JSON
/// report. Color only when stdout is a terminal (an explicit reporter
/// bypasses google-benchmark's own --benchmark_color handling, and color
/// codes would pollute redirected results/*.txt artifacts).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  CapturingReporter()
      : benchmark::ConsoleReporter(isatty(fileno(stdout)) ? OO_ColorTabular : OO_Tabular) {}

  std::vector<CapturedRun> captured;

  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& r : report) {
      if (r.error_occurred) continue;
      CapturedRun c;
      c.name = r.benchmark_name();
      c.real_time_ns = r.GetAdjustedRealTime();
      c.iterations = static_cast<std::uint64_t>(r.iterations);
      for (const auto& [k, v] : r.counters) c.counters[k] = v.value;
      captured.push_back(std::move(c));
    }
  }
};

inline void write_report(std::ostream& os, const char* binary,
                         const std::vector<CapturedRun>& runs) {
  support::JsonWriter w(os);
  w.begin_object();
  w.key("tool");
  w.value("copar-bench");
  w.key("binary");
  w.value(binary);
  w.key("runs");
  w.begin_array();
  for (const CapturedRun& r : runs) {
    w.begin_object();
    w.key("name");
    w.value(r.name);
    w.key("real_time_ns");
    w.value(r.real_time_ns);
    w.key("iterations");
    w.value(r.iterations);
    w.key("counters");
    w.begin_object();
    for (const auto& [k, v] : r.counters) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("phases_ms");
  telemetry::write_phases_ms(w);
  w.key("phase_counts");
  telemetry::write_phase_counts(w);
  w.key("memory");
  w.begin_object();
  w.key("peak_rss_bytes");
  w.value(telemetry::peak_rss_bytes());
  w.end_object();
  if (!telemetry::Telemetry::global().timeline().empty()) {
    w.key("timeline");
    telemetry::Telemetry::global().write_timeline_json(w);
  }
  w.end_object();
  os << '\n';
}

inline int run_main(int argc, char** argv) {
  std::string json_path;
  double sample_ms = 0;
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    constexpr std::string_view kFlag = "--copar_json=";
    constexpr std::string_view kSample = "--copar_sample=";
    if (a.rfind(kFlag, 0) == 0) {
      json_path = a.substr(kFlag.size());
    } else if (a.rfind(kSample, 0) == 0) {
      sample_ms = std::strtod(std::string(a.substr(kSample.size())).c_str(), nullptr);
    } else {
      kept.push_back(argv[i]);
    }
  }
  int kept_argc = static_cast<int>(kept.size());

  // Phase timers only for explicit collection runs: the default invocation
  // measures the engines un-instrumented.
  if (!json_path.empty()) telemetry::Telemetry::global().enable_metrics();
  if (sample_ms > 0) telemetry::Telemetry::global().start_sampler(sample_ms);

  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  telemetry::Telemetry::global().stop_sampler();

  const char* binary = argc > 0 ? argv[0] : "bench";
  if (json_path.empty()) {
    write_report(std::cout, binary, reporter.captured);
  } else {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << '\n';
      return 1;
    }
    write_report(out, binary, reporter.captured);
  }
  return 0;
}

}  // namespace copar::benchsupport

#define COPAR_BENCH_MAIN()                                            \
  int main(int argc, char** argv) {                                   \
    return copar::benchsupport::run_main(argc, argv);                 \
  }
