// Experiment E9 (§7 closing example): memory placement of b1 and b2.
//
// Regenerates: "b1 should be allocated at a level of memory visible to both
// processors (since b1 is accessed by both threads) while b2 can be
// allocated locally". Counters: b1_shared = 1, b2_local = 1.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/analysis/lifetime.h"
#include "src/apps/dealloc.h"
#include "src/apps/placement.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace {

void BM_Placement_B1B2(benchmark::State& state) {
  auto program = copar::compile(copar::workload::placement_b1_b2());
  bool b1_shared = false;
  bool b2_local = false;
  for (auto _ : state) {
    const auto placement = copar::apps::place_objects(*program->lowered);
    b1_shared =
        placement.level_of(*program->lowered, "sB1") == copar::apps::MemoryLevel::Shared;
    b2_local = placement.level_of(*program->lowered, "sB2") ==
               copar::apps::MemoryLevel::ThreadLocal;
    benchmark::DoNotOptimize(placement.per_site.size());
  }
  state.counters["b1_shared"] = b1_shared ? 1 : 0;
  state.counters["b2_local"] = b2_local ? 1 : 0;
}
BENCHMARK(BM_Placement_B1B2);

void BM_Placement_DeallocLists(benchmark::State& state) {
  auto program = copar::compile(R"(
    var keep;
    fun maker() {
      var tmp;
      sLocal: tmp = alloc(4);
      *tmp = 1;
      sKept: keep = alloc(1);
    }
    fun main() { maker(); }
  )");
  std::size_t freeable = 0;
  for (auto _ : state) {
    const auto lifetimes = copar::analysis::analyze_lifetimes(*program->lowered);
    const auto lists = copar::apps::dealloc_lists(*program->lowered, lifetimes);
    freeable = 0;
    for (const auto& [fn, sites] : lists.per_function) freeable += sites.size();
    benchmark::DoNotOptimize(freeable);
  }
  state.counters["freeable_sites"] = static_cast<double>(freeable);  // sLocal only: 1
}
BENCHMARK(BM_Placement_DeallocLists);

}  // namespace

COPAR_BENCH_MAIN()
