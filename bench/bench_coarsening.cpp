// Experiment E5 (Observation 5): virtual coarsening.
//
// Regenerates: combining atomic actions with at most one critical reference
// shrinks the state space further, on top of stubborn sets, without
// changing the result configurations. The workload is local-computation-
// heavy threads with occasional shared accesses — the shape the paper says
// benefits ("accesses to shared variables do not occur frequently").
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include <sstream>

#include "src/explore/explorer.h"
#include "src/sem/program.h"

namespace {

/// k threads, each doing `locals` local steps, one shared update, and more
/// local steps.
std::string local_heavy(std::size_t threads, std::size_t locals) {
  std::ostringstream os;
  os << "var x;\n";
  os << "fun main() {\n";
  for (std::size_t t = 0; t < threads; ++t) {
    for (std::size_t i = 0; i < locals; ++i) os << "  var l" << t << '_' << i << ";\n";
  }
  os << "  cobegin\n";
  for (std::size_t t = 0; t < threads; ++t) {
    if (t > 0) os << "  ||\n";
    os << "  {\n";
    for (std::size_t i = 0; i < locals; ++i) {
      os << "    l" << t << '_' << i << " = " << i << " + " << t << ";\n";
    }
    os << "    x = x + l" << t << "_0;\n";
    for (std::size_t i = 0; i < locals; ++i) {
      os << "    l" << t << '_' << i << " = l" << t << '_' << i << " * 2;\n";
    }
    os << "  }\n";
  }
  os << "  coend;\n}\n";
  return os.str();
}

void run_mode(benchmark::State& state, bool stubborn, bool coarsen) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  auto program = copar::compile(local_heavy(threads, 3));
  std::uint64_t configs = 0;
  for (auto _ : state) {
    copar::explore::ExploreOptions opts;
    opts.reduction =
        stubborn ? copar::explore::Reduction::Stubborn : copar::explore::Reduction::Full;
    opts.coarsen = coarsen;
    opts.max_configs = 10'000'000;
    const auto r = copar::explore::explore(*program->lowered, opts);
    configs = r.num_configs;
    benchmark::DoNotOptimize(r.num_configs);
  }
  state.counters["configs"] = static_cast<double>(configs);
}

void BM_Coarsen_FullBaseline(benchmark::State& state) { run_mode(state, false, false); }
void BM_Coarsen_CoarsenOnly(benchmark::State& state) { run_mode(state, false, true); }
void BM_Coarsen_StubbornOnly(benchmark::State& state) { run_mode(state, true, false); }
void BM_Coarsen_StubbornPlusCoarsen(benchmark::State& state) { run_mode(state, true, true); }

BENCHMARK(BM_Coarsen_FullBaseline)->DenseRange(2, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Coarsen_CoarsenOnly)->DenseRange(2, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Coarsen_StubbornOnly)->DenseRange(2, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Coarsen_StubbornPlusCoarsen)->DenseRange(2, 3)->Unit(benchmark::kMillisecond);

}  // namespace

COPAR_BENCH_MAIN()
