// Experiment E2/E10 (Figure 3 + §6): folding configurations by abstraction.
//
// Regenerates: the concrete configuration space vs. the folded spaces of
// the two abstractions the paper identifies — Taylor's concurrency states
// (Tree folding) and McDowell's clans (Clan folding). Folding merges the
// "dangling links" of Figure 3; the counters report how many states each
// level keeps.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace {

// A Figure-3-shaped workload scaled enough for folding to pay: four threads
// racing on one shared variable. Concrete configurations split on the data
// values (the "dangling links"); the folded semantics merges configurations
// with the same control points, joining their stores.
const char* kFoldingProgram = R"(
  var x;
  var y0; var y1; var y2; var y3;
  fun main() {
    cobegin
      { y0 = x; x = x + 1; }
    ||
      { y1 = x; x = x + 2; }
    ||
      { y2 = x; x = x + 3; }
    ||
      { y3 = x; x = x + 4; }
    coend;
  }
)";

void BM_Fig3_Concrete(benchmark::State& state) {
  auto program = copar::compile(kFoldingProgram);
  std::uint64_t configs = 0;
  for (auto _ : state) {
    const auto r = copar::explore::explore(*program->lowered, {});
    configs = r.num_configs;
    benchmark::DoNotOptimize(r.num_configs);
  }
  state.counters["states"] = static_cast<double>(configs);
}
BENCHMARK(BM_Fig3_Concrete);

void abstract_mode(benchmark::State& state, copar::absem::Folding folding) {
  auto program = copar::compile(kFoldingProgram);
  std::uint64_t states = 0;
  std::uint64_t mhp = 0;
  for (auto _ : state) {
    copar::absem::AbsOptions opts;
    opts.folding = folding;
    copar::absem::AbsExplorer<copar::absdom::FlatInt> engine(*program->lowered, opts);
    const auto r = engine.run();
    states = r.num_states;
    mhp = r.mhp.size();
    benchmark::DoNotOptimize(r.num_states);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["mhp_pairs"] = static_cast<double>(mhp);
}

void BM_Fig3_TaylorFolding(benchmark::State& state) {
  abstract_mode(state, copar::absem::Folding::Tree);
}
void BM_Fig3_McDowellFolding(benchmark::State& state) {
  abstract_mode(state, copar::absem::Folding::Clan);
}
BENCHMARK(BM_Fig3_TaylorFolding);
BENCHMARK(BM_Fig3_McDowellFolding);

}  // namespace

COPAR_BENCH_MAIN()
