// Experiment E3 (Figure 5): locality-driven stubborn-set reduction.
//
// Regenerates: "the configuration space can be greatly reduced ... which
// contains only 13 configurations, while producing exactly the same set of
// result-configurations". Counters: configs_full = 16, configs_stubborn =
// 13, results_preserved = 1.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace {

void BM_Fig5(benchmark::State& state) {
  auto program = copar::compile(copar::workload::fig5_locality());
  std::uint64_t full_configs = 0;
  std::uint64_t stub_configs = 0;
  bool preserved = false;
  for (auto _ : state) {
    copar::explore::ExploreOptions full;
    const auto rf = copar::explore::explore(*program->lowered, full);
    copar::explore::ExploreOptions stub;
    stub.reduction = copar::explore::Reduction::Stubborn;
    const auto rs = copar::explore::explore(*program->lowered, stub);
    full_configs = rf.num_configs;
    stub_configs = rs.num_configs;
    preserved = rf.terminal_keys() == rs.terminal_keys();
    benchmark::DoNotOptimize(preserved);
  }
  state.counters["configs_full"] = static_cast<double>(full_configs);
  state.counters["configs_stubborn"] = static_cast<double>(stub_configs);  // paper: 13
  state.counters["results_preserved"] = preserved ? 1 : 0;
}
BENCHMARK(BM_Fig5);

}  // namespace

COPAR_BENCH_MAIN()
