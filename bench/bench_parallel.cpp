// Parallel frontier engine scaling and visited-set footprint.
//
// Two questions:
//
//   * Does the sharded-frontier engine scale with worker threads? Compare
//     wall-clock across --threads {1,2,4} on the same workload (threads=1
//     is the sequential DFS engine, the natural baseline). On a single-core
//     host the parallel engine can only show its overhead; the speedup
//     claim needs a multicore machine.
//
//   * How much dedup memory does the fingerprint table save over the exact
//     string-keyed visited set? The `visited_bytes` counter reports both
//     sides on identical explorations.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"
#include "src/workload/philosophers.h"

namespace {

void explore_threads(benchmark::State& state, copar::explore::Reduction reduction) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  auto program = copar::compile(copar::workload::dining_philosophers(n));
  std::uint64_t configs = 0;
  std::uint64_t terminals = 0;
  std::uint64_t visited_bytes = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_misses = 0;
  std::uint64_t contention = 0;
  std::uint64_t total_configs = 0;
  for (auto _ : state) {
    copar::explore::ExploreOptions opts;
    opts.reduction = reduction;
    opts.threads = threads;
    opts.max_configs = 20'000'000;
    const auto r = copar::explore::explore(*program->lowered, opts);
    configs = r.num_configs;
    terminals = r.terminals.size();
    total_configs += r.num_configs;
    visited_bytes = r.stats.gauge("visited_bytes");
    const auto& counters = r.stats.all();
    const auto get = [&](const char* key) -> std::uint64_t {
      const auto it = counters.find(key);
      return it == counters.end() ? 0 : it->second;
    };
    steals = get("steals");
    steal_misses = get("steal_misses");
    contention = get("frontier_contention");
    benchmark::DoNotOptimize(r.num_configs);
  }
  state.counters["configs"] = static_cast<double>(configs);
  state.counters["terminals"] = static_cast<double>(terminals);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["visited_bytes"] = static_cast<double>(visited_bytes);
  // Normalized throughput: the headline number for the scaling record
  // (speedup at T threads = configs_per_sec[T] / configs_per_sec[1]).
  state.counters["configs_per_sec"] =
      benchmark::Counter(static_cast<double>(total_configs), benchmark::Counter::kIsRate);
  // Work-stealing health (last run): steals that moved items, empty-probe
  // misses, and lock collisions on the per-worker deques.
  state.counters["steals"] = static_cast<double>(steals);
  state.counters["steal_misses"] = static_cast<double>(steal_misses);
  state.counters["frontier_contention"] = static_cast<double>(contention);
}

void BM_Parallel_Philosophers_Full(benchmark::State& state) {
  explore_threads(state, copar::explore::Reduction::Full);
}
void BM_Parallel_Philosophers_Stubborn(benchmark::State& state) {
  explore_threads(state, copar::explore::Reduction::Stubborn);
}

// Args: {philosophers n, worker threads}. threads=1 is the sequential
// engine; the parallel rows show scaling (or, single-core, its overhead).
// UseRealTime: the workers run on their own threads, so the bench thread's
// CPU time says nothing — wall clock is the quantity scaling is about.
BENCHMARK(BM_Parallel_Philosophers_Full)
    ->Args({5, 1})
    ->Args({5, 2})
    ->Args({5, 4})
    ->Args({6, 1})
    ->Args({6, 2})
    ->Args({6, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Parallel_Philosophers_Stubborn)
    ->Args({7, 1})
    ->Args({7, 2})
    ->Args({7, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Visited-set footprint: fingerprint table vs exact string keys on the
// identical exploration (fig5 locality workload).
void explore_fig5_memory(benchmark::State& state, bool exact_keys) {
  auto program = copar::compile(copar::workload::fig5_locality());
  std::uint64_t visited_bytes = 0;
  std::uint64_t visited_configs = 0;
  for (auto _ : state) {
    copar::explore::ExploreOptions opts;
    opts.exact_keys = exact_keys;
    const auto r = copar::explore::explore(*program->lowered, opts);
    visited_bytes = r.stats.gauge("visited_bytes");
    visited_configs = r.stats.gauge("visited_configs");
    benchmark::DoNotOptimize(r.num_configs);
  }
  state.counters["visited_bytes"] = static_cast<double>(visited_bytes);
  state.counters["visited_configs"] = static_cast<double>(visited_configs);
}

void BM_VisitedSet_Fingerprint(benchmark::State& state) { explore_fig5_memory(state, false); }
void BM_VisitedSet_ExactKeys(benchmark::State& state) { explore_fig5_memory(state, true); }

BENCHMARK(BM_VisitedSet_Fingerprint)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VisitedSet_ExactKeys)->Unit(benchmark::kMillisecond);

}  // namespace

COPAR_BENCH_MAIN()
