// Compiler-throughput benchmark: the whole pipeline (parse + resolve +
// lower + explore/analyze) over the random-program corpus — the "cost of
// the analysis inside a compiler" view, complementing the per-experiment
// state-count benches.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include <vector>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/random_programs.h"

namespace {

std::vector<std::string> corpus(std::uint64_t base, std::size_t n) {
  std::vector<std::string> out;
  for (std::uint64_t s = base; s < base + n; ++s) {
    out.push_back(copar::workload::random_program(s));
  }
  return out;
}

void BM_Throughput_CompileOnly(benchmark::State& state) {
  const auto sources = corpus(1, 20);
  std::size_t procs = 0;
  for (auto _ : state) {
    for (const std::string& src : sources) {
      auto program = copar::compile(src);
      procs += program->lowered->procs().size();
      benchmark::DoNotOptimize(program->lowered->procs().size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * sources.size()));
}
BENCHMARK(BM_Throughput_CompileOnly)->Unit(benchmark::kMillisecond);

void BM_Throughput_FullExploration(benchmark::State& state) {
  const auto sources = corpus(1, 20);
  std::uint64_t total_configs = 0;
  for (auto _ : state) {
    total_configs = 0;
    for (const std::string& src : sources) {
      auto program = copar::compile(src);
      const auto r = copar::explore::explore(*program->lowered, {});
      total_configs += r.num_configs;
      benchmark::DoNotOptimize(r.num_configs);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * sources.size()));
  state.counters["total_configs"] = static_cast<double>(total_configs);
  state.counters["configs_per_sec"] = benchmark::Counter(
      static_cast<double>(total_configs * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Throughput_FullExploration)->Unit(benchmark::kMillisecond);

void BM_Throughput_StubbornCoarsened(benchmark::State& state) {
  const auto sources = corpus(1, 20);
  std::uint64_t total_configs = 0;
  for (auto _ : state) {
    total_configs = 0;
    for (const std::string& src : sources) {
      auto program = copar::compile(src);
      copar::explore::ExploreOptions opts;
      opts.reduction = copar::explore::Reduction::Stubborn;
      opts.coarsen = true;
      const auto r = copar::explore::explore(*program->lowered, opts);
      total_configs += r.num_configs;
      benchmark::DoNotOptimize(r.num_configs);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * sources.size()));
  state.counters["total_configs"] = static_cast<double>(total_configs);
  state.counters["configs_per_sec"] = benchmark::Counter(
      static_cast<double>(total_configs * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Throughput_StubbornCoarsened)->Unit(benchmark::kMillisecond);

void BM_Throughput_AbstractAnalysis(benchmark::State& state) {
  const auto sources = corpus(1, 20);
  std::uint64_t total_states = 0;
  for (auto _ : state) {
    total_states = 0;
    for (const std::string& src : sources) {
      auto program = copar::compile(src);
      copar::absem::AbsExplorer<copar::absdom::FlatInt> engine(*program->lowered, {});
      const auto r = engine.run();
      total_states += r.num_states;
      benchmark::DoNotOptimize(r.num_states);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * sources.size()));
  state.counters["total_abs_states"] = static_cast<double>(total_states);
}
BENCHMARK(BM_Throughput_AbstractAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

COPAR_BENCH_MAIN()
