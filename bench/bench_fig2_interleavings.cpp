// Experiment E1 (Figure 2 / Example 1): the Shasha–Snir program.
//
// Regenerates: the set of sequentially-consistent outcomes {(0,1),(1,0),
// (1,1)} — (0,0) absent — and the state-space size of the full
// interleaving semantics. Counters report the paper's metric
// (configurations); time per exploration is google-benchmark's.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace {

void BM_Fig2_FullExploration(benchmark::State& state) {
  auto program = copar::compile(copar::workload::fig2_shasha_snir());
  std::uint64_t configs = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminals = 0;
  bool outcome_00_seen = false;
  for (auto _ : state) {
    copar::explore::ExploreOptions opts;
    const auto r = copar::explore::explore(*program->lowered, opts);
    configs = r.num_configs;
    transitions = r.num_transitions;
    terminals = r.terminals.size();
    for (const auto& [key, t] : r.terminals) {
      if (t.config.global_value("a")->as_int() == 0 &&
          t.config.global_value("b")->as_int() == 0) {
        outcome_00_seen = true;
      }
    }
    benchmark::DoNotOptimize(r.num_configs);
  }
  state.counters["configs"] = static_cast<double>(configs);
  state.counters["transitions"] = static_cast<double>(transitions);
  state.counters["terminal_outcomes"] = static_cast<double>(terminals);
  state.counters["illegal_outcome_00"] = outcome_00_seen ? 1 : 0;  // must stay 0
}
BENCHMARK(BM_Fig2_FullExploration);

void BM_Fig2_StubbornExploration(benchmark::State& state) {
  auto program = copar::compile(copar::workload::fig2_shasha_snir());
  std::uint64_t configs = 0;
  for (auto _ : state) {
    copar::explore::ExploreOptions opts;
    opts.reduction = copar::explore::Reduction::Stubborn;
    const auto r = copar::explore::explore(*program->lowered, opts);
    configs = r.num_configs;
    benchmark::DoNotOptimize(r.num_configs);
  }
  // Everything conflicts in this program: no reduction is expected — the
  // stubborn machinery must not LOSE anything either.
  state.counters["configs"] = static_cast<double>(configs);
}
BENCHMARK(BM_Fig2_StubbornExploration);

}  // namespace

COPAR_BENCH_MAIN()
