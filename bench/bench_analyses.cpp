// Experiment E7 (§5.1–5.3): the client analyses end to end.
//
// Regenerates: side effects, MHP, dependences, and lifetimes on the
// producer/consumer workload (lock-protected handshake) and on the busy-
// wait flag program, with counters for the facts the paper derives.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/analysis/anomaly.h"
#include "src/analysis/depend.h"
#include "src/analysis/lifetime.h"
#include "src/analysis/mhp.h"
#include "src/analysis/sideeffect.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace {

void BM_Analyses_ConcretePipeline(benchmark::State& state) {
  auto program = copar::compile(copar::workload::producer_consumer());
  std::uint64_t configs = 0;
  std::size_t mhp = 0;
  std::size_t deps = 0;
  for (auto _ : state) {
    copar::explore::ExploreOptions opts;
    opts.record_pairs = true;
    opts.record_accesses = true;
    opts.record_lifetimes = true;
    const auto r = copar::explore::explore(*program->lowered, opts);
    configs = r.num_configs;
    mhp = copar::analysis::mhp_from(r).pairs.size();
    deps = copar::analysis::dependences_from(r).deps.size();
    benchmark::DoNotOptimize(r.num_configs);
  }
  state.counters["configs"] = static_cast<double>(configs);
  state.counters["mhp_pairs"] = static_cast<double>(mhp);
  state.counters["dependences"] = static_cast<double>(deps);
}
BENCHMARK(BM_Analyses_ConcretePipeline)->Unit(benchmark::kMillisecond);

void BM_Analyses_AbstractPipeline(benchmark::State& state) {
  auto program = copar::compile(copar::workload::producer_consumer());
  std::uint64_t states = 0;
  std::size_t mhp = 0;
  std::size_t effect_procs = 0;
  for (auto _ : state) {
    copar::absem::AbsExplorer<copar::absdom::FlatInt> engine(*program->lowered, {});
    const auto abs = engine.run();
    states = abs.num_states;
    mhp = abs.mhp.size();
    effect_procs = copar::analysis::side_effects_from(*program->lowered, abs).per_proc.size();
    benchmark::DoNotOptimize(abs.num_states);
  }
  state.counters["abs_states"] = static_cast<double>(states);
  state.counters["abs_mhp_pairs"] = static_cast<double>(mhp);
  state.counters["procs_with_effects"] = static_cast<double>(effect_procs);
}
BENCHMARK(BM_Analyses_AbstractPipeline)->Unit(benchmark::kMillisecond);

void BM_Analyses_BusyWaitConstProp(benchmark::State& state) {
  auto program = copar::compile(copar::workload::busy_wait_flag());
  std::uint64_t states = 0;
  for (auto _ : state) {
    copar::absem::AbsExplorer<copar::absdom::FlatInt> engine(*program->lowered, {});
    const auto abs = engine.run();
    states = abs.num_states;
    benchmark::DoNotOptimize(abs.num_states);
  }
  state.counters["abs_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Analyses_BusyWaitConstProp);

}  // namespace

COPAR_BENCH_MAIN()
