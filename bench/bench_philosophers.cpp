// Experiment E4 (§2.2 scaling claim, after [Val88]): dining philosophers.
//
// Regenerates: full interleaving exploration grows exponentially in n while
// stubborn-set exploration grows polynomially (Valmari reports quadratic
// for the Petri-net encoding). Run both and compare the `configs` counter
// across n; the crossover in wall-clock time follows the state counts.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/philosophers.h"

namespace {

void explore_philosophers(benchmark::State& state, copar::explore::Reduction reduction,
                          bool sleep_sets = false) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto program = copar::compile(copar::workload::dining_philosophers(n));
  std::uint64_t configs = 0;
  std::uint64_t transitions = 0;
  bool deadlock = false;
  for (auto _ : state) {
    copar::explore::ExploreOptions opts;
    opts.reduction = reduction;
    opts.sleep_sets = sleep_sets;
    opts.max_configs = 20'000'000;
    const auto r = copar::explore::explore(*program->lowered, opts);
    configs = r.num_configs;
    transitions = r.num_transitions;
    deadlock = r.deadlock_found;
    benchmark::DoNotOptimize(r.num_configs);
  }
  state.counters["configs"] = static_cast<double>(configs);
  state.counters["transitions"] = static_cast<double>(transitions);
  state.counters["deadlock"] = deadlock ? 1 : 0;  // circular wait: always 1
}

void BM_Philosophers_Full(benchmark::State& state) {
  explore_philosophers(state, copar::explore::Reduction::Full);
}
void BM_Philosophers_Stubborn(benchmark::State& state) {
  explore_philosophers(state, copar::explore::Reduction::Stubborn);
}
void BM_Philosophers_SleepOnly(benchmark::State& state) {
  explore_philosophers(state, copar::explore::Reduction::Full, /*sleep_sets=*/true);
}
void BM_Philosophers_StubbornSleep(benchmark::State& state) {
  explore_philosophers(state, copar::explore::Reduction::Stubborn, /*sleep_sets=*/true);
}

// Full exploration is exponential: keep n modest.
BENCHMARK(BM_Philosophers_Full)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);
// Stubborn exploration scales much further.
BENCHMARK(BM_Philosophers_Stubborn)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);
// Sleep sets cut fired transitions (edges) on top of either mode.
BENCHMARK(BM_Philosophers_SleepOnly)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Philosophers_StubbornSleep)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);

}  // namespace

COPAR_BENCH_MAIN()
