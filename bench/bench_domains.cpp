// Abstract-domain ablation: flat constants vs. intervals vs. signs.
//
// The paper's framework treats the value domain as a plug-in choice ("any
// of them automatically suggests a different folding mechanism"). This
// bench runs the same abstract exploration under the three shipped numeric
// domains and reports cost (states, time) and a precision proxy: whether
// the loop-bound assertion can be discharged (no may-fail report).
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absdom/sign.h"
#include "src/absem/absexplore.h"
#include "src/sem/program.h"

namespace {

// A bounded-loop workload with an assertion each domain judges differently:
//   flat:     i becomes ⊤ after the join — assert unprovable;
//   interval: i ∈ [0,10] at exit (widening + the branch) — provable ≥ 0;
//   sign:     i ∈ {0,+} — provable ≥ 0.
const char* kLoopProgram = R"(
  var total;
  fun main() {
    var i = 0;
    while (i < 10) {
      total = total + i;
      i = i + 1;
    }
    sCheck: assert(i >= 0);
  }
)";

template <typename N>
void run_domain(benchmark::State& state) {
  auto program = copar::compile(kLoopProgram);
  std::uint64_t states = 0;
  std::size_t may_fail = 0;
  for (auto _ : state) {
    copar::absem::AbsExplorer<N> engine(*program->lowered, {});
    const auto r = engine.run();
    states = r.num_states;
    may_fail = r.may_fail_asserts.size();
    benchmark::DoNotOptimize(r.num_states);
  }
  state.counters["abs_states"] = static_cast<double>(states);
  state.counters["unproved_asserts"] = static_cast<double>(may_fail);
}

void BM_Domain_Flat(benchmark::State& state) { run_domain<copar::absdom::FlatInt>(state); }
void BM_Domain_Interval(benchmark::State& state) {
  run_domain<copar::absdom::Interval>(state);
}
void BM_Domain_Sign(benchmark::State& state) { run_domain<copar::absdom::Sign>(state); }

BENCHMARK(BM_Domain_Flat);
BENCHMARK(BM_Domain_Interval);
BENCHMARK(BM_Domain_Sign);

// The same three domains on a parallel workload (doall with races), to show
// the domain choice is orthogonal to the concurrency machinery.
const char* kParallelProgram = R"(
  var x; var n = 4;
  fun main() {
    doall (i = 1 .. n) { x = x + i; }
    sAfter: assert(x >= 0);
  }
)";

template <typename N>
void run_parallel(benchmark::State& state) {
  auto program = copar::compile(kParallelProgram);
  std::uint64_t states = 0;
  for (auto _ : state) {
    copar::absem::AbsExplorer<N> engine(*program->lowered, {});
    const auto r = engine.run();
    states = r.num_states;
    benchmark::DoNotOptimize(r.num_states);
  }
  state.counters["abs_states"] = static_cast<double>(states);
}

void BM_DomainParallel_Flat(benchmark::State& state) {
  run_parallel<copar::absdom::FlatInt>(state);
}
void BM_DomainParallel_Interval(benchmark::State& state) {
  run_parallel<copar::absdom::Interval>(state);
}
void BM_DomainParallel_Sign(benchmark::State& state) {
  run_parallel<copar::absdom::Sign>(state);
}

BENCHMARK(BM_DomainParallel_Flat);
BENCHMARK(BM_DomainParallel_Interval);
BENCHMARK(BM_DomainParallel_Sign);

}  // namespace

COPAR_BENCH_MAIN()

// Context-sensitivity ablation: abstract procedure strings at k = 0/1/2 on
// a two-call-site identity function — precision (discharged asserts) vs
// cost (abstract states).
#include "src/absdom/parity.h"

namespace {

const char* kContextProgram = R"(
  var a; var b;
  fun id(x) { return x; }
  fun outer(y) { var t; t = id(y); return t; }
  fun main() {
    a = outer(1);
    b = outer(2);
    sQ: assert(a == 1);
    sR: assert(b == 2);
  }
)";

void run_context(benchmark::State& state, std::size_t k) {
  auto program = copar::compile(kContextProgram);
  std::uint64_t states = 0;
  std::size_t unproved = 0;
  for (auto _ : state) {
    copar::absem::AbsOptions opts;
    opts.call_string_k = k;
    copar::absem::AbsExplorer<copar::absdom::FlatInt> engine(*program->lowered, opts);
    const auto r = engine.run();
    states = r.num_states;
    unproved = r.may_fail_asserts.size();
    benchmark::DoNotOptimize(r.num_states);
  }
  state.counters["abs_states"] = static_cast<double>(states);
  state.counters["unproved_asserts"] = static_cast<double>(unproved);
}

void BM_Context_K0(benchmark::State& state) { run_context(state, 0); }
void BM_Context_K1(benchmark::State& state) { run_context(state, 1); }
void BM_Context_K2(benchmark::State& state) { run_context(state, 2); }

BENCHMARK(BM_Context_K0);
BENCHMARK(BM_Context_K1);
BENCHMARK(BM_Context_K2);

// Parity on the same loop workload: the fourth domain plug-in.
void BM_Domain_Parity(benchmark::State& state) {
  run_domain<copar::absdom::Parity>(state);
}
BENCHMARK(BM_Domain_Parity);

}  // namespace
