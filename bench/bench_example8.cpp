// Experiment E6 (Example 8): pointers and dynamic allocation.
//
// Regenerates: the framework handles malloc/pointer programs — Example 8's
// four statements are analyzed end-to-end; the abstract points-to relation
// links each pointer variable to its allocation site, and the dependence
// s2 -> s4 (the *y write feeding the *x = *y read) is found.
#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/analysis/common.h"
#include "src/analysis/depend.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"

namespace {

void BM_Example8_ConcreteExploration(benchmark::State& state) {
  auto program = copar::compile(copar::workload::example8_pointers());
  std::uint64_t configs = 0;
  for (auto _ : state) {
    const auto r = copar::explore::explore(*program->lowered, {});
    configs = r.num_configs;
    benchmark::DoNotOptimize(r.num_configs);
  }
  state.counters["configs"] = static_cast<double>(configs);
}
BENCHMARK(BM_Example8_ConcreteExploration);

void BM_Example8_AbstractAnalysis(benchmark::State& state) {
  auto program = copar::compile(copar::workload::example8_pointers());
  std::uint64_t states = 0;
  bool flow_dep = false;
  for (auto _ : state) {
    copar::absem::AbsExplorer<copar::absdom::FlatInt> engine(*program->lowered, {});
    const auto abs = engine.run();
    states = abs.num_states;
    const auto s2 = copar::analysis::labeled_stmt(*program->lowered, "s2");
    const auto s4 = copar::analysis::labeled_stmt(*program->lowered, "s4");
    const auto deps = copar::analysis::sequential_dependences({*s2, *s4}, abs);
    flow_dep = deps.has(*s2, *s4, copar::analysis::DepKind::Flow);
    benchmark::DoNotOptimize(abs.num_states);
  }
  state.counters["abs_states"] = static_cast<double>(states);
  state.counters["flow_s2_to_s4"] = flow_dep ? 1 : 0;  // the malloc'd cell flows
}
BENCHMARK(BM_Example8_AbstractAnalysis);

}  // namespace

COPAR_BENCH_MAIN()
