// copar-cli — command-line driver for the framework.
//
//   copar-cli run <file.cop>                 run all interleavings, print outcomes
//   copar-cli explore <file.cop> [--stubborn] [--coarsen]
//                                            state-space statistics
//   copar-cli analyze <file.cop>             §5 analyses + §7 applications report
//   copar-cli abstract <file.cop> [--clan]   abstract exploration summary
//   copar-cli witness <file.cop> [--deadlock | --violation L | --fault L]
//                                            print a schedule exhibiting the fact
//   copar-cli parallelize <file.cop> --labels s1,s2,s3,s4
//                                            schedule the labeled statements into
//                                            parallel chains, print the rewritten
//                                            program, and verify equivalence
//   copar-cli graph <file.cop> [--stubborn] [--coarsen]
//                                            Graphviz dot of the configuration graph
//   copar-cli disasm <file.cop>              lowered atomic-action code
//   copar-cli fmt <file.cop>                 pretty-print the parsed program
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/absdom/flat.h"
#include "src/absem/absexplore.h"
#include "src/analysis/anomaly.h"
#include "src/analysis/common.h"
#include "src/analysis/deadstore.h"
#include "src/analysis/depend.h"
#include "src/analysis/lifetime.h"
#include "src/analysis/mhp.h"
#include "src/analysis/sideeffect.h"
#include "src/apps/parallelize.h"
#include "src/apps/placement.h"
#include "src/apps/transform.h"
#include "src/explore/witness.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/sem/program.h"

namespace {

int usage() {
  std::cerr << "usage: copar-cli "
               "<run|explore|analyze|abstract|witness|parallelize|graph|disasm|fmt> "
               "<file.cop> [options]\n";
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw copar::Error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool has_flag(const std::vector<std::string>& args, std::string_view flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string flag_value(const std::vector<std::string>& args, std::string_view flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return {};
}

int cmd_run(const copar::CompiledProgram& p) {
  using namespace copar;
  const auto r = explore::explore(*p.lowered, {});
  std::cout << "configurations: " << r.num_configs << ", transitions: " << r.num_transitions
            << '\n';
  std::cout << "terminal configurations: " << r.terminals.size()
            << (r.deadlock_found ? " (deadlock reachable!)" : "") << '\n';
  if (!r.violations.empty()) {
    std::cout << "assertion violations:";
    for (auto v : r.violations) std::cout << ' ' << analysis::describe_stmt(*p.lowered, v);
    std::cout << '\n';
  }
  if (!r.faults.empty()) {
    std::cout << "runtime faults:";
    for (const auto& [stmt, kind] : r.faults) {
      std::cout << ' ' << analysis::describe_stmt(*p.lowered, stmt) << '('
                << sem::fault_name(static_cast<sem::Fault>(kind)) << ')';
    }
    std::cout << '\n';
  }
  std::cout << "global outcomes per terminal:\n";
  int idx = 0;
  for (const auto& [key, t] : r.terminals) {
    std::cout << "  #" << ++idx << (t.deadlock ? " [deadlock]" : "") << ':';
    for (const sem::GlobalSlot& g : p.lowered->globals()) {
      if (g.fun != nullptr) continue;
      const auto v = t.config.store.read(0, g.slot);
      std::cout << ' ' << p.lowered->module().interner().spelling(g.name) << '='
                << v.to_string();
    }
    std::cout << '\n';
  }
  return r.deadlock_found || !r.violations.empty() || !r.faults.empty() ? 1 : 0;
}

int cmd_explore(const copar::CompiledProgram& p, const std::vector<std::string>& args) {
  using namespace copar;
  explore::ExploreOptions opts;
  if (has_flag(args, "--stubborn")) opts.reduction = explore::Reduction::Stubborn;
  if (has_flag(args, "--coarsen")) opts.coarsen = true;
  const auto r = explore::explore(*p.lowered, opts);
  std::cout << r.stats.to_string();
  if (r.truncated) std::cout << "TRUNCATED at " << opts.max_configs << " configurations\n";
  return 0;
}

int cmd_analyze(const copar::CompiledProgram& p) {
  using namespace copar;
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  opts.record_accesses = true;
  opts.record_lifetimes = true;
  const auto concrete = explore::explore(*p.lowered, opts);

  absem::AbsExplorer<absdom::FlatInt> engine(*p.lowered, {});
  const auto abs = engine.run();

  std::cout << "== side effects (§5.1) ==\n"
            << analysis::side_effects_from(*p.lowered, abs).report(*p.lowered);
  std::cout << "\n== may-happen-in-parallel ==\n"
            << analysis::mhp_from(concrete).report(*p.lowered);
  std::cout << "\n== dependences (§5.2) ==\n"
            << analysis::dependences_from(concrete).report(*p.lowered);
  std::cout << "\n== access anomalies ==\n"
            << analysis::anomalies_from(concrete).report(*p.lowered);
  const analysis::DeadStores dead = analysis::find_dead_stores(*p.lowered);
  if (!dead.stores.empty()) {
    std::cout << "\n== dead stores (parallel-safe) ==\n" << dead.report(*p.lowered);
  }
  const auto lifetimes = analysis::lifetimes_from(concrete);
  if (!lifetimes.sites.empty()) {
    std::cout << "\n== lifetimes (§5.3) ==\n" << lifetimes.report(*p.lowered);
    std::cout << "\n== placement (§7) ==\n"
              << apps::place_objects(lifetimes).report(*p.lowered);
  }
  return 0;
}

int cmd_abstract(const copar::CompiledProgram& p, const std::vector<std::string>& args) {
  using namespace copar;
  absem::AbsOptions opts;
  if (has_flag(args, "--clan")) opts.folding = absem::Folding::Clan;
  absem::AbsExplorer<absdom::FlatInt> engine(*p.lowered, opts);
  const auto r = engine.run();
  std::cout << "abstract states: " << r.num_states << '\n';
  std::cout << "MHP pairs: " << r.mhp.size() << '\n';
  if (!r.may_fail_asserts.empty()) {
    std::cout << "asserts that may fail:";
    for (auto s : r.may_fail_asserts) std::cout << ' ' << analysis::describe_stmt(*p.lowered, s);
    std::cout << '\n';
  }
  return 0;
}

int cmd_witness(const copar::CompiledProgram& p, const std::vector<std::string>& args) {
  using namespace copar;
  explore::WitnessQuery q;
  if (has_flag(args, "--deadlock")) q.want_deadlock = true;
  if (const std::string label = flag_value(args, "--violation"); !label.empty()) {
    const auto id = analysis::labeled_stmt(*p.lowered, label);
    if (!id.has_value()) {
      std::cerr << "no statement labeled '" << label << "'\n";
      return 2;
    }
    q.want_violation = *id;
  }
  if (const std::string label = flag_value(args, "--fault"); !label.empty()) {
    const auto id = analysis::labeled_stmt(*p.lowered, label);
    if (!id.has_value()) {
      std::cerr << "no statement labeled '" << label << "'\n";
      return 2;
    }
    q.want_fault = *id;
  }
  const auto w = explore::find_witness(*p.lowered, q);
  if (!w.has_value()) {
    std::cout << "no matching terminal configuration is reachable\n";
    return 1;
  }
  std::cout << w->to_string(*p.lowered);
  return 0;
}

int cmd_graph(const copar::CompiledProgram& p, const std::vector<std::string>& args) {
  using namespace copar;
  explore::ExploreOptions opts;
  opts.record_graph = true;
  if (has_flag(args, "--stubborn")) opts.reduction = explore::Reduction::Stubborn;
  if (has_flag(args, "--coarsen")) opts.coarsen = true;
  const auto r = explore::explore(*p.lowered, opts);
  std::cout << to_dot(r.graph, *p.lowered);
  return 0;
}

int cmd_parallelize(const copar::CompiledProgram& p, const std::string& source,
                    const std::vector<std::string>& args) {
  using namespace copar;
  const std::string labels_csv = flag_value(args, "--labels");
  if (labels_csv.empty()) {
    std::cerr << "parallelize requires --labels s1,s2,...\n";
    return 2;
  }
  std::vector<std::string> labels;
  std::stringstream ss(labels_csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) labels.push_back(item);
  }
  absem::AbsExplorer<absdom::FlatInt> engine(*p.lowered, {});
  const auto abs = engine.run();
  const apps::ParallelSchedule sched = apps::parallelize_labeled(*p.lowered, abs, labels);
  std::cout << "== schedule ==\n" << sched.report(*p.lowered) << '\n';
  if (sched.chains.size() < 2) {
    std::cout << "no parallelism available (dependences form one chain)\n";
    return 0;
  }
  const std::string transformed = apps::rewrite_as_parallel_chains(*p.lowered, sched);
  std::cout << "== transformed program ==\n" << transformed << '\n';
  const bool ok = apps::observably_equivalent(source, transformed);
  std::cout << "== equivalence check (full exploration of both) ==\n"
            << (ok ? "EQUIVALENT: same observable outcomes\n"
                   : "NOT EQUIVALENT — transformation rejected\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  std::vector<std::string> args(argv + 3, argv + argc);

  try {
    const std::string source = slurp(path);
    if (cmd == "fmt") {
      auto module = copar::lang::parse_program(source);
      std::cout << copar::lang::print(*module);
      return 0;
    }
    auto program = copar::compile(source);
    if (cmd == "run") return cmd_run(*program);
    if (cmd == "explore") return cmd_explore(*program, args);
    if (cmd == "analyze") return cmd_analyze(*program);
    if (cmd == "abstract") return cmd_abstract(*program, args);
    if (cmd == "witness") return cmd_witness(*program, args);
    if (cmd == "parallelize") return cmd_parallelize(*program, source, args);
    if (cmd == "graph") return cmd_graph(*program, args);
    if (cmd == "disasm") {
      std::cout << program->lowered->disassemble();
      return 0;
    }
    return usage();
  } catch (const copar::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
