// copar-cli — command-line driver for the framework.
//
//   copar-cli run <file.cop>                 run all interleavings, print outcomes
//   copar-cli explore <file.cop> [--stubborn] [--coarsen] [--sleep]
//                                [--max-configs N] [--threads N] [--exact-keys]
//                                            state-space statistics; exits 3
//                                            if the exploration was truncated.
//                                            --threads N>1 uses the work-
//                                            stealing engine; --exact-keys
//                                            keeps full canonical keys (and
//                                            counts fingerprint collisions)
//   copar-cli analyze <file.cop> [--engine explore|tmod]
//                                            §5 analyses + §7 applications report
//                                            (--engine tmod: the thread-modular
//                                            rely/guarantee interference report
//                                            instead — no interleaving
//                                            enumeration, terminates on any
//                                            program)
//   copar-cli abstract <file.cop> [--clan]   abstract exploration summary
//   copar-cli witness <file.cop> [--deadlock | --violation L | --fault L]
//                                            print a schedule exhibiting the fact
//   copar-cli parallelize <file.cop> --labels s1,s2,s3,s4
//                                            schedule the labeled statements into
//                                            parallel chains, print the rewritten
//                                            program, and verify equivalence
//   copar-cli graph <file.cop> [--stubborn] [--coarsen]
//                                            Graphviz dot of the configuration graph
//   copar-cli check <file.cop> [--sarif] [--disable c1,c2] [--no-witness]
//                              [--tier auto|static|explore|tmod] [--pair-budget N]
//                              [--max-configs N]
//                                            static diagnostics (races, faults,
//                                            uninitialized reads, dead code...);
//                                            exits 1 on error-severity findings
//   copar-cli check --list-checks            catalog of check codes
//   copar-cli disasm <file.cop>              lowered atomic-action code
//   copar-cli fmt <file.cop>                 pretty-print the parsed program
//   copar-cli metrics-dump <file.cop> [explore options] [--format json|prom|text]
//                                            run an exploration and print the
//                                            MetricsSnapshot (the copar-serve
//                                            metrics surface) instead of the
//                                            report
//
// Global observability flags (any command):
//   --json               machine-readable report: one JSON document on stdout
//                        (counters, per-phase milliseconds, memory gauges,
//                        terminals, violations) for run/explore/analyze/abstract
//   --trace <out.json>   record a Chrome trace_event timeline of the engine
//                        phases (one track per worker thread); open in
//                        chrome://tracing or Perfetto
//   --progress [secs]    stderr heartbeat every `secs` (default 2) seconds
//                        with configs/sec and frontier depth
//   --sample <ms>        background sampler: snapshot the live gauges every
//                        `ms` milliseconds into the report's "timeline" (and
//                        counter tracks in the trace)
//   --metrics-out <f>    after the run, write the metrics snapshot to `f`
//                        (Prometheus text when `f` ends in .prom, JSON
//                        otherwise)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absem/absexplore.h"
#include "src/absem/tmod.h"
#include "src/analysis/anomaly.h"
#include "src/analysis/common.h"
#include "src/analysis/deadstore.h"
#include "src/analysis/depend.h"
#include "src/analysis/lifetime.h"
#include "src/analysis/lockset.h"
#include "src/analysis/mhp.h"
#include "src/analysis/sideeffect.h"
#include "src/analysis/staticmhp.h"
#include "src/apps/parallelize.h"
#include "src/check/check.h"
#include "src/apps/placement.h"
#include "src/apps/transform.h"
#include "src/explore/parexplore.h"
#include "src/explore/report.h"
#include "src/explore/witness.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/sem/program.h"
#include "src/support/json.h"
#include "src/support/metrics.h"
#include "src/support/telemetry.h"

namespace {

int usage() {
  std::cerr << "usage: copar-cli "
               "<run|explore|analyze|abstract|check|witness|parallelize|graph|disasm|fmt"
               "|metrics-dump> <file.cop> [options]\n"
               "global options: --json  --trace <out.json>  --progress [seconds]  "
               "--sample <ms>  --metrics-out <file>\n"
               "explore options: --stubborn --coarsen --sleep --max-configs N "
               "--threads N --exact-keys\n"
               "analyze options: --engine explore|tmod\n"
               "check options:   --sarif --disable <c1,c2,...> --no-witness "
               "--max-configs N --tier auto|static|explore|tmod --pair-budget N  "
               "(or: check --list-checks)\n"
               "metrics-dump options: explore options plus --format json|prom|text\n";
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw copar::Error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool has_flag(const std::vector<std::string>& args, std::string_view flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string flag_value(const std::vector<std::string>& args, std::string_view flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return {};
}

/// Observability switches, stripped from the arg list before command
/// dispatch so every command accepts them uniformly.
struct GlobalOpts {
  bool json = false;
  std::string trace_path;
  bool progress = false;
  double progress_interval_s = 2.0;
  double sample_ms = 0;  // 0: sampler off
  std::string metrics_out;
  bool missing_trace_path = false;  // `--trace` given as the last argument
  bool bad_sample = false;          // `--sample` without a positive number
  bool missing_metrics_out = false;
};

GlobalOpts extract_global_opts(std::vector<std::string>& args) {
  GlobalOpts g;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--json") {
      g.json = true;
    } else if (a == "--trace") {
      if (i + 1 < args.size()) {
        g.trace_path = args[++i];
      } else {
        g.missing_trace_path = true;
      }
    } else if (a == "--progress") {
      g.progress = true;
      // Optional numeric interval right after the flag.
      if (i + 1 < args.size()) {
        char* end = nullptr;
        const double v = std::strtod(args[i + 1].c_str(), &end);
        if (end != nullptr && *end == '\0' && v > 0) {
          g.progress_interval_s = v;
          ++i;
        }
      }
    } else if (a == "--sample") {
      g.bad_sample = true;
      if (i + 1 < args.size()) {
        char* end = nullptr;
        const double v = std::strtod(args[i + 1].c_str(), &end);
        if (end != nullptr && *end == '\0' && v > 0) {
          g.sample_ms = v;
          g.bad_sample = false;
          ++i;
        }
      }
    } else if (a == "--metrics-out") {
      if (i + 1 < args.size()) {
        g.metrics_out = args[++i];
      } else {
        g.missing_metrics_out = true;
      }
    } else {
      rest.push_back(a);
    }
  }
  args = std::move(rest);
  return g;
}

void apply_global_opts(const GlobalOpts& g) {
  auto& tel = copar::telemetry::Telemetry::global();
  if (g.json || !g.trace_path.empty() || !g.metrics_out.empty()) tel.enable_metrics();
  if (!g.trace_path.empty()) tel.enable_trace();
  if (g.progress) tel.enable_progress(g.progress_interval_s);
  if (g.sample_ms > 0) tel.start_sampler(g.sample_ms);
}

/// Stops the sampler (taking a final end-of-run sample) so reports and
/// trace flushes see the completed timeline. Safe to call repeatedly.
void finish_sampling() { copar::telemetry::Telemetry::global().stop_sampler(); }

int cmd_run(const copar::CompiledProgram& p, const std::string& path, const GlobalOpts& g) {
  using namespace copar;
  const explore::ExploreOptions opts;
  const auto r = explore::explore(*p.lowered, opts);
  finish_sampling();
  const int rc = r.deadlock_found || !r.violations.empty() || !r.faults.empty() ? 1 : 0;
  if (g.json) {
    support::JsonWriter w(std::cout);
    explore::write_json_report(w, "run", path, r, opts, p.lowered.get());
    std::cout << '\n';
    return rc;
  }
  std::cout << "configurations: " << r.num_configs << ", transitions: " << r.num_transitions
            << '\n';
  std::cout << "terminal configurations: " << r.terminals.size()
            << (r.deadlock_found ? " (deadlock reachable!)" : "") << '\n';
  if (!r.violations.empty()) {
    std::cout << "assertion violations:";
    for (auto v : r.violations) std::cout << ' ' << analysis::describe_stmt(*p.lowered, v);
    std::cout << '\n';
  }
  if (!r.faults.empty()) {
    std::cout << "runtime faults:";
    for (const auto& [stmt, kind] : r.faults) {
      std::cout << ' ' << analysis::describe_stmt(*p.lowered, stmt) << '('
                << sem::fault_name(static_cast<sem::Fault>(kind)) << ')';
    }
    std::cout << '\n';
  }
  std::cout << "global outcomes per terminal:\n";
  int idx = 0;
  for (const auto& [key, t] : r.terminals) {
    std::cout << "  #" << ++idx << (t.deadlock ? " [deadlock]" : "") << ':';
    for (const sem::GlobalSlot& gs : p.lowered->globals()) {
      if (gs.fun != nullptr) continue;
      const auto v = t.config.store.read(0, gs.slot);
      std::cout << ' ' << p.lowered->module().interner().spelling(gs.name) << '='
                << v.to_string();
    }
    std::cout << '\n';
  }
  return rc;
}

/// Parses the shared exploration option set (`explore` and `metrics-dump`
/// accept the same flags). Returns 0 on success, the exit code otherwise.
int parse_explore_opts(const std::vector<std::string>& args,
                       copar::explore::ExploreOptions& opts) {
  using namespace copar;
  if (has_flag(args, "--stubborn")) opts.reduction = explore::Reduction::Stubborn;
  if (has_flag(args, "--coarsen")) opts.coarsen = true;
  if (has_flag(args, "--sleep")) opts.sleep_sets = true;
  if (has_flag(args, "--exact-keys")) opts.exact_keys = true;
  if (has_flag(args, "--max-configs") && flag_value(args, "--max-configs").empty()) {
    std::cerr << "error: --max-configs expects a positive integer\n";
    return 2;
  }
  if (const std::string v = flag_value(args, "--max-configs"); !v.empty()) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || n == 0) {
      std::cerr << "error: --max-configs expects a positive integer, got '" << v << "'\n";
      return 2;
    }
    opts.max_configs = n;
  }
  if (has_flag(args, "--threads") && flag_value(args, "--threads").empty()) {
    std::cerr << "error: --threads expects a positive integer\n";
    return 2;
  }
  if (const std::string v = flag_value(args, "--threads"); !v.empty()) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || n == 0 || n > 1024) {
      std::cerr << "error: --threads expects a positive integer, got '" << v << "'\n";
      return 2;
    }
    opts.threads = static_cast<unsigned>(n);
  }
  if (const auto d = explore::parallel_unsupported(opts)) {
    std::cerr << "error (" << d->code << "): " << d->message << '\n';
    return 2;
  }
  return 0;
}

int cmd_explore(const copar::CompiledProgram& p, const std::string& path,
                const std::vector<std::string>& args, const GlobalOpts& g) {
  using namespace copar;
  explore::ExploreOptions opts;
  if (const int rc = parse_explore_opts(args, opts); rc != 0) return rc;
  const auto r = explore::explore(*p.lowered, opts);
  finish_sampling();
  if (g.json) {
    support::JsonWriter w(std::cout);
    explore::write_json_report(w, "explore", path, r, opts);
    std::cout << '\n';
  } else {
    std::cout << r.stats.to_string();
  }
  if (r.truncated) {
    std::cerr << "error: exploration truncated at " << opts.max_configs
              << " configurations (counters are lower bounds; raise --max-configs)\n";
    return 3;
  }
  return 0;
}

/// `copar-cli analyze --engine tmod` — the thread-modular rely/guarantee
/// interference report. No interleaving enumeration at all: the engine
/// terminates on any program, including ones the explorers can only
/// truncate, and its report is a sound over-approximation of every
/// interleaving.
int cmd_analyze_tmod(const copar::CompiledProgram& p, const std::string& path,
                     const GlobalOpts& g) {
  using namespace copar;
  const sem::LoweredProgram& prog = *p.lowered;

  // Static lockset / MHP facts prune interference and race pairs, exactly
  // as `check --tier tmod` wires them.
  const explore::StaticInfo info(prog);
  const analysis::StaticParallelism par(prog, info);
  const analysis::LockSets locks(prog, info);
  const analysis::Mhp mhp = par.stmt_mhp();
  absem::TmodOptions topts;
  if (locks.pristine()) {
    topts.must_locks = [&locks](std::uint32_t pr, std::uint32_t pc) -> std::uint64_t {
      return locks.live(pr, pc) ? locks.held(pr, pc) : 0;
    };
  }
  topts.self_parallel = [&par](std::uint32_t pr) { return par.parallel_procs(pr, pr); };
  topts.parallel = [&mhp](std::uint32_t s, std::uint32_t t) { return mhp.parallel(s, t); };

  const auto r = absem::tmod_analyze<absdom::Interval>(prog, topts);
  finish_sampling();

  if (g.json) {
    support::JsonWriter w(std::cout);
    w.begin_object();
    w.key("tool");
    w.value("copar");
    w.key("command");
    w.value("analyze");
    w.key("engine");
    w.value("tmod");
    w.key("file");
    w.value(path);
    w.key("counters");
    w.begin_object();
    for (const auto& [name, value] : r.stats.all()) {
      w.key(name);
      w.value(value);
    }
    w.end_object();
    w.key("phases_ms");
    telemetry::write_phases_ms(w);
    w.key("phase_counts");
    telemetry::write_phase_counts(w);
    w.key("memory");
    w.begin_object();
    w.key("peak_rss_bytes");
    w.value(telemetry::peak_rss_bytes());
    w.end_object();
    w.key("result");
    w.begin_object();
    w.key("threads");
    w.value(static_cast<std::uint64_t>(r.threads));
    w.key("rounds");
    w.value(static_cast<std::uint64_t>(r.rounds));
    w.key("truncated");
    w.value(r.truncated);
    w.key("interference_facts");
    w.value(r.interference_facts);
    w.key("races");
    w.begin_object();
    w.key("pairs_total");
    w.value(r.races.pairs_total);
    w.key("pruned_mhp");
    w.value(r.races.pruned_mhp);
    w.key("pruned_lockset");
    w.value(r.races.pruned_lockset);
    w.key("count");
    w.value(static_cast<std::uint64_t>(r.races.races.size()));
    w.end_object();
    w.key("may_fail_asserts");
    w.begin_array();
    for (std::uint32_t s : r.may_fail_asserts) w.value(static_cast<std::uint64_t>(s));
    w.end_array();
    w.key("may_faults");
    w.value(static_cast<std::uint64_t>(r.may_faults.size()));
    w.key("uninit_reads");
    w.value(static_cast<std::uint64_t>(r.uninit_reads.size()));
    w.end_object();
    w.end_object();
    std::cout << '\n';
    return 0;
  }

  std::cout << "== thread-modular interference analysis ==\n";
  std::cout << "threads: " << r.threads << ", rounds: " << r.rounds
            << (r.truncated ? " (round cap hit — alarms incomplete)" : " (converged)")
            << '\n';
  std::cout << "interference facts: " << r.interference_facts << '\n';
  for (const auto& [root, rely] : r.relies) {
    std::cout << "thread p" << root << " '" << prog.procs()[root].name << "':\n";
    for (const auto& [loc, v] : rely.entries()) {
      std::cout << "  rely      " << analysis::describe_loc(prog, loc) << " = "
                << v.to_string() << '\n';
    }
    const auto git = r.guarantees.find(root);
    if (git != r.guarantees.end()) {
      for (const auto& [loc, v] : git->second.entries()) {
        std::cout << "  guarantee " << analysis::describe_loc(prog, loc) << " = "
                  << v.to_string() << '\n';
      }
    }
  }
  std::cout << "race candidates: " << r.races.races.size() << " (of "
            << r.races.pairs_total << " pairs: " << r.races.pruned_mhp << " mhp-pruned, "
            << r.races.pruned_lockset << " lockset-pruned)\n";
  for (const absem::TmodRace& c : r.races.races) {
    std::cout << "  " << (c.write_write ? "write/write " : "")
              << (c.write_read ? "write/read " : "") << "race between "
              << analysis::describe_stmt(prog, c.stmt1) << " and "
              << analysis::describe_stmt(prog, c.stmt2) << '\n';
  }
  if (!r.may_fail_asserts.empty()) {
    std::cout << "asserts that may fail:";
    for (auto s : r.may_fail_asserts) std::cout << ' ' << analysis::describe_stmt(prog, s);
    std::cout << '\n';
  }
  if (!r.may_faults.empty()) {
    std::cout << "may-faults:";
    for (const auto& [stmt, expr, fault] : r.may_faults) {
      std::cout << ' ' << analysis::describe_stmt(prog, stmt) << '('
                << sem::fault_name(static_cast<sem::Fault>(fault)) << ')';
    }
    std::cout << '\n';
  }
  if (!r.uninit_reads.empty()) {
    std::cout << "uninitialized reads: " << r.uninit_reads.size() << '\n';
  }
  return 0;
}

int cmd_analyze(const copar::CompiledProgram& p, const std::string& path,
                const std::vector<std::string>& args, const GlobalOpts& g) {
  using namespace copar;
  std::string engine_name = flag_value(args, "--engine");
  bool engine_given = has_flag(args, "--engine");
  for (const std::string& a : args) {
    if (a.rfind("--engine=", 0) == 0) {
      engine_given = true;
      if (engine_name.empty()) engine_name = a.substr(9);
    }
  }
  if (engine_given && engine_name.empty()) {
    std::cerr << "error: --engine requires a value (explore|tmod)\n";
    return 2;
  }
  if (engine_name == "tmod") return cmd_analyze_tmod(p, path, g);
  if (!engine_name.empty() && engine_name != "explore") {
    std::cerr << "error: --engine expects explore or tmod, got '" << engine_name << "'\n";
    return 2;
  }
  explore::ExploreOptions opts;
  opts.record_pairs = true;
  opts.record_accesses = true;
  opts.record_lifetimes = true;
  const auto concrete = explore::explore(*p.lowered, opts);

  absem::AbsExplorer<absdom::FlatInt> engine(*p.lowered, {});
  const auto abs = engine.run();
  finish_sampling();

  telemetry::ScopedPhase phase_analysis(telemetry::Phase::Analysis);
  const auto effects = analysis::side_effects_from(*p.lowered, abs);
  const auto mhp = analysis::mhp_from(concrete);
  const auto deps = analysis::dependences_from(concrete);
  const auto anomalies = analysis::anomalies_from(concrete);
  const analysis::DeadStores dead = analysis::find_dead_stores(*p.lowered);
  const auto lifetimes = analysis::lifetimes_from(concrete);

  if (g.json) {
    support::JsonWriter w(std::cout);
    w.begin_object();
    w.key("tool");
    w.value("copar");
    w.key("command");
    w.value("analyze");
    w.key("file");
    w.value(path);
    w.key("counters");
    w.begin_object();
    for (const auto& [name, value] : concrete.stats.all()) {
      w.key(name);
      w.value(value);
    }
    for (const auto& [name, value] : abs.stats.all()) {
      w.key(name);
      w.value(value);
    }
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, value] : concrete.stats.gauges()) {
      w.key(name);
      w.value(value);
    }
    w.end_object();
    w.key("phases_ms");
    telemetry::write_phases_ms(w);
    w.key("phase_counts");
    telemetry::write_phase_counts(w);
    w.key("memory");
    w.begin_object();
    w.key("peak_rss_bytes");
    w.value(telemetry::peak_rss_bytes());
    w.end_object();
    w.key("analyses");
    w.begin_object();
    w.key("mhp_pairs");
    w.value(static_cast<std::uint64_t>(mhp.pairs.size()));
    w.key("dependences");
    w.value(static_cast<std::uint64_t>(deps.deps.size()));
    w.key("anomalies");
    w.value(static_cast<std::uint64_t>(anomalies.all.size()));
    w.key("dead_stores");
    w.value(static_cast<std::uint64_t>(dead.stores.size()));
    w.key("lifetime_sites");
    w.value(static_cast<std::uint64_t>(lifetimes.sites.size()));
    w.end_object();
    w.key("result");
    w.begin_object();
    w.key("configs");
    w.value(concrete.num_configs);
    w.key("transitions");
    w.value(concrete.num_transitions);
    w.key("terminals");
    w.value(static_cast<std::uint64_t>(concrete.terminals.size()));
    w.key("deadlock");
    w.value(concrete.deadlock_found);
    w.key("truncated");
    w.value(concrete.truncated);
    w.key("violations");
    w.begin_array();
    for (std::uint32_t v : concrete.violations) w.value(static_cast<std::uint64_t>(v));
    w.end_array();
    w.end_object();
    w.end_object();
    std::cout << '\n';
    return 0;
  }

  std::cout << "== side effects (§5.1) ==\n" << effects.report(*p.lowered);
  std::cout << "\n== may-happen-in-parallel ==\n" << mhp.report(*p.lowered);
  std::cout << "\n== dependences (§5.2) ==\n" << deps.report(*p.lowered);
  std::cout << "\n== access anomalies ==\n" << anomalies.report(*p.lowered);
  if (!dead.stores.empty()) {
    std::cout << "\n== dead stores (parallel-safe) ==\n" << dead.report(*p.lowered);
  }
  if (!lifetimes.sites.empty()) {
    std::cout << "\n== lifetimes (§5.3) ==\n" << lifetimes.report(*p.lowered);
    std::cout << "\n== placement (§7) ==\n"
              << apps::place_objects(lifetimes).report(*p.lowered);
  }
  return 0;
}

int cmd_abstract(const copar::CompiledProgram& p, const std::string& path,
                 const std::vector<std::string>& args, const GlobalOpts& g) {
  using namespace copar;
  absem::AbsOptions opts;
  if (has_flag(args, "--clan")) opts.folding = absem::Folding::Clan;
  absem::AbsExplorer<absdom::FlatInt> engine(*p.lowered, opts);
  const auto r = engine.run();
  finish_sampling();
  if (g.json) {
    support::JsonWriter w(std::cout);
    w.begin_object();
    w.key("tool");
    w.value("copar");
    w.key("command");
    w.value("abstract");
    w.key("file");
    w.value(path);
    w.key("options");
    w.begin_object();
    w.key("folding");
    w.value(opts.folding == absem::Folding::Clan ? "clan" : "tree");
    w.key("max_states");
    w.value(opts.max_states);
    w.end_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, value] : r.stats.all()) {
      w.key(name);
      w.value(value);
    }
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, value] : r.stats.gauges()) {
      w.key(name);
      w.value(value);
    }
    w.end_object();
    w.key("phases_ms");
    telemetry::write_phases_ms(w);
    w.key("phase_counts");
    telemetry::write_phase_counts(w);
    w.key("memory");
    w.begin_object();
    w.key("peak_rss_bytes");
    w.value(telemetry::peak_rss_bytes());
    w.end_object();
    w.key("result");
    w.begin_object();
    w.key("abs_states");
    w.value(r.num_states);
    w.key("mhp_pairs");
    w.value(static_cast<std::uint64_t>(r.mhp.size()));
    w.key("truncated");
    w.value(r.truncated);
    w.key("may_fail_asserts");
    w.begin_array();
    for (std::uint32_t s : r.may_fail_asserts) w.value(static_cast<std::uint64_t>(s));
    w.end_array();
    w.end_object();
    w.end_object();
    std::cout << '\n';
    return 0;
  }
  std::cout << "abstract states: " << r.num_states << '\n';
  std::cout << "MHP pairs: " << r.mhp.size() << '\n';
  if (!r.may_fail_asserts.empty()) {
    std::cout << "asserts that may fail:";
    for (auto s : r.may_fail_asserts) std::cout << ' ' << analysis::describe_stmt(*p.lowered, s);
    std::cout << '\n';
  }
  return 0;
}

int cmd_list_checks() {
  using namespace copar;
  for (const RuleInfo& r : check::catalog()) {
    std::cout << r.id << " (" << severity_name(r.default_severity) << "): " << r.summary
              << '\n';
  }
  return 0;
}

/// `copar-cli check` — the unified static diagnostics engine. Runs the whole
/// battery (src/check) and renders findings as human text, JSON, or SARIF.
/// Unlike the other commands it owns its front end, so syntax errors become
/// ordinary findings instead of a bare exception message.
int cmd_check(const std::string& path, const std::string& source,
              const std::vector<std::string>& args, const GlobalOpts& g) {
  using namespace copar;
  const bool sarif = has_flag(args, "--sarif");
  check::CheckOptions copts;
  if (has_flag(args, "--no-witness")) copts.witnesses = false;
  // Accept both `--flag value` and `--flag=value` (CI scripts use the
  // latter for the tier switches).
  auto flag_eq_or_space = [&](std::string_view flag) -> std::string {
    const std::string prefix = std::string(flag) + "=";
    for (const std::string& a : args) {
      if (a.size() > prefix.size() && a.compare(0, prefix.size(), prefix) == 0) {
        return a.substr(prefix.size());
      }
    }
    return flag_value(args, flag);
  };
  auto parse_positive = [&](std::string_view flag, std::uint64_t* out) -> bool {
    const std::string v = flag_eq_or_space(flag);
    if (v.empty()) {
      if (has_flag(args, flag)) {
        std::cerr << "error: " << flag << " requires a value\n";
        return false;
      }
      return true;
    }
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || n == 0) {
      std::cerr << "error: " << flag << " expects a positive integer, got '" << v << "'\n";
      return false;
    }
    *out = n;
    return true;
  };
  if (!parse_positive("--max-configs", &copts.max_configs)) return 2;
  if (!parse_positive("--pair-budget", &copts.pair_budget)) return 2;
  if (const std::string v = flag_eq_or_space("--tier"); v.empty()) {
    if (has_flag(args, "--tier")) {
      std::cerr << "error: --tier requires a value (auto|static|explore|tmod)\n";
      return 2;
    }
  } else {
    if (v == "auto") {
      copts.tier = check::Tier::Auto;
    } else if (v == "static") {
      copts.tier = check::Tier::Static;
    } else if (v == "explore") {
      copts.tier = check::Tier::Explore;
    } else if (v == "tmod") {
      copts.tier = check::Tier::Tmod;
    } else {
      std::cerr << "error: --tier expects auto|static|explore|tmod, got '" << v << "'\n";
      return 2;
    }
  }

  DiagnosticEngine engine;
  if (const std::string csv = flag_value(args, "--disable"); !csv.empty()) {
    std::stringstream ss(csv);
    std::string code;
    while (std::getline(ss, code, ',')) {
      if (code.empty()) continue;
      if (check::find_rule(code) == nullptr) {
        std::cerr << "error: unknown check code '" << code
                  << "' (see copar-cli check --list-checks)\n";
        return 2;
      }
      engine.disable_code(code);
    }
  }
  engine.load_suppressions(source);

  // Front end: collect every syntax/resolution error as a "syntax" finding.
  DiagnosticEngine front;
  auto module = lang::parse_program(source, front);
  check::CheckSummary sum;
  if (front.has_errors()) {
    for (const Diagnostic& d : front.all()) engine.report(d);
  } else {
    CompiledProgram prog;
    prog.module = std::move(module);
    prog.lowered = sem::lower(*prog.module);
    sum = check::run_checks(prog, engine, copts);
  }
  engine.sort_by_location();

  if (sarif) {
    engine.render_sarif(std::cout, path, check::catalog());
  } else if (g.json) {
    const bool checked = !front.has_errors();
    engine.render_json(std::cout, path, [&](support::JsonWriter& w) {
      if (!checked) return;
      w.key("tier");
      w.begin_object();
      w.key("mode");
      w.value(check::tier_name(sum.tier));
      w.key("pairs_total");
      w.value(sum.stats.pairs_total);
      w.key("pruned_mhp");
      w.value(sum.stats.pruned_mhp);
      w.key("pruned_lockset");
      w.value(sum.stats.pruned_lockset);
      w.key("candidates");
      w.value(sum.stats.candidates);
      w.key("confirmed");
      w.value(sum.stats.confirmed);
      w.key("refuted");
      w.value(sum.stats.refuted);
      w.key("budget_exhausted");
      w.value(sum.stats.budget_exhausted);
      w.key("configs_explored");
      w.value(sum.stats.configs_explored);
      w.key("explored");
      w.value(sum.explored);
      w.key("exhaustive");
      w.value(sum.concrete_exhaustive);
      w.end_object();
      if (sum.tmod.ran) {
        w.key("tmod");
        w.begin_object();
        w.key("threads");
        w.value(static_cast<std::uint64_t>(sum.tmod.threads));
        w.key("rounds");
        w.value(static_cast<std::uint64_t>(sum.tmod.rounds));
        w.key("truncated");
        w.value(sum.tmod.truncated);
        w.key("interference_facts");
        w.value(sum.tmod.interference_facts);
        w.key("alarms");
        w.value(sum.tmod.alarms);
        w.end_object();
      }
    });
  } else {
    if (engine.all().empty()) {
      std::cout << path << ": no findings\n";
    } else {
      engine.render_text(std::cout, source, path);
    }
    if (!front.has_errors() && copts.tier != check::Tier::Explore) {
      std::cerr << "tier " << check::tier_name(sum.tier) << ": "
                << sum.stats.pairs_total << " pairs, " << sum.stats.pruned_mhp
                << " mhp-pruned, " << sum.stats.pruned_lockset << " lockset-pruned, "
                << sum.stats.candidates << " candidates (" << sum.stats.confirmed
                << " confirmed, " << sum.stats.refuted << " refuted, "
                << sum.stats.budget_exhausted << " budget-exhausted), "
                << sum.stats.configs_explored << " configurations explored\n";
    }
    if (!front.has_errors() && sum.explored && !sum.concrete_exhaustive) {
      std::cerr << "note: state space truncated at " << copts.max_configs
                << " configurations; abstract may-findings included, raise --max-configs "
                   "to confirm\n";
    }
    if (!front.has_errors() && !sum.explored && !sum.concrete_exhaustive) {
      if (copts.tier == check::Tier::Tmod) {
        std::cerr << "note: thread-modular alarms left undecided; run --tier=auto "
                     "or raise --pair-budget to confirm or refute them\n";
      } else {
        std::cerr << "note: static tier left candidates unconfirmed; run --tier=auto "
                     "with a larger --pair-budget or --tier=explore to decide them\n";
      }
    }
  }
  return engine.has_errors() ? 1 : 0;
}

int cmd_witness(const copar::CompiledProgram& p, const std::vector<std::string>& args) {
  using namespace copar;
  explore::WitnessQuery q;
  if (has_flag(args, "--deadlock")) q.want_deadlock = true;
  if (const std::string label = flag_value(args, "--violation"); !label.empty()) {
    const auto id = analysis::labeled_stmt(*p.lowered, label);
    if (!id.has_value()) {
      std::cerr << "no statement labeled '" << label << "'\n";
      return 2;
    }
    q.want_violation = *id;
  }
  if (const std::string label = flag_value(args, "--fault"); !label.empty()) {
    const auto id = analysis::labeled_stmt(*p.lowered, label);
    if (!id.has_value()) {
      std::cerr << "no statement labeled '" << label << "'\n";
      return 2;
    }
    q.want_fault = *id;
  }
  const auto w = explore::find_witness(*p.lowered, q);
  if (!w.has_value()) {
    std::cout << "no matching terminal configuration is reachable\n";
    return 1;
  }
  std::cout << w->to_string(*p.lowered);
  return 0;
}

int cmd_graph(const copar::CompiledProgram& p, const std::vector<std::string>& args) {
  using namespace copar;
  explore::ExploreOptions opts;
  opts.record_graph = true;
  if (has_flag(args, "--stubborn")) opts.reduction = explore::Reduction::Stubborn;
  if (has_flag(args, "--coarsen")) opts.coarsen = true;
  const auto r = explore::explore(*p.lowered, opts);
  std::cout << to_dot(r.graph, *p.lowered);
  return 0;
}

int cmd_parallelize(const copar::CompiledProgram& p, const std::string& source,
                    const std::vector<std::string>& args) {
  using namespace copar;
  const std::string labels_csv = flag_value(args, "--labels");
  if (labels_csv.empty()) {
    std::cerr << "parallelize requires --labels s1,s2,...\n";
    return 2;
  }
  std::vector<std::string> labels;
  std::stringstream ss(labels_csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) labels.push_back(item);
  }
  absem::AbsExplorer<absdom::FlatInt> engine(*p.lowered, {});
  const auto abs = engine.run();
  const apps::ParallelSchedule sched = apps::parallelize_labeled(*p.lowered, abs, labels);
  std::cout << "== schedule ==\n" << sched.report(*p.lowered) << '\n';
  if (sched.chains.size() < 2) {
    std::cout << "no parallelism available (dependences form one chain)\n";
    return 0;
  }
  const std::string transformed = apps::rewrite_as_parallel_chains(*p.lowered, sched);
  std::cout << "== transformed program ==\n" << transformed << '\n';
  const bool ok = apps::observably_equivalent(source, transformed);
  std::cout << "== equivalence check (full exploration of both) ==\n"
            << (ok ? "EQUIVALENT: same observable outcomes\n"
                   : "NOT EQUIVALENT — transformation rejected\n");
  return ok ? 0 : 1;
}

/// `copar-cli metrics-dump` — run an exploration and print the metrics
/// export surface (the same snapshot copar-serve will serve over HTTP)
/// instead of the exploration report.
int cmd_metrics_dump(const copar::CompiledProgram& p, const std::vector<std::string>& args) {
  using namespace copar;
  explore::ExploreOptions opts;
  if (const int rc = parse_explore_opts(args, opts); rc != 0) return rc;
  std::string format = flag_value(args, "--format");
  if (format.empty()) format = "json";
  if (format != "json" && format != "prom" && format != "text") {
    std::cerr << "error: --format expects json, prom, or text, got '" << format << "'\n";
    return 2;
  }
  telemetry::Telemetry::global().enable_metrics();
  (void)explore::explore(*p.lowered, opts);
  finish_sampling();
  const auto snap = telemetry::MetricsSnapshot::capture();
  if (format == "prom") {
    snap.write_prometheus(std::cout);
  } else if (format == "text") {
    snap.write_text(std::cout);
  } else {
    snap.write_json(std::cout);
  }
  return 0;
}

/// Flushes the trace file and the metrics snapshot (if requested)
/// regardless of the exit path.
int finish(const GlobalOpts& g, int rc) {
  finish_sampling();
  if (!g.metrics_out.empty()) {
    std::ofstream out(g.metrics_out);
    if (!out) {
      std::cerr << "error: cannot write metrics to " << g.metrics_out << '\n';
      return rc == 0 ? 1 : rc;
    }
    const auto snap = copar::telemetry::MetricsSnapshot::capture();
    // Prometheus exposition when the target looks like a scrape file,
    // schema-pinned JSON otherwise.
    if (g.metrics_out.size() >= 5 &&
        g.metrics_out.compare(g.metrics_out.size() - 5, 5, ".prom") == 0) {
      snap.write_prometheus(out);
    } else {
      snap.write_json(out);
    }
  }
  if (!g.trace_path.empty()) {
    if (!copar::telemetry::Telemetry::global().write_trace_file(g.trace_path)) {
      std::cerr << "error: cannot write trace to " << g.trace_path << '\n';
      return rc == 0 ? 1 : rc;
    }
    std::cerr << "trace written to " << g.trace_path << " ("
              << copar::telemetry::Telemetry::global().trace_size()
              << " events); open in chrome://tracing or https://ui.perfetto.dev\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  std::vector<std::string> args(argv + 3, argv + argc);
  const GlobalOpts global = extract_global_opts(args);
  if (global.missing_trace_path) {
    std::cerr << "error: --trace expects an output path\n";
    return 2;
  }
  if (global.bad_sample) {
    std::cerr << "error: --sample expects a positive interval in milliseconds\n";
    return 2;
  }
  if (global.missing_metrics_out) {
    std::cerr << "error: --metrics-out expects an output path\n";
    return 2;
  }
  apply_global_opts(global);

  if (cmd == "check" && path == "--list-checks") return cmd_list_checks();

  try {
    const std::string source = slurp(path);
    if (cmd == "check") {
      return finish(global, cmd_check(path, source, args, global));
    }
    if (cmd == "fmt") {
      auto module = copar::lang::parse_program(source);
      std::cout << copar::lang::print(*module);
      return finish(global, 0);
    }
    auto program = copar::compile(source);
    int rc;
    if (cmd == "run") {
      rc = cmd_run(*program, path, global);
    } else if (cmd == "explore") {
      rc = cmd_explore(*program, path, args, global);
    } else if (cmd == "analyze") {
      rc = cmd_analyze(*program, path, args, global);
    } else if (cmd == "abstract") {
      rc = cmd_abstract(*program, path, args, global);
    } else if (cmd == "witness") {
      rc = cmd_witness(*program, args);
    } else if (cmd == "parallelize") {
      rc = cmd_parallelize(*program, source, args);
    } else if (cmd == "graph") {
      rc = cmd_graph(*program, args);
    } else if (cmd == "metrics-dump") {
      rc = cmd_metrics_dump(*program, args);
    } else if (cmd == "disasm") {
      std::cout << program->lowered->disassemble();
      rc = 0;
    } else {
      return usage();
    }
    return finish(global, rc);
  } catch (const copar::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return finish(global, 1);
  }
}
