// Transition-relation tests: calls/returns, cobegin fork/join, locks,
// asserts, canonicalization.
#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace copar::sem {
namespace {

using testutil::global_int;
using testutil::run_deterministic;
using testutil::run_source;

TEST(Step, CallAndReturnValue) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r;
    fun add(a, b) { return a + b; }
    fun main() { r = add(2, 3); }
  )", prog);
  EXPECT_EQ(global_int(cfg, "r"), 5);
  EXPECT_TRUE(cfg.all_done());
  EXPECT_TRUE(cfg.faults.empty());
}

TEST(Step, ImplicitReturnYieldsNull) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r = 7;
    fun f() { skip; }
    fun main() { r = f(); }
  )", prog);
  auto v = cfg.global_value("r");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_null());
}

TEST(Step, RecursionComputesFactorial) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r;
    fun fact(n) {
      var t;
      if (n <= 1) { return 1; }
      t = fact(n - 1);
      return n * t;
    }
    fun main() { r = fact(6); }
  )", prog);
  EXPECT_EQ(global_int(cfg, "r"), 720);
}

TEST(Step, FirstClassFunctions) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r;
    fun inc(n) { return n + 1; }
    fun twice(f, x) { var t; t = f(x); t = f(t); return t; }
    fun main() { r = twice(inc, 5); }
  )", prog);
  EXPECT_EQ(global_int(cfg, "r"), 7);
}

TEST(Step, ClosuresCaptureByReference) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r;
    fun main() {
      var counter = 0;
      var bump = fun () { counter = counter + 1; return counter; };
      bump();
      bump();
      r = bump();
    }
  )", prog);
  EXPECT_EQ(global_int(cfg, "r"), 3);
}

TEST(Step, CobeginRunsAllBranches) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var x; var y; var z;
    fun main() { cobegin { x = 1; } || { y = 2; } || { z = 3; } coend; }
  )", prog);
  EXPECT_EQ(global_int(cfg, "x"), 1);
  EXPECT_EQ(global_int(cfg, "y"), 2);
  EXPECT_EQ(global_int(cfg, "z"), 3);
  EXPECT_TRUE(cfg.all_done());
}

TEST(Step, CobeginJoinBlocksParent) {
  auto prog = compile(R"(
    var x;
    fun main() { cobegin { x = 1; } || { x = 2; } coend; x = 3; }
  )");
  Configuration cfg = Configuration::initial(*prog->lowered);
  cfg = apply_action(cfg, 0);  // fork
  ASSERT_EQ(cfg.processes.size(), 3u);
  const ActionInfo parent = action_info(cfg, 0);
  EXPECT_EQ(parent.kind, ActionKind::Join);
  EXPECT_FALSE(parent.enabled);
  cfg = apply_action(cfg, 1);  // child 1 assigns and exits (exit folded)
  EXPECT_FALSE(action_info(cfg, 0).enabled);
  cfg = apply_action(cfg, 2);  // child 2
  EXPECT_TRUE(action_info(cfg, 0).enabled);
}

TEST(Step, BranchesShareParentLocals) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r;
    fun main() {
      var t = 0;
      cobegin { t = t + 1; } || skip; coend;
      r = t;
    }
  )", prog);
  EXPECT_EQ(global_int(cfg, "r"), 1);
}

TEST(Step, NestedCobegin) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var a; var b; var c;
    fun main() {
      cobegin {
        cobegin { a = 1; } || { b = 2; } coend;
      } || { c = 3; } coend;
    }
  )", prog);
  EXPECT_EQ(global_int(cfg, "a"), 1);
  EXPECT_EQ(global_int(cfg, "b"), 2);
  EXPECT_EQ(global_int(cfg, "c"), 3);
}

TEST(Step, CobeginInsideCalledFunction) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var r;
    fun par() {
      var t = 0;
      cobegin { t = t + 1; } || { t = t + 10; } coend;
      return t;
    }
    fun main() { r = par(); }
  )", prog);
  // Under the deterministic schedule both increments apply in some order.
  EXPECT_EQ(global_int(cfg, "r"), 11);
}

TEST(Step, LockProvidesMutualExclusion) {
  auto prog = compile(R"(
    var m; var x;
    fun main() {
      cobegin { lock(m); x = 1; unlock(m); } || { lock(m); x = 2; unlock(m); } coend;
    }
  )");
  Configuration cfg = Configuration::initial(*prog->lowered);
  cfg = apply_action(cfg, 0);  // fork
  cfg = apply_action(cfg, 1);  // p1: lock(m)
  const ActionInfo p2 = action_info(cfg, 2);
  EXPECT_EQ(p2.kind, ActionKind::Lock);
  EXPECT_FALSE(p2.enabled);  // blocked on m
  cfg = apply_action(cfg, 1);  // p1: x = 1
  cfg = apply_action(cfg, 1);  // p1: unlock(m); thread exit folded
  EXPECT_TRUE(action_info(cfg, 2).enabled);
}

TEST(Step, UnlockWithoutHoldFaults) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source("var m; fun main() { unlock(m); }", prog);
  ASSERT_EQ(cfg.faults.size(), 1u);
  EXPECT_EQ(static_cast<Fault>(cfg.faults.begin()->second), Fault::UnlockNotHeld);
}

TEST(Step, DeadlockDetected) {
  auto prog = compile(R"(
    var m1; var m2;
    fun main() {
      cobegin
        { lock(m1); lock(m2); unlock(m2); unlock(m1); }
      ||
        { lock(m2); lock(m1); unlock(m1); unlock(m2); }
      coend;
    }
  )");
  Configuration cfg = Configuration::initial(*prog->lowered);
  cfg = apply_action(cfg, 0);  // fork
  cfg = apply_action(cfg, 1);  // p1: lock(m1)
  cfg = apply_action(cfg, 2);  // p2: lock(m2)
  EXPECT_TRUE(is_deadlock(cfg));
  EXPECT_GT(cfg.num_live(), 0u);
}

TEST(Step, AssertViolationRecordedAndExecutionContinues) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var x;
    fun main() { sA: assert(x == 1); x = 5; }
  )", prog);
  EXPECT_EQ(cfg.violations.size(), 1u);
  EXPECT_EQ(global_int(cfg, "x"), 5);  // execution continued
}

TEST(Step, WhileLoopTerminates) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    var s;
    fun main() {
      var i = 0;
      while (i < 5) { s = s + i; i = i + 1; }
    }
  )", prog);
  EXPECT_EQ(global_int(cfg, "s"), 10);
}

TEST(Step, CanonicalKeyIdentifiesEqualStates) {
  auto prog = compile(R"(
    var x; var y;
    fun main() { cobegin { x = 1; } || { y = 2; } coend; }
  )");
  // Both interleavings reach the same final configuration.
  Configuration a = Configuration::initial(*prog->lowered);
  a = apply_action(a, 0);
  Configuration b = a;
  a = apply_action(a, 1);
  a = apply_action(a, 2);
  a = apply_action(a, 0);  // join
  b = apply_action(b, 2);
  b = apply_action(b, 1);
  b = apply_action(b, 0);  // join
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
}

TEST(Step, CanonicalKeyDistinguishesDifferentStores) {
  auto prog = compile(R"(
    var x;
    fun main() { cobegin { x = 1; } || { x = 2; } coend; }
  )");
  Configuration a = Configuration::initial(*prog->lowered);
  a = apply_action(a, 0);
  Configuration b = a;
  a = apply_action(a, 1);  // x = 1
  b = apply_action(b, 2);  // x = 2
  EXPECT_NE(a.canonical_key(), b.canonical_key());
}

TEST(Step, CanonicalKeyGarbageCollects) {
  // A dropped allocation must not affect state identity.
  auto prog = compile(R"(
    var x;
    fun main() {
      var p = alloc(1);
      p = null;
      x = 1;
    }
  )");
  Configuration a = Configuration::initial(*prog->lowered);
  a = apply_action(a, 0);  // alloc
  a = apply_action(a, 0);  // p = null
  a = apply_action(a, 0);  // x = 1

  auto prog2 = compile(R"(
    var x;
    fun main() {
      var p = alloc(1);
      p = null;
      x = 1;
    }
  )");
  Configuration b = Configuration::initial(*prog2->lowered);
  b = apply_action(b, 0);
  b = apply_action(b, 0);
  b = apply_action(b, 0);
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
}

TEST(Step, ProcedureStringsTrackMovements) {
  auto prog = compile(R"(
    var r;
    fun g() { return 1; }
    fun f() { r = g(); return 2; }
    fun main() { r = f(); }
  )");
  Configuration cfg = Configuration::initial(*prog->lowered);
  const ProcString at_start = cfg.processes[0].pstr;
  cfg = apply_action(cfg, 0);  // call f
  EXPECT_EQ(cfg.processes[0].pstr.size(), at_start.size() + 1);
  cfg = apply_action(cfg, 0);  // call g
  EXPECT_EQ(cfg.processes[0].pstr.size(), at_start.size() + 2);
  cfg = apply_action(cfg, 0);  // return from g (cancels)
  EXPECT_EQ(cfg.processes[0].pstr.size(), at_start.size() + 1);
  cfg = apply_action(cfg, 0);  // return from f
  EXPECT_EQ(cfg.processes[0].pstr, at_start);
}

TEST(Step, BirthdatesRecordForkContext) {
  auto prog = compile(R"(
    var p;
    fun main() { cobegin { p = alloc(1); } || skip; coend; }
  )");
  Configuration cfg = Configuration::initial(*prog->lowered);
  cfg = apply_action(cfg, 0);  // fork
  cfg = apply_action(cfg, 1);  // alloc in branch 0
  bool found = false;
  for (ObjId o = 0; o < cfg.store.num_objects(); ++o) {
    const Object& obj = cfg.store.object(o);
    if (obj.obj_kind == ObjKind::Heap) {
      found = true;
      EXPECT_TRUE(obj.birth.crosses_thread());
    }
  }
  EXPECT_TRUE(found);
}

TEST(Step, ArityMismatchFaults) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source(R"(
    fun f(a, b) { return a; }
    fun main() { f(1); }
  )", prog);
  ASSERT_EQ(cfg.faults.size(), 1u);
  EXPECT_EQ(static_cast<Fault>(cfg.faults.begin()->second), Fault::ArityMismatch);
}

TEST(Step, CallingNonFunctionFaults) {
  const CompiledProgram* prog = nullptr;
  const Configuration cfg = run_source("var x; fun main() { x = 3; x(); }", prog);
  ASSERT_EQ(cfg.faults.size(), 1u);
  EXPECT_EQ(static_cast<Fault>(cfg.faults.begin()->second), Fault::NotAFunction);
}

}  // namespace
}  // namespace copar::sem
