// Lattice-law and abstract-operator soundness tests for every value domain.
#include <gtest/gtest.h>

#include "src/absdom/fixpoint.h"
#include "src/absdom/flat.h"
#include "src/absdom/galois.h"
#include "src/absdom/interval.h"
#include "src/absdom/map.h"
#include "src/absdom/powerset.h"
#include "src/absdom/sign.h"

namespace copar::absdom {
namespace {

const std::vector<std::int64_t> kInts = {-7, -2, -1, 0, 1, 2, 3, 5, 100};

std::vector<FlatInt> flat_sample() {
  std::vector<FlatInt> s = {FlatInt::bottom(), FlatInt::top()};
  for (std::int64_t v : kInts) s.push_back(FlatInt::constant(v));
  return s;
}

std::vector<Interval> interval_sample() {
  std::vector<Interval> s = {Interval::bottom(), Interval::top(), Interval::range(0, 5),
                             Interval::range(-3, 3), Interval::range(2, 100),
                             Interval::range(Interval::kNegInf, 0)};
  for (std::int64_t v : kInts) s.push_back(Interval::constant(v));
  return s;
}

std::vector<Sign> sign_sample() {
  std::vector<Sign> s;
  for (std::uint8_t bits = 0; bits < 8; ++bits) s.push_back(Sign::from_bits(bits));
  return s;
}

TEST(LatticeLaws, Flat) {
  const LawCheck c = check_lattice_laws(flat_sample());
  EXPECT_TRUE(c.ok) << c.violation;
}

TEST(LatticeLaws, Interval) {
  const LawCheck c = check_lattice_laws(interval_sample());
  EXPECT_TRUE(c.ok) << c.violation;
}

TEST(LatticeLaws, Sign) {
  const LawCheck c = check_lattice_laws(sign_sample());
  EXPECT_TRUE(c.ok) << c.violation;
}

TEST(LatticeLaws, PowerSet) {
  std::vector<PowerSet<int>> s = {PowerSet<int>::bottom(), PowerSet<int>::singleton(1),
                                  PowerSet<int>::singleton(2),
                                  PowerSet<int>::singleton(1).join(PowerSet<int>::singleton(2)),
                                  PowerSet<int>({std::set<int>{1, 2, 3}})};
  const LawCheck c = check_lattice_laws(s);
  EXPECT_TRUE(c.ok) << c.violation;
}

TEST(LatticeLaws, MapLattice) {
  MapLattice<int, FlatInt> a;
  a.join_at(1, FlatInt::constant(3));
  MapLattice<int, FlatInt> b;
  b.join_at(1, FlatInt::constant(4));
  b.join_at(2, FlatInt::constant(5));
  const LawCheck c =
      check_lattice_laws<MapLattice<int, FlatInt>>({MapLattice<int, FlatInt>::bottom(), a, b,
                                                    a.join(b)});
  EXPECT_TRUE(c.ok) << c.violation;
}

// --- abstract operator soundness over sampled integers ---------------------

struct OpCase {
  const char* name;
  std::optional<std::int64_t> (*conc)(std::int64_t, std::int64_t);
};

const OpCase kOps[] = {
    {"add", [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> { return x + y; }},
    {"sub", [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> { return x - y; }},
    {"mul", [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> { return x * y; }},
    {"div",
     [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> {
       if (y == 0) return std::nullopt;
       return x / y;
     }},
    {"mod",
     [](std::int64_t x, std::int64_t y) -> std::optional<std::int64_t> {
       if (y == 0) return std::nullopt;
       return x % y;
     }},
};

template <typename D>
D abs_op_of(const char* name, const D& a, const D& b) {
  const std::string n = name;
  if (n == "add") return D::add(a, b);
  if (n == "sub") return D::sub(a, b);
  if (n == "mul") return D::mul(a, b);
  if (n == "div") return D::div(a, b);
  return D::mod(a, b);
}

class FlatOps : public ::testing::TestWithParam<OpCase> {};
class IntervalOps : public ::testing::TestWithParam<OpCase> {};
class SignOps : public ::testing::TestWithParam<OpCase> {};

TEST_P(FlatOps, Sound) {
  const OpCase& op = GetParam();
  const LawCheck c = check_binop_sound<FlatInt>(
      kInts, [](std::int64_t v) { return FlatInt::constant(v); },
      [](std::int64_t v, const FlatInt& d) {
        if (d.is_top()) return true;
        auto k = d.as_constant();
        return k.has_value() && *k == v;
      },
      [&](const FlatInt& a, const FlatInt& b) { return abs_op_of(op.name, a, b); }, op.conc);
  EXPECT_TRUE(c.ok) << c.violation;
}

TEST_P(IntervalOps, Sound) {
  const OpCase& op = GetParam();
  const LawCheck c = check_binop_sound<Interval>(
      kInts, [](std::int64_t v) { return Interval::constant(v); },
      [](std::int64_t v, const Interval& d) {
        return !d.is_bottom() && d.lo() <= v && v <= d.hi();
      },
      [&](const Interval& a, const Interval& b) { return abs_op_of(op.name, a, b); }, op.conc);
  EXPECT_TRUE(c.ok) << c.violation;
}

TEST_P(SignOps, Sound) {
  const OpCase& op = GetParam();
  const LawCheck c = check_binop_sound<Sign>(
      kInts, [](std::int64_t v) { return Sign::constant(v); },
      [](std::int64_t v, const Sign& d) { return Sign::constant(v).leq(d); },
      [&](const Sign& a, const Sign& b) { return abs_op_of(op.name, a, b); }, op.conc);
  EXPECT_TRUE(c.ok) << c.violation;
}

INSTANTIATE_TEST_SUITE_P(AllOps, FlatOps, ::testing::ValuesIn(kOps),
                         [](const auto& param_info) { return param_info.param.name; });
INSTANTIATE_TEST_SUITE_P(AllOps, IntervalOps, ::testing::ValuesIn(kOps),
                         [](const auto& param_info) { return param_info.param.name; });
INSTANTIATE_TEST_SUITE_P(AllOps, SignOps, ::testing::ValuesIn(kOps),
                         [](const auto& param_info) { return param_info.param.name; });

// --- comparisons and truthiness --------------------------------------------

TEST(FlatDomain, ComparisonOnConstants) {
  const FlatInt r = FlatInt::cmp(FlatInt::constant(2), FlatInt::constant(3),
                                 [](std::int64_t x, std::int64_t y) { return x < y; });
  EXPECT_EQ(r.as_constant(), 1);
}

TEST(FlatDomain, Truthiness) {
  EXPECT_TRUE(FlatInt::constant(5).may_be_truthy());
  EXPECT_FALSE(FlatInt::constant(5).may_be_falsy());
  EXPECT_TRUE(FlatInt::top().may_be_truthy());
  EXPECT_TRUE(FlatInt::top().may_be_falsy());
  EXPECT_FALSE(FlatInt::bottom().may_be_truthy());
}

// Interval comparisons claim to be exact for the six orderings: check
// against brute force over all small intervals.
struct CmpCase {
  const char* name;
  bool (*pred)(std::int64_t, std::int64_t);
};
class IntervalCmp : public ::testing::TestWithParam<CmpCase> {};

TEST_P(IntervalCmp, ExactOnSmallIntervals) {
  const auto pred = GetParam().pred;
  for (std::int64_t alo = -3; alo <= 3; ++alo) {
    for (std::int64_t ahi = alo; ahi <= 3; ++ahi) {
      for (std::int64_t blo = -3; blo <= 3; ++blo) {
        for (std::int64_t bhi = blo; bhi <= 3; ++bhi) {
          bool can_true = false;
          bool can_false = false;
          for (std::int64_t x = alo; x <= ahi; ++x) {
            for (std::int64_t y = blo; y <= bhi; ++y) {
              (pred(x, y) ? can_true : can_false) = true;
            }
          }
          const Interval r =
              Interval::cmp(Interval::range(alo, ahi), Interval::range(blo, bhi), pred);
          EXPECT_EQ(r.hi() == 1, can_true)
              << GetParam().name << " [" << alo << "," << ahi << "] vs [" << blo << ","
              << bhi << "]";
          EXPECT_EQ(r.lo() == 0, can_false)
              << GetParam().name << " [" << alo << "," << ahi << "] vs [" << blo << ","
              << bhi << "]";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orderings, IntervalCmp,
    ::testing::Values(
        CmpCase{"lt", +[](std::int64_t x, std::int64_t y) { return x < y; }},
        CmpCase{"le", +[](std::int64_t x, std::int64_t y) { return x <= y; }},
        CmpCase{"gt", +[](std::int64_t x, std::int64_t y) { return x > y; }},
        CmpCase{"ge", +[](std::int64_t x, std::int64_t y) { return x >= y; }},
        CmpCase{"eq", +[](std::int64_t x, std::int64_t y) { return x == y; }},
        CmpCase{"ne", +[](std::int64_t x, std::int64_t y) { return x != y; }}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(IntervalDomain, CmpWithInfiniteBounds) {
  const auto ge = +[](std::int64_t x, std::int64_t y) { return x >= y; };
  // [0, +inf] >= [0,0]: always true.
  EXPECT_EQ(Interval::cmp(Interval::range(0, Interval::kPosInf), Interval::constant(0), ge)
                .as_constant(),
            1);
  // [-inf, -1] >= [0,0]: always false.
  EXPECT_EQ(Interval::cmp(Interval::range(Interval::kNegInf, -1), Interval::constant(0), ge)
                .as_constant(),
            0);
  // top vs top: undecided.
  EXPECT_EQ(Interval::cmp(Interval::top(), Interval::top(), ge), Interval::range(0, 1));
}

TEST(IntervalDomain, WideningStabilizesAscendingChain) {
  Interval acc = Interval::constant(0);
  for (int i = 1; i < 100; ++i) {
    const Interval next = acc.join(Interval::constant(i));
    if (next.leq(acc)) break;
    acc = acc.widen(next);
  }
  EXPECT_EQ(acc.hi(), Interval::kPosInf);  // jumped to +inf instead of crawling
  EXPECT_EQ(acc.lo(), 0);
}

TEST(IntervalDomain, TruthinessAroundZero) {
  EXPECT_TRUE(Interval::range(-1, 1).may_be_falsy());
  EXPECT_TRUE(Interval::range(-1, 1).may_be_truthy());
  EXPECT_FALSE(Interval::constant(0).may_be_truthy());
  EXPECT_FALSE(Interval::range(1, 5).may_be_falsy());
}

TEST(IntervalDomain, DivisionAtTheRails) {
  // kNegInf doubles as the finite INT64_MIN, so INT64_MIN / -1 — the one
  // overflowing case of signed division, a hardware trap — must never reach
  // the CPU (regression: it used to SIGFPE).
  const Interval int_min = Interval::constant(Interval::kNegInf);
  EXPECT_EQ(Interval::div(int_min, Interval::constant(-1)).hi(), Interval::kPosInf);
  // -∞ / -1 flips the bound to +∞.
  EXPECT_EQ(Interval::div(Interval::range(Interval::kNegInf, 0), Interval::constant(-1)),
            Interval::range(0, Interval::kPosInf));
  // Infinite bounds divide without collapsing: top / 2 stays top.
  EXPECT_TRUE(Interval::div(Interval::top(), Interval::constant(2)).is_top());
  // Plain finite division still folds exactly.
  EXPECT_EQ(Interval::div(Interval::range(-9, 9), Interval::constant(3)),
            Interval::range(-3, 3));
}

TEST(IntervalDomain, ModuloAtTheRails) {
  // INT64_MIN % -1 traps on hardware like the division; x % -1 == 0 for
  // every x, so the domain folds it before the CPU sees it.
  EXPECT_EQ(Interval::mod(Interval::constant(Interval::kNegInf), Interval::constant(-1))
                .as_constant(),
            0);
  EXPECT_EQ(Interval::mod(Interval::constant(7), Interval::constant(-1)).as_constant(), 0);
  // ±∞ sentinels are not real constants: folding them as INT64_MIN/MAX
  // would invent a value; the result must stay top.
  EXPECT_TRUE(
      Interval::mod(Interval::constant(Interval::kNegInf), Interval::constant(7)).is_top());
  EXPECT_TRUE(
      Interval::mod(Interval::constant(Interval::kPosInf), Interval::constant(7)).is_top());
  EXPECT_EQ(Interval::mod(Interval::constant(-7), Interval::constant(3)).as_constant(),
            -7 % 3);
}

TEST(IntervalDomain, WideningIsStableAtTheRails) {
  // A bound already at its rail has nowhere to jump: widening is idempotent
  // there, and a near-rail bound that moves lands exactly on the rail (no
  // off-by-one overflow past it).
  const Interval at_rail = Interval::range(0, Interval::kPosInf);
  EXPECT_EQ(at_rail.widen(at_rail), at_rail);
  const Interval near_hi = Interval::range(0, Interval::kPosInf - 1);
  EXPECT_EQ(near_hi.widen(Interval::range(0, Interval::kPosInf)).hi(), Interval::kPosInf);
  const Interval near_lo = Interval::range(Interval::kNegInf + 1, 0);
  EXPECT_EQ(near_lo.widen(Interval::range(Interval::kNegInf, 0)).lo(), Interval::kNegInf);
}

TEST(IntervalDomain, NarrowingRefinesOnlyInfiniteBounds) {
  // narrow() undoes widening jumps: an infinite bound is refined from the
  // next iterate, a finite bound never moves (so it cannot oscillate).
  EXPECT_EQ(Interval::top().narrow(Interval::range(0, 5)), Interval::range(0, 5));
  EXPECT_EQ(Interval::range(0, Interval::kPosInf).narrow(Interval::range(0, 7)),
            Interval::range(0, 7));
  EXPECT_EQ(Interval::range(Interval::kNegInf, 9).narrow(Interval::range(-2, 9)),
            Interval::range(-2, 9));
  EXPECT_EQ(Interval::range(0, 5).narrow(Interval::range(1, 4)), Interval::range(0, 5));
  EXPECT_TRUE(Interval::range(0, 5).narrow(Interval::bottom()).is_bottom());
  EXPECT_EQ(Interval::bottom().narrow(Interval::range(0, 5)), Interval::range(0, 5));
}

TEST(FlatDomain, NarrowingRefinesOnlyTop) {
  EXPECT_EQ(FlatInt::top().narrow(FlatInt::constant(3)), FlatInt::constant(3));
  EXPECT_EQ(FlatInt::constant(4).narrow(FlatInt::constant(3)), FlatInt::constant(4));
  EXPECT_EQ(FlatInt::bottom().narrow(FlatInt::constant(3)), FlatInt::bottom());
}

TEST(SignDomain, NegateSwapsSigns) {
  EXPECT_EQ(Sign::negate(Sign::constant(3)), Sign::constant(-3));
  EXPECT_EQ(Sign::negate(Sign::constant(0)), Sign::constant(0));
  EXPECT_EQ(Sign::negate(Sign::top()), Sign::top());
}

TEST(MapLattice, WeakAndStrongUpdates) {
  MapLattice<int, FlatInt> m;
  EXPECT_TRUE(m.join_at(1, FlatInt::constant(3)));
  EXPECT_FALSE(m.join_at(1, FlatInt::constant(3)));  // no growth
  EXPECT_TRUE(m.join_at(1, FlatInt::constant(4)));   // grows to top
  EXPECT_TRUE(m.get(1).is_top());
  m.set(1, FlatInt::constant(7));
  EXPECT_EQ(m.get(1).as_constant(), 7);
  EXPECT_TRUE(m.get(99).is_bottom());
}

// --- fixpoint solver --------------------------------------------------------

TEST(Fixpoint, SolvesReachabilityStyleEquations) {
  // Chain 0 -> 1 -> 2 with increments capped by the flat lattice: values
  // propagate and stabilize.
  FixpointSolver<FlatInt> solver(3);
  solver.add_edge(0, 1);
  solver.add_edge(1, 2);
  solver.seed(0, FlatInt::constant(5));
  const FixpointStats stats = solver.solve([](std::size_t n, const auto& read) {
    if (n == 0) return read(0);
    return read(n - 1);
  });
  EXPECT_EQ(solver.value(2).as_constant(), 5);
  EXPECT_GT(stats.iterations, 0u);
}

TEST(Fixpoint, WideningTerminatesLoopEquations) {
  // Node 1 models a loop head: X1 = X1 + [1,1] joined with the entry [0,0].
  FixpointSolver<Interval> solver(2);
  solver.add_edge(0, 1);
  solver.add_edge(1, 1);
  solver.seed(0, Interval::constant(0));
  const FixpointStats stats = solver.solve(
      [](std::size_t n, const auto& read) {
        if (n == 0) return Interval::constant(0);
        return read(0).join(Interval::add(read(1), Interval::constant(1)));
      },
      /*use_widening=*/true);
  EXPECT_TRUE(Interval::range(0, 10).leq(solver.value(1)));
  EXPECT_LT(stats.iterations, 100u);  // widening, not a crawl to +inf
}

}  // namespace
}  // namespace copar::absdom

// NOTE: appended tests for the parity domain.
#include "src/absdom/parity.h"
#include "src/absem/absexplore.h"
#include "src/sem/program.h"

namespace copar::absdom {
namespace {

std::vector<Parity> parity_sample() {
  std::vector<Parity> s;
  for (std::uint8_t bits = 0; bits < 4; ++bits) s.push_back(Parity::from_bits(bits));
  return s;
}

TEST(LatticeLaws, Parity) {
  const LawCheck c = check_lattice_laws(parity_sample());
  EXPECT_TRUE(c.ok) << c.violation;
}

class ParityOps : public ::testing::TestWithParam<OpCase> {};

TEST_P(ParityOps, Sound) {
  const OpCase& op = GetParam();
  const LawCheck c = check_binop_sound<Parity>(
      kInts, [](std::int64_t v) { return Parity::constant(v); },
      [](std::int64_t v, const Parity& d) { return Parity::constant(v).leq(d); },
      [&](const Parity& a, const Parity& b) { return abs_op_of(op.name, a, b); }, op.conc);
  EXPECT_TRUE(c.ok) << c.violation;
}

INSTANTIATE_TEST_SUITE_P(AllOps, ParityOps, ::testing::ValuesIn(kOps),
                         [](const auto& param_info) { return param_info.param.name; });

TEST(ParityDomain, ArithmeticRules) {
  const Parity even = Parity::constant(2);
  const Parity odd = Parity::constant(3);
  EXPECT_EQ(Parity::add(even, odd), odd);
  EXPECT_EQ(Parity::add(odd, odd), even);
  EXPECT_EQ(Parity::mul(even, odd), even);
  EXPECT_EQ(Parity::mul(odd, odd), odd);
}

TEST(ParityDomain, Truthiness) {
  EXPECT_TRUE(Parity::constant(2).may_be_falsy());   // 0 is even
  EXPECT_FALSE(Parity::constant(3).may_be_falsy());  // odd is never 0
  EXPECT_TRUE(Parity::constant(3).may_be_truthy());
}

TEST(ParityDomain, EndToEndLoopInvariant) {
  // x alternates 0,2,4,...: stays even through the abstract loop.
  auto p = copar::compile(R"(
    var x;
    fun main() {
      while (true) { sQ: x = x + 2; }
    }
  )");
  absem::AbsExplorer<Parity> engine(*p->lowered, {});
  const auto r = engine.run();
  EXPECT_FALSE(r.truncated);
  std::uint32_t slot = 0;
  for (const auto& g : p->lowered->globals()) {
    if (p->lowered->module().interner().spelling(g.name) == "x") slot = g.slot;
  }
  bool found = false;
  for (const auto& [point, store] : r.point_stores) {
    const auto v = store.get(absem::AbsLoc::global(slot));
    if (!v.num.is_bottom()) {
      found = true;
      EXPECT_EQ(v.num, Parity::constant(0)) << "x stayed even";
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace copar::absdom
