// Unit tests for the support kernel: interner, bitset, hashing, stats,
// diagnostics.
#include <gtest/gtest.h>

#include "src/support/bitset.h"
#include "src/support/diagnostics.h"
#include "src/support/hash.h"
#include "src/support/interner.h"
#include "src/support/stats.h"

namespace copar {
namespace {

TEST(Interner, InternReturnsSameSymbolForSameSpelling) {
  Interner in;
  const Symbol a = in.intern("hello");
  const Symbol b = in.intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.valid());
}

TEST(Interner, DistinctSpellingsGetDistinctSymbols) {
  Interner in;
  EXPECT_NE(in.intern("a"), in.intern("b"));
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, SpellingRoundTrips) {
  Interner in;
  const Symbol s = in.intern("cobegin_branch_3");
  EXPECT_EQ(in.spelling(s), "cobegin_branch_3");
}

TEST(Interner, SurvivesRehashing) {
  Interner in;
  std::vector<Symbol> syms;
  for (int i = 0; i < 1000; ++i) syms.push_back(in.intern("sym" + std::to_string(i)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.spelling(syms[static_cast<std::size_t>(i)]), "sym" + std::to_string(i));
    EXPECT_EQ(in.intern("sym" + std::to_string(i)), syms[static_cast<std::size_t>(i)]);
  }
}

TEST(Interner, DefaultSymbolIsInvalid) {
  const Symbol s;
  EXPECT_FALSE(s.valid());
}

TEST(Bitset, SetTestReset) {
  DynamicBitset b;
  EXPECT_FALSE(b.test(5));
  b.set(5);
  EXPECT_TRUE(b.test(5));
  b.reset(5);
  EXPECT_FALSE(b.test(5));
}

TEST(Bitset, GrowsOnDemand) {
  DynamicBitset b;
  b.set(1000);
  EXPECT_TRUE(b.test(1000));
  EXPECT_FALSE(b.test(999));
  EXPECT_EQ(b.count(), 1u);
}

TEST(Bitset, IntersectsAcrossDifferentSizes) {
  DynamicBitset a;
  DynamicBitset b;
  a.set(3);
  b.set(3);
  b.set(500);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  a.reset(3);
  EXPECT_FALSE(a.intersects(b));
}

TEST(Bitset, UnionAndIntersection) {
  DynamicBitset a;
  DynamicBitset b;
  a.set(1);
  a.set(64);
  b.set(64);
  b.set(200);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(64));
}

TEST(Bitset, EqualityIgnoresTrailingZeros) {
  DynamicBitset a;
  DynamicBitset b;
  a.set(2);
  b.set(2);
  b.set(700);
  b.reset(700);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Bitset, ForEachVisitsAscending) {
  DynamicBitset b;
  b.set(7);
  b.set(130);
  b.set(64);
  EXPECT_EQ(b.bits(), (std::vector<std::size_t>{7, 64, 130}));
}

TEST(Hash, MixChangesValue) {
  EXPECT_NE(hash_mix(1), hash_mix(2));
  EXPECT_NE(hash_combine(0, 1), hash_combine(1, 0));
}

TEST(Hash, BytesDiffer) {
  EXPECT_NE(hash_bytes("abc"), hash_bytes("abd"));
  EXPECT_EQ(hash_bytes("abc"), hash_bytes("abc"));
}

TEST(Stats, AddAndGet) {
  StatRegistry s;
  EXPECT_EQ(s.get("x"), 0u);
  s.add("x");
  s.add("x", 4);
  EXPECT_EQ(s.get("x"), 5u);
  s.set("x", 2);
  EXPECT_EQ(s.get("x"), 2u);
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine d;
  d.warning(SourceLoc{1, 1}, "w");
  EXPECT_FALSE(d.has_errors());
  d.error(SourceLoc{2, 3}, "e");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_NE(d.to_string().find("2:3: error: e"), std::string::npos);
}

TEST(Diagnostics, RequireThrows) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "boom"), Error);
}

}  // namespace
}  // namespace copar
