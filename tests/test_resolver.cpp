#include <gtest/gtest.h>

#include "src/lang/parser.h"

namespace copar::lang {
namespace {

void ok(std::string_view src) {
  DiagnosticEngine diags;
  (void)parse_program(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
}

void bad(std::string_view src, std::string_view needle) {
  DiagnosticEngine diags;
  (void)parse_program(src, diags);
  ASSERT_TRUE(diags.has_errors()) << "expected resolve error for: " << src;
  EXPECT_NE(diags.to_string().find(needle), std::string::npos)
      << "diagnostics were:\n" << diags.to_string();
}

TEST(Resolver, UndeclaredVariableRejected) {
  bad("fun main() { x = 1; }", "undeclared");
}

TEST(Resolver, GlobalsVisibleInFunctions) {
  ok("var x; fun main() { x = 1; }");
}

TEST(Resolver, ParamsVisible) { ok("fun f(a) { return a; } fun main() { f(1); }"); }

TEST(Resolver, LocalsScopedToBlock) {
  bad("fun main() { { var t; t = 1; } t = 2; }", "undeclared");
}

TEST(Resolver, DuplicateInSameScopeRejected) {
  bad("fun main() { var t; var t; }", "duplicate");
}

TEST(Resolver, ShadowingAcrossScopesAllowed) {
  ok("var t; fun main() { var t; { var t; t = 1; } t = 2; }");
}

TEST(Resolver, FunctionsVisibleBeforeDeclaration) {
  ok("fun main() { g(); } fun g() { skip; }");
}

TEST(Resolver, MutualRecursionAllowed) {
  ok(R"(
    fun even(n) { if (n == 0) { return 1; } odd(n - 1); return 0; }
    fun odd(n) { if (n == 0) { return 0; } even(n - 1); return 1; }
    fun main() { even(4); }
  )");
}

TEST(Resolver, ReturnInsideCobeginRejected) {
  bad("fun main() { cobegin { return; } || skip; coend; }", "cobegin");
}

TEST(Resolver, ReturnInsideLambdaInsideCobeginAllowed) {
  ok(R"(
    var f;
    fun main() {
      cobegin { f = fun () { return 1; }; f(); } || skip; coend;
    }
  )");
}

TEST(Resolver, CobeginBranchSeesEnclosingLocals) {
  ok(R"(
    fun main() {
      var t;
      cobegin { t = 1; } || { t = 2; } coend;
    }
  )");
}

TEST(Resolver, BranchLocalNotVisibleOutside) {
  bad(R"(
    fun main() {
      cobegin { var t; t = 1; } || skip; coend;
      t = 2;
    }
  )", "undeclared");
}

TEST(Resolver, LambdaCapturesEnclosingScope) {
  ok(R"(
    var g;
    fun main() {
      var x;
      g = fun () { x = x + 1; };
      g();
    }
  )");
}

TEST(Resolver, DuplicateLabelRejected) {
  bad("var x; fun main() { s1: x = 1; s1: x = 2; }", "duplicate statement label");
}

TEST(Resolver, DuplicateGlobalRejected) { bad("var x; var x;", "duplicate"); }

}  // namespace
}  // namespace copar::lang
