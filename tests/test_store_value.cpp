#include <gtest/gtest.h>

#include "src/sem/store.h"
#include "src/sem/value.h"

namespace copar::sem {
namespace {

TEST(Value, IntRoundTrip) {
  const Value v = Value::integer(-42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), -42);
  EXPECT_TRUE(Value::integer(1).truthy());
  EXPECT_FALSE(Value::integer(0).truthy());
}

TEST(Value, PointerRoundTrip) {
  const Value v = Value::pointer(7, 3);
  EXPECT_TRUE(v.is_ptr());
  EXPECT_EQ(v.ptr_obj(), 7u);
  EXPECT_EQ(v.ptr_off(), 3u);
  EXPECT_TRUE(v.truthy());
}

TEST(Value, ClosureRoundTrip) {
  const Value v = Value::closure(5, kNoObj);
  EXPECT_TRUE(v.is_closure());
  EXPECT_EQ(v.closure_proc(), 5u);
  EXPECT_EQ(v.closure_env(), kNoObj);
}

TEST(Value, NullIsFalsy) {
  EXPECT_FALSE(Value::null().truthy());
  EXPECT_TRUE(Value::null().is_null());
}

TEST(Value, EqualityAndHash) {
  EXPECT_EQ(Value::integer(3), Value::integer(3));
  EXPECT_NE(Value::integer(3), Value::integer(4));
  EXPECT_NE(Value::integer(0), Value::null());
  EXPECT_NE(Value::pointer(1, 0), Value::pointer(1, 1));
  EXPECT_EQ(Value::pointer(1, 0).hash(), Value::pointer(1, 0).hash());
}

TEST(Store, AllocateAndAccess) {
  Store s;
  const ObjId a = s.allocate(ObjKind::Heap, 11, 0, ProcString(), 3);
  EXPECT_EQ(s.num_objects(), 1u);
  EXPECT_EQ(s.read(a, 0), Value::integer(0));
  s.write(a, 2, Value::integer(9));
  EXPECT_EQ(s.read(a, 2), Value::integer(9));
}

TEST(Store, BoundsChecking) {
  Store s;
  const ObjId a = s.allocate(ObjKind::Heap, 1, 0, ProcString(), 2);
  EXPECT_TRUE(s.in_bounds(a, 1));
  EXPECT_FALSE(s.in_bounds(a, 2));
  EXPECT_FALSE(s.in_bounds(a + 1, 0));
  EXPECT_THROW((void)s.read(a, 5), Error);
}

TEST(Store, DenseLocationIds) {
  Store s;
  const ObjId a = s.allocate(ObjKind::Heap, 1, 0, ProcString(), 2);
  const ObjId b = s.allocate(ObjKind::Heap, 2, 0, ProcString(), 3);
  EXPECT_EQ(s.loc_id(a, 0), 0u);
  EXPECT_EQ(s.loc_id(a, 1), 1u);
  EXPECT_EQ(s.loc_id(b, 0), 2u);
  EXPECT_EQ(s.num_locations(), 5u);
}

TEST(Store, LocateInvertsLocId) {
  Store s;
  const ObjId a = s.allocate(ObjKind::Heap, 1, 0, ProcString(), 2);
  const ObjId b = s.allocate(ObjKind::Heap, 2, 0, ProcString(), 4);
  for (ObjId obj : {a, b}) {
    for (std::uint32_t off = 0; off < s.object(obj).cells.size(); ++off) {
      const auto [o2, f2] = s.locate(s.loc_id(obj, off));
      EXPECT_EQ(o2, obj);
      EXPECT_EQ(f2, off);
    }
  }
}

TEST(Store, LocateSkipsZeroCellObjects) {
  Store s;
  const ObjId a = s.allocate(ObjKind::Heap, 1, 0, ProcString(), 1);
  (void)s.allocate(ObjKind::Heap, 2, 0, ProcString(), 0);  // zero cells
  const ObjId c = s.allocate(ObjKind::Heap, 3, 0, ProcString(), 1);
  EXPECT_EQ(s.locate(0).first, a);
  EXPECT_EQ(s.locate(1).first, c);
}

TEST(Store, BirthdateStored) {
  Store s;
  ProcString birth;
  birth = birth.append(ProcString::call_sym(4));
  const ObjId a = s.allocate(ObjKind::Heap, 1, 2, birth, 1);
  EXPECT_EQ(s.object(a).birth, birth);
  EXPECT_EQ(s.object(a).creator, 2u);
}

}  // namespace
}  // namespace copar::sem
