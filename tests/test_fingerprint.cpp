// Unit tests of the 128-bit streaming fingerprint and the open-addressing
// fingerprint table, plus the key/fingerprint consistency contract on real
// configurations.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/explore/explorer.h"
#include "src/sem/program.h"
#include "src/support/fingerprint.h"
#include "src/workload/paper_examples.h"

namespace copar::support {
namespace {

Fingerprint fp_of_bytes(const std::string& bytes) {
  Fp128Hasher h;
  for (char c : bytes) h.u8(static_cast<std::uint8_t>(c));
  return h.finalize();
}

TEST(Fp128Hasher, DeterministicAndLengthSensitive) {
  EXPECT_EQ(fp_of_bytes("hello"), fp_of_bytes("hello"));
  EXPECT_FALSE(fp_of_bytes("hello") == fp_of_bytes("hello!"));
  // Trailing zero bytes must change the fingerprint (length is hashed).
  EXPECT_FALSE(fp_of_bytes("abc") == fp_of_bytes(std::string("abc\0", 4)));
  EXPECT_FALSE(fp_of_bytes("") == fp_of_bytes(std::string(1, '\0')));
}

TEST(Fp128Hasher, WidthHelpersMatchByteStream) {
  // u32/u64 are defined as their little-endian byte sequences.
  Fp128Hasher a;
  a.u32(0x04030201u);
  Fp128Hasher b;
  for (std::uint8_t v : {1, 2, 3, 4}) b.u8(v);
  EXPECT_EQ(a.finalize(), b.finalize());

  Fp128Hasher c;
  c.u64(0x0807060504030201ull);
  Fp128Hasher d;
  for (std::uint8_t v : {1, 2, 3, 4, 5, 6, 7, 8}) d.u8(v);
  EXPECT_EQ(c.finalize(), d.finalize());

  // ...at every buffer offset, not just word-aligned ones: the packed
  // u32/u64 fast paths carry bytes across the 8-byte flush boundary, and
  // each carry case (offset 5..7 for u32, 1..7 for u64) must produce the
  // same stream as the byte-at-a-time definition.
  for (int off = 0; off < 8; ++off) {
    Fp128Hasher e;
    Fp128Hasher f;
    for (int i = 0; i < off; ++i) {
      e.u8(static_cast<std::uint8_t>(0x40 + i));
      f.u8(static_cast<std::uint8_t>(0x40 + i));
    }
    e.u32(0xd4c3b2a1u);
    for (std::uint8_t v : {0xa1, 0xb2, 0xc3, 0xd4}) f.u8(v);
    e.u64(0x8877665544332211ull);
    for (std::uint8_t v : {0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}) f.u8(v);
    EXPECT_EQ(e.finalize(), f.finalize()) << "offset " << off;
  }
}

TEST(Fp128Hasher, NeverProducesReservedMarkers) {
  // Exhaustive search is impossible; spot-check a pile of inputs for the
  // structural guarantee hi != 0 (empty/tombstone markers are hi == 0).
  for (std::uint32_t i = 0; i < 10000; ++i) {
    Fp128Hasher h;
    h.u32(i);
    EXPECT_NE(h.finalize().hi, 0u);
  }
}

TEST(FingerprintTable, InsertAssignsDenseIdsAndDedups) {
  FingerprintTable t;
  for (std::uint32_t i = 0; i < 100; ++i) {
    Fp128Hasher h;
    h.u32(i);
    const auto r = t.insert(h.finalize());
    EXPECT_TRUE(r.inserted);
    EXPECT_EQ(r.id, i);
  }
  EXPECT_EQ(t.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    Fp128Hasher h;
    h.u32(i);
    const auto r = t.insert(h.finalize());
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(r.id, i);
    EXPECT_TRUE(t.contains(h.finalize()));
  }
  EXPECT_EQ(t.size(), 100u);
}

TEST(FingerprintTable, EraseAndTombstoneReuse) {
  FingerprintTable t;
  std::vector<Fingerprint> fps;
  for (std::uint32_t i = 0; i < 200; ++i) {
    Fp128Hasher h;
    h.u32(i);
    fps.push_back(h.finalize());
    t.insert(fps.back());
  }
  for (std::uint32_t i = 0; i < 200; i += 2) EXPECT_TRUE(t.erase(fps[i]));
  EXPECT_EQ(t.size(), 100u);
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(t.contains(fps[i]), i % 2 == 1) << i;
  }
  EXPECT_FALSE(t.erase(fps[0]));  // already gone
  // Re-inserting erased fingerprints must work (tombstone reuse) and keep
  // probing for survivors intact.
  for (std::uint32_t i = 0; i < 200; i += 2) EXPECT_TRUE(t.insert(fps[i]).inserted);
  EXPECT_EQ(t.size(), 200u);
  for (const Fingerprint& fp : fps) EXPECT_TRUE(t.contains(fp));
}

TEST(FingerprintTable, SurvivesGrowthWithManyEntries) {
  FingerprintTable t;
  constexpr std::uint32_t kN = 5000;
  for (std::uint32_t i = 0; i < kN; ++i) {
    Fp128Hasher h;
    h.u64(i * 0x9e3779b97f4a7c15ull);
    ASSERT_TRUE(t.insert(h.finalize()).inserted);
  }
  EXPECT_EQ(t.size(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    Fp128Hasher h;
    h.u64(i * 0x9e3779b97f4a7c15ull);
    EXPECT_TRUE(t.contains(h.finalize()));
  }
  // ~20 bytes per slot at <= 70% load: far below a string-keyed map.
  EXPECT_GT(t.memory_bytes(), kN * sizeof(Fingerprint));
  EXPECT_LT(t.memory_bytes(), kN * 4 * (sizeof(Fingerprint) + sizeof(std::uint32_t)));
}

TEST(ConfigFingerprint, AgreesWithCanonicalKey) {
  // Two configurations have equal fingerprints iff their canonical keys are
  // equal — the serialization traversal is shared, so this checks the hash
  // plumbing, not the canonicalization itself.
  auto prog = compile(workload::fig2_shasha_snir());
  explore::ExploreOptions opts;
  const auto r = explore::explore(*prog->lowered, opts);

  std::set<std::string> keys;
  std::set<std::pair<std::uint64_t, std::uint64_t>> fps;
  for (const auto& [key, t] : r.terminals) {
    EXPECT_EQ(t.config.canonical_key(), key);
    const Fingerprint fp = t.config.canonical_fingerprint();
    EXPECT_EQ(fp, t.config.canonical_fingerprint());  // stable
    keys.insert(key);
    fps.emplace(fp.hi, fp.lo);
  }
  // Distinct keys must give distinct fingerprints (no collisions among the
  // handful of terminals here).
  EXPECT_EQ(keys.size(), fps.size());
}

}  // namespace
}  // namespace copar::support
