// Witness-schedule tests: the explorer can produce a concrete interleaving
// exhibiting a deadlock, an assertion violation, a fault, or a chosen
// outcome — and the schedule replays to that state.
#include <gtest/gtest.h>

#include "src/analysis/common.h"
#include "src/explore/witness.h"
#include "src/sem/program.h"
#include "src/workload/paper_examples.h"
#include "src/workload/philosophers.h"

namespace copar::explore {
namespace {

std::vector<std::unique_ptr<CompiledProgram>>& keep_alive() {
  static std::vector<std::unique_ptr<CompiledProgram>> v;
  return v;
}

const CompiledProgram& compiled(std::string_view src) {
  keep_alive().push_back(compile(src));
  return *keep_alive().back();
}

/// Replays a witness's schedule from the initial configuration and checks
/// it lands on the recorded terminal.
void check_replay(const sem::LoweredProgram& prog, const Witness& w) {
  sem::Configuration cfg = sem::Configuration::initial(prog);
  for (const WitnessStep& step : w.steps) {
    const sem::ActionInfo info = sem::action_info(cfg, step.pid);
    ASSERT_TRUE(info.exists && info.enabled)
        << "witness step not fireable: p" << step.pid << " at " << step.point;
    EXPECT_EQ(info.kind, step.kind);
    cfg = sem::apply_action(cfg, step.pid);
  }
  EXPECT_EQ(cfg.canonical_key(), w.terminal.canonical_key());
}

TEST(Witness, DeadlockScheduleForPhilosophers) {
  const auto& p = compiled(workload::dining_philosophers(3));
  const auto w = find_deadlock(*p.lowered);
  ASSERT_TRUE(w.has_value());
  // Classic circular wait: every philosopher grabs its first fork. The
  // shortest schedule is fork + 3 lock actions.
  EXPECT_EQ(w->steps.size(), 4u);
  check_replay(*p.lowered, *w);
  EXPECT_GT(w->terminal.num_live(), 0u);
}

TEST(Witness, NoDeadlockInLeftHandedVariant) {
  const auto& p = compiled(workload::dining_philosophers(3, /*left_handed=*/true));
  EXPECT_FALSE(find_deadlock(*p.lowered).has_value());
}

TEST(Witness, ViolationSchedule) {
  const auto& p = compiled(R"(
    var x;
    fun main() {
      cobegin { x = 1; } || { sA: assert(x == 1); } coend;
    }
  )");
  WitnessQuery q;
  q.want_violation = *analysis::labeled_stmt(*p.lowered, "sA");
  const auto w = find_witness(*p.lowered, q);
  ASSERT_TRUE(w.has_value());
  check_replay(*p.lowered, *w);
  EXPECT_TRUE(w->terminal.violations.contains(q.want_violation));
}

TEST(Witness, FaultSchedule) {
  const auto& p = compiled(R"(
    var p1; var r;
    fun main() {
      cobegin { p1 = alloc(1); } || { sD: r = *p1; } coend;
    }
  )");
  // Dereferencing before the sibling allocates faults (p1 is int 0).
  WitnessQuery q;
  q.want_fault = *analysis::labeled_stmt(*p.lowered, "sD");
  const auto w = find_witness(*p.lowered, q);
  ASSERT_TRUE(w.has_value());
  check_replay(*p.lowered, *w);
}

TEST(Witness, OutcomePredicate) {
  const auto& p = compiled(workload::fig2_shasha_snir());
  WitnessQuery q;
  q.predicate = [](const sem::Configuration& cfg) {
    return cfg.global_value("a")->as_int() == 1 && cfg.global_value("b")->as_int() == 1;
  };
  const auto w = find_witness(*p.lowered, q);
  ASSERT_TRUE(w.has_value());
  check_replay(*p.lowered, *w);

  // The impossible outcome has no witness.
  WitnessQuery q00;
  q00.predicate = [](const sem::Configuration& cfg) {
    return cfg.global_value("a")->as_int() == 0 && cfg.global_value("b")->as_int() == 0;
  };
  EXPECT_FALSE(find_witness(*p.lowered, q00).has_value());
}

TEST(Witness, StubbornSearchStillFindsDeadlock) {
  const auto& p = compiled(workload::dining_philosophers(4));
  WitnessQuery q;
  q.want_deadlock = true;
  q.explore.reduction = Reduction::Stubborn;
  const auto w = find_witness(*p.lowered, q);
  ASSERT_TRUE(w.has_value());
  check_replay(*p.lowered, *w);
}

TEST(Witness, ReportIsReadable) {
  const auto& p = compiled(workload::dining_philosophers(2));
  const auto w = find_deadlock(*p.lowered);
  ASSERT_TRUE(w.has_value());
  const std::string text = w->to_string(*p.lowered);
  EXPECT_NE(text.find("lock"), std::string::npos);
  EXPECT_NE(text.find("reached:"), std::string::npos);
}

}  // namespace
}  // namespace copar::explore
