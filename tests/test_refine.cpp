// Branch-condition refinement tests: the abstract semantics narrows values
// along branch edges (dead-branch pruning, loop-exit facts) — and stays
// sound in concurrent code (refinement asserts only what the atomic branch
// read guarantees at that instant).
#include <gtest/gtest.h>

#include "src/absdom/cmpop.h"
#include "src/absdom/flat.h"
#include "src/absdom/interval.h"
#include "src/absdom/sign.h"
#include "src/absem/absexplore.h"
#include "src/explore/explorer.h"
#include "src/sem/program.h"

namespace copar {
namespace {

using absdom::CmpOp;
using absdom::FlatInt;
using absdom::Interval;
using absdom::Sign;

TEST(RefineCmp, IntervalClampsBounds) {
  const Interval v = Interval::range(0, 100);
  EXPECT_EQ(Interval::refine_cmp(v, CmpOp::Lt, Interval::constant(10), true),
            Interval::range(0, 9));
  EXPECT_EQ(Interval::refine_cmp(v, CmpOp::Lt, Interval::constant(10), false),
            Interval::range(10, 100));
  EXPECT_EQ(Interval::refine_cmp(v, CmpOp::Ge, Interval::constant(50), true),
            Interval::range(50, 100));
  EXPECT_EQ(Interval::refine_cmp(v, CmpOp::Eq, Interval::constant(7), true),
            Interval::constant(7));
  EXPECT_TRUE(
      Interval::refine_cmp(v, CmpOp::Gt, Interval::constant(100), true).is_bottom());
}

TEST(RefineCmp, IntervalNeAtEndpoints) {
  const Interval v = Interval::range(0, 5);
  EXPECT_EQ(Interval::refine_cmp(v, CmpOp::Ne, Interval::constant(0), true),
            Interval::range(1, 5));
  EXPECT_EQ(Interval::refine_cmp(v, CmpOp::Ne, Interval::constant(5), true),
            Interval::range(0, 4));
  // Interior constants cannot split an interval.
  EXPECT_EQ(Interval::refine_cmp(v, CmpOp::Ne, Interval::constant(3), true), v);
}

TEST(RefineCmp, FlatEqualityPins) {
  EXPECT_EQ(FlatInt::refine_cmp(FlatInt::top(), CmpOp::Eq, FlatInt::constant(4), true),
            FlatInt::constant(4));
  // Failing x != 4 also pins x to 4.
  EXPECT_EQ(FlatInt::refine_cmp(FlatInt::top(), CmpOp::Ne, FlatInt::constant(4), false),
            FlatInt::constant(4));
  // Contradictory constant comparison: infeasible.
  EXPECT_TRUE(FlatInt::refine_cmp(FlatInt::constant(3), CmpOp::Eq, FlatInt::constant(4), true)
                  .is_bottom());
}

TEST(RefineCmp, SignAgainstZero) {
  EXPECT_EQ(Sign::refine_cmp(Sign::top(), CmpOp::Lt, Sign::constant(0), true),
            Sign::constant(-1));
  EXPECT_EQ(Sign::refine_cmp(Sign::top(), CmpOp::Ge, Sign::constant(0), true),
            Sign::from_bits(Sign::kZero | Sign::kPos));
  EXPECT_EQ(Sign::refine_cmp(Sign::top(), CmpOp::Ne, Sign::constant(0), false),
            Sign::constant(0));
}

TEST(RefineCmp, SoundnessBruteForce) {
  // For every small interval and op: every concrete value consistent with
  // the outcome must survive refinement.
  const CmpOp ops[] = {CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne};
  for (CmpOp op : ops) {
    for (std::int64_t lo = -2; lo <= 2; ++lo) {
      for (std::int64_t hi = lo; hi <= 2; ++hi) {
        for (std::int64_t c = -2; c <= 2; ++c) {
          for (bool want : {true, false}) {
            const Interval refined =
                Interval::refine_cmp(Interval::range(lo, hi), op, Interval::constant(c), want);
            for (std::int64_t x = lo; x <= hi; ++x) {
              if (absdom::eval_cmp(op, x, c) == want) {
                EXPECT_FALSE(refined.is_bottom());
                EXPECT_TRUE(refined.lo() <= x && x <= refined.hi())
                    << "op=" << static_cast<int>(op) << " x=" << x << " c=" << c
                    << " want=" << want;
              }
            }
          }
        }
      }
    }
  }
}

// --- end-to-end: refinement inside the abstract explorer -------------------

std::vector<std::unique_ptr<CompiledProgram>>& keep_alive() {
  static std::vector<std::unique_ptr<CompiledProgram>> v;
  return v;
}

const CompiledProgram& compiled(std::string_view src) {
  keep_alive().push_back(compile(src));
  return *keep_alive().back();
}

TEST(RefineBranch, IntervalProvesLoopExitBound) {
  const auto& p = compiled(R"(
    var i;
    fun main() {
      i = 0;
      while (i < 10) { i = i + 1; }
      sA: assert(i >= 10);
      sB: assert(i >= 0);
    }
  )");
  absem::AbsExplorer<Interval> engine(*p.lowered, {});
  const auto r = engine.run();
  // Both asserts provable: the exit edge refines i to [10, +inf].
  EXPECT_TRUE(r.may_fail_asserts.empty());
}

TEST(RefineBranch, FlatEqualityEnablesConstantPropagation) {
  const auto& p = compiled(R"(
    var x; var y;
    fun main() {
      cobegin { x = 1; } || { x = 2; } coend;
      if (x == 1) { sT: assert(x == 1); y = x + 1; }
      sQ: skip;
    }
  )");
  absem::AbsExplorer<FlatInt> engine(*p.lowered, {});
  const auto r = engine.run();
  // The true edge pins x to 1: the assert discharges (the flat lattice
  // cannot represent "≠ 1", so only the equality side refines).
  EXPECT_TRUE(r.may_fail_asserts.empty());
  // ... and arithmetic after the refinement sees the constant: y = 2 on
  // that path.
  bool saw_y2 = false;
  for (const auto& [point, store] : r.point_stores) {
    for (const auto& [loc, v] : store.entries()) {
      if (v.num.as_constant() == 2) saw_y2 = true;
    }
  }
  EXPECT_TRUE(saw_y2);
}

TEST(RefineBranch, DeadBranchPruned) {
  const auto& p = compiled(R"(
    var i;
    fun main() {
      i = 0;
      while (i < 3) { i = i + 1; }
      if (i < 3) { sDead: i = 99; }
    }
  )");
  absem::AbsExplorer<Interval> engine(*p.lowered, {});
  const auto r = engine.run();
  const lang::Stmt* dead = p.module->find_labeled("sDead");
  ASSERT_NE(dead, nullptr);
  for (const auto& [point, store] : r.point_stores) {
    const auto& instr = p.lowered->proc(point.first).code[point.second];
    EXPECT_NE(instr.stmt, dead) << "infeasible branch was explored";
  }
}

TEST(RefineBranch, ConcurrentWriterStillCovered) {
  // Refinement must not lose behaviors: a sibling writes x after the branch
  // read; the assert after the join can still fail and must be reported.
  const auto& p = compiled(R"(
    var x; var seen;
    fun main() {
      cobegin
        { if (x == 0) { seen = 1; } }
      ||
        { x = 5; }
      coend;
      sQ: assert(x == 0);
    }
  )");
  absem::AbsExplorer<FlatInt> engine(*p.lowered, {});
  const auto r = engine.run();
  EXPECT_TRUE(r.may_fail_asserts.contains(p.module->find_labeled("sQ")->id()));
}

TEST(RefineBranch, AgreesWithConcreteOutcomes) {
  // Refinement is an abstract-only device: concrete and abstract must agree
  // on reachability of the labeled statements.
  const auto& p = compiled(R"(
    var x; var hit1; var hit2;
    fun main() {
      cobegin { x = 1; } || { skip; } coend;
      if (x == 1) { s1: hit1 = 1; } else { s2: hit2 = 1; }
    }
  )");
  const auto concrete = explore::explore(*p.lowered, {});
  EXPECT_EQ(concrete.terminal_int_values("hit1"), (std::set<std::int64_t>{1}));
  EXPECT_EQ(concrete.terminal_int_values("hit2"), (std::set<std::int64_t>{0}));
  absem::AbsExplorer<FlatInt> engine(*p.lowered, {});
  const auto abs = engine.run();
  const lang::Stmt* s2 = p.module->find_labeled("s2");
  for (const auto& [point, store] : abs.point_stores) {
    const auto& instr = p.lowered->proc(point.first).code[point.second];
    EXPECT_NE(instr.stmt, s2) << "abstractly reached a concretely dead branch";
  }
}

}  // namespace
}  // namespace copar
